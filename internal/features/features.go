// Package features computes the paper's per-gesture feature vector. The
// statistical recognizer (section 4.2) represents a gesture by a vector of
// geometric and dynamic features, "each [of which] has the property that it
// can be updated in constant time per mouse point, thus arbitrarily large
// gestures can be handled."
//
// The USENIX paper says "currently twelve" features; the companion
// SIGGRAPH '91 paper ("Specifying gestures by example") fixes the canonical
// set at thirteen. This package implements all thirteen, in the SIGGRAPH
// numbering, with an optional subset mask for ablations:
//
//	f1  cosine of the initial angle (from the 1st to the 3rd point)
//	f2  sine of the initial angle
//	f3  length of the bounding-box diagonal
//	f4  angle of the bounding-box diagonal
//	f5  distance between the first and last points
//	f6  cosine of the angle from the first to the last point
//	f7  sine of the angle from the first to the last point
//	f8  total path length
//	f9  total angle traversed (signed sum of inter-segment turns)
//	f10 sum of the absolute values of the turn angles
//	f11 sum of the squared turn angles ("sharpness")
//	f12 maximum squared speed
//	f13 path duration
//
// Following Rubine's reference implementation, input points that move less
// than MinMove pixels from the previous accepted point are discarded; this
// stabilizes the angular features against sensor jitter.
package features

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/linalg"
)

// ErrNonFinite is returned (wrapped) by Vector, VectorInto, and Compute
// when a feature value is NaN or Inf — which can only happen when the
// input stroke contained a non-finite coordinate or timestamp, or
// overflowed float64. Production recognizers must absorb such strokes by
// rejecting them, never by propagating NaN into classifier scores.
var ErrNonFinite = errors.New("features: non-finite feature value (NaN/Inf in input stroke?)")

// NumFeatures is the size of the full feature vector.
const NumFeatures = 13

// Feature indices into the full vector (f1 is index 0, and so on).
const (
	FInitCos = iota
	FInitSin
	FBBoxLen
	FBBoxAngle
	FEndDist
	FEndCos
	FEndSin
	FPathLen
	FTotalAngle
	FAbsAngle
	FSqrAngle
	FMaxSpeedSq
	FDuration
)

// Names maps feature indices to short human-readable names, in order.
var Names = [NumFeatures]string{
	"initCos", "initSin", "bboxLen", "bboxAngle", "endDist",
	"endCos", "endSin", "pathLen", "totalAngle", "absAngle",
	"sqrAngle", "maxSpeedSq", "duration",
}

// Options configures feature extraction. The zero value is NOT the default;
// call DefaultOptions.
type Options struct {
	// MinMove is the minimum distance, in pixels, a point must travel from
	// the previously accepted point to be accepted. Rubine's implementation
	// used 3 pixels.
	MinMove float64
	// Use selects a subset of features by index. Nil or empty means all
	// thirteen. The produced vector has len(Use) entries in Use order.
	Use []int
}

// DefaultOptions returns the paper-faithful configuration: 3-pixel movement
// threshold and all thirteen features.
func DefaultOptions() Options { return Options{MinMove: 3} }

// Dim returns the dimensionality of vectors produced under these options.
func (o Options) Dim() int {
	if len(o.Use) == 0 {
		return NumFeatures
	}
	return len(o.Use)
}

// Validate checks that the options are usable.
func (o Options) Validate() error {
	if o.MinMove < 0 {
		return fmt.Errorf("features: MinMove must be >= 0, got %v", o.MinMove)
	}
	for _, i := range o.Use {
		if i < 0 || i >= NumFeatures {
			return fmt.Errorf("features: feature index %d out of range [0,%d)", i, NumFeatures)
		}
	}
	return nil
}

// project maps a full 13-feature vector to the configured subset.
func (o Options) project(full []float64) linalg.Vec {
	if len(o.Use) == 0 {
		return linalg.Vec(append([]float64(nil), full...))
	}
	out := make(linalg.Vec, len(o.Use))
	for i, idx := range o.Use {
		out[i] = full[idx]
	}
	return out
}

// Extractor accumulates feature state one mouse point at a time. Each Add
// is O(1); Vector is O(1) in the number of points. The zero value is not
// usable; construct with NewExtractor.
type Extractor struct {
	opts Options

	raw      int // points fed, including filtered ones
	accepted int // points accepted past the MinMove filter

	startX, startY, startT float64
	endX, endY, endT       float64
	minX, minY, maxX, maxY float64

	initialCos, initialSin float64
	initialSet             bool

	dx2, dy2 float64 // previous accepted segment delta

	pathLen    float64
	totalAngle float64
	absAngle   float64
	sqrAngle   float64
	maxSpeedSq float64
}

// NewExtractor returns an extractor with the given options. Options come
// from external input (CLI flags, recognizer JSON), so invalid ones are
// an error, not a panic.
func NewExtractor(opts Options) (*Extractor, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Extractor{opts: opts}, nil
}

// Reset returns the extractor to its initial state, keeping its options.
func (e *Extractor) Reset() {
	opts := e.opts
	*e = Extractor{opts: opts}
}

// RawCount returns the number of points fed to the extractor, including
// points discarded by the MinMove filter.
func (e *Extractor) RawCount() int { return e.raw }

// AcceptedCount returns the number of points that survived the filter.
func (e *Extractor) AcceptedCount() int { return e.accepted }

// Add feeds one mouse sample to the extractor.
func (e *Extractor) Add(p geom.TimedPoint) {
	e.raw++
	if e.accepted == 0 {
		e.accepted = 1
		e.startX, e.startY, e.startT = p.X, p.Y, p.T
		e.endX, e.endY, e.endT = p.X, p.Y, p.T
		e.minX, e.maxX = p.X, p.X
		e.minY, e.maxY = p.Y, p.Y
		return
	}
	dx := p.X - e.endX
	dy := p.Y - e.endY
	magSq := dx*dx + dy*dy
	if magSq <= e.opts.MinMove*e.opts.MinMove {
		return // jitter; ignore (Rubine's dist_sq_threshold)
	}
	e.accepted++

	e.minX = math.Min(e.minX, p.X)
	e.maxX = math.Max(e.maxX, p.X)
	e.minY = math.Min(e.minY, p.Y)
	e.maxY = math.Max(e.maxY, p.Y)

	e.pathLen += math.Sqrt(magSq)

	if e.accepted == 3 && !e.initialSet {
		// Initial angle from the start to the third accepted point.
		idx := p.X - e.startX
		idy := p.Y - e.startY
		if m := idx*idx + idy*idy; m > e.opts.MinMove*e.opts.MinMove {
			r := 1 / math.Sqrt(m)
			e.initialCos = idx * r
			e.initialSin = idy * r
			e.initialSet = true
		}
	}
	if e.accepted >= 3 {
		th := math.Atan2(dx*e.dy2-e.dx2*dy, dx*e.dx2+dy*e.dy2)
		e.totalAngle += th
		e.absAngle += math.Abs(th)
		e.sqrAngle += th * th
	}
	if dt := p.T - e.endT; dt > 0 {
		if v := magSq / (dt * dt); v > e.maxSpeedSq {
			e.maxSpeedSq = v
		}
	}

	e.endX, e.endY, e.endT = p.X, p.Y, p.T
	e.dx2, e.dy2 = dx, dy
}

// full returns the complete 13-feature vector for the current state.
// Undefined quantities (e.g. the initial angle of a 1-point gesture) are
// zero, which matches the behaviour of Rubine's implementation for
// degenerate input such as GDP's "dot" gesture.
func (e *Extractor) full() [NumFeatures]float64 {
	var f [NumFeatures]float64
	if e.accepted == 0 {
		return f
	}
	f[FInitCos] = e.initialCos
	f[FInitSin] = e.initialSin
	bw := e.maxX - e.minX
	bh := e.maxY - e.minY
	f[FBBoxLen] = math.Hypot(bw, bh)
	if bw != 0 || bh != 0 {
		f[FBBoxAngle] = math.Atan2(bh, bw)
	}
	ex := e.endX - e.startX
	ey := e.endY - e.startY
	d := math.Hypot(ex, ey)
	f[FEndDist] = d
	if d > 0 {
		f[FEndCos] = ex / d
		f[FEndSin] = ey / d
	}
	f[FPathLen] = e.pathLen
	f[FTotalAngle] = e.totalAngle
	f[FAbsAngle] = e.absAngle
	f[FSqrAngle] = e.sqrAngle
	f[FMaxSpeedSq] = e.maxSpeedSq
	f[FDuration] = e.endT - e.startT
	return f
}

// Vector returns the feature vector for the points added so far, projected
// through the configured feature subset. The returned vector is a fresh
// copy; the extractor may continue to accumulate points afterwards. It
// returns ErrNonFinite (wrapped) when any feature is NaN or Inf.
func (e *Extractor) Vector() (linalg.Vec, error) {
	f := e.full()
	v := e.opts.project(f[:])
	if !v.AllFinite() {
		return nil, fmt.Errorf("%w after %d points", ErrNonFinite, e.raw)
	}
	return v, nil
}

// VectorInto writes the current feature vector into out (which must have
// length Options.Dim()) and returns it, performing no allocation — the
// per-mouse-point hot-path form. A wrong-sized buffer or a non-finite
// feature value is an error; out's contents are unspecified on error.
func (e *Extractor) VectorInto(out linalg.Vec) (linalg.Vec, error) {
	if len(out) != e.opts.Dim() {
		return nil, fmt.Errorf("features: buffer length %d, want %d", len(out), e.opts.Dim())
	}
	f := e.full()
	if len(e.opts.Use) == 0 {
		copy(out, f[:])
	} else {
		for i, idx := range e.opts.Use {
			out[i] = f[idx]
		}
	}
	if !out.AllFinite() {
		return nil, fmt.Errorf("%w after %d points", ErrNonFinite, e.raw)
	}
	return out, nil
}

// Compute returns the feature vector of an entire path in one call. It is
// exactly equivalent to feeding the path point-by-point to a fresh
// Extractor; the incremental path is the single source of truth.
func Compute(p geom.Path, opts Options) (linalg.Vec, error) {
	e, err := NewExtractor(opts)
	if err != nil {
		return nil, err
	}
	for _, tp := range p {
		e.Add(tp)
	}
	return e.Vector()
}
