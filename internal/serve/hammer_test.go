package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/multipath"
)

// TestHammerSwapUnderLoad drives many concurrent sessions while another
// goroutine hot-swaps the recognizer as fast as it can. Every started
// session must produce exactly one Result with a completed outcome —
// swaps must never lose, duplicate, or wedge a session.
func TestHammerSwapUnderLoad(t *testing.T) {
	rec := trainRec(t, 7)
	sink := newSink()
	e, err := New(rec, Options{Shards: 4, QueueDepth: 16, OnResult: sink.add})
	if err != nil {
		t.Fatal(err)
	}

	const producers, perProducer = 4, 6
	stopSwap := make(chan struct{})
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		a, b := trainRec(t, 8), trainRec(t, 9)
		for i := 0; ; i++ {
			select {
			case <-stopSwap:
				return
			default:
			}
			if i%2 == 0 {
				e.Swap(a)
			} else {
				e.Swap(b)
			}
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				g, _ := sampleGesture(int64(1000+p*100+i), i%2)
				playSession(t, e, fmt.Sprintf("swap-%d-%d", p, i), g)
			}
		}(p)
	}
	wg.Wait()
	close(stopSwap)
	swapWG.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	if got, want := sink.len(), producers*perProducer; got != want {
		t.Errorf("results = %d, want %d", got, want)
	}
	if d := sink.duplicates(); d != 0 {
		t.Errorf("%d duplicate Results delivered", d)
	}
	for p := 0; p < producers; p++ {
		for i := 0; i < perProducer; i++ {
			id := fmt.Sprintf("swap-%d-%d", p, i)
			if o, ok := sink.outcome(id); !ok || o != OutcomeCompleted {
				t.Errorf("session %s outcome = %v (present %v), want %v", id, o, ok, OutcomeCompleted)
			}
		}
	}
}

// TestHammerCloseConcurrentWithSubmit races Close against a crowd of
// submitting producers. The invariants: every session whose FingerDown
// was accepted gets exactly one Result (completed or drained), sessions
// whose FingerDown was refused get none, refusals are ErrClosed or shed
// backpressure, and Submit after Close always reports ErrClosed.
func TestHammerCloseConcurrentWithSubmit(t *testing.T) {
	rec := trainRec(t, 7)
	sink := newSink()
	e, err := New(rec, Options{Shards: 4, QueueDepth: 8, OnResult: sink.add})
	if err != nil {
		t.Fatal(err)
	}

	const producers, perProducer = 6, 8
	var mu sync.Mutex
	started := map[string]bool{}

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s := NewSubmitter(e, SubmitterOptions{MaxAttempts: 50})
			for i := 0; i < perProducer; i++ {
				id := fmt.Sprintf("close-%d-%d", p, i)
				g, _ := sampleGesture(int64(2000+p*100+i), i%2)
				ok := true
				for j, pt := range g {
					kind := multipath.FingerMove
					if j == 0 {
						kind = multipath.FingerDown
					}
					err := s.Submit(Event{Session: id, Finger: 0, Kind: kind, X: pt.X, Y: pt.Y, T: pt.T})
					if err != nil {
						if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrShed) {
							t.Errorf("session %s: unexpected submit error %v", id, err)
						}
						ok = j > 0 // the FingerDown (j == 0) was accepted iff j > 0 here
						goto next
					}
				}
				{
					last := g[len(g)-1]
					err := s.Submit(Event{Session: id, Finger: 0, Kind: multipath.FingerUp, X: last.X, Y: last.Y, T: last.T + 0.01})
					if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrShed) {
						t.Errorf("session %s: unexpected up error %v", id, err)
					}
				}
			next:
				mu.Lock()
				started[id] = ok
				mu.Unlock()
			}
		}(p)
	}

	// Close while producers are mid-stream.
	closeErr := make(chan error, 1)
	go func() { closeErr <- e.Close() }()
	wg.Wait()
	if err := <-closeErr; err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(Event{Session: "post", Kind: multipath.FingerDown, X: 1, Y: 1, T: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}

	if d := sink.duplicates(); d != 0 {
		t.Errorf("%d duplicate Results delivered", d)
	}
	for id, ok := range started {
		o, got := sink.outcome(id)
		if ok && !got {
			t.Errorf("session %s started but produced no Result", id)
		}
		if !ok && got {
			t.Errorf("session %s never started but produced a Result (%v)", id, o)
		}
		if got && o != OutcomeCompleted && o != OutcomeDrained {
			t.Errorf("session %s outcome = %v, want completed or drained", id, o)
		}
	}
	st := e.Stats()
	if int64(sink.len()) != st.Completed {
		t.Errorf("results delivered = %d, Stats.Completed = %d", sink.len(), st.Completed)
	}
}
