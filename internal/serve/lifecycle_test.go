package serve

import (
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/multipath"
	"repro/internal/obs"
)

// lastTEntries counts live timestamp high-water entries across every
// shard — the state Submit consults to reject regressing timestamps.
// Any entry that outlives its session would spuriously reject a
// reconnecting session with a fresh clock.
func lastTEntries(e *Engine) int {
	n := 0
	for _, sh := range e.shards {
		sh.vmu.Lock()
		n += len(sh.lastT)
		sh.vmu.Unlock()
	}
	return n
}

// TestLastTClearedOnEveryOutcome finishes sessions via each terminal
// path — completed, degraded, panicked, reaped, drained — and checks
// (1) the lastT map is empty afterwards and (2) re-submitting the same
// session ID with a fresh clock (T restarting at 0, below every
// timestamp the first incarnation used) passes Submit validation
// instead of being rejected as regressing.
func TestLastTClearedOnEveryOutcome(t *testing.T) {
	rec := trainRec(t, 7)
	g, _ := sampleGesture(7, 0)

	// The scripted faults drive the degraded and panicked outcomes
	// deterministically: poisoned coordinates force the degraded
	// fallback, an injected panic quarantines the session.
	script := fault.NewScript().
		Set("deg", 3, fault.KindPoison).
		Set("pan", 1, fault.KindPanic)
	clock := fault.NewManualClock(time.Unix(0, 0))
	results := make(chan Result, 16)
	e, err := New(rec, Options{
		Shards:       2,
		OnResult:     func(r Result) { results <- r },
		Fault:        script,
		Clock:        clock,
		IdleTimeout:  time.Second,
		ReapInterval: -1, // reap only via explicit Reap calls
	})
	if err != nil {
		t.Fatal(err)
	}

	waitResult := func(id string, want Outcome) {
		t.Helper()
		select {
		case r := <-results:
			if r.Session != id || r.Outcome != want {
				t.Fatalf("result = %+v, want session %s outcome %v", r, id, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no result for %s", id)
		}
	}

	// Completed: a full gesture. Degraded: same gesture with poisoned
	// coordinates. Panicked: injected panic on the second event.
	playSession(t, e, "com", g)
	waitResult("com", OutcomeCompleted)
	playSession(t, e, "deg", g)
	waitResult("deg", OutcomeDegraded)
	playSession(t, e, "pan", g)
	waitResult("pan", OutcomePanicked)

	// Reaped: a half-open session, the virtual clock jumping past the
	// idle deadline, and an explicit sweep.
	submitRetry(t, e, Event{Session: "rea", Kind: multipath.FingerDown, X: 1, Y: 1, T: 5})
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second)
	if n, err := e.Reap(); err != nil || n != 1 {
		t.Fatalf("Reap = %d, %v, want 1, nil", n, err)
	}
	waitResult("rea", OutcomeReaped)

	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := lastTEntries(e); n != 0 {
		t.Fatalf("%d lastT entries survive finished sessions", n)
	}

	// Reconnect each finished session with a fresh clock: T=0 is below
	// every timestamp its first incarnation submitted, so any stale
	// lastT entry would reject this as regressing. The panicked ID is
	// quarantined at the shard (no second Result, by design) but must
	// still clear Submit validation.
	for _, id := range []string{"com", "deg", "pan", "rea"} {
		if err := e.Submit(Event{Session: id, Kind: multipath.FingerDown, X: 1, Y: 1, T: 0}); err != nil {
			t.Errorf("fresh-clock resubmit for %s = %v, want nil", id, err)
		}
	}
	// The reconnects above either opened sessions or were quarantine-
	// dropped; both paths must account lastT correctly on drain.
	for _, id := range []string{"com", "deg", "rea"} {
		submitRetry(t, e, Event{Session: id, Kind: multipath.FingerUp, X: 1, Y: 1, T: 0.01})
	}

	// Drained: half-open sessions force-finished by Close.
	submitRetry(t, e, Event{Session: "dra", Kind: multipath.FingerDown, X: 1, Y: 1, T: 9})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	drained := false
	for done := false; !done; {
		select {
		case r := <-results:
			if r.Session == "dra" {
				if r.Outcome != OutcomeDrained {
					t.Fatalf("dra outcome = %v, want drained", r.Outcome)
				}
				drained = true
			}
		default:
			done = true
		}
	}
	if !drained {
		t.Fatal("no drained result for dra")
	}
	if n := lastTEntries(e); n != 0 {
		t.Fatalf("%d lastT entries survive Close", n)
	}
}

// TestLastTClearedForStrayEvents: stray moves/ups for unknown sessions
// and late events for quarantined sessions must not leave lastT
// entries behind (the map would otherwise grow without bound under
// stray traffic).
func TestLastTClearedForStrayEvents(t *testing.T) {
	rec := trainRec(t, 7)
	e, err := New(rec, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	submitRetry(t, e, Event{Session: "ghost", Kind: multipath.FingerMove, X: 1, Y: 1, T: 3})
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := lastTEntries(e); n != 0 {
		t.Fatalf("%d lastT entries survive a stray event", n)
	}
	// The same session can now legitimately start with T=0.
	if err := e.Submit(Event{Session: "ghost", Kind: multipath.FingerDown, X: 1, Y: 1, T: 0}); err != nil {
		t.Fatalf("fresh-clock submit after stray = %v, want nil", err)
	}
}

// TestRejectedCountsOncePerShed: when the Submitter retries then sheds,
// Stats.Rejected (and serve.events.rejected) counts the refused event
// exactly once — not once per retry attempt. Deterministic via the
// wedged engine and the Submitter's sleep seam (no real sleeping).
func TestRejectedCountsOncePerShed(t *testing.T) {
	reg := obs.New()
	e, release := wedgedEngine(t, reg)
	defer func() {
		close(release)
		if err := e.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	base := e.Stats().Rejected // wedging spins direct Submits, which do count

	s := NewSubmitter(e, SubmitterOptions{MaxAttempts: 4, Backoff: time.Millisecond, Obs: reg})
	var slept int
	s.opts.sleep = func(time.Duration) { slept++ }
	err := s.Submit(Event{Session: "shed-once", Kind: multipath.FingerDown, X: 1, Y: 1, T: 0})
	if !errors.Is(err, ErrShed) {
		t.Fatalf("Submit = %v, want ErrShed", err)
	}
	if slept != 3 {
		t.Fatalf("slept %d times, want 3 (4 attempts)", slept)
	}
	if got := e.Stats().Rejected - base; got != 1 {
		t.Errorf("Stats.Rejected grew by %d for one shed event, want 1", got)
	}
	snap := reg.Snapshot()
	if got := snapCounter(t, snap, "serve.events.rejected"); got != base+1 {
		t.Errorf("serve.events.rejected = %d, want %d (exactly once per shed)", got, base+1)
	}
	if got := snapCounter(t, snap, "serve.submitter.retries"); got != 3 {
		t.Errorf("serve.submitter.retries = %d, want 3", got)
	}
}

// TestRejectedNotCountedOnRetrySuccess: an event that bounces off a
// full queue but is eventually accepted was never terminally refused —
// Stats.Rejected must not move.
func TestRejectedNotCountedOnRetrySuccess(t *testing.T) {
	e, release := wedgedEngine(t, nil)
	defer func() {
		if err := e.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	base := e.Stats().Rejected

	s := NewSubmitter(e, SubmitterOptions{})
	done := make(chan error, 1)
	go func() {
		done <- s.Submit(Event{Session: "patient", Kind: multipath.FingerDown, X: 1, Y: 1, T: 0})
	}()
	time.Sleep(2 * time.Millisecond) // let it bounce a few times
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("unlimited-retry Submit = %v, want nil", err)
	}
	if got := e.Stats().Rejected - base; got != 0 {
		t.Errorf("Stats.Rejected grew by %d for an eventually-accepted event, want 0", got)
	}
}

// TestClosedReportsShutdown: Closed flips at Close and is what front
// ends consult to answer with a typed shutting-down status.
func TestClosedReportsShutdown(t *testing.T) {
	e, err := New(trainRec(t, 7), Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.Closed() {
		t.Fatal("fresh engine reports closed")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if !e.Closed() {
		t.Fatal("closed engine reports open")
	}
	if err := e.Submit(Event{Session: "x", Kind: multipath.FingerDown, X: 1, Y: 1, T: 0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit on closed engine = %v, want ErrClosed", err)
	}
}
