package flight_test

import (
	"sync"
	"testing"

	"repro/internal/eager"
	"repro/internal/flight"
	"repro/internal/geom"
	"repro/internal/synth"
)

var (
	recOnce sync.Once
	testRec *eager.Recognizer
	recErr  error
)

// trainedRec trains one small GDP recognizer, shared across replay tests
// (classification never mutates it).
func trainedRec(t *testing.T) *eager.Recognizer {
	t.Helper()
	recOnce.Do(func() {
		gen := synth.NewGenerator(synth.DefaultParams(7))
		set, _ := gen.Set("flight-train", synth.GDPClasses(), 5)
		testRec, _, recErr = eager.Train(set, eager.DefaultOptions())
	})
	if recErr != nil {
		t.Fatal(recErr)
	}
	return testRec
}

// record runs one gesture through a tapped session, mirroring what the
// serve engine does, and returns the sealed bundle.
func record(t *testing.T, rec *eager.Recognizer, points geom.Path, end bool) *flight.Bundle {
	t.Helper()
	sess, err := rec.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	tap := flight.NewCapture("test")
	sess.SetTap(tap)
	fired := false
	class := ""
	for _, p := range points {
		f, c, _ := sess.Add(p)
		if f {
			fired, class = true, c
		}
	}
	if end && !fired {
		class, _ = sess.End()
	}
	return tap.Bundle(class, "completed", 0)
}

func TestReplayBitIdentical(t *testing.T) {
	rec := trainedRec(t)
	gen := synth.NewGenerator(synth.DefaultParams(8))
	for i, class := range synth.GDPClasses() {
		s := gen.Sample(class)
		b := record(t, rec, s.G.Points, true)
		if len(b.Points) == 0 {
			t.Fatalf("%s: empty capture", class.Name)
		}
		d, err := flight.Replay(rec, b)
		if err != nil {
			t.Fatalf("%s: %v", class.Name, err)
		}
		if d != nil {
			t.Errorf("gesture %d (%s) diverged: %s", i, class.Name, d)
		}
	}
}

func TestReplayEndPath(t *testing.T) {
	rec := trainedRec(t)
	gen := synth.NewGenerator(synth.DefaultParams(9))
	s := gen.Sample(synth.GDPClasses()[0])
	// Truncate below MinSubgesture so eager never fires and End classifies.
	short := s.G.Points[:rec.Opts.MinSubgesture-1]
	b := record(t, rec, short, true)
	hasEnd := false
	for _, d := range b.Decisions {
		hasEnd = hasEnd || d.Kind == "end"
	}
	if !hasEnd {
		t.Fatal("short gesture recorded no end decision")
	}
	if d, err := flight.Replay(rec, b); err != nil || d != nil {
		t.Fatalf("end-path replay: div=%v err=%v", d, err)
	}
}

func TestReplayDetectsModelMismatch(t *testing.T) {
	rec := trainedRec(t)
	gen := synth.NewGenerator(synth.DefaultParams(10))
	// Record against a differently-trained model; replay against testRec.
	gen2 := synth.NewGenerator(synth.DefaultParams(11))
	set, _ := gen2.Set("other-train", synth.GDPClasses(), 5)
	other, _, err := eager.Train(set, eager.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for _, class := range synth.GDPClasses() {
		s := gen.Sample(class)
		b := record(t, other, s.G.Points, true)
		d, err := flight.Replay(rec, b)
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("replay against the wrong model never diverged")
	}
}

func TestReplayRejectsInvalidBundle(t *testing.T) {
	rec := trainedRec(t)
	if _, err := flight.Replay(rec, nil); err == nil {
		t.Error("nil bundle accepted")
	}
	b := &flight.Bundle{Session: "x", Points: []flight.Point{{X: 1}}}
	if _, err := flight.Replay(rec, b); err == nil {
		t.Error("bundle without decisions accepted")
	}
}

func BenchmarkFlightCapture(b *testing.B) {
	rec := testBenchRec(b)
	gen := synth.NewGenerator(synth.DefaultParams(12))
	s := gen.Sample(synth.GDPClasses()[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := rec.NewSession()
		if err != nil {
			b.Fatal(err)
		}
		tap := flight.NewCapture("bench")
		sess.SetTap(tap)
		for _, p := range s.G.Points {
			sess.Add(p)
		}
		sess.End()
		sinkBundle = tap.Bundle("x", "completed", 0)
	}
}

func BenchmarkFlightOffer(b *testing.B) {
	r := flight.NewRecorder(flight.Options{Capacity: 256})
	bundle := mkBundle("bench", 32, false, "x", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Offer(bundle)
	}
}

var sinkBundle *flight.Bundle

// testBenchRec is trainedRec for benchmarks (testing.TB covers both, but
// trainedRec takes *testing.T for Fatal's sake).
func testBenchRec(b *testing.B) *eager.Recognizer {
	b.Helper()
	recOnce.Do(func() {
		gen := synth.NewGenerator(synth.DefaultParams(7))
		set, _ := gen.Set("flight-train", synth.GDPClasses(), 5)
		testRec, _, recErr = eager.Train(set, eager.DefaultOptions())
	})
	if recErr != nil {
		b.Fatal(recErr)
	}
	return testRec
}
