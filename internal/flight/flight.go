// Package flight is the gesture flight recorder: a bounded ring of
// per-gesture capture bundles — the raw (x, y, t) input points, every
// eager decision made while the gesture streamed in, and the final
// outcome — with trigger policies selecting which gestures to keep
// (always, errors only, poisoned strokes only, or tail-latency
// outliers).
//
// A bundle is the capture-and-replay unit real inference stacks use for
// debugging: because the eager decision sequence is a pure function of
// the recognizer and the point stream, re-running a bundle's points
// through the same saved recognizer must reproduce the recorded
// decisions bit-for-bit. Replay (and cmd/greplay on top of it) checks
// exactly that, point by point, so a divergence localizes the bug — a
// nondeterministic code path, a model mismatch, or a corrupted capture.
//
// Wiring: serve.Options.Flight attaches a Recorder to an engine; the
// engine creates one Capture per gesture, taps it into the eager stream
// (Capture implements eager.Tap), and Offers the finished bundle on
// completion. cmd/gserve dumps the ring at /debug/flight; Engine.Close
// dumps it to serve.Options.FlightDump.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/eager"
	"repro/internal/geom"
)

// BundleSchema versions the bundle JSON layout (and the dump document
// wrapping it). Bump on renamed/removed/retyped fields; additions are
// allowed within a version.
const BundleSchema = 1

// Point is one raw input sample, the replayable unit of a capture.
// Coordinates need not be finite — a poisoned stroke is exactly the
// capture the recorder exists to keep — so the JSON layout encodes
// non-finite values as the strings "NaN", "+Inf", and "-Inf" (JSON
// numbers cannot express them) and decodes them back bit-for-bit.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	T float64 `json:"t"`
}

// wirePoint is Point's JSON layout, with non-finite-safe coordinates.
type wirePoint struct {
	X jsonFloat `json:"x"`
	Y jsonFloat `json:"y"`
	T jsonFloat `json:"t"`
}

// MarshalJSON implements json.Marshaler, encoding non-finite
// coordinates as strings.
func (p Point) MarshalJSON() ([]byte, error) {
	return json.Marshal(wirePoint{jsonFloat(p.X), jsonFloat(p.Y), jsonFloat(p.T)})
}

// UnmarshalJSON implements json.Unmarshaler, accepting both plain
// numbers and the non-finite string forms.
func (p *Point) UnmarshalJSON(b []byte) error {
	var w wirePoint
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*p = Point{X: float64(w.X), Y: float64(w.Y), T: float64(w.T)}
	return nil
}

// jsonFloat is a float64 that survives JSON round-trips even when
// non-finite: NaN and the infinities — which encoding/json rejects as
// numbers — are written as the strings "NaN", "+Inf", and "-Inf".
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*f = jsonFloat(math.NaN())
		case "+Inf":
			*f = jsonFloat(math.Inf(1))
		case "-Inf":
			*f = jsonFloat(math.Inf(-1))
		default:
			return fmt.Errorf("flight: bad non-finite float %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// Decision mirrors eager.Decision with JSON tags — one recorded eager
// step. See eager.Decision for field semantics. Margin gets the same
// non-finite-safe JSON encoding as Point coordinates: a decision made
// against a poisoned extractor may carry a NaN margin.
type Decision struct {
	Index  int     `json:"index"`
	Kind   string  `json:"kind"`
	Fired  bool    `json:"fired"`
	Class  string  `json:"class,omitempty"`
	Margin float64 `json:"margin"`
	Err    string  `json:"err,omitempty"`
}

// wireDecision is Decision's JSON layout, with a non-finite-safe margin.
type wireDecision struct {
	Index  int       `json:"index"`
	Kind   string    `json:"kind"`
	Fired  bool      `json:"fired"`
	Class  string    `json:"class,omitempty"`
	Margin jsonFloat `json:"margin"`
	Err    string    `json:"err,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (d Decision) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireDecision{d.Index, d.Kind, d.Fired, d.Class, jsonFloat(d.Margin), d.Err})
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Decision) UnmarshalJSON(b []byte) error {
	var w wireDecision
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*d = Decision{Index: w.Index, Kind: w.Kind, Fired: w.Fired, Class: w.Class, Margin: float64(w.Margin), Err: w.Err}
	return nil
}

// Outcome is the final result of one captured gesture.
type Outcome struct {
	// Class is the recognized class ("" marks a rejected stroke).
	Class string `json:"class"`
	// FiredEager reports that the decision fired mid-stroke.
	FiredEager bool `json:"fired_eager"`
	// Poisoned reports that some step errored (a non-finite point).
	Poisoned bool `json:"poisoned"`
	// Drained reports that the session was force-finished at Close.
	Drained bool `json:"drained"`
	// Reason is the serving layer's typed outcome reason — "completed",
	// "degraded", "drained", "reaped" (idle-deadline force-finish), or
	// "panicked" (dispatch panic quarantined the session); "" when the
	// capturing layer predates reasons. Mirrors serve.Outcome.
	Reason string `json:"reason,omitempty"`
	// LatencyNS is the end-to-end session latency in nanoseconds (0 when
	// the serving layer did not time the session).
	LatencyNS int64 `json:"latency_ns"`
}

// Bundle is one gesture's capture: everything needed to re-run it.
type Bundle struct {
	Schema  int    `json:"schema"`
	Session string `json:"session"`
	Trigger string `json:"trigger,omitempty"` // policy that kept it
	// Seq is the recorder's 1-based capture sequence number, assigned by
	// Offer when the trigger keeps the bundle (0 = never kept). It is the
	// stable handle exemplars use to point from a histogram bucket back to
	// the exact flight recording.
	Seq       uint64     `json:"seq,omitempty"`
	Points    []Point    `json:"points"`
	Decisions []Decision `json:"decisions"`
	Outcome   Outcome    `json:"outcome"`
}

// Capture accumulates one in-flight gesture's bundle. It implements
// eager.Tap, so attaching it via (*eager.Session).SetTap (or
// multipath.Session.SetTap) records every point and decision as they
// happen. A Capture is single-goroutine, like the session it taps.
type Capture struct {
	session   string
	points    []Point
	decisions []Decision
	poisoned  bool
}

// NewCapture starts an empty capture for the named session.
func NewCapture(session string) *Capture {
	return &Capture{session: session}
}

// TapPoint implements eager.Tap: records one raw input point.
func (c *Capture) TapPoint(p geom.TimedPoint) {
	c.points = append(c.points, Point{X: p.X, Y: p.Y, T: p.T})
}

// TapDecision implements eager.Tap: records one eager decision.
func (c *Capture) TapDecision(d eager.Decision) {
	c.decisions = append(c.decisions, Decision{
		Index:  d.Index,
		Kind:   d.Kind,
		Fired:  d.Fired,
		Class:  d.Class,
		Margin: d.Margin,
		Err:    d.Err,
	})
	if d.Err != "" {
		c.poisoned = true
	}
}

// Len returns the number of captured points.
func (c *Capture) Len() int { return len(c.points) }

// Decisions returns the recorded decision sequence (not a copy; treat as
// read-only).
func (c *Capture) Decisions() []Decision { return c.decisions }

// Bundle seals the capture into a Bundle with the given outcome.
// FiredEager and Poisoned are derived from the recorded decisions; the
// caller supplies the serving-layer facts: the class, the typed outcome
// reason ("completed", "degraded", "drained", "reaped", "panicked" —
// mirroring serve.Outcome strings; Drained is derived from it), and the
// latency.
func (c *Capture) Bundle(class, reason string, latency time.Duration) *Bundle {
	fired := false
	for i := range c.decisions {
		if c.decisions[i].Fired {
			fired = true
			break
		}
	}
	return &Bundle{
		Schema:    BundleSchema,
		Session:   c.session,
		Points:    c.points,
		Decisions: c.decisions,
		Outcome: Outcome{
			Class:      class,
			FiredEager: fired,
			Poisoned:   c.poisoned,
			Drained:    reason == "drained",
			Reason:     reason,
			LatencyNS:  latency.Nanoseconds(),
		},
	}
}

// Trigger selects which finished gestures a Recorder keeps.
type Trigger int

// Trigger policies.
const (
	// TriggerAlways keeps every offered bundle.
	TriggerAlways Trigger = iota
	// TriggerOnError keeps rejected gestures (outcome class "") and
	// poisoned strokes.
	TriggerOnError
	// TriggerOnPoison keeps only poisoned strokes.
	TriggerOnPoison
	// TriggerLatencyOver keeps gestures whose end-to-end latency exceeds
	// Options.LatencyThreshold (requires a serving layer that times
	// sessions, i.e. serve with Options.Obs or Options.Flight set).
	TriggerLatencyOver
)

// String names the trigger policy ("always", "on-error", "on-poison",
// "latency-over"); unknown values render as "trigger(N)".
func (t Trigger) String() string {
	switch t {
	case TriggerAlways:
		return "always"
	case TriggerOnError:
		return "on-error"
	case TriggerOnPoison:
		return "on-poison"
	case TriggerLatencyOver:
		return "latency-over"
	}
	return fmt.Sprintf("trigger(%d)", int(t))
}

// ParseTrigger maps a policy name (as produced by Trigger.String) back
// to its Trigger; the error lists the valid names.
func ParseTrigger(name string) (Trigger, error) {
	for _, t := range []Trigger{TriggerAlways, TriggerOnError, TriggerOnPoison, TriggerLatencyOver} {
		if t.String() == name {
			return t, nil
		}
	}
	return 0, fmt.Errorf("flight: unknown trigger %q (want always, on-error, on-poison, or latency-over)", name)
}

// DefaultCapacity is the recorder ring capacity used when Options.Capacity
// is 0.
const DefaultCapacity = 256

// Options configures a Recorder.
type Options struct {
	// Capacity bounds the ring; 0 means DefaultCapacity. The oldest kept
	// bundle is evicted when full.
	Capacity int
	// Trigger selects which finished gestures are kept.
	Trigger Trigger
	// LatencyThreshold is the TriggerLatencyOver cutoff.
	LatencyThreshold time.Duration
}

// Recorder is the bounded bundle ring. All methods are safe for
// concurrent use (a mutex guards the ring — capture happens once per
// gesture, not per point, so this is off the per-point hot path) and
// no-ops on a nil receiver, so an engine without a recorder pays only
// nil checks.
type Recorder struct {
	mu       sync.Mutex
	opts     Options
	ring     []*Bundle
	start    int // index of the oldest bundle
	count    int
	offered  uint64
	captured uint64
}

// NewRecorder builds a recorder with the given options.
func NewRecorder(opts Options) *Recorder {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	return &Recorder{opts: opts, ring: make([]*Bundle, opts.Capacity)}
}

// Trigger returns the recorder's policy (TriggerAlways on nil).
func (r *Recorder) Trigger() Trigger {
	if r == nil {
		return TriggerAlways
	}
	return r.opts.Trigger
}

// Offer presents a finished bundle; the trigger policy decides whether
// it is kept (reported by the return value). Empty bundles (no points)
// are never kept — they carry nothing to replay. A kept bundle is
// stamped with its 1-based capture sequence in b.Seq, so callers can
// cite the recording (e.g. in a histogram exemplar) after Offer
// returns. No-op on a nil receiver or nil bundle.
func (r *Recorder) Offer(b *Bundle) bool {
	if r == nil || b == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.offered++
	if len(b.Points) == 0 || !r.wants(b) {
		return false
	}
	b.Trigger = r.opts.Trigger.String()
	if r.count == len(r.ring) {
		r.ring[r.start] = b
		r.start = (r.start + 1) % len(r.ring)
	} else {
		r.ring[(r.start+r.count)%len(r.ring)] = b
		r.count++
	}
	r.captured++
	b.Seq = r.captured
	return true
}

// wants applies the trigger policy. Caller holds the mutex.
func (r *Recorder) wants(b *Bundle) bool {
	switch r.opts.Trigger {
	case TriggerOnError:
		return b.Outcome.Class == "" || b.Outcome.Poisoned
	case TriggerOnPoison:
		return b.Outcome.Poisoned
	case TriggerLatencyOver:
		return b.Outcome.LatencyNS > r.opts.LatencyThreshold.Nanoseconds()
	}
	return true // TriggerAlways (and unknown values degrade to keep-all)
}

// Stats reports how many bundles were offered and how many the policy
// kept (including since-evicted ones). Zeroes on a nil receiver.
func (r *Recorder) Stats() (offered, captured uint64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.offered, r.captured
}

// Bundles returns the kept bundles, oldest first. The slice is fresh but
// the bundles are shared; treat them as immutable. Nil on a nil
// receiver.
func (r *Recorder) Bundles() []*Bundle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Bundle, 0, r.count)
	for i := 0; i < r.count; i++ {
		out = append(out, r.ring[(r.start+i)%len(r.ring)])
	}
	return out
}

// Dump is the JSON document WriteJSON emits and ReadDump parses: the
// schema, the recorder's policy, and the kept bundles sorted by session
// ID (capture order is completion order, which is scheduling-dependent;
// sorting keeps dumps of a deterministic workload diffable).
type Dump struct {
	Schema  int       `json:"schema"`
	Trigger string    `json:"trigger"`
	Bundles []*Bundle `json:"bundles"`
}

// WriteJSON writes the recorder's current bundles as an indented Dump
// document. Safe on a nil receiver (writes an empty dump).
func (r *Recorder) WriteJSON(w io.Writer) error {
	bundles := r.Bundles()
	if bundles == nil {
		bundles = []*Bundle{}
	}
	sort.SliceStable(bundles, func(i, j int) bool { return bundles[i].Session < bundles[j].Session })
	doc := Dump{Schema: BundleSchema, Trigger: r.Trigger().String(), Bundles: bundles}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("flight: encode: %w", err)
	}
	return nil
}

// ReadDump parses a Dump document, validating the schema and that every
// bundle has a decision per point.
func ReadDump(rd io.Reader) (*Dump, error) {
	var d Dump
	if err := json.NewDecoder(rd).Decode(&d); err != nil {
		return nil, fmt.Errorf("flight: decode: %w", err)
	}
	if d.Schema != BundleSchema {
		return nil, fmt.Errorf("flight: dump schema %d, this build reads %d", d.Schema, BundleSchema)
	}
	for i, b := range d.Bundles {
		if b == nil {
			return nil, fmt.Errorf("flight: bundle %d is null", i)
		}
		if err := b.Validate(); err != nil {
			return nil, fmt.Errorf("flight: bundle %d (%s): %w", i, b.Session, err)
		}
	}
	return &d, nil
}

// ReadDumpFile reads a Dump document from the named file.
func ReadDumpFile(path string) (*Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	defer f.Close()
	return ReadDump(f)
}

// Validate checks the bundle's internal consistency: one "add" decision
// per point, in order, with any "end" or "degrade" decisions trailing.
// A "degrade" decision (the eager layer's poisoned-stroke fallback)
// carries the finite-prefix length as its index, which can never exceed
// the points seen so far.
func (b *Bundle) Validate() error {
	adds := 0
	for i, d := range b.Decisions {
		switch d.Kind {
		case "add":
			adds++
			if d.Index != adds {
				return fmt.Errorf("decision %d: add index %d, want %d", i, d.Index, adds)
			}
		case "end":
			if d.Index != len(b.Points) {
				return fmt.Errorf("decision %d: end index %d, want point count %d", i, d.Index, len(b.Points))
			}
		case "degrade":
			if d.Index < 0 || d.Index > adds {
				return fmt.Errorf("decision %d: degrade prefix %d outside [0, %d]", i, d.Index, adds)
			}
		default:
			return fmt.Errorf("decision %d: unknown kind %q", i, d.Kind)
		}
	}
	if adds != len(b.Points) {
		return fmt.Errorf("%d points but %d add decisions", len(b.Points), adds)
	}
	return nil
}

// Handler returns an http.Handler serving the recorder's current dump —
// cmd/gserve mounts it at /debug/flight. Safe with a nil recorder.
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		// Encoding errors mean the client went away; nothing to do.
		_ = r.WriteJSON(w)
	})
}
