//go:build race

package ingest

// raceEnabled reports that this test binary was built with -race. The
// race detector's instrumentation allocates, so the zero-allocation
// contract tests skip themselves under it; the uninstrumented CI pass
// still enforces the contract.
const raceEnabled = true
