package grandma

import (
	"repro/internal/display"
	"repro/internal/geom"
)

// DragHandler implements the classic direct-manipulation drag: press on a
// view, move it with the mouse, release. It is the paper's example of a
// non-gestural interaction technique coexisting with gesture handlers in
// one interface.
type DragHandler struct {
	// Button restricts the handler to one mouse button.
	Button display.Button
	// Predicate optionally narrows which events/views are accepted, on top
	// of the button check ("Each handler has a predicate that it uses to
	// decide which events it will handle").
	Predicate func(ev display.Event, v *View) bool
	// OnMove, if set, is called after each frame translation.
	OnMove func(v *View, dx, dy float64)
	// OnDone, if set, is called when the drag completes.
	OnDone func(v *View)
}

// Wants implements EventHandler.
func (h *DragHandler) Wants(ev display.Event, v *View) bool {
	if ev.Kind != display.MouseDown || ev.Button != h.Button {
		return false
	}
	if h.Predicate != nil && !h.Predicate(ev, v) {
		return false
	}
	return true
}

// Begin implements EventHandler.
func (h *DragHandler) Begin(ev display.Event, v *View, s *Session) Interaction {
	return &dragInteraction{h: h, v: v, lastX: ev.X, lastY: ev.Y}
}

type dragInteraction struct {
	h            *DragHandler
	v            *View
	lastX, lastY float64
}

func (d *dragInteraction) Handle(ev display.Event, s *Session) bool {
	switch ev.Kind {
	case display.MouseMove:
		dx, dy := ev.X-d.lastX, ev.Y-d.lastY
		d.lastX, d.lastY = ev.X, ev.Y
		d.v.Frame = d.v.Frame.Translate(dx, dy)
		if d.h.OnMove != nil {
			d.h.OnMove(d.v, dx, dy)
		}
		s.Redraw()
		return false
	case display.MouseUp:
		if d.h.OnDone != nil {
			d.h.OnDone(d.v)
		}
		s.Redraw()
		return true
	default:
		return false
	}
}

// ClickHandler fires an action on a click: a press and release with little
// movement. Movement beyond Slop aborts without firing (the event is
// consumed — a deliberate simplification versus re-dispatching).
type ClickHandler struct {
	Button    display.Button
	Predicate func(ev display.Event, v *View) bool
	// Slop is the maximum distance the cursor may travel; 0 means 3 px.
	Slop float64
	// Action is invoked on a successful click.
	Action func(v *View)
}

// Wants implements EventHandler.
func (h *ClickHandler) Wants(ev display.Event, v *View) bool {
	if ev.Kind != display.MouseDown || ev.Button != h.Button {
		return false
	}
	if h.Predicate != nil && !h.Predicate(ev, v) {
		return false
	}
	return true
}

// Begin implements EventHandler.
func (h *ClickHandler) Begin(ev display.Event, v *View, s *Session) Interaction {
	return &clickInteraction{h: h, v: v, start: geom.Pt(ev.X, ev.Y)}
}

type clickInteraction struct {
	h       *ClickHandler
	v       *View
	start   geom.Point
	aborted bool
}

func (c *clickInteraction) Handle(ev display.Event, s *Session) bool {
	slop := c.h.Slop
	if slop == 0 {
		slop = 3
	}
	switch ev.Kind {
	case display.MouseMove:
		if geom.Pt(ev.X, ev.Y).Dist(c.start) > slop {
			c.aborted = true
		}
		return false
	case display.MouseUp:
		if !c.aborted && c.h.Action != nil {
			c.h.Action(c.v)
		}
		return true
	default:
		return false
	}
}
