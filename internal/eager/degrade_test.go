package eager

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/gesture"
	"repro/internal/obs"
	"repro/internal/synth"
)

// TestDegradeClassifiesFinitePrefix: after a stroke is poisoned by a
// non-finite point, Degrade runs the full classifier on the longest
// leading all-finite prefix and decides the session with its answer —
// the degraded-classification fallback the serving layer leans on.
func TestDegradeClassifiesFinitePrefix(t *testing.T) {
	trainSet, _, _ := genSets(synth.UDClasses(), 8, 1, 221)
	r, _ := mustTrain(t, trainSet, DefaultOptions())
	reg := obs.New()
	r.Instrument(reg)
	s, err := r.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	good := trainSet.Examples[0].Gesture.Points
	const prefix = 6
	for i := 0; i < prefix; i++ {
		if _, _, err := s.Add(good[i]); err != nil {
			t.Fatal(err)
		}
		if s.Decided() {
			t.Fatalf("session decided at point %d; pick a longer undecided prefix", i)
		}
	}
	if _, _, err := s.Add(geom.TimedPoint{X: math.NaN(), Y: 0, T: good[prefix].T}); err == nil {
		t.Fatal("Add accepted a NaN point")
	}
	if got := s.FinitePrefix(); got != prefix {
		t.Fatalf("FinitePrefix() = %d, want %d", got, prefix)
	}

	want, err := r.Classify(gesture.New(good[:prefix]))
	if err != nil {
		t.Fatal(err)
	}
	class, err := s.Degrade()
	if err != nil {
		t.Fatalf("Degrade: %v", err)
	}
	if class != want {
		t.Errorf("Degrade() = %q, full classifier on prefix says %q", class, want)
	}
	if !s.Decided() || s.Class() != class {
		t.Errorf("Degrade did not decide the session (decided=%v class=%q)", s.Decided(), s.Class())
	}
	// Idempotent once decided.
	if again, err := s.Degrade(); err != nil || again != class {
		t.Errorf("second Degrade() = %q, %v, want %q, nil", again, err, class)
	}

	var degraded int64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == "eager.session.degraded" {
			degraded = c.Value
		}
	}
	if degraded != 1 {
		t.Errorf("eager.session.degraded = %d, want 1", degraded)
	}
}

// TestDegradeOnDecidedSession: a session that already decided eagerly
// returns its class unchanged — no reclassification, no extra counter.
func TestDegradeOnDecidedSession(t *testing.T) {
	trainSet, _, _ := genSets(synth.UDClasses(), 8, 1, 221)
	r, _ := mustTrain(t, trainSet, DefaultOptions())
	s, err := r.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range trainSet.Examples[0].Gesture.Points {
		s.Add(p)
		if s.Decided() {
			break
		}
	}
	if !s.Decided() {
		if _, err := s.End(); err != nil {
			t.Fatal(err)
		}
	}
	want := s.Class()
	if class, err := s.Degrade(); err != nil || class != want {
		t.Fatalf("Degrade on decided session = %q, %v, want %q, nil", class, err, want)
	}
}

// TestDegradeEmptyPrefix: poisoned on the very first point there is
// nothing finite to classify; Degrade reports the error and leaves the
// session undecided.
func TestDegradeEmptyPrefix(t *testing.T) {
	trainSet, _, _ := genSets(synth.UDClasses(), 8, 1, 221)
	r, _ := mustTrain(t, trainSet, DefaultOptions())
	s, err := r.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	s.Add(geom.TimedPoint{X: math.NaN(), Y: 0, T: 0})
	if got := s.FinitePrefix(); got != 0 {
		t.Fatalf("FinitePrefix() = %d, want 0", got)
	}
	if _, err := s.Degrade(); err == nil {
		t.Fatal("Degrade classified an empty prefix")
	}
	if s.Decided() {
		t.Fatal("failed Degrade decided the session")
	}
}

// TestResetClearsFinitePrefix: Reset must clear the finite-prefix
// watermark with the rest of the session state.
func TestResetClearsFinitePrefix(t *testing.T) {
	trainSet, _, _ := genSets(synth.UDClasses(), 8, 1, 221)
	r, _ := mustTrain(t, trainSet, DefaultOptions())
	s, err := r.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	good := trainSet.Examples[0].Gesture.Points
	for i := 0; i < 3; i++ {
		s.Add(good[i])
	}
	if got := s.FinitePrefix(); got != 3 {
		t.Fatalf("FinitePrefix() = %d, want 3", got)
	}
	s.Reset()
	if got := s.FinitePrefix(); got != 0 {
		t.Fatalf("FinitePrefix() after Reset = %d, want 0", got)
	}
}

// TestDegradeDecisionIsTapped: the degrade fallback shows up in the
// decision tap as a "degrade" decision at the prefix index, which is
// what makes degraded flight bundles replayable.
func TestDegradeDecisionIsTapped(t *testing.T) {
	trainSet, _, _ := genSets(synth.UDClasses(), 8, 1, 221)
	r, _ := mustTrain(t, trainSet, DefaultOptions())
	s, err := r.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	var tapped []Decision
	s.SetTap(tapFunc(func(d Decision) { tapped = append(tapped, d) }))
	good := trainSet.Examples[0].Gesture.Points
	for i := 0; i < 4; i++ {
		s.Add(good[i])
	}
	s.Add(geom.TimedPoint{X: math.Inf(1), Y: 0, T: good[4].T})
	class, err := s.Degrade()
	if err != nil {
		t.Fatal(err)
	}
	last := tapped[len(tapped)-1]
	if last.Kind != "degrade" || last.Index != 4 || last.Class != class {
		t.Errorf("last tapped decision = %+v, want kind degrade, index 4, class %q", last, class)
	}
}

// tapFunc adapts a decision callback to the Tap interface, ignoring
// points.
type tapFunc func(Decision)

func (f tapFunc) TapPoint(geom.TimedPoint) {}
func (f tapFunc) TapDecision(d Decision)   { f(d) }
