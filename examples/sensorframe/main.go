// Sensorframe: the paper's section-6 multi-finger extension. A simulated
// Sensor Frame delivers finger events; the first finger draws a gesture
// (recognized with the usual single-stroke machinery), a second finger
// then joins to drive simultaneous translate-rotate-scale of an object,
// and extra fingers surface as additional interactive parameters.
package main

import (
	"fmt"
	"log"
	"math"

	rubine "repro"
	"repro/internal/multipath"
)

func main() {
	train := rubine.Generate(rubine.UD, 12, 7)
	opts := rubine.DefaultEagerOptions()
	// Fire only when the AUC and the full classifier agree (the A5
	// extension): at a sharp corner the AUC can be a point ahead.
	opts.RequireAgreement = true
	rec, _, err := rubine.TrainEager(train, opts)
	if err != nil {
		log.Fatal(err)
	}

	// The object being manipulated: a square, as four corner points.
	square := &polygon{pts: []rubine.Point{
		{X: 200, Y: 200}, {X: 260, Y: 200}, {X: 260, Y: 260}, {X: 200, Y: 260},
	}}

	session := multipath.NewSession(rec)
	session.OnRecognized = func(class string) {
		fmt.Printf("gesture recognized: %q -> entering manipulation\n", class)
	}
	session.OnTransform = func(tr multipath.Transform) { tr.ApplyTo(square) }
	session.OnExtraFingers = func(n int) {
		fmt.Printf("extra fingers in view: %d (could map to color/thickness)\n", n)
	}

	// Finger 0 draws a "U" gesture (right, then up).
	params := rubine.DefaultGenParams(3)
	params.CornerLoopProb = 0 // a clean stroke for the demo
	gen := rubine.NewGenerator(params)
	stroke := gen.Sample(rubine.Classes(rubine.UD)[0]).G.Points
	for i, p := range stroke {
		kind := multipath.FingerMove
		if i == 0 {
			kind = multipath.FingerDown
		}
		session.Handle(multipath.Event{Finger: 0, Kind: kind, X: p.X, Y: p.Y, T: p.T})
	}
	last := stroke[len(stroke)-1]

	fmt.Printf("square before manipulation: %v (side %.1f)\n", square.pts[0], square.side())

	// Finger 1 joins; the pair then spreads apart and twists, scaling and
	// rotating the square while dragging it.
	t := last.T
	a := rubine.Pt(last.X, last.Y)
	b := a.Add(rubine.Pt(40, 0))
	session.Handle(multipath.Event{Finger: 1, Kind: multipath.FingerDown, X: b.X, Y: b.Y, T: t})
	for i := 1; i <= 10; i++ {
		t += 0.02
		f := float64(i) / 10
		// Spread to 1.8x and rotate 45 degrees while drifting right-down.
		ang := f * math.Pi / 4
		spread := 40 * (1 + 0.8*f)
		mid := a.Lerp(b, 0.5).Add(rubine.Pt(60*f, 40*f))
		half := rubine.Pt(math.Cos(ang), math.Sin(ang)).Scale(spread / 2)
		na := mid.Sub(half)
		nb := mid.Add(half)
		session.Handle(multipath.Event{Finger: 0, Kind: multipath.FingerMove, X: na.X, Y: na.Y, T: t})
		session.Handle(multipath.Event{Finger: 1, Kind: multipath.FingerMove, X: nb.X, Y: nb.Y, T: t})
	}
	session.Handle(multipath.Event{Finger: 2, Kind: multipath.FingerDown, X: 50, Y: 50, T: t + 0.02})
	session.Handle(multipath.Event{Finger: 2, Kind: multipath.FingerUp, X: 50, Y: 50, T: t + 0.04})

	fmt.Printf("square after manipulation:  %v (side %.1f, tilted %.0f deg)\n",
		square.pts[0], square.side(), square.tilt()*180/math.Pi)
}

// polygon is a minimal Transformable.
type polygon struct{ pts []rubine.Point }

func (p *polygon) Translate(dx, dy float64) {
	for i := range p.pts {
		p.pts[i] = p.pts[i].Add(rubine.Pt(dx, dy))
	}
}

func (p *polygon) RotateScale(center rubine.Point, angle, scale float64) {
	for i := range p.pts {
		p.pts[i] = p.pts[i].Sub(center).Rotate(angle).Scale(scale).Add(center)
	}
}

func (p *polygon) side() float64 { return p.pts[0].Dist(p.pts[1]) }

func (p *polygon) tilt() float64 {
	d := p.pts[1].Sub(p.pts[0])
	return math.Atan2(d.Y, d.X)
}
