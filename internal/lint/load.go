package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir          string
	ImportPath   string
	Name         string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// Load enumerates the packages matching the patterns with `go list` (run
// in dir) and type-checks each from source. Test files are loaded too:
// in-package _test.go files join their package's type-check unit, and
// external (package foo_test) files form a separate unit under the
// import path with a " [test]" suffix. Most analyzers exempt _test.go
// files by specification, but errcmp deliberately does not — sentinel
// comparisons that break under error wrapping live mostly in tests — so
// the loader cannot drop them.
//
// Loading shells out to the go tool for package enumeration and uses the
// standard library's source importer for dependencies, so it works
// offline with no modules beyond the repository itself.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: parsing go list output: %w", err)
		}
		listed = append(listed, p)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) > 0 {
			files := make([]string, 0, len(lp.GoFiles)+len(lp.TestGoFiles))
			for _, f := range append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...) {
				files = append(files, filepath.Join(lp.Dir, f))
			}
			pkg, err := check(fset, imp, lp.ImportPath, files)
			if err != nil {
				return nil, err
			}
			pkg.Dir = lp.Dir
			pkgs = append(pkgs, pkg)
		}
		if len(lp.XTestGoFiles) > 0 {
			files := make([]string, len(lp.XTestGoFiles))
			for i, f := range lp.XTestGoFiles {
				files[i] = filepath.Join(lp.Dir, f)
			}
			pkg, err := check(fset, imp, lp.ImportPath+" [test]", files)
			if err != nil {
				return nil, err
			}
			pkg.Dir = lp.Dir
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// ModulePath reports the import path of the main module rooted at (or
// above) dir, via `go list -m`. Module analyzers follow call edges only
// within this prefix.
func ModulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("lint: go list -m: %v\n%s", err, stderr.String())
	}
	fields := bytes.Fields(out)
	if len(fields) == 0 {
		return "", fmt.Errorf("lint: go list -m: empty module path")
	}
	return string(fields[0]), nil
}

// LoadDir parses and type-checks every .go file in one directory as a
// single package with the given import path. The linttest harness uses it
// to load testdata packages, which `go list` deliberately cannot see.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := check(fset, imp, importPath, files)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

// check parses and type-checks one package.
func check(fset *token.FileSet, imp types.Importer, importPath string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{ImportPath: importPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
