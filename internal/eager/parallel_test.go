package eager

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/gesture"
	"repro/internal/geom"
	"repro/internal/synth"
)

// TestParallelLabelMatchesSerial: the parallel labelling pass must emit a
// bit-identical subgesture slice — same order, predictions, completeness,
// and feature bits — for every worker count.
func TestParallelLabelMatchesSerial(t *testing.T) {
	trainSet, _, _ := genSets(synth.EightDirectionClasses(), 8, 1, 171)
	r, _ := mustTrain(t, trainSet, DefaultOptions())
	want, err := LabelSubgestures(trainSet, r.Full, r.Opts.MinSubgesture)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		got, err := LabelSubgesturesParallel(trainSet, r.Full, r.Opts.MinSubgesture, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel labelling differs from serial oracle", workers)
		}
	}
}

// TestParallelTweakMatchesSerial: the chunked verification scan plus the
// candidate fixpoint must replay the serial adjustment sequence exactly.
func TestParallelTweakMatchesSerial(t *testing.T) {
	trainSet, _, _ := genSets(synth.UDClasses(), 12, 1, 181)
	r, _ := mustTrain(t, trainSet, DefaultOptions())
	subs, err := LabelSubgestures(trainSet, r.Full, r.Opts.MinSubgesture)
	if err != nil {
		t.Fatal(err)
	}
	thr := MoveThreshold(subs, r.Full, r.Opts.MoveThresholdFrac)
	MoveAccidentals(subs, r.Full, thr)

	aucSerial, err := trainAUC(subs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	aucParallel, err := trainAUC(subs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	delta := math.Log(DefaultOptions().AmbiguityBias)
	for i, name := range aucSerial.Classes {
		if !IsCompleteSet(name) {
			aucSerial.BiasClass(i, delta)
			aucParallel.BiasClass(i, delta)
		}
	}
	wantAdj, err := Tweak(aucSerial, subs)
	if err != nil {
		t.Fatal(err)
	}
	if wantAdj == 0 {
		t.Fatal("tweak made no adjustments; test exercises nothing")
	}
	for _, workers := range []int{0, 2, 5} {
		clone, err := trainAUC(subs, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for i, name := range clone.Classes {
			if !IsCompleteSet(name) {
				clone.BiasClass(i, delta)
			}
		}
		gotAdj, err := TweakParallel(clone, subs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if gotAdj != wantAdj {
			t.Fatalf("workers=%d: %d adjustments, serial made %d", workers, gotAdj, wantAdj)
		}
		if !reflect.DeepEqual(clone.Consts, aucSerial.Consts) {
			t.Fatalf("workers=%d: tweaked constants differ from serial oracle", workers)
		}
	}
}

// TestParallelTrainingBitIdentical is the PR's acceptance property: a
// recognizer trained with Parallelism: 0 (auto) — and explicitly
// oversubscribed worker counts — is bit-for-bit the recognizer trained by
// the serial reference path (Parallelism: 1), and agrees with it on every
// held-out eager Run outcome.
func TestParallelTrainingBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name    string
		classes []synth.Class
	}{
		{"ud", synth.UDClasses()},
		{"eight", synth.EightDirectionClasses()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			trainSet, testSet, _ := genSets(tc.classes, 10, 10, 191)
			serialOpts := DefaultOptions()
			serialOpts.Parallelism = 1
			rSerial, repSerial := mustTrain(t, trainSet, serialOpts)

			for _, parallelism := range []int{0, 4, 9} {
				opts := DefaultOptions()
				opts.Parallelism = parallelism
				rPar, repPar := mustTrain(t, trainSet, opts)

				if *repSerial != *repPar {
					t.Fatalf("parallelism=%d: reports differ:\nserial:   %+v\nparallel: %+v",
						parallelism, repSerial, repPar)
				}
				if !reflect.DeepEqual(rSerial.AUC.Classes, rPar.AUC.Classes) ||
					!reflect.DeepEqual(rSerial.AUC.Weights, rPar.AUC.Weights) ||
					!reflect.DeepEqual(rSerial.AUC.Consts, rPar.AUC.Consts) ||
					!reflect.DeepEqual(rSerial.Full.C.Weights, rPar.Full.C.Weights) ||
					!reflect.DeepEqual(rSerial.Full.C.Consts, rPar.Full.C.Consts) {
					t.Fatalf("parallelism=%d: trained weights differ from serial oracle", parallelism)
				}
				for _, e := range testSet.Examples {
					c1, f1, err1 := rSerial.Run(e.Gesture)
					c2, f2, err2 := rPar.Run(e.Gesture)
					if err1 != nil || err2 != nil {
						t.Fatal(err1, err2)
					}
					if c1 != c2 || f1 != f2 {
						t.Fatalf("parallelism=%d: Run disagrees: (%s,%d) vs (%s,%d)",
							parallelism, c1, f1, c2, f2)
					}
				}
			}
		})
	}
}

// TestParallelLabelErrorDeterministic: when several examples fail, the
// parallel pass must report the same (lowest-indexed) error the serial
// scan reports, regardless of completion order.
func TestParallelLabelErrorDeterministic(t *testing.T) {
	trainSet, _, _ := genSets(synth.UDClasses(), 8, 1, 201)
	r, _ := mustTrain(t, trainSet, DefaultOptions())

	// A separate labelling set with NaN-poisoned gestures at two indices.
	bad := &gesture.Set{}
	poison := func() gesture.Gesture {
		pts := geom.Path{}
		for i := 0; i < 8; i++ {
			pts = append(pts, geom.TimedPoint{X: float64(i) * 10, Y: 0, T: float64(i) * 0.01})
		}
		pts[5].X = math.NaN()
		return gesture.New(pts)
	}
	bad.Add("U", trainSet.Examples[0].Gesture)
	bad.Add("U", poison())
	bad.Add("D", trainSet.Examples[1].Gesture)
	bad.Add("D", poison())

	_, wantErr := LabelSubgestures(bad, r.Full, r.Opts.MinSubgesture)
	if wantErr == nil {
		t.Fatal("serial labelling accepted a NaN gesture")
	}
	for _, workers := range []int{0, 2, 4} {
		_, gotErr := LabelSubgesturesParallel(bad, r.Full, r.Opts.MinSubgesture, workers)
		if gotErr == nil {
			t.Fatalf("workers=%d: parallel labelling accepted a NaN gesture", workers)
		}
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("workers=%d: error %q, serial oracle %q", workers, gotErr, wantErr)
		}
	}
}

// TestParallelismValidation: negative Parallelism is an option error.
func TestParallelismValidation(t *testing.T) {
	set, _, _ := genSets(synth.UDClasses(), 5, 1, 211)
	bad := DefaultOptions()
	bad.Parallelism = -1
	if _, _, err := Train(set, bad); err == nil {
		t.Error("negative Parallelism accepted")
	}
}
