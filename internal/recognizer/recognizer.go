// Package recognizer ties the feature extractor and the linear classifier
// into the paper's full classifier C-hat: a function from gestures to class
// names, trained from example gestures. The eager-recognition trainer, the
// GRANDMA gesture handler, and GDP all consume this type.
package recognizer

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/classifier"
	"repro/internal/features"
	"repro/internal/gesture"
	"repro/internal/linalg"
)

// Full is a trained full (non-eager) gesture classifier.
type Full struct {
	Opts features.Options       `json:"opts"`
	C    *classifier.Classifier `json:"classifier"`
}

// TrainOptions configures full-classifier training.
type TrainOptions struct {
	Features features.Options
	Sort     bool // sort class names in the trained classifier
}

// DefaultTrainOptions returns paper-faithful training options.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Features: features.DefaultOptions()}
}

// Train builds a full classifier from a labelled gesture set.
func Train(set *gesture.Set, opts TrainOptions) (*Full, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Features.Validate(); err != nil {
		return nil, err
	}
	ex := make([]classifier.Example, 0, set.Len())
	for i, e := range set.Examples {
		v, err := features.Compute(e.Gesture.Points, opts.Features)
		if err != nil {
			return nil, fmt.Errorf("recognizer: example %d (%s): %w", i, e.Class, err)
		}
		ex = append(ex, classifier.Example{Class: e.Class, Features: v})
	}
	c, err := classifier.Train(ex, classifier.Options{SortClasses: opts.Sort})
	if err != nil {
		return nil, fmt.Errorf("recognizer: %w", err)
	}
	return &Full{Opts: opts.Features, C: c}, nil
}

// Features returns the feature vector of g under the recognizer's options.
// Strokes containing non-finite coordinates are an error, never NaN output.
func (f *Full) Features(g gesture.Gesture) (linalg.Vec, error) {
	return features.Compute(g.Points, f.Opts)
}

// Classify returns the class of g.
func (f *Full) Classify(g gesture.Gesture) (string, error) {
	v, err := f.Features(g)
	if err != nil {
		return "", err
	}
	name, _, err := f.C.Classify(v)
	return name, err
}

// Evaluate returns the classification of g with rejection diagnostics.
func (f *Full) Evaluate(g gesture.Gesture) (classifier.Result, error) {
	v, err := f.Features(g)
	if err != nil {
		return classifier.Result{}, err
	}
	return f.C.Evaluate(v)
}

// Classes returns the class names the recognizer discriminates.
func (f *Full) Classes() []string { return f.C.Classes }

// Accuracy classifies every example in the set and returns the fraction
// classified correctly, together with the per-example predictions.
func (f *Full) Accuracy(set *gesture.Set) (float64, []string, error) {
	if set.Len() == 0 {
		return 0, nil, nil
	}
	preds := make([]string, set.Len())
	correct := 0
	for i, e := range set.Examples {
		p, err := f.Classify(e.Gesture)
		if err != nil {
			return 0, nil, fmt.Errorf("recognizer: example %d (%s): %w", i, e.Class, err)
		}
		preds[i] = p
		if preds[i] == e.Class {
			correct++
		}
	}
	return float64(correct) / float64(set.Len()), preds, nil
}

// WriteJSON serializes the recognizer.
func (f *Full) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("recognizer: encode: %w", err)
	}
	return nil
}

// ReadJSON deserializes a recognizer, validating the feature options, the
// classifier's integrity, and that the two agree on dimensionality, so a
// corrupt or hand-edited file fails at load time.
func ReadJSON(r io.Reader) (*Full, error) {
	var f Full
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("recognizer: decode: %w", err)
	}
	if f.C == nil {
		return nil, fmt.Errorf("recognizer: missing classifier")
	}
	if err := f.Opts.Validate(); err != nil {
		return nil, fmt.Errorf("recognizer: %w", err)
	}
	if err := f.C.Validate(); err != nil {
		return nil, fmt.Errorf("recognizer: %w", err)
	}
	if f.C.Dim != f.Opts.Dim() {
		return nil, fmt.Errorf("recognizer: classifier dimension %d does not match feature options dimension %d",
			f.C.Dim, f.Opts.Dim())
	}
	return &f, nil
}

// SaveFile writes the recognizer to the named file as JSON.
func (f *Full) SaveFile(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("recognizer: %w", err)
	}
	defer fh.Close()
	if err := f.WriteJSON(fh); err != nil {
		return err
	}
	return fh.Close()
}

// LoadFile reads a recognizer from the named JSON file.
func LoadFile(path string) (*Full, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("recognizer: %w", err)
	}
	defer fh.Close()
	return ReadJSON(fh)
}
