package geom

import "math"

// Path is an ordered sequence of mouse samples — the raw material of a
// gesture. Paths are value-ish: the mutating helpers return new slices and
// never alias their receiver unless documented.
type Path []TimedPoint

// Bounds returns the bounding box of the path's spatial component.
func (p Path) Bounds() Rect {
	r := EmptyRect()
	for _, tp := range p {
		r = r.AddPoint(tp.Point())
	}
	return r
}

// Length returns the total arc length of the path.
func (p Path) Length() float64 {
	total := 0.0
	for i := 1; i < len(p); i++ {
		total += p[i].Point().Dist(p[i-1].Point())
	}
	return total
}

// Duration returns the elapsed time from the first sample to the last, or 0
// for paths with fewer than two samples.
func (p Path) Duration() float64 {
	if len(p) < 2 {
		return 0
	}
	return p[len(p)-1].T - p[0].T
}

// Translate returns a copy of the path shifted by (dx, dy). Timestamps are
// preserved.
func (p Path) Translate(dx, dy float64) Path {
	out := make(Path, len(p))
	for i, tp := range p {
		out[i] = TimedPoint{tp.X + dx, tp.Y + dy, tp.T}
	}
	return out
}

// ScaleAbout returns a copy of the path scaled by s about the given center.
func (p Path) ScaleAbout(center Point, s float64) Path {
	out := make(Path, len(p))
	for i, tp := range p {
		q := tp.Point().Sub(center).Scale(s).Add(center)
		out[i] = TimedPoint{q.X, q.Y, tp.T}
	}
	return out
}

// RotateAbout returns a copy of the path rotated by angle radians about the
// given center.
func (p Path) RotateAbout(center Point, angle float64) Path {
	out := make(Path, len(p))
	for i, tp := range p {
		q := tp.Point().RotateAround(center, angle)
		out[i] = TimedPoint{q.X, q.Y, tp.T}
	}
	return out
}

// TimeShift returns a copy of the path with dt added to every timestamp.
func (p Path) TimeShift(dt float64) Path {
	out := make(Path, len(p))
	for i, tp := range p {
		out[i] = TimedPoint{tp.X, tp.Y, tp.T + dt}
	}
	return out
}

// Prefix returns the subpath consisting of the first n samples. It aliases
// the receiver's backing array (no copy), mirroring the paper's definition
// of the subgesture g[i]. Prefix panics if n is out of range, matching
// the paper's "undefined when i > |g|".
func (p Path) Prefix(n int) Path {
	if n < 0 || n > len(p) {
		panic("geom: Path.Prefix index out of range")
	}
	return p[:n]
}

// Clone returns a deep copy of the path.
func (p Path) Clone() Path {
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// At returns the interpolated spatial position a fraction t in [0,1] along
// the path by arc length. Empty paths return the origin; single-point paths
// return that point.
func (p Path) At(t float64) Point {
	switch len(p) {
	case 0:
		return Point{}
	case 1:
		return p[0].Point()
	}
	if t <= 0 {
		return p[0].Point()
	}
	if t >= 1 {
		return p[len(p)-1].Point()
	}
	target := p.Length() * t
	run := 0.0
	for i := 1; i < len(p); i++ {
		a, b := p[i-1].Point(), p[i].Point()
		seg := a.Dist(b)
		if run+seg >= target {
			if seg == 0 {
				return a
			}
			return a.Lerp(b, (target-run)/seg)
		}
		run += seg
	}
	return p[len(p)-1].Point()
}

// Resample returns a new path with n samples evenly spaced by arc length.
// Timestamps are interpolated linearly in path-fraction space. n must be at
// least 2 and the receiver must have at least 2 samples; otherwise a clone
// of the receiver is returned.
func (p Path) Resample(n int) Path {
	if n < 2 || len(p) < 2 {
		return p.Clone()
	}
	total := p.Length()
	out := make(Path, 0, n)
	out = append(out, p[0])
	if total == 0 {
		// Degenerate path: all points coincide. Replicate spatially,
		// spreading timestamps across the original duration.
		t0, t1 := p[0].T, p[len(p)-1].T
		for i := 1; i < n; i++ {
			frac := float64(i) / float64(n-1)
			out = append(out, TimedPoint{p[0].X, p[0].Y, t0 + (t1-t0)*frac})
		}
		return out
	}
	step := total / float64(n-1)
	run := 0.0
	seg := 1
	for len(out) < n-1 {
		target := float64(len(out)) * step
		for seg < len(p) {
			a, b := p[seg-1], p[seg]
			d := a.Point().Dist(b.Point())
			if run+d >= target && d > 0 {
				f := (target - run) / d
				out = append(out, TimedPoint{
					X: a.X + (b.X-a.X)*f,
					Y: a.Y + (b.Y-a.Y)*f,
					T: a.T + (b.T-a.T)*f,
				})
				break
			}
			run += d
			seg++
		}
		if seg >= len(p) {
			break
		}
	}
	out = append(out, p[len(p)-1])
	return out
}

// PolylineLength returns the arc length of a polyline given as bare points.
func PolylineLength(pts []Point) float64 {
	total := 0.0
	for i := 1; i < len(pts); i++ {
		total += pts[i].Dist(pts[i-1])
	}
	return total
}

// PointAlongPolyline returns the point a distance d along the polyline,
// clamped to the endpoints, together with the index of the segment it falls
// on (the index of the segment's start vertex).
func PointAlongPolyline(pts []Point, d float64) (Point, int) {
	if len(pts) == 0 {
		return Point{}, 0
	}
	if len(pts) == 1 || d <= 0 {
		return pts[0], 0
	}
	run := 0.0
	for i := 1; i < len(pts); i++ {
		seg := pts[i].Dist(pts[i-1])
		if run+seg >= d {
			if seg == 0 {
				return pts[i-1], i - 1
			}
			return pts[i-1].Lerp(pts[i], (d-run)/seg), i - 1
		}
		run += seg
	}
	return pts[len(pts)-1], len(pts) - 2
}

// PolygonContains reports whether p lies inside the polygon given by pts
// (implicitly closed), using the even-odd ray-casting rule. Points exactly
// on an edge may land on either side; gesture lassos do not need boundary
// exactness. Polygons with fewer than 3 vertices contain nothing.
func PolygonContains(pts []Point, p Point) bool {
	if len(pts) < 3 {
		return false
	}
	inside := false
	j := len(pts) - 1
	for i := 0; i < len(pts); i++ {
		pi, pj := pts[i], pts[j]
		if (pi.Y > p.Y) != (pj.Y > p.Y) {
			x := pi.X + (p.Y-pi.Y)/(pj.Y-pi.Y)*(pj.X-pi.X)
			if p.X < x {
				inside = !inside
			}
		}
		j = i
	}
	return inside
}

// Polygon returns the path's spatial points as a polygon vertex list.
func (p Path) Polygon() []Point {
	out := make([]Point, len(p))
	for i, tp := range p {
		out[i] = tp.Point()
	}
	return out
}

// SegmentDist returns the distance from point p to the segment ab.
func SegmentDist(p, a, b Point) float64 {
	ab := b.Sub(a)
	l2 := ab.Dot(ab)
	if l2 == 0 {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(ab) / l2
	t = math.Max(0, math.Min(1, t))
	return p.Dist(a.Add(ab.Scale(t)))
}
