package classifier

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/mathx"
)

// gauss2 builds examples of two well-separated 2-D Gaussian classes.
func gauss2(rng *rand.Rand, n int) []Example {
	var out []Example
	for i := 0; i < n; i++ {
		out = append(out, Example{
			Class:    "a",
			Features: linalg.Vec{rng.NormFloat64(), rng.NormFloat64()},
		})
		out = append(out, Example{
			Class:    "b",
			Features: linalg.Vec{10 + rng.NormFloat64(), 10 + rng.NormFloat64()},
		})
	}
	return out
}

func TestTrainAndClassifySeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := Train(gauss2(rng, 20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumClasses() != 2 || c.Dim != 2 {
		t.Fatalf("shape: %d classes, dim %d", c.NumClasses(), c.Dim)
	}
	// Fresh draws from each distribution must classify correctly.
	for i := 0; i < 100; i++ {
		fa := linalg.Vec{rng.NormFloat64(), rng.NormFloat64()}
		if got, _, err := c.Classify(fa); err != nil || got != "a" {
			t.Fatalf("misclassified class-a point %v as %s (err %v)", fa, got, err)
		}
		fb := linalg.Vec{10 + rng.NormFloat64(), 10 + rng.NormFloat64()}
		if got, _, err := c.Classify(fb); err != nil || got != "b" {
			t.Fatalf("misclassified class-b point %v as %s (err %v)", fb, got, err)
		}
	}
}

func TestClassOrder(t *testing.T) {
	ex := []Example{
		{Class: "z", Features: linalg.Vec{0}},
		{Class: "a", Features: linalg.Vec{1}},
		{Class: "z", Features: linalg.Vec{0.1}},
	}
	c, err := Train(ex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Classes[0] != "z" || c.Classes[1] != "a" {
		t.Errorf("first-appearance order violated: %v", c.Classes)
	}
	c, err = Train(ex, Options{SortClasses: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Classes[0] != "a" || c.Classes[1] != "z" {
		t.Errorf("sorted order violated: %v", c.Classes)
	}
	if c.ClassIndex("z") != 1 || c.ClassIndex("missing") != -1 {
		t.Error("ClassIndex wrong")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Options{}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train([]Example{{Class: "a", Features: linalg.Vec{}}}, Options{}); err == nil {
		t.Error("zero-dim features accepted")
	}
	bad := []Example{
		{Class: "a", Features: linalg.Vec{1, 2}},
		{Class: "b", Features: linalg.Vec{1}},
	}
	if _, err := Train(bad, Options{}); err == nil {
		t.Error("inconsistent dimensions accepted")
	}
}

func TestSingularCovarianceRegularized(t *testing.T) {
	// All examples identical within each class: zero scatter, singular
	// covariance. Training must still succeed via the ridge.
	ex := []Example{
		{Class: "a", Features: linalg.Vec{0, 0}},
		{Class: "a", Features: linalg.Vec{0, 0}},
		{Class: "b", Features: linalg.Vec{5, 5}},
		{Class: "b", Features: linalg.Vec{5, 5}},
	}
	c, err := Train(ex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Ridge <= 0 {
		t.Errorf("expected a ridge, got %v", c.Ridge)
	}
	if got, _, err := c.Classify(linalg.Vec{0.1, -0.1}); err != nil || got != "a" {
		t.Errorf("near-a point classified as %s (err %v)", got, err)
	}
	if got, _, err := c.Classify(linalg.Vec{4.9, 5.1}); err != nil || got != "b" {
		t.Errorf("near-b point classified as %s (err %v)", got, err)
	}
}

func TestOneExamplePerClass(t *testing.T) {
	// Degenerate denominator: falls back to the identity metric
	// (nearest mean).
	ex := []Example{
		{Class: "a", Features: linalg.Vec{0, 0}},
		{Class: "b", Features: linalg.Vec{10, 0}},
	}
	c, err := Train(ex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := c.Classify(linalg.Vec{2, 0}); err != nil || got != "a" {
		t.Errorf("got %s (err %v)", got, err)
	}
	if got, _, err := c.Classify(linalg.Vec{8, 0}); err != nil || got != "b" {
		t.Errorf("got %s (err %v)", got, err)
	}
}

func TestSingleClass(t *testing.T) {
	ex := []Example{
		{Class: "only", Features: linalg.Vec{1, 2}},
		{Class: "only", Features: linalg.Vec{2, 1}},
	}
	c, err := Train(ex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := c.Classify(linalg.Vec{100, 100}); err != nil || got != "only" {
		t.Errorf("single-class classifier returned %s (err %v)", got, err)
	}
	r, err := c.Evaluate(linalg.Vec{1.5, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Probability != 1 {
		t.Errorf("single-class probability = %v", r.Probability)
	}
}

func TestScoreDimensionError(t *testing.T) {
	c, _ := Train(gauss2(rand.New(rand.NewSource(2)), 5), Options{})
	if _, err := c.Score(linalg.Vec{1, 2, 3}); err == nil {
		t.Error("Score with wrong dimension did not error")
	}
}

func TestEvaluateDiagnostics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, _ := Train(gauss2(rng, 30), Options{})
	// A point at a class mean: high probability, small Mahalanobis.
	r, err := c.Evaluate(linalg.Vec{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Class != "a" {
		t.Fatalf("mean point misclassified: %+v", r)
	}
	if r.Probability < 0.99 {
		t.Errorf("probability at mean = %v", r.Probability)
	}
	if r.Mahalanobis > 1 {
		t.Errorf("Mahalanobis at mean = %v", r.Mahalanobis)
	}
	// The midpoint of the two sample means lies on the decision boundary,
	// where the two classes are equally likely.
	mid := c.Means[0].Add(c.Means[1])
	mid.Scale(0.5)
	r, err = c.Evaluate(mid)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(r.Probability, 0.5, 1e-6) {
		t.Errorf("boundary probability = %v, want 0.5", r.Probability)
	}
	// A far outlier: huge Mahalanobis.
	r, err = c.Evaluate(linalg.Vec{500, -500})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mahalanobis < 10 {
		t.Errorf("outlier Mahalanobis = %v", r.Mahalanobis)
	}
}

func TestProbabilitiesBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c, _ := Train(gauss2(rng, 10), Options{})
	f := func(x, y float64) bool {
		if !mathx.Finite(x) || !mathx.Finite(y) {
			return true
		}
		x, y = math.Mod(x, 1e3), math.Mod(y, 1e3)
		r, err := c.Evaluate(linalg.Vec{x, y})
		if err != nil {
			return false
		}
		return r.Probability > 0 && r.Probability <= 1+1e-12 && mathx.Finite(r.Mahalanobis)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestArgmaxInvariantUnderSharedShift(t *testing.T) {
	// Adding the same constant to every class's constant term must not
	// change any classification.
	rng := rand.New(rand.NewSource(5))
	c, _ := Train(gauss2(rng, 10), Options{})
	shifted, _ := Train(gauss2(rand.New(rand.NewSource(5)), 10), Options{})
	for i := range shifted.Consts {
		shifted.BiasClass(i, 42.5)
	}
	for i := 0; i < 50; i++ {
		f := linalg.Vec{rng.Float64() * 10, rng.Float64() * 10}
		a, _, _ := c.Classify(f)
		b, _, _ := shifted.Classify(f)
		if a != b {
			t.Fatalf("shared shift changed classification of %v: %s vs %s", f, a, b)
		}
	}
}

func TestBiasClassChangesBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c, _ := Train(gauss2(rng, 20), Options{})
	mid := linalg.Vec{5, 5}
	// Strongly bias class b: the midpoint must now classify as b.
	c.BiasClass(c.ClassIndex("b"), 1e6)
	if got, _, _ := c.Classify(mid); got != "b" {
		t.Errorf("bias toward b ignored, got %s", got)
	}
	// And the reverse.
	c.BiasClass(c.ClassIndex("a"), 2e6)
	if got, _, _ := c.Classify(mid); got != "a" {
		t.Errorf("bias toward a ignored, got %s", got)
	}
}

func TestMeanDistanceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, _ := Train(gauss2(rng, 15), Options{})
	d01 := c.MeanDistance(0, 1)
	d10 := c.MeanDistance(1, 0)
	if !mathx.ApproxEqual(d01, d10, 1e-9) {
		t.Errorf("MeanDistance asymmetric: %v vs %v", d01, d10)
	}
	if c.MeanDistance(0, 0) != 0 {
		t.Error("self mean distance nonzero")
	}
	if d01 < 1 {
		t.Errorf("separated classes too close: %v", d01)
	}
}

func TestMahalanobisMatchesClassification(t *testing.T) {
	// The paper: "the chosen class of a feature vector is simply the class
	// whose mean is closest ... under this metric." With equal-size
	// unbiased classes the discriminant argmax and the Mahalanobis argmin
	// agree.
	rng := rand.New(rand.NewSource(8))
	c, _ := Train(gauss2(rng, 25), Options{})
	for i := 0; i < 100; i++ {
		f := linalg.Vec{rng.Float64()*14 - 2, rng.Float64()*14 - 2}
		_, best, err := c.Classify(f)
		if err != nil {
			t.Fatal(err)
		}
		minIdx := 0
		for j := range c.Classes {
			dj, err := c.Mahalanobis(f, j)
			if err != nil {
				t.Fatal(err)
			}
			dm, err := c.Mahalanobis(f, minIdx)
			if err != nil {
				t.Fatal(err)
			}
			if dj < dm {
				minIdx = j
			}
		}
		if best != minIdx {
			t.Fatalf("argmax score %d != argmin Mahalanobis %d for %v", best, minIdx, f)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c, _ := Train(gauss2(rng, 10), Options{})
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		f := linalg.Vec{rng.Float64() * 10, rng.Float64() * 10}
		a, _, _ := c.Classify(f)
		b, _, _ := c2.Classify(f)
		if a != b {
			t.Fatalf("round-tripped classifier disagrees on %v", f)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{\"classes\":[\"a\"]}")); err == nil {
		t.Error("misshapen classifier accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString("not json")); err == nil {
		t.Error("non-JSON accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c, _ := Train(gauss2(rng, 10), Options{})
	path := t.TempDir() + "/clf.json"
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumClasses() != 2 {
		t.Error("loaded classifier malformed")
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("missing file load succeeded")
	}
}

func TestScoreIntoMatchesScore(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c, _ := Train(gauss2(rng, 10), Options{})
	buf := make([]float64, c.NumClasses())
	for i := 0; i < 50; i++ {
		f := linalg.Vec{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		want, err := c.Score(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ScoreInto(f, buf)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("ScoreInto[%d] = %v, want %v", j, got[j], want[j])
			}
		}
		w1, i1, _ := c.Classify(f)
		w2, i2, _ := c.ClassifyInto(f, buf)
		if w1 != w2 || i1 != i2 {
			t.Fatalf("ClassifyInto disagrees: %s/%d vs %s/%d", w1, i1, w2, i2)
		}
	}
}

func TestScoreIntoAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c, _ := Train(gauss2(rng, 10), Options{})
	buf := make([]float64, c.NumClasses())
	f := linalg.Vec{1, 2}
	allocs := testing.AllocsPerRun(100, func() {
		c.ClassifyInto(f, buf)
	})
	if allocs != 0 {
		t.Errorf("ClassifyInto allocates %v per run", allocs)
	}
}

func TestScoreIntoBadBufferError(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c, _ := Train(gauss2(rng, 5), Options{})
	if _, err := c.ScoreInto(linalg.Vec{1, 2}, make([]float64, 1)); err == nil {
		t.Error("short buffer did not error")
	}
}

// TestConcurrentClassifyInto asserts the documented concurrency contract:
// a trained classifier may be shared across goroutines as long as each
// supplies its own scores buffer. Run under -race (the tier-1 gate) this
// is the standing tripwire for any future mutation sneaking into the
// classification path.
func TestConcurrentClassifyInto(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, err := Train(gauss2(rng, 40), Options{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := []linalg.Vec{{0, 0}, {10, 10}, {1, -1}, {9, 11}, {5, 5}}
	wantName := make([]string, len(inputs))
	for i, f := range inputs {
		wantName[i], _, err = c.Classify(f)
		if err != nil {
			t.Fatal(err)
		}
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scores := make([]float64, c.NumClasses())
			for rep := 0; rep < 200; rep++ {
				for i, f := range inputs {
					name, _, err := c.ClassifyInto(f, scores)
					if err != nil {
						errCh <- err
						return
					}
					if name != wantName[i] {
						errCh <- fmt.Errorf("concurrent ClassifyInto(%v) = %q, want %q", f, name, wantName[i])
						return
					}
					if _, err := c.Mahalanobis(f, 0); err != nil {
						errCh <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
