package synth

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/gesture"
)

func TestDeterminism(t *testing.T) {
	a, _ := NewGenerator(DefaultParams(42)).Set("a", EightDirectionClasses(), 3)
	b, _ := NewGenerator(DefaultParams(42)).Set("b", EightDirectionClasses(), 3)
	if len(a.Examples) != len(b.Examples) {
		t.Fatal("lengths differ")
	}
	for i := range a.Examples {
		if !reflect.DeepEqual(a.Examples[i].Gesture, b.Examples[i].Gesture) {
			t.Fatalf("example %d differs between identical seeds", i)
		}
	}
	c, _ := NewGenerator(DefaultParams(43)).Set("c", EightDirectionClasses(), 3)
	if reflect.DeepEqual(a.Examples[0].Gesture, c.Examples[0].Gesture) {
		t.Error("different seeds produced identical gestures")
	}
}

func TestPointCountsInPaperRange(t *testing.T) {
	g := NewGenerator(DefaultParams(7))
	for _, classes := range [][]Class{EightDirectionClasses(), GDPClasses(), UDClasses(), NoteClasses()} {
		set, _ := g.Set("s", classes, 10)
		for _, e := range set.Examples {
			n := e.Gesture.Len()
			if e.Class == "dot" {
				if n != 2 {
					t.Errorf("dot gesture has %d points", n)
				}
				continue
			}
			if n < 5 || n > 120 {
				t.Errorf("class %s gesture has %d points, outside plausible mouse range", e.Class, n)
			}
		}
	}
}

func TestTimestampsStrictlyIncrease(t *testing.T) {
	g := NewGenerator(DefaultParams(11))
	set, _ := g.Set("s", GDPClasses(), 5)
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range set.Examples {
		pts := e.Gesture.Points
		for i := 1; i < len(pts); i++ {
			if pts[i].T <= pts[i-1].T {
				t.Fatalf("class %s: non-increasing timestamp at %d", e.Class, i)
			}
		}
	}
}

func TestSetShape(t *testing.T) {
	set, meta := NewGenerator(DefaultParams(1)).Set("fig9", EightDirectionClasses(), 10)
	if set.Len() != 80 {
		t.Fatalf("set size %d", set.Len())
	}
	if len(meta) != 80 {
		t.Fatalf("meta size %d", len(meta))
	}
	counts := set.CountByClass()
	for _, c := range EightDirectionClasses() {
		if counts[c.Name] != 10 {
			t.Errorf("class %s has %d examples", c.Name, counts[c.Name])
		}
	}
	for i, m := range meta {
		if m.Class != set.Examples[i].Class {
			t.Fatalf("meta %d misaligned", i)
		}
	}
}

func TestMinPointsOracle(t *testing.T) {
	_, meta := NewGenerator(DefaultParams(3)).Set("fig9", EightDirectionClasses(), 20)
	for _, m := range meta {
		n := m.G.Len()
		if m.MinPoints < 2 || m.MinPoints > n {
			t.Fatalf("class %s: MinPoints %d outside [2,%d]", m.Class, m.MinPoints, n)
		}
		// The corner falls mid-gesture: the oracle should be comfortably
		// inside the stroke, typically near its middle.
		frac := float64(m.MinPoints) / float64(n)
		if frac < 0.2 || frac > 0.95 {
			t.Errorf("class %s: oracle fraction %.2f suspicious (%d/%d)", m.Class, frac, m.MinPoints, n)
		}
	}
}

func TestNoOracleWithoutDecisionVertex(t *testing.T) {
	_, meta := NewGenerator(DefaultParams(3)).Set("notes", NoteClasses(), 3)
	for _, m := range meta {
		if m.MinPoints != 0 {
			t.Errorf("class %s has oracle %d, want 0", m.Class, m.MinPoints)
		}
	}
}

func TestGestureEndsNearSkeletonEnd(t *testing.T) {
	// Without corner defects, the trace must land near the (transformed)
	// skeleton endpoint; verify via overall displacement direction for a
	// simple known class.
	p := DefaultParams(5)
	p.CornerLoopProb = 0
	p.RotJitter = 0
	g := NewGenerator(p)
	for i := 0; i < 20; i++ {
		s := g.Sample(Class{Name: "right", Skeleton: UDClasses()[0].Skeleton[:2], DecisionVertex: -1})
		start, end := s.G.Start(), s.G.End()
		dx, dy := end.X-start.X, end.Y-start.Y
		if dx < 40 || math.Abs(dy) > 15 {
			t.Errorf("right stroke displacement (%v, %v)", dx, dy)
		}
	}
}

func TestCornerLoopInflatesPathLength(t *testing.T) {
	clean := DefaultParams(9)
	clean.CornerLoopProb = 0
	loopy := DefaultParams(9)
	loopy.CornerLoopProb = 1
	cg, lg := NewGenerator(clean), NewGenerator(loopy)
	c := EightDirectionClasses()[0]
	var cleanLen, loopyLen float64
	for i := 0; i < 30; i++ {
		cleanLen += cg.Sample(c).G.PathLength()
		loopyLen += lg.Sample(c).G.PathLength()
	}
	if loopyLen <= cleanLen*1.05 {
		t.Errorf("corner loops did not lengthen paths: %v vs %v", loopyLen, cleanLen)
	}
}

func TestNoteClassesArePrefixes(t *testing.T) {
	classes := NoteClasses()
	for i := 1; i < len(classes); i++ {
		shorter, longer := classes[i-1].Skeleton, classes[i].Skeleton
		if len(longer) != len(shorter)+1 {
			t.Fatalf("note %s skeleton not one vertex longer than %s", classes[i].Name, classes[i-1].Name)
		}
		for j := range shorter {
			if shorter[j] != longer[j] {
				t.Fatalf("note %s is not a prefix of %s at vertex %d", classes[i-1].Name, classes[i].Name, j)
			}
		}
	}
}

func TestEightDirectionGeometry(t *testing.T) {
	for _, c := range EightDirectionClasses() {
		if len(c.Skeleton) != 3 {
			t.Fatalf("class %s skeleton has %d vertices", c.Name, len(c.Skeleton))
		}
		d1 := c.Skeleton[1].Sub(c.Skeleton[0])
		d2 := c.Skeleton[2].Sub(c.Skeleton[1])
		if d1.Dot(d2) != 0 {
			t.Errorf("class %s segments not perpendicular", c.Name)
		}
		if c.DecisionVertex != 1 {
			t.Errorf("class %s decision vertex %d", c.Name, c.DecisionVertex)
		}
	}
}

func TestGDPClassCatalog(t *testing.T) {
	classes := GDPClasses()
	if len(classes) != 11 {
		t.Fatalf("GDP has %d classes, want 11", len(classes))
	}
	want := map[string]bool{
		"line": true, "rect": true, "ellipse": true, "group": true,
		"text": true, "delete": true, "edit": true, "move": true,
		"rotate-scale": true, "copy": true, "dot": true,
	}
	for _, c := range classes {
		if !want[c.Name] {
			t.Errorf("unexpected class %q", c.Name)
		}
		delete(want, c.Name)
	}
	for n := range want {
		t.Errorf("missing class %q", n)
	}
	names := ClassNames(classes)
	if len(names) != 11 || names[0] != "line" {
		t.Errorf("ClassNames = %v", names)
	}
}

func TestDotGesture(t *testing.T) {
	g := NewGenerator(DefaultParams(2))
	var dot Class
	for _, c := range GDPClasses() {
		if c.Name == "dot" {
			dot = c
		}
	}
	s := g.Sample(dot)
	if s.G.Len() != 2 {
		t.Fatalf("dot has %d points", s.G.Len())
	}
	if d := s.G.Start().Point().Dist(s.G.End().Point()); d > 5 {
		t.Errorf("dot moved %v px", d)
	}
	if s.G.Duration() <= 0 {
		t.Error("dot has no duration")
	}
}

func TestValidateAllGeneratedSets(t *testing.T) {
	g := NewGenerator(DefaultParams(77))
	for _, classes := range [][]Class{UDClasses(), EightDirectionClasses(), GDPClasses(), NoteClasses()} {
		set, _ := g.Set("s", classes, 4)
		if err := set.Validate(); err != nil {
			t.Errorf("generated set invalid: %v", err)
		}
	}
	_ = gesture.Set{} // keep import if assertions change
}
