// Command gscore runs the headless gesture-based score editor and renders
// the staff as ASCII. Notes are inserted with the figure-8 note gestures
// (quarter through sixty-fourth, each a stem plus flags), deleted with a
// scratch gesture, and positioned with snap-to-staff manipulation.
//
// Usage:
//
//	gscore [-w 600] [-h 200] [-shrink 4] [-script file] [-seed N]
//
// Script commands (one per line, # comments):
//
//	note <duration> <x> <step>          insert by gesture at (x, staff step)
//	drag <duration> <x> <step> <mx> <my>  insert, hold, drag to (mx,my)
//	scratch <x> <step>                  delete the note there by gesture
//	render                              print the staff
//	log                                 print the interaction log
//
// Without -script, a built-in demo runs.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/gscore"
	"repro/internal/synth"
)

const demoScript = `
# Insert a few notes, drag one, scratch one out.
note quarter 80 2
note eighth 160 4
note sixteenth 240 6
drag eighth 320 3 360 80
scratch 160 4
render
log
`

func main() {
	width := flag.Int("w", 600, "canvas width")
	height := flag.Int("h", 200, "canvas height")
	shrink := flag.Int("shrink", 4, "downsample factor for output (0 = raw)")
	scriptPath := flag.String("script", "", "script file (default: built-in demo)")
	seed := flag.Int64("seed", 9, "gesture synthesis seed")
	flag.Parse()

	app, err := gscore.New(gscore.Config{Width: *width, Height: *height})
	if err != nil {
		fatal(err)
	}

	src := demoScript
	if *scriptPath != "" {
		b, err := os.ReadFile(*scriptPath)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	}

	params := synth.DefaultParams(*seed)
	params.Jitter = 0.4
	params.RotJitter = 0.01
	params.CornerLoopProb = 0
	gen := synth.NewGenerator(params)
	classes := map[string]synth.Class{}
	for _, c := range gscore.EditorClasses() {
		classes[c.Name] = c
	}
	staff := app.Score.Staff

	scanner := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]
		num := func(i int) float64 {
			if i >= len(args) {
				fatal(fmt.Errorf("line %d: %s: missing argument %d", lineNo, cmd, i+1))
			}
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil {
				fatal(fmt.Errorf("line %d: %w", lineNo, err))
			}
			return v
		}
		switch cmd {
		case "note", "drag":
			if len(args) < 1 {
				fatal(fmt.Errorf("line %d: missing duration", lineNo))
			}
			class, ok := classes[args[0]]
			if !ok {
				fatal(fmt.Errorf("line %d: unknown duration %q", lineNo, args[0]))
			}
			x := num(1)
			step := int(num(2))
			p := gen.SampleAt(class, geom.Pt(x, staff.StepY(step))).G.Points
			if cmd == "note" {
				app.PlayGesture(p)
			} else {
				mx, my := num(3), num(4)
				app.PlayTwoPhase(p, 0.3, []geom.Point{{X: mx, Y: my}})
			}
		case "scratch":
			x := num(0)
			step := int(num(1))
			p := gen.SampleAt(classes["scratch"], geom.Pt(x, staff.StepY(step))).G.Points
			app.PlayGesture(p)
		case "render":
			app.Render()
			if *shrink > 0 {
				fmt.Print(app.Canvas.Downsample(*shrink, *shrink).String())
			} else {
				fmt.Print(app.Canvas.String())
			}
		case "log":
			for _, l := range app.Log {
				fmt.Println("log:", l)
			}
		default:
			fatal(fmt.Errorf("line %d: unknown command %q", lineNo, cmd))
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gscore: %v\n", err)
	os.Exit(1)
}
