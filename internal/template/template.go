// Package template implements a template-matching (nearest-neighbor)
// single-stroke recognizer: resample, normalize, and compare against
// stored training examples. Recognizers of this family preceded and
// followed Rubine's statistical method (the paper surveys the Ledeen
// recognizer and connectionist models as the trainable alternatives; the
// later "$1" recognizer family descends from exactly this scheme). It
// serves two roles in this repo:
//
//   - the baseline comparator in experiment A7: matching accuracy, very
//     different cost structure — classification is O(templates x points)
//     against the statistical method's O(classes x features);
//   - a full serving backend (recognizer.Backend — see BACKENDS.md): the
//     streaming session in stream.go maintains incremental
//     resample state so Add is O(1) amortized per point, scores the
//     nearest template per point, and commits mid-stroke when the
//     best-template margin clears Options.CommitMargin — an eager mode
//     the classic batch matcher lacks.
package template

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/gesture"
	"repro/internal/mathx"
)

// Typed errors. Match with errors.Is; the concrete error may carry
// detail (which coordinate was non-finite, etc.).
var (
	// ErrNoTemplates reports a recognizer with no stored templates —
	// training saw an empty set, or the Templates slice was blanked
	// after deserialization. Nothing can be classified.
	ErrNoTemplates = errors.New("template: no templates loaded")
	// ErrDegenerate reports an input stroke the matcher cannot score: a
	// non-finite coordinate, or an empty point list. Per the repo's
	// degenerate-gesture contract (degenerate_test.go) single-point,
	// zero-duration, and all-identical-point strokes are NOT degenerate
	// — they normalize to a tiny dot and classify normally; only
	// non-finite and empty input is refused.
	ErrDegenerate = errors.New("template: degenerate input stroke")
)

// Options configures the recognizer.
type Options struct {
	// Points is the resample count (default 64).
	Points int
	// RotationInvariant rotates each stroke so its centroid-to-first-point
	// angle is zero before matching. Off by default: Rubine's features are
	// orientation-sensitive too, and gesture sets (like GDP's) rely on
	// orientation to distinguish classes.
	RotationInvariant bool
	// CommitMargin arms the streaming session's eager mode: a stroke
	// commits mid-stroke once the best other-class template's distance
	// exceeds the best template's distance by at least this much (and
	// CommitMaxDist/MinPoints also hold). 0 disables eager commits —
	// the session then classifies only at End, the classic terminal
	// behavior. See DefaultOptions for the tuned default.
	CommitMargin float64
	// CommitMaxDist is the eager mode's confidence gate: a mid-stroke
	// commit additionally requires the best template distance to be at
	// most this (normalized-unit) value, so a huge margin over garbage
	// never fires. Ignored when CommitMargin is 0.
	CommitMaxDist float64
	// MinPoints is the smallest raw point count at which the streaming
	// session will attempt an eager commit — below it the resampled
	// prefix is too degenerate to trust. Ignored when CommitMargin is 0.
	MinPoints int
	// CommitStreak is the stability gate: an eager commit requires the
	// same class to have been the nearest template for this many
	// consecutive points with a non-growing best distance. This is what
	// separates a true completion (the distance settles at its floor as
	// the final points arrive) from premature capture by a small
	// template — the prefix of almost any stroke matches a dot-like
	// template closely, but that misfit *grows* with every further
	// point, breaking the streak. Ignored when CommitMargin is 0.
	CommitStreak int
	// ScaleTolerance is the eager mode's raw-size veto: a mid-stroke
	// commit requires the stroke-so-far's raw bounding-box side to be
	// within this factor of the winning template's (both directions).
	// Terminal classification stays fully scale-invariant; the veto only
	// delays commitment when the live stroke's size is grossly unlike
	// every example of the winning class — which is how a dot-class
	// template (a tiny scribble, identical to a short line once
	// normalized) is stopped from capturing the opening edge of a large
	// shape. Assumes training and serving share a coordinate scale; set
	// 0 to disable. Ignored when CommitMargin is 0.
	ScaleTolerance float64
}

// DefaultOptions returns the standard configuration: 64 resample
// points, orientation-sensitive, with the streaming eager mode armed
// (margin 0.06 at distance ≤ 0.20, stable for 5 points, from 10 points
// on, raw size within 3x of the winning template — values tuned on the
// synth GDP/fig9 workloads via the geval "backends" experiment).
func DefaultOptions() Options {
	return Options{
		Points:         64,
		CommitMargin:   0.06,
		CommitMaxDist:  0.20,
		MinPoints:      10,
		CommitStreak:   5,
		ScaleTolerance: 3,
	}
}

// Recognizer is a trained template matcher.
//
// Concurrency contract: a trained Recognizer is immutable and safe for
// concurrent use — any number of goroutines may call Classify, Run, and
// NewStream (each Session is then single-goroutine). Instrument is the
// one mutating exception and must be called before the recognizer is
// shared (the recognizer.Backend snapshot-immutability contract).
type Recognizer struct {
	Opts      Options
	Templates []Template
	// Incomplete holds normalized prefixes of the training examples
	// (incompleteFractions of each stroke), trained only when the eager
	// mode is armed. They are the template-matching analog of the
	// paper's ambiguous-subgesture training: the streaming commit gate
	// vetoes a mid-stroke commit whenever some *other* class's
	// unfinished prefix explains the probe about as well as the winning
	// complete template — the shape may simply not be done yet.
	// Incomplete templates never participate in terminal classification.
	Incomplete []Template

	// m is the attached streaming instrumentation; zero (all no-ops)
	// until Instrument is called.
	m sessionMetrics
}

// Template is one normalized training example.
type Template struct {
	Class  string
	Points []geom.Point
	// ArcLen is the arc length of the normalized points — a
	// scale-invariant shape statistic (a straight line is ~1, a circle
	// ~pi, a dense scribble much more). The streaming eager mode uses it
	// as a commit gate: a stroke prefix may sit close to a template in
	// mean point distance while its arc length is still far short of the
	// template's, which marks the match as premature. Zero (e.g. a
	// template deserialized from an older file) disables the gate.
	ArcLen float64
	// RawSide is the training stroke's raw bounding-box longer side,
	// before any normalization. Classification is scale-invariant, but
	// the eager commit gate uses raw size to veto gross mismatches: the
	// early prefix of a large stroke normalizes into the same unit box
	// as a tiny dot-class scribble and can sit near it in every
	// scale-free measure — raw size is the one signal that tells them
	// apart. See Options.ScaleTolerance. Zero disables the check for
	// this template.
	RawSide float64
}

// arcLen sums the segment lengths of a normalized stroke.
func arcLen(pts []geom.Point) float64 {
	total := 0.0
	for i := 1; i < len(pts); i++ {
		total += pts[i-1].Dist(pts[i])
	}
	return total
}

// incompleteFractions are the stroke-prefix fractions trained as
// Incomplete templates when the eager mode is armed — the
// template-matching analog of the paper's subgesture training set.
var incompleteFractions = []float64{0.4, 0.55, 0.7, 0.85}

// Train stores a normalized template per training example, plus — when
// the eager mode is armed (Options.CommitMargin > 0) — normalized
// prefix templates at incompleteFractions of each example, the commit
// gate's ambiguity evidence (see Recognizer.Incomplete).
func Train(set *gesture.Set, opts Options) (*Recognizer, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if opts.Points <= 1 {
		opts.Points = 64
	}
	r := &Recognizer{Opts: opts}
	for _, e := range set.Examples {
		pts := r.normalize(e.Gesture)
		b := e.Gesture.Points.Bounds()
		r.Templates = append(r.Templates, Template{
			Class:   e.Class,
			Points:  pts,
			ArcLen:  arcLen(pts),
			RawSide: math.Max(b.Width(), b.Height()),
		})
		if opts.CommitMargin > 0 {
			for _, frac := range incompleteFractions {
				n := int(frac * float64(e.Gesture.Len()))
				if n < 2 || n >= e.Gesture.Len() {
					continue
				}
				prefix := gesture.New(e.Gesture.Points.Prefix(n))
				ppts := r.normalize(prefix)
				pb := prefix.Points.Bounds()
				r.Incomplete = append(r.Incomplete, Template{
					Class:   e.Class,
					Points:  ppts,
					ArcLen:  arcLen(ppts),
					RawSide: math.Max(pb.Width(), pb.Height()),
				})
			}
		}
	}
	if len(r.Templates) == 0 {
		return nil, ErrNoTemplates
	}
	return r, nil
}

// checkFinite refuses strokes the matcher cannot score: empty input and
// non-finite coordinates are ErrDegenerate (timestamps are irrelevant
// to template matching and are not checked).
func checkFinite(p geom.Path) error {
	if len(p) == 0 {
		return fmt.Errorf("%w: no points", ErrDegenerate)
	}
	for i := range p {
		if !mathx.Finite(p[i].X) || !mathx.Finite(p[i].Y) {
			return fmt.Errorf("%w: non-finite coordinate at point %d", ErrDegenerate, i)
		}
	}
	return nil
}

// normalize resamples to Opts.Points, translates the centroid to the
// origin, scales the bounding box's longer side to 1, and optionally
// rotates the indicative angle to zero.
func (r *Recognizer) normalize(g gesture.Gesture) []geom.Point {
	pts := g.Points.Resample(r.Opts.Points).Polygon()
	if len(pts) == 0 {
		return pts
	}
	// Pad degenerate strokes (e.g. the 2-point dot) to the full count so
	// distances stay well-defined.
	for len(pts) < r.Opts.Points {
		pts = append(pts, pts[len(pts)-1])
	}
	normalizeInPlace(pts, r.Opts.RotationInvariant)
	return pts
}

// normalizeInPlace applies the matcher's canonical frame to an
// already-resampled stroke, in place: centroid to the origin, optional
// indicative-angle rotation, longer bounding-box side scaled to 1
// (degenerate strokes stay tiny, which is itself the signature of a
// dot). Shared by the batch path and the allocation-free streaming
// path.
func normalizeInPlace(pts []geom.Point, rotationInvariant bool) {
	var cx, cy float64
	for _, p := range pts {
		cx += p.X
		cy += p.Y
	}
	cx /= float64(len(pts))
	cy /= float64(len(pts))
	for i := range pts {
		pts[i].X -= cx
		pts[i].Y -= cy
	}
	if rotationInvariant {
		ang := pts[0].Angle()
		for i := range pts {
			pts[i] = pts[i].Rotate(-ang)
		}
	}
	b := geom.EmptyRect()
	for _, p := range pts {
		b = b.AddPoint(p)
	}
	side := math.Max(b.Width(), b.Height())
	if side > 1e-9 {
		for i := range pts {
			pts[i].X /= side
			pts[i].Y /= side
		}
	}
}

// distance is the mean point-to-point Euclidean distance between two
// normalized strokes.
func distance(a, b []geom.Point) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return math.Inf(1)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += a[i].Dist(b[i])
	}
	return sum / float64(n)
}

// score finds the nearest template and the nearest template of any
// other class: best/bestClass is the winner (bestTmpl its index),
// other the runner-up distance among templates whose class differs
// from bestClass (+Inf when every template shares one class).
// other - best is the eager mode's commit margin.
//
//glint:hotpath
func score(templates []Template, probe []geom.Point) (bestClass string, best, other float64, bestTmpl int) {
	best, other = math.Inf(1), math.Inf(1)
	bestTmpl = -1
	for i := range templates {
		d := distance(probe, templates[i].Points)
		if d < best {
			if templates[i].Class != bestClass {
				other = best
			}
			bestClass, best, bestTmpl = templates[i].Class, d, i
		} else if d < other && templates[i].Class != bestClass {
			other = d
		}
	}
	return bestClass, best, other, bestTmpl
}

// nearestOtherClass returns the distance from the probe to the nearest
// template whose class differs from exclude (+Inf when there is none) —
// the commit gate's query against the Incomplete prefix set.
//
//glint:hotpath
func nearestOtherClass(templates []Template, probe []geom.Point, exclude string) float64 {
	best := math.Inf(1)
	for i := range templates {
		if templates[i].Class == exclude {
			continue
		}
		if d := distance(probe, templates[i].Points); d < best {
			best = d
		}
	}
	return best
}

// Classify returns the class of the nearest template. It fails with
// ErrNoTemplates when the recognizer is empty and ErrDegenerate when
// the stroke cannot be scored (non-finite coordinates, no points) —
// match with errors.Is.
func (r *Recognizer) Classify(g gesture.Gesture) (string, error) {
	class, _, err := r.ClassifyWithDistance(g)
	return class, err
}

// ClassifyWithDistance also returns the nearest-template distance,
// usable as a rejection signal. Errors as Classify does.
func (r *Recognizer) ClassifyWithDistance(g gesture.Gesture) (string, float64, error) {
	if len(r.Templates) == 0 {
		return "", 0, ErrNoTemplates
	}
	if err := checkFinite(g.Points); err != nil {
		return "", 0, err
	}
	probe := r.normalize(g)
	class, best, _, _ := score(r.Templates, probe)
	return class, best, nil
}

// Accuracy classifies every example in a set and returns the fraction
// classified correctly. A stroke the matcher refuses (ErrDegenerate)
// fails the whole evaluation — synth and paper sets never contain one.
func (r *Recognizer) Accuracy(set *gesture.Set) (float64, error) {
	if set.Len() == 0 {
		return 0, nil
	}
	correct := 0
	for i, e := range set.Examples {
		class, err := r.Classify(e.Gesture)
		if err != nil {
			return 0, fmt.Errorf("template: example %d (%s): %w", i, e.Class, err)
		}
		if class == e.Class {
			correct++
		}
	}
	return float64(correct) / float64(set.Len()), nil
}

// String summarizes the recognizer.
func (r *Recognizer) String() string {
	return fmt.Sprintf("template recognizer: %d templates x %d points", len(r.Templates), r.Opts.Points)
}
