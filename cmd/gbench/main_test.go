package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkTrainEagerGDPSerial   	       1	  18880354 ns/op
BenchmarkTrainEagerGDPParallel-8 	       2	  10306861 ns/op
BenchmarkEngineThroughput      	       1	     22868 ns/op	         1.000 sessions
PASS
ok  	repro	0.036s
`

func TestParseSample(t *testing.T) {
	sum, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Goos != "linux" || sum.Goarch != "amd64" || sum.Pkg != "repro" {
		t.Fatalf("headers not captured: %+v", sum)
	}
	if len(sum.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(sum.Benchmarks))
	}
	serial := sum.Benchmarks[0]
	if serial.Name != "BenchmarkTrainEagerGDPSerial" || serial.Procs != 1 || serial.Iterations != 1 {
		t.Errorf("serial row: %+v", serial)
	}
	if serial.Metrics["ns/op"] != 18880354 {
		t.Errorf("serial ns/op = %v", serial.Metrics["ns/op"])
	}
	par := sum.Benchmarks[1]
	if par.Name != "BenchmarkTrainEagerGDPParallel" || par.Procs != 8 || par.Iterations != 2 {
		t.Errorf("parallel row: %+v", par)
	}
	eng := sum.Benchmarks[2]
	if eng.Metrics["sessions"] != 1 {
		t.Errorf("extra metric not parsed: %+v", eng.Metrics)
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	in := "BenchmarkWrapped\nBenchmarkOK 5 100 ns/op\nBenchmarkBadIters x 100 ns/op\n"
	sum, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 1 || sum.Benchmarks[0].Name != "BenchmarkOK" {
		t.Fatalf("want only BenchmarkOK, got %+v", sum.Benchmarks)
	}
}

func TestRunStdinToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, strings.NewReader(sample), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var sum Summary
	if err := json.Unmarshal(stdout.Bytes(), &sum); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(sum.Benchmarks) != 3 {
		t.Fatalf("round-tripped %d benchmarks, want 3", len(sum.Benchmarks))
	}
}

func TestRunFileToOutputFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", out, in}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("wrote to stdout despite -o: %s", stdout.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var sum Summary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("file is not valid JSON: %v", err)
	}
	if sum.CPU == "" || len(sum.Benchmarks) != 3 {
		t.Fatalf("summary incomplete: %+v", sum)
	}
}

func TestSchemaVersion(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, strings.NewReader(sample), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if string(doc["schema"]) != "2" {
		t.Errorf(`"schema" = %s, want 2`, doc["schema"])
	}
	if _, ok := doc["metrics"]; ok {
		t.Error(`"metrics" present without -obs`)
	}
}

func TestObsFlagEmbedsMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a demo recognizer")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-obs"}, strings.NewReader(sample), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var sum Summary
	if err := json.Unmarshal(stdout.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Schema != 2 {
		t.Errorf("schema = %d, want 2", sum.Schema)
	}
	if sum.Metrics == nil {
		t.Fatal(`-obs did not populate "metrics"`)
	}
	if sum.Metrics.Schema != obs.SnapshotSchema {
		t.Errorf("metrics schema = %d, want %d", sum.Metrics.Schema, obs.SnapshotSchema)
	}
	if len(sum.Metrics.Counters) == 0 || len(sum.Metrics.Histograms) == 0 {
		t.Errorf("embedded snapshot is empty: %d counters, %d histograms",
			len(sum.Metrics.Counters), len(sum.Metrics.Histograms))
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, strings.NewReader("no benchmarks here\n"), &stdout, &stderr); code != 1 {
		t.Errorf("empty input: exit %d", code)
	}
	if code := run([]string{"a", "b"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("two input files: exit %d", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.txt")}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit %d", code)
	}
}
