package flight

import (
	"fmt"
	"math"

	"repro/internal/eager"
	"repro/internal/geom"
)

// Divergence describes the first point at which a replay disagreed with
// the recorded decision sequence.
type Divergence struct {
	// Index is the position in the decision sequence (0-based).
	Index int
	// Field names the first differing field ("count", "kind", "fired",
	// "class", "margin", or "err").
	Field string
	// Recorded and Replayed render the differing values.
	Recorded string
	Replayed string
}

// String formats the divergence for diagnostics.
func (d *Divergence) String() string {
	return fmt.Sprintf("decision %d: %s recorded %s, replayed %s",
		d.Index, d.Field, d.Recorded, d.Replayed)
}

// Replay re-runs a bundle's points through a fresh session of the given
// recognizer and compares the decisions it makes against the recorded
// ones, field by field. Margins are compared bit-for-bit
// (math.Float64bits): the eager decision sequence is a pure function of
// the recognizer and the point stream, so any difference — however
// small — means the model or the code changed since capture.
//
// Returns (nil, nil) when the replay matches exactly, a non-nil
// Divergence when it does not, and an error when the bundle is invalid
// or the session cannot be created.
func Replay(rec *eager.Recognizer, b *Bundle) (*Divergence, error) {
	if b == nil {
		return nil, fmt.Errorf("flight: replay: nil bundle")
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("flight: replay: %w", err)
	}
	sess, err := rec.NewSession()
	if err != nil {
		return nil, fmt.Errorf("flight: replay: %w", err)
	}
	// A fresh Capture taps the replay session exactly as the recording
	// tap did, so margin computation runs on the same code path in both.
	tap := NewCapture(b.Session)
	sess.SetTap(tap)
	for _, p := range b.Points {
		// Decisions flow through the tap; returned values are part of them.
		_, _, _ = sess.Add(geom.TimedPoint{X: p.X, Y: p.Y, T: p.T})
	}
	for _, d := range b.Decisions {
		switch d.Kind {
		case "end":
			_, _ = sess.End()
		case "degrade":
			// A degraded capture (poisoned stroke, full classifier on the
			// finite prefix) replays by re-issuing the same fallback.
			_, _ = sess.Degrade()
		default:
			continue
		}
		break // End/Degrade are one-shot; a second call records nothing.
	}
	return diffDecisions(b.Decisions, tap.Decisions()), nil
}

// diffDecisions compares two decision sequences and returns the first
// divergence, or nil when identical.
func diffDecisions(recorded, replayed []Decision) *Divergence {
	n := len(recorded)
	if len(replayed) < n {
		n = len(replayed)
	}
	for i := 0; i < n; i++ {
		a, b := recorded[i], replayed[i]
		switch {
		case a.Kind != b.Kind:
			return &Divergence{i, "kind", a.Kind, b.Kind}
		case a.Index != b.Index:
			return &Divergence{i, "index", fmt.Sprint(a.Index), fmt.Sprint(b.Index)}
		case a.Fired != b.Fired:
			return &Divergence{i, "fired", fmt.Sprint(a.Fired), fmt.Sprint(b.Fired)}
		case a.Class != b.Class:
			return &Divergence{i, "class", fmt.Sprintf("%q", a.Class), fmt.Sprintf("%q", b.Class)}
		case math.Float64bits(a.Margin) != math.Float64bits(b.Margin):
			return &Divergence{i, "margin", fmt.Sprintf("%x", a.Margin), fmt.Sprintf("%x", b.Margin)}
		case a.Err != b.Err:
			return &Divergence{i, "err", fmt.Sprintf("%q", a.Err), fmt.Sprintf("%q", b.Err)}
		}
	}
	if len(recorded) != len(replayed) {
		return &Divergence{n, "count",
			fmt.Sprintf("%d decisions", len(recorded)),
			fmt.Sprintf("%d decisions", len(replayed))}
	}
	return nil
}
