// Package slo evaluates declarative service-level objectives against the
// windowed telemetry in internal/obs. An Objective states a target in
// operator terms — "eager decide p99 < 500µs", "wire NACK ratio < 0.1%"
// — and the Engine turns the registry's windowed snapshots into
// multi-window burn rates with typed ok/warn/page states, following the
// Google SRE multi-window multi-burn-rate alerting shape: page when the
// budget is burning ≥ PageBurn over both fast windows (5m and 1h), warn
// when it burns ≥ WarnBurn over both slow windows (30m and 6h). Requiring
// both windows makes the page condition spike-resistant (the short window
// must *still* be burning) and the warn condition drift-sensitive.
//
// Rubine's integration argument is exactly an SLO statement: eager
// recognition is only "integrated with direct manipulation" while the
// mid-stroke decide latency stays imperceptible, so the default
// objectives encode that bound as an error budget over live windows
// rather than a since-process-start average.
//
// Evaluate publishes each objective's state as slo.* gauges in the same
// registry (so /metrics and /metrics.prom carry them) and returns the
// full Evaluation for the /slo JSON endpoint and gtop.
package slo

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Burn-rate thresholds and window pairs of the multi-window alerting
// policy. A burn rate of 1.0 consumes exactly the error budget over the
// objective's period; 14.4 is the classic "2% of a 30-day budget in one
// hour" paging threshold.
const (
	// PageBurn is the burn rate at or above which — on both fast
	// windows — an objective pages.
	PageBurn = 14.4
	// WarnBurn is the burn rate at or above which — on both slow
	// windows — an objective warns.
	WarnBurn = 6.0

	// FastShort and FastLong are the paired paging windows.
	FastShort = 5 * time.Minute
	FastLong  = time.Hour
	// SlowShort and SlowLong are the paired warning windows.
	SlowShort = 30 * time.Minute
	SlowLong  = 6 * time.Hour
)

// Kind selects how an Objective derives its bad/total ratio from the
// windowed snapshots.
type Kind int

const (
	// KindLatency reads one windowed histogram: bad observations are
	// those above ThresholdNS, total is the window's count.
	KindLatency Kind = iota
	// KindRatio reads two windowed counters: Bad over Total.
	KindRatio
)

// String names the kind for reports and JSON.
func (k Kind) String() string {
	switch k {
	case KindLatency:
		return "latency"
	case KindRatio:
		return "ratio"
	default:
		return "unknown"
	}
}

// MarshalJSON encodes the kind by name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a kind from its name (the inverse of
// MarshalJSON, so Evaluation documents round-trip — gtop decodes /slo).
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "ratio":
		*k = KindRatio
	default:
		*k = KindLatency
	}
	return nil
}

// State is an objective's evaluated health, ordered by severity.
type State int

const (
	// StateOK means the budget is not burning beyond either alerting
	// policy.
	StateOK State = iota
	// StateWarn means both slow windows burn at ≥ WarnBurn: the budget
	// is eroding and will exhaust if the trend holds.
	StateWarn
	// StatePage means both fast windows burn at ≥ PageBurn: the budget
	// is burning fast enough to demand immediate attention.
	StatePage
)

// String names the state for reports, gauges, and gtop.
func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateWarn:
		return "warn"
	case StatePage:
		return "page"
	default:
		return "unknown"
	}
}

// MarshalJSON encodes the state by name.
func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a state from its name.
func (s *State) UnmarshalJSON(data []byte) error {
	var v string
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	switch v {
	case "warn":
		*s = StateWarn
	case "page":
		*s = StatePage
	default:
		*s = StateOK
	}
	return nil
}

// Objective is one declarative service-level objective. Latency
// objectives name a windowed histogram (Window) and bound the fraction
// of observations above ThresholdNS by Budget ("p99 < 500µs" is
// ThresholdNS 5e5 with Budget 0.01). Ratio objectives name two windowed
// counters and bound Bad/Total by Budget. Budget is the allowed bad
// fraction; the burn rate is the observed bad fraction divided by it.
type Objective struct {
	// Name identifies the objective; gauges publish under
	// slo.<Name>.{burn_fast,burn_slow,state}.
	Name string `json:"name"`
	// Description is the operator-facing statement of the target.
	Description string `json:"description,omitempty"`
	// Kind selects the evaluation shape.
	Kind Kind `json:"kind"`
	// Window names the windowed histogram a latency objective reads.
	Window string `json:"window,omitempty"`
	// ThresholdNS is the latency bound in nanoseconds. Align it with a
	// bucket boundary of the window's histogram for an exact count;
	// otherwise the partially-covered bucket counts as bad
	// (conservative toward alerting).
	ThresholdNS float64 `json:"threshold_ns,omitempty"`
	// Bad and Total name the windowed counters a ratio objective reads.
	Bad   string `json:"bad,omitempty"`
	Total string `json:"total,omitempty"`
	// Budget is the allowed bad fraction (0.01 = 1%).
	Budget float64 `json:"budget"`
}

// DefaultObjectives returns the repo's stock objectives: the eager
// decide-latency bound from the paper's imperceptibility argument and a
// wire ingestion health ratio. The slice is fresh on every call.
func DefaultObjectives() []Objective {
	return []Objective{
		{
			Name:        "decide_p99",
			Description: "eager decide p99 < 500µs over the fast window",
			Kind:        KindLatency,
			Window:      "window.eager.decide_ns",
			ThresholdNS: 5e5,
			Budget:      0.01,
		},
		{
			Name:        "wire_nack_ratio",
			Description: "wire NACK ratio < 0.1% of decoded events",
			Kind:        KindRatio,
			Bad:         "window.wire.nacks",
			Total:       "window.wire.events.decoded",
			Budget:      0.001,
		},
	}
}

// WindowBurn is one window's contribution to an objective's evaluation:
// the requested window, the slot-granular span actually covered (shorter
// when the ring is smaller than the request — see obs.WindowSnap.Covered),
// the bad/total counts observed in it, and the resulting burn rate.
type WindowBurn struct {
	WindowNS  int64   `json:"window_ns"`
	CoveredNS int64   `json:"covered_ns"`
	Bad       int64   `json:"bad"`
	Total     int64   `json:"total"`
	Burn      float64 `json:"burn"`
}

// Status is one objective's evaluated result: the four window burns, the
// gating fast/slow burn rates (the minimum of each pair — both windows
// must burn for the pair to fire), and the resulting state.
type Status struct {
	Objective Objective  `json:"objective"`
	FastShort WindowBurn `json:"fast_short"`
	FastLong  WindowBurn `json:"fast_long"`
	SlowShort WindowBurn `json:"slow_short"`
	SlowLong  WindowBurn `json:"slow_long"`
	// BurnFast is min(FastShort.Burn, FastLong.Burn) — the value
	// compared against PageBurn and published as slo.<name>.burn_fast.
	BurnFast float64 `json:"burn_fast"`
	// BurnSlow is min(SlowShort.Burn, SlowLong.Burn) — compared against
	// WarnBurn and published as slo.<name>.burn_slow.
	BurnSlow float64 `json:"burn_slow"`
	State    State   `json:"state"`
}

// EvaluationSchema versions the Evaluation JSON document /slo serves.
const EvaluationSchema = 1

// Evaluation is the full result of one Engine.Evaluate pass — the /slo
// endpoint's JSON body.
type Evaluation struct {
	Schema     int      `json:"schema"`
	AtNS       int64    `json:"at_ns"`
	Objectives []Status `json:"objectives"`
	// Admission is the serving engine's admission-controller state
	// ("healthy" or "brownout") when the engine was built with an
	// admission source — operators correlating a burning objective with
	// /slo see at a glance whether the server is already shedding.
	// Omitted when no source is wired.
	Admission string `json:"admission,omitempty"`
}

// Engine evaluates a fixed set of objectives against one registry and
// publishes their states as gauges into the same registry. Safe for
// concurrent Evaluate calls (each works on its own snapshot; gauge
// stores are atomic).
type Engine struct {
	reg        *obs.Registry
	objectives []Objective
	clk        obs.Clock
	admission  func() string
}

// SetAdmission wires an admission-state source into the engine: each
// Evaluate stamps fn's result into Evaluation.Admission. Pass something
// like `func() string { return eng.AdmitState().String() }`. Call before
// the engine is shared across goroutines (it is not synchronized).
func (e *Engine) SetAdmission(fn func() string) { e.admission = fn }

// New builds an engine over reg. A nil clk uses the wall clock; pass the
// serving engine's virtual clock to make evaluations deterministic in
// tests and obsdemo. A nil reg yields an engine whose evaluations see no
// data (every objective reads empty windows and reports ok).
func New(reg *obs.Registry, objectives []Objective, clk obs.Clock) *Engine {
	return &Engine{reg: reg, objectives: append([]Objective(nil), objectives...), clk: clk}
}

// Objectives returns the engine's objectives (a copy).
func (e *Engine) Objectives() []Objective {
	return append([]Objective(nil), e.objectives...)
}

func (e *Engine) now() time.Time {
	if e.clk != nil {
		return e.clk.Now()
	}
	return time.Now()
}

// Evaluate snapshots the registry, computes every objective's burn
// rates and state, publishes them as slo.<name>.{burn_fast, burn_slow,
// state} gauges, and returns the full evaluation.
func (e *Engine) Evaluate() Evaluation {
	snap := e.reg.Snapshot()
	ev := Evaluation{
		Schema:     EvaluationSchema,
		AtNS:       e.now().UnixNano(),
		Objectives: make([]Status, 0, len(e.objectives)),
	}
	if e.admission != nil {
		ev.Admission = e.admission()
	}
	for _, o := range e.objectives {
		st := evaluate(o, snap)
		ev.Objectives = append(ev.Objectives, st)
		e.reg.Gauge("slo."+o.Name+".burn_fast").Set(st.BurnFast)
		e.reg.Gauge("slo."+o.Name+".burn_slow").Set(st.BurnSlow)
		e.reg.Gauge("slo."+o.Name+".state").Set(float64(st.State))
	}
	return ev
}

// evaluate computes one objective's status from a snapshot.
func evaluate(o Objective, snap obs.Snapshot) Status {
	st := Status{
		Objective: o,
		FastShort: burnOver(o, snap, FastShort),
		FastLong:  burnOver(o, snap, FastLong),
		SlowShort: burnOver(o, snap, SlowShort),
		SlowLong:  burnOver(o, snap, SlowLong),
	}
	st.BurnFast = min2(st.FastShort.Burn, st.FastLong.Burn)
	st.BurnSlow = min2(st.SlowShort.Burn, st.SlowLong.Burn)
	switch {
	case st.BurnFast >= PageBurn:
		st.State = StatePage
	case st.BurnSlow >= WarnBurn:
		st.State = StateWarn
	default:
		st.State = StateOK
	}
	return st
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// burnOver computes one window's bad/total counts and burn rate for o.
func burnOver(o Objective, snap obs.Snapshot, d time.Duration) WindowBurn {
	var bad, total int64
	var covered time.Duration
	switch o.Kind {
	case KindLatency:
		w := snap.Window(o.Window)
		covered = w.Covered(d)
		m := w.Merge(d)
		total = m.Count
		bad = countAbove(m, o.ThresholdNS)
	case KindRatio:
		bw, tw := snap.Window(o.Bad), snap.Window(o.Total)
		covered = tw.Covered(d)
		bad, total = bw.Total(d), tw.Total(d)
	}
	wb := WindowBurn{WindowNS: int64(d), CoveredNS: int64(covered), Bad: bad, Total: total}
	if total > 0 && o.Budget > 0 {
		wb.Burn = (float64(bad) / float64(total)) / o.Budget
	}
	return wb
}

// countAbove counts the observations in m that may exceed threshold: the
// sum of every bucket whose span reaches past it. Exact when threshold
// is a bucket boundary; otherwise the straddling bucket counts as bad
// (conservative toward alerting).
func countAbove(m obs.HistogramSnap, threshold float64) int64 {
	var below int64
	for i, c := range m.Counts {
		if i < len(m.Bounds) && m.Bounds[i] <= threshold {
			below += c
		}
	}
	return m.Count - below
}

// Handler returns an http.Handler that runs one Evaluate per request and
// serves the resulting Evaluation as indented JSON — cmd/gserve mounts
// it at /slo.
func Handler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Encoding errors mean the client went away; nothing to do.
		_ = enc.Encode(e.Evaluate())
	})
}
