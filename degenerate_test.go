package rubine

import (
	"math"
	"testing"
)

// degenerateGestures are the pathological strokes a real application can
// produce: taps, stuck clocks, stuck pointers, and corrupted sensor
// coordinates. Every layer must either classify them to a finite result or
// return an error — never panic, never emit NaN.
func degenerateGestures() map[string]struct {
	g       Gesture
	wantErr bool // layers must reject (non-finite input)
} {
	identical := make(Path, 8)
	for i := range identical {
		identical[i] = TPt(40, 40, float64(i)*0.01)
	}
	zeroDur := Path{TPt(0, 0, 0), TPt(30, 0, 0), TPt(60, 5, 0), TPt(90, 10, 0)}
	nanPath := Path{TPt(0, 0, 0), TPt(30, 0, 0.1), TPt(math.NaN(), 10, 0.2), TPt(90, 20, 0.3)}
	return map[string]struct {
		g       Gesture
		wantErr bool
	}{
		"single point":         {NewGesture(Path{TPt(10, 10, 0)}), false},
		"zero duration":        {NewGesture(zeroDur), false},
		"all identical points": {NewGesture(identical), false},
		"NaN coordinate":       {NewGesture(nanPath), true},
	}
}

func TestFullRecognizerDegenerateInputs(t *testing.T) {
	rec, err := TrainFull(Generate(EightDirections, 10, 1), DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	for name, tc := range degenerateGestures() {
		t.Run(name, func(t *testing.T) {
			res, err := rec.Evaluate(tc.g)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Evaluate accepted %s: %+v", name, res)
				}
				return
			}
			if err != nil {
				t.Fatalf("Evaluate(%s): %v", name, err)
			}
			for field, v := range map[string]float64{
				"Probability": res.Probability,
				"Mahalanobis": res.Mahalanobis,
				"Score":       res.Score,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s = %v", field, v)
				}
			}
		})
	}
}

func TestEagerRecognizerDegenerateInputs(t *testing.T) {
	rec, _, err := TrainEager(Generate(UD, 10, 2), DefaultEagerOptions())
	if err != nil {
		t.Fatal(err)
	}
	for name, tc := range degenerateGestures() {
		t.Run(name, func(t *testing.T) {
			s, err := rec.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			var streamErr error
			for _, p := range tc.g.Points {
				if _, _, err := s.Add(p); err != nil {
					streamErr = err
					break
				}
			}
			if streamErr == nil {
				_, streamErr = s.End()
			}
			if tc.wantErr && streamErr == nil {
				t.Fatalf("eager session accepted %s", name)
			}
			if !tc.wantErr && streamErr != nil {
				t.Fatalf("eager session rejected %s: %v", name, streamErr)
			}
		})
	}
}

func TestFeaturesDegenerateInputs(t *testing.T) {
	rec, err := TrainFull(Generate(EightDirections, 10, 3), DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	for name, tc := range degenerateGestures() {
		t.Run(name, func(t *testing.T) {
			v, err := rec.Features(tc.g)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Features accepted %s: %v", name, v)
				}
				return
			}
			if err != nil {
				t.Fatalf("Features(%s): %v", name, err)
			}
			for i, x := range v {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Errorf("feature %d = %v", i, x)
				}
			}
		})
	}
}
