package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Lockbalance enforces the lock-release contract: a mutex locked in a
// function must be unlocked on every path out of it — a leaked lock is a
// deadlock waiting for load. The check is the same block-structured
// reachability approximation spanend uses: a deferred Unlock (directly or
// inside a deferred function literal) covers everything; otherwise each
// return after a Lock, and the implicit fall-off-the-end exit, needs a
// preceding Unlock in a scope that encloses it. Write locks (Lock/Unlock)
// and read locks (RLock/RUnlock) are tracked independently.
//
// The mutex type is matched by name (Mutex or RWMutex, value or pointer)
// so the linttest fixtures can define local stand-ins. A mutex that
// escapes the function's control — passed by address, handed to RLocker,
// or touched inside a non-deferred function literal — is not judged;
// helper functions that only Unlock (release on behalf of a caller) are
// likewise out of scope. Function literals are separate scopes, so a
// goroutine body that locks must itself unlock.
var Lockbalance = &Analyzer{
	Name: "lockbalance",
	Doc: "flag functions that Lock a mutex without a deferred or " +
		"all-paths Unlock (RLock/RUnlock tracked separately).",
	Run: runLockbalance,
}

// lockPairs maps the acquire method to its release for each mode.
var lockPairs = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

func runLockbalance(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkLockScope(pass, body)
			}
			return true
		})
	}
	return nil
}

// lockKey identifies one mutex chain in one mode within a scope.
type lockKey struct {
	chain string // rendered receiver, e.g. "e.mu"
	mode   string // "Lock" or "RLock"
}

// lockState tracks one key's events inside a scope.
type lockState struct {
	locks    []token.Pos
	unlocks  []token.Pos
	deferred bool // defer x.Unlock() (or inside a deferred literal)
	escapes  bool
}

// renderChain flattens an Ident/SelectorExpr chain ("e.mu", "sh.vmu") or
// returns "" when the expression is anything else (indexing, calls, …).
func renderChain(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := renderChain(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

// isMutexType reports whether t is (a pointer to) a named Mutex/RWMutex.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

func checkLockScope(pass *Pass, body *ast.BlockStmt) {
	// Deferred calls and nested-literal extents, as in spanend.
	deferredCalls := map[*ast.CallExpr]bool{}
	deferredLits := map[*ast.FuncLit]bool{}
	var litRanges []scopeRange
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			deferredCalls[x.Call] = true
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				deferredLits[lit] = true
			}
		case *ast.FuncLit:
			litRanges = append(litRanges, scopeRange{pos: x.Pos(), end: x.End()})
		}
		return true
	})
	inLit := func(p token.Pos) bool {
		for _, r := range litRanges {
			if r.pos <= p && p < r.end {
				return true
			}
		}
		return false
	}
	inDeferredLit := func(p token.Pos) bool {
		for lit := range deferredLits {
			if lit.Pos() <= p && p < lit.End() {
				return true
			}
		}
		return false
	}

	// Pass 1: classify Lock/Unlock calls on mutex-typed chains. Receiver
	// expressions of recognized calls are sanctioned; any other appearance
	// of a tracked chain (pass 2) voids the key.
	states := map[lockKey]*lockState{}
	var order []lockKey
	sanctioned := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isMutexType(pass.Info.Types[sel.X].Type) {
			return true
		}
		chain := renderChain(sel.X)
		if chain == "" {
			return true
		}
		var key lockKey
		var acquire bool
		switch sel.Sel.Name {
		case "Lock", "RLock":
			key = lockKey{chain, sel.Sel.Name}
			acquire = true
		case "Unlock":
			key = lockKey{chain, "Lock"}
		case "RUnlock":
			key = lockKey{chain, "RLock"}
		case "TryLock":
			key = lockKey{chain, "Lock"}
		case "TryRLock":
			key = lockKey{chain, "RLock"}
		default:
			return true
		}
		sanctioned[sel.X] = true
		st := states[key]
		if st == nil {
			st = &lockState{}
			states[key] = st
			order = append(order, key)
		}
		switch {
		case sel.Sel.Name == "TryLock" || sel.Sel.Name == "TryRLock":
			// Conditional acquisition needs flow tracking beyond the
			// block-structured model; leave the key unjudged.
			st.escapes = true
		case acquire:
			if inLit(call.Pos()) {
				st.escapes = true // a literal locking for the outer scope: not judged here
			} else if deferredCalls[call] {
				st.escapes = true // defer mu.Lock() is exotic; don't guess
			} else {
				st.locks = append(st.locks, call.Pos())
			}
		default: // release
			switch {
			case deferredCalls[call], inDeferredLit(call.Pos()):
				st.deferred = true
			case inLit(call.Pos()):
				st.escapes = true
			default:
				st.unlocks = append(st.unlocks, call.Pos())
			}
		}
		return true
	})
	if len(order) == 0 {
		return
	}

	// Pass 2: any unsanctioned appearance of a tracked chain (&mu,
	// mu.RLocker(), an argument…) escapes the block-structured model.
	ast.Inspect(body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok || sanctioned[e] || !isMutexType(pass.Info.Types[e].Type) {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true
		}
		chain := renderChain(e)
		if chain == "" {
			return true
		}
		for _, key := range order {
			if key.chain == chain {
				states[key].escapes = true
			}
		}
		// Don't descend: the Idents inside a matched SelectorExpr are not
		// independent appearances.
		return false
	})

	// Scopes and returns of this function, excluding nested literals.
	var scopes []scopeRange
	var returns []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			scopes = append(scopes, scopeRange{pos: x.Pos(), end: x.End(), list: x.List})
		case *ast.CaseClause:
			scopes = append(scopes, scopeRange{pos: x.Pos(), end: x.End(), list: x.Body})
		case *ast.CommClause:
			scopes = append(scopes, scopeRange{pos: x.Pos(), end: x.End(), list: x.Body})
		case *ast.ReturnStmt:
			returns = append(returns, x.Pos())
		}
		return true
	})
	innermost := func(p token.Pos) scopeRange {
		best := scopeRange{pos: body.Pos(), end: body.End(), list: body.List}
		for _, s := range scopes {
			if s.pos <= p && p < s.end && s.pos >= best.pos {
				best = s
			}
		}
		return best
	}
	covered := func(st *lockState, lock, exit token.Pos) bool {
		for _, u := range st.unlocks {
			if lock < u && u < exit {
				if s := innermost(u); s.pos <= exit && exit < s.end {
					return true
				}
			}
		}
		return false
	}

	for _, key := range order {
		st := states[key]
		if st.escapes || st.deferred || len(st.locks) == 0 {
			continue
		}
		release := lockPairs[key.mode]
		for _, lock := range st.locks {
			if len(st.unlocks) == 0 {
				pass.Reportf(lock, "%s.%s() is never released in this function; defer %s.%s or release on every path",
					key.chain, key.mode, key.chain, release)
				break
			}
			home := innermost(lock)
			leak := token.NoPos
			for _, ret := range returns {
				if ret > lock && home.pos <= ret && ret < home.end && !covered(st, lock, ret) {
					leak = ret
					break
				}
			}
			if leak == token.NoPos && len(home.list) > 0 && !terminatesExt(home.list[len(home.list)-1]) {
				if p := home.end - 1; !covered(st, lock, p) {
					leak = p
				}
			}
			if leak != token.NoPos {
				pass.Reportf(lock, "%s.%s() is not released on every path (path reaching line %d lacks %s)",
					key.chain, key.mode, pass.Fset.Position(leak).Line, release)
			}
		}
	}
}

// terminatesExt extends spanend's terminates with switch/select: a
// switch with a default (or a select) whose every clause terminates
// cannot be fallen out of.
func terminatesExt(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.SwitchStmt:
		return allClausesTerminate(x.Body, true)
	case *ast.TypeSwitchStmt:
		return allClausesTerminate(x.Body, true)
	case *ast.SelectStmt:
		return allClausesTerminate(x.Body, false)
	case *ast.IfStmt:
		if x.Else == nil || !terminatesExtBlockLike(x.Body) {
			return false
		}
		if blk, ok := x.Else.(*ast.BlockStmt); ok {
			return terminatesExtBlockLike(blk)
		}
		return terminatesExt(x.Else)
	case *ast.BlockStmt:
		return terminatesExtBlockLike(x)
	}
	return terminates(s)
}

func terminatesExtBlockLike(b *ast.BlockStmt) bool {
	return len(b.List) > 0 && terminatesExt(b.List[len(b.List)-1])
}

// allClausesTerminate reports whether every clause of a switch/select body
// ends in a terminating statement; needDefault additionally requires a
// default clause (a switch without one can fall through to the next
// statement).
func allClausesTerminate(body *ast.BlockStmt, needDefault bool) bool {
	hasDefault := false
	for _, stmt := range body.List {
		var list []ast.Stmt
		var isDefault bool
		switch c := stmt.(type) {
		case *ast.CaseClause:
			list, isDefault = c.Body, c.List == nil
		case *ast.CommClause:
			list, isDefault = c.Body, c.Comm == nil
		default:
			return false
		}
		if isDefault {
			hasDefault = true
		}
		if len(list) == 0 || !terminatesExt(list[len(list)-1]) {
			return false
		}
	}
	return !needDefault || hasDefault
}
