// Package serve is the concurrent serving engine: it multiplexes many
// independent gesture interactions — each a multipath.Session wrapping a
// recognition stream — across a pool of worker goroutines, sharing one
// immutable recognizer snapshot. The recognizer is any
// recognizer.Backend (the eager statistical recognizer, the streaming
// template matcher — see BACKENDS.md), chosen at construction via New or
// Options.Backend and replaceable at runtime via Swap.
//
// Design (see DESIGN.md §7 and §11):
//
//   - Immutable snapshot sharing. The engine holds a recognizer.Backend
//     behind an atomic.Pointer (boxed in a snapshot struct, since an
//     interface value cannot be stored atomically). Classification never
//     mutates the backend (the documented Backend concurrency contract),
//     so any number of sessions on any number of goroutines read it
//     without locks. Swap publishes a freshly-trained backend atomically —
//     retrain-without-downtime: sessions started after the swap use the
//     new model, in-flight sessions finish on the snapshot they started
//     with, and no session ever observes a half-updated model.
//
//   - Sharding. Each session ID hashes (FNV-1a) to one shard; a shard is
//     one goroutine owning a bounded event queue and the state of every
//     session mapped to it. All events of one session are handled by one
//     goroutine in submission order, so the single-goroutine session
//     types are used unchanged, with no per-session locking.
//
//   - Backpressure. Submit never blocks and never drops silently: when a
//     shard's queue is full it returns ErrQueueFull and counts the
//     rejection, and the caller decides (shed, retry, spill). Submitter
//     packages the standard bounded-retry/backoff/shed policy.
//
//   - Hostile input stops at the door. Submit validates every event —
//     non-finite coordinates, negative or regressing timestamps, empty
//     session IDs are rejected with ErrBadEvent before they can reach
//     feature extraction (see DESIGN.md §9, "Fault model").
//
//   - Failure is contained per session. A panic while dispatching an
//     event is recovered inside the shard loop: the session is finished
//     with OutcomePanicked and quarantined, the shard keeps serving its
//     other sessions. A poisoned recognition stream (non-finite input past
//     validation — i.e. internal corruption, simulated by
//     Options.Fault) degrades to full-classification of the finite
//     stroke prefix instead of rejecting (OutcomeDegraded). A session
//     whose producer vanishes mid-stroke is force-finished by the idle
//     reaper once Options.IdleTimeout passes with no events
//     (OutcomeReaped) — the serving-side analogue of internal/display's
//     motionless timeout.
//
//   - Clean shutdown. Close stops intake (ErrClosed), lets every shard
//     drain its queued events, force-finishes in-flight sessions via
//     (*multipath.Session).Finish — classifying whatever stroke prefix
//     was collected — and reports each as a Result before returning.
package serve

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flight"
	"repro/internal/mathx"
	"repro/internal/multipath"
	"repro/internal/obs"
	"repro/internal/recognizer"
	"repro/internal/wire"
)

// Errors returned by Submit.
var (
	// ErrQueueFull reports that the target shard's event queue is at
	// capacity. The event was NOT enqueued; the caller owns the retry
	// policy. This is deliberate backpressure, never silent dropping.
	ErrQueueFull = errors.New("serve: shard queue full")
	// ErrClosed reports a Submit after Close.
	ErrClosed = errors.New("serve: engine closed")
	// ErrBadEvent reports an event rejected by Submit-time validation:
	// non-finite coordinates, a non-finite or negative timestamp, a
	// timestamp regressing below the session's previous accepted event,
	// or an empty session ID. The event was not enqueued. Match with
	// errors.Is; the concrete error says which check failed.
	ErrBadEvent = errors.New("serve: bad event")
	// ErrOverloaded reports an event shed early by the admission
	// controller (Options.Admit): queue-wait p99 has exceeded its
	// target for a sustained interval and queueing more work would only
	// deepen the delay. The event was NOT enqueued. Unlike ErrQueueFull
	// this is not worth an immediate retry — callers should pause for
	// the controller's RetryAfterMS hint (the wire layer maps this to
	// NackOverload plus the ACK's retry-after field).
	ErrOverloaded = errors.New("serve: overloaded, admission controller shed event")
)

// DefaultQueueDepth is the per-shard event queue capacity used when
// Options.QueueDepth is 0.
const DefaultQueueDepth = 256

// Event is one finger sample addressed to one interaction session.
type Event struct {
	Session string
	Finger  multipath.FingerID
	Kind    multipath.EventKind
	X, Y, T float64
	// SentNS is the client-send wall-clock time in Unix nanoseconds, as
	// stamped in the wire frame header that carried the event (0 for
	// locally submitted events or pre-v2 peers). When set, the engine
	// attributes end-to-end wire latency (wire.e2e_ns) at dispatch time.
	SentNS int64
}

// Outcome is the typed reason a session finished — every Result carries
// exactly one.
type Outcome int

// Session outcomes.
const (
	// OutcomeCompleted is the healthy path: the interaction ran to its
	// natural end (all fingers lifted).
	OutcomeCompleted Outcome = iota
	// OutcomeDegraded means the recognition stream poisoned mid-stroke
	// and the class came from the backend's degraded fallback
	// (classifying the finite prefix). The interaction still ended
	// naturally.
	OutcomeDegraded
	// OutcomeDrained means Close force-finished the session, classifying
	// the stroke prefix collected so far.
	OutcomeDrained
	// OutcomeReaped means the idle reaper force-finished the session
	// after Options.IdleTimeout without events.
	OutcomeReaped
	// OutcomePanicked means dispatching an event for this session
	// panicked; the panic was recovered, the session finished with class
	// "" and was quarantined (later events for its ID are dropped).
	OutcomePanicked
)

// String names the outcome ("completed", "degraded", "drained",
// "reaped", "panicked"); unknown values render as "outcome(N)".
func (o Outcome) String() string {
	switch o {
	case OutcomeCompleted:
		return "completed"
	case OutcomeDegraded:
		return "degraded"
	case OutcomeDrained:
		return "drained"
	case OutcomeReaped:
		return "reaped"
	case OutcomePanicked:
		return "panicked"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Result is the outcome of one completed interaction: the recognized
// class ("" marks a rejected/unclassifiable stroke, matching the session
// layer's convention) and the typed reason the session ended.
type Result struct {
	Session string
	Class   string
	Outcome Outcome
}

// Clock abstracts the engine's time source so deadline behavior is
// testable with a virtual clock (fault.ManualClock implements it). The
// zero Options use the wall clock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// Injector is the engine-side fault-injection hook (fault.Schedule and
// fault.Script implement it). When Options.Fault is set, the engine
// consults Dispatch once per dispatched event — from the shard
// goroutine, with the session's 0-based dispatch index — and uses the
// possibly-corrupted coordinates; panicNow=true makes the engine panic
// in place of dispatching, exercising panic isolation. Implementations
// must be safe for concurrent use across shards. Nil disables injection
// at the cost of one nil check per event.
type Injector interface {
	Dispatch(session string, index int, x, y float64) (fx, fy float64, panicNow bool)
}

// Options configures an Engine.
type Options struct {
	// Shards is the number of worker goroutines (and queues). 0 means
	// runtime.GOMAXPROCS.
	Shards int
	// QueueDepth is the per-shard event queue capacity. 0 means
	// DefaultQueueDepth. Submit returns ErrQueueFull beyond it.
	QueueDepth int
	// OnResult, when set, is called once per completed session, from the
	// shard goroutine that owned it. Calls may arrive concurrently from
	// different shards; the callback must be safe for that. A slow
	// callback stalls its shard — that is the backpressure propagating,
	// by design.
	OnResult func(Result)
	// IdleTimeout, when positive, arms the idle reaper: a session that
	// receives no events for at least this long (by Clock) is
	// force-finished with OutcomeReaped — the defense against producers
	// that vanish mid-stroke. 0 disables deadlines entirely.
	IdleTimeout time.Duration
	// ReapInterval is the background reaper's sweep period: 0 means
	// IdleTimeout/4 (floored at 1ms), negative disables the background
	// sweeper — reaping then only happens via explicit Reap calls, which
	// is what deterministic virtual-clock tests want. Ignored when
	// IdleTimeout is 0.
	ReapInterval time.Duration
	// Clock is the deadline time source; nil means the wall clock. Tests
	// inject fault.ManualClock.
	Clock Clock `json:"-"`
	// Fault, when set, is consulted once per dispatched event and may
	// corrupt coordinates or force a panic — the chaos hook (see
	// internal/fault). Nil (production) costs one nil check per event.
	Fault Injector `json:"-"`
	// Obs, when set, attaches the engine's metrics and trace ring to the
	// registry (see OBSERVABILITY.md for the serve.* contract), and opens
	// one causally-nested span trace per gesture in the registry's
	// "gesture.spans" buffer (root "gesture" span with "queue_wait" /
	// "dispatch" children per event, plus the eager layer's "decide"
	// spans underneath). Nil leaves the engine uninstrumented: every
	// metric and span call degrades to a sub-5ns no-op.
	Obs *obs.Registry `json:"-"`
	// Flight, when set, attaches a flight recorder: the engine captures
	// each gesture's raw points and per-point decisions (via
	// recognizer.Tap) and offers the finished bundle to the recorder,
	// whose trigger policy decides what to keep. Works with or without
	// Obs. Nil disables capture entirely.
	Flight *flight.Recorder `json:"-"`
	// Backend, when set, selects the recognizer backend the engine
	// serves, overriding New's positional argument (which may then be
	// nil). Exactly one of the two must be non-nil; New refuses an
	// engine with no backend at all. This is the options-driven
	// selection hook front ends like gserve's -backend flag use.
	Backend recognizer.Backend `json:"-"`
	// FlightDump, when set, receives the flight recorder's JSON dump once,
	// during Close — the post-mortem artifact for a crashed or misbehaving
	// run. Requires Flight (with a nil recorder an empty dump is written).
	FlightDump io.Writer `json:"-"`
	// Admit, when set, arms the adaptive admission controller: Submit
	// sheds a deterministic fraction of traffic with ErrOverloaded when
	// queue-wait p99 stays over Admit.Target (see Admission). The
	// controller's Clock and Obs default to the engine's own when left
	// nil. Nil disables admission control at the cost of one nil check
	// per submit.
	Admit *AdmitOptions `json:"-"`
	// Admission, when set, overrides Admit with a pre-built controller
	// — the hook tests and front ends use to share or pre-drive one.
	Admission *Admission `json:"-"`
}

// engineMetrics holds the engine's obs handles. The zero value (all nil)
// is the uninstrumented state; see OBSERVABILITY.md for the contract.
type engineMetrics struct {
	submitted     *obs.Counter    // serve.events.submitted
	rejected      *obs.Counter    // serve.events.rejected
	bad           *obs.Counter    // serve.events.bad (failed validation)
	quarantined   *obs.Counter    // serve.events.quarantined (dropped, post-panic session)
	opened        *obs.Counter    // serve.sessions.opened
	completed     *obs.Counter    // serve.sessions.completed
	drained       *obs.Counter    // serve.sessions.drained (subset of completed)
	reaped        *obs.Counter    // serve.sessions.reaped (subset of completed)
	panicked      *obs.Counter    // serve.sessions.panicked (subset of completed)
	degraded      *obs.Counter    // serve.sessions.degraded (subset of completed)
	swaps         *obs.Counter    // serve.swaps
	swapsRejected *obs.Counter    // serve.swaps_rejected (nil recognizer refused)
	queueDepth    *obs.Histogram  // serve.queue.depth, sampled per accepted Submit
	queueWaitNS   *obs.Histogram  // serve.queue.wait_ns, enqueue -> dequeue
	sessionNS     *obs.Histogram  // serve.session.latency_ns, first submit -> completion
	e2e           *obs.Histogram  // wire.e2e_ns, client send stamp -> dispatch decision
	trace         *obs.Ring       // serve.trace lifecycle events
	spans         *obs.SpanBuffer // gesture.spans, one trace per gesture

	// Windowed siblings of the cumulative instruments above, feeding
	// rolling-rate displays (gtop) and the SLO burn-rate engine.
	submittedWin *obs.WindowedCounter   // window.serve.events.submitted
	sessionWinNS *obs.WindowedHistogram // window.serve.session.latency_ns
	e2eWin       *obs.WindowedHistogram // window.wire.e2e_ns
}

func newEngineMetrics(reg *obs.Registry) engineMetrics {
	if reg == nil {
		return engineMetrics{}
	}
	return engineMetrics{
		submitted:     reg.Counter("serve.events.submitted"),
		rejected:      reg.Counter("serve.events.rejected"),
		bad:           reg.Counter("serve.events.bad"),
		quarantined:   reg.Counter("serve.events.quarantined"),
		opened:        reg.Counter("serve.sessions.opened"),
		completed:     reg.Counter("serve.sessions.completed"),
		drained:       reg.Counter("serve.sessions.drained"),
		reaped:        reg.Counter("serve.sessions.reaped"),
		panicked:      reg.Counter("serve.sessions.panicked"),
		degraded:      reg.Counter("serve.sessions.degraded"),
		swaps:         reg.Counter("serve.swaps"),
		swapsRejected: reg.Counter("serve.swaps_rejected"),
		queueDepth:    reg.Histogram("serve.queue.depth", obs.DepthBuckets()),
		queueWaitNS:   reg.Histogram("serve.queue.wait_ns", obs.LatencyBuckets()),
		sessionNS:     reg.Histogram("serve.session.latency_ns", obs.LatencyBuckets()),
		e2e:           reg.Histogram("wire.e2e_ns", obs.LatencyBuckets()),
		trace:         reg.Ring("serve.trace", 0),
		spans:         reg.Spans("gesture.spans", 0),
		submittedWin:  reg.WindowedCounter("window.serve.events.submitted", 0, 0),
		sessionWinNS:  reg.WindowedHistogram("window.serve.session.latency_ns", obs.LatencyBuckets(), 0, 0),
		e2eWin:        reg.WindowedHistogram("window.wire.e2e_ns", obs.LatencyBuckets(), 0, 0),
	}
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	Submitted int64 // events accepted into a queue
	Rejected  int64 // events terminally refused for backpressure: direct Submit ErrQueueFull, or one per Submitter shed (not per retry)
	Bad       int64 // events refused with ErrBadEvent
	Completed int64 // sessions finished (any outcome)
	Active    int64 // sessions currently in flight
	Reaped    int64 // sessions force-finished by the idle reaper
	Panicked  int64 // sessions finished by a recovered dispatch panic
	Degraded  int64 // sessions classified via the degraded fallback
}

// Engine is the concurrent session server. Create with New; all methods
// are safe for concurrent use.
type Engine struct {
	rec    atomic.Pointer[snapshot]
	opts   Options
	shards []*shard
	wg     sync.WaitGroup

	mu     sync.RWMutex // guards closed vs. concurrent Submit/Close
	closed bool

	clock     Clock
	deadlines bool          // IdleTimeout > 0
	stop      chan struct{} // closed at Close to stop the background reaper
	reaperOn  bool
	reapWG    sync.WaitGroup

	submitted atomic.Int64
	rejected  atomic.Int64
	bad       atomic.Int64
	completed atomic.Int64
	active    atomic.Int64
	reaped    atomic.Int64
	panicked  atomic.Int64
	degraded  atomic.Int64

	m engineMetrics
	// stamp records whether Submit must read the clock: true when any of
	// observability (queue-wait/latency histograms, span timestamps), a
	// flight recorder (latency trigger), or the admission controller
	// (queue-wait feed) is attached. False keeps the disabled path free
	// of clock reads.
	stamp bool
	// admission is the adaptive overload controller (nil = disabled).
	admission *Admission
	// startNS is the engine's construction time in Unix nanoseconds —
	// the lower clamp for e2e latency attribution (a wire stamp older
	// than the process cannot contribute more than process uptime).
	startNS int64
}

// control is an in-band shard command: a Flush barrier (done only) or a
// reap sweep. Routed through the event queue so it is serialized with
// event handling by the shard goroutine, needing no extra locks.
type control struct {
	reap   bool
	reaped *atomic.Int64 // when non-nil, accumulates the sweep's count
	done   chan struct{} // when non-nil, closed once the command ran
}

// queued is one enqueued event plus its enqueue timestamp (the zero Time
// when the engine is uninstrumented), so the shard can observe queue wait
// on dequeue. A non-nil ctl makes it a control message instead; control
// messages bypass the submitted counter and the queue-wait histogram, so
// queue accounting still balances (wait_ns count == events submitted).
type queued struct {
	ev  Event
	at  time.Time
	ctl *control
}

// snapshot boxes the engine's current recognizer.Backend so it can live
// behind an atomic.Pointer: an interface value is two words and cannot
// be stored atomically, a *snapshot can. Each Swap allocates a fresh
// snapshot, so the pointer's identity also identifies the publish
// generation — the session pool's reuse key.
type snapshot struct {
	backend recognizer.Backend
}

// liveSession is one in-flight session plus the enqueue time of the
// event that opened it, so completion can observe end-to-end latency.
// root is the gesture's root span (nil when uninstrumented); capture is
// its flight-recorder capture (nil when no recorder is attached). snap
// is the backend snapshot sess was built over — the pool's reuse key: a
// pooled liveSession is only revived for a gesture starting on the same
// snapshot (see openSession).
type liveSession struct {
	snap    *snapshot
	sess    *multipath.Session
	start   time.Time
	root    *obs.Span
	capture *flight.Capture
	// events is the 0-based dispatch index handed to the fault hook;
	// lastActive is the Clock reading of the last dispatched event (only
	// maintained when deadlines are armed).
	events     int
	lastActive time.Time
}

// shard is one worker goroutine's world: its queue and the sessions it
// exclusively owns. Only that goroutine touches `sessions` and
// `quarantined`; `lastT` is shared with Submit under vmu.
type shard struct {
	ch       chan queued
	sessions map[string]*liveSession
	// quarantined tombstones sessions finished by a recovered panic, so
	// late events (or a duplicate FingerDown) cannot resurrect the ID
	// and break the one-Result-per-session invariant. Bounded by the
	// number of panicked sessions.
	quarantined map[string]bool
	// free pools finished liveSessions for reuse (LIFO), keeping the
	// steady-state dispatch path allocation-free: a completed gesture's
	// session is Reset and parked here, and the next gesture on the same
	// recognizer snapshot revives it instead of allocating. Bounded by
	// the shard's peak concurrent session count. Only the shard goroutine
	// touches it; panicked sessions are never pooled.
	free []*liveSession
	// vmu guards lastT, the per-session high-water timestamp Submit uses
	// to reject regressing events. Entries are cleared when the session
	// finishes (and for stray events), bounding the map by the live
	// session count.
	vmu   sync.Mutex
	lastT map[string]float64
}

func (sh *shard) clearLastT(id string) {
	sh.vmu.Lock()
	delete(sh.lastT, id)
	sh.vmu.Unlock()
}

// New builds and starts an engine serving the given recognizer backend
// (*eager.Recognizer and *template.Recognizer both implement it — see
// BACKENDS.md). Options.Backend, when set, overrides the positional
// argument; one of the two must be non-nil.
func New(backend recognizer.Backend, opts Options) (*Engine, error) {
	if opts.Backend != nil {
		backend = opts.Backend
	}
	if backend == nil {
		return nil, errors.New("serve: nil recognizer backend")
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("serve: Shards must be >= 0, got %d", opts.Shards)
	}
	if opts.QueueDepth < 0 {
		return nil, fmt.Errorf("serve: QueueDepth must be >= 0, got %d", opts.QueueDepth)
	}
	if opts.IdleTimeout < 0 {
		return nil, fmt.Errorf("serve: IdleTimeout must be >= 0, got %v", opts.IdleTimeout)
	}
	if opts.Shards == 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth == 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	e := &Engine{opts: opts, m: newEngineMetrics(opts.Obs), startNS: time.Now().UnixNano()}
	e.clock = opts.Clock
	if e.clock == nil {
		e.clock = wallClock{}
	}
	e.admission = opts.Admission
	if e.admission == nil && opts.Admit != nil {
		ao := *opts.Admit
		if ao.Clock == nil {
			ao.Clock = opts.Clock
		}
		if ao.Obs == nil {
			ao.Obs = opts.Obs
		}
		var err error
		if e.admission, err = NewAdmission(ao); err != nil {
			return nil, err
		}
	}
	e.stamp = opts.Obs != nil || opts.Flight != nil || e.admission != nil
	if opts.Clock != nil && opts.Obs != nil {
		// Windowed instruments rotate on the registry clock; align it
		// with the engine's injected clock so tests (and replay) see
		// consistent window epochs.
		opts.Obs.SetClock(opts.Clock)
	}
	e.deadlines = opts.IdleTimeout > 0
	e.stop = make(chan struct{})
	e.rec.Store(&snapshot{backend: backend})
	for i := 0; i < opts.Shards; i++ {
		sh := &shard{
			ch:          make(chan queued, opts.QueueDepth),
			sessions:    make(map[string]*liveSession),
			quarantined: make(map[string]bool),
			lastT:       make(map[string]float64),
		}
		e.shards = append(e.shards, sh)
		e.wg.Add(1)
		go e.run(sh)
	}
	if e.deadlines && opts.ReapInterval >= 0 {
		interval := opts.ReapInterval
		if interval == 0 {
			interval = opts.IdleTimeout / 4
		}
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		e.reaperOn = true
		e.reapWG.Add(1)
		go e.reapLoop(interval)
	}
	return e, nil
}

// Backend returns the current recognizer backend snapshot.
func (e *Engine) Backend() recognizer.Backend { return e.rec.Load().backend }

// Admission returns the engine's admission controller, or nil when
// admission control is disabled. Front ends use it for retry-after
// hints (wire NACKs) and brownout state (/healthz, /slo).
func (e *Engine) Admission() *Admission { return e.admission }

// AdmitState returns the admission controller's current state —
// AdmitHealthy when admission control is disabled.
func (e *Engine) AdmitState() AdmitState { return e.admission.State() }

// Swap atomically publishes a new recognizer backend and returns the
// previous one — retraining without downtime. Sessions already in
// flight keep the snapshot they started with; sessions created after
// Swap use the new backend. A nil backend is refused (nil is returned
// and the current snapshot is kept), so a failed retrain can never
// blank the serving model. Backends of different kinds may be swapped
// for each other freely: the kind, like the model, is a per-gesture
// snapshot property.
func (e *Engine) Swap(backend recognizer.Backend) recognizer.Backend {
	if backend == nil {
		e.m.swapsRejected.Inc()
		e.m.trace.Emit("swap_rejected", "nil recognizer")
		return nil
	}
	e.m.swaps.Inc()
	e.m.trace.Emit("swap", "")
	return e.rec.Swap(&snapshot{backend: backend}).backend
}

// FNV-1a constants (FNV is public domain; hash/fnv uses the same ones).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// shardFor maps a session ID to its shard by FNV-1a hash. The hash is
// inlined rather than going through hash/fnv, whose hash.Hash32 interface
// and []byte conversion would allocate on every Submit.
func (e *Engine) shardFor(session string) *shard {
	h := uint32(fnvOffset32)
	for i := 0; i < len(session); i++ {
		h ^= uint32(session[i])
		h *= fnvPrime32
	}
	return e.shards[h%uint32(len(e.shards))]
}

// validate is Submit's stateless event check; the regressing-timestamp
// check needs per-shard state and lives in Submit itself.
func validate(ev Event) error {
	if ev.Session == "" {
		return fmt.Errorf("%w: empty session ID", ErrBadEvent)
	}
	if !mathx.Finite(ev.X) || !mathx.Finite(ev.Y) {
		return fmt.Errorf("%w: non-finite coordinates (%v, %v) for session %s", ErrBadEvent, ev.X, ev.Y, ev.Session)
	}
	if !mathx.Finite(ev.T) || ev.T < 0 {
		return fmt.Errorf("%w: bad timestamp %v for session %s", ErrBadEvent, ev.T, ev.Session)
	}
	return nil
}

// Submit routes one event to its session's shard. It never blocks: an
// invalid event returns ErrBadEvent (non-finite coordinates, bad or
// regressing timestamp, empty session ID — checked before anything can
// reach feature extraction), a full shard queue returns ErrQueueFull
// (the event is not enqueued), a closed engine returns ErrClosed. Match
// all three with errors.Is. Events for one session are processed in
// submission order as long as the caller submits them from one
// goroutine.
//
// Submit is the intake half of the zero-allocation decide path: with
// observability and flight capture disabled it must not allocate per
// event (machine-checked — see DESIGN.md §6, "Hot-path allocation
// gate").
//
//glint:hotpath
func (e *Engine) Submit(ev Event) error {
	return e.submit(ev, true)
}

// submit is Submit with the rejected-event accounting made optional:
// retrying callers (Submitter) pass countRejected=false so a refused
// event increments serve.events.rejected exactly once — at terminal
// refusal — rather than once per retry attempt.
//
//glint:hotpath
func (e *Engine) submit(ev Event, countRejected bool) error {
	if err := validate(ev); err != nil {
		e.bad.Add(1)
		e.m.bad.Inc()
		return err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	if e.admission != nil && !e.admission.Admit() {
		if countRejected {
			e.rejected.Add(1)
			e.m.rejected.Inc()
		}
		return ErrOverloaded
	}
	sh := e.shardFor(ev.Session)
	var at time.Time
	if e.stamp {
		at = time.Now()
	}
	sh.vmu.Lock()
	if last, ok := sh.lastT[ev.Session]; ok && ev.T < last {
		sh.vmu.Unlock()
		e.bad.Add(1)
		e.m.bad.Inc()
		return fmt.Errorf("%w: timestamp %v regresses below %v for session %s", ErrBadEvent, ev.T, last, ev.Session)
	}
	select {
	case sh.ch <- queued{ev: ev, at: at}:
		sh.lastT[ev.Session] = ev.T
		sh.vmu.Unlock()
		e.submitted.Add(1)
		e.m.submitted.Inc()
		e.m.submittedWin.Inc()
		e.m.queueDepth.Observe(float64(len(sh.ch)))
		return nil
	default:
		sh.vmu.Unlock()
		if countRejected {
			e.rejected.Add(1)
			e.m.rejected.Inc()
		}
		return ErrQueueFull
	}
}

// countRejected records one terminally refused event in Stats.Rejected
// and serve.events.rejected. The Submitter calls it once when it sheds,
// pairing with submit(ev, false) so retries don't inflate the counter.
func (e *Engine) countRejected() {
	e.rejected.Add(1)
	e.m.rejected.Inc()
}

// Closed reports whether Close has begun: a closed engine refuses every
// Submit with ErrClosed. Front ends use it to answer with a typed
// shutting-down status (HTTP 503, wire NACK-closed) instead of a
// generic failure.
func (e *Engine) Closed() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.closed
}

// Flush is a barrier: it blocks until every event accepted by Submit
// before the call has been dispatched. It works by routing a control
// message through each shard queue, so it shares the event path's FIFO
// guarantee. Note the sends block when a queue is full — don't call
// Flush from an OnResult callback. Returns ErrClosed on a closed
// engine.
func (e *Engine) Flush() error {
	return e.broadcast(&control{})
}

// Reap synchronously sweeps every shard, force-finishing sessions idle
// for at least Options.IdleTimeout (by Options.Clock), and returns how
// many it finished. With a virtual clock and ReapInterval < 0 this is
// the deterministic way to drive deadlines: advance the clock, call
// Reap. A no-op (0, nil) when IdleTimeout is 0. Returns ErrClosed on a
// closed engine.
func (e *Engine) Reap() (int, error) {
	var n atomic.Int64
	if err := e.broadcast(&control{reap: true, reaped: &n}); err != nil {
		return 0, err
	}
	return int(n.Load()), nil
}

// broadcast sends one control template to every shard and waits for all
// of them to process it.
func (e *Engine) broadcast(tmpl *control) error {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return ErrClosed
	}
	dones := make([]chan struct{}, 0, len(e.shards))
	for _, sh := range e.shards {
		c := &control{reap: tmpl.reap, reaped: tmpl.reaped, done: make(chan struct{})}
		sh.ch <- queued{ctl: c}
		dones = append(dones, c.done)
	}
	e.mu.RUnlock()
	for _, d := range dones {
		<-d
	}
	return nil
}

// reapLoop is the background sweeper: every interval it drops a
// non-blocking reap command into each shard queue (skipping full queues
// — a busy shard is not idle) until Close.
func (e *Engine) reapLoop(interval time.Duration) {
	defer e.reapWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
			e.mu.RLock()
			if !e.closed {
				for _, sh := range e.shards {
					select {
					case sh.ch <- queued{ctl: &control{reap: true}}:
					default:
					}
				}
			}
			e.mu.RUnlock()
		}
	}
}

// Close stops intake, drains every shard's queued events, force-finishes
// the sessions still in flight (each is classified on the stroke prefix
// collected so far and reported through OnResult with OutcomeDrained),
// and waits for all workers — and the background reaper — to exit. When
// Options.FlightDump is set, the flight recorder's JSON dump is then
// written to it exactly once (the post-mortem artifact). Close is
// idempotent; concurrent Submits during Close get ErrClosed or are
// processed, never lost after being accepted.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return nil
	}
	e.closed = true
	close(e.stop)
	for _, sh := range e.shards {
		//lint:ignore sendclosed senders hold e.mu.RLock and check e.closed before every send; closed is set under e.mu.Lock above, so no send can race this close
		close(sh.ch)
	}
	e.mu.Unlock()
	e.reapWG.Wait()
	e.wg.Wait()
	if e.opts.FlightDump != nil {
		return e.opts.Flight.WriteJSON(e.opts.FlightDump)
	}
	return nil
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Submitted: e.submitted.Load(),
		Rejected:  e.rejected.Load(),
		Bad:       e.bad.Load(),
		Completed: e.completed.Load(),
		Active:    e.active.Load(),
		Reaped:    e.reaped.Load(),
		Panicked:  e.panicked.Load(),
		Degraded:  e.degraded.Load(),
	}
}

// run is one shard's worker loop: handle events until the queue closes,
// then drain the in-flight sessions deterministically (ID order).
func (e *Engine) run(sh *shard) {
	defer e.wg.Done()
	for q := range sh.ch {
		if q.ctl != nil {
			if q.ctl.reap {
				n := e.sweep(sh)
				if q.ctl.reaped != nil {
					q.ctl.reaped.Add(int64(n))
				}
			}
			if q.ctl.done != nil {
				close(q.ctl.done)
			}
			continue
		}
		if !q.at.IsZero() {
			wait := time.Since(q.at)
			e.m.queueWaitNS.Observe(float64(wait))
			e.admission.Observe(wait)
		}
		e.handle(sh, q)
	}
	ids := make([]string, 0, len(sh.sessions))
	for id := range sh.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ls := sh.sessions[id]
		e.forceFinish(sh, id, ls, OutcomeDrained)
	}
}

// sweep force-finishes every session idle for at least IdleTimeout,
// in deterministic ID order, and returns the count. Runs on the shard
// goroutine (via a control message), so it owns the session map.
func (e *Engine) sweep(sh *shard) int {
	if !e.deadlines || len(sh.sessions) == 0 {
		return 0
	}
	now := e.clock.Now()
	var ids []string
	for id, ls := range sh.sessions {
		if now.Sub(ls.lastActive) >= e.opts.IdleTimeout {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		e.forceFinish(sh, id, sh.sessions[id], OutcomeReaped)
	}
	return len(ids)
}

// forceFinish ends a session from outside its event stream (reaper or
// drain): Finish classifies the collected prefix, a panicking Finish is
// contained exactly like a dispatch panic.
func (e *Engine) forceFinish(sh *shard, id string, ls *liveSession, outcome Outcome) {
	class, panicked := e.finishSession(ls)
	if panicked {
		sh.quarantined[id] = true
		e.finish(sh, id, ls, "", OutcomePanicked)
		return
	}
	e.finish(sh, id, ls, class, outcome)
}

// finishSession calls Finish with panic containment, reporting whether
// it panicked instead of propagating.
func (e *Engine) finishSession(ls *liveSession) (class string, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			ls.root.Event("panic", fmt.Sprint(r))
		}
	}()
	return ls.sess.Finish(), false
}

// dispatch applies one event to its session with panic containment and
// the fault hook: a panic (injected or real) is recovered here, keeping
// the shard alive — only the panicking session is lost.
func (e *Engine) dispatch(id string, ls *liveSession, ev Event) (panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			ls.root.Event("panic", fmt.Sprint(r))
		}
	}()
	x, y := ev.X, ev.Y
	if e.opts.Fault != nil {
		var panicNow bool
		x, y, panicNow = e.opts.Fault.Dispatch(id, ls.events, x, y)
		if panicNow {
			panic(fmt.Sprintf("fault: injected panic (session %s, event %d)", id, ls.events))
		}
	}
	ls.sess.Handle(multipath.Event{Finger: ev.Finger, Kind: ev.Kind, X: x, Y: y, T: ev.T})
	return false
}

// openSession starts a new in-flight session for its first FingerDown,
// reviving a pooled liveSession when one is available for the current
// recognizer snapshot and allocating a fresh one otherwise. Runs on the
// shard goroutine, which owns both maps and the pool.
//
//glint:coldpath runs once per gesture, not per point, and the session pool makes the steady-state revival branch allocation-free
func (e *Engine) openSession(sh *shard, id string, at time.Time) *liveSession {
	snap := e.rec.Load()
	var ls *liveSession
	if n := len(sh.free); n > 0 {
		ls = sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		if ls.snap != snap {
			// The model was swapped while this session sat in the pool;
			// its recognition stream's buffers are shaped for the old
			// snapshot. Drop it (the remaining pool drains the same way)
			// and build against the current model.
			ls = nil
		}
	}
	if ls == nil {
		ls = &liveSession{snap: snap, sess: multipath.NewSession(snap.backend)}
	} else {
		sess := ls.sess
		*ls = liveSession{snap: snap, sess: sess}
	}
	ls.start = at
	ls.sess.SetDegradedFallback(true)
	ls.root = e.m.spans.StartAt("gesture", at)
	ls.root.SetAttr("session", id)
	ls.sess.SetSpan(ls.root)
	if e.opts.Flight != nil {
		ls.capture = flight.NewCapture(id)
		ls.sess.SetTap(ls.capture)
	}
	sh.sessions[id] = ls
	e.active.Add(1)
	e.m.opened.Inc()
	e.m.trace.Emit("session_open", id)
	return ls
}

// handle applies one event to its session, creating the session on its
// first FingerDown (with the recognizer snapshot current at that moment)
// and retiring it when the interaction completes. When instrumented, the
// first event opens the gesture's root span (backdated to its enqueue
// time, so queue wait is inside the trace) and every event records
// "queue_wait" and "dispatch" children under it.
//
// handle is the shard half of the zero-allocation decide path: in steady
// state (sessions pooled, observability off) dispatching one event must
// not allocate.
//
//glint:hotpath
func (e *Engine) handle(sh *shard, q queued) {
	ev := q.ev
	if sh.quarantined[ev.Session] {
		// Late event for a panic-quarantined session: drop it so the ID
		// cannot resurrect and produce a second Result.
		e.m.quarantined.Inc()
		sh.clearLastT(ev.Session)
		return
	}
	ls, ok := sh.sessions[ev.Session]
	if !ok {
		if ev.Kind != multipath.FingerDown {
			// Stray move/up for an unknown or already-retired session;
			// drop its timestamp high-water mark too, so stray traffic
			// cannot grow the validation map without bound.
			sh.clearLastT(ev.Session)
			return
		}
		ls = e.openSession(sh, ev.Session, q.at)
	}
	qsp := ls.root.ChildAt("queue_wait", q.at)
	qsp.End()
	dsp := ls.root.Child("dispatch")
	panicked := e.dispatch(ev.Session, ls, ev)
	dsp.End()
	if ev.SentNS > 0 && e.m.e2e != nil {
		// End-to-end wire attribution: client send stamp -> decision
		// applied. Clock skew between hosts can drive the delta negative
		// or absurdly large; SentLatency clamps it into [0, uptime] so
		// the histogram stays meaningful.
		if d, ok := wire.SentLatency(time.Now().UnixNano(), ev.SentNS, e.startNS); ok {
			e.m.e2e.Observe(float64(d))
			e.m.e2eWin.Observe(float64(d))
		}
	}
	ls.events++
	if e.deadlines {
		ls.lastActive = e.clock.Now()
	}
	if panicked {
		sh.quarantined[ev.Session] = true
		e.finish(sh, ev.Session, ls, "", OutcomePanicked)
		return
	}
	if ls.sess.Completed() {
		outcome := OutcomeCompleted
		if ls.sess.Degraded() {
			outcome = OutcomeDegraded
		}
		e.finish(sh, ev.Session, ls, ls.sess.Class(), outcome)
	}
}

// finish retires one session from its shard: counters, end-to-end
// latency (enqueue of the opening event through completion), trace,
// root-span closure, flight-bundle offer, and the OnResult callback.
// The outcome drives the per-reason counters, trace events, and the
// bundle's Outcome.Reason. A healthy session (any outcome but
// OutcomePanicked) is Reset and returned to the shard pool for the next
// gesture.
//
//glint:coldpath per-gesture teardown dispatched once at completion, not per point
func (e *Engine) finish(sh *shard, id string, ls *liveSession, class string, outcome Outcome) {
	delete(sh.sessions, id)
	sh.clearLastT(id)
	e.active.Add(-1)
	e.completed.Add(1)
	e.m.completed.Inc()
	var latency time.Duration
	if !ls.start.IsZero() {
		latency = time.Since(ls.start)
	}
	ls.root.SetAttr("class", class)
	ls.root.SetAttr("outcome", outcome.String())
	switch outcome {
	case OutcomeDrained:
		ls.root.SetAttrInt("drained", 1)
		e.m.drained.Inc()
		e.m.trace.Emit("session_drained", id)
	case OutcomeReaped:
		ls.root.Event("reaped", "")
		e.reaped.Add(1)
		e.m.reaped.Inc()
		e.m.trace.Emit("session_reaped", id)
	case OutcomePanicked:
		e.panicked.Add(1)
		e.m.panicked.Inc()
		e.m.trace.Emit("session_panicked", id)
	case OutcomeDegraded:
		e.degraded.Add(1)
		e.m.degraded.Inc()
		e.m.trace.Emit("session_degraded", id)
	default:
		e.m.trace.Emit("session_done", id)
	}
	ls.root.End()
	var bundleSeq uint64
	if ls.capture != nil {
		b := ls.capture.Bundle(class, outcome.String(), latency)
		e.opts.Flight.Offer(b)
		bundleSeq = b.Seq // 1-based when kept, 0 when the trigger dropped it
	}
	if !ls.start.IsZero() {
		// The exemplar ties this bucket's most recent session back to its
		// gesture trace and (when kept) its flight recording.
		e.m.sessionNS.ObserveExemplar(float64(latency.Nanoseconds()), ls.root.ID(), bundleSeq)
		e.m.sessionWinNS.Observe(float64(latency.Nanoseconds()))
	}
	if e.opts.OnResult != nil {
		e.opts.OnResult(Result{Session: id, Class: class, Outcome: outcome})
	}
	if outcome != OutcomePanicked {
		// A panicked session's state is suspect — let the GC have it. Any
		// other outcome left the session healthy: recycle it.
		ls.sess.Reset()
		ls.root, ls.capture = nil, nil
		sh.free = append(sh.free, ls)
	}
}
