package obs_test

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestNilSafety exercises every instrument and registry method through
// nil receivers: the disabled path must be a total no-op, never a panic.
func TestNilSafety(t *testing.T) {
	var c *obs.Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Errorf("nil counter Value = %d, want 0", c.Value())
	}

	var h *obs.Histogram
	h.Observe(1)
	obs.ObserveSince(h, obs.Start(h))
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("nil histogram Count/Sum = %d/%g, want 0/0", h.Count(), h.Sum())
	}
	if !obs.Start(h).IsZero() {
		t.Error("Start(nil) must return the zero Time (no clock read on the disabled path)")
	}

	var rg *obs.Ring
	rg.Emit("x", "")
	if rg.Cap() != 0 || rg.Events() != nil {
		t.Error("nil ring must have zero cap and nil events")
	}

	var reg *obs.Registry
	if reg.Counter("a") != nil || reg.Histogram("b", nil) != nil || reg.Ring("c", 8) != nil {
		t.Error("nil registry accessors must return nil instruments")
	}
	s := reg.Snapshot()
	if s.Schema != obs.SnapshotSchema || len(s.Counters)+len(s.Histograms)+len(s.Traces) != 0 {
		t.Errorf("nil registry snapshot = %+v, want empty with schema %d", s, obs.SnapshotSchema)
	}
}

// TestConcurrentCounterAndHistogram hammers one counter and one
// histogram from many goroutines under the race gate and checks the
// totals are exact: lock-free must not mean lossy.
func TestConcurrentCounterAndHistogram(t *testing.T) {
	reg := obs.New()
	c := reg.Counter("test.hits")
	h := reg.Histogram("test.lat", obs.LatencyBuckets())
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	wantSum := float64(workers*per) * float64(workers*per-1) / 2
	if math.Abs(h.Sum()-wantSum) > 1e-6*wantSum {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), wantSum)
	}
	snap := reg.Snapshot()
	hs := snap.Histograms[0]
	var bucketTotal int64
	for _, n := range hs.Counts {
		bucketTotal += n
	}
	if bucketTotal != workers*per {
		t.Errorf("bucket counts sum to %d, want %d", bucketTotal, workers*per)
	}
	if hs.Min != 0 || hs.Max != workers*per-1 {
		t.Errorf("min/max = %g/%g, want 0/%d", hs.Min, hs.Max, workers*per-1)
	}
}

// TestConcurrentRing emits from many goroutines and checks the retained
// tail is a dense, unique suffix of the sequence space.
func TestConcurrentRing(t *testing.T) {
	reg := obs.New()
	rg := reg.Ring("test.trace", 64)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rg.Emit("ev", "")
			}
		}()
	}
	wg.Wait()
	evs := rg.Events()
	if len(evs) != 64 {
		t.Fatalf("retained %d events, want 64", len(evs))
	}
	seen := map[uint64]bool{}
	for _, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
		if e.Seq >= workers*per {
			t.Fatalf("seq %d out of range", e.Seq)
		}
	}
}

// TestHistogramBuckets pins the bucket-assignment rule: value v lands in
// the first bucket whose upper bound is >= v, with a final overflow
// bucket.
func TestHistogramBuckets(t *testing.T) {
	reg := obs.New()
	h := reg.Histogram("b", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // must be ignored
	s := histSnap(t, reg, "b")
	want := []int64{2, 2, 2, 2} // (<=1)=0.5,1  (1,2]=1.5,2  (2,4]=3,4  (>4)=5,100
	if !reflect.DeepEqual(s.Counts, want) {
		t.Errorf("counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8 (NaN must be ignored)", s.Count)
	}
}

// TestSnapshotStructureDeterministic registers the same instruments in
// two registries in different orders, drives them with different values,
// and checks the snapshots' names, bucket boundaries, and field
// structure are byte-identical once values are zeroed — the property the
// metric contract (OBSERVABILITY.md) and gbench's versioned "metrics"
// key rely on.
func TestSnapshotStructureDeterministic(t *testing.T) {
	build := func(order []string, scale float64) obs.Snapshot {
		reg := obs.New()
		for _, name := range order {
			reg.Counter("c." + name).Add(int64(scale * 10))
		}
		for _, name := range order {
			reg.Histogram("h."+name, obs.LatencyBuckets()).Observe(scale)
		}
		reg.Ring("t.trace", 16).Emit("x", "y")
		return reg.Snapshot()
	}
	a := build([]string{"alpha", "beta", "gamma"}, 1)
	b := build([]string{"gamma", "alpha", "beta"}, 250000)

	strip := func(s obs.Snapshot) obs.Snapshot {
		for i := range s.Counters {
			s.Counters[i].Value = 0
		}
		for i := range s.Histograms {
			h := &s.Histograms[i]
			h.Count, h.Sum, h.Min, h.Max = 0, 0, 0, 0
			h.Counts = make([]int64, len(h.Counts))
		}
		for i := range s.Traces {
			s.Traces[i].Events = nil
			s.Traces[i].Emitted = 0
		}
		return s
	}
	aj, err := json.Marshal(strip(a))
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(strip(b))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("snapshot structure differs:\n%s\n%s", aj, bj)
	}
}

// TestRegistryReturnsSameInstrument checks registration is idempotent,
// including with differing bounds (first registration wins).
func TestRegistryReturnsSameInstrument(t *testing.T) {
	reg := obs.New()
	if reg.Counter("x") != reg.Counter("x") {
		t.Error("Counter not idempotent")
	}
	h1 := reg.Histogram("y", []float64{1, 2})
	h2 := reg.Histogram("y", []float64{5, 6, 7})
	if h1 != h2 {
		t.Error("Histogram not idempotent")
	}
	if rg1, rg2 := reg.Ring("z", 4), reg.Ring("z", 99); rg1 != rg2 {
		t.Error("Ring not idempotent")
	}
}

// TestQuantile sanity-checks the interpolated quantile estimates against
// a uniform-ish distribution.
func TestQuantile(t *testing.T) {
	reg := obs.New()
	h := reg.Histogram("q", []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	s := histSnap(t, reg, "q")
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 50, 10},
		{0.9, 90, 10},
		{0, 1, 0},
		{1, 100, 0},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%g) = %g, want %g±%g", tc.q, got, tc.want, tc.tol)
		}
	}
}

// TestWriteTextAndHandlers smoke-tests the three exposure surfaces: the
// text report, the JSON handler, and the text handler.
func TestWriteTextAndHandlers(t *testing.T) {
	reg := obs.New()
	reg.Counter("serve.demo").Add(7)
	reg.Histogram("lat.demo", obs.LatencyBuckets()).Observe(1234)
	reg.Ring("trace.demo", 8).Emit("swap", "gen-2")

	var buf bytes.Buffer
	if err := reg.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"serve.demo", "lat.demo", "trace.demo", "swap", "p99"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, buf.String())
		}
	}

	rw := httptest.NewRecorder()
	obs.Handler(reg).ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
	var snap obs.Snapshot
	if err := json.Unmarshal(rw.Body.Bytes(), &snap); err != nil {
		t.Fatalf("JSON handler output does not parse: %v", err)
	}
	if snap.Schema != obs.SnapshotSchema || len(snap.Counters) != 1 {
		t.Errorf("handler snapshot = %+v", snap)
	}

	rw = httptest.NewRecorder()
	obs.TextHandler(reg).ServeHTTP(rw, httptest.NewRequest("GET", "/metrics.txt", nil))
	if !strings.Contains(rw.Body.String(), "serve.demo") {
		t.Errorf("text handler output missing counter:\n%s", rw.Body.String())
	}
}

// TestObserveSince records a real duration and checks it lands.
func TestObserveSince(t *testing.T) {
	reg := obs.New()
	h := reg.Histogram("lat", obs.LatencyBuckets())
	start := obs.Start(h)
	if start.IsZero() {
		t.Fatal("Start(enabled) must read the clock")
	}
	obs.ObserveSince(h, start)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	// A zero start must not observe even on an enabled histogram.
	obs.ObserveSince(h, obs.Start(nil))
	if h.Count() != 1 {
		t.Error("ObserveSince with zero start must be a no-op")
	}
}

// histSnap pulls one named histogram's snapshot out of a registry.
func histSnap(t *testing.T, reg *obs.Registry, name string) obs.HistogramSnap {
	t.Helper()
	for _, h := range reg.Snapshot().Histograms {
		if h.Name == name {
			return h
		}
	}
	t.Fatalf("histogram %q not in snapshot", name)
	return obs.HistogramSnap{}
}
