// Command gscore runs the headless gesture-based score editor and renders
// the staff as ASCII. Notes are inserted with the figure-8 note gestures
// (quarter through sixty-fourth, each a stem plus flags), deleted with a
// scratch gesture, and positioned with snap-to-staff manipulation.
//
// Usage:
//
//	gscore [-w 600] [-h 200] [-shrink 4] [-script file] [-seed N]
//
// Script commands (one per line, # comments):
//
//	note <duration> <x> <step>          insert by gesture at (x, staff step)
//	drag <duration> <x> <step> <mx> <my>  insert, hold, drag to (mx,my)
//	scratch <x> <step>                  delete the note there by gesture
//	render                              print the staff
//	log                                 print the interaction log
//
// Without -script, a built-in demo runs.
package main

import "os"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
