package lint_test

import (
	"bytes"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestNopanic(t *testing.T) {
	const fixture = "fixture/nopanic"
	lint.NopanicProtected[fixture] = true
	defer delete(lint.NopanicProtected, fixture)
	linttest.Run(t, lint.Nopanic, "testdata/nopanic", fixture)
}

func TestNopanicUnprotectedPackage(t *testing.T) {
	// The same fixture under an unprotected path must produce no nopanic
	// diagnostics at all — which would make every `want` comment fail —
	// so load it directly. The fixture's //lint:ignore nopanic directive
	// then suppresses nothing, which the framework must itself report:
	// exactly one unuseddirective finding and nothing else.
	pkg, err := lint.LoadDir("testdata/nopanic", "fixture/unprotected")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, []*lint.Analyzer{lint.Nopanic})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "unuseddirective" {
		t.Fatalf("want exactly one unuseddirective finding in an unprotected package, got %v", diags)
	}
}

func TestFloateq(t *testing.T) {
	linttest.Run(t, lint.Floateq, "testdata/floateq", "fixture/floateq")
}

func TestNanGuard(t *testing.T) {
	linttest.Run(t, lint.NanGuard, "testdata/nanguard", "fixture/nanguard")
}

func TestMutexcopy(t *testing.T) {
	linttest.Run(t, lint.Mutexcopy, "testdata/mutexcopy", "fixture/mutexcopy")
}

func TestCtxarg(t *testing.T) {
	linttest.Run(t, lint.Ctxarg, "testdata/ctxarg", "fixture/ctxarg")
}

func TestSpanend(t *testing.T) {
	linttest.Run(t, lint.Spanend, "testdata/spanend", "fixture/spanend")
}

func TestErrcmp(t *testing.T) {
	linttest.Run(t, lint.Errcmp, "testdata/errcmp", "fixture/errcmp")
}

func TestExpdoc(t *testing.T) {
	const fixture = "fixture/expdoc"
	lint.ExpdocPackages[fixture] = true
	defer delete(lint.ExpdocPackages, fixture)
	linttest.Run(t, lint.Expdoc, "testdata/expdoc", fixture)
}

func TestExpdocUncheckedPackage(t *testing.T) {
	// The fixture loaded under a path outside ExpdocPackages must produce
	// no diagnostics.
	pkg, err := lint.LoadDir("testdata/expdoc", "fixture/unchecked")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, []*lint.Analyzer{lint.Expdoc})
	if err != nil {
		t.Fatal(err)
	}
	// As in TestNopanicUnprotectedPackage: the only surviving finding is
	// the fixture's now-stale //lint:ignore expdoc directive.
	if len(diags) != 1 || diags[0].Analyzer != "unuseddirective" {
		t.Fatalf("want exactly one unuseddirective finding in an unchecked package, got %v", diags)
	}
}

func TestLockbalance(t *testing.T) {
	linttest.Run(t, lint.Lockbalance, "testdata/lockbalance", "fixture/lockbalance")
}

func TestAtomicsnap(t *testing.T) {
	linttest.Run(t, lint.Atomicsnap, "testdata/atomicsnap", "fixture/atomicsnap")
}

func TestSendclosed(t *testing.T) {
	linttest.Run(t, lint.Sendclosed, "testdata/sendclosed", "fixture/sendclosed")
}

func TestHotalloc(t *testing.T) {
	linttest.RunModule(t, lint.Hotalloc, "testdata/hotalloc", "fixture/hotalloc")
}

func TestUnusedDirective(t *testing.T) {
	linttest.Run(t, lint.Floateq, "testdata/unuseddirective", "fixture/unuseddirective")
}

func TestDirectiveWithoutReason(t *testing.T) {
	// A reason-less directive cannot carry an inline want comment (the
	// comment would read as its reason), so assert the two findings
	// directly: the unsuppressed floateq diagnostic and the directive
	// report itself.
	pkg, err := lint.LoadDir("testdata/directivereason", "fixture/directivereason")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, []*lint.Analyzer{lint.Floateq})
	if err != nil {
		t.Fatal(err)
	}
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	if byAnalyzer["floateq"] != 1 || byAnalyzer["directive"] != 1 || len(diags) != 2 {
		t.Fatalf("want one unsuppressed floateq finding and one directive report, got %v", diags)
	}
}

func TestDiagnosticsJSONRoundTrip(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/floateq", "fixture/floateq")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, []*lint.Analyzer{lint.Floateq})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics to round-trip")
	}
	var buf bytes.Buffer
	if err := lint.EncodeDiagnostics(&buf, diags); err != nil {
		t.Fatal(err)
	}
	got, err := lint.DecodeDiagnostics(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(diags) {
		t.Fatalf("round-trip changed the count: sent %d, got %d", len(diags), len(got))
	}
	for i := range diags {
		want, have := diags[i], got[i]
		if want.Analyzer != have.Analyzer || want.Message != have.Message ||
			want.Pos.Filename != have.Pos.Filename || want.Pos.Line != have.Pos.Line ||
			want.Pos.Column != have.Pos.Column {
			t.Errorf("record %d mismatch:\nsent %v\ngot  %v", i, want, have)
		}
	}
}

// TestProtectedPackagesExist guards the nopanic configuration against
// refactors that move or rename a protected package: a protected path
// that no longer loads would silently disable the gate.
func TestProtectedPackagesExist(t *testing.T) {
	pkgs, err := lint.Load("../..", []string{"./internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, p := range pkgs {
		found[p.ImportPath] = true
	}
	for path := range lint.NopanicProtected {
		if !found[path] {
			t.Errorf("nopanic protects %s, but that package does not exist", path)
		}
	}
	for path := range lint.ExpdocPackages {
		if !found[path] {
			t.Errorf("expdoc checks %s, but that package does not exist", path)
		}
	}
	for path := range lint.HotallocColdPkgs {
		if !found[path] {
			t.Errorf("hotalloc exempts %s, but that package does not exist", path)
		}
	}
}
