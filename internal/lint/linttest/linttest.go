// Package linttest runs a lint.Analyzer over a testdata package and
// checks its diagnostics against expectations embedded in the source, the
// way golang.org/x/tools/go/analysis/analysistest does:
//
//	bad := compute() == 1.0 // want `float operands`
//
// A `// want` comment declares that the analyzer must report a diagnostic
// on that line whose message matches the backquoted regular expression.
// Lines without a want comment must produce no diagnostic. //lint:ignore
// directives are honoured exactly as in the glint driver — including the
// stale-directive (unuseddirective) report — so fixtures can test the
// allowlist mechanism itself. RunModule does the same for module-level
// analyzers, loading the fixture directory as a single-package module.
package linttest

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe extracts the backquoted pattern from a // want comment.
var wantRe = regexp.MustCompile("// want `([^`]*)`")

// Run loads the package in dir under the given import path, applies the
// analyzer, and reports any mismatch between produced diagnostics and the
// // want expectations as test errors.
func Run(t *testing.T, a *lint.Analyzer, dir, importPath string) {
	t.Helper()
	pkg, err := lint.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := lint.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkExpectations(t, pkg, diags)
}

// RunModule loads the package in dir as a one-package module whose module
// path is importPath, applies the module analyzer with glint's directive
// handling (suppression plus stale-directive reporting), and checks the
// // want expectations.
func RunModule(t *testing.T, a *lint.ModuleAnalyzer, dir, importPath string) {
	t.Helper()
	pkg, err := lint.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := lint.RunModuleAnalyzers(pkg.Fset, []*lint.Package{pkg}, importPath, []*lint.ModuleAnalyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	dirs := lint.NewDirectives()
	dirs.Collect(pkg.Fset, pkg.Files)
	diags = dirs.Apply(diags)
	diags = append(diags, dirs.Unused(map[string]bool{a.Name: true})...)
	lint.SortDiagnostics(diags)
	checkExpectations(t, pkg, diags)
}

// checkExpectations matches diagnostics against the fixture's // want
// comments, reporting unexpected and missing diagnostics alike.
func checkExpectations(t *testing.T, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	type expectation struct {
		pattern *regexp.Regexp
		line    int
		file    string
		matched bool
	}
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ms := wantRe.FindAllStringSubmatch(c.Text, -1)
				if ms == nil {
					if strings.Contains(c.Text, "// want") {
						t.Errorf("%s: malformed want comment %q (pattern must be backquoted)",
							pkg.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					wants = append(wants, &expectation{pattern: re, line: pos.Line, file: pos.Filename})
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}
