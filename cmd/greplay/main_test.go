package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/flight"
)

// TestRecordThenReplay is the end-to-end determinism proof: record the
// demo workload, then replay every bundle against the saved model and
// require a bit-identical match.
func TestRecordThenReplay(t *testing.T) {
	dir := t.TempDir()
	dump := filepath.Join(dir, "flight.json")
	model := filepath.Join(dir, "model.json")

	var out, errb bytes.Buffer
	if code := run([]string{"-record", "-seed", "3", "-o", dump, "-model", model}, &out, &errb); code != 0 {
		t.Fatalf("record exited %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "recorded") {
		t.Errorf("record output: %q", out.String())
	}

	// The dump must be a valid, non-empty bundle set.
	d, err := flight.ReadDumpFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Bundles) < 20 {
		t.Fatalf("recorded only %d bundles", len(d.Bundles))
	}

	out.Reset()
	if code := run([]string{"-bundle", dump, "-model", model, "-v"}, &out, &errb); code != 0 {
		t.Fatalf("replay exited %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "replayed bit-identically") {
		t.Errorf("replay output: %q", out.String())
	}
}

// TestReplayFlagsDivergence proves the nonzero-exit contract: corrupt
// one recorded margin and the replay must fail.
func TestReplayFlagsDivergence(t *testing.T) {
	dir := t.TempDir()
	dump := filepath.Join(dir, "flight.json")
	model := filepath.Join(dir, "model.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-record", "-seed", "4", "-o", dump, "-model", model}, &out, &errb); code != 0 {
		t.Fatalf("record exited %d: %s", code, errb.String())
	}
	raw, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a recorded decision kind ("add" -> "end" would break
	// validation; instead corrupt a class string, which replays cleanly
	// through validation but must diverge).
	corrupted := bytes.Replace(raw, []byte(`"fired": true`), []byte(`"fired": false`), 1)
	if bytes.Equal(corrupted, raw) {
		t.Fatal("no fired decision found to corrupt")
	}
	if err := os.WriteFile(dump, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code := run([]string{"-bundle", dump, "-model", model}, &out, &errb)
	if code == 0 {
		t.Fatalf("replay of corrupted dump exited 0: %s", out.String())
	}
	if !strings.Contains(out.String(), "DIVERGED") {
		t.Errorf("divergence not reported: %q", out.String())
	}
}

func TestEmptyDumpFails(t *testing.T) {
	dir := t.TempDir()
	dump := filepath.Join(dir, "empty.json")
	model := filepath.Join(dir, "model.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-record", "-seed", "5", "-o", filepath.Join(dir, "x.json"), "-model", model}, &out, &errb); code != 0 {
		t.Fatalf("record exited %d: %s", code, errb.String())
	}
	if err := os.WriteFile(dump, []byte(`{"schema":1,"trigger":"always","bundles":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-bundle", dump, "-model", model}, &out, &errb); code == 0 {
		t.Error("empty dump verified nothing but exited 0")
	}
}

func TestBadUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Errorf("missing -model exited %d, want 2", code)
	}
	if code := run([]string{"-model", "m.json"}, &out, &errb); code != 2 {
		t.Errorf("missing -bundle exited %d, want 2", code)
	}
}
