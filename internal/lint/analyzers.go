package lint

// All returns the full per-package analyzer suite in the order glint runs
// it.
func All() []*Analyzer {
	return []*Analyzer{
		Nopanic, Floateq, NanGuard, Mutexcopy, Ctxarg, Expdoc, Spanend, Errcmp,
		Lockbalance, Atomicsnap, Sendclosed,
	}
}

// ModuleAll returns the module-level analyzer suite (checks that walk
// call chains across package boundaries).
func ModuleAll() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{Hotalloc}
}
