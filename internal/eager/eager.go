// Package eager implements the paper's primary algorithmic contribution:
// constructing eager recognizers from example gestures (sections 4.3–4.7).
//
// An eager recognizer answers, point by point while a gesture is being
// drawn, the question "has enough of the gesture been seen so that it may
// be unambiguously classified?" — the function the paper calls D ("done").
// Once D says yes, the gesture collected so far is classified by the full
// classifier and the interaction moves to its manipulation phase.
//
// The training pipeline follows the paper exactly:
//
//  1. Train a full classifier C on the full example gestures (§4.2).
//  2. Run C on every subgesture of every example; a subgesture g[i] is
//     "complete" when C classifies it and every larger prefix of the same
//     gesture as C(g) (§4.4).
//  3. Partition the subgestures into 2C classes — C-c for complete
//     subgestures (c = the gesture's class) and I-c for incomplete ones
//     (c = what C mistakes the prefix for) — because a single two-class
//     ambiguous/unambiguous split is "wildly non-Gaussian" and a linear
//     discriminator cannot separate it (§4.4).
//  4. Move "accidentally complete" subgestures (complete but similar to
//     known-ambiguous prefixes) into the incomplete classes, using a
//     threshold of 50% of the minimum Mahalanobis distance between full
//     class means and incomplete set means, excluding distances below a
//     floor (§4.5).
//  5. Train the ambiguous/unambiguous classifier (AUC) on the 2C classes,
//     bias its incomplete classes so ambiguity is five times more likely,
//     and tweak complete-class constants until no training subgesture that
//     is incomplete is ever judged unambiguous (§4.6).
package eager

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/classifier"
	"repro/internal/gesture"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/recognizer"
)

// trainMetrics carries the training-pipeline instrumentation. Built from
// Options.Obs; with a nil registry every handle is nil and every
// recording call is a no-op, so the pipeline is identical with
// observability on or off.
type trainMetrics struct {
	runs        *obs.Counter   // completed Train calls
	subgestures *obs.Counter   // labelled subgestures, summed over runs
	totalNS     *obs.Histogram // whole-pipeline wall time
	fullNS      *obs.Histogram // step 1: full-classifier training
	labelNS     *obs.Histogram // step 2: subgesture labelling
	moveNS      *obs.Histogram // step 4: accidental-completeness move
	aucNS       *obs.Histogram // step 5a: AUC training
	tweakNS     *obs.Histogram // step 5b: tweak pass
	workerUtil  *obs.Histogram // per-worker busy fraction of the parallel passes
}

func newTrainMetrics(reg *obs.Registry) trainMetrics {
	return trainMetrics{
		runs:        reg.Counter("eager.train.runs"),
		subgestures: reg.Counter("eager.train.subgestures"),
		totalNS:     reg.Histogram("eager.train.total_ns", obs.LatencyBuckets()),
		fullNS:      reg.Histogram("eager.train.full_ns", obs.LatencyBuckets()),
		labelNS:     reg.Histogram("eager.train.label_ns", obs.LatencyBuckets()),
		moveNS:      reg.Histogram("eager.train.move_ns", obs.LatencyBuckets()),
		aucNS:       reg.Histogram("eager.train.auc_ns", obs.LatencyBuckets()),
		tweakNS:     reg.Histogram("eager.train.tweak_ns", obs.LatencyBuckets()),
		workerUtil:  reg.Histogram("eager.train.worker_util", obs.FractionBuckets()),
	}
}

// Set-name prefixes for the 2C-class partition. The class in each set's
// name refers to the full classifier's classification of the set's
// elements.
const (
	CompletePrefix   = "C-"
	IncompletePrefix = "I-"
)

// IsCompleteSet reports whether an AUC class name denotes a complete
// (unambiguous) set.
func IsCompleteSet(name string) bool { return strings.HasPrefix(name, CompletePrefix) }

// Options configures eager-recognizer training. Zero value is not useful;
// start from DefaultOptions.
type Options struct {
	// Train configures the underlying full classifier (features etc.).
	Train recognizer.TrainOptions
	// MinSubgesture is the smallest subgesture length (in points) that is
	// labelled and that the streaming recognizer will attempt to judge.
	// Below this the feature vector is too degenerate to be meaningful.
	MinSubgesture int
	// AmbiguityBias is the prior-odds factor by which the AUC is biased
	// toward ambiguous answers. The paper chooses 5 ("ambiguous gestures
	// are five times more likely than unambiguous gestures").
	AmbiguityBias float64
	// MoveThresholdFrac is the fraction of the minimum full-mean-to-
	// incomplete-mean distance used as the accidental-completeness
	// threshold. The paper uses 0.5.
	MoveThresholdFrac float64
	// TwoClassAUC, when set, trains the ablation baseline the paper argues
	// against: a single ambiguous/unambiguous pair of classes instead of
	// the 2C-class partition. Exposed for the A1 experiment.
	TwoClassAUC bool
	// SkipMoveAccidental disables step 4 (ablation hook).
	SkipMoveAccidental bool
	// SkipTweak disables the final constant-tweaking pass (ablation hook).
	SkipTweak bool
	// RequireAgreement is an extension beyond the paper: fire only when
	// the full classifier's prediction for the prefix agrees with the
	// AUC's chosen complete class. The paper passes the prefix straight to
	// the full classifier once D fires; at a sharp corner the AUC can
	// correctly judge the prefix unambiguous one point before the full
	// classifier catches up, which is one source of the paper's eager
	// errors. Agreement gating trades a sliver of eagerness for accuracy
	// (ablation A5 in DESIGN.md).
	RequireAgreement bool
	// Parallelism controls how many workers the training passes that
	// dominate the pipeline's cost — subgesture labelling (step 2) and the
	// tweak verification scan (step 5) — fan out across. 0 means auto
	// (runtime.GOMAXPROCS); 1 selects the original single-threaded
	// reference path, kept as the oracle the equivalence tests compare
	// against. Any value produces bit-identical classifiers: results are
	// merged in example-index order, never completion order.
	Parallelism int
	// Obs, when set, receives training-pipeline metrics (per-pass wall
	// times under eager.train.*, worker utilization of the parallel
	// passes) and instruments the returned recognizer (see
	// Recognizer.Instrument). Never serialized; a deserialized
	// recognizer must be re-instrumented explicitly. Instrumentation
	// does not perturb results: training stays bit-identical for any
	// Obs value.
	Obs *obs.Registry `json:"-"`
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{
		Train:             recognizer.DefaultTrainOptions(),
		MinSubgesture:     4,
		AmbiguityBias:     5,
		MoveThresholdFrac: 0.5,
	}
}

// Subgesture is one labelled training prefix.
type Subgesture struct {
	Example  int        // index of the parent example in the training set
	Len      int        // prefix length in points
	Class    string     // class of the parent (full) gesture
	Pred     string     // full classifier's classification of this prefix
	Complete bool       // per the paper's definition (step 2)
	Moved    bool       // true if moved to an incomplete set in step 4
	Features linalg.Vec // feature vector of the prefix
}

// SetName returns the 2C-partition class this subgesture trains.
func (s *Subgesture) SetName() string {
	if s.Complete && !s.Moved {
		return CompletePrefix + s.Class
	}
	return IncompletePrefix + s.Pred
}

// Report captures per-stage statistics from training, for tests, the
// experiment harness, and documentation.
type Report struct {
	Subgestures     int     // total labelled subgestures
	Complete        int     // complete before the accidental move
	Incomplete      int     // incomplete before the accidental move
	MovedAccidental int     // complete subgestures reclassified in step 4
	MoveThreshold   float64 // the Mahalanobis threshold used in step 4
	TweakAdjusts    int     // constant-term adjustments in the tweak pass
	AUCClasses      int     // classes in the trained AUC
	AUCRidge        float64 // regularization used by the AUC training
}

// Recognizer is a trained eager recognizer: the full classifier plus the
// ambiguous/unambiguous classifier implementing D.
//
// Concurrency contract: like its classifiers, a fully-trained Recognizer
// is immutable and safe for concurrent use — any number of goroutines
// may call Done, Classify, Run, and NewSession (each Session is then
// single-goroutine). Instrument is the one mutating exception and must
// be called before the recognizer is shared.
type Recognizer struct {
	Full *recognizer.Full       `json:"full"`
	AUC  *classifier.Classifier `json:"auc"`
	Opts Options                `json:"opts"`

	// m is the attached streaming instrumentation; zero (all no-ops)
	// until Instrument is called. Unexported, so it never serializes.
	m sessionMetrics
}

// Train builds an eager recognizer from a labelled gesture set.
func Train(set *gesture.Set, opts Options) (*Recognizer, *Report, error) {
	if opts.MinSubgesture < 2 {
		return nil, nil, errors.New("eager: MinSubgesture must be at least 2")
	}
	if opts.AmbiguityBias < 1 {
		return nil, nil, errors.New("eager: AmbiguityBias must be >= 1")
	}
	if opts.MoveThresholdFrac < 0 || opts.MoveThresholdFrac > 1 {
		return nil, nil, errors.New("eager: MoveThresholdFrac must be in [0,1]")
	}
	if opts.Parallelism < 0 {
		return nil, nil, errors.New("eager: Parallelism must be >= 0")
	}

	tm := newTrainMetrics(opts.Obs)
	tTotal := obs.Start(tm.totalNS)

	tPass := obs.Start(tm.fullNS)
	full, err := recognizer.Train(set, opts.Train)
	if err != nil {
		return nil, nil, err
	}
	obs.ObserveSince(tm.fullNS, tPass)
	report := &Report{}

	tPass = obs.Start(tm.labelNS)
	var subs []Subgesture
	if opts.Parallelism == 1 {
		subs, err = LabelSubgestures(set, full, opts.MinSubgesture)
	} else {
		subs, err = labelSubgesturesParallel(set, full, opts.MinSubgesture, opts.Parallelism, tm.workerUtil)
	}
	if err != nil {
		return nil, nil, err
	}
	obs.ObserveSince(tm.labelNS, tPass)
	report.Subgestures = len(subs)
	for i := range subs {
		if subs[i].Complete {
			report.Complete++
		} else {
			report.Incomplete++
		}
	}
	if report.Subgestures == 0 {
		return nil, nil, errors.New("eager: no subgestures long enough to label; gestures too short for MinSubgesture")
	}

	if !opts.SkipMoveAccidental {
		tPass = obs.Start(tm.moveNS)
		threshold := MoveThreshold(subs, full, opts.MoveThresholdFrac)
		report.MoveThreshold = threshold
		report.MovedAccidental = MoveAccidentals(subs, full, threshold)
		obs.ObserveSince(tm.moveNS, tPass)
	}

	tPass = obs.Start(tm.aucNS)
	auc, err := trainAUC(subs, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("eager: training AUC: %w", err)
	}
	obs.ObserveSince(tm.aucNS, tPass)
	report.AUCClasses = auc.NumClasses()
	report.AUCRidge = auc.Ridge

	// Bias toward ambiguity: add ln(bias) to every incomplete class's
	// constant term, making the classifier believe ambiguous prefixes are
	// `bias` times more likely a priori.
	if opts.AmbiguityBias > 1 {
		delta := math.Log(opts.AmbiguityBias)
		for i, name := range auc.Classes {
			if !IsCompleteSet(name) {
				auc.BiasClass(i, delta)
			}
		}
	}

	if !opts.SkipTweak {
		tPass = obs.Start(tm.tweakNS)
		if opts.Parallelism == 1 {
			report.TweakAdjusts, err = Tweak(auc, subs)
		} else {
			report.TweakAdjusts, err = tweakParallel(auc, subs, opts.Parallelism, tm.workerUtil)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("eager: tweak pass: %w", err)
		}
		obs.ObserveSince(tm.tweakNS, tPass)
	}

	tm.runs.Inc()
	tm.subgestures.Add(int64(report.Subgestures))
	obs.ObserveSince(tm.totalNS, tTotal)

	rec := &Recognizer{Full: full, AUC: auc, Opts: opts}
	rec.Instrument(opts.Obs)
	return rec, report, nil
}

// LabelSubgestures runs the full classifier over every prefix (of length at
// least minLen) of every training example and labels each as complete or
// incomplete. A prefix g[i] is complete iff C(g[j]) == C(g) for all
// j in [i, |g|] — computed with a single backward scan per gesture.
func LabelSubgestures(set *gesture.Set, full *recognizer.Full, minLen int) ([]Subgesture, error) {
	var out []Subgesture
	for ei, e := range set.Examples {
		n := e.Gesture.Len()
		if n < minLen {
			continue
		}
		preds := make([]string, 0, n-minLen+1)
		for i := minLen; i <= n; i++ {
			sub := e.Gesture.Sub(i)
			p, err := full.Classify(sub)
			if err != nil {
				return nil, fmt.Errorf("eager: example %d prefix %d: %w", ei, i, err)
			}
			preds = append(preds, p)
		}
		// Backward scan: complete iff this and all longer prefixes match.
		complete := make([]bool, len(preds))
		ok := true
		for k := len(preds) - 1; k >= 0; k-- {
			ok = ok && preds[k] == e.Class
			complete[k] = ok
		}
		for k, pred := range preds {
			i := minLen + k
			fv, err := full.Features(e.Gesture.Sub(i))
			if err != nil {
				return nil, fmt.Errorf("eager: example %d prefix %d: %w", ei, i, err)
			}
			out = append(out, Subgesture{
				Example:  ei,
				Len:      i,
				Class:    e.Class,
				Pred:     pred,
				Complete: complete[k],
				Features: fv,
			})
		}
	}
	return out, nil
}

// incompleteMeans returns the mean feature vector of each incomplete set
// (keyed by set name I-c) over the current labelling.
func incompleteMeans(subs []Subgesture) map[string]linalg.Vec {
	sums := make(map[string]linalg.Vec)
	counts := make(map[string]int)
	for i := range subs {
		s := &subs[i]
		if s.Complete && !s.Moved {
			continue
		}
		name := s.SetName()
		if sums[name] == nil {
			sums[name] = linalg.NewVec(len(s.Features))
		}
		sums[name].AddScaled(1, s.Features)
		counts[name]++
	}
	for name, v := range sums {
		v.Scale(1 / float64(counts[name]))
	}
	return sums
}

// MoveThreshold computes the accidental-completeness threshold of §4.5:
// frac (the paper: 50%) of the minimum Mahalanobis distance from any full
// gesture class mean to any incomplete set mean — excluding distances below
// a floor, "to avoid trouble when an incomplete subgesture looks like a
// full gesture of a different class". The floor is half the minimum
// distance between full class means, a scale the paper leaves unspecified.
func MoveThreshold(subs []Subgesture, full *recognizer.Full, frac float64) float64 {
	means := incompleteMeans(subs)
	if len(means) == 0 {
		return 0
	}
	// Exclusion floor: half the smallest inter-class mean distance.
	floor := math.Inf(1)
	nc := full.C.NumClasses()
	for i := 0; i < nc; i++ {
		for j := i + 1; j < nc; j++ {
			if d := full.C.MeanDistance(i, j); d < floor {
				floor = d
			}
		}
	}
	if math.IsInf(floor, 1) {
		floor = 0
	}
	floor *= 0.5

	min := math.Inf(1)
	for i := 0; i < nc; i++ {
		for _, m := range means {
			d := full.C.MahalanobisTo(full.C.Means[i], m)
			if d < floor {
				continue
			}
			if d < min {
				min = d
			}
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return frac * min
}

// MoveAccidentals implements §4.5: for each training gesture, scan its
// complete subgestures from largest to smallest; once one lies within
// threshold (Mahalanobis, under the full classifier's metric) of an
// incomplete set mean, it and every smaller complete subgesture of the
// same gesture are moved to their closest incomplete sets. Returns the
// number of subgestures moved.
func MoveAccidentals(subs []Subgesture, full *recognizer.Full, threshold float64) int {
	if threshold <= 0 {
		return 0
	}
	means := incompleteMeans(subs)
	if len(means) == 0 {
		return 0
	}
	// Group subgesture indices by example, in increasing prefix length
	// (LabelSubgestures emits them in that order).
	byExample := make(map[int][]int)
	for i := range subs {
		byExample[subs[i].Example] = append(byExample[subs[i].Example], i)
	}

	closestIncomplete := func(f linalg.Vec) (string, float64) {
		bestName, bestD := "", math.Inf(1)
		for name, m := range means {
			if d := full.C.MahalanobisTo(f, m); d < bestD {
				bestName, bestD = name, d
			}
		}
		return bestName, bestD
	}

	moved := 0
	for _, idxs := range byExample {
		// Largest to smallest.
		tripped := false
		for k := len(idxs) - 1; k >= 0; k-- {
			s := &subs[idxs[k]]
			if !s.Complete || s.Moved {
				continue
			}
			name, d := closestIncomplete(s.Features)
			if !tripped {
				if d >= threshold {
					continue
				}
				tripped = true
			} else if name == "" {
				continue
			}
			// Move to the closest incomplete set: record by rewriting the
			// prediction to that set's class and flagging.
			s.Moved = true
			s.Pred = strings.TrimPrefix(name, IncompletePrefix)
			moved++
		}
	}
	return moved
}

// trainAUC trains the ambiguous/unambiguous classifier over the partition.
func trainAUC(subs []Subgesture, opts Options) (*classifier.Classifier, error) {
	ex := make([]classifier.Example, 0, len(subs))
	for i := range subs {
		s := &subs[i]
		name := s.SetName()
		if opts.TwoClassAUC {
			// Ablation baseline: collapse to two classes.
			if IsCompleteSet(name) {
				name = CompletePrefix + "all"
			} else {
				name = IncompletePrefix + "all"
			}
		}
		ex = append(ex, classifier.Example{Class: name, Features: s.Features})
	}
	return classifier.Train(ex, classifier.Options{SortClasses: true})
}

// Tweak implements the final safety pass of §4.6: every incomplete training
// subgesture is run through the AUC; whenever one is classified into a
// complete set (a serious mistake — it would fire eager recognition on an
// ambiguous prefix), the offending complete class's constant term is
// lowered "by just enough plus a little more". Because adjustments only
// ever lower complete-class scores, a single ordered pass with an inner
// fixpoint per subgesture leaves no violations on the training data.
// Returns the number of adjustments made.
func Tweak(auc *classifier.Classifier, subs []Subgesture) (int, error) {
	adjusts := 0
	for i := range subs {
		s := &subs[i]
		if s.Complete && !s.Moved {
			continue // only incomplete subgestures matter here
		}
		for {
			scores, err := auc.Score(s.Features)
			if err != nil {
				return adjusts, err
			}
			bestC, bestI := bestCompleteIncomplete(auc, scores)
			if bestC < 0 || bestI < 0 || scores[bestC] <= scores[bestI] {
				break
			}
			gap := scores[bestC] - scores[bestI]
			auc.BiasClass(bestC, -(gap + 1e-4 + 0.01*gap))
			adjusts++
		}
	}
	return adjusts, nil
}
