package features

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/mathx"
)

// naive is an independent, straightforward implementation of the thirteen
// features, written directly from the definitions (with the same MinMove
// pre-filter applied up front). It exists only to cross-check the
// incremental extractor.
func naive(p geom.Path, minMove float64) linalg.Vec {
	// Apply the movement filter first.
	var pts geom.Path
	for _, tp := range p {
		if len(pts) == 0 {
			pts = append(pts, tp)
			continue
		}
		last := pts[len(pts)-1]
		if tp.Point().DistSq(last.Point()) > minMove*minMove {
			pts = append(pts, tp)
		}
	}
	f := make(linalg.Vec, NumFeatures)
	if len(pts) == 0 {
		return f
	}
	if len(pts) >= 3 {
		dx := pts[2].X - pts[0].X
		dy := pts[2].Y - pts[0].Y
		if d := math.Hypot(dx, dy); d > minMove {
			f[FInitCos] = dx / d
			f[FInitSin] = dy / d
		}
	}
	b := pts.Bounds()
	f[FBBoxLen] = b.Diagonal()
	if b.Width() != 0 || b.Height() != 0 {
		f[FBBoxAngle] = math.Atan2(b.Height(), b.Width())
	}
	last := pts[len(pts)-1]
	ex, ey := last.X-pts[0].X, last.Y-pts[0].Y
	d := math.Hypot(ex, ey)
	f[FEndDist] = d
	if d > 0 {
		f[FEndCos] = ex / d
		f[FEndSin] = ey / d
	}
	f[FPathLen] = pts.Length()
	for i := 2; i < len(pts); i++ {
		dx1 := pts[i].X - pts[i-1].X
		dy1 := pts[i].Y - pts[i-1].Y
		dx2 := pts[i-1].X - pts[i-2].X
		dy2 := pts[i-1].Y - pts[i-2].Y
		th := math.Atan2(dx1*dy2-dx2*dy1, dx1*dx2+dy1*dy2)
		f[FTotalAngle] += th
		f[FAbsAngle] += math.Abs(th)
		f[FSqrAngle] += th * th
	}
	for i := 1; i < len(pts); i++ {
		dt := pts[i].T - pts[i-1].T
		if dt <= 0 {
			continue
		}
		v := pts[i].Point().DistSq(pts[i-1].Point()) / (dt * dt)
		if v > f[FMaxSpeedSq] {
			f[FMaxSpeedSq] = v
		}
	}
	f[FDuration] = last.T - pts[0].T
	return f
}

// mustCompute and mustExtractor unwrap the error returns for tests whose
// inputs are finite by construction.
func mustCompute(t testing.TB, p geom.Path, opts Options) linalg.Vec {
	t.Helper()
	v, err := Compute(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func mustExtractor(t testing.TB, opts Options) *Extractor {
	t.Helper()
	e, err := NewExtractor(opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustVector(t testing.TB, e *Extractor) linalg.Vec {
	t.Helper()
	v, err := e.Vector()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func vecApproxEqual(a, b linalg.Vec, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !mathx.ApproxEqual(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

// randomPath builds a jittery multi-segment path from a seed.
func randomPath(seed int64, n int) geom.Path {
	rng := rand.New(rand.NewSource(seed))
	p := make(geom.Path, 0, n)
	x, y, t := 100.0, 100.0, 0.0
	for i := 0; i < n; i++ {
		x += rng.NormFloat64() * 8
		y += rng.NormFloat64() * 8
		t += 0.01 + rng.Float64()*0.02
		p = append(p, geom.TimedPoint{X: x, Y: y, T: t})
	}
	return p
}

func TestIncrementalMatchesNaive(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		p := randomPath(seed, int(n%64)+1)
		inc, err := Compute(p, DefaultOptions())
		if err != nil {
			return false
		}
		ref := naive(p, 3)
		return vecApproxEqual(inc, ref, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalMatchesNaiveAtEveryPrefix(t *testing.T) {
	p := randomPath(99, 40)
	e := mustExtractor(t, DefaultOptions())
	for i, tp := range p {
		e.Add(tp)
		got := mustVector(t, e)
		want := naive(p[:i+1], 3)
		if !vecApproxEqual(got, want, 1e-9) {
			t.Fatalf("prefix %d: incremental %v != naive %v", i+1, got, want)
		}
	}
}

func TestStraightLineFeatures(t *testing.T) {
	// Horizontal line left-to-right: 11 points, 10px apart, 10ms apart.
	p := make(geom.Path, 11)
	for i := range p {
		p[i] = geom.TimedPoint{X: float64(i * 10), Y: 0, T: float64(i) * 0.01}
	}
	f := mustCompute(t, p, DefaultOptions())
	if !mathx.ApproxEqual(f[FInitCos], 1, 1e-9) || !mathx.ApproxEqual(f[FInitSin], 0, 1e-9) {
		t.Errorf("initial angle = (%v, %v)", f[FInitCos], f[FInitSin])
	}
	if !mathx.ApproxEqual(f[FBBoxLen], 100, 1e-9) {
		t.Errorf("bbox len = %v", f[FBBoxLen])
	}
	if !mathx.ApproxEqual(f[FBBoxAngle], 0, 1e-9) {
		t.Errorf("bbox angle = %v", f[FBBoxAngle])
	}
	if !mathx.ApproxEqual(f[FEndDist], 100, 1e-9) {
		t.Errorf("end dist = %v", f[FEndDist])
	}
	if !mathx.ApproxEqual(f[FEndCos], 1, 1e-9) || !mathx.ApproxEqual(f[FEndSin], 0, 1e-9) {
		t.Errorf("end angle = (%v, %v)", f[FEndCos], f[FEndSin])
	}
	if !mathx.ApproxEqual(f[FPathLen], 100, 1e-9) {
		t.Errorf("path len = %v", f[FPathLen])
	}
	for _, idx := range []int{FTotalAngle, FAbsAngle, FSqrAngle} {
		if !mathx.ApproxEqual(f[idx], 0, 1e-9) {
			t.Errorf("straight line angle feature %s = %v", Names[idx], f[idx])
		}
	}
	// Speed: 10px / 10ms = 1000 px/s -> squared 1e6.
	if !mathx.ApproxEqual(f[FMaxSpeedSq], 1e6, 1e-9) {
		t.Errorf("max speed sq = %v", f[FMaxSpeedSq])
	}
	if !mathx.ApproxEqual(f[FDuration], 0.1, 1e-9) {
		t.Errorf("duration = %v", f[FDuration])
	}
}

func TestRightAngleTurn(t *testing.T) {
	// Right then down (screen coords): the single turn is +pi/2 in atan2
	// terms with y growing downward.
	p := geom.Path{
		{X: 0, Y: 0, T: 0},
		{X: 20, Y: 0, T: 0.02},
		{X: 40, Y: 0, T: 0.04},
		{X: 40, Y: 20, T: 0.06},
		{X: 40, Y: 40, T: 0.08},
	}
	f := mustCompute(t, p, DefaultOptions())
	if !mathx.ApproxEqual(math.Abs(f[FTotalAngle]), math.Pi/2, 1e-9) {
		t.Errorf("total angle = %v, want +-pi/2", f[FTotalAngle])
	}
	if !mathx.ApproxEqual(f[FAbsAngle], math.Pi/2, 1e-9) {
		t.Errorf("abs angle = %v", f[FAbsAngle])
	}
	if !mathx.ApproxEqual(f[FSqrAngle], math.Pi*math.Pi/4, 1e-9) {
		t.Errorf("sqr angle = %v", f[FSqrAngle])
	}
}

func TestTotalAngleSign(t *testing.T) {
	// A clockwise loop and its mirror must have opposite total angle.
	cw := geom.Path{
		geom.TPt(0, 0, 0), geom.TPt(20, 0, 0.02), geom.TPt(20, 20, 0.04), geom.TPt(0, 20, 0.06), geom.TPt(0, 0, 0.08),
	}
	ccw := geom.Path{
		geom.TPt(0, 0, 0), geom.TPt(0, 20, 0.02), geom.TPt(20, 20, 0.04), geom.TPt(20, 0, 0.06), geom.TPt(0, 0, 0.08),
	}
	f1 := mustCompute(t, cw, DefaultOptions())
	f2 := mustCompute(t, ccw, DefaultOptions())
	if f1[FTotalAngle]*f2[FTotalAngle] >= 0 {
		t.Errorf("loop orientations not distinguished: %v vs %v", f1[FTotalAngle], f2[FTotalAngle])
	}
	if !mathx.ApproxEqual(f1[FAbsAngle], f2[FAbsAngle], 1e-9) {
		t.Errorf("mirrored abs angle differ: %v vs %v", f1[FAbsAngle], f2[FAbsAngle])
	}
}

func TestTranslationInvariance(t *testing.T) {
	f := func(seed int64, dx, dy int16) bool {
		p := randomPath(seed, 30)
		q := p.Translate(float64(dx), float64(dy))
		fp, err1 := Compute(p, DefaultOptions())
		fq, err2 := Compute(q, DefaultOptions())
		if err1 != nil || err2 != nil {
			return false
		}
		return vecApproxEqual(fp, fq, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTimeShiftInvariance(t *testing.T) {
	f := func(seed int64, dt uint16) bool {
		p := randomPath(seed, 25)
		q := p.TimeShift(float64(dt))
		// Large shifts lose low-order timestamp bits, which squares into the
		// max-speed feature; allow for that cancellation.
		fp, err1 := Compute(p, DefaultOptions())
		fq, err2 := Compute(q, DefaultOptions())
		if err1 != nil || err2 != nil {
			return false
		}
		return vecApproxEqual(fp, fq, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMonotoneFeaturesNonDecreasingOverPrefixes(t *testing.T) {
	// Path length, absolute angle, squared angle, duration, bbox diagonal
	// and max speed can only grow as points are added.
	p := randomPath(5, 50)
	e := mustExtractor(t, DefaultOptions())
	prev := make(linalg.Vec, NumFeatures)
	for _, tp := range p {
		e.Add(tp)
		cur := mustVector(t, e)
		for _, idx := range []int{FBBoxLen, FPathLen, FAbsAngle, FSqrAngle, FMaxSpeedSq, FDuration} {
			if cur[idx] < prev[idx]-1e-9 {
				t.Fatalf("feature %s decreased: %v -> %v", Names[idx], prev[idx], cur[idx])
			}
		}
		prev = cur
	}
}

func TestDegenerateGestures(t *testing.T) {
	// Empty.
	f := mustCompute(t, nil, DefaultOptions())
	for i, v := range f {
		if v != 0 {
			t.Errorf("empty gesture feature %s = %v", Names[i], v)
		}
	}
	// Single point.
	f = mustCompute(t, geom.Path{{X: 5, Y: 5, T: 1}}, DefaultOptions())
	for i, v := range f {
		if v != 0 {
			t.Errorf("single point feature %s = %v", Names[i], v)
		}
	}
	// Two coincident points ("dot"): the second is filtered out.
	f = mustCompute(t, geom.Path{geom.TPt(5, 5, 0), geom.TPt(5.5, 5.2, 0.05)}, DefaultOptions())
	for i, v := range f {
		if v != 0 {
			t.Errorf("dot feature %s = %v", Names[i], v)
		}
	}
	// Duplicate timestamps must not produce Inf/NaN speeds.
	f = mustCompute(t, geom.Path{geom.TPt(0, 0, 0), geom.TPt(10, 0, 0), geom.TPt(20, 0, 0)}, DefaultOptions())
	for i, v := range f {
		if !mathx.Finite(v) {
			t.Errorf("duplicate-timestamp feature %s = %v", Names[i], v)
		}
	}
	if f[FMaxSpeedSq] != 0 {
		t.Errorf("speed with zero dt = %v, want 0", f[FMaxSpeedSq])
	}
}

func TestMinMoveFilter(t *testing.T) {
	// Points 1px apart are all filtered with the default 3px threshold.
	p := geom.Path{geom.TPt(0, 0, 0), geom.TPt(1, 0, 0.01), geom.TPt(2, 0, 0.02), geom.TPt(3.5, 0, 0.03)}
	e := mustExtractor(t, DefaultOptions())
	for _, tp := range p {
		e.Add(tp)
	}
	if e.RawCount() != 4 {
		t.Errorf("RawCount = %d", e.RawCount())
	}
	if e.AcceptedCount() != 2 { // start + the 3.5px point
		t.Errorf("AcceptedCount = %d", e.AcceptedCount())
	}
	// MinMove=0 accepts every strictly moving point.
	e2 := mustExtractor(t, Options{MinMove: 0})
	for _, tp := range p {
		e2.Add(tp)
	}
	if e2.AcceptedCount() != 4 {
		t.Errorf("MinMove=0 AcceptedCount = %d", e2.AcceptedCount())
	}
}

func TestFeatureSubset(t *testing.T) {
	opts := Options{MinMove: 3, Use: []int{FPathLen, FDuration}}
	p := randomPath(1, 20)
	f := mustCompute(t, p, opts)
	if len(f) != 2 {
		t.Fatalf("subset vector len = %d", len(f))
	}
	full := mustCompute(t, p, DefaultOptions())
	if f[0] != full[FPathLen] || f[1] != full[FDuration] {
		t.Errorf("subset values %v mismatch full %v/%v", f, full[FPathLen], full[FDuration])
	}
	if opts.Dim() != 2 || DefaultOptions().Dim() != NumFeatures {
		t.Error("Dim wrong")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{MinMove: -1}).Validate(); err == nil {
		t.Error("negative MinMove accepted")
	}
	if err := (Options{Use: []int{13}}).Validate(); err == nil {
		t.Error("out-of-range feature index accepted")
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
}

func TestNewExtractorErrorsOnInvalid(t *testing.T) {
	if _, err := NewExtractor(Options{MinMove: -5}); err == nil {
		t.Error("NewExtractor with invalid options did not error")
	}
}

func TestReset(t *testing.T) {
	e := mustExtractor(t, DefaultOptions())
	for _, tp := range randomPath(3, 10) {
		e.Add(tp)
	}
	e.Reset()
	if e.RawCount() != 0 || e.AcceptedCount() != 0 {
		t.Error("Reset did not clear counts")
	}
	v := mustVector(t, e)
	for _, x := range v {
		if x != 0 {
			t.Error("Reset did not clear features")
		}
	}
}

func TestVectorIsACopy(t *testing.T) {
	e := mustExtractor(t, DefaultOptions())
	for _, tp := range randomPath(3, 10) {
		e.Add(tp)
	}
	v1 := mustVector(t, e)
	v1[0] = 999
	v2 := mustVector(t, e)
	if v2[0] == 999 {
		t.Error("Vector aliases internal state")
	}
}

func TestInitialAngleUsesThirdAcceptedPoint(t *testing.T) {
	// First three accepted points turn a corner; the initial angle must be
	// start->third, not the overall direction.
	p := geom.Path{geom.TPt(0, 0, 0), geom.TPt(10, 0, 0.01), geom.TPt(10, 10, 0.02), geom.TPt(10, 50, 0.03)}
	f := mustCompute(t, p, DefaultOptions())
	want := math.Atan2(10, 10) // direction of (10,10) from origin
	got := math.Atan2(f[FInitSin], f[FInitCos])
	if !mathx.ApproxEqual(got, want, 1e-9) {
		t.Errorf("initial angle = %v, want %v", got, want)
	}
}

func TestVectorIntoMatchesVector(t *testing.T) {
	e := mustExtractor(t, DefaultOptions())
	buf := make(linalg.Vec, NumFeatures)
	for _, tp := range randomPath(21, 30) {
		e.Add(tp)
		want := mustVector(t, e)
		got, err := e.VectorInto(buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("VectorInto[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
	// Subset options too.
	sub := mustExtractor(t, Options{MinMove: 3, Use: []int{FPathLen, FDuration}})
	sbuf := make(linalg.Vec, 2)
	for _, tp := range randomPath(22, 20) {
		sub.Add(tp)
	}
	want := mustVector(t, sub)
	got, err := sub.VectorInto(sbuf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] || got[1] != want[1] {
		t.Fatal("subset VectorInto mismatch")
	}
}

func TestVectorIntoAllocationFree(t *testing.T) {
	e := mustExtractor(t, DefaultOptions())
	for _, tp := range randomPath(23, 20) {
		e.Add(tp)
	}
	buf := make(linalg.Vec, NumFeatures)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := e.VectorInto(buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("VectorInto allocates %v per run", allocs)
	}
}

func TestVectorIntoBadBufferError(t *testing.T) {
	e := mustExtractor(t, DefaultOptions())
	if _, err := e.VectorInto(make(linalg.Vec, 3)); err == nil {
		t.Error("short buffer did not error")
	}
}
