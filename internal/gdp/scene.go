package gdp

import (
	"repro/internal/geom"
	"repro/internal/raster"
)

// Scene is GDP's drawing: an ordered list of shapes (later shapes draw on
// top). It assigns shape IDs and supports the spatial queries the gesture
// semantics need — picking the object at a point and collecting the
// objects enclosed by a gesture.
type Scene struct {
	shapes []Shape
	nextID int
}

// NewScene returns an empty scene.
func NewScene() *Scene { return &Scene{nextID: 1} }

// Add inserts a shape on top of the scene and assigns it an ID.
func (s *Scene) Add(sh Shape) {
	sh.setID(s.nextID)
	s.nextID++
	s.shapes = append(s.shapes, sh)
}

// Remove deletes a shape (by identity); unknown shapes are ignored.
func (s *Scene) Remove(sh Shape) {
	for i, x := range s.shapes {
		if x == sh {
			s.shapes = append(s.shapes[:i], s.shapes[i+1:]...)
			return
		}
	}
}

// Shapes returns the shapes bottom-to-top (do not mutate the slice).
func (s *Scene) Shapes() []Shape { return s.shapes }

// Len returns the number of top-level shapes.
func (s *Scene) Len() int { return len(s.shapes) }

// Clear removes every shape.
func (s *Scene) Clear() { s.shapes = nil }

// TopAt returns the topmost shape touched at p (within tol), or nil.
func (s *Scene) TopAt(p geom.Point, tol float64) Shape {
	for i := len(s.shapes) - 1; i >= 0; i-- {
		if s.shapes[i].Touches(p, tol) {
			return s.shapes[i]
		}
	}
	return nil
}

// EnclosedBy returns the shapes whose bounds lie entirely inside r —
// the group gesture's "enclosed objects".
func (s *Scene) EnclosedBy(r geom.Rect) []Shape {
	var out []Shape
	for _, sh := range s.shapes {
		if r.ContainsRect(sh.Bounds()) {
			out = append(out, sh)
		}
	}
	return out
}

// EnclosedByPolygon returns the shapes entirely inside the (implicitly
// closed) polygon — the faithful lasso semantics for the group gesture: a
// shape is enclosed when all four corners of its bounding box fall inside
// the stroke's polygon. Degenerate polygons enclose nothing.
func (s *Scene) EnclosedByPolygon(poly []geom.Point) []Shape {
	if len(poly) < 3 {
		return nil
	}
	var out []Shape
	for _, sh := range s.shapes {
		b := sh.Bounds()
		corners := [4]geom.Point{
			{X: b.MinX, Y: b.MinY}, {X: b.MaxX, Y: b.MinY},
			{X: b.MaxX, Y: b.MaxY}, {X: b.MinX, Y: b.MaxY},
		}
		inside := true
		for _, c := range corners {
			if !geom.PolygonContains(poly, c) {
				inside = false
				break
			}
		}
		if inside {
			out = append(out, sh)
		}
	}
	return out
}

// ByID returns the shape with the given ID, or nil.
func (s *Scene) ByID(id int) Shape {
	for _, sh := range s.shapes {
		if sh.ID() == id {
			return sh
		}
	}
	return nil
}

// Draw paints every shape bottom-to-top.
func (s *Scene) Draw(c *raster.Canvas) {
	for _, sh := range s.shapes {
		sh.Draw(c)
	}
}

// Kinds returns the shape kinds bottom-to-top (handy in tests).
func (s *Scene) Kinds() []string {
	out := make([]string, len(s.shapes))
	for i, sh := range s.shapes {
		out[i] = sh.Kind()
	}
	return out
}
