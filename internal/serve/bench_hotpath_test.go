package serve

// The hot-path allocation contract, measured. DESIGN.md §6 documents the
// three-layer gate: the hotalloc analyzer flags AST-visible allocation
// sources in //glint:hotpath functions, cmd/glint -escape cross-checks
// the compiler's escape analysis against the same regions, and the
// benchmarks and test here prove the end result at runtime — zero
// allocations per point on the decide path. CI publishes the benchmark
// numbers as BENCH_hotpath.json.

import (
	"errors"
	"runtime"
	"testing"

	"repro/internal/multipath"
)

// BenchmarkDecidePerPoint measures one eager.Session.Add — the paper's
// per-mouse-point D + C-hat cost — on a warm session with observability
// disabled. The contract is 0 allocs/op.
func BenchmarkDecidePerPoint(b *testing.B) {
	rec := trainRec(b, 1)
	s, err := rec.NewSession()
	if err != nil {
		b.Fatal(err)
	}
	g, _ := sampleGesture(2, 0)
	// Warm the session once so any growth past the preallocated point
	// capacity happens before measurement; Reset retains the capacity.
	for _, p := range g {
		s.Add(p)
	}
	s.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	j := 0
	for i := 0; i < b.N; i++ {
		if j == len(g) {
			s.Reset()
			j = 0
		}
		s.Add(g[j])
		j++
	}
}

// BenchmarkSubmitSteadyState measures the full engine path — Submit,
// shard dispatch, session decide, completion, pool return — in steady
// state: one session ID cycling through whole gestures, so every gesture
// after the first revives its predecessor's pooled session. Allocations
// on the shard goroutine count too (AllocsPerOp is process-wide), so
// 0 allocs/op here means the entire serving loop is allocation-free per
// event.
func BenchmarkSubmitSteadyState(b *testing.B) {
	rec := trainRec(b, 1)
	e, err := New(rec, Options{Shards: 1, QueueDepth: 4096})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	g, _ := sampleGesture(2, 0)
	// One warm-up gesture allocates the session that the pool then
	// recycles for every measured gesture.
	playSession(b, e, "bench", g)
	if err := e.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	t, j := g[len(g)-1].T+1, 0
	for i := 0; i < b.N; i++ {
		ev := Event{Session: "bench", Finger: 0, T: t}
		switch {
		case j == 0:
			ev.Kind = multipath.FingerDown
			ev.X, ev.Y = g[0].X, g[0].Y
		case j < len(g):
			ev.Kind = multipath.FingerMove
			ev.X, ev.Y = g[j].X, g[j].Y
		default:
			ev.Kind = multipath.FingerUp
			ev.X, ev.Y = g[len(g)-1].X, g[len(g)-1].Y
		}
		for {
			err := e.Submit(ev)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				b.Fatal(err)
			}
			runtime.Gosched() // backpressure: let the shard drain
		}
		t++
		if j++; j > len(g) {
			j = 0
		}
	}
	b.StopTimer()
}

// TestDecidePathZeroAlloc is the allocation gate as a hard test: a warm
// eager session must perform zero allocations per Add. This is the
// runtime proof behind the //glint:hotpath annotations; the static
// analyzers keep the property reviewable, this test keeps it true.
func TestDecidePathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the contract is asserted by the non-race pass")
	}
	rec := trainRec(t, 1)
	s, err := rec.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	g, _ := sampleGesture(2, 0)
	for _, p := range g {
		s.Add(p)
	}
	s.Reset()
	j := 0
	allocs := testing.AllocsPerRun(400, func() {
		if j == len(g) {
			s.Reset()
			j = 0
		}
		s.Add(g[j])
		j++
	})
	if allocs != 0 {
		t.Fatalf("decide path allocated %.2f times per point; the //glint:hotpath contract requires 0", allocs)
	}
}

// TestSubmitPathZeroAlloc extends the gate to the intake half: Submit on
// a live session (validation, shard hash, timestamp high-water check,
// enqueue) must not allocate. The shard consumer is kept idle-free by
// draining through a real dispatch loop.
func TestSubmitPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the contract is asserted by the non-race pass")
	}
	rec := trainRec(t, 1)
	e, err := New(rec, Options{Shards: 1, QueueDepth: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	g, _ := sampleGesture(2, 0)
	playSession(t, e, "warm", g)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	// Measure Submit alone: a long stream of moves for one open session,
	// so no per-gesture setup or teardown runs inside the measured loop.
	if err := e.Submit(Event{Session: "warm", Finger: 0, Kind: multipath.FingerDown, X: g[0].X, Y: g[0].Y, T: g[len(g)-1].T + 1}); err != nil {
		t.Fatal(err)
	}
	ts := g[len(g)-1].T + 2
	allocs := testing.AllocsPerRun(400, func() {
		for {
			err := e.Submit(Event{Session: "warm", Finger: 0, Kind: multipath.FingerMove, X: g[0].X, Y: g[0].Y, T: ts})
			if err == nil {
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				t.Fatal(err)
			}
			runtime.Gosched()
		}
		ts++
	})
	if allocs != 0 {
		t.Fatalf("Submit allocated %.2f times per event; the //glint:hotpath contract requires 0", allocs)
	}
}
