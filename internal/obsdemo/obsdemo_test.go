package obsdemo

import (
	"encoding/json"
	"testing"
)

// TestRunPopulatesEveryMetricFamily checks the demo workload touches all
// four instrumented layers: serving, streaming recognition, training,
// and both classifiers.
func TestRunPopulatesEveryMetricFamily(t *testing.T) {
	reg, err := Run(1)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	for _, name := range []string{
		"serve.events.submitted", "serve.sessions.opened", "serve.sessions.completed",
		"serve.sessions.drained", "serve.swaps", "serve.swaps_rejected",
		"eager.train.runs", "eager.fired.eager", "eager.session.resets",
		"eager.session.poisoned",
		"classifier.full.classifications", "classifier.auc.classifications",
	} {
		if counters[name] == 0 {
			t.Errorf("counter %s = 0 after the demo workload", name)
		}
	}

	hists := map[string]int64{}
	for _, h := range snap.Histograms {
		hists[h.Name] = h.Count
	}
	for _, name := range []string{
		"serve.queue.depth", "serve.queue.wait_ns", "serve.session.latency_ns",
		"eager.decide_ns", "eager.commit_frac", "eager.train.total_ns",
		"eager.train.worker_util",
		"classifier.full.score_ns", "classifier.auc.score_ns",
	} {
		if hists[name] == 0 {
			t.Errorf("histogram %s recorded nothing", name)
		}
	}

	if len(snap.Traces) != 1 || snap.Traces[0].Name != "serve.trace" || snap.Traces[0].Emitted == 0 {
		t.Errorf("expected a populated serve.trace ring, got %+v", snap.Traces)
	}
}

// TestRunDeterministicStructure runs the demo twice with one seed and
// checks the snapshots agree on everything the contract pins down:
// metric names, bucket boundaries, and every count-valued metric.
// (Latency histogram sums differ run over run, so strip them; so do
// serve.events.rejected and serve.submitter.retries, which count
// timing-dependent backpressure that the Submitter absorbed.)
func TestRunDeterministicStructure(t *testing.T) {
	nondeterministic := map[string]bool{
		"serve.events.rejected":   true,
		"serve.submitter.retries": true,
	}
	strip := func(t *testing.T, seed int64) string {
		t.Helper()
		reg, err := Run(seed)
		if err != nil {
			t.Fatal(err)
		}
		snap := reg.Snapshot()
		counters := snap.Counters[:0:0]
		for _, c := range snap.Counters {
			if !nondeterministic[c.Name] {
				counters = append(counters, c)
			}
		}
		type hist struct {
			Name   string
			Count  int64
			Bounds []float64
		}
		doc := struct {
			Schema   int
			Counters any
			Hists    []hist
			Traces   []string
		}{Schema: snap.Schema, Counters: counters}
		for _, h := range snap.Histograms {
			doc.Hists = append(doc.Hists, hist{Name: h.Name, Count: h.Count, Bounds: h.Bounds})
		}
		for _, tr := range snap.Traces {
			doc.Traces = append(doc.Traces, tr.Name)
		}
		b, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b := strip(t, 42), strip(t, 42)
	if a != b {
		t.Errorf("same-seed demo runs disagree on structure/counts:\n%s\n%s", a, b)
	}
}
