package script

import (
	"errors"
	"strings"
	"testing"
)

func TestParseLiterals(t *testing.T) {
	for src, want := range map[string]float64{
		"42":     42,
		"-3.5":   -3.5,
		"0":      0,
		"1.25":   1.25,
		"-0.5":   -0.5,
		".25":    0.25,
		"1e+06":  1e6,
		"2.5e-3": 0.0025,
		"1E2":    100,
	} {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		v, err := p.Eval(NewEnv())
		if err != nil {
			t.Fatalf("Eval(%q): %v", src, err)
		}
		if v != want {
			t.Errorf("Eval(%q) = %v, want %v", src, v, want)
		}
	}
}

func TestParseString(t *testing.T) {
	p := MustParse(`"hello \"world\""`)
	v, err := p.Eval(NewEnv())
	if err != nil {
		t.Fatal(err)
	}
	if v != `hello "world"` {
		t.Errorf("got %q", v)
	}
}

func TestNilProgram(t *testing.T) {
	for _, src := range []string{"", "  \n\t", ";;", "nil", "nil;"} {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		v, err := p.Eval(NewEnv())
		if err != nil {
			t.Fatalf("Eval(%q): %v", src, err)
		}
		if v != nil {
			t.Errorf("Eval(%q) = %v, want nil", src, v)
		}
	}
}

func TestVariablesAndAssignment(t *testing.T) {
	env := NewEnv()
	p := MustParse("x = 5; x")
	v, err := p.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5.0 {
		t.Errorf("got %v", v)
	}
	if got, _ := env.Var("x"); got != 5.0 {
		t.Errorf("env var x = %v", got)
	}
	if _, err := MustParse("undefined").Eval(NewEnv()); err == nil {
		t.Error("undefined variable did not error")
	}
}

func TestAttributes(t *testing.T) {
	env := NewEnv()
	env.SetAttr("startX", 12.0)
	v, err := MustParse("<startX>").Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if v != 12.0 {
		t.Errorf("got %v", v)
	}
	if _, err := MustParse("<missing>").Eval(env); err == nil {
		t.Error("missing attribute did not error")
	}
}

// calculator is a test object with unary and keyword methods.
func calculator() (*Dispatch, *float64) {
	total := new(float64)
	d := NewDispatch("calculator")
	d.Bind("reset", func(args []Value) (Value, error) {
		*total = 0
		return d, nil
	})
	d.Bind("add:", func(args []Value) (Value, error) {
		if err := Arity("add:", args, 1); err != nil {
			return nil, err
		}
		n, err := Num(args[0])
		if err != nil {
			return nil, err
		}
		*total += n
		return d, nil
	})
	d.Bind("addX:y:", func(args []Value) (Value, error) {
		if err := Arity("addX:y:", args, 2); err != nil {
			return nil, err
		}
		x, err := Num(args[0])
		if err != nil {
			return nil, err
		}
		y, err := Num(args[1])
		if err != nil {
			return nil, err
		}
		*total += x + y
		return d, nil
	})
	d.Bind("total", func(args []Value) (Value, error) {
		return *total, nil
	})
	return d, total
}

func TestUnaryMessage(t *testing.T) {
	calc, total := calculator()
	env := NewEnv()
	env.SetVar("calc", calc)
	*total = 99
	v, err := MustParse("[calc total]").Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if v != 99.0 {
		t.Errorf("got %v", v)
	}
}

func TestKeywordMessage(t *testing.T) {
	calc, _ := calculator()
	env := NewEnv()
	env.SetVar("calc", calc)
	v, err := MustParse("[calc addX:3 y:4]; [calc total]").Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if v != 7.0 {
		t.Errorf("got %v", v)
	}
}

func TestNestedMessagesAndChaining(t *testing.T) {
	calc, _ := calculator()
	env := NewEnv()
	env.SetVar("calc", calc)
	// [[calc reset] add:5] — the paper's nested-send style.
	v, err := MustParse("[[[calc reset] add:5] total]").Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5.0 {
		t.Errorf("got %v", v)
	}
}

func TestPaperRectangleSemanticsShape(t *testing.T) {
	// Mirror the paper's GDP rectangle semantics structure with a stub
	// view object.
	var created *Dispatch
	var endpoints [2][2]float64
	rect := NewDispatch("rect")
	rect.Bind("setEndpoint:x:y:", func(args []Value) (Value, error) {
		if err := Arity("setEndpoint:x:y:", args, 3); err != nil {
			return nil, err
		}
		i, _ := Num(args[0])
		x, _ := Num(args[1])
		y, _ := Num(args[2])
		endpoints[int(i)] = [2]float64{x, y}
		return rect, nil
	})
	view := NewDispatch("view")
	view.Bind("createRect", func(args []Value) (Value, error) {
		created = rect
		return rect, nil
	})

	env := NewEnv()
	env.SetVar("view", view)
	env.SetAttr("startX", 10.0)
	env.SetAttr("startY", 20.0)

	recog := MustParse("recog = [[view createRect] setEndpoint:0 x:<startX> y:<startY>]")
	if _, err := recog.Eval(env); err != nil {
		t.Fatal(err)
	}
	if created == nil {
		t.Fatal("createRect not sent")
	}
	if endpoints[0] != [2]float64{10, 20} {
		t.Fatalf("endpoint 0 = %v", endpoints[0])
	}

	env.SetAttr("currentX", 30.0)
	env.SetAttr("currentY", 40.0)
	manip := MustParse("[recog setEndpoint:1 x:<currentX> y:<currentY>]")
	if _, err := manip.Eval(env); err != nil {
		t.Fatal(err)
	}
	if endpoints[1] != [2]float64{30, 40} {
		t.Fatalf("endpoint 1 = %v", endpoints[1])
	}
}

func TestMessageToNilReturnsNil(t *testing.T) {
	v, err := MustParse("[nil anything]").Eval(NewEnv())
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Errorf("message to nil = %v", v)
	}
	// Nested: receiver expression evaluates to nil through a variable.
	env := NewEnv()
	env.SetVar("x", nil)
	if v, err := MustParse("[x foo:1 bar:2]").Eval(env); err != nil || v != nil {
		t.Errorf("message to nil var: v=%v err=%v", v, err)
	}
}

func TestUnknownSelector(t *testing.T) {
	calc, _ := calculator()
	env := NewEnv()
	env.SetVar("calc", calc)
	_, err := MustParse("[calc frobnicate]").Eval(env)
	var me *MessageError
	if !errors.As(err, &me) {
		t.Fatalf("want MessageError, got %v", err)
	}
	if me.Selector != "frobnicate" || me.Receiver != "calculator" {
		t.Errorf("error detail: %+v", me)
	}
}

func TestNonObjectReceiver(t *testing.T) {
	if _, err := MustParse("[5 foo]").Eval(NewEnv()); err == nil {
		t.Error("number receiver accepted")
	}
	env := NewEnv()
	env.SetVar("s", "str")
	if _, err := MustParse("[s foo]").Eval(env); err == nil {
		t.Error("string receiver accepted")
	}
}

func TestSyntaxErrors(t *testing.T) {
	for _, src := range []string{
		"[",
		"[view",
		"[view createRect",
		"[view foo:]",
		"[]",
		"<unclosed",
		`"unterminated`,
		"view createRect]",
		"= 5",
		"[view 5]",
		"x = ",
		"1 2",
		"@",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("Parse(%q) error is %T, want *SyntaxError", src, err)
			}
		}
	}
}

func TestComments(t *testing.T) {
	p := MustParse("// leading comment\nx = 3; // trailing\nx")
	v, err := p.Eval(NewEnv())
	if err != nil {
		t.Fatal(err)
	}
	if v != 3.0 {
		t.Errorf("got %v", v)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad input did not panic")
		}
	}()
	MustParse("[")
}

func TestDispatchSelectors(t *testing.T) {
	calc, _ := calculator()
	sels := calc.Selectors()
	want := []string{"add:", "addX:y:", "reset", "total"}
	if strings.Join(sels, ",") != strings.Join(want, ",") {
		t.Errorf("selectors = %v", sels)
	}
	// Zero-value Dispatch is usable after Bind.
	var d Dispatch
	d.Bind("ping", func(args []Value) (Value, error) { return "pong", nil })
	v, err := d.Send("ping", nil)
	if err != nil || v != "pong" {
		t.Errorf("zero-value dispatch: %v, %v", v, err)
	}
}

func TestCoercions(t *testing.T) {
	if n, err := Num(3.5); err != nil || n != 3.5 {
		t.Error("Num(float64)")
	}
	if n, err := Num(3); err != nil || n != 3.0 {
		t.Error("Num(int)")
	}
	if _, err := Num("x"); err == nil {
		t.Error("Num(string) accepted")
	}
	if s, err := Str("x"); err != nil || s != "x" {
		t.Error("Str(string)")
	}
	if _, err := Str(1.0); err == nil {
		t.Error("Str(number) accepted")
	}
	if err := Arity("f", []Value{1}, 2); err == nil {
		t.Error("Arity mismatch accepted")
	}
}

func TestSourcePreserved(t *testing.T) {
	src := "x = 1; x"
	if MustParse(src).Source() != src {
		t.Error("Source not preserved")
	}
}
