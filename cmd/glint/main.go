// Command glint runs the repository's domain-specific static-analysis
// suite (internal/lint) over Go packages:
//
//	go run ./cmd/glint ./...
//
// It prints one line per finding and exits 1 when there are findings,
// 2 on a load or internal error, and 0 on a clean run. The analyzers and
// the //lint:ignore allowlist mechanism are documented in DESIGN.md
// ("Static analysis & invariants").
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("glint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("dir", ".", "directory to resolve package patterns from")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "glint: %v\n", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "glint: %s: %v\n", pkg.ImportPath, err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "glint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
