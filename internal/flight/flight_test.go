package flight_test

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/eager"
	"repro/internal/flight"
	"repro/internal/geom"
)

// mkBundle builds a minimal valid bundle via the Capture path.
func mkBundle(session string, points int, poisoned bool, class string, latency time.Duration) *flight.Bundle {
	c := flight.NewCapture(session)
	for i := 0; i < points; i++ {
		c.TapPoint(geom.TimedPoint{X: float64(i), Y: 0, T: float64(i)})
		d := eager.Decision{Index: i + 1, Kind: "add"}
		if poisoned && i == points-1 {
			d.Err = "poisoned"
		}
		c.TapDecision(d)
	}
	return c.Bundle(class, "completed", latency)
}

func TestTriggerString(t *testing.T) {
	for _, c := range []struct {
		tr   flight.Trigger
		want string
	}{
		{flight.TriggerAlways, "always"},
		{flight.TriggerOnError, "on-error"},
		{flight.TriggerOnPoison, "on-poison"},
		{flight.TriggerLatencyOver, "latency-over"},
	} {
		if got := c.tr.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int(c.tr), got, c.want)
		}
		back, err := flight.ParseTrigger(c.want)
		if err != nil || back != c.tr {
			t.Errorf("ParseTrigger(%q) = %v, %v", c.want, back, err)
		}
	}
	if _, err := flight.ParseTrigger("nope"); err == nil {
		t.Error("ParseTrigger accepted an unknown name")
	}
}

func TestTriggerPolicies(t *testing.T) {
	ok := mkBundle("ok", 3, false, "circle", time.Millisecond)
	rejected := mkBundle("rej", 3, false, "", time.Millisecond)
	poisoned := mkBundle("poi", 3, true, "", time.Millisecond)
	slow := mkBundle("slow", 3, false, "circle", 50*time.Millisecond)
	empty := flight.NewCapture("empty").Bundle("circle", "completed", time.Millisecond)

	cases := []struct {
		name string
		opts flight.Options
		want map[string]bool
	}{
		{"always", flight.Options{Trigger: flight.TriggerAlways},
			map[string]bool{"ok": true, "rej": true, "poi": true, "slow": true, "empty": false}},
		{"on-error", flight.Options{Trigger: flight.TriggerOnError},
			map[string]bool{"ok": false, "rej": true, "poi": true, "slow": false}},
		{"on-poison", flight.Options{Trigger: flight.TriggerOnPoison},
			map[string]bool{"ok": false, "rej": false, "poi": true, "slow": false}},
		{"latency-over", flight.Options{Trigger: flight.TriggerLatencyOver, LatencyThreshold: 10 * time.Millisecond},
			map[string]bool{"ok": false, "rej": false, "poi": false, "slow": true}},
	}
	bundles := map[string]*flight.Bundle{"ok": ok, "rej": rejected, "poi": poisoned, "slow": slow, "empty": empty}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := flight.NewRecorder(c.opts)
			for id, want := range c.want {
				// Offer mutates Bundle.Trigger; copy so cases stay independent.
				b := *bundles[id]
				if got := r.Offer(&b); got != want {
					t.Errorf("%s: Offer(%s) = %v, want %v", c.name, id, got, want)
				}
			}
		})
	}
}

func TestRecorderRingEvictsOldest(t *testing.T) {
	r := flight.NewRecorder(flight.Options{Capacity: 2})
	for _, id := range []string{"a", "b", "c"} {
		r.Offer(mkBundle(id, 1, false, "x", 0))
	}
	got := r.Bundles()
	if len(got) != 2 || got[0].Session != "b" || got[1].Session != "c" {
		t.Fatalf("ring = %v", got)
	}
	offered, captured := r.Stats()
	if offered != 3 || captured != 3 {
		t.Errorf("Stats = %d, %d, want 3, 3", offered, captured)
	}
}

func TestRecorderNilSafety(t *testing.T) {
	var r *flight.Recorder
	if r.Offer(mkBundle("x", 1, false, "", 0)) {
		t.Error("nil recorder kept a bundle")
	}
	if r.Bundles() != nil {
		t.Error("nil recorder returned bundles")
	}
	if o, c := r.Stats(); o != 0 || c != 0 {
		t.Error("nil recorder stats nonzero")
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	dump, err := flight.ReadDump(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("nil-recorder dump unreadable: %v", err)
	}
	if len(dump.Bundles) != 0 {
		t.Error("nil-recorder dump not empty")
	}
}

// TestRecorderConcurrentOffer drives Offer/Bundles/WriteJSON from many
// goroutines; the race detector referees.
func TestRecorderConcurrentOffer(t *testing.T) {
	r := flight.NewRecorder(flight.Options{Capacity: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Offer(mkBundle("s", 2, i%3 == 0, "c", time.Duration(i)))
				if i%10 == 0 {
					_ = r.Bundles()
					var sb strings.Builder
					_ = r.WriteJSON(&sb)
				}
			}
		}(g)
	}
	wg.Wait()
	if o, c := r.Stats(); o != 800 || c != 800 {
		t.Errorf("Stats = %d, %d, want 800, 800", o, c)
	}
}

func TestDumpRoundTrip(t *testing.T) {
	r := flight.NewRecorder(flight.Options{Capacity: 8, Trigger: flight.TriggerAlways})
	r.Offer(mkBundle("b", 3, false, "line", 2*time.Millisecond))
	r.Offer(mkBundle("a", 2, true, "", time.Millisecond))
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	dump, err := flight.ReadDump(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if dump.Schema != flight.BundleSchema || dump.Trigger != "always" {
		t.Errorf("dump header = %+v", dump)
	}
	if len(dump.Bundles) != 2 || dump.Bundles[0].Session != "a" || dump.Bundles[1].Session != "b" {
		t.Fatalf("bundles not sorted by session: %v", dump.Bundles)
	}
	b := dump.Bundles[0]
	if !b.Outcome.Poisoned || b.Outcome.LatencyNS != time.Millisecond.Nanoseconds() {
		t.Errorf("outcome = %+v", b.Outcome)
	}
	if b.Trigger != "always" {
		t.Errorf("bundle trigger = %q", b.Trigger)
	}

	// Schema and validation failures must be loud.
	if _, err := flight.ReadDump(strings.NewReader(`{"schema": 99, "bundles": []}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	bad := `{"schema": 1, "bundles": [{"schema":1,"session":"x","points":[{"x":0,"y":0,"t":0}],"decisions":[],"outcome":{}}]}`
	if _, err := flight.ReadDump(strings.NewReader(bad)); err == nil {
		t.Error("bundle with missing decisions accepted")
	}
}

func TestBundleValidate(t *testing.T) {
	good := mkBundle("g", 2, false, "x", 0)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*flight.Bundle)
	}{
		{"bad add index", func(b *flight.Bundle) { b.Decisions[0].Index = 7 }},
		{"unknown kind", func(b *flight.Bundle) { b.Decisions[1].Kind = "weird" }},
		{"end index mismatch", func(b *flight.Bundle) {
			b.Decisions = append(b.Decisions, flight.Decision{Index: 99, Kind: "end"})
		}},
		{"missing add", func(b *flight.Bundle) { b.Decisions = b.Decisions[:1] }},
	}
	for _, c := range cases {
		b := *good
		b.Decisions = append([]flight.Decision(nil), good.Decisions...)
		c.mutate(&b)
		if err := b.Validate(); err == nil {
			t.Errorf("%s: Validate passed", c.name)
		}
	}
}

// TestDumpRoundTripsNonFinitePoints: a poisoned capture carries the
// NaN/Inf point that poisoned it — the bundle the recorder most exists
// to keep — and the JSON layout must round-trip it bit-for-bit rather
// than fail to encode (encoding/json rejects non-finite numbers).
func TestDumpRoundTripsNonFinitePoints(t *testing.T) {
	c := flight.NewCapture("poisoned")
	c.TapPoint(geom.TimedPoint{X: 1, Y: 2, T: 0})
	c.TapDecision(eager.Decision{Index: 1, Kind: "add"})
	c.TapPoint(geom.TimedPoint{X: math.NaN(), Y: math.Inf(1), T: math.Inf(-1)})
	c.TapDecision(eager.Decision{Index: 2, Kind: "add", Margin: math.NaN(), Err: "poisoned"})
	r := flight.NewRecorder(flight.Options{Capacity: 4, Trigger: flight.TriggerAlways})
	r.Offer(c.Bundle("", "degraded", time.Millisecond))

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON on a non-finite capture: %v", err)
	}
	dump, err := flight.ReadDump(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Bundles) != 1 {
		t.Fatalf("got %d bundles, want 1", len(dump.Bundles))
	}
	p := dump.Bundles[0].Points[1]
	if !math.IsNaN(p.X) || !math.IsInf(p.Y, 1) || !math.IsInf(p.T, -1) {
		t.Errorf("non-finite point did not round-trip: %+v", p)
	}
	if got := dump.Bundles[0].Points[0]; got.X != 1 || got.Y != 2 || got.T != 0 {
		t.Errorf("finite point changed in round-trip: %+v", got)
	}
	if m := dump.Bundles[0].Decisions[1].Margin; !math.IsNaN(m) {
		t.Errorf("NaN margin round-tripped to %v", m)
	}
}
