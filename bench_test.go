package rubine

// The benchmark harness regenerates every figure and measurement in the
// paper's evaluation (section 5), one benchmark per artifact, plus the
// ablations indexed in DESIGN.md. Accuracy and eagerness are attached to
// the benchmark output via ReportMetric, so `go test -bench=. -benchmem`
// reproduces the numbers recorded in EXPERIMENTS.md alongside the runtime
// costs.

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/eager"
	"repro/internal/experiments"
	"repro/internal/features"
	"repro/internal/gdp"
	"repro/internal/geom"
	"repro/internal/grandma"
	"repro/internal/linalg"
	"repro/internal/multipath"
	"repro/internal/serve"
	"repro/internal/synth"
)

// reportEval attaches an experiment's headline numbers to the benchmark.
func reportEval(b *testing.B, r *experiments.EagerEval) {
	b.ReportMetric(100*r.FullAccuracy, "full-acc-%")
	b.ReportMetric(100*r.EagerAccuracy, "eager-acc-%")
	b.ReportMetric(100*r.Eagerness, "pts-seen-%")
	if r.OracleEagerness > 0 {
		b.ReportMetric(100*r.OracleEagerness, "oracle-min-%")
	}
}

// BenchmarkFig9EightDirections regenerates figure 9: the eight-direction
// set. Paper: full 99.2%, eager 97.0%, 67.9% of points seen, 59.4% minimum.
func BenchmarkFig9EightDirections(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var last *experiments.EagerEval
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	reportEval(b, last)
}

// BenchmarkFig10GDP regenerates figure 10: the GDP gesture set. Paper:
// full 99.7%, eager 93.5%, 60.5% of points seen.
func BenchmarkFig10GDP(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var last *experiments.EagerEval
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	reportEval(b, last)
}

// BenchmarkFig8NoteGestures regenerates figure 8: Buxton's note gestures,
// which "would never be eagerly recognized" — points-seen approaches 100%.
func BenchmarkFig8NoteGestures(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var last *experiments.EagerEval
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	reportEval(b, last)
}

// BenchmarkFig5to7UD regenerates the figures 5-7 pipeline on the U/D set,
// reporting the accidental-completeness move count alongside accuracy.
func BenchmarkFig5to7UD(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var last *experiments.EagerEval
	for i := 0; i < b.N; i++ {
		r, err := experiments.UD(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	reportEval(b, last)
	b.ReportMetric(float64(last.Report.MovedAccidental), "moved")
	b.ReportMetric(float64(last.Report.TweakAdjusts), "tweaks")
}

// gdpTestData builds the shared fixtures for the per-point timing
// benchmarks (the paper's "0.5 msec feature update, 0.27 msec per class
// AUC classification" measurements, E5).
func gdpTestData(b *testing.B) (*eager.Recognizer, []linalg.Vec, int) {
	b.Helper()
	classes := synth.GDPClasses()
	trainSet, _ := synth.NewGenerator(synth.DefaultParams(42)).Set("train", classes, 10)
	rec, _, err := eager.Train(trainSet, eager.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	testSet, _ := synth.NewGenerator(synth.DefaultParams(1042)).Set("test", classes, 5)
	var vecs []linalg.Vec
	points := 0
	for _, e := range testSet.Examples {
		ext, err := features.NewExtractor(rec.Full.Opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range e.Gesture.Points {
			ext.Add(p)
			v, err := ext.Vector()
			if err != nil {
				b.Fatal(err)
			}
			vecs = append(vecs, v)
		}
		points += e.Gesture.Len()
	}
	return rec, vecs, points
}

// BenchmarkFeatureUpdatePerPoint measures the per-mouse-point feature
// update (paper: 0.5 ms on a DEC MicroVAX II). One op = one point.
func BenchmarkFeatureUpdatePerPoint(b *testing.B) {
	rec, _, _ := gdpTestData(b)
	testSet, _ := synth.NewGenerator(synth.DefaultParams(7)).Set("t", synth.GDPClasses(), 5)
	ext, err := features.NewExtractor(rec.Full.Opts)
	if err != nil {
		b.Fatal(err)
	}
	pts := testSet.Examples[0].Gesture.Points
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(pts) == 0 {
			ext.Reset()
		}
		ext.Add(pts[i%len(pts)])
	}
}

// BenchmarkAUCClassifyPerPoint measures one AUC classification of a
// running feature vector (paper: 0.27 ms per class, ~6 ms for GDP's AUC).
func BenchmarkAUCClassifyPerPoint(b *testing.B) {
	rec, vecs, _ := gdpTestData(b)
	scores := make([]float64, rec.AUC.NumClasses())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.AUC.ClassifyInto(vecs[i%len(vecs)], scores)
	}
	b.ReportMetric(float64(rec.AUC.NumClasses()), "auc-classes")
}

// BenchmarkFullClassifyGesture measures classifying one whole gesture with
// the full classifier (features + discriminants).
func BenchmarkFullClassifyGesture(b *testing.B) {
	rec, _, _ := gdpTestData(b)
	testSet, _ := synth.NewGenerator(synth.DefaultParams(9)).Set("t", synth.GDPClasses(), 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := testSet.Examples[i%testSet.Len()]
		rec.Full.Classify(e.Gesture)
	}
}

// BenchmarkEagerSessionGesture measures streaming one whole gesture
// through an eager session (the interactive hot path).
func BenchmarkEagerSessionGesture(b *testing.B) {
	rec, _, _ := gdpTestData(b)
	testSet, _ := synth.NewGenerator(synth.DefaultParams(10)).Set("t", synth.GDPClasses(), 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := testSet.Examples[i%testSet.Len()]
		rec.Run(e.Gesture)
	}
}

// BenchmarkTrainFullGDP measures full-classifier training on the paper's
// standard GDP protocol (15 examples x 11 classes).
func BenchmarkTrainFullGDP(b *testing.B) {
	trainSet, _ := synth.NewGenerator(synth.DefaultParams(42)).Set("train", synth.GDPClasses(), 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainFull(trainSet, DefaultTrainOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainEagerGDP measures the complete eager-training pipeline
// (label, partition, move, AUC, bias, tweak) on the GDP protocol.
func BenchmarkTrainEagerGDP(b *testing.B) {
	trainSet, _ := synth.NewGenerator(synth.DefaultParams(42)).Set("train", synth.GDPClasses(), 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eager.Train(trainSet, eager.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainEagerGDPSerial pins the single-threaded reference
// training path (Parallelism: 1) so the parallel benchmark below has an
// explicit baseline in the same run.
func BenchmarkTrainEagerGDPSerial(b *testing.B) {
	trainSet, _ := synth.NewGenerator(synth.DefaultParams(42)).Set("train", synth.GDPClasses(), 15)
	opts := eager.DefaultOptions()
	opts.Parallelism = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eager.Train(trainSet, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainEagerGDPParallel measures the parallel training path
// (Parallelism: 0 = GOMAXPROCS workers). Besides fanning out across
// cores, this path does one incremental extractor pass per example
// instead of recomputing every prefix from scratch, so it is faster than
// the serial reference even at GOMAXPROCS=1 — while producing a
// bit-identical classifier (asserted by TestParallelTrainingBitIdentical).
func BenchmarkTrainEagerGDPParallel(b *testing.B) {
	trainSet, _ := synth.NewGenerator(synth.DefaultParams(42)).Set("train", synth.GDPClasses(), 15)
	opts := eager.DefaultOptions()
	opts.Parallelism = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eager.Train(trainSet, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineThroughput measures the serving engine end to end: many
// concurrent producers streaming complete interactions through a sharded
// serve.Engine sharing one recognizer snapshot. One op = one full
// session (down, moves, up, classification, result callback).
func BenchmarkEngineThroughput(b *testing.B) {
	set, _ := synth.NewGenerator(synth.DefaultParams(42)).Set("train", synth.UDClasses(), 12)
	rec, _, err := eager.Train(set, eager.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	var completed atomic.Int64
	e, err := serve.New(rec, serve.Options{OnResult: func(serve.Result) { completed.Add(1) }})
	if err != nil {
		b.Fatal(err)
	}
	gestures := make([]geom.Path, 8)
	gen := synth.NewGenerator(synth.DefaultParams(9))
	for i := range gestures {
		gestures[i] = gen.Sample(synth.UDClasses()[i%2]).G.Points
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		k := 0
		for pb.Next() {
			g := gestures[k%len(gestures)]
			id := fmt.Sprintf("bench-%p-%d", pb, k)
			k++
			for i, p := range g {
				kind := multipath.FingerMove
				if i == 0 {
					kind = multipath.FingerDown
				}
				ev := serve.Event{Session: id, Finger: 0, Kind: kind, X: p.X, Y: p.Y, T: p.T}
				for errors.Is(e.Submit(ev), serve.ErrQueueFull) {
					runtime.Gosched()
				}
			}
			last := g[len(g)-1]
			up := serve.Event{Session: id, Finger: 0, Kind: multipath.FingerUp, X: last.X, Y: last.Y, T: last.T + 0.01}
			for errors.Is(e.Submit(up), serve.ErrQueueFull) {
				runtime.Gosched()
			}
		}
	})
	b.StopTimer()
	if err := e.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(completed.Load()), "sessions")
}

// BenchmarkGDPInteraction measures a complete two-phase interaction
// through GRANDMA and GDP: synthesize a stroke, dispatch its events,
// recognize, run semantics, redraw (E6, figure 3).
func BenchmarkGDPInteraction(b *testing.B) {
	set, _ := synth.NewGenerator(synth.DefaultParams(1)).Set("train", synth.GDPClasses(), 10)
	rec, _, err := eager.Train(set, eager.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	app, err := gdp.New(gdp.Config{Recognizer: rec, Mode: grandma.ModeEager})
	if err != nil {
		b.Fatal(err)
	}
	params := synth.DefaultParams(2)
	params.CornerLoopProb = 0
	gen := synth.NewGenerator(params)
	var rectClass synth.Class
	for _, c := range synth.GDPClasses() {
		if c.Name == "rect" {
			rectClass = c
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := gen.SampleAt(rectClass, Pt(100, 100)).G.Points
		app.PlayGesture(p)
		if app.Scene.Len() > 64 {
			app.Scene.Clear()
		}
	}
}

// BenchmarkAblationTwoClassAUC regenerates the A1 ablation: two-class vs
// 2C-class AUC (section 4.4's claim).
func BenchmarkAblationTwoClassAUC(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var last *experiments.Ablation
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationTwoClassAUC(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(100*last.Rows[0].EagerAccuracy, "2C-acc-%")
	b.ReportMetric(100*last.Rows[1].EagerAccuracy, "2class-acc-%")
}

// BenchmarkAblationBiasSweep regenerates the A2 ablation: the ambiguity
// bias accuracy/eagerness trade-off around the paper's 5x.
func BenchmarkAblationBiasSweep(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var last *experiments.Ablation
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationBiasSweep(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(100*last.Rows[2].EagerAccuracy, "bias5-acc-%")
	b.ReportMetric(100*last.Rows[2].Eagerness, "bias5-seen-%")
}

// BenchmarkAblationThresholdSweep regenerates the A3 ablation: the
// accidental-completeness threshold around the paper's 50%.
func BenchmarkAblationThresholdSweep(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var last *experiments.Ablation
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationThresholdSweep(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(100*last.Rows[2].EagerAccuracy, "thr50-acc-%")
}

// BenchmarkTrainingSizeSweep regenerates the A4 sweep: recognition rate
// versus training examples per class.
func BenchmarkTrainingSizeSweep(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var last *experiments.Ablation
	for i := 0; i < b.N; i++ {
		r, err := experiments.TrainSizeSweep(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(100*last.Rows[2].FullAccuracy, "n15-full-acc-%")
}

// BenchmarkAblationAgreement regenerates the A5 ablation: the paper's fire
// rule versus agreement gating, on both evaluation workloads.
func BenchmarkAblationAgreement(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var last *experiments.Ablation
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationAgreement(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(100*last.Rows[0].EagerAccuracy, "fig9-paper-acc-%")
	b.ReportMetric(100*last.Rows[1].EagerAccuracy, "fig9-gated-acc-%")
}

// BenchmarkAblationFeatureDrop regenerates the A6 sweep: leave-one-out
// over the thirteen Rubine features.
func BenchmarkAblationFeatureDrop(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var last *experiments.Ablation
	for i := 0; i < b.N; i++ {
		r, err := experiments.FeatureDropSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(100*last.Rows[0].FullAccuracy, "all13-full-acc-%")
}

// BenchmarkTailEffect regenerates E7: the paper-conclusion claim that the
// trainable recognizer is much more successful on the tail-free prefix.
func BenchmarkTailEffect(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var last *experiments.TailEffect
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTailEffect(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(100*last.OnePhaseAccuracy, "one-phase-acc-%")
	b.ReportMetric(100*last.TwoPhaseAccuracy, "two-phase-acc-%")
}

// BenchmarkRejectionSweep regenerates E8: the probability/Mahalanobis
// rejection trade-off of section 4.2 on the GDP workload plus garbage.
func BenchmarkRejectionSweep(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var last *experiments.RejectionSweep
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunRejection(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(100*last.Rows[3].FalseAccept, "maha12-false-acc-%")
	b.ReportMetric(100*last.Rows[3].FalseReject, "maha12-false-rej-%")
}

// BenchmarkBaselineComparison regenerates A7: Rubine's statistical
// recognizer versus the template-matching baseline.
func BenchmarkBaselineComparison(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var last *experiments.BaselineComparison
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunBaseline(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(100*last.Rows[2].Accuracy, "gdp-rubine-acc-%")
	b.ReportMetric(100*last.Rows[3].Accuracy, "gdp-template-acc-%")
}

// BenchmarkCornerLoopSweep regenerates A8: the corner-loop error
// attribution from section 5.
func BenchmarkCornerLoopSweep(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var last *experiments.Ablation
	for i := 0; i < b.N; i++ {
		r, err := experiments.CornerLoopSweep(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(100*last.Rows[0].EagerAccuracy, "clean-eager-acc-%")
	b.ReportMetric(100*last.Rows[len(last.Rows)-1].EagerAccuracy, "loopy-eager-acc-%")
}
