package eager

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/classifier"
	"repro/internal/features"
	"repro/internal/gesture"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/recognizer"
)

// The parallel training path. Step 2 (classify every prefix of every
// example) and the verification scan of step 5 are the two passes whose
// cost scales with the number of subgestures; both are embarrassingly
// parallel across examples. Determinism is preserved by construction:
// workers pull work units (whole examples, or contiguous index chunks)
// from an atomic counter, write results into slots keyed by example/chunk
// index, and the merge concatenates slots in index order — completion
// order never influences the output, so the trained classifier is
// bit-identical to the serial oracle for every Parallelism value.
//
// The per-worker inner loop is also cheaper than the serial oracle's: one
// incremental feature extractor pass per example yields every prefix's
// feature vector in O(1) per point (the same property the paper exploits
// on the interactive path), where the oracle recomputes each prefix from
// scratch. Since features.Compute is defined as exactly equivalent to the
// incremental extractor, the emitted vectors are bit-identical.

// effectiveWorkers resolves a Parallelism value to a worker count, capped
// by the number of independent work units.
func effectiveWorkers(parallelism, units int) int {
	w := parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > units {
		w = units
	}
	if w < 1 {
		w = 1
	}
	return w
}

// labelWorker is the per-worker reusable state for subgesture labelling:
// one incremental extractor (reset per example), one feature buffer, and
// one ClassifyInto score buffer, so the steady-state loop allocates only
// the feature vectors it must retain.
type labelWorker struct {
	ext     *features.Extractor
	featBuf linalg.Vec
	scores  []float64
}

func newLabelWorker(full *recognizer.Full) (*labelWorker, error) {
	ext, err := features.NewExtractor(full.Opts)
	if err != nil {
		return nil, fmt.Errorf("eager: %w", err)
	}
	return &labelWorker{
		ext:     ext,
		featBuf: make(linalg.Vec, full.Opts.Dim()),
		scores:  make([]float64, full.C.NumClasses()),
	}, nil
}

// labelExample labels every prefix of one example with a single O(n)
// incremental-extractor pass (the serial oracle recomputes each prefix
// from scratch, O(n^2) feature work). The emitted subgestures — order,
// predictions, feature bits, and error text — match LabelSubgestures
// exactly.
func (w *labelWorker) labelExample(e gesture.Example, ei int, full *recognizer.Full, minLen int) ([]Subgesture, error) {
	n := e.Gesture.Len()
	if n < minLen {
		return nil, nil
	}
	w.ext.Reset()
	preds := make([]string, 0, n-minLen+1)
	feats := make([]linalg.Vec, 0, n-minLen+1)
	for i, p := range e.Gesture.Points {
		w.ext.Add(p)
		if i+1 < minLen {
			continue
		}
		fv, err := w.ext.VectorInto(w.featBuf)
		if err != nil {
			return nil, fmt.Errorf("eager: example %d prefix %d: %w", ei, i+1, err)
		}
		kept := append(linalg.Vec(nil), fv...)
		pred, _, err := full.C.ClassifyInto(kept, w.scores)
		if err != nil {
			return nil, fmt.Errorf("eager: example %d prefix %d: %w", ei, i+1, err)
		}
		preds = append(preds, pred)
		feats = append(feats, kept)
	}
	// Backward scan: complete iff this and all longer prefixes match.
	complete := make([]bool, len(preds))
	ok := true
	for k := len(preds) - 1; k >= 0; k-- {
		ok = ok && preds[k] == e.Class
		complete[k] = ok
	}
	out := make([]Subgesture, 0, len(preds))
	for k, pred := range preds {
		out = append(out, Subgesture{
			Example:  ei,
			Len:      minLen + k,
			Class:    e.Class,
			Pred:     pred,
			Complete: complete[k],
			Features: feats[k],
		})
	}
	return out, nil
}

// LabelSubgesturesParallel is the parallel form of LabelSubgestures: it
// fans examples across `workers` goroutines (0 = GOMAXPROCS) and merges
// the per-example subgesture runs in example-index order, so the output —
// including error selection, which always reports the lowest-indexed
// failing example — is bit-identical to the serial oracle.
func LabelSubgesturesParallel(set *gesture.Set, full *recognizer.Full, minLen, workers int) ([]Subgesture, error) {
	return labelSubgesturesParallel(set, full, minLen, workers, nil)
}

// labelSubgesturesParallel is LabelSubgesturesParallel plus optional
// worker-utilization instrumentation: when util is non-nil, each
// worker's busy fraction (time spent labelling / pass wall time) is
// observed once, so a snapshot shows whether the fan-out actually kept
// the workers fed. Instrumentation never changes results.
func labelSubgesturesParallel(set *gesture.Set, full *recognizer.Full, minLen, workers int, util *obs.Histogram) ([]Subgesture, error) {
	n := len(set.Examples)
	if n == 0 {
		return nil, nil
	}
	w := effectiveWorkers(workers, n)

	passStart := obs.Start(util)
	busy := make([]time.Duration, w)
	perExample := make([][]Subgesture, n)
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			sc, err := newLabelWorker(full)
			if err != nil {
				// Options were validated when the recognizer was built, so
				// this is unreachable with a well-formed recognizer; park
				// the error on the first unclaimed slot.
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = err
				}
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				var t0 time.Time
				if util != nil {
					t0 = time.Now()
				}
				perExample[i], errs[i] = sc.labelExample(set.Examples[i], i, full, minLen)
				if util != nil {
					busy[wi] += time.Since(t0)
				}
			}
		}(i)
	}
	wg.Wait()
	observeUtilization(util, busy, passStart)

	total := 0
	for i := range perExample {
		if errs[i] != nil {
			return nil, errs[i]
		}
		total += len(perExample[i])
	}
	out := make([]Subgesture, 0, total)
	for _, subs := range perExample {
		out = append(out, subs...)
	}
	return out, nil
}

// TweakParallel is the parallel form of Tweak. The scan that dominates
// the pass — scoring every incomplete training subgesture against the
// AUC — runs read-only across `workers` goroutines over contiguous index
// chunks; the adjustments themselves are then applied by the identical
// serial fixpoint, restricted to the violating candidates in index order.
//
// This is bit-identical to the serial pass because adjustments only ever
// lower complete-class constants: a subgesture that passes under the
// initial constants can never become violating, so the candidates found
// by the initial-state scan are a superset of every subgesture the serial
// pass adjusts at, and re-running the serial inner fixpoint over them in
// index order replays exactly the serial adjustment sequence.
func TweakParallel(auc *classifier.Classifier, subs []Subgesture, workers int) (int, error) {
	return tweakParallel(auc, subs, workers, nil)
}

// tweakParallel is TweakParallel plus the same optional per-worker
// utilization instrumentation as labelSubgesturesParallel.
func tweakParallel(auc *classifier.Classifier, subs []Subgesture, workers int, util *obs.Histogram) (int, error) {
	n := len(subs)
	if n == 0 {
		return 0, nil
	}
	w := effectiveWorkers(workers, n)
	chunk := (n + w - 1) / w
	nchunks := (n + chunk - 1) / chunk

	passStart := obs.Start(util)
	busy := make([]time.Duration, w)
	perChunk := make([][]int, nchunks)
	errs := make([]error, nchunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			scores := make([]float64, auc.NumClasses())
			for {
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				lo, hi := c*chunk, (c+1)*chunk
				if hi > n {
					hi = n
				}
				var t0 time.Time
				if util != nil {
					t0 = time.Now()
				}
				perChunk[c], errs[c] = scanTweakCandidates(auc, subs[lo:hi], lo, scores)
				if util != nil {
					busy[wi] += time.Since(t0)
				}
			}
		}(i)
	}
	wg.Wait()
	observeUtilization(util, busy, passStart)

	var candidates []int
	for c := range perChunk {
		if errs[c] != nil {
			return 0, errs[c]
		}
		candidates = append(candidates, perChunk[c]...)
	}

	// Serial fixpoint over the candidates, identical to Tweak's inner loop.
	adjusts := 0
	for _, i := range candidates {
		s := &subs[i]
		for {
			scores, err := auc.Score(s.Features)
			if err != nil {
				return adjusts, err
			}
			bestC, bestI := bestCompleteIncomplete(auc, scores)
			if bestC < 0 || bestI < 0 || scores[bestC] <= scores[bestI] {
				break
			}
			gap := scores[bestC] - scores[bestI]
			auc.BiasClass(bestC, -(gap + 1e-4 + 0.01*gap))
			adjusts++
		}
	}
	return adjusts, nil
}

// scanTweakCandidates scores the incomplete subgestures of one contiguous
// chunk (read-only) and returns the global indices of those the AUC
// misjudges as unambiguous under the current constants.
func scanTweakCandidates(auc *classifier.Classifier, chunk []Subgesture, base int, scores []float64) ([]int, error) {
	var out []int
	for k := range chunk {
		s := &chunk[k]
		if s.Complete && !s.Moved {
			continue
		}
		if _, err := auc.ScoreInto(s.Features, scores); err != nil {
			return nil, err
		}
		bestC, bestI := bestCompleteIncomplete(auc, scores)
		if bestC >= 0 && bestI >= 0 && scores[bestC] > scores[bestI] {
			out = append(out, base+k)
		}
	}
	return out, nil
}

// observeUtilization records each worker's busy fraction of the pass's
// wall time into util. No-op when util is nil (passStart is then zero).
// Fractions are clamped to 1: a worker's last claim can finish a hair
// after wg.Wait resumes the measuring goroutine.
func observeUtilization(util *obs.Histogram, busy []time.Duration, passStart time.Time) {
	if util == nil || passStart.IsZero() {
		return
	}
	wall := time.Since(passStart)
	if wall <= 0 {
		return
	}
	for _, b := range busy {
		frac := float64(b) / float64(wall)
		if frac > 1 {
			frac = 1
		}
		util.Observe(frac)
	}
}

// bestCompleteIncomplete returns the indices of the best-scoring complete
// and incomplete AUC classes (-1 when a side has no classes). Shared by
// the serial and parallel tweak passes so their comparisons cannot drift.
func bestCompleteIncomplete(auc *classifier.Classifier, scores []float64) (bestC, bestI int) {
	bestC, bestI = -1, -1
	for j, name := range auc.Classes {
		if IsCompleteSet(name) {
			if bestC < 0 || scores[j] > scores[bestC] {
				bestC = j
			}
		} else {
			if bestI < 0 || scores[j] > scores[bestI] {
				bestI = j
			}
		}
	}
	return bestC, bestI
}
