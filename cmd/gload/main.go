// Command gload replays synthetic gesture workloads against a wire-
// protocol ingest server (internal/ingest) over real sockets and
// reports end-to-end frame latency and NACK rates as JSON
// (BENCH_wire.json in CI).
//
// Each connection worker owns -sessions synthetic sessions, every
// session playing -gestures full interactions (down, moves, up) with a
// monotonically advancing per-session clock. The sessions interleave
// round-robin into frames of -batch events — the bursty heterogeneous
// point mix a real gesture population produces — and every frame is a
// synchronous round trip: write frame, read ACK, record the latency.
// NACKs count by code; a fatal response aborts the connection and the
// run fails.
//
// Usage:
//
//	gload -addr host:port [flags]      load an external ingest server
//	gload -self [flags]                boot an in-process engine +
//	                                   ingest server on loopback first
//	                                   (the CI smoke mode)
//
//	-conns N      concurrent connections (default 4)
//	-sessions N   sessions per connection (default 8)
//	-gestures N   gestures per session (default 4)
//	-batch N      events per frame (default 64, max wire.MaxBatch)
//	-seed N       workload seed (default 1); a fixed seed is a fixed
//	              byte stream per connection
//	-shards N     -self engine shards (0 = GOMAXPROCS)
//	-strict       exit nonzero on refusals: 3 on any fatal wire
//	              response, 1 on any per-event NACK
//	-reconnect N  redial budget per connection (default 0): a transport
//	              error or fatal response drops the in-flight frame
//	              (at-most-once delivery, counted in events_lost) and
//	              redials with exponential backoff
//	-backoff D    initial reconnect backoff (default 10ms), doubling
//	              per attempt, capped at 500ms
//	-chaos-seed N when nonzero, wrap every connection in a seeded
//	              netfault schedule (split writes, short reads,
//	              corruption, truncation, resets, jitter); each
//	              connection draws its own fault stream from
//	              chaos-seed + conn id. Pair with -reconnect
//	-o FILE       write the JSON report to FILE too (stdout always);
//	              -out is an alias
//
// The report includes events_per_sec; the acceptance floor for the CI
// smoke is 100k events/s (ISSUE 7). In -self mode the report also
// carries wire_e2e_ns — the server-side end-to-end latency (frame-header
// client send stamp through dispatch decision) the v2 wire format makes
// attributable. Under -chaos-seed the report's netfault section counts
// injected faults by kind (BENCH_netfault.json in CI).
//
// gload honors overload pushback: when an ACK carries a retry-after
// hint (the admission controller shedding), the worker sleeps the hint
// before its next frame instead of hammering a browned-out server.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/eager"
	"repro/internal/ingest"
	"repro/internal/netfault"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/synth"
	"repro/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// config is the parsed flag set.
type config struct {
	addr      string
	self      bool
	conns     int
	sessions  int
	gestures  int
	batch     int
	seed      int64
	shards    int
	strict    bool
	reconnect int
	backoff   time.Duration
	chaosSeed int64
	out       string
}

// ReportSchema versions the report document. 2 added schema,
// duration_ns, and the -self end-to-end latency section wire_e2e_ns.
// 3 renamed fatals to fatal_count and added reconnects, events_lost,
// nacks.overload, and the netfault injection counts.
const ReportSchema = 3

// report is the JSON document gload emits (BENCH_wire.json and, under
// -chaos-seed, BENCH_netfault.json in CI).
type report struct {
	Schema       int     `json:"schema"`
	Conns        int     `json:"conns"`
	SessionsPer  int     `json:"sessions_per_conn"`
	GesturesPer  int     `json:"gestures_per_session"`
	Batch        int     `json:"batch"`
	Seed         int64   `json:"seed"`
	Frames       int64   `json:"frames"`
	Events       int64   `json:"events"`
	DurationSec  float64 `json:"duration_sec"`
	DurationNS   int64   `json:"duration_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	Latency      latency `json:"frame_latency_ns"`
	// E2E is the server-side end-to-end distribution (client send stamp
	// in the wire frame header through dispatch decision), read from the
	// -self engine's wire.e2e_ns histogram. Absent against an external
	// -addr server, whose registry gload cannot see.
	E2E   *latency `json:"wire_e2e_ns,omitempty"`
	Nacks nacks    `json:"nacks"`
	// FatalCount counts fatal wire responses — connection-level
	// teardowns (corrupt frame, version mismatch, overload, timeout) —
	// as distinct from the per-event NACKs above. Under -strict, fatals
	// exit 3 where NACKs exit 1.
	FatalCount int64 `json:"fatal_count"`
	// Reconnects counts successful redials; EventsLost counts events
	// dropped with their in-flight frame (at-most-once delivery) or
	// abandoned when the redial budget ran out.
	Reconnects int64 `json:"reconnects"`
	EventsLost int64 `json:"events_lost"`
	// Netfault counts injected faults by kind across every connection's
	// schedule; present only under -chaos-seed.
	Netfault map[string]uint64 `json:"netfault,omitempty"`
}

// latency is the frame round-trip distribution in nanoseconds.
type latency struct {
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
}

// nacks counts refused events by wire NACK code.
type nacks struct {
	BadEvent  int64 `json:"bad_event"`
	QueueFull int64 `json:"queue_full"`
	Shed      int64 `json:"shed"`
	Closed    int64 `json:"closed"`
	Overload  int64 `json:"overload"`
}

func (n *nacks) total() int64 {
	return n.BadEvent + n.QueueFull + n.Shed + n.Closed + n.Overload
}

func (n *nacks) count(c wire.NackCode) {
	switch c {
	case wire.NackBadEvent:
		n.BadEvent++
	case wire.NackQueueFull:
		n.QueueFull++
	case wire.NackShed:
		n.Shed++
	case wire.NackClosed:
		n.Closed++
	case wire.NackOverload:
		n.Overload++
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("gload", flag.ContinueOnError)
	flags.SetOutput(stderr)
	cfg := config{}
	flags.StringVar(&cfg.addr, "addr", "", "ingest server address (host:port)")
	flags.BoolVar(&cfg.self, "self", false, "boot an in-process engine + ingest server on loopback")
	flags.IntVar(&cfg.conns, "conns", 4, "concurrent connections")
	flags.IntVar(&cfg.sessions, "sessions", 8, "sessions per connection")
	flags.IntVar(&cfg.gestures, "gestures", 4, "gestures per session")
	flags.IntVar(&cfg.batch, "batch", 64, "events per frame")
	flags.Int64Var(&cfg.seed, "seed", 1, "workload seed")
	flags.IntVar(&cfg.shards, "shards", 0, "-self engine shards (0 = GOMAXPROCS)")
	flags.BoolVar(&cfg.strict, "strict", false, "exit 3 on any fatal response, 1 on any NACK")
	flags.IntVar(&cfg.reconnect, "reconnect", 0, "redial budget per connection (0 = fail on first error)")
	flags.DurationVar(&cfg.backoff, "backoff", 10*time.Millisecond, "initial reconnect backoff, doubling per attempt")
	flags.Int64Var(&cfg.chaosSeed, "chaos-seed", 0, "nonzero: inject seeded connection faults (see internal/netfault)")
	flags.StringVar(&cfg.out, "o", "", "also write the JSON report to this file")
	flags.StringVar(&cfg.out, "out", "", "alias for -o")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if (cfg.addr == "") == !cfg.self {
		fmt.Fprintln(stderr, "gload: exactly one of -addr or -self is required")
		return 2
	}
	if cfg.batch < 1 || cfg.batch > wire.MaxBatch {
		fmt.Fprintf(stderr, "gload: -batch must be in 1..%d\n", wire.MaxBatch)
		return 2
	}
	if cfg.conns < 1 || cfg.sessions < 1 || cfg.gestures < 1 {
		fmt.Fprintln(stderr, "gload: -conns, -sessions, -gestures must be >= 1")
		return 2
	}
	if cfg.reconnect < 0 || cfg.backoff < 0 {
		fmt.Fprintln(stderr, "gload: -reconnect and -backoff must be >= 0")
		return 2
	}

	rep, err := load(cfg, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "gload: %v\n", err)
		return 1
	}
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "gload: %v\n", err)
		return 1
	}
	doc = append(doc, '\n')
	stdout.Write(doc)
	if cfg.out != "" {
		if err := os.WriteFile(cfg.out, doc, 0o644); err != nil {
			fmt.Fprintf(stderr, "gload: %v\n", err)
			return 1
		}
	}
	if cfg.strict {
		return strictCode(rep, stderr)
	}
	return 0
}

// strictCode maps the report's refusals to the -strict exit code:
// fatal wire responses (connection-level failures) exit 3, per-event
// NACKs exit 1, a clean run exits 0. Fatals dominate — a run with both
// is a connection-level failure first.
func strictCode(rep *report, stderr io.Writer) int {
	switch {
	case rep.FatalCount > 0:
		fmt.Fprintf(stderr, "gload: -strict: %d fatal responses (%d NACKs)\n", rep.FatalCount, rep.Nacks.total())
		return 3
	case rep.Nacks.total() > 0:
		fmt.Fprintf(stderr, "gload: -strict: %d NACKs\n", rep.Nacks.total())
		return 1
	}
	return 0
}

// load runs the workload, booting the -self server first when asked.
func load(cfg config, stderr io.Writer) (*report, error) {
	addr := cfg.addr
	var (
		reg *obs.Registry
		eng *serve.Engine
	)
	if cfg.self {
		rec, err := trainRec(cfg.seed)
		if err != nil {
			return nil, err
		}
		// Instrumented, so the report can surface the server-side
		// wire.e2e_ns distribution the client cannot measure alone.
		reg = obs.New()
		eng, err = serve.New(rec, serve.Options{Shards: cfg.shards, QueueDepth: 4096, Obs: reg})
		if err != nil {
			return nil, err
		}
		defer eng.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		// The unlimited-retry policy: backpressure stalls connections
		// instead of shedding, so a clean run has zero NACKs by
		// construction — what the CI smoke asserts with -strict. The
		// idle/write timeouts are generous self-defense, far above any
		// healthy load-run pause.
		s := ingest.Serve(ln, eng, ingest.Options{
			Obs:          reg,
			IdleTimeout:  30 * time.Second,
			WriteTimeout: 10 * time.Second,
		})
		defer s.Close()
		addr = s.Addr().String()
		fmt.Fprintf(stderr, "gload: self-serving on %s\n", addr)
	}

	workers := make([]*worker, cfg.conns)
	for i := range workers {
		workers[i] = &worker{cfg: cfg, id: i}
	}
	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.err = w.run(addr)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &report{
		Schema: ReportSchema,
		Conns:  cfg.conns, SessionsPer: cfg.sessions, GesturesPer: cfg.gestures,
		Batch: cfg.batch, Seed: cfg.seed,
		DurationSec: elapsed.Seconds(), DurationNS: elapsed.Nanoseconds(),
	}
	var rtts []int64
	for _, w := range workers {
		if w.err != nil {
			return nil, fmt.Errorf("conn %d: %w", w.id, w.err)
		}
		rep.Frames += w.frames
		rep.Events += w.events
		rep.FatalCount += w.fatalCount
		rep.Reconnects += w.reconnects
		rep.EventsLost += w.lost
		rep.Nacks.BadEvent += w.nacks.BadEvent
		rep.Nacks.QueueFull += w.nacks.QueueFull
		rep.Nacks.Shed += w.nacks.Shed
		rep.Nacks.Closed += w.nacks.Closed
		rep.Nacks.Overload += w.nacks.Overload
		rtts = append(rtts, w.rtts...)
		if w.sched != nil {
			if rep.Netfault == nil {
				rep.Netfault = map[string]uint64{}
			}
			for kind, n := range w.sched.Counts() {
				rep.Netfault[kind] += n
			}
		}
	}
	if rep.DurationSec > 0 {
		rep.EventsPerSec = float64(rep.Events) / rep.DurationSec
	}
	rep.Latency = summarize(rtts)
	if eng != nil {
		// Every ACKed event is enqueued but dispatch is asynchronous;
		// flush so the e2e histogram covers the whole run.
		if err := eng.Flush(); err != nil {
			return nil, err
		}
		h := reg.Histogram("wire.e2e_ns", obs.LatencyBuckets())
		rep.E2E = &latency{
			P50: int64(h.Quantile(0.50)),
			P90: int64(h.Quantile(0.90)),
			P99: int64(h.Quantile(0.99)),
			Max: int64(h.Quantile(1)),
		}
	}
	return rep, nil
}

// trainRec trains the -self recognizer on the UD classes.
func trainRec(seed int64) (*eager.Recognizer, error) {
	set, _ := synth.NewGenerator(synth.DefaultParams(seed)).Set("gload-train", synth.UDClasses(), 12)
	rec, _, err := eager.Train(set, eager.DefaultOptions())
	return rec, err
}

// summarize computes exact quantiles over the recorded round trips.
func summarize(rtts []int64) latency {
	if len(rtts) == 0 {
		return latency{}
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(rtts)-1))
		return rtts[i]
	}
	return latency{P50: at(0.50), P90: at(0.90), P99: at(0.99), Max: rtts[len(rtts)-1]}
}

// worker drives one connection's full workload.
type worker struct {
	cfg        config
	id         int
	frames     int64
	events     int64
	fatalCount int64
	reconnects int64
	lost       int64
	nacks      nacks
	rtts       []int64
	sched      *netfault.Schedule
	err        error
}

// chaosPlan is the hostile-but-survivable fault mix gload injects under
// -chaos-seed: enough corruption, truncation, and resets to exercise
// every teardown path, low enough rates that a modest -reconnect budget
// completes the run.
func chaosPlan(seed int64) netfault.Plan {
	return netfault.Plan{
		Seed: seed,
		WriteRates: map[netfault.Kind]float64{
			netfault.KindSplit:    0.15,
			netfault.KindCorrupt:  0.04,
			netfault.KindTruncate: 0.04,
			netfault.KindJitter:   0.08,
			netfault.KindReset:    0.03,
		},
		ReadRates: map[netfault.Kind]float64{
			netfault.KindShortRead: 0.12,
			netfault.KindJitter:    0.08,
			netfault.KindReset:     0.03,
		},
		StallFor: time.Millisecond,
		MaxDelay: 200 * time.Microsecond,
	}
}

// buildEvents generates the connection's event stream: per-session
// gesture sequences with monotonically advancing clocks, interleaved
// round-robin so consecutive events rarely share a session.
func (w *worker) buildEvents() []wire.Event {
	classes := synth.UDClasses()
	streams := make([][]wire.Event, w.cfg.sessions)
	for s := 0; s < w.cfg.sessions; s++ {
		gen := synth.NewGenerator(synth.DefaultParams(
			w.cfg.seed + int64(w.id)*1000 + int64(s)))
		id := fmt.Sprintf("c%d-s%d", w.id, s)
		clock := 0.0
		var stream []wire.Event
		for g := 0; g < w.cfg.gestures; g++ {
			pts := gen.Sample(classes[(w.id+s+g)%len(classes)]).G.Points
			for i, p := range pts {
				kind := wire.KindMove
				if i == 0 {
					kind = wire.KindDown
				}
				stream = append(stream, wire.Event{
					Session: id, Kind: kind, X: p.X, Y: p.Y,
					TMicros: wire.Micros(clock + p.T),
				})
			}
			last := pts[len(pts)-1]
			stream = append(stream, wire.Event{
				Session: id, Kind: wire.KindUp, X: last.X, Y: last.Y,
				TMicros: wire.Micros(clock + last.T + 0.01),
			})
			// The session's clock keeps running between gestures, so the
			// next gesture's timestamps never regress.
			clock += last.T + 0.1
		}
		streams[s] = stream
	}
	var out []wire.Event
	for remaining := true; remaining; {
		remaining = false
		for s := range streams {
			if len(streams[s]) > 0 {
				out = append(out, streams[s][0])
				streams[s] = streams[s][1:]
				remaining = remaining || len(streams[s]) > 0
			}
		}
	}
	return out
}

// run plays the worker's stream frame by frame, reconnecting within the
// -reconnect budget. Delivery is at-most-once: a frame in flight when
// the connection dies is never resent (its events count as lost), so a
// session can never be double-submitted after a lost ACK.
func (w *worker) run(addr string) error {
	events := w.buildEvents()
	if w.cfg.chaosSeed != 0 {
		var err error
		// Each connection draws its own deterministic fault stream.
		w.sched, err = netfault.NewSchedule(chaosPlan(w.cfg.chaosSeed + int64(w.id)))
		if err != nil {
			return err
		}
	}

	var (
		c       net.Conn
		br      *bufio.Reader
		enc     *wire.Encoder
		attempt int
	)
	connect := func() error {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			return err
		}
		c = raw
		if w.sched != nil {
			c = w.sched.Conn(raw, fmt.Sprintf("c%d-a%d", w.id, attempt))
		}
		br = bufio.NewReaderSize(c, 4<<10)
		enc = wire.NewEncoder() // fresh intern/delta state per connection
		return nil
	}
	// redial burns budget with exponential backoff; false means the
	// budget is spent.
	redial := func() bool {
		if c != nil {
			c.Close()
			c = nil
		}
		delay := w.cfg.backoff
		for attempt < w.cfg.reconnect {
			attempt++
			if delay > 0 {
				time.Sleep(delay)
				if delay *= 2; delay > 500*time.Millisecond {
					delay = 500 * time.Millisecond
				}
			}
			if connect() == nil {
				w.reconnects++
				return true
			}
		}
		return false
	}
	if err := connect(); err != nil {
		if !redial() {
			return err
		}
	}
	defer func() {
		if c != nil {
			c.Close()
		}
	}()

	var frame []byte
	var nackBuf []wire.Nack
	w.rtts = make([]int64, 0, (len(events)+w.cfg.batch-1)/w.cfg.batch)
	pos := 0
	for pos < len(events) {
		n := w.cfg.batch
		if n > len(events)-pos {
			n = len(events) - pos
		}
		var err error
		frame, err = enc.AppendFrame(frame[:0], events[pos:pos+n])
		if err != nil {
			return err
		}
		pos += n // at-most-once: the frame is spent whatever happens next
		start := time.Now()
		if _, err := c.Write(frame); err != nil {
			w.lost += int64(n)
			if !redial() {
				return fmt.Errorf("frame %d: %w", w.frames, err)
			}
			continue
		}
		resp, err := wire.ReadResponse(br, nackBuf[:0])
		if err != nil {
			w.lost += int64(n)
			if !redial() {
				return fmt.Errorf("frame %d: %w", w.frames, err)
			}
			continue
		}
		w.rtts = append(w.rtts, time.Since(start).Nanoseconds())
		if resp.Fatal {
			// A typed teardown, not a transport error: record it, and
			// with no redial budget left end the run cleanly — the
			// fatal is the report's (and -strict's) concern.
			w.fatalCount++
			w.lost += int64(n)
			if !redial() {
				w.lost += int64(len(events) - pos)
				return nil
			}
			continue
		}
		nackBuf = resp.Nacks
		for _, nk := range resp.Nacks {
			w.nacks.count(nk.Code)
		}
		w.frames++
		w.events += int64(n)
		if resp.RetryAfterMS > 0 {
			// The server is shedding: honor the pacing hint instead of
			// deepening the brownout.
			time.Sleep(time.Duration(resp.RetryAfterMS) * time.Millisecond)
		}
	}
	return nil
}
