package gdp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Scene persistence: shapes serialize as kind-tagged JSON objects so a
// drawing survives across sessions — the counterpart of DP's file format
// in the original (GDP was "based on (the non-gesture-based program) DP").

// shapeJSON is the kind-tagged wire form of one shape.
type shapeJSON struct {
	Kind      string       `json:"kind"`
	X1        float64      `json:"x1,omitempty"`
	Y1        float64      `json:"y1,omitempty"`
	X2        float64      `json:"x2,omitempty"`
	Y2        float64      `json:"y2,omitempty"`
	Angle     float64      `json:"angle,omitempty"`
	Thickness float64      `json:"thickness,omitempty"`
	CX        float64      `json:"cx,omitempty"`
	CY        float64      `json:"cy,omitempty"`
	RX        float64      `json:"rx,omitempty"`
	RY        float64      `json:"ry,omitempty"`
	X         float64      `json:"x,omitempty"`
	Y         float64      `json:"y,omitempty"`
	S         string       `json:"s,omitempty"`
	Members   []*shapeJSON `json:"members,omitempty"`
}

func toJSON(sh Shape) *shapeJSON {
	switch s := sh.(type) {
	case *Line:
		return &shapeJSON{Kind: "line", X1: s.X1, Y1: s.Y1, X2: s.X2, Y2: s.Y2, Thickness: s.Thickness}
	case *Rect:
		return &shapeJSON{Kind: "rect", X1: s.X1, Y1: s.Y1, X2: s.X2, Y2: s.Y2, Angle: s.Angle}
	case *Ellipse:
		return &shapeJSON{Kind: "ellipse", CX: s.CX, CY: s.CY, RX: s.RX, RY: s.RY}
	case *Text:
		return &shapeJSON{Kind: "text", X: s.X, Y: s.Y, S: s.S}
	case *Dot:
		return &shapeJSON{Kind: "dot", X: s.X, Y: s.Y}
	case *Group:
		out := &shapeJSON{Kind: "group"}
		for _, m := range s.Members {
			out.Members = append(out.Members, toJSON(m))
		}
		return out
	default:
		return nil
	}
}

func fromJSON(j *shapeJSON) (Shape, error) {
	switch j.Kind {
	case "line":
		l := NewLine(j.X1, j.Y1, j.X2, j.Y2)
		if j.Thickness > 0 {
			l.Thickness = j.Thickness
		}
		return l, nil
	case "rect":
		r := NewRect(j.X1, j.Y1, j.X2, j.Y2)
		r.Angle = j.Angle
		return r, nil
	case "ellipse":
		return NewEllipse(j.CX, j.CY, j.RX, j.RY), nil
	case "text":
		return NewText(j.X, j.Y, j.S), nil
	case "dot":
		return NewDot(j.X, j.Y), nil
	case "group":
		g := NewGroup(nil)
		for _, mj := range j.Members {
			m, err := fromJSON(mj)
			if err != nil {
				return nil, err
			}
			g.Add(m)
		}
		return g, nil
	default:
		return nil, fmt.Errorf("gdp: unknown shape kind %q", j.Kind)
	}
}

// WriteJSON serializes the scene to w.
func (s *Scene) WriteJSON(w io.Writer) error {
	shapes := make([]*shapeJSON, 0, len(s.shapes))
	for _, sh := range s.shapes {
		if j := toJSON(sh); j != nil {
			shapes = append(shapes, j)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(shapes); err != nil {
		return fmt.Errorf("gdp: encoding scene: %w", err)
	}
	return nil
}

// ReadScene parses a scene from r; shapes get fresh IDs.
func ReadScene(r io.Reader) (*Scene, error) {
	var shapes []*shapeJSON
	if err := json.NewDecoder(r).Decode(&shapes); err != nil {
		return nil, fmt.Errorf("gdp: decoding scene: %w", err)
	}
	scene := NewScene()
	for _, j := range shapes {
		sh, err := fromJSON(j)
		if err != nil {
			return nil, err
		}
		scene.Add(sh)
	}
	return scene, nil
}

// SaveFile writes the scene to the named file.
func (s *Scene) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("gdp: %w", err)
	}
	defer f.Close()
	if err := s.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadScene reads a scene from the named file.
func LoadScene(path string) (*Scene, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gdp: %w", err)
	}
	defer f.Close()
	return ReadScene(f)
}
