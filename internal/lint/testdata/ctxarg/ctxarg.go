// Package ctxarg is a fixture for the ctxarg analyzer.
package ctxarg

import "context"

// Last takes the context in the wrong position: flagged.
func Last(name string, ctx context.Context) { // want `context.Context should be the first parameter`
	_ = name
	_ = ctx
}

// First is the correct shape: clean.
func First(ctx context.Context, name string) {
	_ = ctx
	_ = name
}

// NoCtx takes no context at all: clean.
func NoCtx(name string) { _ = name }

// Holder stores a context in a field: flagged.
type Holder struct {
	ctx context.Context // want `stores a context.Context`
	n   int
}

// Clean has no context field: clean.
type Clean struct {
	n int
}
