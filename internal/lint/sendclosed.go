package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Sendclosed enforces channel-closing ownership: `close(ch)` panics if
// another goroutine is sending on ch, so only the sole sending owner may
// close. The check is per package and purely structural: it joins sends
// and closes on the same channel variable (a package-level var, local, or
// struct field — fields resolve to one types.Var across the package) and
// reports a close when some send on that channel lives in a different
// function, or in a function literal or go statement anywhere — either
// way the close races with a sender it does not own.
//
// The clean shape — a producer that sends and then closes in the same
// function body — passes. Engines that genuinely coordinate close against
// concurrent senders with a mutex-and-flag protocol must carry an audited
// //lint:ignore sendclosed directive explaining that protocol. _test.go
// files are exempt.
var Sendclosed = &Analyzer{
	Name: "sendclosed",
	Doc: "flag close(ch) when a send on ch exists in another function or " +
		"goroutine (close must be owned by the sole sender).",
	Run: runSendclosed,
}

// chanOp is one send or close site.
type chanOp struct {
	fn    *ast.FuncDecl // enclosing top-level function
	inLit bool          // inside a FuncLit or go statement
	node  ast.Node
}

func runSendclosed(pass *Pass) error {
	sends := map[types.Object][]chanOp{}
	closes := map[types.Object][]chanOp{}

	chanObj := func(e ast.Expr) types.Object {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.Info.ObjectOf(x)
		case *ast.SelectorExpr:
			return pass.Info.ObjectOf(x.Sel)
		}
		return nil
	}

	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Extents of nested literals and go statements: operations
			// inside them belong to other goroutines (or escaping closures).
			var litRanges []scopeRange
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncLit:
					litRanges = append(litRanges, scopeRange{pos: x.Pos(), end: x.End()})
				case *ast.GoStmt:
					litRanges = append(litRanges, scopeRange{pos: x.Pos(), end: x.End()})
				}
				return true
			})
			inLit := func(p token.Pos) bool {
				for _, r := range litRanges {
					if r.pos <= p && p < r.end {
						return true
					}
				}
				return false
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.SendStmt:
					if obj := chanObj(x.Chan); obj != nil {
						sends[obj] = append(sends[obj], chanOp{fn: fd, inLit: inLit(x.Pos()), node: x})
					}
				case *ast.CallExpr:
					id, ok := ast.Unparen(x.Fun).(*ast.Ident)
					if !ok || id.Name != "close" || len(x.Args) != 1 {
						return true
					}
					if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
						return true
					}
					if obj := chanObj(x.Args[0]); obj != nil {
						closes[obj] = append(closes[obj], chanOp{fn: fd, inLit: inLit(x.Pos()), node: x})
					}
				}
				return true
			})
		}
	}

	for obj, cls := range closes {
		for _, cl := range cls {
			for _, snd := range sends[obj] {
				if snd.fn != cl.fn || snd.inLit || cl.inLit {
					pass.Reportf(cl.node.Pos(),
						"close of %s races with a send in %s (%s); close must be owned by the sole sender",
						obj.Name(), snd.fn.Name.Name,
						pass.Fset.Position(snd.node.Pos()).String())
					break
				}
			}
		}
	}
	return nil
}
