package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalizeAngle(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-2 * math.Pi, 0},
		{3 * math.Pi, math.Pi},
		{math.Pi / 2, math.Pi / 2},
		{-math.Pi / 2, -math.Pi / 2},
		{5 * math.Pi / 2, math.Pi / 2},
	}
	for _, c := range cases {
		got := NormalizeAngle(c.in)
		if !ApproxEqual(got, c.want, 1e-12) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizeAngleNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := NormalizeAngle(v); got != 0 {
			t.Errorf("NormalizeAngle(%v) = %v, want 0", v, got)
		}
	}
}

func TestNormalizeAngleRange(t *testing.T) {
	f := func(a float64) bool {
		if !Finite(a) {
			return true
		}
		// Restrict to a sane magnitude; the loop-based normalization is
		// intended for accumulated turn angles, not astronomic values.
		a = math.Mod(a, 1000)
		got := NormalizeAngle(a)
		return got > -math.Pi-1e-12 && got <= math.Pi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeAnglePreservesModulo(t *testing.T) {
	f := func(a float64) bool {
		if !Finite(a) {
			return true
		}
		a = math.Mod(a, 100)
		got := NormalizeAngle(a)
		// a and got must differ by an integer multiple of 2*pi.
		k := (a - got) / (2 * math.Pi)
		return ApproxEqual(k, math.Round(k), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 10); got != 5 {
		t.Errorf("Clamp(5,0,10) = %v", got)
	}
	if got := Clamp(-1, 0, 10); got != 0 {
		t.Errorf("Clamp(-1,0,10) = %v", got)
	}
	if got := Clamp(11, 0, 10); got != 10 {
		t.Errorf("Clamp(11,0,10) = %v", got)
	}
}

func TestClampPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Clamp(0, 1, -1) did not panic")
		}
	}()
	Clamp(0, 1, -1)
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("nearby values should compare equal")
	}
	if ApproxEqual(1.0, 1.1, 1e-9) {
		t.Error("distant values should not compare equal")
	}
	// Relative tolerance: large magnitudes widen the window.
	if !ApproxEqual(1e12, 1e12+1, 1e-9) {
		t.Error("relative tolerance should absorb small absolute error at scale")
	}
}

func TestSafeDiv(t *testing.T) {
	if got := SafeDiv(10, 2, -1); got != 5 {
		t.Errorf("SafeDiv(10,2) = %v", got)
	}
	if got := SafeDiv(10, 0, -1); got != -1 {
		t.Errorf("SafeDiv(10,0) = %v, want fallback", got)
	}
	if got := SafeDiv(10, 1e-300, 7); got != 7 {
		t.Errorf("SafeDiv with tiny denominator = %v, want fallback", got)
	}
}

func TestSq(t *testing.T) {
	if got := Sq(-3); got != 9 {
		t.Errorf("Sq(-3) = %v", got)
	}
}

func TestFinite(t *testing.T) {
	if Finite(math.NaN()) || Finite(math.Inf(1)) || Finite(math.Inf(-1)) {
		t.Error("NaN/Inf reported finite")
	}
	if !Finite(0) || !Finite(-1e300) {
		t.Error("finite values reported non-finite")
	}
}

func TestMinMaxInt(t *testing.T) {
	if MinInt(2, 3) != 2 || MinInt(3, 2) != 2 {
		t.Error("MinInt broken")
	}
	if MaxInt(2, 3) != 3 || MaxInt(3, 2) != 3 {
		t.Error("MaxInt broken")
	}
}
