// Package nanguard is a fixture for the nanguard analyzer, exercised
// against the real linalg routines it guards in production.
package nanguard

import "repro/internal/linalg"

func dropped(m *linalg.Mat) {
	linalg.Invert(m) // want `result of repro/internal/linalg.Invert dropped`

	inv, _ := linalg.Invert(m) // want `error result of repro/internal/linalg.Invert assigned to _`
	_ = inv

	linalg.InvertRegularized(m) // want `result of repro/internal/linalg.InvertRegularized dropped`
}

func checked(m *linalg.Mat) (*linalg.Mat, error) {
	inv, err := linalg.Invert(m)
	if err != nil {
		return nil, err
	}
	// Blanking a non-error result is fine; only the error may not be dropped.
	reg, _, err := linalg.InvertRegularized(m)
	if err != nil {
		return nil, err
	}
	_ = reg
	return inv, nil
}

// Unguarded functions may drop whatever they like.
func unguarded(m *linalg.Mat) {
	m.MaxAbs()
	_ = linalg.Identity(2)
}
