package ingest

import (
	"bufio"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/eager"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/synth"
	"repro/internal/wire"
)

func trainRec(t testing.TB, seed int64) *eager.Recognizer {
	t.Helper()
	set, _ := synth.NewGenerator(synth.DefaultParams(seed)).Set("train", synth.UDClasses(), 12)
	rec, _, err := eager.Train(set, eager.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// testClient is one wire connection with its encoder and response
// reader, so tests read as frame in / response out.
type testClient struct {
	t    *testing.T
	c    net.Conn
	enc  *wire.Encoder
	br   *bufio.Reader
	resp []wire.Nack
}

func dialServer(t *testing.T, s *Server) *testClient {
	t.Helper()
	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &testClient{t: t, c: c, enc: wire.NewEncoder(), br: bufio.NewReader(c)}
}

// send writes one frame and reads its response.
func (tc *testClient) send(events ...wire.Event) wire.Response {
	tc.t.Helper()
	frame, err := tc.enc.AppendFrame(nil, events)
	if err != nil {
		tc.t.Fatal(err)
	}
	if _, err := tc.c.Write(frame); err != nil {
		tc.t.Fatal(err)
	}
	resp, err := wire.ReadResponse(tc.br, tc.resp[:0])
	if err != nil {
		tc.t.Fatalf("read response: %v", err)
	}
	tc.resp = resp.Nacks
	return resp
}

// gestureEvents converts one synthetic gesture into wire events.
func gestureEvents(seed int64, class int, session string) []wire.Event {
	gen := synth.NewGenerator(synth.DefaultParams(seed))
	g := gen.Sample(synth.UDClasses()[class]).G.Points
	events := make([]wire.Event, 0, len(g)+1)
	for i, p := range g {
		kind := wire.KindMove
		if i == 0 {
			kind = wire.KindDown
		}
		events = append(events, wire.Event{
			Session: session, Kind: kind, X: p.X, Y: p.Y, TMicros: wire.Micros(p.T),
		})
	}
	last := g[len(g)-1]
	return append(events, wire.Event{
		Session: session, Kind: wire.KindUp, X: last.X, Y: last.Y, TMicros: wire.Micros(last.T + 0.01),
	})
}

type sink struct {
	mu      sync.Mutex
	results []serve.Result
}

func (s *sink) add(r serve.Result) {
	s.mu.Lock()
	s.results = append(s.results, r)
	s.mu.Unlock()
}

func (s *sink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.results)
}

// startServer boots an engine + ingest server on loopback.
func startServer(t *testing.T, reg *obs.Registry, engOpts serve.Options, opts Options) (*serve.Engine, *Server) {
	t.Helper()
	e, err := serve.New(trainRec(t, 7), engOpts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	opts.Obs = reg
	s := Serve(ln, e, opts)
	t.Cleanup(func() {
		s.Close()
		e.Close()
	})
	return e, s
}

// TestEndToEndGesture: a full gesture over a real socket is accepted
// frame by frame, completes in the engine, and the wire.* counters
// balance.
func TestEndToEndGesture(t *testing.T) {
	reg := obs.New()
	snk := &sink{}
	_, s := startServer(t, reg, serve.Options{Shards: 2, OnResult: snk.add, Obs: reg}, Options{})
	tc := dialServer(t, s)

	events := gestureEvents(7, 0, "e2e")
	total := 0
	for len(events) > 0 {
		n := 8
		if n > len(events) {
			n = len(events)
		}
		resp := tc.send(events[:n]...)
		if resp.Fatal || len(resp.Nacks) != 0 {
			t.Fatalf("frame response = %+v, want clean ACK", resp)
		}
		total += n
		events = events[n:]
	}
	deadline := time.Now().Add(5 * time.Second)
	for snk.len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no result within deadline")
		}
		time.Sleep(time.Millisecond)
	}
	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"wire.events.decoded":     int64(total),
		"wire.frames.rejected":    0,
		"wire.nacks.bad_event":    0,
		"wire.connections.opened": 1,
	} {
		if got := snapCounter(t, snap, name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snapCounter(t, snap, "wire.frames.decoded"); got < 2 {
		t.Errorf("wire.frames.decoded = %d, want >= 2", got)
	}
}

func snapCounter(t *testing.T, snap obs.Snapshot, name string) int64 {
	t.Helper()
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("counter %s not in snapshot", name)
	return 0
}

// TestBadEventNacksWithIndex: an event failing Submit validation NACKs
// with NackBadEvent and the event's index; the rest of the frame is
// still accepted.
func TestBadEventNacksWithIndex(t *testing.T) {
	reg := obs.New()
	_, s := startServer(t, reg, serve.Options{Shards: 1}, Options{})
	tc := dialServer(t, s)

	resp := tc.send(
		wire.Event{Session: "ok", Kind: wire.KindDown, X: 1, Y: 1, TMicros: 1000},
		wire.Event{Session: "bad", Kind: wire.KindDown, X: math.NaN(), Y: 1, TMicros: 2000},
		wire.Event{Session: "ok", Kind: wire.KindMove, X: 2, Y: 2, TMicros: 3000},
	)
	if resp.Fatal {
		t.Fatalf("response = %+v, want ACK", resp)
	}
	if len(resp.Nacks) != 1 || resp.Nacks[0] != (wire.Nack{Index: 1, Code: wire.NackBadEvent}) {
		t.Fatalf("nacks = %+v, want [{1 bad_event}]", resp.Nacks)
	}
	// The connection survives a per-event NACK.
	if resp := tc.send(wire.Event{Session: "ok", Kind: wire.KindUp, X: 2, Y: 2, TMicros: 4000}); resp.Fatal || len(resp.Nacks) != 0 {
		t.Fatalf("follow-up = %+v, want clean ACK", resp)
	}
	if got := snapCounter(t, reg.Snapshot(), "wire.nacks.bad_event"); got != 1 {
		t.Errorf("wire.nacks.bad_event = %d, want 1", got)
	}
}

// TestShedNacksUnderBackpressure: a bounded retry policy against a
// wedged engine sheds, and the NACK carries NackShed (not the bare
// queue-full code — the client learns its event was retried first).
func TestShedNacksUnderBackpressure(t *testing.T) {
	reg := obs.New()
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	e, s := startServer(t, reg, serve.Options{
		Shards:     1,
		QueueDepth: 1,
		OnResult: func(serve.Result) {
			once.Do(func() { close(entered) })
			<-release
		},
	}, Options{Submitter: serve.SubmitterOptions{MaxAttempts: 2}})
	defer close(release)

	// Wedge the single shard (complete session blocks in OnResult), then
	// fill its one queue slot.
	wedge := func(ev serve.Event) {
		for {
			if err := e.Submit(ev); err == nil {
				return
			}
		}
	}
	wedge(serve.Event{Session: "wedge", Kind: 0, X: 1, Y: 1, T: 0})
	wedge(serve.Event{Session: "wedge", Kind: 2, X: 1, Y: 1, T: 0.01})
	<-entered
	wedge(serve.Event{Session: "filler", Kind: 0, X: 1, Y: 1, T: 0})

	tc := dialServer(t, s)
	resp := tc.send(wire.Event{Session: "shed-me", Kind: wire.KindDown, X: 1, Y: 1, TMicros: 0})
	if resp.Fatal || len(resp.Nacks) != 1 || resp.Nacks[0].Code != wire.NackShed {
		t.Fatalf("response = %+v, want one NackShed", resp)
	}
	if got := snapCounter(t, reg.Snapshot(), "wire.nacks.shed"); got != 1 {
		t.Errorf("wire.nacks.shed = %d, want 1", got)
	}
}

// TestCorruptFrameIsFatal: an undecodable frame draws a fatal response
// with the right code and the server closes the connection.
func TestCorruptFrameIsFatal(t *testing.T) {
	reg := obs.New()
	_, s := startServer(t, reg, serve.Options{Shards: 1}, Options{})
	tc := dialServer(t, s)

	frame, err := tc.enc.AppendFrame(nil, []wire.Event{{Session: "x", Kind: wire.KindDown, X: 1, Y: 1, TMicros: 1}})
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)-1] ^= 0xFF // break the CRC
	if _, err := tc.c.Write(frame); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadResponse(tc.br, nil)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	if !resp.Fatal || resp.Code != wire.FatalCorrupt {
		t.Fatalf("response = %+v, want fatal corrupt", resp)
	}
	// The server hangs up after a fatal response.
	tc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := tc.br.ReadByte(); err == nil {
		t.Fatal("connection still open after fatal response")
	}
	if got := snapCounter(t, reg.Snapshot(), "wire.frames.rejected"); got != 1 {
		t.Errorf("wire.frames.rejected = %d, want 1", got)
	}
}

// TestClosedEngineNacksClosed: submitting into a closed engine NACKs
// every event with NackClosed and tears the connection down.
func TestClosedEngineNacksClosed(t *testing.T) {
	reg := obs.New()
	e, s := startServer(t, reg, serve.Options{Shards: 1}, Options{})
	tc := dialServer(t, s)

	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	resp := tc.send(
		wire.Event{Session: "a", Kind: wire.KindDown, X: 1, Y: 1, TMicros: 1},
		wire.Event{Session: "b", Kind: wire.KindDown, X: 1, Y: 1, TMicros: 2},
	)
	if resp.Fatal || len(resp.Nacks) != 2 {
		t.Fatalf("response = %+v, want two NACKs", resp)
	}
	for i, n := range resp.Nacks {
		if n.Code != wire.NackClosed || n.Index != uint32(i) {
			t.Fatalf("nack %d = %+v, want {%d closed}", i, n, i)
		}
	}
	tc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := tc.br.ReadByte(); err == nil {
		t.Fatal("connection still open after closed-engine NACK")
	}
	if got := snapCounter(t, reg.Snapshot(), "wire.nacks.closed"); got != 2 {
		t.Errorf("wire.nacks.closed = %d, want 2", got)
	}
}

// TestServerCloseDrains: Close with live connections returns cleanly
// and the connection counters balance.
func TestServerCloseDrains(t *testing.T) {
	reg := obs.New()
	_, s := startServer(t, reg, serve.Options{Shards: 1}, Options{})
	tc := dialServer(t, s)
	if resp := tc.send(wire.Event{Session: "d", Kind: wire.KindDown, X: 1, Y: 1, TMicros: 1}); resp.Fatal {
		t.Fatalf("response = %+v", resp)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	opened := snapCounter(t, snap, "wire.connections.opened")
	closed := snapCounter(t, snap, "wire.connections.closed")
	if opened != 1 || closed != 1 {
		t.Errorf("connections opened/closed = %d/%d, want 1/1", opened, closed)
	}
	// Close is idempotent.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitBatchZeroAlloc is the ingest half of the per-event
// allocation gate: submitting a warm batch of accepted events must not
// allocate per event (ISSUE 7 acceptance; see DESIGN.md §6).
func TestSubmitBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the contract is asserted by the non-race pass")
	}
	e, err := serve.New(trainRec(t, 7), serve.Options{Shards: 1, QueueDepth: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := &Server{sub: serve.NewSubmitter(e, serve.SubmitterOptions{})}

	// Alternating move events for two warm sessions: no session opens or
	// completes during the measured runs, so the engine side stays on its
	// pooled path. Drain between runs via Flush... but Flush inside the
	// measured loop would allocate; instead size the queue to hold every
	// measured event and drain afterwards.
	for _, id := range []string{"za", "zb"} {
		if err := e.Submit(serve.Event{Session: id, Kind: 0, X: 0, Y: 0, T: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	events := make([]serve.Event, 8)
	nacks := make([]wire.Nack, 0, 8)
	tick := 0.001
	allocs := testing.AllocsPerRun(100, func() {
		for i := range events {
			id := "za"
			if i%2 == 1 {
				id = "zb"
			}
			events[i] = serve.Event{Session: id, Kind: 1, X: 1, Y: 1, T: tick}
			tick += 0.001
		}
		var closing bool
		nacks, closing = s.submitBatch(events, nacks[:0])
		if closing || len(nacks) != 0 {
			t.Fatalf("submitBatch refused events: %v", nacks)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm submitBatch allocated %.2f times per batch; the //glint:hotpath contract requires 0", allocs)
	}
}
