package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/eager"
	"repro/internal/synth"
)

// Annotation is one test example's result in the notation of the paper's
// figure 9: "7,8/11" means the gesture could have been unambiguously
// classified after 7 points (hand/oracle), the eager recognizer classified
// it after 8, and the gesture has 11 points in total. An "E" marks an
// eager misclassification, an "F" a full-classifier misclassification —
// exactly the figure's flags.
type Annotation struct {
	Class      string
	Index      int // example number within its class (1-based)
	MinPoints  int // oracle minimum (0 when unavailable)
	FiredAt    int // points seen when the eager recognizer classified
	Total      int // points in the gesture
	EagerWrong bool
	FullWrong  bool
}

// String renders the annotation in the figure's format, e.g. "7,8/11 ru4 E".
func (a Annotation) String() string {
	var b strings.Builder
	if a.MinPoints > 0 {
		fmt.Fprintf(&b, "%d,%d/%d", a.MinPoints, a.FiredAt, a.Total)
	} else {
		fmt.Fprintf(&b, "%d/%d", a.FiredAt, a.Total)
	}
	fmt.Fprintf(&b, " %s%d", a.Class, a.Index)
	if a.EagerWrong {
		b.WriteString(" E")
	}
	if a.FullWrong {
		b.WriteString(" F")
	}
	return b.String()
}

// Annotate runs the figure-9/figure-10 protocol and returns one annotation
// per test example, grouped and ordered by class — the machine-readable
// version of the figures' per-example labels.
func Annotate(name string, classes []synth.Class, cfg Config) ([]Annotation, error) {
	trainSet, _ := synth.NewGenerator(synth.DefaultParams(cfg.TrainSeed)).Set(name+"-train", classes, cfg.TrainPerClass)
	testSet, meta := synth.NewGenerator(synth.DefaultParams(cfg.TestSeed)).Set(name+"-test", classes, cfg.TestPerClass)
	rec, _, err := eager.Train(trainSet, cfg.Eager)
	if err != nil {
		return nil, err
	}
	counters := make(map[string]int)
	out := make([]Annotation, 0, testSet.Len())
	for i, e := range testSet.Examples {
		counters[e.Class]++
		class, firedAt, err := rec.Run(e.Gesture)
		if err != nil {
			return nil, err
		}
		fullPred, err := rec.Full.Classify(e.Gesture)
		if err != nil {
			return nil, err
		}
		out = append(out, Annotation{
			Class:      e.Class,
			Index:      counters[e.Class],
			MinPoints:  meta[i].MinPoints,
			FiredAt:    firedAt,
			Total:      e.Gesture.Len(),
			EagerWrong: class != e.Class,
			FullWrong:  fullPred != e.Class,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Index < out[j].Index
	})
	return out, nil
}

// FormatAnnotations renders annotations like the body of figure 9: one
// line per class, examples space-separated.
func FormatAnnotations(anns []Annotation) string {
	var b strings.Builder
	cur := ""
	for _, a := range anns {
		if a.Class != cur {
			if cur != "" {
				b.WriteByte('\n')
			}
			cur = a.Class
			fmt.Fprintf(&b, "%-14s", cur)
		}
		fmt.Fprintf(&b, "  %s", a.String())
	}
	b.WriteByte('\n')
	return b.String()
}
