// Package fixture exercises the sendclosed analyzer: close(ch) panics if
// another goroutine is sending, so only the sole sending owner closes.
package fixture

type pipeline struct {
	ch   chan int
	done chan struct{}
}

// ownerProducer is the clean shape: the only sender closes its own
// channel when it is done.
func ownerProducer(vals []int) chan int {
	ch := make(chan int, len(vals))
	for _, v := range vals {
		ch <- v
	}
	close(ch)
	return ch
}

// submit sends on the shared field channel.
func (p *pipeline) submit(v int) {
	select {
	case p.ch <- v:
	default:
	}
}

// shutdown closes a channel that submit sends on from other goroutines.
func (p *pipeline) shutdown() {
	close(p.ch) // want `close of ch races with a send in submit`
	close(p.done)
}

// goroutineSender launches the sender and then closes under it: same
// function, but the send belongs to another goroutine.
func goroutineSender(vals []int) chan int {
	ch := make(chan int)
	go func() {
		for _, v := range vals {
			ch <- v
		}
	}()
	close(ch) // want `close of ch races with a send in goroutineSender`
	return ch
}

// suppressedProtocol documents a coordinated close: the audited
// directive records the mutex-and-flag protocol that makes it safe.
func (p *pipeline) suppressedProtocol() {
	//lint:ignore sendclosed fixture: senders check a closed flag under a mutex before sending
	close(p.ch)
}
