package fault

import (
	"sync"
	"time"
)

// ManualClock is a virtual clock for deterministic deadline tests: it
// only moves when Advance is called, mirroring internal/display's
// virtual Clock but in time.Time terms so it can drive serve's idle
// reaper (it implements serve.Clock). Safe for concurrent use.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock returns a manual clock frozen at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{t: start}
}

// Now returns the clock's current frozen time.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d and returns the new time.
// Negative d is ignored (time never runs backwards).
func (c *ManualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.t = c.t.Add(d)
	}
	return c.t
}
