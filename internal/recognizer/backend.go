package recognizer

import (
	"repro/internal/geom"
	"repro/internal/gesture"
	"repro/internal/obs"
)

// Backend is the serve-facing recognizer abstraction: everything the
// serving stack (serve.Engine, multipath.Session, the flight recorder)
// needs from a trained recognizer, and nothing more. The eager
// statistical recognizer (internal/eager) and the streaming
// template matcher (internal/template) both implement it; BACKENDS.md is
// the normative contract and is machine-checked against this interface
// by TestBackendsDocMatchesInterface.
//
// Immutable-snapshot contract: a Backend handed to serve.New or
// serve.Engine.Swap must be immutable — NewStream and Classify must be
// safe for unsynchronized concurrent use from any number of goroutines,
// and nothing (including the streams it creates) may mutate the backend
// afterwards. That is what makes the engine's lock-free atomic snapshot
// sharing sound: in-flight sessions keep the snapshot they started on
// while Swap publishes a new one. Perform any mutating setup
// (training, Instrument) before sharing.
type Backend interface {
	// NewStream starts one single-goroutine recognition stream. It fails
	// only when the backend itself is unusable (e.g. deserialized from a
	// corrupt file); per-stroke problems are reported by the stream.
	// Implementations should preallocate every per-point buffer here so
	// Add stays allocation-free (see DESIGN.md §6, "Hot-path allocation
	// gate").
	NewStream() (Stream, error)
	// Classify classifies a complete gesture in one shot — the batch
	// path, used by tools and experiments; the serving stack goes through
	// streams.
	Classify(g gesture.Gesture) (string, error)
	// Caps reports the backend's capability flags (see Caps). The result
	// must be constant for the lifetime of the backend.
	Caps() Caps
}

// Caps are a backend's capability flags, used by callers to pick
// policies (and by BACKENDS.md's machine-checked capability matrix) —
// see Backend.Caps.
type Caps struct {
	// Name is the backend's short stable identifier ("eager",
	// "template"), the vocabulary of serve/gserve backend selection.
	Name string
	// Eager reports that streams can commit mid-stroke: Add may return
	// fired=true before the stroke ends. Terminal-only backends always
	// classify at End.
	Eager bool
	// DegradedFallback reports that Stream.Degrade can classify the
	// finite prefix of a poisoned stroke instead of rejecting it.
	DegradedFallback bool
}

// Stream is one in-flight stroke's recognition state — the streaming
// half of a Backend. A Stream is single-goroutine: the serving engine
// guarantees all events of one session are handled by one shard
// goroutine, and nothing else may touch the stream. Streams are
// long-lived: Reset returns one to its initial state retaining its
// buffers, which is what makes serve.Engine's session pooling
// allocation-free in steady state.
type Stream interface {
	// Add feeds one point. It returns fired=true the first time the
	// stroke is judged unambiguous (eager backends only), along with the
	// recognized class. After the stream has decided, further Adds still
	// accumulate points but report fired=false, so callers act on the
	// transition exactly once. A non-finite point poisons the stream: Add
	// (and a later End) keep returning an error until Reset — callers
	// should reject the stroke or fall back to Degrade.
	Add(p geom.TimedPoint) (fired bool, class string, err error)
	// End finishes the stroke at mouse-up: if the stream never fired, the
	// collected stroke is classified in full now. Returns the final
	// class, or an error for a poisoned or unclassifiable stroke.
	End() (string, error)
	// Degrade is the poisoned stroke's fallback: it classifies the
	// longest all-finite point prefix, erring only when that prefix
	// itself is unclassifiable. On success the stream is decided and End
	// returns the degraded class. Backends without the DegradedFallback
	// capability always return an error.
	Degrade() (string, error)
	// Reset returns the stream to its initial empty state, reusing its
	// allocated buffers — both the recovery path after a poisoned stroke
	// and the pooling reuse hook.
	Reset()
	// SetSpan attaches a parent trace span for per-point child spans;
	// nil (the default) disables tracing at sub-5ns cost. Call before the
	// first Add.
	SetSpan(sp *obs.Span)
	// SetTap attaches a decision tap — the flight recorder's capture
	// hook. Nil (the default) disables capture. Call before the first
	// Add.
	SetTap(t Tap)
}

// Decision is the outcome of one stream step, as reported to a Tap:
// which point it was, whether the stream fired, the class (when fired or
// at End), the backend's ambiguity margin at that point, and the error
// text of a poisoned step. The sequence of Decisions is a pure function
// of the backend and the point stream, which is what makes
// flight-recorder bundles replayable bit-for-bit (see internal/flight
// and cmd/greplay).
type Decision struct {
	// Index is the 1-based count of points seen when the decision was
	// made (for Kind "end", the full point count).
	Index int
	// Kind is "add" for a per-point decision, "end" for the mouse-up
	// classification, "degrade" for the poisoned-stroke fallback.
	Kind string
	// Fired reports that the stream judged the prefix unambiguous on
	// this step.
	Fired bool
	// Class is the recognized class: set when Fired, and on an "end"
	// decision when classification succeeded.
	Class string
	// Margin is the backend's ambiguity margin at this point — for the
	// eager backend the AUC score gap best-complete minus
	// best-incomplete, for the template backend the distance gap between
	// the best other-class template and the best template (positive
	// means confident); 0 when no scores were computed (short prefix,
	// poisoned stroke, or no tap/span attached).
	Margin float64
	// Err is the error text of a poisoned step, "" otherwise.
	Err string
}

// Tap observes a stream's raw inputs and decisions as they happen — the
// flight recorder's capture hook. Implementations must be cheap: they
// run inline on the per-point path. A Tap is called from the stream's
// single owning goroutine only.
type Tap interface {
	// TapPoint is called once per Add with the raw input point, before
	// the decision for that point is reported.
	TapPoint(p geom.TimedPoint)
	// TapDecision is called once per Add (Kind "add") and once per
	// first End (Kind "end").
	TapDecision(d Decision)
}
