// Package script implements GRANDMA's gesture-semantics expression
// language. In the paper (section 3.2), each gesture's semantics are three
// expressions — recog, manip, done — written as Objective-C message sends
// and "evaluated by a simple Objective-C message interpreter built into
// GRANDMA", with gestural attributes like <startX> lazily bound in the
// environment:
//
//	recog = [[view createRect] setEndpoint:0 x:<startX> y:<startY>];
//	manip = [recog setEndpoint:1 x:<currentX> y:<currentY>];
//	done  = nil;
//
// This package reproduces that interpreter: a lexer, a recursive-descent
// parser, and an evaluator that sends messages to Go objects implementing
// the Object interface. Message sends to nil return nil, matching
// Objective-C.
package script

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokLBracket
	tokRBracket
	tokIdent   // bare identifier: view, recog, createRect
	tokSelPart // identifier immediately followed by ':': setEndpoint:
	tokAttr    // <identifier>
	tokNumber  // 0, 1.5, -3
	tokString  // "text"
	tokAssign  // =
	tokSemi    // ;
	tokNil     // nil keyword
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokIdent:
		return "identifier"
	case tokSelPart:
		return "selector"
	case tokAttr:
		return "attribute"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokAssign:
		return "'='"
	case tokSemi:
		return "';'"
	case tokNil:
		return "'nil'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

// SyntaxError reports a lexing or parsing failure with its position.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("script: syntax error at offset %d: %s", e.Pos, e.Msg)
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentRune(r rune) bool {
	return r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// lex tokenizes src. Comments run from "//" to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '[':
			toks = append(toks, token{kind: tokLBracket, pos: i})
			i++
		case c == ']':
			toks = append(toks, token{kind: tokRBracket, pos: i})
			i++
		case c == '=':
			toks = append(toks, token{kind: tokAssign, pos: i})
			i++
		case c == ';':
			toks = append(toks, token{kind: tokSemi, pos: i})
			i++
		case c == '<':
			j := i + 1
			start := j
			for j < n && isIdentRune(rune(src[j])) {
				j++
			}
			if j == start || j >= n || src[j] != '>' {
				return nil, &SyntaxError{Pos: i, Msg: "malformed attribute reference; want <name>"}
			}
			toks = append(toks, token{kind: tokAttr, text: src[start:j], pos: i})
			i = j + 1
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < n && src[j] != '"' {
				if src[j] == '\\' && j+1 < n {
					j++
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= n {
				return nil, &SyntaxError{Pos: i, Msg: "unterminated string literal"}
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9',
			c == '-' && i+1 < n && (src[i+1] >= '0' && src[i+1] <= '9' || src[i+1] == '.'):
			j := i
			if src[j] == '-' {
				j++
			}
			seenDot := false
			for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' && !seenDot) {
				if src[j] == '.' {
					seenDot = true
				}
				j++
			}
			// Optional exponent: e or E, optional sign, digits.
			if j < n && (src[j] == 'e' || src[j] == 'E') {
				k := j + 1
				if k < n && (src[k] == '+' || src[k] == '-') {
					k++
				}
				if k < n && src[k] >= '0' && src[k] <= '9' {
					for k < n && src[k] >= '0' && src[k] <= '9' {
						k++
					}
					j = k
				}
			}
			var v float64
			if _, err := fmt.Sscanf(src[i:j], "%g", &v); err != nil {
				return nil, &SyntaxError{Pos: i, Msg: "malformed number"}
			}
			toks = append(toks, token{kind: tokNumber, num: v, pos: i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentRune(rune(src[j])) {
				j++
			}
			word := src[i:j]
			switch {
			case j < n && src[j] == ':':
				toks = append(toks, token{kind: tokSelPart, text: word + ":", pos: i})
				j++
			case word == "nil":
				toks = append(toks, token{kind: tokNil, pos: i})
			default:
				toks = append(toks, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		default:
			return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}
