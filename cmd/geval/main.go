// Command geval regenerates the paper's evaluation: every figure of
// section 5 plus the ablations indexed in DESIGN.md. Running it with no
// flags reproduces everything and prints the tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	geval [-exp all|fig9|fig10|fig8|ud|timing|ablation-twoclass|ablation-bias|ablation-threshold|trainsize]
//	      [-train N] [-test N] [-train-seed S] [-test-seed S]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/synth"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes geval with the given arguments. Extracted from main for
// tests.
func run(args []string, stdout, stderr io.Writer) int {
	flag := flag.NewFlagSet("geval", flag.ContinueOnError)
	flag.SetOutput(stderr)
	exp := flag.String("exp", "all", "experiment to run")
	annotate := flag.Bool("annotate", false, "with -exp fig9|fig10: print per-example annotations in the figure's min,fired/total notation")
	confusion := flag.Bool("confusion", false, "with -exp fig9|fig10|fig8: print full and eager confusion matrices")
	trainN := flag.Int("train", 10, "training examples per class")
	testN := flag.Int("test", 30, "test examples per class")
	trainSeed := flag.Int64("train-seed", 42, "training set seed")
	testSeed := flag.Int64("test-seed", 1042, "test set seed")
	if err := flag.Parse(args); err != nil {
		return 2
	}

	cfg := experiments.DefaultConfig()
	cfg.TrainPerClass = *trainN
	cfg.TestPerClass = *testN
	cfg.TrainSeed = *trainSeed
	cfg.TestSeed = *testSeed

	workload := func() []synth.Class {
		switch *exp {
		case "fig9":
			return synth.EightDirectionClasses()
		case "fig10":
			return synth.GDPClasses()
		case "fig8":
			return synth.NoteClasses()
		default:
			return nil
		}
	}

	if *annotate {
		classes := workload()
		if classes == nil {
			fmt.Fprintln(stderr, "geval: -annotate requires -exp fig9|fig10|fig8")
			return 2
		}
		anns, err := experiments.Annotate(*exp, classes, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "geval: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, experiments.FormatAnnotations(anns))
		return 0
	}

	if *confusion {
		classes := workload()
		if classes == nil {
			fmt.Fprintln(stderr, "geval: -confusion requires -exp fig9|fig10|fig8")
			return 2
		}
		full, eagerC, err := experiments.Confusions(*exp, classes, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "geval: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "full classifier confusion (accuracy %.1f%%):\n%s\n", 100*full.Accuracy(), full.Format())
		fmt.Fprintf(stdout, "eager recognizer confusion (accuracy %.1f%%):\n%s\n", 100*eagerC.Accuracy(), eagerC.Format())
		if errs := eagerC.Errors(); len(errs) > 0 {
			fmt.Fprintln(stdout, "eager errors:", errs)
		}
		return 0
	}

	type runner struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	wrap := func(f func(experiments.Config) (*experiments.EagerEval, error)) func() (fmt.Stringer, error) {
		return func() (fmt.Stringer, error) {
			r, err := f(cfg)
			if err != nil {
				return nil, err
			}
			return stringer{r.Format()}, nil
		}
	}
	wrapAb := func(f func(experiments.Config) (*experiments.Ablation, error)) func() (fmt.Stringer, error) {
		return func() (fmt.Stringer, error) {
			r, err := f(cfg)
			if err != nil {
				return nil, err
			}
			return stringer{r.Format()}, nil
		}
	}

	all := []runner{
		{"fig9", wrap(experiments.Fig9)},
		{"fig10", wrap(experiments.Fig10)},
		{"fig8", wrap(experiments.Fig8)},
		{"ud", wrap(experiments.UD)},
		{"baseline", func() (fmt.Stringer, error) {
			r, err := experiments.RunBaseline(cfg)
			if err != nil {
				return nil, err
			}
			return stringer{r.Format()}, nil
		}},
		{"rejection", func() (fmt.Stringer, error) {
			r, err := experiments.RunRejection(cfg)
			if err != nil {
				return nil, err
			}
			return stringer{r.Format()}, nil
		}},
		{"tail", func() (fmt.Stringer, error) {
			r, err := experiments.RunTailEffect(cfg)
			if err != nil {
				return nil, err
			}
			return stringer{r.Format()}, nil
		}},
		{"timing", func() (fmt.Stringer, error) {
			r, err := experiments.RunTiming(cfg)
			if err != nil {
				return nil, err
			}
			return stringer{r.Format()}, nil
		}},
		{"ablation-twoclass", wrapAb(experiments.AblationTwoClassAUC)},
		{"ablation-bias", wrapAb(func(c experiments.Config) (*experiments.Ablation, error) {
			return experiments.AblationBiasSweep(c, nil)
		})},
		{"ablation-threshold", wrapAb(func(c experiments.Config) (*experiments.Ablation, error) {
			return experiments.AblationThresholdSweep(c, nil)
		})},
		{"ablation-agreement", wrapAb(experiments.AblationAgreement)},
		{"ablation-features", wrapAb(experiments.FeatureDropSweep)},
		{"ablation-cornerloop", wrapAb(func(c experiments.Config) (*experiments.Ablation, error) {
			return experiments.CornerLoopSweep(c, nil)
		})},
		{"trainsize", wrapAb(func(c experiments.Config) (*experiments.Ablation, error) {
			return experiments.TrainSizeSweep(c, nil)
		})},
	}

	ran := false
	for _, r := range all {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		out, err := r.run()
		if err != nil {
			fmt.Fprintf(stderr, "geval %s: %v\n", r.name, err)
			return 1
		}
		fmt.Fprintln(stdout, out)
	}
	if !ran {
		fmt.Fprintf(stderr, "geval: unknown experiment %q\n", *exp)
		return 2
	}
	return 0
}

type stringer struct{ s string }

func (s stringer) String() string { return s.s }
