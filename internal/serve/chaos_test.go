package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/multipath"
	"repro/internal/obs"
	"repro/internal/recognizer"
)

// chaosRates is the fault mix every chaos schedule uses: producer-side
// corruption (drop/dup/NaN/Inf/negative-T/reorder/stall) plus
// engine-side dispatch faults (panic/poison).
func chaosRates() map[fault.Kind]float64 {
	return map[fault.Kind]float64{
		fault.KindDrop:    0.06,
		fault.KindDup:     0.06,
		fault.KindNaN:     0.04,
		fault.KindInf:     0.03,
		fault.KindNegT:    0.03,
		fault.KindReorder: 0.04,
		fault.KindStall:   0.02,
		fault.KindPanic:   0.02,
		fault.KindPoison:  0.03,
	}
}

// chaosTally accumulates, under a mutex, what the producers observed:
// how often each fault kind was applied and how many submissions the
// engine refused with ErrBadEvent.
type chaosTally struct {
	mu    sync.Mutex
	kinds map[fault.Kind]int64
	bad   int64
}

func (ct *chaosTally) merge(kinds map[fault.Kind]int64, bad int64) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	for k, n := range kinds {
		ct.kinds[k] += n
	}
	ct.bad += bad
}

// chaosProducer plays one session's gesture through the submitter,
// applying the schedule's producer-side fates event by event. It
// returns whether the FingerDown was accepted (the session started)
// and what it observed.
func chaosProducer(t *testing.T, s *Submitter, sched *fault.Schedule, id string, events []Event) (started bool, kinds map[fault.Kind]int64, bad int64) {
	t.Helper()
	kinds = make(map[fault.Kind]int64)
	submit := func(ev Event, wantBad bool) error {
		err := s.Submit(ev)
		switch {
		case err == nil:
			if wantBad {
				t.Errorf("session %s: corrupted event accepted: %+v", id, ev)
			}
		case errors.Is(err, ErrBadEvent):
			bad++
			if !wantBad {
				// Reorder rejections land here: legitimate, counted by
				// observation, not predicted.
				_ = err
			}
		default:
			t.Errorf("session %s: unexpected submit error %v", id, err)
		}
		return err
	}
	for i := 0; i < len(events); i++ {
		f := sched.Fate(id, i)
		if f != fault.KindNone {
			kinds[f]++
		}
		switch f {
		case fault.KindStall:
			// Mid-stroke stall: the producer dies here; the session stays
			// open until the idle reaper collects it.
			return started, kinds, bad
		case fault.KindDrop:
			continue
		case fault.KindDup:
			err := submit(events[i], false)
			if err == nil && i == 0 {
				started = true
			}
			submit(events[i], false)
		case fault.KindNaN:
			ev := events[i]
			ev.X = math.NaN()
			submit(ev, true)
		case fault.KindInf:
			ev := events[i]
			ev.Y = math.Inf(1)
			submit(ev, true)
		case fault.KindNegT:
			ev := events[i]
			ev.T = -1
			submit(ev, true)
		case fault.KindReorder:
			if i+1 >= len(events) {
				// Nothing to swap with at the tail; submit normally.
				if err := submit(events[i], false); err == nil && i == 0 {
					started = true
				}
				continue
			}
			// The later event goes first; the earlier one then usually
			// regresses below the session's high-water timestamp and is
			// rejected — exactly what Submit-time validation is for.
			submit(events[i+1], false)
			if err := submit(events[i], false); err == nil && i == 0 {
				started = true
			}
			i++ // the swapped partner was already submitted; never re-fated
		default: // KindNone
			if err := submit(events[i], false); err == nil && i == 0 {
				started = true
			}
		}
	}
	return started, kinds, bad
}

// sessionEvents renders a sampled gesture as the event stream
// playSession would submit: FingerDown, moves, FingerUp.
func sessionEvents(id string, seed int64, class int) ([]Event, string) {
	g, want := sampleGesture(seed, class)
	events := make([]Event, 0, len(g)+1)
	for i, p := range g {
		kind := multipath.FingerMove
		if i == 0 {
			kind = multipath.FingerDown
		}
		events = append(events, Event{Session: id, Finger: 0, Kind: kind, X: p.X, Y: p.Y, T: p.T})
	}
	last := g[len(g)-1]
	events = append(events, Event{Session: id, Finger: 0, Kind: multipath.FingerUp, X: last.X, Y: last.Y, T: last.T + 0.01})
	return events, want
}

// TestChaosSchedules is the fault-injection harness: for each seed it
// runs a full engine under a deterministic fault schedule and then
// audits the invariants that hardening promises — exactly one Result
// per started session, queue accounting that balances, every injected
// fault visible in the fault.injected.* counters, panic containment,
// degraded classification for poisoned strokes, idle reaping of
// stalled sessions, and flight bundles whose recorded reason matches
// the delivered outcome.
func TestChaosSchedules(t *testing.T) {
	runChaosSchedules(t, trainRec(t, 7))
}

// TestChaosSchedulesTemplateBackend replays the same seeded fault
// schedules against the streaming template backend: the hardening
// invariants (one Result per session, queue accounting, panic
// containment, backend-agnostic degraded outcomes, reaping, flight
// bundle consistency) are properties of the serving engine and must
// hold for any recognizer.Backend, not just the eager one.
func TestChaosSchedulesTemplateBackend(t *testing.T) {
	runChaosSchedules(t, trainTemplate(t, 7))
}

func runChaosSchedules(t *testing.T, rec recognizer.Backend) {
	t.Helper()
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			reg := obs.New()
			clk := fault.NewManualClock(time.Unix(1_700_000_000, 0))
			sched, err := fault.NewSchedule(fault.Plan{Seed: seed, Rates: chaosRates()})
			if err != nil {
				t.Fatal(err)
			}
			sched.Instrument(reg)
			rec2 := flight.NewRecorder(flight.Options{Capacity: 4096, Trigger: flight.TriggerAlways})
			sink := newSink()
			e, err := New(rec, Options{
				Shards:       4,
				QueueDepth:   32,
				OnResult:     sink.add,
				Obs:          reg,
				Flight:       rec2,
				IdleTimeout:  time.Second,
				ReapInterval: -1, // reap only on demand; the clock is virtual
				Clock:        clk,
				Fault:        sched,
			})
			if err != nil {
				t.Fatal(err)
			}

			const producers, perProducer = 3, 3
			tally := &chaosTally{kinds: make(map[fault.Kind]int64)}
			var mu sync.Mutex
			started := map[string]bool{}
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					s := NewSubmitter(e, SubmitterOptions{})
					for i := 0; i < perProducer; i++ {
						id := fmt.Sprintf("c%d-p%d-s%d", seed, p, i)
						events, _ := sessionEvents(id, seed*1000+int64(p*100+i), i%2)
						ok, kinds, bad := chaosProducer(t, s, sched, id, events)
						tally.merge(kinds, bad)
						mu.Lock()
						started[id] = ok
						mu.Unlock()
					}
				}(p)
			}
			wg.Wait()
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}

			// Reap everything still open (stalled or tail-corrupted
			// sessions): advance the virtual clock past the idle deadline
			// and sweep.
			activeBefore := e.Stats().Active
			clk.Advance(2 * time.Second)
			reaped, err := e.Reap()
			if err != nil {
				t.Fatal(err)
			}
			if int64(reaped) != activeBefore {
				t.Errorf("Reap() = %d, want %d (all idle sessions)", reaped, activeBefore)
			}
			if got := e.Stats().Active; got != 0 {
				t.Errorf("Stats.Active = %d after full reap, want 0", got)
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			if err := e.Submit(Event{Session: "post", Kind: multipath.FingerDown, X: 1, Y: 1, T: 1}); !errors.Is(err, ErrClosed) {
				t.Errorf("Submit after Close = %v, want ErrClosed", err)
			}

			snap := reg.Snapshot()
			st := e.Stats()

			// One Result per started session, none for never-started ones.
			if d := sink.duplicates(); d != 0 {
				t.Errorf("%d duplicate Results delivered", d)
			}
			for id, ok := range started {
				o, got := sink.outcome(id)
				if ok && !got {
					t.Errorf("session %s started but produced no Result", id)
				}
				if !ok && got {
					t.Errorf("session %s never started but produced a Result (%v)", id, o)
				}
				if got && o == OutcomeDrained {
					t.Errorf("session %s drained; every open session should have been reaped first", id)
				}
			}
			if int64(sink.len()) != st.Completed {
				t.Errorf("results delivered = %d, Stats.Completed = %d", sink.len(), st.Completed)
			}

			// Queue accounting balances: every accepted event was observed
			// leaving a queue; control messages are not accounted.
			if h := snapHist(t, snap, "serve.queue.wait_ns"); h.Count != st.Submitted {
				t.Errorf("serve.queue.wait_ns count = %d, Stats.Submitted = %d", h.Count, st.Submitted)
			}
			if got := snapCounter(t, snap, "serve.events.bad"); got != tally.bad || st.Bad != tally.bad {
				t.Errorf("serve.events.bad = %d, Stats.Bad = %d, producers observed %d", got, st.Bad, tally.bad)
			}

			// Every producer-side injected fault is visible in its counter.
			var total int64
			for _, k := range []fault.Kind{fault.KindDrop, fault.KindDup, fault.KindNaN,
				fault.KindInf, fault.KindNegT, fault.KindReorder, fault.KindStall} {
				got := snapCounter(t, snap, "fault.injected."+k.String())
				if got != tally.kinds[k] {
					t.Errorf("fault.injected.%s = %d, producers applied %d", k, got, tally.kinds[k])
				}
				total += got
			}

			// Engine-side faults: each injected panic quarantines exactly
			// one session; degraded outcomes need at least one poisoning.
			var panicked, degraded, reapedN int64
			for id := range started {
				switch o, _ := sink.outcome(id); o {
				case OutcomePanicked:
					panicked++
				case OutcomeDegraded:
					degraded++
				case OutcomeReaped:
					reapedN++
				}
			}
			panicInjected := snapCounter(t, snap, "fault.injected.panic")
			poisonInjected := snapCounter(t, snap, "fault.injected.poison")
			total += panicInjected + poisonInjected
			if panicInjected != st.Panicked || st.Panicked != panicked {
				t.Errorf("fault.injected.panic = %d, Stats.Panicked = %d, panicked results = %d",
					panicInjected, st.Panicked, panicked)
			}
			if degraded > poisonInjected {
				t.Errorf("degraded results = %d exceed poison injections = %d", degraded, poisonInjected)
			}
			if st.Degraded != degraded {
				t.Errorf("Stats.Degraded = %d, degraded results = %d", st.Degraded, degraded)
			}
			if st.Reaped != reapedN || int64(reaped) != reapedN {
				t.Errorf("Stats.Reaped = %d, Reap() = %d, reaped results = %d", st.Reaped, reaped, reapedN)
			}
			if got := snapCounter(t, snap, "fault.injected.total"); got != total {
				t.Errorf("fault.injected.total = %d, per-kind sum = %d", got, total)
			}

			// Flight bundles carry the same outcome the engine reported.
			for _, b := range rec2.Bundles() {
				o, ok := sink.outcome(b.Session)
				if !ok {
					t.Errorf("bundle for session %s which has no Result", b.Session)
					continue
				}
				if b.Outcome.Reason != o.String() {
					t.Errorf("bundle %s reason = %q, Result outcome = %v", b.Session, b.Outcome.Reason, o)
				}
				if o == OutcomeDegraded && !b.Outcome.Poisoned {
					t.Errorf("bundle %s: degraded outcome but Poisoned = false", b.Session)
				}
			}
		})
	}
}

// refClass runs a standalone multipath session over the same event
// stream and returns the class it decides — the fault-free ground truth
// for what the engine should report. It works for any backend, which is
// what lets the isolation tests run against both.
func refClass(rec recognizer.Backend, events []Event) string {
	ref := multipath.NewSession(rec)
	for _, ev := range events {
		ref.Handle(multipath.Event{Finger: ev.Finger, Kind: ev.Kind, X: ev.X, Y: ev.Y, T: ev.T})
	}
	return ref.Class()
}

// TestChaosPoisonIsolation poisons one of two sessions interleaved on
// the same shard. The poisoned stroke must degrade — the backend's
// fallback scorer on the finite prefix — while its neighbor classifies
// normally, on the same shard, unaffected.
func TestChaosPoisonIsolation(t *testing.T) {
	runChaosIsolation(t, trainRec(t, 7), fault.KindPoison, OutcomeDegraded)
}

// TestChaosPanicIsolation injects a dispatch panic into one of two
// sessions interleaved on the same shard. The panicking session is
// quarantined; the shard keeps serving its neighbor and future
// sessions.
func TestChaosPanicIsolation(t *testing.T) {
	runChaosIsolation(t, trainRec(t, 7), fault.KindPanic, OutcomePanicked)
}

// Template-backend variants of the isolation tests: poisoned strokes
// must degrade through template.Session.Degrade (the backend-agnostic
// recognizer.Stream contract) and panic quarantine must behave
// identically — the engine cannot tell backends apart.
func TestChaosPoisonIsolationTemplateBackend(t *testing.T) {
	runChaosIsolation(t, trainTemplate(t, 7), fault.KindPoison, OutcomeDegraded)
}

func TestChaosPanicIsolationTemplateBackend(t *testing.T) {
	runChaosIsolation(t, trainTemplate(t, 7), fault.KindPanic, OutcomePanicked)
}

func runChaosIsolation(t *testing.T, rec recognizer.Backend, k fault.Kind, want Outcome) {
	t.Helper()
	reg := obs.New()
	script := fault.NewScript().Set("victim", 5, k)
	script.Instrument(reg)
	rec2 := flight.NewRecorder(flight.Options{Capacity: 16, Trigger: flight.TriggerAlways})
	sink := newSink()
	e, err := New(rec, Options{Shards: 1, OnResult: sink.add, Obs: reg, Flight: rec2, Fault: script})
	if err != nil {
		t.Fatal(err)
	}

	vEvents, _ := sessionEvents("victim", 41, 0)
	bEvents, _ := sessionEvents("bystander", 42, 1)
	bWant := refClass(rec, bEvents)
	s := NewSubmitter(e, SubmitterOptions{})
	// Interleave the two sessions event by event on the single shard.
	for i := 0; i < len(vEvents) || i < len(bEvents); i++ {
		if i < len(vEvents) {
			if err := s.Submit(vEvents[i]); err != nil {
				t.Fatalf("victim event %d: %v", i, err)
			}
		}
		if i < len(bEvents) {
			if err := s.Submit(bEvents[i]); err != nil {
				t.Fatalf("bystander event %d: %v", i, err)
			}
		}
	}
	// The shard must still serve brand-new sessions after the fault.
	aEvents, _ := sessionEvents("after", 43, 0)
	aWant := refClass(rec, aEvents)
	for _, ev := range aEvents {
		if err := s.Submit(ev); err != nil {
			t.Fatalf("after event: %v", err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	if o, ok := sink.outcome("victim"); !ok || o != want {
		t.Errorf("victim outcome = %v (present %v), want %v", o, ok, want)
	}
	if want == OutcomeDegraded {
		if class, _ := sink.get("victim"); class == "" {
			t.Error("degraded victim has no class; the finite prefix should classify")
		}
	}
	for _, other := range []struct{ id, want string }{{"bystander", bWant}, {"after", aWant}} {
		if class, ok := sink.get(other.id); !ok || class != other.want {
			t.Errorf("session %s class = %q (present %v), want %q — fault leaked across sessions",
				other.id, class, ok, other.want)
		}
		if o, _ := sink.outcome(other.id); o != OutcomeCompleted {
			t.Errorf("session %s outcome = %v, want %v", other.id, o, OutcomeCompleted)
		}
	}

	snap := reg.Snapshot()
	if got := snapCounter(t, snap, "fault.injected."+k.String()); got != 1 {
		t.Errorf("fault.injected.%s = %d, want 1", k, got)
	}
	if want == OutcomePanicked {
		if got := snapCounter(t, snap, "serve.sessions.panicked"); got != 1 {
			t.Errorf("serve.sessions.panicked = %d, want 1", got)
		}
		if got := snapCounter(t, snap, "serve.events.quarantined"); got == 0 {
			t.Error("serve.events.quarantined = 0; the victim's post-panic events should be counted")
		}
	} else {
		if got := snapCounter(t, snap, "serve.sessions.degraded"); got != 1 {
			t.Errorf("serve.sessions.degraded = %d, want 1", got)
		}
		for _, b := range rec2.Bundles() {
			if b.Session == "victim" {
				if !b.Outcome.Poisoned || b.Outcome.Reason != "degraded" {
					t.Errorf("victim bundle: Poisoned=%v Reason=%q, want poisoned+degraded",
						b.Outcome.Poisoned, b.Outcome.Reason)
				}
			}
		}
	}
}
