package multipath

import (
	"testing"

	"repro/internal/eager"
	"repro/internal/geom"
	"repro/internal/synth"
)

func trainRec(t *testing.T) *eager.Recognizer {
	t.Helper()
	set, _ := synth.NewGenerator(synth.DefaultParams(7)).Set("train", synth.UDClasses(), 12)
	rec, _, err := eager.Train(set, eager.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// playPrimary feeds a gesture's points as finger-0 events.
func playPrimary(s *Session, g geom.Path) {
	for i, p := range g {
		kind := FingerMove
		if i == 0 {
			kind = FingerDown
		}
		s.Handle(Event{Finger: 0, Kind: kind, X: p.X, Y: p.Y, T: p.T})
	}
}

func sampleUD(t *testing.T, class int) geom.Path {
	t.Helper()
	gen := synth.NewGenerator(synth.DefaultParams(51))
	return gen.Sample(synth.UDClasses()[class]).G.Points
}

func TestSingleFingerGestureRecognized(t *testing.T) {
	rec := trainRec(t)
	s := NewSession(rec)
	var recognized string
	s.OnRecognized = func(class string) { recognized = class }
	g := sampleUD(t, 0) // class U
	playPrimary(s, g)
	last := g[len(g)-1]
	s.Handle(Event{Finger: 0, Kind: FingerUp, X: last.X, Y: last.Y, T: last.T + 0.01})
	if recognized != "U" {
		t.Fatalf("recognized %q", recognized)
	}
	if !s.Decided() || s.Class() != "U" {
		t.Fatal("session state wrong")
	}
	if s.FingerCount() != 0 {
		t.Fatalf("fingers still live: %v", s.LiveFingers())
	}
}

func TestSecondFingerForcesTransition(t *testing.T) {
	rec := trainRec(t)
	s := NewSession(rec)
	fired := 0
	s.OnRecognized = func(class string) { fired++ }
	g := sampleUD(t, 1) // class D
	// Feed only the first few points — likely still ambiguous — then land
	// a second finger.
	for i := 0; i < 4; i++ {
		kind := FingerMove
		if i == 0 {
			kind = FingerDown
		}
		s.Handle(Event{Finger: 0, Kind: kind, X: g[i].X, Y: g[i].Y, T: g[i].T})
	}
	s.Handle(Event{Finger: 1, Kind: FingerDown, X: g[3].X + 40, Y: g[3].Y, T: g[3].T + 0.02})
	if fired != 1 {
		t.Fatalf("recognition fired %d times", fired)
	}
	if !s.Decided() {
		t.Fatal("second finger did not force the phase transition")
	}
	if s.FingerCount() != 2 {
		t.Fatalf("finger count %d", s.FingerCount())
	}
}

func TestTwoFingerTranslateRotateScale(t *testing.T) {
	rec := trainRec(t)
	s := NewSession(rec)
	sh := &stubShape{pts: []geom.Point{{X: 100, Y: 100}, {X: 120, Y: 100}}}
	s.OnTransform = func(tr Transform) { tr.ApplyTo(sh) }

	g := sampleUD(t, 0)
	playPrimary(s, g) // full gesture: recognized by the end at latest
	last := g[len(g)-1]
	if !s.Decided() {
		// Force transition with the second finger if eager didn't fire.
		s.Handle(Event{Finger: 1, Kind: FingerDown, X: last.X + 30, Y: last.Y, T: last.T + 0.02})
	} else {
		s.Handle(Event{Finger: 1, Kind: FingerDown, X: last.X + 30, Y: last.Y, T: last.T + 0.02})
	}

	// Move finger 1 to double the finger separation: pure scale about the
	// pair. The shape's segment length must grow accordingly.
	before := sh.pts[0].Dist(sh.pts[1])
	s.Handle(Event{Finger: 1, Kind: FingerMove, X: last.X + 60, Y: last.Y, T: last.T + 0.06})
	after := sh.pts[0].Dist(sh.pts[1])
	if after <= before*1.5 {
		t.Fatalf("scale not applied: %v -> %v", before, after)
	}

	// Move both fingers rigidly: pure translation.
	p0 := sh.pts[0]
	s.Handle(Event{Finger: 0, Kind: FingerMove, X: last.X + 10, Y: last.Y + 20, T: last.T + 0.08})
	s.Handle(Event{Finger: 1, Kind: FingerMove, X: last.X + 70, Y: last.Y + 20, T: last.T + 0.10})
	moved := sh.pts[0].Sub(p0)
	if moved.Norm() < 15 {
		t.Fatalf("translation not applied: moved %v", moved)
	}
}

func TestExtraFingersSurface(t *testing.T) {
	rec := trainRec(t)
	s := NewSession(rec)
	var extras []int
	s.OnExtraFingers = func(n int) { extras = append(extras, n) }
	g := sampleUD(t, 0)
	playPrimary(s, g)
	last := g[len(g)-1]
	s.Handle(Event{Finger: 1, Kind: FingerDown, X: last.X + 30, Y: last.Y, T: last.T + 0.02})
	s.Handle(Event{Finger: 2, Kind: FingerDown, X: last.X + 60, Y: last.Y, T: last.T + 0.04})
	s.Handle(Event{Finger: 3, Kind: FingerDown, X: last.X + 90, Y: last.Y, T: last.T + 0.05})
	s.Handle(Event{Finger: 3, Kind: FingerUp, X: last.X + 90, Y: last.Y, T: last.T + 0.06})
	want := []int{1, 2, 1}
	if len(extras) != len(want) {
		t.Fatalf("extras = %v", extras)
	}
	for i := range want {
		if extras[i] != want[i] {
			t.Fatalf("extras = %v, want %v", extras, want)
		}
	}
}

func TestUnknownFingerEventsIgnored(t *testing.T) {
	rec := trainRec(t)
	s := NewSession(rec)
	// Moves/ups for fingers never seen must not panic or change state.
	s.Handle(Event{Finger: 9, Kind: FingerMove, X: 1, Y: 1, T: 0})
	s.Handle(Event{Finger: 9, Kind: FingerUp, X: 1, Y: 1, T: 0})
	if s.FingerCount() != 0 || s.Decided() {
		t.Fatal("stray events changed state")
	}
}

func TestNonPrimaryMovesIgnoredDuringCollection(t *testing.T) {
	rec := trainRec(t)
	s := NewSession(rec)
	g := sampleUD(t, 0)
	s.Handle(Event{Finger: 0, Kind: FingerDown, X: g[0].X, Y: g[0].Y, T: g[0].T})
	// A second finger lands immediately: transition is forced on a
	// one-point gesture; it must not crash, and classification happens via
	// the full classifier.
	s.Handle(Event{Finger: 1, Kind: FingerDown, X: g[0].X + 5, Y: g[0].Y, T: g[0].T + 0.01})
	if !s.Decided() {
		t.Fatal("transition not forced")
	}
	if s.Class() == "" {
		t.Fatal("no class assigned")
	}
}

// TestLiveFingersArrivalOrder is the regression for the doc/behaviour
// mismatch: LiveFingers promised arrival order but returned FingerIDs
// sorted numerically. With out-of-order IDs the primary finger must stay
// at index 0.
func TestLiveFingersArrivalOrder(t *testing.T) {
	rec := trainRec(t)
	s := NewSession(rec)
	s.Handle(Event{Finger: 5, Kind: FingerDown, X: 1, Y: 1, T: 0})
	s.Handle(Event{Finger: 2, Kind: FingerDown, X: 2, Y: 2, T: 0.01})
	s.Handle(Event{Finger: 9, Kind: FingerDown, X: 3, Y: 3, T: 0.02})
	ids := s.LiveFingers()
	want := []FingerID{5, 2, 9}
	if len(ids) != len(want) {
		t.Fatalf("LiveFingers = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("LiveFingers = %v, want arrival order %v", ids, want)
		}
	}
	// After the mid-arrival finger lifts, relative arrival order holds.
	s.Handle(Event{Finger: 2, Kind: FingerUp, X: 2, Y: 2, T: 0.03})
	ids = s.LiveFingers()
	if len(ids) != 2 || ids[0] != 5 || ids[1] != 9 {
		t.Fatalf("LiveFingers after lift = %v, want [5 9]", ids)
	}
	// All fingers up during collection forces a final classification.
	s2 := NewSession(rec)
	g := sampleUD(t, 0)
	s2.Handle(Event{Finger: 0, Kind: FingerDown, X: g[0].X, Y: g[0].Y, T: g[0].T})
	s2.Handle(Event{Finger: 0, Kind: FingerMove, X: g[1].X, Y: g[1].Y, T: g[1].T})
	s2.Handle(Event{Finger: 0, Kind: FingerUp, X: g[1].X, Y: g[1].Y, T: g[1].T + 0.01})
	if !s2.Decided() || s2.Class() == "" {
		t.Fatal("lift during collection did not classify")
	}
}

// TestCompletedSessionIgnoresNewDown is the regression for the lifecycle
// bug: a FingerDown after the interaction ended (all fingers up, gesture
// decided) used to start a new eager stream whose result was discarded by
// the one-shot decide. The session must now be inert.
func TestCompletedSessionIgnoresNewDown(t *testing.T) {
	rec := trainRec(t)
	s := NewSession(rec)
	fired := 0
	s.OnRecognized = func(string) { fired++ }
	g := sampleUD(t, 0)
	playPrimary(s, g)
	last := g[len(g)-1]
	s.Handle(Event{Finger: 0, Kind: FingerUp, X: last.X, Y: last.Y, T: last.T + 0.01})
	if !s.Completed() {
		t.Fatal("session not completed after last finger up")
	}
	class := s.Class()
	if class == "" || fired != 1 {
		t.Fatalf("first interaction: class %q, fired %d", class, fired)
	}
	// Down -> move -> up with the same FingerID on the completed session.
	g2 := sampleUD(t, 1)
	playPrimary(s, g2)
	s.Handle(Event{Finger: 0, Kind: FingerUp, X: g2[len(g2)-1].X, Y: g2[len(g2)-1].Y, T: g2[len(g2)-1].T + 0.01})
	if fired != 1 {
		t.Fatalf("completed session fired recognition again (%d times)", fired)
	}
	if s.Class() != class {
		t.Fatalf("completed session class changed: %q -> %q", class, s.Class())
	}
	if s.FingerCount() != 0 {
		t.Fatalf("completed session tracked new fingers: %v", s.LiveFingers())
	}
}

// TestFinishDrainsInFlight: Finish on a mid-gesture session classifies
// the stroke collected so far and completes the session.
func TestFinishDrainsInFlight(t *testing.T) {
	rec := trainRec(t)
	s := NewSession(rec)
	g := sampleUD(t, 0)
	for i := 0; i < len(g)/2; i++ {
		kind := FingerMove
		if i == 0 {
			kind = FingerDown
		}
		s.Handle(Event{Finger: 0, Kind: kind, X: g[i].X, Y: g[i].Y, T: g[i].T})
	}
	class := s.Finish()
	if !s.Completed() || !s.Decided() {
		t.Fatal("Finish did not complete the session")
	}
	if class != s.Class() {
		t.Fatalf("Finish returned %q, Class says %q", class, s.Class())
	}
	if s.FingerCount() != 0 {
		t.Fatal("Finish left live fingers")
	}
	if got := s.Finish(); got != class {
		t.Fatalf("second Finish returned %q, want %q", got, class)
	}
}

func TestRepeatedDownSameFinger(t *testing.T) {
	rec := trainRec(t)
	s := NewSession(rec)
	g := sampleUD(t, 0)
	s.Handle(Event{Finger: 0, Kind: FingerDown, X: g[0].X, Y: g[0].Y, T: g[0].T})
	// A duplicate down for a live finger must not duplicate it.
	s.Handle(Event{Finger: 0, Kind: FingerDown, X: g[1].X, Y: g[1].Y, T: g[1].T})
	if s.FingerCount() != 1 {
		t.Fatalf("finger count %d", s.FingerCount())
	}
}
