// Package classifier implements the paper's statistical single-stroke
// gesture classifier (section 4.2): linear discrimination over feature
// vectors, with closed-form training that is optimal under per-class
// multivariate-Gaussian assumptions with a common covariance matrix.
//
// Each class c gets a linear evaluation function
//
//	v_c(f) = w_c0 + sum_j w_cj * f_j
//
// and classification picks the class with maximum v_c. Training estimates
// per-class means and a pooled covariance matrix; the weights are
//
//	w_cj = sum_i (Sigma^-1)_ij * mean_ci
//	w_c0 = -1/2 * sum_j w_cj * mean_cj
//
// The package also exposes the two classifier properties the eager
// recognition trainer exploits: unequal misclassification costs via
// constant-term biasing (BiasClass), and the Mahalanobis distance metric
// induced by the pooled covariance (Mahalanobis, MeanDistance).
package classifier

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// AmbiguityThreshold is the probability below which Evaluate counts a
// classification as ambiguous in the instrumentation (the paper's §4.2
// rejection discussion: "we typically reject when P < 0.95"). It only
// affects the `<prefix>.ambiguous` counter, never the classification
// itself — rejection policy stays with the caller.
const AmbiguityThreshold = 0.95

// classifierMetrics is the per-classifier instrumentation. All handles
// are nil until Instrument attaches a registry, making every recording
// call a sub-5ns no-op (see internal/obs).
type classifierMetrics struct {
	scoreNS         *obs.Histogram // latency of one discriminant evaluation
	classifications *obs.Counter   // Classify/ClassifyInto/Evaluate calls
	errors          *obs.Counter   // inputs refused (shape, non-finite)
	ambiguous       *obs.Counter   // Evaluate results under AmbiguityThreshold
	byClass         []*obs.Counter // wins per class, indexed like Classes
}

// winner returns the win counter for class index i, nil when
// uninstrumented or out of range (both no-op on use).
func (m *classifierMetrics) winner(i int) *obs.Counter {
	if i < 0 || i >= len(m.byClass) {
		return nil
	}
	return m.byClass[i]
}

// Example is one labelled feature vector.
type Example struct {
	Class    string
	Features linalg.Vec
}

// Options configures training. The zero value is valid and means: order
// classes by first appearance, no ridge forced.
type Options struct {
	// SortClasses orders the classifier's class list lexicographically
	// instead of by first appearance in the training data.
	SortClasses bool
}

// Classifier is a trained linear classifier. Fields are exported for JSON
// serialization; treat them as read-only outside this package except via
// BiasClass.
//
// Concurrency contract: a fully-trained Classifier is immutable, so every
// classification method — Score, ScoreInto, Classify, ClassifyInto,
// Evaluate, Mahalanobis, MahalanobisTo, MeanDistance — is safe for
// concurrent use from multiple goroutines, provided each goroutine passes
// its own out/scores buffer to the ...Into forms. This is what lets the
// parallel eager trainer and the serve.Engine share one classifier across
// a worker pool with only per-worker scratch. BiasClass mutates the
// constants and Instrument attaches metrics; neither is safe
// concurrently with classification — training passes (bias, tweak) and
// instrumentation must complete before the classifier is shared. Once
// attached, the metrics themselves are lock-free and do not affect the
// concurrency contract.
type Classifier struct {
	Classes []string     `json:"classes"`
	Dim     int          `json:"dim"`
	Weights []linalg.Vec `json:"weights"` // per class, length Dim
	Consts  []float64    `json:"consts"`  // per class constant terms w_c0
	Means   []linalg.Vec `json:"means"`   // per class feature means
	InvCov  *linalg.Mat  `json:"invCov"`  // inverse of the pooled covariance
	Ridge   float64      `json:"ridge"`   // regularization applied, 0 if none
	Blend   float64      `json:"blend,omitempty"` // identity-blend weight applied, 0 if none
	Counts  []int        `json:"counts"`  // training examples per class

	// m is the attached instrumentation; its zero value (no registry)
	// makes every metric call a no-op. Unexported, so serialization and
	// JSON round-trips are unaffected. See Instrument.
	m classifierMetrics
}

// Instrument attaches the classifier's metrics to a registry under the
// given name prefix (e.g. "classifier.full", "classifier.auc"):
// per-evaluation score latency (`<prefix>.score_ns`), call and error
// counters (`<prefix>.classifications`, `<prefix>.errors`), the
// ambiguity counter (`<prefix>.ambiguous`), and one win counter per
// class (`<prefix>.class.<class>`). A nil registry detaches nothing and
// attaches nothing — the call is a no-op.
//
// Concurrency contract: Instrument mutates the classifier and must be
// called before the classifier is shared across goroutines, exactly
// like BiasClass; once attached, the instruments themselves are
// lock-free and concurrent classification remains race-free.
func (c *Classifier) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	c.m = classifierMetrics{
		scoreNS:         reg.Histogram(prefix+".score_ns", obs.LatencyBuckets()),
		classifications: reg.Counter(prefix + ".classifications"),
		errors:          reg.Counter(prefix + ".errors"),
		ambiguous:       reg.Counter(prefix + ".ambiguous"),
		byClass:         make([]*obs.Counter, len(c.Classes)),
	}
	for i, name := range c.Classes {
		c.m.byClass[i] = reg.Counter(prefix + ".class." + name)
	}
}

// Errors returned by Train and the classification methods.
var (
	ErrNoExamples = errors.New("classifier: no training examples")
	ErrNoClasses  = errors.New("classifier: training data names no classes")
	// ErrNonFinite reports NaN/Inf in a feature vector — training and
	// classification both refuse non-finite input rather than letting it
	// corrupt every later score.
	ErrNonFinite = errors.New("classifier: non-finite feature vector")
)

// Train computes a classifier from labelled feature vectors. All vectors
// must share one dimensionality. Classes with a single example contribute
// nothing to the covariance estimate but still get a mean and a
// discriminant. If the pooled covariance is singular (zero-variance
// features, degenerate data, or fewer examples than dimensions), a minimal
// ridge term is applied and recorded in the Ridge field.
func Train(examples []Example, opts Options) (*Classifier, error) {
	if len(examples) == 0 {
		return nil, ErrNoExamples
	}
	dim := len(examples[0].Features)
	if dim == 0 {
		return nil, errors.New("classifier: zero-dimensional features")
	}

	// Group examples by class, preserving first-appearance order.
	classIdx := make(map[string]int)
	var classes []string
	for _, e := range examples {
		if len(e.Features) != dim {
			return nil, fmt.Errorf("classifier: inconsistent feature dimension: %d vs %d", len(e.Features), dim)
		}
		if !e.Features.AllFinite() {
			return nil, fmt.Errorf("%w in training example for class %q", ErrNonFinite, e.Class)
		}
		if _, ok := classIdx[e.Class]; !ok {
			classIdx[e.Class] = len(classes)
			classes = append(classes, e.Class)
		}
	}
	if len(classes) == 0 {
		return nil, ErrNoClasses
	}
	if opts.SortClasses {
		sort.Strings(classes)
		for i, c := range classes {
			classIdx[c] = i
		}
	}
	nc := len(classes)

	// Per-class means.
	means := make([]linalg.Vec, nc)
	counts := make([]int, nc)
	for i := range means {
		means[i] = linalg.NewVec(dim)
	}
	for _, e := range examples {
		i := classIdx[e.Class]
		means[i].AddScaled(1, e.Features)
		counts[i]++
	}
	for i := range means {
		means[i].Scale(1 / float64(counts[i]))
	}

	// Pooled covariance: sum over classes of scatter matrices, divided by
	// (total examples - number of classes). This matches the paper's
	// "common covariance" estimate.
	cov := linalg.NewMat(dim, dim)
	for _, e := range examples {
		i := classIdx[e.Class]
		d := e.Features.Sub(means[i])
		for r := 0; r < dim; r++ {
			if d[r] == 0 {
				continue
			}
			row := cov.A[r*dim : (r+1)*dim]
			for c := 0; c < dim; c++ {
				row[c] += d[r] * d[c]
			}
		}
	}
	denom := float64(len(examples) - nc)
	if denom > 0 {
		for i := range cov.A {
			cov.A[i] /= denom
		}
	} else {
		// Degenerate: one example per class. Fall back to the identity
		// metric; the discriminant reduces to nearest-mean in Euclidean
		// distance, which is the only sensible behaviour with no
		// within-class scatter information.
		cov = linalg.Identity(dim)
	}

	inv, ridge, blend, err := invertCovariance(cov)
	if err != nil {
		return nil, fmt.Errorf("classifier: covariance inversion: %w", err)
	}

	weights := make([]linalg.Vec, nc)
	consts := make([]float64, nc)
	for i := range classes {
		weights[i] = inv.MulVec(means[i])
		consts[i] = -0.5 * weights[i].Dot(means[i])
	}

	return &Classifier{
		Classes: classes,
		Dim:     dim,
		Weights: weights,
		Consts:  consts,
		Means:   means,
		InvCov:  inv,
		Ridge:   ridge,
		Blend:   blend,
		Counts:  counts,
	}, nil
}

// invertCovariance inverts a covariance matrix robustly. Gesture features
// have wildly different scales (squared pixel speeds versus cosines), so a
// direct inversion is ill-conditioned; we instead precondition by the
// diagonal — invert the correlation matrix D^-1/2 Sigma D^-1/2 and rescale.
// Zero-variance features (e.g. every feature of the GDP "dot" class when a
// set is degenerate) and rank deficiency are absorbed in two stages, both
// substitutes for the paper's unspecified handling of singular covariance
// estimates:
//
//  1. an escalating dimensionless ridge on the correlation matrix
//     (linalg.InvertRegularized); the ridge used is returned, 0 when none
//     was needed;
//  2. if even the ridge cannot produce an invertible matrix, covariance
//     blending: interpolate the correlation matrix toward the identity,
//     (1-w)*R + w*I, with escalating w. At w=1 the metric degrades to
//     per-feature-normalized Euclidean distance, which is always
//     invertible — so training never fails on singular covariance, it
//     only loses metric fidelity, and the blend weight is recorded on the
//     classifier for diagnostics.
func invertCovariance(cov *linalg.Mat) (inv *linalg.Mat, ridge, blend float64, err error) {
	n := cov.Rows
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		v := cov.At(i, i)
		if v > 0 {
			d[i] = math.Sqrt(v)
		} else {
			d[i] = 1 // zero-variance feature; leave unscaled
		}
	}
	corr := linalg.NewMat(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			corr.Set(r, c, cov.At(r, c)/(d[r]*d[c]))
		}
	}
	invCorr, ridge, err := linalg.InvertRegularized(corr)
	if err != nil {
		for _, w := range []float64{0.25, 0.5, 1} {
			blended, berr := linalg.Invert(linalg.BlendIdentity(corr, w))
			if berr == nil {
				invCorr, ridge, blend, err = blended, 0, w, nil
				break
			}
		}
		if err != nil {
			// Unreachable in practice (w=1 inverts the identity), kept so
			// a logic regression surfaces as an error, not a bad metric.
			return nil, 0, 0, err
		}
	}
	inv = linalg.NewMat(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			inv.Set(r, c, invCorr.At(r, c)/(d[r]*d[c]))
		}
	}
	return inv, ridge, blend, nil
}

// NumClasses returns the number of classes the classifier discriminates.
func (c *Classifier) NumClasses() int { return len(c.Classes) }

// ClassIndex returns the index of the named class, or -1 when absent.
func (c *Classifier) ClassIndex(name string) int {
	for i, cl := range c.Classes {
		if cl == name {
			return i
		}
	}
	return -1
}

// checkInput validates a feature vector against the classifier's shape.
// Feature vectors ultimately come from user strokes and serialized
// models, so mismatches are errors, not panics.
func (c *Classifier) checkInput(f linalg.Vec) error {
	if len(f) != c.Dim {
		return fmt.Errorf("classifier: feature dimension %d, classifier expects %d", len(f), c.Dim)
	}
	if !f.AllFinite() {
		return ErrNonFinite
	}
	return nil
}

// Score returns the per-class discriminant values v_c(f). The slice is
// indexed like Classes.
func (c *Classifier) Score(f linalg.Vec) ([]float64, error) {
	return c.ScoreInto(f, make([]float64, len(c.Classes)))
}

// ScoreInto computes the discriminant values into out (which must have one
// element per class) and returns it. It performs no allocation beyond the
// input checks — the form used on the per-mouse-point hot path, and the
// innermost layer of the machine-checked zero-allocation decide path.
//
//glint:hotpath
func (c *Classifier) ScoreInto(f linalg.Vec, out []float64) ([]float64, error) {
	start := obs.Start(c.m.scoreNS)
	if err := c.checkInput(f); err != nil {
		c.m.errors.Inc()
		return nil, err
	}
	if len(out) != len(c.Classes) {
		c.m.errors.Inc()
		return nil, fmt.Errorf("classifier: score buffer length %d, want %d", len(out), len(c.Classes))
	}
	for i := range c.Classes {
		out[i] = c.Consts[i] + c.Weights[i].Dot(f)
	}
	obs.ObserveSince(c.m.scoreNS, start)
	return out, nil
}

// Classify returns the best class for f together with its index.
func (c *Classifier) Classify(f linalg.Vec) (string, int, error) {
	return c.ClassifyInto(f, make([]float64, len(c.Classes)))
}

// ClassifyInto is the allocation-free Classify: scores must have one
// element per class and is clobbered. It is safe for concurrent use as
// long as every goroutine supplies a distinct scores buffer (see the
// Classifier concurrency contract).
func (c *Classifier) ClassifyInto(f linalg.Vec, scores []float64) (string, int, error) {
	if _, err := c.ScoreInto(f, scores); err != nil {
		return "", -1, err
	}
	best := argmax(scores)
	c.m.classifications.Inc()
	c.m.winner(best).Inc()
	return c.Classes[best], best, nil
}

func argmax(scores []float64) int {
	best := 0
	for i, s := range scores {
		if s > scores[best] {
			best = i
		}
	}
	return best
}

// Result carries a classification together with its rejection diagnostics.
type Result struct {
	Class       string  // winning class
	Index       int     // index of the winning class
	Score       float64 // discriminant value of the winner
	Probability float64 // estimated P(winner | f) per the paper's formula
	Mahalanobis float64 // distance from f to the winner's mean
}

// Evaluate classifies f and computes the rejection diagnostics: the
// ambiguity probability estimate 1 / sum_j exp(v_j - v_winner) and the
// Mahalanobis distance to the winning class mean. Non-finite input — and,
// defensively, a non-finite winning score from a corrupt model — is an
// error: Evaluate never reports a NaN probability or distance.
func (c *Classifier) Evaluate(f linalg.Vec) (Result, error) {
	scores, err := c.Score(f)
	if err != nil {
		return Result{}, err
	}
	best := argmax(scores)
	if math.IsNaN(scores[best]) || math.IsInf(scores[best], 0) {
		return Result{}, fmt.Errorf("classifier: non-finite score for class %q", c.Classes[best])
	}
	denom := 0.0
	for _, s := range scores {
		d := s - scores[best]
		// Guard exp underflow explicitly; very negative deltas contribute 0.
		if d > -700 {
			denom += math.Exp(d)
		}
	}
	dist, err := c.Mahalanobis(f, best)
	if err != nil {
		return Result{}, err
	}
	c.m.classifications.Inc()
	c.m.winner(best).Inc()
	if 1/denom < AmbiguityThreshold {
		c.m.ambiguous.Inc()
	}
	return Result{
		Class:       c.Classes[best],
		Index:       best,
		Score:       scores[best],
		Probability: 1 / denom,
		Mahalanobis: dist,
	}, nil
}

// Mahalanobis returns the Mahalanobis distance from f to the mean of the
// class with the given index, under the pooled covariance metric.
func (c *Classifier) Mahalanobis(f linalg.Vec, classIndex int) (float64, error) {
	if err := c.checkInput(f); err != nil {
		return 0, err
	}
	if classIndex < 0 || classIndex >= len(c.Means) {
		return 0, fmt.Errorf("classifier: class index %d out of range [0,%d)", classIndex, len(c.Means))
	}
	return linalg.Mahalanobis(c.InvCov, f, c.Means[classIndex]), nil
}

// MahalanobisTo returns the Mahalanobis distance between f and an arbitrary
// point under this classifier's metric. The eager trainer uses it to
// measure subgesture distances to incomplete-set means.
func (c *Classifier) MahalanobisTo(f, point linalg.Vec) float64 {
	return linalg.Mahalanobis(c.InvCov, f, point)
}

// MeanDistance returns the Mahalanobis distance between the means of two
// classes.
func (c *Classifier) MeanDistance(i, j int) float64 {
	return linalg.Mahalanobis(c.InvCov, c.Means[i], c.Means[j])
}

// BiasClass adds delta to the constant term of the class with the given
// index. Positive delta makes the class more likely; this implements the
// paper's "differing costs of misclassification ... simply by adjusting
// the constant terms of the evaluation functions".
func (c *Classifier) BiasClass(classIndex int, delta float64) {
	c.Consts[classIndex] += delta
}

// WriteJSON serializes the classifier to w.
func (c *Classifier) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("classifier: encode: %w", err)
	}
	return nil
}

// ReadJSON deserializes a classifier from r and validates its shape.
func ReadJSON(r io.Reader) (*Classifier, error) {
	var c Classifier
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("classifier: decode: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// SaveFile writes the classifier to the named file.
func (c *Classifier) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("classifier: %w", err)
	}
	defer f.Close()
	if err := c.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a classifier from the named file.
func LoadFile(path string) (*Classifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("classifier: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}

// Validate checks the classifier's structural and numerical integrity:
// consistent per-class array shapes, a present and square inverse
// covariance, and finite weights throughout. Deserialized models must
// pass Validate before classification so a corrupt file surfaces as one
// load-time error instead of NaN scores at recognition time.
func (c *Classifier) Validate() error {
	n := len(c.Classes)
	if n == 0 {
		return errors.New("classifier: no classes")
	}
	if len(c.Weights) != n || len(c.Consts) != n || len(c.Means) != n {
		return errors.New("classifier: inconsistent per-class array lengths")
	}
	for i := range c.Weights {
		if len(c.Weights[i]) != c.Dim || len(c.Means[i]) != c.Dim {
			return fmt.Errorf("classifier: class %d vectors have wrong dimension", i)
		}
		if !c.Weights[i].AllFinite() || !c.Means[i].AllFinite() {
			return fmt.Errorf("%w: class %q has non-finite weights or means", ErrNonFinite, c.Classes[i])
		}
	}
	if !linalg.Vec(c.Consts).AllFinite() {
		return fmt.Errorf("%w: non-finite constant term", ErrNonFinite)
	}
	if c.InvCov == nil || c.InvCov.Rows != c.Dim || c.InvCov.Cols != c.Dim {
		return errors.New("classifier: missing or misshapen inverse covariance")
	}
	if !c.InvCov.AllFinite() {
		return fmt.Errorf("%w: non-finite inverse covariance", ErrNonFinite)
	}
	return nil
}
