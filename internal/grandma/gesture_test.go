package grandma

import (
	"math"
	"testing"

	"repro/internal/display"
	"repro/internal/eager"
	"repro/internal/geom"
	"repro/internal/gesture"
	"repro/internal/mathx"
	"repro/internal/raster"
	"repro/internal/recognizer"
	"repro/internal/script"
	"repro/internal/synth"
)

// trainUD returns full and eager recognizers for the U/D set plus one test
// sample of each class.
func trainUD(t *testing.T) (*recognizer.Full, *eager.Recognizer, map[string]gesture.Gesture) {
	t.Helper()
	trainSet, _ := synth.NewGenerator(synth.DefaultParams(7)).Set("train", synth.UDClasses(), 12)
	eag, _, err := eager.Train(trainSet, eager.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	testSet, _ := synth.NewGenerator(synth.DefaultParams(99)).Set("test", synth.UDClasses(), 1)
	samples := map[string]gesture.Gesture{}
	for _, e := range testSet.Examples {
		samples[e.Class] = e.Gesture
	}
	return eag.Full, eag, samples
}

type semLog struct {
	recogs []string
	manips int
	dones  int
}

func loggingSemantics(l *semLog, class string) *Semantics {
	return &Semantics{
		Recog: func(a *Attrs) any {
			l.recogs = append(l.recogs, class)
			return class
		},
		Manip: func(a *Attrs) { l.manips++ },
		Done:  func(a *Attrs) { l.dones++ },
	}
}

func newGestureSession(h *GestureHandler) *Session {
	root := NewView("window", nil)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 2000, MaxY: 2000}
	root.AddHandler(h)
	// Generous canvas: synthetic gestures are placed at random origins up
	// to roughly (400, 300).
	return NewSession(root, raster.NewCanvas(600, 400))
}

func TestMouseUpMode(t *testing.T) {
	full, _, samples := trainUD(t)
	h := NewGestureHandler(full, ModeMouseUp)
	var l semLog
	for _, c := range full.Classes() {
		h.Register(c, loggingSemantics(&l, c))
	}
	var recognized []string
	h.OnRecognized = func(class string, a *Attrs) { recognized = append(recognized, class) }
	s := newGestureSession(h)

	s.Replay(display.StrokeTrace(samples["U"].Points, display.LeftButton, 0.01))
	if len(recognized) != 1 || recognized[0] != "U" {
		t.Fatalf("recognized = %v", recognized)
	}
	// Mouse-up mode: recog fires at up; manipulation phase omitted (the
	// one manip call comes from the transition itself), done still runs.
	if len(l.recogs) != 1 || l.dones != 1 {
		t.Fatalf("recogs=%v dones=%d", l.recogs, l.dones)
	}
	if l.manips != 1 {
		t.Fatalf("manips = %d, want exactly the transition call", l.manips)
	}
	if s.Active() {
		t.Fatal("interaction leaked")
	}
}

func TestTimeoutMode(t *testing.T) {
	full, _, samples := trainUD(t)
	h := NewGestureHandler(full, ModeTimeout)
	var l semLog
	h.Register("U", loggingSemantics(&l, "U"))
	h.Register("D", loggingSemantics(&l, "D"))
	s := newGestureSession(h)

	// Draw the gesture, hold still past the timeout, then move twice more
	// (the manipulation phase) and release.
	g := samples["D"].Points
	last := g[len(g)-1]
	trace := display.StrokeTrace(g, display.LeftButton, 0)[:len(g)] // drop the auto mouse-up
	hold := last.T + DefaultTimeout + 0.05
	trace = append(trace,
		display.Event{Kind: display.MouseMove, X: last.X + 10, Y: last.Y, Time: hold + 0.02},
		display.Event{Kind: display.MouseMove, X: last.X + 20, Y: last.Y, Time: hold + 0.04},
		display.Event{Kind: display.MouseUp, X: last.X + 20, Y: last.Y, Time: hold + 0.06},
	)
	s.Replay(trace)

	if len(l.recogs) != 1 || l.recogs[0] != "D" {
		t.Fatalf("recogs = %v", l.recogs)
	}
	// Manip: once at transition + twice for the post-timeout moves.
	if l.manips != 3 {
		t.Fatalf("manips = %d, want 3", l.manips)
	}
	if l.dones != 1 {
		t.Fatalf("dones = %d", l.dones)
	}
}

func TestTimeoutDoesNotFireWhileMoving(t *testing.T) {
	full, _, samples := trainUD(t)
	h := NewGestureHandler(full, ModeTimeout)
	var l semLog
	h.Register("U", loggingSemantics(&l, "U"))
	h.Register("D", loggingSemantics(&l, "D"))
	s := newGestureSession(h)

	// Continuous movement with gaps below the timeout, then release: the
	// transition must happen at mouse-up, not mid-gesture.
	g := samples["U"].Points
	s.Replay(display.StrokeTrace(g, display.LeftButton, 0.05))
	if len(l.recogs) != 1 {
		t.Fatalf("recogs = %v", l.recogs)
	}
	// Only the transition manip.
	if l.manips != 1 {
		t.Fatalf("manips = %d; timeout fired during movement", l.manips)
	}
}

func TestEagerMode(t *testing.T) {
	_, eag, samples := trainUD(t)
	h := NewEagerGestureHandler(eag)
	var l semLog
	h.Register("U", loggingSemantics(&l, "U"))
	h.Register("D", loggingSemantics(&l, "D"))
	var firedClass string
	h.OnRecognized = func(class string, a *Attrs) {
		firedClass = class
		// At the transition the classifier must have seen only a prefix.
		if len(a.GesturePoints) >= samples["U"].Len() {
			t.Errorf("eager transition saw the whole gesture (%d points)", len(a.GesturePoints))
		}
	}
	s := newGestureSession(h)
	s.Replay(display.StrokeTrace(samples["U"].Points, display.LeftButton, 0.01))

	if firedClass != "U" {
		t.Fatalf("recognized %q", firedClass)
	}
	// Manipulation phase received the points after the transition.
	if l.manips < 2 {
		t.Fatalf("manips = %d; eager transition came too late", l.manips)
	}
	if l.dones != 1 {
		t.Fatalf("dones = %d", l.dones)
	}
}

func TestGestureAndDragCoexist(t *testing.T) {
	// The paper's §3.1 scenario: a draggable object view on top of a
	// gesture-sensitive background.
	full, _, samples := trainUD(t)
	h := NewGestureHandler(full, ModeMouseUp)
	var recognized []string
	h.OnRecognized = func(class string, a *Attrs) { recognized = append(recognized, class) }

	root := NewView("window", nil)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 2000, MaxY: 2000}
	root.AddHandler(h)
	box := NewView("box", nil)
	box.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}
	box.AddHandler(&DragHandler{})
	root.AddChild(box)
	s := NewSession(root, nil)

	// Press on the box: drag, no gesture.
	s.Replay(display.DragTrace(geom.Pt(20, 20), geom.Pt(120, 120), 5, 0, 0.2, display.LeftButton))
	if len(recognized) != 0 {
		t.Fatalf("drag was recognized as gesture: %v", recognized)
	}
	if box.Frame.MinX != 100 {
		t.Fatalf("box did not drag: %+v", box.Frame)
	}
	// Press on the background: gesture. (The samples' coordinates sit far
	// from the box.)
	s.Replay(display.StrokeTrace(samples["D"].Points.TimeShift(5), display.LeftButton, 0.01))
	if len(recognized) != 1 || recognized[0] != "D" {
		t.Fatalf("background gesture not recognized: %v", recognized)
	}
}

func TestGestureButtonPredicate(t *testing.T) {
	full, _, samples := trainUD(t)
	h := NewGestureHandler(full, ModeMouseUp)
	h.Button = display.RightButton
	fired := 0
	h.OnRecognized = func(string, *Attrs) { fired++ }
	s := newGestureSession(h)
	s.Replay(display.StrokeTrace(samples["U"].Points, display.LeftButton, 0.01))
	if fired != 0 {
		t.Fatal("left-button stroke triggered right-button gesture handler")
	}
	s.Replay(display.StrokeTrace(samples["U"].Points.TimeShift(10), display.RightButton, 0.01))
	if fired != 1 {
		t.Fatal("right-button stroke ignored")
	}
}

func TestInkDrawnDuringCollection(t *testing.T) {
	full, _, samples := trainUD(t)
	h := NewGestureHandler(full, ModeMouseUp)
	s := newGestureSession(h)
	g := samples["U"].Points
	trace := display.StrokeTrace(g, display.LeftButton, 0.05)
	// Feed all but the mouse-up; ink should be visible.
	for _, ev := range trace[:len(trace)-1] {
		s.Post(ev)
	}
	if s.Canvas.Count(s.InkGlyph) == 0 {
		t.Fatal("no ink during collection")
	}
	s.Post(trace[len(trace)-1])
	if s.Canvas.Count(s.InkGlyph) != 0 {
		t.Fatal("ink not cleared after interaction")
	}
}

func TestScriptSemanticsIntegration(t *testing.T) {
	full, _, samples := trainUD(t)
	h := NewGestureHandler(full, ModeMouseUp)

	var gotX, gotY float64
	target := script.NewDispatch("target")
	target.Bind("markX:y:", func(args []script.Value) (script.Value, error) {
		if err := script.Arity("markX:y:", args, 2); err != nil {
			return nil, err
		}
		gotX, _ = script.Num(args[0])
		gotY, _ = script.Num(args[1])
		return target, nil
	})

	var scriptErr error
	sem, err := ScriptSemantics(
		"recog = [target markX:<startX> y:<startY>]",
		"[recog markX:<currentX> y:<currentY>]",
		"nil",
		func(a *Attrs, env *script.Env) { env.SetVar("target", target) },
		func(e error) { scriptErr = e },
	)
	if err != nil {
		t.Fatal(err)
	}
	h.Register("U", sem)
	s := newGestureSession(h)
	g := samples["U"].Points
	s.Replay(display.StrokeTrace(g, display.LeftButton, 0.01))
	if scriptErr != nil {
		t.Fatal(scriptErr)
	}
	// The last manip evaluation bound <currentX>/<currentY> to the final
	// mouse position.
	end := g[len(g)-1]
	if gotX != end.X || gotY != end.Y {
		t.Errorf("final mark (%v,%v), want (%v,%v)", gotX, gotY, end.X, end.Y)
	}
}

func TestScriptSemanticsParseErrors(t *testing.T) {
	if _, err := ScriptSemantics("[", "nil", "nil", nil, nil); err == nil {
		t.Error("bad recog accepted")
	}
	if _, err := ScriptSemantics("nil", "[", "nil", nil, nil); err == nil {
		t.Error("bad manip accepted")
	}
	if _, err := ScriptSemantics("nil", "nil", "[", nil, nil); err == nil {
		t.Error("bad done accepted")
	}
}

func TestEagerHandlerConstructorPanics(t *testing.T) {
	full, _, _ := trainUD(t)
	defer func() {
		if recover() == nil {
			t.Error("NewGestureHandler(ModeEager) did not panic")
		}
	}()
	NewGestureHandler(full, ModeEager)
}

func TestTransitionModeString(t *testing.T) {
	if ModeMouseUp.String() != "mouse-up" || ModeTimeout.String() != "timeout" ||
		ModeEager.String() != "eager" || TransitionMode(9).String() != "unknown" {
		t.Error("TransitionMode.String wrong")
	}
}

func TestSameViewGestureAndDragViaButtons(t *testing.T) {
	// §3.1: "A single view (or view class) may respond to both gesture and
	// direct manipulation (say, via different mouse buttons) by
	// associating multiple handlers with the view."
	full, _, samples := trainUD(t)
	g := NewGestureHandler(full, ModeMouseUp)
	g.Button = display.LeftButton
	var recognized []string
	g.OnRecognized = func(class string, a *Attrs) { recognized = append(recognized, class) }

	root := NewView("window", nil)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 2000, MaxY: 2000}
	root.AddHandler(g)
	root.AddHandler(&DragHandler{Button: display.RightButton})
	s := NewSession(root, nil)

	// Left button: gesture.
	s.Replay(display.StrokeTrace(samples["U"].Points, display.LeftButton, 0.01))
	if len(recognized) != 1 || recognized[0] != "U" {
		t.Fatalf("left-button gesture: %v", recognized)
	}
	// Right button on the same view: drag (moves the whole window view).
	before := root.Frame
	s.Replay(display.DragTrace(geom.Pt(100, 100), geom.Pt(150, 130), 4, 20, 0.2, display.RightButton))
	if root.Frame == before {
		t.Fatal("right-button drag did not move the view")
	}
	if len(recognized) != 1 {
		t.Fatalf("drag triggered the gesture handler: %v", recognized)
	}
}

func TestDifferentViewClassesDifferentGestureSets(t *testing.T) {
	// §3.1: "views of different classes may respond to different sets of
	// gestures by associating each view class with a different gesture
	// handler."
	full, _, samples := trainUD(t)

	var leftEvents, rightEvents []string
	leftHandler := NewGestureHandler(full, ModeMouseUp)
	leftHandler.OnRecognized = func(class string, a *Attrs) { leftEvents = append(leftEvents, class) }
	rightHandler := NewGestureHandler(full, ModeMouseUp)
	rightHandler.OnRecognized = func(class string, a *Attrs) { rightEvents = append(rightEvents, class) }

	leftClass := NewViewClass("leftPane", nil)
	leftClass.AddHandler(leftHandler)
	rightClass := NewViewClass("rightPane", nil)
	rightClass.AddHandler(rightHandler)

	root := NewView("root", nil)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 2000, MaxY: 2000}
	left := NewView("left", leftClass)
	left.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 2000}
	right := NewView("right", rightClass)
	right.Frame = geom.Rect{MinX: 1000, MinY: 0, MaxX: 2000, MaxY: 2000}
	root.AddChild(left)
	root.AddChild(right)
	s := NewSession(root, nil)

	// A gesture drawn in the left pane goes to the left handler only. The
	// synthetic samples land around x in [100,500]; shift a copy for the
	// right pane.
	s.Replay(display.StrokeTrace(samples["U"].Points, display.LeftButton, 0.01))
	rightStroke := samples["D"].Points.Translate(1100, 0).TimeShift(10)
	s.Replay(display.StrokeTrace(rightStroke, display.LeftButton, 0.01))

	if len(leftEvents) != 1 || leftEvents[0] != "U" {
		t.Errorf("left pane events = %v", leftEvents)
	}
	if len(rightEvents) != 1 || rightEvents[0] != "D" {
		t.Errorf("right pane events = %v", rightEvents)
	}
}

func TestAttrsHelpers(t *testing.T) {
	a := &Attrs{GesturePoints: geom.Path{
		{X: 0, Y: 0, T: 0}, {X: 10, Y: 0, T: 0.02}, {X: 10, Y: 10, T: 0.04},
	}}
	// Initial angle: from the first to the third point, (10,10) direction.
	want := math.Atan2(10, 10)
	if got := a.InitialAngle(); !mathx.ApproxEqual(got, want, 1e-9) {
		t.Errorf("InitialAngle = %v, want %v", got, want)
	}
	if got := a.GestureLength(); got != 20 {
		t.Errorf("GestureLength = %v", got)
	}
	short := &Attrs{GesturePoints: geom.Path{{X: 0, Y: 0, T: 0}}}
	if short.InitialAngle() != 0 {
		t.Error("short gesture initial angle should be 0")
	}
}

func TestHandlerClasses(t *testing.T) {
	full, eag, _ := trainUD(t)
	h := NewGestureHandler(full, ModeMouseUp)
	if len(h.Classes()) != 2 {
		t.Errorf("Classes = %v", h.Classes())
	}
	he := NewEagerGestureHandler(eag)
	if len(he.Classes()) != 2 {
		t.Errorf("eager Classes = %v", he.Classes())
	}
}

func TestRejectionInEagerMode(t *testing.T) {
	// Rejection thresholds also apply in eager mode: when the full
	// evaluation rejects, no semantics run even if the stream decided.
	_, eag, samples := trainUD(t)
	h := NewEagerGestureHandler(eag)
	h.MinProbability = 1.1 // reject everything
	rejected := 0
	h.OnRejected = func(a *Attrs, prob, dist float64) { rejected++ }
	recognized := 0
	h.OnRecognized = func(string, *Attrs) { recognized++ }
	s := newGestureSession(h)
	s.Replay(display.StrokeTrace(samples["U"].Points, display.LeftButton, 0.01))
	if rejected != 1 || recognized != 0 {
		t.Fatalf("rejected=%d recognized=%d", rejected, recognized)
	}
}

func TestCustomTimeoutValue(t *testing.T) {
	full, _, samples := trainUD(t)
	h := NewGestureHandler(full, ModeTimeout)
	h.Timeout = 0.5
	var l semLog
	h.Register("U", loggingSemantics(&l, "U"))
	h.Register("D", loggingSemantics(&l, "D"))
	s := newGestureSession(h)

	g := samples["U"].Points
	last := g[len(g)-1]
	trace := display.StrokeTrace(g, display.LeftButton, 0)[:len(g)]
	// A pause longer than the default 200 ms but shorter than the custom
	// 500 ms must NOT transition; the move after it is still collection.
	trace = append(trace,
		display.Event{Kind: display.MouseMove, X: last.X + 5, Y: last.Y, Time: last.T + 0.3},
		display.Event{Kind: display.MouseUp, X: last.X + 5, Y: last.Y, Time: last.T + 0.35},
	)
	s.Replay(trace)
	// Transition happened only at mouse-up: exactly one manip call.
	if l.manips != 1 {
		t.Fatalf("manips = %d; custom timeout ignored", l.manips)
	}
}

func TestEndActiveNoop(t *testing.T) {
	root := NewView("root", nil)
	s := NewSession(root, nil)
	s.EndActive() // must not panic with no active interaction
	if s.Active() {
		t.Fatal("EndActive created an interaction")
	}
}

func TestScriptSemanticsExtendedAttributes(t *testing.T) {
	full, _, samples := trainUD(t)
	h := NewGestureHandler(full, ModeMouseUp)
	var got = map[string]float64{}
	sink := script.NewDispatch("sink")
	sink.Bind("len:dur:endX:ang:", func(args []script.Value) (script.Value, error) {
		got["length"], _ = script.Num(args[0])
		got["duration"], _ = script.Num(args[1])
		got["endX"], _ = script.Num(args[2])
		got["initialAngle"], _ = script.Num(args[3])
		return nil, nil
	})
	sem, err := ScriptSemantics(
		"[sink len:<length> dur:<duration> endX:<endX> ang:<initialAngle>]",
		"nil", "nil",
		func(a *Attrs, env *script.Env) { env.SetVar("sink", sink) },
		func(e error) { t.Errorf("semantics error: %v", e) },
	)
	if err != nil {
		t.Fatal(err)
	}
	h.Register("U", sem)
	s := newGestureSession(h)
	g := samples["U"].Points
	s.Replay(display.StrokeTrace(g, display.LeftButton, 0.01))
	if got["length"] <= 0 || got["duration"] <= 0 {
		t.Errorf("attrs: %+v", got)
	}
	if got["endX"] != g[len(g)-1].X {
		t.Errorf("endX = %v, want %v", got["endX"], g[len(g)-1].X)
	}
}

func TestBiasClassAgainstDestructiveGesture(t *testing.T) {
	// §4.2's unequal misclassification costs: bias the classifier away
	// from a "grave error" class. A strong negative bias on U makes every
	// stroke classify as D; a borderline stroke needs stronger evidence to
	// be U.
	full, _, samples := trainUD(t)
	h := NewGestureHandler(full, ModeMouseUp)
	var got []string
	h.OnRecognized = func(class string, a *Attrs) { got = append(got, class) }
	s := newGestureSession(h)

	if !h.BiasClass("U", -1e9) {
		t.Fatal("BiasClass failed")
	}
	if h.BiasClass("nonesuch", 1) {
		t.Fatal("unknown class accepted")
	}
	s.Replay(display.StrokeTrace(samples["U"].Points, display.LeftButton, 0.01))
	if len(got) != 1 || got[0] != "U" {
		// With the bias, the U stroke must NOT classify as U.
		if got[0] == "U" {
			t.Fatalf("bias ignored: %v", got)
		}
	}
	if got[0] != "D" {
		t.Fatalf("expected D under extreme anti-U bias, got %v", got)
	}
}
