package script_test

import (
	"fmt"

	"repro/internal/script"
)

// Evaluating the paper's exact rectangle semantics against stub objects.
func Example() {
	// A stub rectangle that records its endpoints.
	rect := script.NewDispatch("rect")
	rect.Bind("setEndpoint:x:y:", func(args []script.Value) (script.Value, error) {
		i, _ := script.Num(args[0])
		x, _ := script.Num(args[1])
		y, _ := script.Num(args[2])
		fmt.Printf("endpoint %d = (%g, %g)\n", int(i), x, y)
		return rect, nil
	})
	view := script.NewDispatch("view")
	view.Bind("createRect", func(args []script.Value) (script.Value, error) {
		return rect, nil
	})

	env := script.NewEnv()
	env.SetVar("view", view)
	env.SetAttr("startX", 10.0)
	env.SetAttr("startY", 20.0)

	recog := script.MustParse("recog = [[view createRect] setEndpoint:0 x:<startX> y:<startY>]")
	if _, err := recog.Eval(env); err != nil {
		panic(err)
	}

	// Each manipulation point re-binds <currentX>/<currentY> and
	// re-evaluates the manip expression.
	manip := script.MustParse("[recog setEndpoint:1 x:<currentX> y:<currentY>]")
	env.SetAttr("currentX", 110.0)
	env.SetAttr("currentY", 95.0)
	if _, err := manip.Eval(env); err != nil {
		panic(err)
	}
	// Output:
	// endpoint 0 = (10, 20)
	// endpoint 1 = (110, 95)
}

// Programs can be formatted back to canonical source.
func ExampleProgram_Format() {
	p := script.MustParse("x=5;[obj doIt:x with:<attr>]")
	fmt.Println(p.Format())
	// Output:
	// x = 5; [obj doIt:x with:<attr>]
}
