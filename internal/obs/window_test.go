package obs_test

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// stepClock is a manual test clock satisfying obs.Clock: Now returns the
// stored instant, Advance moves it. Atomic so observing goroutines can
// race Advance safely.
type stepClock struct{ ns atomic.Int64 }

func newStepClock(at time.Time) *stepClock {
	c := &stepClock{}
	c.ns.Store(at.UnixNano())
	return c
}

func (c *stepClock) Now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *stepClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

// base is a fixed, positive-epoch test instant aligned to a slot
// boundary so advancing by whole slots lands exactly on new epochs.
var base = time.Unix(1_700_000_000, 0)

func TestWindowedCounterRotation(t *testing.T) {
	clk := newStepClock(base)
	reg := obs.New()
	reg.SetClock(clk)
	w := reg.WindowedCounter("win", 10*time.Second, 6) // 1-minute ring

	w.Add(3)
	w.Inc()
	clk.Advance(10 * time.Second)
	w.Add(5)

	snap := reg.Snapshot().Window("win")
	if snap.Name != "win" || snap.Slots != 6 || snap.SlotNS != int64(10*time.Second) {
		t.Fatalf("snapshot geometry = %+v", snap)
	}
	if got := snap.Total(20 * time.Second); got != 9 {
		t.Errorf("Total(20s) = %d, want 9", got)
	}
	if got := snap.Total(10 * time.Second); got != 5 {
		t.Errorf("Total(10s) = %d, want 5 (only the current slot)", got)
	}
	if got := snap.Rate(20 * time.Second); got != 9.0/20 {
		t.Errorf("Rate(20s) = %g, want %g", got, 9.0/20)
	}

	// A full ring revolution later the old slots are reclaimed lazily:
	// totals over the whole ring must only see the new data.
	clk.Advance(60 * time.Second)
	w.Add(7)
	snap = reg.Snapshot().Window("win")
	if got := snap.Total(time.Minute); got != 7 {
		t.Errorf("Total(1m) after revolution = %d, want 7", got)
	}
}

func TestWindowedCounterCovered(t *testing.T) {
	clk := newStepClock(base)
	reg := obs.New()
	reg.SetClock(clk)
	w := reg.WindowedCounter("win", 10*time.Second, 6)
	w.Inc()
	snap := reg.Snapshot().Window("win")

	// Sub-slot windows round up to one slot; ring-exceeding windows are
	// capped at the ring span (how the SLO engine evaluates a 6h window
	// against a 1m ring).
	if got := snap.Covered(3 * time.Second); got != 10*time.Second {
		t.Errorf("Covered(3s) = %v, want 10s", got)
	}
	if got := snap.Covered(25 * time.Second); got != 30*time.Second {
		t.Errorf("Covered(25s) = %v, want 30s (ceil to slot)", got)
	}
	if got := snap.Covered(6 * time.Hour); got != time.Minute {
		t.Errorf("Covered(6h) = %v, want 1m (capped at ring)", got)
	}
}

func TestWindowedHistogramMerge(t *testing.T) {
	clk := newStepClock(base)
	reg := obs.New()
	reg.SetClock(clk)
	bounds := []float64{10, 100, 1000}
	w := reg.WindowedHistogram("win", bounds, 10*time.Second, 6)

	w.Observe(5)  // bucket 0
	w.Observe(50) // bucket 1
	clk.Advance(10 * time.Second)
	w.Observe(500)  // bucket 2
	w.Observe(5000) // overflow

	snap := reg.Snapshot().Window("win")
	m := snap.Merge(20 * time.Second)
	if m.Count != 4 {
		t.Fatalf("merged Count = %d, want 4", m.Count)
	}
	if want := []int64{1, 1, 1, 1}; len(m.Counts) != 4 || m.Counts[0] != want[0] || m.Counts[1] != want[1] || m.Counts[2] != want[2] || m.Counts[3] != want[3] {
		t.Errorf("merged Counts = %v, want %v", m.Counts, want)
	}
	if m.Min != 5 || m.Max != 5000 {
		t.Errorf("merged Min/Max = %g/%g, want 5/5000", m.Min, m.Max)
	}
	if m.Sum != 5555 {
		t.Errorf("merged Sum = %g, want 5555", m.Sum)
	}
	// The one-slot merge only sees the current slot.
	m1 := snap.Merge(10 * time.Second)
	if m1.Count != 2 || m1.Min != 500 || m1.Max != 5000 {
		t.Errorf("one-slot merge = count %d min %g max %g, want 2/500/5000", m1.Count, m1.Min, m1.Max)
	}
	// Quantiles work on the merged view.
	if q := m.Quantile(0.5); q < 5 || q > 5000 {
		t.Errorf("merged Quantile(0.5) = %g out of observed range", q)
	}
}

func TestWindowedHistogramEmptyMerge(t *testing.T) {
	reg := obs.New()
	reg.SetClock(newStepClock(base))
	reg.WindowedHistogram("win", []float64{1, 2}, 10*time.Second, 6)
	m := reg.Snapshot().Window("win").Merge(time.Minute)
	if m.Count != 0 || m.Min != 0 || m.Max != 0 || m.Sum != 0 {
		t.Errorf("empty merge = %+v, want zeroed", m)
	}
	if m.Quantile(0.99) != 0 {
		t.Errorf("empty merge Quantile = %g, want 0", m.Quantile(0.99))
	}
}

// TestWindowSnapshotOfMissingInstrument pins the Snapshot.Window lookup
// contract: absent names return a zero WindowSnap whose aggregations are
// all zero, so SLO evaluation over an instrument that never registered
// degrades to "no data", not a panic.
func TestWindowSnapshotOfMissingInstrument(t *testing.T) {
	snap := obs.New().Snapshot().Window("nope")
	if snap.Slots != 0 || snap.Total(time.Minute) != 0 || snap.Rate(time.Minute) != 0 {
		t.Errorf("missing window = %+v, want zero", snap)
	}
	if m := snap.Merge(time.Minute); m.Count != 0 {
		t.Errorf("missing window merge count = %d, want 0", m.Count)
	}
}

// TestWindowedKindMismatch pins the registration contract: a name
// registered as one windowed kind returns nil (the disabled instrument)
// from the other accessor rather than a second instrument.
func TestWindowedKindMismatch(t *testing.T) {
	reg := obs.New()
	if reg.WindowedCounter("x", 0, 0) == nil {
		t.Fatal("first registration returned nil")
	}
	h := reg.WindowedHistogram("x", nil, 0, 0)
	if h != nil {
		t.Errorf("mismatched accessor returned %v, want nil", h)
	}
	h.Observe(1) // the nil handle must still be safe to use
}

// TestWindowedConcurrentRotation races many observers against a clock
// that keeps advancing across slot boundaries; the invariant is only
// that nothing tears and the final ring total never exceeds what was
// added (boundary races may drop, never double).
func TestWindowedConcurrentRotation(t *testing.T) {
	clk := newStepClock(base)
	reg := obs.New()
	reg.SetClock(clk)
	w := reg.WindowedCounter("win", time.Millisecond, 8)

	const goroutines, each = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				w.Inc()
				if i%100 == 0 {
					clk.Advance(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	total := reg.Snapshot().Window("win").Total(8 * time.Millisecond)
	if total > goroutines*each {
		t.Errorf("ring total %d exceeds %d additions", total, goroutines*each)
	}
}

// TestWindowedEnabledPathZeroAlloc is the acceptance gate for "the
// decide/submit paths stay 0 allocs/op with windowing enabled": the
// windowed Add/Observe enabled paths themselves must not allocate.
func TestWindowedEnabledPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	reg := obs.New()
	reg.SetClock(newStepClock(base))
	wc := reg.WindowedCounter("c", 0, 0)
	wh := reg.WindowedHistogram("h", obs.LatencyBuckets(), 0, 0)
	if n := testing.AllocsPerRun(200, func() { wc.Add(1) }); n != 0 {
		t.Errorf("WindowedCounter.Add allocates %g/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { wh.Observe(123456) }); n != 0 {
		t.Errorf("WindowedHistogram.Observe allocates %g/op, want 0", n)
	}
}

func TestGauge(t *testing.T) {
	reg := obs.New()
	g := reg.Gauge("g")
	g.Set(2.5)
	g.Add(-0.5)
	if v := g.Value(); v != 2 {
		t.Errorf("Value = %g, want 2", v)
	}
	snap := reg.Snapshot()
	if len(snap.Gauges) != 1 || snap.Gauges[0].Name != "g" || snap.Gauges[0].Value != 2 {
		t.Errorf("gauge snapshot = %+v", snap.Gauges)
	}
	var nilG *obs.Gauge
	nilG.Set(1)
	nilG.Add(1)
	if nilG.Value() != 0 {
		t.Error("nil gauge must read 0")
	}
}

func TestHistogramExemplar(t *testing.T) {
	reg := obs.New()
	h := reg.Histogram("h", []float64{10, 100})
	h.ObserveExemplar(5, 11, 3)   // bucket 0
	h.ObserveExemplar(500, 22, 0) // overflow bucket
	h.ObserveExemplar(7, 33, 4)   // bucket 0 again: replaces the first

	snap := reg.Snapshot().Histograms[0]
	if snap.Count != 3 {
		t.Fatalf("Count = %d, want 3", snap.Count)
	}
	if len(snap.Exemplars) != 2 {
		t.Fatalf("Exemplars = %+v, want 2 (latest per occupied bucket)", snap.Exemplars)
	}
	first, last := snap.Exemplars[0], snap.Exemplars[1]
	if first.Bucket != 0 || first.Value != 7 || first.SpanID != 33 || first.Seq != 4 {
		t.Errorf("bucket-0 exemplar = %+v, want latest (value 7, span 33, seq 4)", first)
	}
	if last.Bucket != 2 || last.Value != 500 || last.SpanID != 22 || last.Seq != 0 {
		t.Errorf("overflow exemplar = %+v", last)
	}
	if first.At == 0 || last.At == 0 {
		t.Error("exemplar record time not stamped")
	}
}

// TestSnapshotJSONRoundTrip guards the wire shape gtop depends on: a
// Snapshot with gauges, windows, and exemplars must survive a JSON
// round trip structurally intact.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	clk := newStepClock(base)
	reg := obs.New()
	reg.SetClock(clk)
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1.5)
	reg.Histogram("h", []float64{10}).ObserveExemplar(5, 9, 1)
	reg.WindowedCounter("wc", 10*time.Second, 6).Add(2)
	reg.WindowedHistogram("wh", []float64{10}, 10*time.Second, 6).Observe(3)

	raw, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back obs.Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Window("wc").Total(time.Minute) != 2 {
		t.Errorf("windowed counter lost in round trip: %+v", back.Window("wc"))
	}
	if back.Window("wh").Merge(time.Minute).Count != 1 {
		t.Errorf("windowed histogram lost in round trip: %+v", back.Window("wh"))
	}
	if len(back.Histograms) != 1 || len(back.Histograms[0].Exemplars) != 1 {
		t.Errorf("exemplars lost in round trip: %+v", back.Histograms)
	}
}

// TestObserveSinceWindowed checks the dual-observation helper keeps the
// cumulative and windowed views in lockstep, and stays a no-op on the
// zero start time.
func TestObserveSinceWindowed(t *testing.T) {
	reg := obs.New()
	h := reg.Histogram("h", obs.LatencyBuckets())
	w := reg.WindowedHistogram("w", obs.LatencyBuckets(), 0, 0)
	obs.ObserveSinceWindowed(h, w, time.Now().Add(-time.Millisecond))
	if h.Count() != 1 {
		t.Errorf("cumulative count = %d, want 1", h.Count())
	}
	if got := reg.Snapshot().Window("w").Total(time.Minute); got != 1 {
		t.Errorf("windowed count = %d, want 1", got)
	}
	obs.ObserveSinceWindowed(h, w, time.Time{})
	if h.Count() != 1 {
		t.Error("zero start must be a no-op")
	}
}
