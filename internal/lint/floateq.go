package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Floateq reports == and != between floating-point expressions. Exact
// equality on computed floats is almost always a numerical bug in this
// codebase — classifier scores, Mahalanobis distances, and feature values
// all accumulate rounding error. Three idioms are exempt by design:
//
//   - x != x and x == x: the portable NaN test;
//   - comparison against an exact floating constant zero: a sentinel or
//     sparsity test (e.g. skipping zero matrix entries), not an
//     approximate-equality check;
//   - _test.go files, where exact comparison against golden values is
//     legitimate.
//
// Anything else needs an epsilon comparison (see internal/mathx) or an
// audited //lint:ignore floateq directive.
var Floateq = &Analyzer{
	Name: "floateq",
	Doc: "flag == and != on float operands outside _test.go files; exempts the x != x NaN idiom and " +
		"comparisons with constant zero. Use an epsilon comparison or //lint:ignore floateq <reason>.",
	Run: runFloateq,
}

func runFloateq(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) && !isFloat(pass, be.Y) {
				return true
			}
			if isZeroConst(pass, be.X) || isZeroConst(pass, be.Y) {
				return true
			}
			if sameExpr(be.X, be.Y) {
				return true // NaN idiom: x != x
			}
			pass.Reportf(be.OpPos, "%s on float operands; use an epsilon comparison", be.Op)
			return true
		})
	}
	return nil
}

func isFloat(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Sign(tv.Value) == 0
}

// sameExpr reports whether two expressions are syntactically identical
// simple operands (identifiers, selectors, or index expressions over
// such), which covers the x != x NaN-test idiom.
func sameExpr(a, b ast.Expr) bool {
	switch av := a.(type) {
	case *ast.Ident:
		bv, ok := b.(*ast.Ident)
		return ok && av.Name == bv.Name
	case *ast.SelectorExpr:
		bv, ok := b.(*ast.SelectorExpr)
		return ok && av.Sel.Name == bv.Sel.Name && sameExpr(av.X, bv.X)
	case *ast.IndexExpr:
		bv, ok := b.(*ast.IndexExpr)
		return ok && sameExpr(av.X, bv.X) && sameExpr(av.Index, bv.Index)
	case *ast.ParenExpr:
		return sameExpr(av.X, b)
	}
	if bp, ok := b.(*ast.ParenExpr); ok {
		return sameExpr(a, bp.X)
	}
	return false
}
