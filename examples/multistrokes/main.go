// Multistrokes: the paper's other section-6 extension. GRANDMA's
// recognizer is single-stroke only — "many common marks (e.g. 'X' and
// '=>') cannot be used as gestures" — so multi-stroke marks are built on
// top: strokes drawn close together in time and space are grouped, each is
// classified with the single-stroke machinery, and the class sequence is
// matched against mark definitions.
package main

import (
	"fmt"
	"log"

	rubine "repro"
)

func main() {
	// A tiny single-stroke alphabet: the four stroke directions marks are
	// made of.
	alphabet := []rubine.GestureClass{
		{Name: "slash", Skeleton: []rubine.Point{{X: 0, Y: 60}, {X: 55, Y: 0}}, DecisionVertex: -1},
		{Name: "backslash", Skeleton: []rubine.Point{{X: 0, Y: 0}, {X: 55, Y: 60}}, DecisionVertex: -1},
		{Name: "hbar", Skeleton: []rubine.Point{{X: 0, Y: 0}, {X: 60, Y: 0}}, DecisionVertex: -1},
		{Name: "chevron", Skeleton: []rubine.Point{{X: 0, Y: -25}, {X: 30, Y: 0}, {X: 0, Y: 25}}, DecisionVertex: 1},
	}
	params := rubine.DefaultGenParams(4)
	params.CornerLoopProb = 0
	gen := rubine.NewGenerator(params)
	train := &rubine.Set{Name: "strokes"}
	for _, c := range alphabet {
		for i := 0; i < 12; i++ {
			s := gen.Sample(c)
			train.Add(c.Name, s.G)
		}
	}
	single, err := rubine.TrainFull(train, rubine.DefaultTrainOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Multi-stroke marks over that alphabet.
	marks := rubine.NewMultiStroke(single, rubine.DefaultMultiStrokeConfig())
	for _, d := range []rubine.MultiStrokeDefinition{
		{Name: "X", Strokes: []string{"slash", "backslash"}, RequireOverlap: true},
		{Name: "=>", Strokes: []string{"hbar", "chevron"}},
		{Name: "equals", Strokes: []string{"hbar", "hbar"}},
	} {
		if err := marks.Define(d); err != nil {
			log.Fatal(err)
		}
	}

	// Draw: an X, then (after a pause) an arrow, then an equals sign.
	at := func(name string, origin rubine.Point, t0 float64) rubine.Gesture {
		for _, c := range alphabet {
			if c.Name == name {
				s := gen.SampleAt(c, origin)
				return rubine.NewGesture(s.G.Points.TimeShift(t0 - s.G.Points[0].T))
			}
		}
		panic("unknown stroke " + name)
	}
	var strokes []rubine.Gesture
	add := func(g rubine.Gesture) { strokes = append(strokes, g) }

	x1 := at("slash", rubine.Pt(100, 100), 0)
	add(x1)
	add(at("backslash", rubine.Pt(100, 70), x1.End().T+0.25))

	a1 := at("hbar", rubine.Pt(300, 100), x1.End().T+2)
	add(a1)
	add(at("chevron", rubine.Pt(360, 100), a1.End().T+0.25))

	e1 := at("hbar", rubine.Pt(100, 300), a1.End().T+3)
	add(e1)
	add(at("hbar", rubine.Pt(100, 318), e1.End().T+0.25))

	recognized, err := marks.Recognize(strokes)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range recognized {
		name := m.Name
		if name == "" {
			name = "(unmatched)"
		}
		fmt.Printf("mark %-8s strokes=%v at [%.0f,%.0f..%.0f,%.0f]\n",
			name, m.Classes, m.Bounds.MinX, m.Bounds.MinY, m.Bounds.MaxX, m.Bounds.MaxY)
	}
}
