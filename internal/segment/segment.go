// Package segment addresses the paper's last future-work item: "Further
// work is needed to utilize devices, such as the DataGlove, which have no
// explicit signaling with which to indicate the start of a gesture."
// Without a button press, stroke boundaries must be inferred from the
// motion itself.
//
// The segmenter uses dwell detection — the same physical-relaxation cue
// the paper observes in button-based gesturing ("the gesture ends when the
// user relaxes physically"): sustained low speed ends a stroke, motion
// after a dwell starts the next, and a sampling gap (the hand leaving the
// sensor's field of view) ends one unconditionally. Completed strokes feed
// straight into the ordinary recognizers.
package segment

import (
	"math"

	"repro/internal/geom"
	"repro/internal/gesture"
)

// Options tunes the segmenter. Zero values take the documented defaults.
type Options struct {
	// SpeedThreshold is the speed, in px/s, below which the device is
	// considered dwelling (default 40).
	SpeedThreshold float64
	// DwellTime is how long a dwell must last, in seconds, to terminate
	// the stroke (default 0.15 — under the 200 ms interaction timeout, so
	// glove dwells feel like mouse holds).
	DwellTime float64
	// GapTime is the sampling gap, in seconds, that unconditionally
	// terminates a stroke (default 0.25).
	GapTime float64
	// MinPoints discards completed strokes shorter than this (default 4,
	// matching the eager recognizer's minimum subgesture).
	MinPoints int
}

func (o Options) withDefaults() Options {
	if o.SpeedThreshold <= 0 {
		o.SpeedThreshold = 40
	}
	if o.DwellTime <= 0 {
		o.DwellTime = 0.15
	}
	if o.GapTime <= 0 {
		o.GapTime = 0.25
	}
	if o.MinPoints <= 0 {
		o.MinPoints = 4
	}
	return o
}

// Segmenter turns a continuous point stream into strokes. It is a small
// state machine: ACTIVE while a stroke is being collected, IDLE while the
// device dwells between strokes; a new stroke begins only when motion
// resumes, so neither the dwell tail nor the inter-stroke hop contaminates
// the strokes handed to the recognizer.
type Segmenter struct {
	opts Options

	cur        geom.Path
	last       geom.TimedPoint
	haveLast   bool
	active     bool
	dwellStart float64 // time the current dwell began; NaN when moving
	dwellCut   int     // index into cur where the dwell began
}

// New returns a segmenter.
func New(opts Options) *Segmenter {
	return &Segmenter{opts: opts.withDefaults(), dwellStart: math.NaN()}
}

// Add feeds one sample from the continuous stream. When the sample
// completes a stroke (by dwell or gap), that stroke is returned; otherwise
// nil. The returned stroke never includes the dwell tail.
func (s *Segmenter) Add(p geom.TimedPoint) *gesture.Gesture {
	if !s.haveLast {
		s.haveLast = true
		s.last = p
		s.cur = geom.Path{p}
		s.active = true
		return nil
	}
	dt := p.T - s.last.T
	speed := math.Inf(1)
	if dt > 0 {
		speed = p.Point().Dist(s.last.Point()) / dt
	}
	s.last = p

	if dt > s.opts.GapTime {
		// The hand left the field of view: close the stroke as-is and
		// start fresh at the reappearance point.
		var done *gesture.Gesture
		if s.active {
			n := len(s.cur)
			if !math.IsNaN(s.dwellStart) {
				n = s.dwellCut
			}
			done = s.finish(n)
		}
		s.cur = geom.Path{p}
		s.active = true
		s.dwellStart = math.NaN()
		return done
	}

	if !s.active {
		if speed >= s.opts.SpeedThreshold {
			// Motion resumed: a new stroke starts here.
			s.active = true
			s.cur = geom.Path{p}
			s.dwellStart = math.NaN()
		}
		return nil
	}

	if speed < s.opts.SpeedThreshold {
		if math.IsNaN(s.dwellStart) {
			s.dwellStart = s.cur[len(s.cur)-1].T
			s.dwellCut = len(s.cur)
		}
		if p.T-s.dwellStart >= s.opts.DwellTime {
			// Dwell long enough: emit the pre-dwell stroke and go idle.
			done := s.finish(s.dwellCut)
			s.cur = nil
			s.active = false
			s.dwellStart = math.NaN()
			return done
		}
	} else {
		s.dwellStart = math.NaN()
	}

	s.cur = append(s.cur, p)
	return nil
}

// finish packages the first n collected points as a stroke, or nil when
// too short.
func (s *Segmenter) finish(n int) *gesture.Gesture {
	if n > len(s.cur) {
		n = len(s.cur)
	}
	if n < s.opts.MinPoints {
		return nil
	}
	g := gesture.New(s.cur[:n:n])
	return &g
}

// Flush terminates the stream, returning any in-progress stroke.
func (s *Segmenter) Flush() *gesture.Gesture {
	var done *gesture.Gesture
	if s.active {
		n := len(s.cur)
		if !math.IsNaN(s.dwellStart) {
			n = s.dwellCut
		}
		done = s.finish(n)
	}
	s.cur = nil
	s.haveLast = false
	s.active = false
	s.dwellStart = math.NaN()
	return done
}

// Segment is the batch convenience: run a whole stream and return every
// stroke.
func Segment(stream geom.Path, opts Options) []gesture.Gesture {
	s := New(opts)
	var out []gesture.Gesture
	for _, p := range stream {
		if g := s.Add(p); g != nil {
			out = append(out, *g)
		}
	}
	if g := s.Flush(); g != nil {
		out = append(out, *g)
	}
	return out
}
