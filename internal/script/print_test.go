package script

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFormatKnown(t *testing.T) {
	cases := map[string]string{
		"x = 5; x":          "x = 5; x",
		"nil":               "nil",
		"[view createRect]": "[view createRect]",
		"recog=[[view createRect] setEndpoint:0 x:<startX> y:<startY>]": "recog = [[view createRect] setEndpoint:0 x:<startX> y:<startY>]",
		`"he said \"hi\""`: `"he said \"hi\""`,
		"-3.5":             "-3.5",
	}
	for src, want := range cases {
		p := MustParse(src)
		if got := p.Format(); got != want {
			t.Errorf("Format(%q) = %q, want %q", src, got, want)
		}
	}
}

func TestFormatParsesBack(t *testing.T) {
	srcs := []string{
		"x = 5; y = [calc addX:x y:2]; [y total]",
		"[nil foo]",
		`[view createText:"label"]`,
		"recog = [[view createRect] setEndpoint:0 x:<startX> y:<startY>]; [recog moveToX:1 y:2]",
	}
	for _, src := range srcs {
		p1 := MustParse(src)
		p2, err := Parse(p1.Format())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", src, p1.Format(), err)
		}
		if !reflect.DeepEqual(p1.Stmts, p2.Stmts) {
			t.Errorf("round trip changed AST for %q:\n%q", src, p1.Format())
		}
	}
}

// genExpr builds a random AST of bounded depth.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(5) {
		case 0:
			return &NumLit{Value: float64(rng.Intn(2000)-1000) / 8}
		case 1:
			return &StrLit{Value: randIdent(rng) + `"q\` + randIdent(rng)}
		case 2:
			return &NilLit{}
		case 3:
			return &VarRef{Name: randIdent(rng)}
		default:
			return &AttrRef{Name: randIdent(rng)}
		}
	}
	if rng.Intn(3) == 0 {
		return genExpr(rng, 0)
	}
	// Message send.
	recv := genExpr(rng, depth-1)
	if rng.Intn(2) == 0 {
		return &Msg{Recv: recv, Selector: randIdent(rng)}
	}
	n := rng.Intn(3) + 1
	sel := ""
	args := make([]Expr, 0, n)
	for i := 0; i < n; i++ {
		sel += randIdent(rng) + ":"
		args = append(args, genExpr(rng, depth-1))
	}
	return &Msg{Recv: recv, Selector: sel, Args: args}
}

func randIdent(rng *rand.Rand) string {
	letters := "abcdefgXYZ_"
	n := rng.Intn(6) + 1
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

func TestFormatRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := &Program{}
		n := rng.Intn(3) + 1
		for i := 0; i < n; i++ {
			st := Stmt{Expr: genExpr(rng, 3)}
			if rng.Intn(2) == 0 {
				st.Assign = randIdent(rng)
			}
			prog.Stmts = append(prog.Stmts, st)
		}
		src := prog.Format()
		p2, err := Parse(src)
		if err != nil {
			t.Logf("generated source failed to parse: %q: %v", src, err)
			return false
		}
		if !reflect.DeepEqual(prog.Stmts, p2.Stmts) {
			t.Logf("AST mismatch for %q", src)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
