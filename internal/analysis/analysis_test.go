package analysis

import (
	"strings"
	"testing"

	"repro/internal/synth"
)

func TestNotesSetFlagged(t *testing.T) {
	// The analyzer must detect figure 8's pathology automatically: the
	// prefix classes are never eagerly recognized.
	set, _ := synth.NewGenerator(synth.DefaultParams(5)).Set("notes", synth.NoteClasses(), 15)
	rep, err := Analyze(set, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) == 0 {
		t.Fatalf("note set produced no warnings:\n%s", rep.Format())
	}
	// quarter (a prefix of everything) must be among the flagged classes.
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, `"quarter"`) && strings.Contains(w, "never eagerly") {
			found = true
		}
	}
	if !found {
		t.Errorf("quarter not flagged:\n%s", strings.Join(rep.Warnings, "\n"))
	}
}

func TestEightDirectionsClean(t *testing.T) {
	set, _ := synth.NewGenerator(synth.DefaultParams(6)).Set("eight", synth.EightDirectionClasses(), 15)
	rep, err := Analyze(set, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// A well-designed set: no class should be flagged never-eager.
	for _, w := range rep.Warnings {
		if strings.Contains(w, "never eagerly") {
			t.Errorf("well-designed set flagged: %s", w)
		}
	}
	if len(rep.Eagerness) != 8 {
		t.Errorf("eagerness rows = %d", len(rep.Eagerness))
	}
	// All pairwise separations present: C(8,2) = 28.
	if len(rep.Separations) != 28 {
		t.Errorf("separations = %d", len(rep.Separations))
	}
	// Sorted ascending.
	for i := 1; i < len(rep.Separations); i++ {
		if rep.Separations[i].Distance < rep.Separations[i-1].Distance {
			t.Fatal("separations not sorted")
		}
	}
	out := rep.Format()
	for _, want := range []string{"closest class pairs", "eagerness"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q", want)
		}
	}
}

func TestPrefixConfusionNamesExtendingClasses(t *testing.T) {
	set, _ := synth.NewGenerator(synth.DefaultParams(7)).Set("notes", synth.NoteClasses(), 15)
	rep, err := Analyze(set, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The sixtyfourth's early prefixes look like the shorter notes.
	for _, ce := range rep.Eagerness {
		if ce.Class == "sixtyfourth" {
			if len(ce.ConfusedWith) == 0 {
				t.Error("sixtyfourth has no prefix confusions")
			}
			return
		}
	}
	t.Error("sixtyfourth missing from eagerness rows")
}

func TestAnalyzeErrors(t *testing.T) {
	set, _ := synth.NewGenerator(synth.DefaultParams(8)).Set("tiny", synth.UDClasses(), 1)
	// One example per class: the holdout split leaves training data but
	// training may still fail downstream; either way no panic and a clean
	// error or report.
	if _, err := Analyze(set, DefaultOptions()); err == nil {
		t.Skip("tiny set trained successfully; acceptable")
	}
}
