package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a streaming histogram over fixed bucket boundaries: the
// boundaries are set at registration and never change, so two snapshots
// of the same registry are structurally identical regardless of what was
// observed. Bucket i counts observations v with bounds[i-1] < v <=
// bounds[i]; one extra overflow bucket counts v > bounds[len-1].
//
// Observe is lock-free (one atomic add per observation plus CAS loops
// for the sum and extremes) and safe for concurrent use from any number
// of goroutines. All methods are no-ops (or return zero values) on a nil
// receiver.
type Histogram struct {
	bounds []float64      // immutable after construction, ascending
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomicFloat64
	min    atomicFloat64 // +Inf until the first observation
	max    atomicFloat64 // -Inf until the first observation
	// exemplars holds the last exemplar recorded per bucket (nil until
	// the bucket's first ObserveExemplar), published through atomic
	// pointers so readers never see a torn record.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one bucket of a histogram to the concrete event that
// last landed in it: the observed value, the span ID of the trace it
// belongs to (obs.Span.ID — follow it into the span buffer / Chrome
// trace), the flight-recorder bundle sequence when the gesture was
// captured (0 when not), and the wall-clock record time. This is the
// p99-outlier-to-trace-to-replayable-bundle link OBSERVABILITY.md's
// "Exemplars" section documents. Bucket is the index into the owning
// HistogramSnap's Counts.
type Exemplar struct {
	Bucket int     `json:"bucket"`
	Value  float64 `json:"value"`
	SpanID uint64  `json:"span_id,omitempty"`
	Seq    uint64  `json:"seq,omitempty"`
	At     int64   `json:"at"`
}

// newHistogram builds a histogram over a defensive copy of the given
// ascending boundaries.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{
		bounds:    b,
		counts:    make([]atomic.Int64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// Observe records one value. NaN observations are ignored (a poisoned
// measurement must not poison the sum). No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.updateMin(v)
	h.max.updateMax(v)
}

// ObserveExemplar records v exactly like Observe and additionally
// retains an exemplar on v's bucket: the (span ID, flight-bundle seq)
// identity of the event that produced the observation, so an outlier
// bucket links straight to its trace and replayable bundle. The bucket
// keeps only the most recent exemplar (one small allocation per call —
// use it from per-gesture or per-frame call sites, not per-point hot
// loops). Zero spanID/seq mean "no trace"/"not captured". No-op on a
// nil receiver; NaN observations are ignored.
func (h *Histogram) ObserveExemplar(v float64, spanID, seq uint64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.updateMin(v)
	h.max.updateMax(v)
	h.exemplars[i].Store(&Exemplar{Bucket: i, Value: v, SpanID: spanID, Seq: seq, At: time.Now().UnixNano()})
}

// Count returns the number of observations; 0 on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations; 0 on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Quantile estimates the q-quantile of the live histogram from its
// current bucket counts — see HistogramSnap.Quantile for the estimator
// and its upper-bound caveat. It snapshots the buckets first, so the
// answer is internally consistent under concurrent Observes. Returns 0
// on a nil receiver or an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.snapshot("").Quantile(q)
}

// snapshot captures the histogram's current state. Buckets race benignly
// with concurrent Observes: each bucket load is atomic, so totals may be
// mid-update by a handful of events but never torn.
func (h *Histogram) snapshot(name string) HistogramSnap {
	s := HistogramSnap{
		Name:   name,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	for i := range h.exemplars {
		if ex := h.exemplars[i].Load(); ex != nil {
			s.Exemplars = append(s.Exemplars, *ex)
		}
	}
	if s.Count > 0 {
		s.Min = h.min.load()
		s.Max = h.max.load()
	}
	return s
}

// HistogramSnap is the point-in-time state of one histogram inside a
// Snapshot. Counts has one entry per bucket: Counts[i] holds
// observations in (Bounds[i-1], Bounds[i]], and the final entry counts
// overflow beyond the last boundary. Min and Max are 0 when Count is 0.
// Exemplars carries the buckets' retained exemplars in bucket order
// (only buckets that ever received an ObserveExemplar appear; empty for
// histograms fed by Observe alone).
type HistogramSnap struct {
	Name      string     `json:"name"`
	Count     int64      `json:"count"`
	Sum       float64    `json:"sum"`
	Min       float64    `json:"min"`
	Max       float64    `json:"max"`
	Bounds    []float64  `json:"bounds"`
	Counts    []int64    `json:"counts"`
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Mean returns the arithmetic mean of the observations, or 0 when empty.
func (s HistogramSnap) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts
// by linear interpolation inside the containing bucket, clamped to the
// observed min/max. This is the per-gesture-distribution signal the
// text report surfaces (p50/p95/p99). The estimate is an upper-bound
// estimate in the usual bucket-histogram sense: the true quantile lies
// in the same bucket, so the reported value never exceeds the bucket's
// upper boundary and the error is at most one bucket width.
func (s HistogramSnap) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		// The rank falls in bucket i. Interpolate across its span.
		lo := s.Min
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Max
		if i < len(s.Bounds) {
			hi = s.Bounds[i]
		}
		if lo < s.Min {
			lo = s.Min
		}
		if hi > s.Max {
			hi = s.Max
		}
		if c == 0 || hi < lo {
			return lo
		}
		frac := (rank - float64(cum)) / float64(c)
		return lo + frac*(hi-lo)
	}
	return s.Max
}
