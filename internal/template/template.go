// Package template implements a template-matching (nearest-neighbor)
// single-stroke recognizer: resample, normalize, and compare against
// stored training examples. Recognizers of this family preceded and
// followed Rubine's statistical method (the paper surveys the Ledeen
// recognizer and connectionist models as the trainable alternatives; the
// later "$1" recognizer family descends from exactly this scheme). It
// serves as the baseline comparator in experiment A7: matching accuracy,
// very different cost structure — classification is O(templates x points)
// against the statistical method's O(classes x features) — and, crucially,
// no notion of mid-stroke ambiguity, so it cannot support eager
// recognition.
package template

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/gesture"
)

// Options configures the recognizer.
type Options struct {
	// Points is the resample count (default 64).
	Points int
	// RotationInvariant rotates each stroke so its centroid-to-first-point
	// angle is zero before matching. Off by default: Rubine's features are
	// orientation-sensitive too, and gesture sets (like GDP's) rely on
	// orientation to distinguish classes.
	RotationInvariant bool
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{Points: 64} }

// Recognizer is a trained template matcher.
type Recognizer struct {
	Opts      Options
	Templates []Template
}

// Template is one normalized training example.
type Template struct {
	Class  string
	Points []geom.Point
}

// Train stores a normalized template per training example.
func Train(set *gesture.Set, opts Options) (*Recognizer, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if opts.Points <= 1 {
		opts.Points = 64
	}
	r := &Recognizer{Opts: opts}
	for _, e := range set.Examples {
		r.Templates = append(r.Templates, Template{
			Class:  e.Class,
			Points: r.normalize(e.Gesture),
		})
	}
	if len(r.Templates) == 0 {
		return nil, errors.New("template: no templates")
	}
	return r, nil
}

// normalize resamples to Opts.Points, translates the centroid to the
// origin, scales the bounding box's longer side to 1, and optionally
// rotates the indicative angle to zero.
func (r *Recognizer) normalize(g gesture.Gesture) []geom.Point {
	pts := g.Points.Resample(r.Opts.Points).Polygon()
	if len(pts) == 0 {
		return pts
	}
	// Pad degenerate strokes (e.g. the 2-point dot) to the full count so
	// distances stay well-defined.
	for len(pts) < r.Opts.Points {
		pts = append(pts, pts[len(pts)-1])
	}
	// Centroid to origin.
	var cx, cy float64
	for _, p := range pts {
		cx += p.X
		cy += p.Y
	}
	cx /= float64(len(pts))
	cy /= float64(len(pts))
	for i := range pts {
		pts[i].X -= cx
		pts[i].Y -= cy
	}
	if r.Opts.RotationInvariant {
		ang := pts[0].Angle()
		for i := range pts {
			pts[i] = pts[i].Rotate(-ang)
		}
	}
	// Scale the longer bbox side to 1 (degenerate strokes stay tiny, which
	// is itself the signature of a dot).
	b := geom.EmptyRect()
	for _, p := range pts {
		b = b.AddPoint(p)
	}
	side := math.Max(b.Width(), b.Height())
	if side > 1e-9 {
		for i := range pts {
			pts[i].X /= side
			pts[i].Y /= side
		}
	}
	return pts
}

// distance is the mean point-to-point Euclidean distance between two
// normalized strokes.
func distance(a, b []geom.Point) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return math.Inf(1)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += a[i].Dist(b[i])
	}
	return sum / float64(n)
}

// Classify returns the class of the nearest template.
func (r *Recognizer) Classify(g gesture.Gesture) string {
	class, _ := r.ClassifyWithDistance(g)
	return class
}

// ClassifyWithDistance also returns the nearest-template distance, usable
// as a rejection signal.
func (r *Recognizer) ClassifyWithDistance(g gesture.Gesture) (string, float64) {
	probe := r.normalize(g)
	best := ""
	bestD := math.Inf(1)
	for i := range r.Templates {
		if d := distance(probe, r.Templates[i].Points); d < bestD {
			best, bestD = r.Templates[i].Class, d
		}
	}
	return best, bestD
}

// Accuracy classifies every example in a set and returns the fraction
// classified correctly.
func (r *Recognizer) Accuracy(set *gesture.Set) float64 {
	if set.Len() == 0 {
		return 0
	}
	correct := 0
	for _, e := range set.Examples {
		if r.Classify(e.Gesture) == e.Class {
			correct++
		}
	}
	return float64(correct) / float64(set.Len())
}

// String summarizes the recognizer.
func (r *Recognizer) String() string {
	return fmt.Sprintf("template recognizer: %d templates x %d points", len(r.Templates), r.Opts.Points)
}
