package obs_test

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestSpanNilSafety(t *testing.T) {
	var b *obs.SpanBuffer
	if sp := b.Start("x"); sp != nil {
		t.Fatal("Start on nil buffer returned a span")
	}
	if b.Cap() != 0 || b.Recorded() != 0 || b.Records() != nil {
		t.Error("nil buffer accessors not zero")
	}
	var s *obs.Span
	if c := s.Child("x"); c != nil {
		t.Fatal("Child on nil span returned a span")
	}
	// All of these must be silent no-ops.
	s.SetAttr("k", "v")
	s.SetAttrInt("k", 1)
	s.SetAttrFloat("k", 1.5)
	s.Event("e", "d")
	s.End()
	s.EndAt(time.Now())
	if s.ID() != 0 {
		t.Error("nil span ID != 0")
	}
	var reg *obs.Registry
	if reg.Spans("x", 8) != nil {
		t.Error("nil registry returned a span buffer")
	}
}

func TestSpanCausalLinks(t *testing.T) {
	b := obs.New().Spans("t", 64)
	root := b.Start("gesture")
	root.SetAttr("session", "s1")
	child := root.Child("decide")
	child.SetAttrInt("point", 3)
	grand := child.Child("auc_score")
	grand.End()
	child.End()
	child.End() // idempotent: must not publish twice
	root.Event("commit", "circle")
	root.End()

	recs := b.Records()
	if len(recs) != 4 {
		t.Fatalf("recorded %d spans, want 4 (grand, child, event, root)", len(recs))
	}
	byName := map[string]obs.SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	g, c, r := byName["auc_score"], byName["decide"], byName["gesture"]
	ev := byName["commit"]
	if c.Parent != r.ID || g.Parent != c.ID || ev.Parent != r.ID {
		t.Errorf("parent links wrong: %+v", byName)
	}
	for _, x := range recs {
		if x.Root != r.ID {
			t.Errorf("span %q root = %d, want %d", x.Name, x.Root, r.ID)
		}
	}
	if ev.Start != ev.End {
		t.Error("event span is not zero-duration")
	}
	if len(ev.Attrs) != 1 || ev.Attrs[0].Key != "detail" || ev.Attrs[0].Str != "circle" {
		t.Errorf("event detail attr = %+v", ev.Attrs)
	}
	if c.Attrs[0].Kind != obs.AttrInt || c.Attrs[0].Int != 3 {
		t.Errorf("typed attr = %+v", c.Attrs[0])
	}
	if r.End < r.Start || c.Start < r.Start || c.End > r.End {
		t.Error("child span not time-contained in root")
	}
}

func TestSpanBufferWraps(t *testing.T) {
	b := obs.New().Spans("t", 4)
	for i := 0; i < 10; i++ {
		b.Start("s").End()
	}
	if got := b.Recorded(); got != 10 {
		t.Errorf("Recorded = %d, want 10", got)
	}
	recs := b.Records()
	if len(recs) != 4 {
		t.Fatalf("retained %d, want capacity 4", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Errorf("records not in sequence order: %v", recs)
		}
	}
	if recs[len(recs)-1].Seq != 9 {
		t.Errorf("newest seq = %d, want 9", recs[len(recs)-1].Seq)
	}
}

// TestSpanConcurrentRecording hammers one buffer from many goroutines —
// the race detector referees the lock-free publication.
func TestSpanConcurrentRecording(t *testing.T) {
	b := obs.New().Spans("t", 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := b.Start("root")
				c := root.Child("child")
				c.End()
				root.Event("ev", "")
				root.End()
				_ = b.Records()
			}
		}()
	}
	wg.Wait()
	if got := b.Recorded(); got != 8*200*3 {
		t.Errorf("Recorded = %d, want %d", got, 8*200*3)
	}
}

func TestStartAtBackdates(t *testing.T) {
	b := obs.New().Spans("t", 8)
	at := time.Now().Add(-time.Second)
	sp := b.StartAt("gesture", at)
	sp.End()
	recs := b.Records()
	if len(recs) != 1 {
		t.Fatal("no record")
	}
	if recs[0].Start != at.UnixNano() {
		t.Errorf("Start = %d, want backdated %d", recs[0].Start, at.UnixNano())
	}
	if recs[0].End-recs[0].Start < int64(time.Second) {
		t.Error("duration shorter than the backdated second")
	}
}

func TestSnapshotIncludesSpans(t *testing.T) {
	reg := obs.New()
	b := reg.Spans("gesture.spans", 16)
	b.Start("gesture").End()
	snap := reg.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("snapshot has %d span sections, want 1", len(snap.Spans))
	}
	sec := snap.Spans[0]
	if sec.Name != "gesture.spans" || sec.Cap != 16 || sec.Recorded != 1 || len(sec.Spans) != 1 {
		t.Errorf("span section = %+v", sec)
	}
	// The section must survive a JSON round-trip (it rides in /metrics).
	var back obs.Snapshot
	data, _ := json.Marshal(snap)
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != 1 || back.Spans[0].Spans[0].Name != "gesture" {
		t.Errorf("span section lost in JSON round-trip: %+v", back.Spans)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	reg := obs.New()
	b := reg.Spans("gesture.spans", 16)
	root := b.Start("gesture")
	root.SetAttr("session", "s1")
	c := root.Child("decide")
	c.SetAttrInt("point", 1)
	c.SetAttrFloat("margin", 0.5)
	c.End()
	root.End()

	var sb strings.Builder
	if err := reg.Snapshot().WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("not valid Chrome Trace JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Pid != 1 || e.Cat != "gesture.spans" {
			t.Errorf("event %+v", e)
		}
		if e.Tid != doc.TraceEvents[0].Tid {
			t.Error("spans of one trace landed on different tids")
		}
	}
	var decide map[string]any
	for _, e := range doc.TraceEvents {
		if e.Name == "decide" {
			decide = e.Args
		}
	}
	if decide == nil {
		t.Fatal("decide event missing")
	}
	if decide["point"] != float64(1) || decide["margin"] != 0.5 || decide["parent"] == nil {
		t.Errorf("decide args = %+v", decide)
	}

	// Empty snapshot still renders a valid document.
	sb.Reset()
	if err := (obs.Snapshot{}).WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"traceEvents":[]`) {
		t.Errorf("empty trace = %s", sb.String())
	}
}

func TestReportIncludesQuantilesAndSpans(t *testing.T) {
	reg := obs.New()
	h := reg.Histogram("lat", []float64{1, 10, 100})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 100))
	}
	reg.Spans("gesture.spans", 8).Start("gesture").End()
	report := reg.Report()
	for _, want := range []string{"p50", "p95", "p99", "spans gesture.spans", "(1 recorded, cap 8"} {
		if !strings.Contains(report, want) {
			t.Errorf("Report missing %q:\n%s", want, report)
		}
	}
	var nilReg *obs.Registry
	if !strings.Contains(nilReg.Report(), "obs snapshot") {
		t.Error("nil-registry Report broken")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var nilH *obs.Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile != 0")
	}
	h := obs.New().Histogram("q", []float64{10, 20, 30, 40})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	// 100 observations uniform over (0, 40].
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.4)
	}
	cases := []struct {
		q, lo, hi float64
	}{
		{0, 0.4, 0.4},   // min
		{1, 40, 40},     // max
		{0.5, 10, 20},   // true p50 = 20; bucket (10,20]
		{0.95, 30, 40},  // true p95 = 38
		{0.99, 30, 40},  // true p99 = 39.6
		{0.25, 0.4, 10}, // first bucket interpolates from observed min
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if got < c.lo || got > c.hi {
			t.Errorf("Quantile(%g) = %g, want in [%g, %g]", c.q, got, c.lo, c.hi)
		}
	}
	// Upper-bound property: the estimate never exceeds the upper boundary
	// of the bucket holding the true quantile.
	if got := h.Quantile(0.5); got > 20 {
		t.Errorf("p50 estimate %g exceeds its bucket's upper bound 20", got)
	}
}
