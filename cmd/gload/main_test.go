package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/wire"
)

// TestSelfRunCleanReport: a small -self burst completes with zero NACKs
// under -strict and writes a well-formed report to both stdout and -o.
func TestSelfRunCleanReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_wire.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-self", "-strict", "-conns", "2", "-sessions", "4",
		"-gestures", "2", "-batch", "32", "-seed", "3", "-o", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	for _, doc := range [][]byte{stdout.Bytes(), mustRead(t, out)} {
		var rep report
		if err := json.Unmarshal(doc, &rep); err != nil {
			t.Fatalf("report JSON: %v\n%s", err, doc)
		}
		if rep.Conns != 2 || rep.Batch != 32 || rep.Seed != 3 {
			t.Errorf("report echoes wrong config: %+v", rep)
		}
		if rep.Events == 0 || rep.Frames == 0 {
			t.Errorf("empty run: %+v", rep)
		}
		if rep.Nacks.total() != 0 || rep.FatalCount != 0 {
			t.Errorf("clean burst produced refusals: %+v", rep)
		}
		if rep.Reconnects != 0 || rep.EventsLost != 0 {
			t.Errorf("clean burst reported reconnects/losses: %+v", rep)
		}
		if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P99 {
			t.Errorf("latency quantiles not ordered: %+v", rep.Latency)
		}
		if rep.EventsPerSec <= 0 {
			t.Errorf("events_per_sec = %v", rep.EventsPerSec)
		}
	}
}

// TestReportSchemaAndE2E is the schema-2 regression test: a -self run
// written via the -out alias carries the version stamp, a nanosecond
// duration consistent with duration_sec, and the server-side wire e2e
// distribution attributed from the v2 frame-header send stamps.
func TestReportSchemaAndE2E(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-self", "-conns", "1", "-sessions", "2",
		"-gestures", "1", "-batch", "16", "-seed", "5", "-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(mustRead(t, out), &rep); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if rep.Schema != ReportSchema {
		t.Errorf("schema = %d, want %d", rep.Schema, ReportSchema)
	}
	if rep.DurationNS <= 0 {
		t.Errorf("duration_ns = %d", rep.DurationNS)
	}
	if sec := float64(rep.DurationNS) / 1e9; sec < rep.DurationSec*0.99 || sec > rep.DurationSec*1.01 {
		t.Errorf("duration_ns %d disagrees with duration_sec %v", rep.DurationNS, rep.DurationSec)
	}
	if rep.E2E == nil {
		t.Fatal("-self report missing wire_e2e_ns")
	}
	if rep.E2E.P50 <= 0 || rep.E2E.P90 < rep.E2E.P50 || rep.E2E.P99 < rep.E2E.P90 {
		t.Errorf("e2e quantiles not ordered: %+v", *rep.E2E)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDeterministicWorkload: a fixed seed yields the identical event
// stream per connection — the property the CI smoke's "zero unexplained
// NACKs" assertion leans on.
func TestDeterministicWorkload(t *testing.T) {
	cfg := config{conns: 2, sessions: 3, gestures: 2, batch: 16, seed: 9}
	a := (&worker{cfg: cfg, id: 1}).buildEvents()
	b := (&worker{cfg: cfg, id: 1}).buildEvents()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("stream lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Per-session timestamps never regress across gesture boundaries.
	last := map[string]int64{}
	for i, ev := range a {
		if prev, ok := last[ev.Session]; ok && ev.TMicros < prev {
			t.Fatalf("event %d: session %s regresses %d -> %d", i, ev.Session, prev, ev.TMicros)
		}
		last[ev.Session] = ev.TMicros
	}
}

// stubServer speaks just enough of the wire protocol to draw gload
// through a scripted response sequence: it decodes frame boundaries
// (never payloads) and answers each with respond's bytes, closing the
// connection when respond says so.
func stubServer(t *testing.T, respond func(frame int) (resp []byte, close bool)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				fr := wire.NewFrameReader(bufio.NewReader(c))
				for i := 0; ; i++ {
					if _, err := fr.Next(); err != nil {
						return
					}
					resp, done := respond(i)
					if _, err := c.Write(resp); err != nil || done {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String()
}

// TestStrictExitCodes pins the -strict exit-code mapping: fatal wire
// responses exit 3 (dominating), per-event NACKs exit 1, clean runs 0.
func TestStrictExitCodes(t *testing.T) {
	var stderr bytes.Buffer
	if got := strictCode(&report{FatalCount: 1, Nacks: nacks{BadEvent: 5}}, &stderr); got != 3 {
		t.Errorf("fatal+nacks strict code = %d, want 3", got)
	}
	if got := strictCode(&report{Nacks: nacks{Overload: 1}}, &stderr); got != 1 {
		t.Errorf("nacks-only strict code = %d, want 1", got)
	}
	if got := strictCode(&report{}, &stderr); got != 0 {
		t.Errorf("clean strict code = %d, want 0", got)
	}
}

// TestStrictFatalPath: a server answering with a fatal wire response
// exits 3 under -strict, with the teardown in fatal_count — not in the
// NACK counts, and not a transport error.
func TestStrictFatalPath(t *testing.T) {
	addr := stubServer(t, func(int) ([]byte, bool) {
		return wire.AppendFatal(nil, wire.FatalVersion), true
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", addr, "-strict", "-conns", "1", "-sessions", "1",
		"-gestures", "1", "-batch", "8", "-seed", "2",
	}, &stdout, &stderr)
	if code != 3 {
		t.Fatalf("run = %d, want 3; stderr: %s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if rep.FatalCount == 0 {
		t.Errorf("fatal_count = 0, want > 0: %+v", rep)
	}
	if rep.Nacks.total() != 0 {
		t.Errorf("fatal response leaked into NACK counts: %+v", rep.Nacks)
	}
	if rep.EventsLost == 0 {
		t.Errorf("events_lost = 0 after a fatal teardown: %+v", rep)
	}
}

// TestStrictNackPath: per-event NACKs (including the overload code with
// its retry-after hint) exit 1 under -strict and count by code.
func TestStrictNackPath(t *testing.T) {
	addr := stubServer(t, func(i int) ([]byte, bool) {
		if i == 0 {
			return wire.AppendAck(nil, []wire.Nack{{Index: 0, Code: wire.NackOverload}}, 1), false
		}
		return wire.AppendAck(nil, []wire.Nack{{Index: 0, Code: wire.NackBadEvent}}, 0), false
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", addr, "-strict", "-conns", "1", "-sessions", "2",
		"-gestures", "1", "-batch", "8", "-seed", "2",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run = %d, want 1; stderr: %s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if rep.Nacks.Overload != 1 || rep.Nacks.BadEvent == 0 {
		t.Errorf("nacks = %+v, want 1 overload and >=1 bad_event", rep.Nacks)
	}
	if rep.FatalCount != 0 {
		t.Errorf("NACKs leaked into fatal_count: %+v", rep)
	}
}

// TestChaosSelfRun is the chaos smoke: seeded connection faults with a
// reconnect budget against the -self server complete the run, account
// for every event as delivered or lost, and surface the injections in
// the report's netfault section.
func TestChaosSelfRun(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_netfault.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-self", "-conns", "2", "-sessions", "2", "-gestures", "1",
		"-batch", "16", "-seed", "3", "-chaos-seed", "11", "-reconnect", "8",
		"-backoff", "1ms", "-o", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(mustRead(t, out), &rep); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if len(rep.Netfault) == 0 {
		t.Fatal("chaos run reported no netfault counts")
	}
	total := uint64(0)
	for _, n := range rep.Netfault {
		total += n
	}
	if total == 0 {
		t.Errorf("netfault counts all zero: %v", rep.Netfault)
	}
	// Every offered event is accounted for: delivered or lost.
	offered := int64(0)
	for id := 0; id < 2; id++ {
		w := &worker{cfg: config{conns: 2, sessions: 2, gestures: 1, batch: 16, seed: 3}, id: id}
		offered += int64(len(w.buildEvents()))
	}
	if rep.Events+rep.EventsLost != offered {
		t.Errorf("events %d + events_lost %d != offered %d", rep.Events, rep.EventsLost, offered)
	}
}

// TestFlagValidation: contradictory or out-of-range flags exit 2 with a
// usage message, before any socket work.
func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{},                          // neither -addr nor -self
		{"-self", "-addr", "x:1"},   // both
		{"-self", "-batch", "0"},    // batch under 1
		{"-self", "-batch", "9999"}, // batch over wire.MaxBatch
		{"-self", "-conns", "0"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr %q)", args, code, stderr.String())
		}
		if stderr.Len() == 0 {
			t.Errorf("run(%v) printed no diagnostic", args)
		}
	}
	if !strings.Contains(func() string {
		var stdout, stderr bytes.Buffer
		run([]string{"-batch", "0", "-self"}, &stdout, &stderr)
		return stderr.String()
	}(), "batch") {
		t.Error("batch diagnostic does not name the flag")
	}
}
