package multipath

import "testing"

// TestSessionResetReuse drives two complete interactions through one
// Session separated by Reset — the serve.Engine pool's reuse pattern —
// and checks the second recognizes independently of the first, on the
// retained eager stream.
func TestSessionResetReuse(t *testing.T) {
	rec := trainRec(t)
	s := NewSession(rec)

	g := sampleUD(t, 0) // class U
	playPrimary(s, g)
	last := g[len(g)-1]
	s.Handle(Event{Finger: 0, Kind: FingerUp, X: last.X, Y: last.Y, T: last.T + 0.01})
	if !s.Completed() || s.Class() != "U" {
		t.Fatalf("first interaction: completed=%v class=%q", s.Completed(), s.Class())
	}

	s.Reset()
	if s.Completed() || s.Decided() || s.Class() != "" || s.FingerCount() != 0 {
		t.Fatalf("reset did not clear interaction state: completed=%v decided=%v class=%q fingers=%d",
			s.Completed(), s.Decided(), s.Class(), s.FingerCount())
	}

	g2 := sampleUD(t, 1) // class D
	var recognized string
	s.OnRecognized = func(class string) { recognized = class }
	playPrimary(s, g2)
	last = g2[len(g2)-1]
	s.Handle(Event{Finger: 0, Kind: FingerUp, X: last.X, Y: last.Y, T: last.T + 0.01})
	if !s.Completed() || s.Class() != "D" || recognized != "D" {
		t.Fatalf("reused session: completed=%v class=%q recognized=%q", s.Completed(), s.Class(), recognized)
	}
}

// TestSessionResetMidInteraction resets a session abandoned mid-stroke
// and checks the next interaction starts clean (the pool never does this
// — it only recycles finished sessions — but Reset must not depend on
// that).
func TestSessionResetMidInteraction(t *testing.T) {
	rec := trainRec(t)
	s := NewSession(rec)
	g := sampleUD(t, 0)
	playPrimary(s, g[:len(g)/2]) // abandon half-way, fingers still down
	if s.FingerCount() == 0 {
		t.Fatal("test setup: expected a live finger")
	}
	s.Reset()

	g2 := sampleUD(t, 1)
	playPrimary(s, g2)
	last := g2[len(g2)-1]
	s.Handle(Event{Finger: 0, Kind: FingerUp, X: last.X, Y: last.Y, T: last.T + 0.01})
	if !s.Completed() || s.Class() != "D" {
		t.Fatalf("after mid-interaction reset: completed=%v class=%q", s.Completed(), s.Class())
	}
}

// TestDuplicateFingerDownOnReusedStream guards the streaming flag: after
// Reset the retained stream must be restarted by the next primary
// FingerDown, while a duplicate FingerDown within one interaction still
// only updates the position.
func TestDuplicateFingerDownOnReusedStream(t *testing.T) {
	rec := trainRec(t)
	s := NewSession(rec)
	g := sampleUD(t, 0)
	playPrimary(s, g)
	last := g[len(g)-1]
	s.Handle(Event{Finger: 0, Kind: FingerUp, X: last.X, Y: last.Y, T: last.T + 0.01})
	s.Reset()

	// Second interaction: a duplicate FingerDown mid-stroke must not
	// restart the reused stream (that would discard the collected points).
	g2 := sampleUD(t, 1)
	half := len(g2) / 2
	playPrimary(s, g2[:half])
	s.Handle(Event{Finger: 0, Kind: FingerDown, X: g2[half].X, Y: g2[half].Y, T: g2[half].T})
	for _, p := range g2[half+1:] {
		s.Handle(Event{Finger: 0, Kind: FingerMove, X: p.X, Y: p.Y, T: p.T})
	}
	last = g2[len(g2)-1]
	s.Handle(Event{Finger: 0, Kind: FingerUp, X: last.X, Y: last.Y, T: last.T + 0.01})
	if !s.Completed() || s.Class() != "D" {
		t.Fatalf("duplicate FingerDown broke the reused stream: completed=%v class=%q", s.Completed(), s.Class())
	}
}
