package segment

import (
	"testing"

	"repro/internal/eager"
	"repro/internal/geom"
	"repro/internal/synth"
)

// stream concatenates gestures into one continuous point stream, holding
// still for dwell seconds between them (re-emitting the last position at
// the sampling rate, as a glove sensor would).
func stream(dwell float64, gestures ...geom.Path) geom.Path {
	var out geom.Path
	t := 0.0
	for _, g := range gestures {
		if len(out) > 0 {
			// Dwell at the previous end position.
			last := out[len(out)-1]
			steps := int(dwell / 0.02)
			for i := 0; i < steps; i++ {
				t += 0.02
				out = append(out, geom.TimedPoint{X: last.X, Y: last.Y, T: t})
			}
		}
		for i, p := range g {
			if i == 0 && len(out) > 0 {
				// Hop to the new start (fast move, still below GapTime).
				t += 0.05
			} else if i > 0 {
				t += p.T - g[i-1].T
			}
			out = append(out, geom.TimedPoint{X: p.X, Y: p.Y, T: t})
		}
	}
	return out
}

func samples(t *testing.T, seed int64) (geom.Path, geom.Path) {
	t.Helper()
	gen := synth.NewGenerator(synth.DefaultParams(seed))
	u := gen.Sample(synth.UDClasses()[0]).G.Points
	d := gen.Sample(synth.UDClasses()[1]).G.Points
	return u, d
}

func TestDwellSplitsStrokes(t *testing.T) {
	u, d := samples(t, 3)
	st := stream(0.4, u, d)
	strokes := Segment(st, Options{})
	if len(strokes) != 2 {
		t.Fatalf("segmented %d strokes, want 2", len(strokes))
	}
	// Each stroke approximates its source gesture (the dwell tail is cut,
	// so lengths may differ by a few points).
	if diff := strokes[0].Len() - len(u); diff < -4 || diff > 1 {
		t.Errorf("stroke 1 has %d points vs source %d", strokes[0].Len(), len(u))
	}
	if strokes[0].Start().Point().Dist(u[0].Point()) > 1 {
		t.Errorf("stroke 1 start drifted")
	}
}

func TestSegmentedStrokesRecognize(t *testing.T) {
	// End-to-end DataGlove story: segment a continuous stream, then
	// classify each stroke with the ordinary recognizer.
	trainSet, _ := synth.NewGenerator(synth.DefaultParams(7)).Set("train", synth.UDClasses(), 12)
	rec, _, err := eager.Train(trainSet, eager.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	u, d := samples(t, 9)
	strokes := Segment(stream(0.5, u, d, u), Options{})
	if len(strokes) != 3 {
		t.Fatalf("segmented %d strokes", len(strokes))
	}
	want := []string{"U", "D", "U"}
	for i, g := range strokes {
		got, err := rec.Classify(g)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Errorf("stroke %d classified %s, want %s", i, got, want[i])
		}
	}
}

func TestGapSplits(t *testing.T) {
	u, d := samples(t, 5)
	// Concatenate with a large time gap and no dwell samples.
	shifted := d.TimeShift(u[len(u)-1].T + 2)
	st := append(append(geom.Path{}, u...), shifted...)
	strokes := Segment(st, Options{})
	if len(strokes) != 2 {
		t.Fatalf("gap produced %d strokes", len(strokes))
	}
	if strokes[0].Len() != len(u) {
		t.Errorf("gap-terminated stroke has %d points, want %d", strokes[0].Len(), len(u))
	}
}

func TestShortStrokesDiscarded(t *testing.T) {
	// A two-point twitch between dwells is noise, not a gesture.
	st := geom.Path{
		{X: 0, Y: 0, T: 0}, {X: 30, Y: 0, T: 0.02},
	}
	strokes := Segment(st, Options{MinPoints: 4})
	if len(strokes) != 0 {
		t.Fatalf("twitch produced %d strokes", len(strokes))
	}
}

func TestStreamingAPI(t *testing.T) {
	u, d := samples(t, 11)
	st := stream(0.4, u, d)
	s := New(Options{})
	emitted := 0
	for _, p := range st {
		if g := s.Add(p); g != nil {
			emitted++
			if g.Len() < 4 {
				t.Fatalf("emitted stroke too short: %d", g.Len())
			}
		}
	}
	if g := s.Flush(); g != nil {
		emitted++
	}
	if emitted != 2 {
		t.Fatalf("emitted %d strokes", emitted)
	}
	// Flush resets: reusable for the next stream.
	if g := s.Flush(); g != nil {
		t.Fatal("second flush emitted")
	}
	for _, p := range u {
		s.Add(p)
	}
	if g := s.Flush(); g == nil {
		t.Fatal("reuse after flush failed")
	}
}

func TestDwellTailExcluded(t *testing.T) {
	u, _ := samples(t, 13)
	st := stream(0.5, u, u) // two strokes with a long dwell between
	strokes := Segment(st, Options{})
	if len(strokes) != 2 {
		t.Fatalf("strokes = %d", len(strokes))
	}
	// The first stroke must not contain dwell points: consecutive
	// duplicates at the end would betray them.
	p := strokes[0].Points
	dupes := 0
	for i := 1; i < len(p); i++ {
		if p[i].Point().Dist(p[i-1].Point()) < 1e-9 {
			dupes++
		}
	}
	if dupes > 1 {
		t.Errorf("stroke retains %d dwell samples", dupes)
	}
}
