// Package fixture exercises the lockbalance analyzer: every Lock must be
// released on all paths, RLock/RUnlock are an independent mode, defers
// (direct or in a deferred literal) cover everything, and a mutex that
// escapes the block-structured model is left unjudged.
package fixture

// Mutex is a local stand-in: lockbalance matches mutexes by type name so
// fixtures need not import repository packages through the source
// importer.
type Mutex struct{ state int }

func (m *Mutex) Lock()         { m.state++ }
func (m *Mutex) Unlock()       { m.state-- }
func (m *Mutex) TryLock() bool { return true }

// RWMutex is the read-write stand-in.
type RWMutex struct{ state int }

func (m *RWMutex) Lock()    { m.state++ }
func (m *RWMutex) Unlock()  { m.state-- }
func (m *RWMutex) RLock()   { m.state++ }
func (m *RWMutex) RUnlock() { m.state-- }

type guarded struct {
	mu  Mutex
	rw  RWMutex
	val int
}

// deferUnlock is the canonical clean shape.
func deferUnlock(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.val > 0 {
		return g.val
	}
	return 0
}

// deferInClosure releases through a deferred literal; also clean.
func deferInClosure(g *guarded) int {
	g.mu.Lock()
	defer func() { g.mu.Unlock() }()
	return g.val
}

// allPaths releases explicitly before every exit; clean.
func allPaths(g *guarded, cond bool) int {
	g.mu.Lock()
	if cond {
		g.mu.Unlock()
		return 1
	}
	g.mu.Unlock()
	return 0
}

// selectShape mirrors the serving engine's Submit: an early-exit release
// plus one release per select arm, with every arm returning.
func selectShape(g *guarded, ch chan int, cond bool) int {
	g.mu.Lock()
	if cond {
		g.mu.Unlock()
		return 1
	}
	select {
	case ch <- g.val:
		g.mu.Unlock()
		return 0
	default:
		g.mu.Unlock()
		return 2
	}
}

// earlyReturnLeak forgets the release on the early exit.
func earlyReturnLeak(g *guarded, cond bool) int {
	g.mu.Lock() // want `g\.mu\.Lock\(\) is not released on every path`
	if cond {
		return 1
	}
	g.mu.Unlock()
	return 0
}

// neverReleased locks and falls off the end.
func neverReleased(g *guarded) {
	g.mu.Lock() // want `g\.mu\.Lock\(\) is never released`
	g.val++
}

// readLeak leaks the read lock on the early exit; the write-mode pair in
// the same function is balanced and stays silent.
func readLeak(g *guarded, cond bool) int {
	g.rw.RLock() // want `g\.rw\.RLock\(\) is not released on every path`
	if cond {
		return g.val
	}
	g.rw.RUnlock()
	g.rw.Lock()
	g.val++
	g.rw.Unlock()
	return g.val
}

// goroutineLeak locks inside a goroutine body, which is its own scope.
func goroutineLeak(g *guarded) {
	go func() {
		g.mu.Lock() // want `g\.mu\.Lock\(\) is never released`
		g.val++
	}()
}

// escapesByAddress hands the mutex away; the model cannot follow it, so
// the key is unjudged even though no Unlock is visible here.
func escapesByAddress(g *guarded) {
	g.mu.Lock()
	releaseLater(&g.mu)
}

func releaseLater(m *Mutex) { m.Unlock() }

// tryLockUnjudged: conditional acquisition needs flow tracking beyond the
// block-structured model, so TryLock voids the key.
func tryLockUnjudged(g *guarded) {
	if g.mu.TryLock() {
		g.val++
		g.mu.Unlock()
	}
}

// suppressedHandoff locks and intentionally does not release: the
// audited directive keeps it out of the findings.
func suppressedHandoff(g *guarded) {
	//lint:ignore lockbalance fixture: lock handed off to releaseLater by contract
	g.mu.Lock()
	g.val++
}
