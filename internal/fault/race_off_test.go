//go:build !race

package fault_test

// raceEnabled reports whether this test binary was built with the race
// detector; timing assertions are skipped when it is.
const raceEnabled = false
