package lint

import (
	"go/ast"
	"go/types"
)

// Ctxarg enforces context.Context hygiene ahead of the serving work the
// roadmap plans: a context must be the first parameter of a function that
// takes one, and must not be stored in a struct field — a stored context
// outlives the request it belongs to, which breaks cancellation exactly
// when an event-handler layer like GRANDMA's is put behind a server.
var Ctxarg = &Analyzer{
	Name: "ctxarg",
	Doc: "flag functions taking context.Context anywhere but the first parameter, and struct fields " +
		"that store a context.Context.",
	Run: runCtxarg,
}

func runCtxarg(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				obj, ok := pass.Info.Defs[d.Name].(*types.Func)
				if !ok {
					continue
				}
				params := obj.Type().(*types.Signature).Params()
				for i := 1; i < params.Len(); i++ {
					if isContext(params.At(i).Type()) {
						pass.Reportf(d.Name.Pos(), "context.Context should be the first parameter of %s", d.Name.Name)
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						tv, ok := pass.Info.Types[field.Type]
						if ok && isContext(tv.Type) {
							pass.Reportf(field.Pos(), "struct %s stores a context.Context; pass it as a call parameter instead",
								ts.Name.Name)
						}
					}
				}
			}
		}
	}
	return nil
}

func isContext(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
