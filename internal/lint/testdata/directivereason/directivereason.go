// Package fixture holds a //lint:ignore directive without a reason: it
// must suppress nothing (the floateq finding survives) and be reported
// itself. lint_test.go asserts both directly, since a // want comment on
// the directive line would read as its reason.
package fixture

func missingReason(a, b float64) bool {
	//lint:ignore floateq
	return a == b
}
