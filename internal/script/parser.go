package script

import "fmt"

// Expr is a parsed expression node.
type Expr interface{ exprNode() }

// NumLit is a numeric literal.
type NumLit struct{ Value float64 }

// StrLit is a string literal.
type StrLit struct{ Value string }

// NilLit is the nil literal.
type NilLit struct{}

// VarRef reads a variable from the environment (e.g. view, recog).
type VarRef struct{ Name string }

// AttrRef reads a gestural attribute from the environment (e.g. <startX>).
type AttrRef struct{ Name string }

// Msg is a message send: [receiver selector] or
// [receiver part1:arg1 part2:arg2 ...].
type Msg struct {
	Recv     Expr
	Selector string // full selector, e.g. "setEndpoint:x:y:" or "createRect"
	Args     []Expr
}

func (*NumLit) exprNode()  {}
func (*StrLit) exprNode()  {}
func (*NilLit) exprNode()  {}
func (*VarRef) exprNode()  {}
func (*AttrRef) exprNode() {}
func (*Msg) exprNode()     {}

// Stmt is a statement: an expression, optionally assigned to a variable.
type Stmt struct {
	Assign string // variable name, or "" for a bare expression
	Expr   Expr
}

// Program is a parsed semantics expression: a sequence of statements. Its
// value when evaluated is the value of the last statement.
type Program struct {
	Stmts []Stmt
	src   string
}

// Source returns the original source text.
func (p *Program) Source() string { return p.src }

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("expected %v, found %v", k, t.kind)}
	}
	return p.next(), nil
}

// Parse compiles a semantics source string into a Program. An empty or
// all-whitespace source parses to an empty program (which evaluates to
// nil, like the paper's "done = nil").
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{src: src}
	for p.peek().kind != tokEOF {
		// Skip empty statements.
		if p.peek().kind == tokSemi {
			p.next()
			continue
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, st)
		switch p.peek().kind {
		case tokSemi:
			p.next()
		case tokEOF:
		default:
			t := p.peek()
			return nil, &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("expected ';' or end of input, found %v", t.kind)}
		}
	}
	return prog, nil
}

// MustParse is Parse for static sources; it panics on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *parser) parseStmt() (Stmt, error) {
	// Lookahead for "ident = expr".
	if p.peek().kind == tokIdent && p.toks[p.i+1].kind == tokAssign {
		name := p.next().text
		p.next() // '='
		e, err := p.parseExpr()
		if err != nil {
			return Stmt{}, err
		}
		return Stmt{Assign: name, Expr: e}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return Stmt{}, err
	}
	return Stmt{Expr: e}, nil
}

func (p *parser) parseExpr() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokLBracket:
		return p.parseMsg()
	case tokNumber:
		p.next()
		return &NumLit{Value: t.num}, nil
	case tokString:
		p.next()
		return &StrLit{Value: t.text}, nil
	case tokNil:
		p.next()
		return &NilLit{}, nil
	case tokIdent:
		p.next()
		return &VarRef{Name: t.text}, nil
	case tokAttr:
		p.next()
		return &AttrRef{Name: t.text}, nil
	default:
		return nil, &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("expected expression, found %v", t.kind)}
	}
}

func (p *parser) parseMsg() (Expr, error) {
	if _, err := p.expect(tokLBracket); err != nil {
		return nil, err
	}
	recv, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	switch t.kind {
	case tokIdent:
		// Unary message: [recv selector]
		p.next()
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		return &Msg{Recv: recv, Selector: t.text}, nil
	case tokSelPart:
		// Keyword message: [recv part1:arg1 part2:arg2 ...]
		sel := ""
		var args []Expr
		for p.peek().kind == tokSelPart {
			part := p.next()
			sel += part.text
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, arg)
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		return &Msg{Recv: recv, Selector: sel, Args: args}, nil
	default:
		return nil, &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("expected selector, found %v", t.kind)}
	}
}
