// Package multistroke implements the paper's multi-stroke extension
// (section 6): "Other extensions includ[e] handling multi-stroke
// gestures." GRANDMA itself supports only single strokes — "The major
// drawback is that many common marks (e.g. 'X' and '=>') cannot be used
// as gestures" — and the paper points at the known adaptation techniques
// for turning single-stroke recognizers into multi-stroke ones.
//
// This package implements that adaptation in the standard way: strokes
// drawn within an inter-stroke timeout and within a spatial neighborhood
// are grouped into one mark; each stroke is classified with the
// single-stroke classifier; and the resulting class sequence is matched
// against registered multi-stroke definitions. An "X" is two "slash"
// strokes whose bounding boxes overlap; an arrow is a shaft stroke
// followed by a chevron stroke; and so on.
package multistroke

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/gesture"
	"repro/internal/recognizer"
)

// Definition describes one multi-stroke gesture class.
type Definition struct {
	// Name of the multi-stroke class.
	Name string
	// Strokes is the expected sequence of single-stroke classes, in
	// drawing order.
	Strokes []string
	// RequireOverlap additionally demands that every stroke's bounding box
	// intersect the union of the previous strokes' boxes (an "X" needs its
	// two slashes to cross; a "=" keeps its bars apart but still nearby).
	RequireOverlap bool
}

// Config tunes stroke grouping.
type Config struct {
	// InterStrokeTimeout is the maximum gap, in seconds, between the end
	// of one stroke and the start of the next for them to join one mark.
	// The paper notes single-stroke gestures "allow the use of short
	// timeouts"; multi-stroke marks need one. Default 0.6 s.
	InterStrokeTimeout float64
	// MaxDistance is the maximum distance between a new stroke's start and
	// the previous strokes' combined bounding box (inflated by this
	// amount) for grouping. Default 80 px.
	MaxDistance float64
}

// DefaultConfig returns the standard grouping parameters.
func DefaultConfig() Config {
	return Config{InterStrokeTimeout: 0.6, MaxDistance: 80}
}

// Recognizer matches grouped stroke sequences against definitions.
type Recognizer struct {
	single *recognizer.Full
	cfg    Config
	defs   []Definition
}

// New builds a multi-stroke recognizer over a trained single-stroke
// classifier.
func New(single *recognizer.Full, cfg Config) *Recognizer {
	if cfg.InterStrokeTimeout <= 0 {
		cfg.InterStrokeTimeout = 0.6
	}
	if cfg.MaxDistance <= 0 {
		cfg.MaxDistance = 80
	}
	return &Recognizer{single: single, cfg: cfg}
}

// Define registers a multi-stroke class. Definitions are matched in
// registration order; the first full match wins.
func (r *Recognizer) Define(d Definition) error {
	if d.Name == "" || len(d.Strokes) == 0 {
		return errors.New("multistroke: definition needs a name and at least one stroke")
	}
	for _, s := range d.Strokes {
		if r.single.C.ClassIndex(s) < 0 {
			return fmt.Errorf("multistroke: %q uses unknown single-stroke class %q", d.Name, s)
		}
	}
	r.defs = append(r.defs, d)
	return nil
}

// Mark is one recognized multi-stroke gesture.
type Mark struct {
	Name    string            // matched definition, or "" when unmatched
	Classes []string          // per-stroke single-stroke classes
	Strokes []gesture.Gesture // the strokes themselves
	Bounds  geom.Rect
}

// Session groups incoming strokes into marks. Feed every completed stroke
// with AddStroke; when a stroke does not join the current group (too late
// or too far), the current group is emitted as a Mark and a new group
// starts. Call Flush at the end of input.
type Session struct {
	r       *Recognizer
	current []gesture.Gesture
	classes []string
	bounds  geom.Rect
	lastEnd float64
}

// NewSession starts grouping strokes.
func (r *Recognizer) NewSession() *Session {
	return &Session{r: r, bounds: geom.EmptyRect()}
}

// AddStroke feeds one completed stroke. If the stroke starts a new group,
// the finished previous group is returned as a Mark (nil otherwise). An
// unclassifiable stroke (non-finite coordinates) is an error; the group
// state is unchanged so the caller can simply drop the stroke.
func (s *Session) AddStroke(g gesture.Gesture) (*Mark, error) {
	if g.Len() == 0 {
		return nil, nil
	}
	class, err := s.r.single.Classify(g)
	if err != nil {
		return nil, fmt.Errorf("multistroke: %w", err)
	}
	var emitted *Mark
	if len(s.current) > 0 && !s.joins(g) {
		emitted = s.finish()
	}
	s.current = append(s.current, g)
	s.classes = append(s.classes, class)
	s.bounds = s.bounds.Union(g.Bounds())
	s.lastEnd = g.End().T
	return emitted, nil
}

// joins reports whether a new stroke belongs to the current group.
func (s *Session) joins(g gesture.Gesture) bool {
	if g.Start().T-s.lastEnd > s.r.cfg.InterStrokeTimeout {
		return false
	}
	near := s.bounds.Inset(-s.r.cfg.MaxDistance)
	return near.Contains(g.Start().Point())
}

// Flush emits the in-progress group (nil when empty).
func (s *Session) Flush() *Mark {
	if len(s.current) == 0 {
		return nil
	}
	return s.finish()
}

func (s *Session) finish() *Mark {
	m := &Mark{
		Classes: s.classes,
		Strokes: s.current,
		Bounds:  s.bounds,
	}
	m.Name = s.r.match(m)
	s.current = nil
	s.classes = nil
	s.bounds = geom.EmptyRect()
	return m
}

// match finds the first definition matching the mark's class sequence (and
// overlap requirement).
func (r *Recognizer) match(m *Mark) string {
	for _, d := range r.defs {
		if len(d.Strokes) != len(m.Classes) {
			continue
		}
		ok := true
		for i := range d.Strokes {
			if d.Strokes[i] != m.Classes[i] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if d.RequireOverlap && !marksOverlap(m.Strokes) {
			continue
		}
		return d.Name
	}
	return ""
}

// marksOverlap reports whether each stroke's bounds intersect the union of
// the earlier strokes' bounds.
func marksOverlap(strokes []gesture.Gesture) bool {
	if len(strokes) < 2 {
		return true
	}
	acc := strokes[0].Bounds()
	for _, g := range strokes[1:] {
		b := g.Bounds()
		if !acc.Intersects(b) {
			return false
		}
		acc = acc.Union(b)
	}
	return true
}

// Recognize is the batch convenience: group and match a whole sequence of
// strokes, returning every completed mark. It fails on the first
// unclassifiable stroke.
func (r *Recognizer) Recognize(strokes []gesture.Gesture) ([]*Mark, error) {
	s := r.NewSession()
	var out []*Mark
	for _, g := range strokes {
		m, err := s.AddStroke(g)
		if err != nil {
			return out, err
		}
		if m != nil {
			out = append(out, m)
		}
	}
	if m := s.Flush(); m != nil {
		out = append(out, m)
	}
	return out, nil
}
