// Package fixture exercises the hotalloc allocation gate: AST-visible
// allocation sources inside //glint:hotpath functions and their static
// in-module callees are flagged; failure handling (error returns, panic
// arguments, err != nil blocks) and //glint:coldpath functions are cold.
package fixture

import "fmt"

type big struct{ vals [64]float64 }

type state struct {
	points []int
	buf    []byte
	out    []int
}

func sink(v any) int {
	if v == nil {
		return 0
	}
	return 1
}

func helperClean(x int) int { return x + 1 }

// helperAlloc is not annotated, but decide reaches it statically, so the
// gate follows the call edge.
func helperAlloc(x int) int {
	tmp := make([]int, x) // want `make allocates on the hot path`
	for i := range tmp {
		tmp[i] = i
	}
	return len(tmp)
}

// helperErr allocates only while constructing its failure return.
func helperErr(x int) error {
	if x < 0 {
		return fmt.Errorf("negative input %d", x) // clean: error-carrying return is cold
	}
	return nil
}

// newBig is per-gesture setup; the walk stops here.
//
//glint:coldpath pooled constructor runs once per gesture, not per point
func newBig() *big {
	return &big{}
}

//glint:coldpath
func badCold() {} // want `//glint:coldpath needs a reason`

// decide is the annotated per-point entry.
//
//glint:hotpath
func decide(s *state, x int) int {
	s.points = append(s.points, x) // want `append may grow its backing array`
	s.buf = append(s.buf[:0], 'x') // reslice reuse: clean
	v := make([]int, 4)            // want `make allocates on the hot path`
	p := new(big)                  // want `new allocates on the hot path`
	q := &big{}                    // want `&T\{\} allocates on the hot path`
	lit := []int{1, 2}             // want `slice/map literal allocates on the hot path`
	idx := map[int]int{1: 2}       // want `slice/map literal allocates on the hot path`
	bs := []byte("grow")           // want `conversion copies and allocates`
	str := string(s.buf)           // want `conversion copies and allocates`
	msg := fmt.Sprintf("%d", x)    // want `fmt\.Sprintf allocates on the hot path`
	go helperClean(x)              // want `go statement allocates a goroutine`
	f := func() int { return x }   // want `function literal allocates a closure`
	boxed := sink(big{})           // want `passing fixture/hotalloc\.big to interface parameter boxes it`

	if x == -7 {
		panic(fmt.Sprintf("impossible input %d", x)) // clean: panic argument is cold
	}
	if err := helperErr(x); err != nil {
		s.out = append(s.out, -1) // clean: err != nil block is cold
		return -1
	}
	defer func() {
		s.points = s.points[:0] // deferred literal runs on the hot path but allocates nothing
	}()
	cold := newBig()

	return helperAlloc(x) + helperClean(x) + v[0] + int(p.vals[0]) + int(q.vals[0]) +
		lit[0] + idx[1] + len(bs) + len(str) + len(msg) + f() + boxed + len(cold.vals)
}

// suppressed carries the audited allowlist directive for a deliberate
// amortized growth.
//
//glint:hotpath
func suppressed(s *state, x int) {
	//lint:ignore hotalloc fixture: session pool preallocates capacity; growth is warm-up only
	s.points = append(s.points, x)
}

// notHot is never reached from a //glint:hotpath function, so its
// allocations are nobody's business.
func notHot(n int) []int {
	out := make([]int, n)
	return append(out, n)
}
