package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestVecOps(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Sub(w); got[0] != -3 || got[1] != -3 || got[2] != -3 {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Add(w); got[0] != 5 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	u := v.Clone()
	u.AddScaled(2, w)
	if u[0] != 9 || u[2] != 15 {
		t.Errorf("AddScaled = %v", u)
	}
	if v[0] != 1 {
		t.Error("Clone aliases receiver")
	}
	u.Scale(0)
	if u.Norm() != 0 {
		t.Errorf("Scale(0) then Norm = %v", u.Norm())
	}
	if got := (Vec{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestVecMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Dot":       func() { Vec{1}.Dot(Vec{1, 2}) },
		"Sub":       func() { Vec{1}.Sub(Vec{1, 2}) },
		"Add":       func() { Vec{1}.Add(Vec{1, 2}) },
		"AddScaled": func() { Vec{1}.AddScaled(1, Vec{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on mismatch", name)
				}
			}()
			f()
		}()
	}
}

func TestMatBasics(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Error("At/Set broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases")
	}
	if m.MaxAbs() != 5 {
		t.Errorf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestMulVec(t *testing.T) {
	m := NewMat(2, 3)
	// [1 2 3; 4 5 6]
	for i, v := range []float64{1, 2, 3, 4, 5, 6} {
		m.A[i] = v
	}
	got := m.MulVec(Vec{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestMul(t *testing.T) {
	a := NewMat(2, 2)
	copy(a.A, []float64{1, 2, 3, 4})
	b := NewMat(2, 2)
	copy(b.A, []float64{5, 6, 7, 8})
	got := a.Mul(b)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if got.A[i] != want[i] {
			t.Errorf("Mul[%d] = %v, want %v", i, got.A[i], want[i])
		}
	}
}

func TestIdentityInvert(t *testing.T) {
	id := Identity(4)
	inv, err := Invert(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if inv.At(i, j) != want {
				t.Errorf("inv identity [%d,%d] = %v", i, j, inv.At(i, j))
			}
		}
	}
}

func TestInvertKnown(t *testing.T) {
	m := NewMat(2, 2)
	copy(m.A, []float64{4, 7, 2, 6})
	inv, err := Invert(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.6, -0.7, -0.2, 0.4}
	for i := range want {
		if !mathx.ApproxEqual(inv.A[i], want[i], 1e-12) {
			t.Errorf("inv[%d] = %v, want %v", i, inv.A[i], want[i])
		}
	}
	// Invert must not modify its argument.
	if m.A[0] != 4 {
		t.Error("Invert mutated input")
	}
}

func TestInvertSingular(t *testing.T) {
	m := NewMat(2, 2)
	copy(m.A, []float64{1, 2, 2, 4})
	if _, err := Invert(m); !errors.Is(err, ErrSingular) {
		t.Errorf("expected ErrSingular, got %v", err)
	}
	z := NewMat(3, 3)
	if _, err := Invert(z); !errors.Is(err, ErrSingular) {
		t.Errorf("zero matrix: expected ErrSingular, got %v", err)
	}
}

func TestInvertNonSquare(t *testing.T) {
	if _, err := Invert(NewMat(2, 3)); err == nil {
		t.Error("expected error for non-square matrix")
	}
}

func TestInvertNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	m := NewMat(2, 2)
	copy(m.A, []float64{0, 1, 1, 0})
	inv, err := Invert(m)
	if err != nil {
		t.Fatal(err)
	}
	prod := m.Mul(inv)
	assertIdentity(t, prod, 1e-12)
}

func assertIdentity(t *testing.T, m *Mat, tol float64) {
	t.Helper()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !mathx.ApproxEqual(m.At(i, j), want, tol) {
				t.Fatalf("product[%d,%d] = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

// randomSPD builds a random symmetric positive-definite matrix A = B'B + I.
func randomSPD(rng *rand.Rand, n int) *Mat {
	b := NewMat(n, n)
	for i := range b.A {
		b.A[i] = rng.NormFloat64()
	}
	// A = B' * B
	a := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b.At(k, i) * b.At(k, j)
			}
			a.Set(i, j, s)
		}
	}
	a.AddDiag(1)
	return a
}

func TestInvertRandomSPDProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(dim uint8) bool {
		n := int(dim)%12 + 1
		a := randomSPD(rng, n)
		inv, err := Invert(a)
		if err != nil {
			return false
		}
		prod := a.Mul(inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !mathx.ApproxEqual(prod.At(i, j), want, 1e-7) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInvertRegularized(t *testing.T) {
	// Singular matrix: rank 1.
	m := NewMat(2, 2)
	copy(m.A, []float64{1, 2, 2, 4})
	inv, ridge, err := InvertRegularized(m)
	if err != nil {
		t.Fatal(err)
	}
	if ridge <= 0 {
		t.Errorf("ridge = %v, want > 0", ridge)
	}
	if inv == nil {
		t.Fatal("nil inverse")
	}
	// Non-singular input must pass through with no ridge.
	good := Identity(3)
	_, ridge, err = InvertRegularized(good)
	if err != nil || ridge != 0 {
		t.Errorf("identity: ridge=%v err=%v", ridge, err)
	}
	// All-zero matrix regularizes to (lambda I)^-1.
	z := NewMat(2, 2)
	inv, ridge, err = InvertRegularized(z)
	if err != nil {
		t.Fatal(err)
	}
	if ridge <= 0 || !mathx.ApproxEqual(inv.At(0, 0), 1/ridge, 1e-9) {
		t.Errorf("zero matrix: ridge=%v inv00=%v", ridge, inv.At(0, 0))
	}
}

func TestQuadForm(t *testing.T) {
	m := Identity(3)
	if got := QuadForm(m, Vec{1, 2, 3}); got != 14 {
		t.Errorf("QuadForm identity = %v", got)
	}
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	// d'Md for d = (1,1,0): 1 + 1 + 1 + 1 = 4
	if got := QuadForm(m, Vec{1, 1, 0}); got != 4 {
		t.Errorf("QuadForm = %v", got)
	}
}

func TestMahalanobis(t *testing.T) {
	inv := Identity(2)
	got := Mahalanobis(inv, Vec{3, 4}, Vec{0, 0})
	if got != 5 {
		t.Errorf("Mahalanobis identity metric = %v, want 5", got)
	}
	// Distance to self is zero.
	if got := Mahalanobis(inv, Vec{1, 2}, Vec{1, 2}); got != 0 {
		t.Errorf("self distance = %v", got)
	}
}

func TestMahalanobisSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inv := randomSPD(rng, 5)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := NewVec(5), NewVec(5)
		for i := range a {
			a[i], b[i] = r.NormFloat64(), r.NormFloat64()
		}
		d1 := Mahalanobis(inv, a, b)
		d2 := Mahalanobis(inv, b, a)
		return mathx.ApproxEqual(d1, d2, 1e-9) && d1 >= 0 && !math.IsNaN(d1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMahalanobisTriangleOnIdentity(t *testing.T) {
	// Under the identity metric, Mahalanobis is Euclidean and must satisfy
	// the triangle inequality.
	inv := Identity(3)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := func() Vec {
			return Vec{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		}
		a, b, c := v(), v(), v()
		return Mahalanobis(inv, a, c) <= Mahalanobis(inv, a, b)+Mahalanobis(inv, b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestShapePanics(t *testing.T) {
	defer func() { recover() }()
	for name, f := range map[string]func(){
		"MulVec":   func() { NewMat(2, 3).MulVec(Vec{1, 2}) },
		"Mul":      func() { NewMat(2, 3).Mul(NewMat(2, 3)) },
		"QuadForm": func() { QuadForm(NewMat(2, 2), Vec{1, 2, 3}) },
		"NewMat":   func() { NewMat(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on shape mismatch", name)
				}
			}()
			f()
		}()
	}
}
