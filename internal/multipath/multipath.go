// Package multipath implements the paper's multi-finger extension
// (section 6): "Using the Sensor Frame as an input device, I have
// implemented a drawing program based on multiple finger gestures ... the
// translate-rotate-scale gesture is made with two fingers, which during
// the manipulation phase allow for simultaneous rotation, translation, and
// scaling of graphic objects. Even some single finger gestures allow
// additional fingers to be brought into the field of view during
// manipulation, thus allowing additional parameters to be specified
// interactively."
//
// The package provides:
//
//   - the two-point similarity-transform solver behind simultaneous
//     translate-rotate-scale (TransformTracker);
//   - a multi-finger interaction session that classifies the primary
//     finger's stroke with the single-stroke (optionally eager) recognizer
//     and routes additional fingers into the manipulation phase.
//
// The Sensor Frame itself is simulated: fingers are just identified
// timed-point streams, which is all the algorithms consume.
package multipath

import (
	"math"

	"repro/internal/geom"
)

// Transform is an incremental similarity transform: rotate by Rotate and
// scale by Scale about Pivot, then translate by Translate. It is the delta
// between two consecutive two-finger configurations.
type Transform struct {
	Pivot     geom.Point
	Rotate    float64
	Scale     float64
	Translate geom.Point
}

// Identity reports whether the transform moves nothing.
func (t Transform) Identity() bool {
	//lint:ignore floateq identity sentinel: fields are set to exactly 0/1 when no manipulation occurred
	return t.Rotate == 0 && t.Scale == 1 && t.Translate == (geom.Point{})
}

// Apply maps a point through the transform.
func (t Transform) Apply(p geom.Point) geom.Point {
	q := p.Sub(t.Pivot).Rotate(t.Rotate).Scale(t.Scale).Add(t.Pivot)
	return q.Add(t.Translate)
}

// Transformable is anything the transform can drive — GDP shapes satisfy
// it structurally.
type Transformable interface {
	Translate(dx, dy float64)
	RotateScale(center geom.Point, angle, scale float64)
}

// ApplyTo drives a Transformable through the transform (rotate-scale about
// the pivot, then translate).
func (t Transform) ApplyTo(s Transformable) {
	s.RotateScale(t.Pivot, t.Rotate, t.Scale)
	s.Translate(t.Translate.X, t.Translate.Y)
}

// Solve computes the unique similarity transform mapping the segment
// (a0, b0) onto (a1, b1): a0 maps exactly to a1 and b0 to b1 (when the
// source fingers are not coincident; coincident fingers yield a pure
// translation).
func Solve(a0, b0, a1, b1 geom.Point) Transform {
	d0 := b0.Sub(a0)
	d1 := b1.Sub(a1)
	n0 := d0.Norm()
	mid0 := a0.Lerp(b0, 0.5)
	mid1 := a1.Lerp(b1, 0.5)
	if n0 < 1e-9 {
		return Transform{Pivot: mid0, Scale: 1, Translate: mid1.Sub(mid0)}
	}
	scale := d1.Norm() / n0
	rot := math.Atan2(d1.Y, d1.X) - math.Atan2(d0.Y, d0.X)
	// Normalize into (-pi, pi] for sane incremental deltas.
	for rot > math.Pi {
		rot -= 2 * math.Pi
	}
	for rot <= -math.Pi {
		rot += 2 * math.Pi
	}
	return Transform{Pivot: mid0, Rotate: rot, Scale: scale, Translate: mid1.Sub(mid0)}
}

// TransformTracker accumulates incremental transforms from a moving pair
// of fingers. Each Update returns the delta since the previous Update
// (or since construction).
type TransformTracker struct {
	a, b geom.Point
}

// NewTransformTracker starts tracking from the fingers' initial positions.
func NewTransformTracker(a, b geom.Point) *TransformTracker {
	return &TransformTracker{a: a, b: b}
}

// Update consumes new finger positions and returns the incremental
// transform from the previous configuration to this one.
func (t *TransformTracker) Update(a, b geom.Point) Transform {
	tr := Solve(t.a, t.b, a, b)
	t.a, t.b = a, b
	return tr
}
