// Command greplay is the deterministic-replay checker for flight
// recorder bundles: it re-runs a captured gesture's raw points through a
// saved recognizer and diffs the replayed eager decisions against the
// recorded ones, point by point. The eager decision sequence is a pure
// function of the recognizer and the point stream, so a clean replay
// proves the capture is faithful and the code path deterministic; any
// divergence — down to a single margin bit — is reported and the command
// exits nonzero.
//
// Two modes:
//
//	greplay -record -seed 1 -o flight.json -model model.json
//	    Run the instrumented demo workload (internal/obsdemo) with a
//	    keep-everything flight recorder, then save the captured bundles
//	    and the exact recognizer that produced them.
//
//	greplay -bundle flight.json -model model.json [-v]
//	    Load the dump and the recognizer, replay every bundle, and diff.
//	    Exit 0 when every bundle replays bit-identically; exit 1 on any
//	    divergence (or an empty dump — nothing verified is a failure).
//
// The two invocations back-to-back are the self-check CI runs: record a
// deterministic workload, then prove its bundles replay bit-for-bit.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/eager"
	"repro/internal/flight"
	"repro/internal/obsdemo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes greplay with the given arguments; extracted from main for
// tests.
func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("greplay", flag.ContinueOnError)
	flags.SetOutput(stderr)
	record := flags.Bool("record", false, "record a demo workload instead of replaying")
	seed := flags.Int64("seed", 1, "demo workload seed (with -record)")
	out := flags.String("o", "flight.json", "bundle dump to write (with -record)")
	model := flags.String("model", "", "recognizer JSON file (written with -record, read otherwise)")
	bundle := flags.String("bundle", "", "bundle dump to replay")
	verbose := flags.Bool("v", false, "report every bundle, not just divergences")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *model == "" {
		fmt.Fprintln(stderr, "greplay: -model is required")
		return 2
	}

	if *record {
		if err := doRecord(*seed, *out, *model, stdout); err != nil {
			fmt.Fprintf(stderr, "greplay: %v\n", err)
			return 1
		}
		return 0
	}
	if *bundle == "" {
		fmt.Fprintln(stderr, "greplay: -bundle is required (or use -record)")
		return 2
	}
	diverged, err := doReplay(*bundle, *model, *verbose, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "greplay: %v\n", err)
		return 1
	}
	if diverged {
		return 1
	}
	return 0
}

// doRecord runs the demo workload and writes the bundle dump plus the
// recognizer that produced it.
func doRecord(seed int64, out, model string, stdout io.Writer) error {
	rec, recorder, err := obsdemo.Flight(seed)
	if err != nil {
		return err
	}
	if err := rec.SaveFile(model); err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := recorder.WriteJSON(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	offered, captured := recorder.Stats()
	fmt.Fprintf(stdout, "greplay: recorded %d/%d gestures (seed %d) -> %s, model -> %s\n",
		captured, offered, seed, out, model)
	return nil
}

// doReplay replays every bundle in the dump against the recognizer and
// reports divergences. It returns diverged=true when any bundle failed
// to replay bit-identically, or when the dump held no bundles at all
// (verifying nothing must not look like success).
func doReplay(bundle, model string, verbose bool, stdout io.Writer) (diverged bool, err error) {
	rec, err := eager.LoadFile(model)
	if err != nil {
		return false, err
	}
	dump, err := flight.ReadDumpFile(bundle)
	if err != nil {
		return false, err
	}
	if len(dump.Bundles) == 0 {
		fmt.Fprintf(stdout, "greplay: %s holds no bundles — nothing verified\n", bundle)
		return true, nil
	}
	for _, b := range dump.Bundles {
		d, err := flight.Replay(rec, b)
		if err != nil {
			return false, fmt.Errorf("%s: %w", b.Session, err)
		}
		if d != nil {
			diverged = true
			fmt.Fprintf(stdout, "DIVERGED %s (%d points): %s\n", b.Session, len(b.Points), d)
		} else if verbose {
			fmt.Fprintf(stdout, "ok %s (%d points, %d decisions, class %q)\n",
				b.Session, len(b.Points), len(b.Decisions), b.Outcome.Class)
		}
	}
	if diverged {
		fmt.Fprintf(stdout, "greplay: divergence detected across %d bundles\n", len(dump.Bundles))
	} else {
		fmt.Fprintf(stdout, "greplay: %d bundles replayed bit-identically\n", len(dump.Bundles))
	}
	return diverged, nil
}
