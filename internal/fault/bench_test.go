package fault_test

import (
	"testing"

	"repro/internal/fault"
)

// The disabled path — a nil hook, which is what production engines run
// with — must stay in the same sub-5ns class as internal/obs's
// disabled instruments (OBSERVABILITY.md "Overhead"). CI runs the
// FaultDisabled benchmarks into BENCH_fault.json.

var (
	sinkKind fault.Kind
	sinkF    float64
	sinkBool bool
)

func BenchmarkFaultDisabledFate(b *testing.B) {
	var s *fault.Schedule
	for i := 0; i < b.N; i++ {
		sinkKind = s.Fate("bench", i)
	}
}

func BenchmarkFaultDisabledDispatch(b *testing.B) {
	var s *fault.Schedule
	for i := 0; i < b.N; i++ {
		sinkF, _, sinkBool = s.Dispatch("bench", i, 1, 2)
	}
}

func BenchmarkFaultScheduleDispatch(b *testing.B) {
	s, err := fault.NewSchedule(fault.Plan{Seed: 1, Rates: map[fault.Kind]float64{
		fault.KindPanic:  0.01,
		fault.KindPoison: 0.01,
	}})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sinkF, _, sinkBool = s.Dispatch("bench", i, 1, 2)
	}
}

// TestDisabledFaultPathUnderFiveNanoseconds enforces the contract the
// way internal/obs does: skipped under -short and under the race
// detector (instrumentation skews timing), enforced in CI's benchmark
// step.
func TestDisabledFaultPathUnderFiveNanoseconds(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing assertion skipped under the race detector")
	}
	for _, bench := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"Fate", BenchmarkFaultDisabledFate},
		{"Dispatch", BenchmarkFaultDisabledDispatch},
	} {
		res := testing.Benchmark(bench.fn)
		if ns := res.NsPerOp(); ns >= 5 {
			t.Errorf("disabled %s costs %d ns/op, want < 5", bench.name, ns)
		}
	}
}
