package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// AdmitState is the admission controller's coarse health signal,
// published on serve.admit.state and gserve's /healthz and /slo.
type AdmitState int

// Admission controller states.
const (
	// AdmitHealthy: queue wait is within the target; everything is
	// admitted.
	AdmitHealthy AdmitState = iota
	// AdmitBrownout: queue-wait p99 exceeded the target for the
	// sustain period; a fraction of incoming work is shed early with
	// ErrOverloaded and a retry-after hint instead of queueing doomed
	// events.
	AdmitBrownout
)

// String names the state as /healthz and /slo report it ("healthy",
// "brownout").
func (s AdmitState) String() string {
	switch s {
	case AdmitHealthy:
		return "healthy"
	case AdmitBrownout:
		return "brownout"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// AdmitOptions configures the adaptive admission controller
// (Options.Admit). The zero value of each field picks the documented
// default, so AdmitOptions{} is a working CoDel-style configuration.
type AdmitOptions struct {
	// Target is the queue-wait p99 the controller defends; sustained
	// excess triggers brownout. 0 means 5ms.
	Target time.Duration
	// Interval is the evaluation cadence (and the trailing window the
	// p99 is computed over). 0 means 100ms.
	Interval time.Duration
	// Sustain is how many consecutive over-target intervals are
	// required before shedding starts — the guard against reacting to a
	// single burst. 0 means 3.
	Sustain int
	// ShedMin is the initial (and minimum sustained) shed fraction in
	// (0, 1]; shedding below it returns to healthy. 0 means 0.05.
	ShedMin float64
	// ShedMax caps the shed fraction as it doubles under continued
	// overload. 0 means 0.9.
	ShedMax float64
	// RetryAfter is the pacing hint clients receive with an overload
	// NACK. 0 means 50ms.
	RetryAfter time.Duration
	// Clock is the evaluation time source; nil means the engine's
	// clock (wall time unless Options.Clock injects a virtual one).
	Clock Clock
	// Obs, when set, receives the serve.admit.* metrics (see
	// OBSERVABILITY.md); nil leaves the controller unpublished but
	// fully functional.
	Obs *obs.Registry
}

// admitDefaults fills zero fields with the documented defaults.
func (o AdmitOptions) admitDefaults() AdmitOptions {
	if o.Target == 0 {
		o.Target = 5 * time.Millisecond
	}
	if o.Interval == 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.Sustain == 0 {
		o.Sustain = 3
	}
	if o.ShedMin == 0 {
		o.ShedMin = 0.05
	}
	if o.ShedMax == 0 {
		o.ShedMax = 0.9
	}
	if o.RetryAfter == 0 {
		o.RetryAfter = 50 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = wallClock{}
	}
	return o
}

// Admission is the CoDel-style adaptive admission controller: it
// watches the engine's queue-wait distribution over a trailing window
// and, when the p99 stays over the target for the sustain period,
// sheds a deterministic fraction of incoming submits early (before
// they are queued) with ErrOverloaded plus a retry-after hint. The
// shed fraction doubles each further bad interval up to ShedMax and
// halves on good intervals; once it falls below ShedMin the controller
// returns to AdmitHealthy. All methods are safe for concurrent use and
// nil-safe (a nil *Admission admits everything), and the per-submit
// cost is a few atomic operations — evaluation work happens at most
// once per Interval, off the decision's fast path.
type Admission struct {
	target     time.Duration
	interval   time.Duration
	sustain    int64
	shedMin    int64 // permille
	shedMax    int64 // permille
	retryAfter time.Duration
	clock      Clock

	// wait is the trailing queue-wait distribution, kept in priv — a
	// private registry, so the public metric namespace only carries the
	// serve.admit.* results, not the controller's working state.
	wait *obs.WindowedHistogram
	priv *obs.Registry

	lastEval     atomic.Int64 // unix ns of the last evaluation
	shedPerMille atomic.Int64 // current shed fraction, 0 when healthy
	badStreak    atomic.Int64 // consecutive over-target intervals
	state        atomic.Int64 // AdmitState
	seq          atomic.Uint64
	p99          atomic.Int64 // last evaluated wait p99, ns

	mShed    *obs.Counter         // serve.admit.shed
	mShedWin *obs.WindowedCounter // window.serve.admit.shed
	gState   *obs.Gauge           // serve.admit.state
	gShed    *obs.Gauge           // serve.admit.shed_permille
	gP99     *obs.Gauge           // serve.admit.wait_p99_ns
}

// NewAdmission validates the options and builds a controller. Negative
// durations, a negative Sustain, or shed fractions outside (0, 1] or
// with ShedMin > ShedMax are errors.
func NewAdmission(opts AdmitOptions) (*Admission, error) {
	if opts.Target < 0 || opts.Interval < 0 || opts.RetryAfter < 0 {
		return nil, fmt.Errorf("serve: negative admission duration (target %v, interval %v, retry-after %v)",
			opts.Target, opts.Interval, opts.RetryAfter)
	}
	if opts.Sustain < 0 {
		return nil, fmt.Errorf("serve: Sustain must be >= 0, got %d", opts.Sustain)
	}
	if opts.ShedMin < 0 || opts.ShedMin > 1 || opts.ShedMax < 0 || opts.ShedMax > 1 {
		return nil, fmt.Errorf("serve: shed fractions must be in [0, 1], got min %v max %v", opts.ShedMin, opts.ShedMax)
	}
	opts = opts.admitDefaults()
	if opts.ShedMin > opts.ShedMax {
		return nil, fmt.Errorf("serve: ShedMin %v > ShedMax %v", opts.ShedMin, opts.ShedMax)
	}
	a := &Admission{
		target:     opts.Target,
		interval:   opts.Interval,
		sustain:    int64(opts.Sustain),
		shedMin:    int64(opts.ShedMin * 1000),
		shedMax:    int64(opts.ShedMax * 1000),
		retryAfter: opts.RetryAfter,
		clock:      opts.Clock,
	}
	if a.shedMin < 1 {
		a.shedMin = 1
	}
	if a.shedMax < a.shedMin {
		a.shedMax = a.shedMin
	}
	// Private working registry: one windowed histogram sized so the
	// trailing interval is always fully covered, rotating on the
	// controller's clock.
	a.priv = obs.New()
	a.priv.SetClock(opts.Clock)
	a.wait = a.priv.WindowedHistogram("admit.wait_ns", obs.LatencyBuckets(), opts.Interval, 4)
	if opts.Obs != nil {
		a.mShed = opts.Obs.Counter("serve.admit.shed")
		a.mShedWin = opts.Obs.WindowedCounter("window.serve.admit.shed", 0, 0)
		a.gState = opts.Obs.Gauge("serve.admit.state")
		a.gShed = opts.Obs.Gauge("serve.admit.shed_permille")
		a.gP99 = opts.Obs.Gauge("serve.admit.wait_p99_ns")
	}
	return a, nil
}

// waitP99 computes the queue-wait p99 over the trailing window from
// the private registry. The merge spans two slots — the current
// (partial) interval plus the previous full one — because evaluation
// fires just past an interval boundary, when the current slot is
// nearly empty. Evaluation-path only.
func (a *Admission) waitP99() float64 {
	return a.priv.Snapshot().Window("admit.wait_ns").Merge(2 * a.interval).Quantile(0.99)
}

// Admit decides one submit: true admits it; false sheds it (the caller
// returns ErrOverloaded and the shed is counted into serve.admit.*).
// Deterministic pacing, not sampling: with a shed fraction of p/1000,
// exactly p of every 1000 consecutive decisions shed, so tests and
// replays see stable counts. Nil-safe: a nil controller admits.
//
//glint:hotpath
func (a *Admission) Admit() bool {
	if a == nil {
		return true
	}
	a.maybeEvaluate()
	p := a.shedPerMille.Load()
	if p == 0 {
		return true
	}
	seq := a.seq.Add(1)
	if uint64(p)*seq/1000 == uint64(p)*(seq-1)/1000 {
		return true
	}
	a.mShed.Inc()
	a.mShedWin.Inc()
	return false
}

// Observe feeds one queue-wait measurement (enqueue to dequeue) into
// the controller's trailing window. The engine calls it from the shard
// loop at dequeue. Nil-safe.
//
//glint:hotpath
func (a *Admission) Observe(wait time.Duration) {
	if a == nil {
		return
	}
	a.wait.Observe(float64(wait))
	a.maybeEvaluate()
}

// maybeEvaluate runs the interval state machine at most once per
// Interval: the first caller past the boundary CAS-claims the
// evaluation, everyone else proceeds without blocking.
//
//glint:hotpath
func (a *Admission) maybeEvaluate() {
	now := a.clock.Now().UnixNano()
	last := a.lastEval.Load()
	if now-last < int64(a.interval) {
		return
	}
	if !a.lastEval.CompareAndSwap(last, now) {
		return
	}
	a.evaluate()
}

// evaluate is the once-per-interval state machine step: compute the
// trailing-window wait p99, update the bad-interval streak, and adjust
// the shed fraction (start at ShedMin after Sustain bad intervals,
// double while bad, halve while good, drop to healthy below ShedMin).
//
//glint:coldpath runs at most once per Interval; the window merge allocates
func (a *Admission) evaluate() {
	p99 := a.waitP99()
	a.p99.Store(int64(p99))
	over := p99 > float64(a.target)
	var streak int64
	if over {
		streak = a.badStreak.Add(1)
	} else {
		a.badStreak.Store(0)
	}
	p := a.shedPerMille.Load()
	switch {
	case over && streak >= a.sustain:
		if p == 0 {
			p = a.shedMin
		} else if p < a.shedMax {
			p *= 2
			if p > a.shedMax {
				p = a.shedMax
			}
		}
	case !over && p > 0:
		p /= 2
		if p < a.shedMin {
			p = 0
		}
	}
	a.shedPerMille.Store(p)
	st := AdmitHealthy
	if p > 0 {
		st = AdmitBrownout
	}
	a.state.Store(int64(st))
	a.gState.Set(float64(st))
	a.gShed.Set(float64(p))
	a.gP99.Set(p99)
}

// State returns the controller's current coarse state. Nil-safe
// (healthy).
func (a *Admission) State() AdmitState {
	if a == nil {
		return AdmitHealthy
	}
	a.maybeEvaluate()
	return AdmitState(a.state.Load())
}

// ShedPerMille returns the current shed fraction in permille (0 when
// healthy). Nil-safe.
func (a *Admission) ShedPerMille() int64 {
	if a == nil {
		return 0
	}
	return a.shedPerMille.Load()
}

// WaitP99 returns the queue-wait p99 of the last evaluation. Nil-safe.
func (a *Admission) WaitP99() time.Duration {
	if a == nil {
		return 0
	}
	return time.Duration(a.p99.Load())
}

// RetryAfterMS returns the pacing hint, in milliseconds, a shed client
// should wait before resubmitting: the configured base scaled up with
// the shed fraction (base × (1 + permille/250)), so a deepening
// brownout pushes clients back harder. 0 when not shedding. Nil-safe.
func (a *Admission) RetryAfterMS() int64 {
	if a == nil {
		return 0
	}
	p := a.shedPerMille.Load()
	if p == 0 {
		return 0
	}
	base := int64(a.retryAfter / time.Millisecond)
	if base < 1 {
		base = 1
	}
	return base * (1 + p/250)
}
