package gesture

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func mk(pts ...float64) Gesture {
	p := make(geom.Path, 0, len(pts)/2)
	for i := 0; i+1 < len(pts); i += 2 {
		p = append(p, geom.TimedPoint{X: pts[i], Y: pts[i+1], T: float64(len(p)) * 0.02})
	}
	return New(p)
}

func TestGestureBasics(t *testing.T) {
	g := mk(0, 0, 3, 4, 3, 8)
	if g.Len() != 3 {
		t.Errorf("Len = %d", g.Len())
	}
	if g.Start().X != 0 || g.End().Y != 8 {
		t.Error("Start/End wrong")
	}
	if g.PathLength() != 9 {
		t.Errorf("PathLength = %v", g.PathLength())
	}
	if g.Bounds() != (geom.Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 8}) {
		t.Errorf("Bounds = %+v", g.Bounds())
	}
	if d := g.Duration(); d < 0.039 || d > 0.041 {
		t.Errorf("Duration = %v", d)
	}
}

func TestSubAliasesAndPanics(t *testing.T) {
	g := mk(0, 0, 1, 1, 2, 2)
	sub := g.Sub(2)
	if sub.Len() != 2 || sub.End().X != 1 {
		t.Errorf("Sub = %+v", sub)
	}
	defer func() {
		if recover() == nil {
			t.Error("Sub beyond length did not panic")
		}
	}()
	g.Sub(4)
}

func TestSubPrefixProperty(t *testing.T) {
	g := mk(0, 0, 1, 2, 3, 4, 5, 6, 7, 8)
	f := func(n uint8) bool {
		i := int(n)%g.Len() + 1
		sub := g.Sub(i)
		// g[i][p] == g[p] and |g[i]| == i, per the paper's definition.
		if sub.Len() != i {
			return false
		}
		for p := 0; p < i; p++ {
			if sub.Points[p] != g.Points[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := mk(0, 0, 1, 1)
	c := g.Clone()
	c.Points[0].X = 99
	if g.Points[0].X == 99 {
		t.Error("Clone aliases")
	}
}

func TestString(t *testing.T) {
	if got := (Gesture{}).String(); got != "gesture(empty)" {
		t.Errorf("empty String = %q", got)
	}
	got := mk(1, 2, 30, 40).String()
	if !strings.Contains(got, "2 pts") || !strings.Contains(got, "(1,2)->(30,40)") {
		t.Errorf("String = %q", got)
	}
}

func TestSetClassesOrderAndCounts(t *testing.T) {
	var s Set
	s.Add("b", mk(0, 0, 1, 1))
	s.Add("a", mk(0, 0, 1, 1))
	s.Add("b", mk(0, 0, 2, 2))
	if got := s.Classes(); !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Errorf("Classes = %v", got)
	}
	counts := s.CountByClass()
	if counts["b"] != 2 || counts["a"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	by := s.ByClass()
	if len(by["b"]) != 2 || len(by["a"]) != 1 {
		t.Errorf("ByClass sizes wrong")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestValidate(t *testing.T) {
	var s Set
	if err := s.Validate(); !errors.Is(err, ErrEmptySet) {
		t.Errorf("empty set: %v", err)
	}
	s.Add("", mk(0, 0, 1, 1))
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "empty class") {
		t.Errorf("empty class: %v", err)
	}
	s = Set{}
	s.Add("a", Gesture{})
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "is empty") {
		t.Errorf("empty gesture: %v", err)
	}
	s = Set{}
	s.Add("a", New(geom.Path{{X: 0, Y: 0, T: 1}, {X: 1, Y: 1, T: 0.5}}))
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "decreasing timestamp") {
		t.Errorf("decreasing ts: %v", err)
	}
	s = Set{}
	s.Add("a", mk(0, 0, 1, 1))
	if err := s.Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := &Set{Name: "demo"}
	s.Add("a", mk(0, 0, 10, 10, 20, 0))
	s.Add("b", mk(5, 5, 6, 6))
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", s, got)
	}
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	s := &Set{Name: "file"}
	s.Add("x", mk(0, 0, 3, 4))
	path := t.TempDir() + "/set.json"
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "file" || got.Len() != 1 {
		t.Errorf("loaded %+v", got)
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
	if err := s.SaveFile(t.TempDir() + "/no/such/dir/x.json"); err == nil {
		t.Error("bad path accepted")
	}
}
