package eager

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/features"
	"repro/internal/geom"
	"repro/internal/gesture"
	"repro/internal/linalg"
)

// Done implements the paper's D function on a complete gesture prefix:
// true iff the AUC classifies the prefix's feature vector into one of the
// complete sets, i.e. the prefix is judged unambiguous. A prefix whose
// features cannot be computed (non-finite coordinates) is an error, which
// callers should treat as "not done" plus a rejected stroke.
func (r *Recognizer) Done(g gesture.Gesture) (bool, error) {
	if g.Len() < r.Opts.MinSubgesture {
		return false, nil
	}
	f, err := r.Full.Features(g)
	if err != nil {
		return false, err
	}
	name, _, err := r.AUC.Classify(f)
	if err != nil {
		return false, err
	}
	return IsCompleteSet(name), nil
}

// Classify runs the full classifier on a gesture (used at the moment D
// fires, and as the fallback when the gesture ends without ever being
// judged unambiguous).
func (r *Recognizer) Classify(g gesture.Gesture) (string, error) {
	return r.Full.Classify(g)
}

// Session consumes one gesture's points as they arrive, implementing the
// paper's eager-recognition loop: "Each time a new mouse point arrives it
// is appended to the gesture being collected, and D is applied ... Once D
// returns true the collected gesture is passed to C-hat" — all with O(1)
// work per point (incremental features plus one AUC evaluation).
type Session struct {
	r       *Recognizer
	ext     *features.Extractor
	points  geom.Path
	decided bool
	class   string
	// Scratch buffers keep the per-point path allocation-free.
	featBuf linalg.Vec
	aucBuf  []float64
	fullBuf []float64
}

// NewSession starts a streaming recognition session. It fails only when
// the recognizer's feature options are invalid (e.g. deserialized from a
// corrupt file).
func (r *Recognizer) NewSession() (*Session, error) {
	ext, err := features.NewExtractor(r.Full.Opts)
	if err != nil {
		return nil, fmt.Errorf("eager: %w", err)
	}
	return &Session{
		r:       r,
		ext:     ext,
		featBuf: make(linalg.Vec, r.Full.Opts.Dim()),
		aucBuf:  make([]float64, r.AUC.NumClasses()),
		fullBuf: make([]float64, r.Full.C.NumClasses()),
	}, nil
}

// Add feeds one mouse point. It returns fired=true the first time the
// gesture becomes unambiguous, along with the recognized class. After the
// session has decided, further Adds still accumulate points (harmless) but
// report fired=false so callers act on the transition exactly once.
//
// A non-finite point poisons the accumulated features; Add (and a later
// End) then keep returning an error until Reset is called. Callers should
// reject the stroke.
func (s *Session) Add(p geom.TimedPoint) (fired bool, class string, err error) {
	s.points = append(s.points, p)
	s.ext.Add(p)
	if s.decided || len(s.points) < s.r.Opts.MinSubgesture {
		return false, "", nil
	}
	f, err := s.ext.VectorInto(s.featBuf)
	if err != nil {
		return false, "", err
	}
	name, _, err := s.r.AUC.ClassifyInto(f, s.aucBuf)
	if err != nil {
		return false, "", err
	}
	if !IsCompleteSet(name) {
		return false, "", nil
	}
	class, _, err = s.r.Full.C.ClassifyInto(f, s.fullBuf)
	if err != nil {
		return false, "", err
	}
	if s.r.Opts.RequireAgreement && class != strings.TrimPrefix(name, CompletePrefix) {
		// The AUC believes the prefix is unambiguous but the full
		// classifier has not caught up yet (typical right at a corner):
		// wait for them to agree.
		return false, "", nil
	}
	s.decided = true
	s.class = class
	return true, s.class, nil
}

// Reset returns the session to its initial empty state so it can collect
// a fresh gesture, reusing every allocated buffer (points backing array,
// feature and score buffers, extractor). This is both the recovery path
// after a poisoned stroke — a non-finite point leaves the incremental
// features permanently non-finite, so Add and End error until Reset — and
// the reuse path for serving engines that pool sessions across gestures.
func (s *Session) Reset() {
	s.ext.Reset()
	s.points = s.points[:0]
	s.decided = false
	s.class = ""
}

// Decided reports whether the session has already fired.
func (s *Session) Decided() bool { return s.decided }

// Class returns the recognized class, or "" before any decision.
func (s *Session) Class() string { return s.class }

// PointCount returns the number of points fed so far.
func (s *Session) PointCount() int { return len(s.points) }

// Gesture returns the points collected so far as a gesture.
func (s *Session) Gesture() gesture.Gesture { return gesture.New(s.points) }

// End finishes the session at mouse-up: if the gesture was never judged
// unambiguous, it is classified in full now. Returns the final class, or
// an error when the stroke's features are non-finite (the caller should
// reject the gesture).
func (s *Session) End() (string, error) {
	if !s.decided {
		class, err := s.r.Classify(s.Gesture())
		if err != nil {
			return "", err
		}
		s.class = class
		s.decided = true
	}
	return s.class, nil
}

// Run replays an entire gesture through a fresh session and reports the
// outcome: the recognized class and the number of points that had been
// seen when recognition fired (|g| when it only fired at the end). This is
// the measurement behind the paper's "percentage of mouse points examined"
// statistics in section 5.
func (r *Recognizer) Run(g gesture.Gesture) (class string, firedAt int, err error) {
	s, err := r.NewSession()
	if err != nil {
		return "", 0, err
	}
	for i, p := range g.Points {
		fired, c, err := s.Add(p)
		if err != nil {
			return "", 0, err
		}
		if fired {
			return c, i + 1, nil
		}
	}
	class, err = s.End()
	if err != nil {
		return "", 0, err
	}
	return class, g.Len(), nil
}

// WriteJSON serializes the recognizer.
func (r *Recognizer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("eager: encode: %w", err)
	}
	return nil
}

// ReadJSON deserializes a recognizer, validating both classifiers and
// the feature options so corrupt files fail at load time rather than at
// recognition time.
func ReadJSON(rd io.Reader) (*Recognizer, error) {
	var r Recognizer
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("eager: decode: %w", err)
	}
	if r.Full == nil || r.Full.C == nil || r.AUC == nil {
		return nil, fmt.Errorf("eager: incomplete recognizer JSON")
	}
	if err := r.Full.Opts.Validate(); err != nil {
		return nil, fmt.Errorf("eager: %w", err)
	}
	if err := r.Full.C.Validate(); err != nil {
		return nil, fmt.Errorf("eager: full classifier: %w", err)
	}
	if err := r.AUC.Validate(); err != nil {
		return nil, fmt.Errorf("eager: auc: %w", err)
	}
	if r.Full.C.Dim != r.AUC.Dim {
		return nil, fmt.Errorf("eager: full classifier dimension %d does not match AUC dimension %d",
			r.Full.C.Dim, r.AUC.Dim)
	}
	if r.Opts.MinSubgesture < 2 {
		r.Opts.MinSubgesture = DefaultOptions().MinSubgesture
	}
	return &r, nil
}

// SaveFile writes the recognizer to the named file.
func (r *Recognizer) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("eager: %w", err)
	}
	defer f.Close()
	if err := r.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a recognizer from the named file.
func LoadFile(path string) (*Recognizer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("eager: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}
