package gdp

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/eager"
	"repro/internal/geom"
	"repro/internal/grandma"
	"repro/internal/synth"
)

var (
	recOnce   sync.Once
	sharedRec *eager.Recognizer
	recErr    error
)

// testRecognizer trains the GDP recognizer once for the whole test binary.
func testRecognizer(t *testing.T) *eager.Recognizer {
	t.Helper()
	recOnce.Do(func() {
		set, _ := synth.NewGenerator(synth.DefaultParams(1)).Set("gdp-train", synth.GDPClasses(), 15)
		sharedRec, _, recErr = eager.Train(set, eager.DefaultOptions())
	})
	if recErr != nil {
		t.Fatal(recErr)
	}
	return sharedRec
}

func newApp(t *testing.T, mode grandma.TransitionMode) *App {
	t.Helper()
	app, err := New(Config{Recognizer: testRecognizer(t), Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// driver returns a low-noise generator for steering gestures at exact scene
// locations (the recognizer was trained on noisier data, so these classify
// reliably).
func driver(seed int64) *synth.Generator {
	p := synth.DefaultParams(seed)
	p.Jitter = 0.5
	p.RotJitter = 0.01
	p.ScaleJitter = 0.03
	p.CornerLoopProb = 0
	return synth.NewGenerator(p)
}

func classByName(t *testing.T, name string) synth.Class {
	t.Helper()
	for _, c := range synth.GDPClasses() {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("no class %q", name)
	return synth.Class{}
}

func gestureAt(t *testing.T, g *synth.Generator, class string, origin geom.Point) geom.Path {
	t.Helper()
	return g.SampleAt(classByName(t, class), origin).G.Points
}

func TestCreateRectMouseUp(t *testing.T) {
	app := newApp(t, grandma.ModeMouseUp)
	g := driver(10)
	p := gestureAt(t, g, "rect", geom.Pt(100, 100))
	app.PlayGesture(p)
	if app.Scene.Len() != 1 {
		t.Fatalf("scene = %v (log: %v)", app.Scene.Kinds(), app.Log)
	}
	r, ok := app.Scene.Shapes()[0].(*Rect)
	if !ok {
		t.Fatalf("shape is %T", app.Scene.Shapes()[0])
	}
	// Corner 1 at the gesture start, corner 2 at the final mouse position.
	start, end := p[0], p[len(p)-1]
	if math.Abs(r.X1-start.X) > 1 || math.Abs(r.Y1-start.Y) > 1 {
		t.Errorf("corner1 (%v,%v) vs start (%v,%v)", r.X1, r.Y1, start.X, start.Y)
	}
	if math.Abs(r.X2-end.X) > 1 || math.Abs(r.Y2-end.Y) > 1 {
		t.Errorf("corner2 (%v,%v) vs end (%v,%v)", r.X2, r.Y2, end.X, end.Y)
	}
}

func TestRubberbandRectTimeout(t *testing.T) {
	app := newApp(t, grandma.ModeTimeout)
	g := driver(11)
	p := gestureAt(t, g, "rect", geom.Pt(100, 100))
	target := geom.Pt(300, 250)
	app.PlayTwoPhase(p, 0.3, []geom.Point{{X: 200, Y: 180}, target})
	if app.Scene.Len() != 1 {
		t.Fatalf("scene = %v (log: %v)", app.Scene.Kinds(), app.Log)
	}
	r := app.Scene.Shapes()[0].(*Rect)
	// The manipulation phase rubberbanded corner 2 to the target.
	if r.X2 != target.X || r.Y2 != target.Y {
		t.Errorf("corner2 (%v,%v), want %v", r.X2, r.Y2, target)
	}
}

func TestCreateLineAndEllipse(t *testing.T) {
	app := newApp(t, grandma.ModeMouseUp)
	g := driver(12)
	app.PlayGesture(gestureAt(t, g, "line", geom.Pt(80, 60)))
	app.PlayGesture(gestureAt(t, g, "ellipse", geom.Pt(350, 220)))
	kinds := strings.Join(app.Scene.Kinds(), ",")
	if kinds != "line,ellipse" {
		t.Fatalf("scene = %s (log: %v)", kinds, app.Log)
	}
	e := app.Scene.Shapes()[1].(*Ellipse)
	// Ellipse center fixed at the gesture start. (The ellipse skeleton's
	// first vertex sits at the top of the oval, so the start is offset
	// from the anchoring origin.)
	if math.Abs(e.CX-350) > 3 || math.Abs(e.CY-189) > 6 {
		t.Errorf("ellipse center (%v,%v), want near gesture start (350,189)", e.CX, e.CY)
	}
}

func TestCreateTextAndDot(t *testing.T) {
	app := newApp(t, grandma.ModeMouseUp)
	app.NextText = "hello"
	g := driver(13)
	app.PlayGesture(gestureAt(t, g, "text", geom.Pt(120, 300)))
	app.PlayGesture(gestureAt(t, g, "dot", geom.Pt(40, 40)))
	kinds := strings.Join(app.Scene.Kinds(), ",")
	if kinds != "text,dot" {
		t.Fatalf("scene = %s (log: %v)", kinds, app.Log)
	}
	if app.Scene.Shapes()[0].(*Text).S != "hello" {
		t.Error("NextText not used")
	}
}

func TestMoveGesture(t *testing.T) {
	app := newApp(t, grandma.ModeTimeout)
	app.Scene.Add(NewRect(200, 200, 240, 230))
	g := driver(14)
	// Start the move gesture on the rect's edge.
	p := gestureAt(t, g, "move", geom.Pt(220, 200))
	end := p[len(p)-1]
	target := geom.Pt(end.X+90, end.Y+50)
	app.PlayTwoPhase(p, 0.3, []geom.Point{target})
	r := app.Scene.Shapes()[0].(*Rect)
	// The rect translated by the manipulation delta (target - transition
	// point).
	if math.Abs(r.X1-290) > 1 || math.Abs(r.Y1-250) > 1 {
		t.Errorf("rect at (%v,%v), want near (290,250); log: %v", r.X1, r.Y1, app.Log)
	}
}

func TestCopyGesture(t *testing.T) {
	app := newApp(t, grandma.ModeTimeout)
	app.Scene.Add(NewEllipse(150, 150, 30, 20))
	g := driver(15)
	// The copy skeleton's first vertex is (0,-27), so anchoring at
	// (150,157) puts the gesture start at (150,130) — the top of the
	// ellipse outline.
	p := gestureAt(t, g, "copy", geom.Pt(150, 157))
	start := p[0]
	if !app.Scene.Shapes()[0].Touches(geom.Pt(start.X, start.Y), app.PickTol) {
		t.Fatalf("test setup: copy start (%v,%v) misses the ellipse", start.X, start.Y)
	}
	app.PlayTwoPhase(p, 0.3, []geom.Point{{X: 400, Y: 300}})
	if app.Scene.Len() != 2 {
		t.Fatalf("scene = %v (log: %v)", app.Scene.Kinds(), app.Log)
	}
	orig := app.Scene.Shapes()[0].(*Ellipse)
	cp := app.Scene.Shapes()[1].(*Ellipse)
	if orig.CX != 150 {
		t.Error("original moved")
	}
	if cp.CX == orig.CX && cp.CY == orig.CY {
		t.Error("copy not repositioned")
	}
}

func TestDeleteGesture(t *testing.T) {
	app := newApp(t, grandma.ModeTimeout)
	app.Scene.Add(NewRect(100, 100, 140, 130))
	app.Scene.Add(NewDot(300, 250))
	g := driver(16)
	// Delete starting on the rect edge; then touch the dot during
	// manipulation.
	p := gestureAt(t, g, "delete", geom.Pt(120, 100))
	app.PlayTwoPhase(p, 0.3, []geom.Point{{X: 300, Y: 250}})
	if app.Scene.Len() != 0 {
		t.Fatalf("scene = %v (log: %v)", app.Scene.Kinds(), app.Log)
	}
}

func TestGroupGesture(t *testing.T) {
	app := newApp(t, grandma.ModeTimeout)
	app.Scene.Add(NewDot(195, 205))
	app.Scene.Add(NewDot(210, 195))
	outside := NewDot(400, 100)
	app.Scene.Add(outside)
	g := driver(17)
	// The group lasso circles around origin (200,200) with radius ~55; its
	// skeleton starts at the top of the circle.
	p := gestureAt(t, g, "group", geom.Pt(200, 200))
	// During manipulation, touch the outside dot to add it.
	app.PlayTwoPhase(p, 0.3, []geom.Point{{X: 400, Y: 100}})
	grp, ok := app.Scene.Shapes()[len(app.Scene.Shapes())-1].(*Group)
	if !ok {
		t.Fatalf("no group on top: %v (log: %v)", app.Scene.Kinds(), app.Log)
	}
	if len(grp.Members) != 3 {
		t.Fatalf("group has %d members, want 3 (log: %v)", len(grp.Members), app.Log)
	}
	if app.Scene.Len() != 1 {
		t.Errorf("scene = %v", app.Scene.Kinds())
	}
}

func TestRotateScaleGesture(t *testing.T) {
	app := newApp(t, grandma.ModeTimeout)
	l := NewLine(200, 200, 260, 200)
	app.Scene.Add(l)
	g := driver(18)
	// rotate-scale's skeleton starts at (36, 0) from its circle center; we
	// want the START on the line, e.g. at (230, 200) -> origin (194, 200).
	p := gestureAt(t, g, "rotate-scale", geom.Pt(194, 200))
	start := p[0]
	if !l.Touches(geom.Pt(start.X, start.Y), app.PickTol) {
		t.Fatalf("test setup: gesture start (%v,%v) misses the line", start.X, start.Y)
	}
	before := geom.Pt(l.X2-l.X1, l.Y2-l.Y1).Norm()
	end := p[len(p)-1]
	// Drag the reference point further from the center: pure scale-up.
	v := geom.Pt(end.X, end.Y).Sub(geom.Pt(start.X, start.Y))
	far := geom.Pt(start.X, start.Y).Add(v.Scale(1.8))
	app.PlayTwoPhase(p, 0.3, []geom.Point{far})
	after := geom.Pt(l.X2-l.X1, l.Y2-l.Y1).Norm()
	if after <= before*1.2 {
		t.Errorf("line length %v -> %v; rotate-scale had no effect (log: %v)", before, after, app.Log)
	}
}

func TestEditGestureControlPoints(t *testing.T) {
	app := newApp(t, grandma.ModeMouseUp)
	r := NewRect(150, 150, 250, 220)
	app.Scene.Add(r)
	g := driver(19)
	p := gestureAt(t, g, "edit", geom.Pt(150, 150)) // start on the corner
	app.PlayGesture(p)
	cps := app.ControlPointViews()
	if len(cps) != 4 {
		t.Fatalf("%d control points (log: %v)", len(cps), app.Log)
	}
	// Drag the bottom-right control point outward: the rect scales up
	// about the opposite corner.
	before := r.Bounds().Diagonal()
	bc := cps[2].Frame.Center()
	app.Drag(bc, bc.Add(geom.Pt(60, 40)), 6)
	after := r.Bounds().Diagonal()
	if after <= before {
		t.Errorf("diagonal %v -> %v after control-point drag", before, after)
	}
	app.ClearControlPoints()
	if len(app.ControlPointViews()) != 0 {
		t.Error("control points not cleared")
	}
}

func TestEagerModeEndToEnd(t *testing.T) {
	app := newApp(t, grandma.ModeEager)
	g := driver(20)
	anyEarly := false
	for i := 0; i < 5; i++ {
		p := gestureAt(t, g, "rect", geom.Pt(120+float64(i)*80, 90))
		app.PlayGesture(p)
		if app.Scene.Len() != i+1 || app.Scene.Shapes()[i].Kind() != "rect" {
			t.Fatalf("scene = %v (log: %v)", app.Scene.Kinds(), app.Log)
		}
		r := app.Scene.Shapes()[i].(*Rect)
		end := p[len(p)-1]
		// In eager mode the remaining stroke IS the manipulation: corner 2
		// lands exactly on the final mouse position.
		if math.Abs(r.X2-end.X) > 0.01 || math.Abs(r.Y2-end.Y) > 0.01 {
			t.Errorf("corner2 (%v,%v) vs end (%v,%v)", r.X2, r.Y2, end.X, end.Y)
		}
		last := app.LastLog()
		if !strings.Contains(last, "recognized rect") {
			t.Fatalf("no recognition logged: %v", app.Log)
		}
		if !strings.Contains(last, fmt.Sprintf("after %d points", len(p))) {
			anyEarly = true
		}
	}
	// Across several samples, eager recognition should fire before the
	// stroke ends at least once.
	if !anyEarly {
		t.Errorf("eager recognition never fired before the end of a stroke: %v", app.Log)
	}
}

func TestRenderShowsShapes(t *testing.T) {
	app := newApp(t, grandma.ModeMouseUp)
	app.Scene.Add(NewRect(10, 10, 60, 40))
	app.Scene.Add(NewDot(100, 50))
	out := app.Render()
	if !strings.Contains(out, "#") || !strings.Contains(out, "@") {
		t.Error("render missing shape glyphs")
	}
}

func TestNewWithDefaults(t *testing.T) {
	// Trains its own recognizer with a small per-class count to stay fast.
	app, err := New(Config{TrainPerClass: 5, TrainSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if app.Canvas.W != 600 || app.Canvas.H != 400 {
		t.Errorf("default canvas %dx%d", app.Canvas.W, app.Canvas.H)
	}
	if len(app.Handler.Classes()) != 11 {
		t.Errorf("classes = %v", app.Handler.Classes())
	}
}
