// Command gtop is the live terminal dashboard for a running gserve: it
// polls /metrics (the obs JSON snapshot) and /slo (the burn-rate
// evaluation) and renders rolling-window rates with trend sparklines,
// windowed latency quantiles, SLO burn state, and the slowest recent
// gestures — `top` for the gesture server. Stdlib only; no terminal
// library.
//
// Usage:
//
//	gtop [-addr http://127.0.0.1:8089] [-interval 2s] [-once] [-top 5]
//	     [-window 1m]
//
// -once renders a single frame and exits (the CI smoke mode); without
// it gtop clears the screen and repaints every -interval until
// interrupted. -window picks the trailing span the RATES and LATENCY
// sections aggregate over (capped by the server's ring, 30m by
// default).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/slo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// sparkRunes are the eight fill levels a trend cell can take, lowest
// first.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkSlots is how many trailing window slots a trend sparkline shows.
const sparkSlots = 12

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("gtop", flag.ContinueOnError)
	flags.SetOutput(stderr)
	addr := flags.String("addr", "http://127.0.0.1:8089", "gserve base URL")
	interval := flags.Duration("interval", 2*time.Second, "poll and repaint period")
	once := flags.Bool("once", false, "render one frame and exit")
	topN := flags.Int("top", 5, "slowest recent gestures to list")
	window := flags.Duration("window", time.Minute, "trailing span for rates and quantiles")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *interval <= 0 || *topN < 0 || *window <= 0 {
		fmt.Fprintln(stderr, "gtop: -interval and -window must be positive, -top >= 0")
		return 2
	}
	base := strings.TrimRight(*addr, "/")
	for {
		frame, err := render(base, *window, *topN)
		if err != nil {
			fmt.Fprintf(stderr, "gtop: %v\n", err)
			return 1
		}
		if *once {
			io.WriteString(stdout, frame)
			return 0
		}
		// Clear screen + home, then the frame: a flicker-free repaint on
		// any ANSI terminal.
		io.WriteString(stdout, "\x1b[2J\x1b[H"+frame)
		time.Sleep(*interval)
	}
}

// fetch GETs url and decodes the JSON body into v.
func fetch(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("GET %s: %v", url, err)
	}
	return nil
}

// render polls the server once and formats the full dashboard frame.
func render(base string, window time.Duration, topN int) (string, error) {
	var snap obs.Snapshot
	if err := fetch(base+"/metrics", &snap); err != nil {
		return "", err
	}
	var eval slo.Evaluation
	if err := fetch(base+"/slo", &eval); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "gtop — %s @ %s (window %s)\n\n",
		base, time.Now().Format("15:04:05"), window)
	renderRates(&b, snap, window)
	renderLatency(&b, snap, window)
	renderSLO(&b, eval)
	renderTopSessions(&b, snap, topN)
	return b.String(), nil
}

// renderRates lists every windowed counter with its trailing count,
// per-second rate, and a per-slot trend sparkline.
func renderRates(b *strings.Builder, snap obs.Snapshot, window time.Duration) {
	fmt.Fprintf(b, "RATES (%s)\n", window)
	fmt.Fprintf(b, "  %-40s %12s %10s  %s\n", "counter", "count", "rate/s", "trend")
	n := 0
	for _, w := range snap.Windows {
		if w.Bounds != nil {
			continue // histogram windows render under LATENCY
		}
		fmt.Fprintf(b, "  %-40s %12d %10.1f  %s\n",
			w.Name, w.Total(window), w.Rate(window), sparkline(w, sparkSlots))
		n++
	}
	if n == 0 {
		fmt.Fprintln(b, "  (no windowed counters)")
	}
	fmt.Fprintln(b)
}

// renderLatency lists every windowed histogram with trailing count and
// p50/p90/p99 over the merged window.
func renderLatency(b *strings.Builder, snap obs.Snapshot, window time.Duration) {
	fmt.Fprintf(b, "LATENCY (%s)\n", window)
	fmt.Fprintf(b, "  %-40s %12s %10s %10s %10s  %s\n", "histogram", "count", "p50", "p90", "p99", "trend")
	n := 0
	for _, w := range snap.Windows {
		if w.Bounds == nil {
			continue
		}
		m := w.Merge(window)
		fmt.Fprintf(b, "  %-40s %12d %10s %10s %10s  %s\n",
			w.Name, m.Count,
			fmtNS(m.Quantile(0.50)), fmtNS(m.Quantile(0.90)), fmtNS(m.Quantile(0.99)),
			sparkline(w, sparkSlots))
		n++
	}
	if n == 0 {
		fmt.Fprintln(b, "  (no windowed histograms)")
	}
	fmt.Fprintln(b)
}

// renderSLO lists each objective's burn state, worst as the headline.
func renderSLO(b *strings.Builder, eval slo.Evaluation) {
	fmt.Fprintln(b, "SLO")
	fmt.Fprintf(b, "  %-24s %-6s %12s %12s  %s\n", "objective", "state", "burn(fast)", "burn(slow)", "description")
	if len(eval.Objectives) == 0 {
		fmt.Fprintln(b, "  (no objectives)")
	}
	for _, st := range eval.Objectives {
		fmt.Fprintf(b, "  %-24s %-6s %12.2f %12.2f  %s\n",
			st.Objective.Name, st.State, st.BurnFast, st.BurnSlow, st.Objective.Description)
	}
	fmt.Fprintln(b)
}

// renderTopSessions lists the slowest recorded gesture root spans.
func renderTopSessions(b *strings.Builder, snap obs.Snapshot, topN int) {
	fmt.Fprintf(b, "TOP SESSIONS (slowest of last %d gesture spans)\n", spanCount(snap))
	type row struct {
		session, class, outcome string
		dur                     time.Duration
	}
	var rows []row
	for _, sb := range snap.Spans {
		for _, sp := range sb.Spans {
			if sp.Parent != 0 || sp.Name != "gesture" {
				continue
			}
			r := row{dur: time.Duration(sp.End - sp.Start)}
			for _, a := range sp.Attrs {
				switch a.Key {
				case "session":
					r.session = a.Str
				case "class":
					r.class = a.Str
				case "outcome":
					r.outcome = a.Str
				}
			}
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].dur > rows[j].dur })
	if len(rows) > topN {
		rows = rows[:topN]
	}
	if len(rows) == 0 {
		fmt.Fprintln(b, "  (no gesture spans recorded)")
		return
	}
	fmt.Fprintf(b, "  %-24s %-12s %-10s %10s\n", "session", "class", "outcome", "latency")
	for _, r := range rows {
		fmt.Fprintf(b, "  %-24s %-12s %-10s %10s\n", r.session, r.class, r.outcome, r.dur.Round(time.Microsecond))
	}
}

// spanCount totals the root gesture spans currently buffered.
func spanCount(snap obs.Snapshot) int {
	n := 0
	for _, sb := range snap.Spans {
		for _, sp := range sb.Spans {
			if sp.Parent == 0 && sp.Name == "gesture" {
				n++
			}
		}
	}
	return n
}

// sparkline renders the last n slots of a window as fill-level runes,
// oldest left, scaled to the busiest shown slot. Missing slots (no
// traffic in that 10s bucket) render as spaces.
func sparkline(w obs.WindowSnap, n int) string {
	if n <= 0 || w.SlotNS <= 0 {
		return ""
	}
	counts := make([]int64, n)
	present := make([]bool, n)
	var max int64
	for _, s := range w.Live {
		back := w.Epoch - s.Epoch // 0 = current slot
		if back < 0 || back >= int64(n) {
			continue
		}
		i := n - 1 - int(back)
		counts[i], present[i] = s.Count, true
		if s.Count > max {
			max = s.Count
		}
	}
	out := make([]rune, n)
	for i := range out {
		switch {
		case !present[i]:
			out[i] = ' '
		case max == 0:
			out[i] = sparkRunes[0]
		default:
			lvl := int(counts[i] * int64(len(sparkRunes)-1) / max)
			out[i] = sparkRunes[lvl]
		}
	}
	return string(out)
}

// fmtNS renders a nanosecond quantity with a human unit (ns/µs/ms/s).
func fmtNS(ns float64) string {
	switch {
	case ns <= 0:
		return "-"
	case ns < 1e3:
		return fmt.Sprintf("%.0fns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.1fms", ns/1e6)
	}
	return fmt.Sprintf("%.2fs", ns/1e9)
}
