package serve

// The hot-path allocation contract, extended to the template backend.
// bench_hotpath_test.go proves the eager backend's decide/Submit paths
// allocation-free; the gates here prove the same property holds when
// the engine is routed through the streaming template matcher — the
// recognizer.Backend abstraction must not cost an allocation per point
// on either side of the interface. CI publishes the benchmark numbers
// as BENCH_backends.json, the A/B companion to BENCH_hotpath.json's
// eager-only figures.

import (
	"errors"
	"runtime"
	"testing"

	"repro/internal/multipath"
	"repro/internal/synth"
	"repro/internal/template"
)

// trainTemplate trains a streaming template backend on the same UD
// workload trainRec uses for the eager backend, so cross-backend tests
// and benchmarks compare like against like.
func trainTemplate(t testing.TB, seed int64) *template.Recognizer {
	t.Helper()
	set, _ := synth.NewGenerator(synth.DefaultParams(seed)).Set("train", synth.UDClasses(), 12)
	rec, err := template.Train(set, template.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// BenchmarkTemplateDecidePerPoint measures one template.Session.Add —
// incremental resample plus nearest-template scoring — on a warm
// session with observability disabled. The contract is 0 allocs/op;
// the ns/op sits above the eager backend's (O(templates x points)
// scoring against O(features)), which is exactly the cost-structure
// trade the A/B experiment quantifies.
func BenchmarkTemplateDecidePerPoint(b *testing.B) {
	rec := trainTemplate(b, 1)
	s, err := rec.NewSession()
	if err != nil {
		b.Fatal(err)
	}
	g, _ := sampleGesture(2, 0)
	for _, p := range g {
		s.Add(p)
	}
	s.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	j := 0
	for i := 0; i < b.N; i++ {
		if j == len(g) {
			s.Reset()
			j = 0
		}
		s.Add(g[j])
		j++
	}
}

// BenchmarkTemplateSubmitSteadyState measures the full engine path with
// the template backend selected via Options.Backend — Submit, shard
// dispatch, streaming decide, completion, pool return — in steady
// state. 0 allocs/op means backend selection costs nothing per event.
func BenchmarkTemplateSubmitSteadyState(b *testing.B) {
	e, err := New(nil, Options{Backend: trainTemplate(b, 1), Shards: 1, QueueDepth: 4096})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	g, _ := sampleGesture(2, 0)
	playSession(b, e, "bench", g)
	if err := e.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	t, j := g[len(g)-1].T+1, 0
	for i := 0; i < b.N; i++ {
		ev := Event{Session: "bench", Finger: 0, T: t}
		switch {
		case j == 0:
			ev.Kind = multipath.FingerDown
			ev.X, ev.Y = g[0].X, g[0].Y
		case j < len(g):
			ev.Kind = multipath.FingerMove
			ev.X, ev.Y = g[j].X, g[j].Y
		default:
			ev.Kind = multipath.FingerUp
			ev.X, ev.Y = g[len(g)-1].X, g[len(g)-1].Y
		}
		for {
			err := e.Submit(ev)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				b.Fatal(err)
			}
			runtime.Gosched() // backpressure: let the shard drain
		}
		t++
		if j++; j > len(g) {
			j = 0
		}
	}
	b.StopTimer()
}

// TestTemplateDecidePathZeroAlloc is the allocation gate as a hard
// test: a warm template session must perform zero allocations per Add,
// the same contract TestDecidePathZeroAlloc pins for the eager backend.
func TestTemplateDecidePathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the contract is asserted by the non-race pass")
	}
	rec := trainTemplate(t, 1)
	s, err := rec.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	g, _ := sampleGesture(2, 0)
	for _, p := range g {
		s.Add(p)
	}
	s.Reset()
	j := 0
	allocs := testing.AllocsPerRun(400, func() {
		if j == len(g) {
			s.Reset()
			j = 0
		}
		s.Add(g[j])
		j++
	})
	if allocs != 0 {
		t.Fatalf("template decide path allocated %.2f times per point; the //glint:hotpath contract requires 0", allocs)
	}
}

// TestTemplateSubmitPathZeroAlloc extends the gate to the engine's
// intake half with the template backend serving.
func TestTemplateSubmitPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the contract is asserted by the non-race pass")
	}
	e, err := New(nil, Options{Backend: trainTemplate(t, 1), Shards: 1, QueueDepth: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	g, _ := sampleGesture(2, 0)
	playSession(t, e, "warm", g)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(Event{Session: "warm", Finger: 0, Kind: multipath.FingerDown, X: g[0].X, Y: g[0].Y, T: g[len(g)-1].T + 1}); err != nil {
		t.Fatal(err)
	}
	ts := g[len(g)-1].T + 2
	allocs := testing.AllocsPerRun(400, func() {
		for {
			err := e.Submit(Event{Session: "warm", Finger: 0, Kind: multipath.FingerMove, X: g[0].X, Y: g[0].Y, T: ts})
			if err == nil {
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				t.Fatal(err)
			}
			runtime.Gosched()
		}
		ts++
	})
	if allocs != 0 {
		t.Fatalf("template Submit allocated %.2f times per event; the //glint:hotpath contract requires 0", allocs)
	}
}
