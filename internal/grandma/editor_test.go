package grandma

import (
	"strings"
	"testing"

	"repro/internal/display"
	"repro/internal/eager"
	"repro/internal/geom"
	"repro/internal/script"
	"repro/internal/synth"
)

// TestTrainByExampleLoop walks the full GRANDMA designer workflow: start
// with a two-class interface, record a brand-new gesture class by drawing
// examples through the live interface, retrain, attach interpreted
// semantics, and use the new gesture.
func TestTrainByExampleLoop(t *testing.T) {
	// Seed interface: U and D.
	seedSet, _ := synth.NewGenerator(synth.DefaultParams(7)).Set("seed", synth.UDClasses(), 12)
	rec, _, err := eager.Train(seedSet, eager.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h := NewGestureHandler(rec.Full, ModeMouseUp)
	var recognized []string
	h.OnRecognized = func(class string, a *Attrs) { recognized = append(recognized, class) }

	root := NewView("window", nil)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 2000, MaxY: 2000}
	editor := NewEditor(h, seedSet, eager.DefaultOptions())
	root.AddHandler(editor.Recorder) // inert until BeginRecording
	root.AddHandler(h)
	s := NewSession(root, nil)

	// The new class: a right stroke.
	rightClass := synth.RightStrokeClass()
	gen := synth.NewGenerator(synth.DefaultParams(55))
	when := 0.0
	play := func(p geom.Path) {
		s.Replay(display.StrokeTrace(p.TimeShift(when-p[0].T), display.LeftButton, 0.01))
		when += 5
	}

	// Before training, a right stroke is misunderstood as U or D.
	play(gen.Sample(rightClass).G.Points)
	if len(recognized) != 1 || recognized[0] == "R" {
		t.Fatalf("pre-training recognition: %v", recognized)
	}
	recognized = nil

	// Record 12 examples of the new class through the interface.
	if err := editor.BeginRecording("R"); err != nil {
		t.Fatal(err)
	}
	if editor.Recording() != "R" {
		t.Fatal("recording state")
	}
	for i := 0; i < 12; i++ {
		play(gen.Sample(rightClass).G.Points)
	}
	editor.EndRecording()
	if len(recognized) != 0 {
		t.Fatalf("gesture handler fired while recording: %v", recognized)
	}
	if got := strings.Join(editor.Counts(), " "); got != "D:12 R:12 U:12" {
		t.Fatalf("counts = %s", got)
	}

	// Retrain and attach interpreted semantics for the new class.
	report, err := editor.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if report.AUCClasses < 4 {
		t.Errorf("retrained AUC classes = %d", report.AUCClasses)
	}
	marker := script.NewDispatch("marker")
	hits := 0
	marker.Bind("ping", func(args []script.Value) (script.Value, error) {
		hits++
		return nil, nil
	})
	err = editor.SetScriptSemantics("R", "[marker ping]", "nil", "nil",
		func(a *Attrs, env *script.Env) { env.SetVar("marker", marker) }, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The interface now recognizes R and runs its semantics.
	play(gen.Sample(rightClass).G.Points)
	if len(recognized) != 1 || recognized[0] != "R" {
		t.Fatalf("post-training recognition: %v", recognized)
	}
	if hits != 1 {
		t.Fatalf("script semantics ran %d times", hits)
	}
	// And the original classes still work.
	play(gen.Sample(synth.UDClasses()[0]).G.Points)
	if recognized[len(recognized)-1] != "U" {
		t.Fatalf("U broken after retrain: %v", recognized)
	}
}

func TestEditorRemoveClass(t *testing.T) {
	seedSet, _ := synth.NewGenerator(synth.DefaultParams(3)).Set("seed", synth.UDClasses(), 5)
	rec, _, err := eager.Train(seedSet, eager.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h := NewGestureHandler(rec.Full, ModeMouseUp)
	e := NewEditor(h, seedSet, eager.DefaultOptions())
	if got := e.RemoveClass("U"); got != 5 {
		t.Fatalf("removed %d", got)
	}
	if got := e.RemoveClass("U"); got != 0 {
		t.Fatalf("second remove %d", got)
	}
	// Retraining a single-class set still works (degenerate classifier).
	if _, err := e.Retrain(); err != nil {
		t.Fatal(err)
	}
	if got := len(h.Classes()); got != 1 {
		t.Fatalf("classes after removal = %d", got)
	}
}

func TestEditorValidation(t *testing.T) {
	seedSet, _ := synth.NewGenerator(synth.DefaultParams(3)).Set("seed", synth.UDClasses(), 3)
	rec, _, err := eager.Train(seedSet, eager.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h := NewGestureHandler(rec.Full, ModeMouseUp)
	e := NewEditor(h, nil, eager.DefaultOptions())
	if err := e.BeginRecording(""); err == nil {
		t.Error("empty class accepted")
	}
	// Retraining an empty set fails cleanly without touching the handler.
	before := h.Classes()
	if _, err := e.Retrain(); err == nil {
		t.Error("empty retrain succeeded")
	}
	after := h.Classes()
	if len(before) != len(after) {
		t.Error("failed retrain modified the handler")
	}
	if err := e.SetScriptSemantics("U", "[", "nil", "nil", nil, nil); err == nil {
		t.Error("bad semantics source accepted")
	}
}
