package obs_test

import (
	"fmt"

	"repro/internal/obs"
)

// Example shows the whole lifecycle: register instruments, emit from the
// hot path (nil-safely — the same code runs unchanged with no registry
// attached), and read a structured snapshot. This doubles as the godoc
// usage documentation for the package.
func Example() {
	// With a registry: everything records.
	reg := obs.New()
	submitted := reg.Counter("serve.events.submitted")
	latency := reg.Histogram("serve.session.latency_ns", obs.LatencyBuckets())
	trace := reg.Ring("serve.trace", 1024)

	// The hot path holds plain handles and calls unconditionally.
	for i := 0; i < 3; i++ {
		submitted.Inc()
		latency.Observe(float64(1500 + 1000*i)) // pretend-measured nanoseconds
	}
	trace.Emit("swap", "model generation 2")

	// Without a registry: the same handles are nil and every call is a
	// sub-5ns no-op — instrumented code never branches on "is obs on?".
	var disabled *obs.Registry
	disabled.Counter("serve.events.submitted").Inc()
	disabled.Histogram("x", obs.LatencyBuckets()).Observe(1)

	snap := reg.Snapshot()
	for _, c := range snap.Counters {
		fmt.Printf("%s = %d\n", c.Name, c.Value)
	}
	for _, h := range snap.Histograms {
		fmt.Printf("%s: count=%d mean=%.0fns\n", h.Name, h.Count, h.Mean())
	}
	for _, t := range snap.Traces {
		fmt.Printf("%s: %d event(s), last %q\n", t.Name, t.Emitted, t.Events[len(t.Events)-1].Name)
	}
	// Output:
	// serve.events.submitted = 3
	// serve.session.latency_ns: count=3 mean=2500ns
	// serve.trace: 1 event(s), last "swap"
}
