package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/gscore"
	"repro/internal/synth"
)

const demoScript = `
# Insert a few notes, drag one, scratch one out.
note quarter 80 2
note eighth 160 4
note sixteenth 240 6
drag eighth 320 3 360 80
scratch 160 4
render
log
`

// run executes gscore with the given arguments. Extracted from main for
// tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gscore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	width := fs.Int("w", 600, "canvas width")
	height := fs.Int("h", 200, "canvas height")
	shrink := fs.Int("shrink", 4, "downsample factor for output (0 = raw)")
	scriptPath := fs.String("script", "", "script file (default: built-in demo)")
	seed := fs.Int64("seed", 9, "gesture synthesis seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	app, err := gscore.New(gscore.Config{Width: *width, Height: *height})
	if err != nil {
		fmt.Fprintf(stderr, "gscore: %v\n", err)
		return 1
	}

	src := demoScript
	if *scriptPath != "" {
		b, err := os.ReadFile(*scriptPath)
		if err != nil {
			fmt.Fprintf(stderr, "gscore: %v\n", err)
			return 1
		}
		src = string(b)
	}

	params := synth.DefaultParams(*seed)
	params.Jitter = 0.4
	params.RotJitter = 0.01
	params.CornerLoopProb = 0
	gen := synth.NewGenerator(params)
	classes := map[string]synth.Class{}
	for _, c := range gscore.EditorClasses() {
		classes[c.Name] = c
	}
	staff := app.Score.Staff

	scanner := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]
		bad := func(err error) int {
			fmt.Fprintf(stderr, "gscore: %v\n", err)
			return 1
		}
		num := func(i int) (float64, error) {
			if i >= len(args) {
				return 0, fmt.Errorf("line %d: %s: missing argument %d", lineNo, cmd, i+1)
			}
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil {
				return 0, fmt.Errorf("line %d: %w", lineNo, err)
			}
			return v, nil
		}
		nums := func(idx ...int) ([]float64, error) {
			out := make([]float64, len(idx))
			for j, i := range idx {
				v, err := num(i)
				if err != nil {
					return nil, err
				}
				out[j] = v
			}
			return out, nil
		}
		switch cmd {
		case "note", "drag":
			if len(args) < 1 {
				return bad(fmt.Errorf("line %d: missing duration", lineNo))
			}
			class, ok := classes[args[0]]
			if !ok {
				return bad(fmt.Errorf("line %d: unknown duration %q", lineNo, args[0]))
			}
			v, err := nums(1, 2)
			if err != nil {
				return bad(err)
			}
			x, step := v[0], int(v[1])
			p := gen.SampleAt(class, geom.Pt(x, staff.StepY(step))).G.Points
			if cmd == "note" {
				app.PlayGesture(p)
			} else {
				m, err := nums(3, 4)
				if err != nil {
					return bad(err)
				}
				app.PlayTwoPhase(p, 0.3, []geom.Point{{X: m[0], Y: m[1]}})
			}
		case "scratch":
			v, err := nums(0, 1)
			if err != nil {
				return bad(err)
			}
			x, step := v[0], int(v[1])
			p := gen.SampleAt(classes["scratch"], geom.Pt(x, staff.StepY(step))).G.Points
			app.PlayGesture(p)
		case "render":
			app.Render()
			if *shrink > 0 {
				fmt.Fprint(stdout, app.Canvas.Downsample(*shrink, *shrink).String())
			} else {
				fmt.Fprint(stdout, app.Canvas.String())
			}
		case "log":
			for _, l := range app.Log {
				fmt.Fprintln(stdout, "log:", l)
			}
		default:
			return bad(fmt.Errorf("line %d: unknown command %q", lineNo, cmd))
		}
	}
	return 0
}
