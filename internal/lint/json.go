package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
)

// jsonDiagnostic is the machine-readable finding record cmd/glint -json
// emits, one JSON object per line (so CI can stream them into
// annotations). Offsets are not preserved; file/line/column are.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// EncodeDiagnostics writes diags to w as newline-delimited JSON records.
func EncodeDiagnostics(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		rec := jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("lint: encoding diagnostics: %w", err)
		}
	}
	return nil
}

// DecodeDiagnostics reads the newline-delimited JSON records produced by
// EncodeDiagnostics back into diagnostics.
func DecodeDiagnostics(r io.Reader) ([]Diagnostic, error) {
	dec := json.NewDecoder(r)
	var out []Diagnostic
	for dec.More() {
		var rec jsonDiagnostic
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("lint: decoding diagnostics: %w", err)
		}
		out = append(out, Diagnostic{
			Analyzer: rec.Analyzer,
			Pos:      token.Position{Filename: rec.File, Line: rec.Line, Column: rec.Col},
			Message:  rec.Message,
		})
	}
	return out, nil
}
