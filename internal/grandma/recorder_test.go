package grandma

import (
	"testing"

	"repro/internal/display"
	"repro/internal/eager"
	"repro/internal/geom"
	"repro/internal/gesture"
	"repro/internal/synth"
)

func TestRecorderCapturesStrokes(t *testing.T) {
	root := NewView("window", nil)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	set := &gesture.Set{Name: "recorded"}
	var observed []string
	rec := &Recorder{
		Class: "U",
		Set:   set,
		OnStroke: func(class string, g gesture.Gesture) {
			observed = append(observed, class)
		},
	}
	root.AddHandler(rec)
	s := NewSession(root, nil)

	gen := synth.NewGenerator(synth.DefaultParams(3))
	sample := gen.Sample(synth.UDClasses()[0])
	s.Replay(display.StrokeTrace(sample.G.Points, display.LeftButton, 0.01))

	if set.Len() != 1 {
		t.Fatalf("recorded %d strokes", set.Len())
	}
	if set.Examples[0].Class != "U" {
		t.Errorf("class = %s", set.Examples[0].Class)
	}
	if set.Examples[0].Gesture.Len() != sample.G.Len() {
		t.Errorf("recorded %d points, drew %d", set.Examples[0].Gesture.Len(), sample.G.Len())
	}
	if len(observed) != 1 || observed[0] != "U" {
		t.Errorf("OnStroke = %v", observed)
	}

	// Relabel and record a second class.
	rec.Class = "D"
	sample2 := gen.Sample(synth.UDClasses()[1])
	s.Replay(display.StrokeTrace(sample2.G.Points.TimeShift(10), display.LeftButton, 0.01))
	if set.Len() != 2 || set.Examples[1].Class != "D" {
		t.Fatalf("second stroke: %+v", set.CountByClass())
	}
}

func TestRecorderDisabledPropagates(t *testing.T) {
	root := NewView("window", nil)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	set := &gesture.Set{}
	clicked := 0
	// Recorder first, but with no class: the click handler behind it must
	// receive the event.
	root.AddHandler(&Recorder{Set: set})
	root.AddHandler(&ClickHandler{Action: func(v *View) { clicked++ }})
	s := NewSession(root, nil)
	s.Replay([]display.Event{
		{Kind: display.MouseDown, X: 5, Y: 5, Time: 0},
		{Kind: display.MouseUp, X: 5, Y: 5, Time: 0.02},
	})
	if set.Len() != 0 {
		t.Error("disabled recorder recorded")
	}
	if clicked != 1 {
		t.Error("event did not propagate past the disabled recorder")
	}
}

func TestRecordThenTrainRoundTrip(t *testing.T) {
	// The full GRANDMA train-by-example loop: record synthetic strokes
	// through the interface, train an eager recognizer on the recording,
	// and recognize fresh strokes.
	root := NewView("window", nil)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	set := &gesture.Set{Name: "ui-recorded"}
	rec := &Recorder{Set: set}
	root.AddHandler(rec)
	s := NewSession(root, nil)

	gen := synth.NewGenerator(synth.DefaultParams(5))
	when := 0.0
	for _, class := range synth.UDClasses() {
		rec.Class = class.Name
		for i := 0; i < 10; i++ {
			sample := gen.Sample(class)
			s.Replay(display.StrokeTrace(sample.G.Points.TimeShift(when), display.LeftButton, 0.01))
			when += 5
		}
	}
	if set.Len() != 20 {
		t.Fatalf("recorded %d", set.Len())
	}

	trained, _, err := eager.Train(set, eager.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	test, _ := synth.NewGenerator(synth.DefaultParams(99)).Set("t", synth.UDClasses(), 10)
	correct := 0
	for _, e := range test.Examples {
		class, _, err := trained.Run(e.Gesture)
		if err != nil {
			t.Fatal(err)
		}
		if class == e.Class {
			correct++
		}
	}
	if correct < 18 {
		t.Errorf("recognizer trained from recorded strokes: %d/20 correct", correct)
	}
}
