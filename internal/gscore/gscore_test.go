package gscore

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/eager"
	"repro/internal/geom"
	"repro/internal/raster"
	"repro/internal/synth"
)

func TestStaffGeometry(t *testing.T) {
	s := Staff{Left: 10, Right: 100, BaseY: 100, Gap: 10}
	if s.StepY(0) != 100 || s.StepY(2) != 90 || s.StepY(1) != 95 {
		t.Errorf("StepY: %v %v %v", s.StepY(0), s.StepY(2), s.StepY(1))
	}
	// Snapping: y between line 0 (100) and space 1 (95) rounds nearest.
	if s.YToStep(99) != 0 {
		t.Errorf("YToStep(99) = %d", s.YToStep(99))
	}
	if s.YToStep(96) != 1 {
		t.Errorf("YToStep(96) = %d", s.YToStep(96))
	}
	if s.YToStep(60) != 8 { // top line
		t.Errorf("YToStep(60) = %d", s.YToStep(60))
	}
	if s.ClampX(5) != 10 || s.ClampX(200) != 100 || s.ClampX(50) != 50 {
		t.Error("ClampX wrong")
	}
}

func TestDurations(t *testing.T) {
	if Quarter.Flags() != 0 || Eighth.Flags() != 1 || SixtyFourth.Flags() != 4 {
		t.Error("Flags wrong")
	}
	if !Quarter.Valid() || Duration("whole").Valid() {
		t.Error("Valid wrong")
	}
}

func TestScoreCRUD(t *testing.T) {
	sc := NewScore(Staff{Left: 0, Right: 500, BaseY: 100, Gap: 10})
	n1 := sc.Add(100, 2, Quarter)
	n2 := sc.Add(50, 4, Eighth)
	if sc.Len() != 2 {
		t.Fatal("Len")
	}
	// Time-ordered: n2 (x=50) first.
	if sc.Notes()[0] != n2 {
		t.Error("notes not time-ordered")
	}
	if n1.ID() == n2.ID() || n1.ID() == 0 {
		t.Error("IDs")
	}
	// At picks the nearest note.
	if sc.At(101, 91, 8) != n1 {
		t.Error("At missed n1")
	}
	if sc.At(300, 100, 8) != nil {
		t.Error("At found a phantom note")
	}
	// Move snaps.
	sc.Move(n1, 222, 73) // y=73 -> step round((100-73)*2/10)=5
	if n1.X != 222 || n1.Step != 5 {
		t.Errorf("moved note: %+v", n1)
	}
	sc.Remove(n1)
	if sc.Len() != 1 {
		t.Error("Remove")
	}
	sc.Remove(n1) // double remove ok
	if got := n2.String(); !strings.Contains(got, "eighth#") {
		t.Errorf("String = %s", got)
	}
}

func TestScoreDraw(t *testing.T) {
	sc := NewScore(Staff{Left: 2, Right: 60, BaseY: 50, Gap: 8})
	sc.Add(20, 2, Quarter)
	sc.Add(40, 3, Sixteenth)
	c := raster.NewCanvas(70, 60)
	sc.Draw(c)
	if c.Count('@') != 2 {
		t.Errorf("note heads = %d", c.Count('@'))
	}
	if c.Count('-') < 5*50 {
		t.Errorf("staff lines too sparse: %d", c.Count('-'))
	}
	if c.Count('\\') < 2 { // sixteenth has two flags
		t.Errorf("flags = %d", c.Count('\\'))
	}
}

var (
	edOnce sync.Once
	edRec  *eager.Recognizer
	edErr  error
)

func editorRecognizer(t *testing.T) *eager.Recognizer {
	t.Helper()
	edOnce.Do(func() {
		set, _ := synth.NewGenerator(synth.DefaultParams(1)).Set("gscore-train", EditorClasses(), 15)
		edRec, _, edErr = eager.Train(set, eager.DefaultOptions())
	})
	if edErr != nil {
		t.Fatal(edErr)
	}
	return edRec
}

func newEditor(t *testing.T) *App {
	t.Helper()
	app, err := New(Config{Recognizer: editorRecognizer(t)})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func driver(seed int64) *synth.Generator {
	p := synth.DefaultParams(seed)
	p.Jitter = 0.5
	p.RotJitter = 0.01
	p.ScaleJitter = 0.03
	p.CornerLoopProb = 0
	return synth.NewGenerator(p)
}

func classByName(t *testing.T, name string) synth.Class {
	t.Helper()
	for _, c := range EditorClasses() {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("no class %q", name)
	return synth.Class{}
}

func TestInsertNotesByGesture(t *testing.T) {
	app := newEditor(t)
	gen := driver(60)
	// Draw a quarter-note gesture starting on the staff.
	staff := app.Score.Staff
	start := geom.Pt(100, staff.StepY(4))
	p := gen.SampleAt(classByName(t, "quarter"), start).G.Points
	app.PlayGesture(p)
	if app.Score.Len() != 1 {
		t.Fatalf("score = %d notes (log: %v)", app.Score.Len(), app.Log)
	}
	n := app.Score.Notes()[0]
	if n.Duration != Quarter {
		t.Errorf("duration = %s", n.Duration)
	}
	if n.Step != 4 {
		t.Errorf("step = %d, want 4", n.Step)
	}
	// A sixteenth elsewhere.
	p2 := gen.SampleAt(classByName(t, "sixteenth"), geom.Pt(220, staff.StepY(6))).G.Points
	app.PlayGesture(p2)
	if app.Score.Len() != 2 {
		t.Fatalf("score = %d notes (log: %v)", app.Score.Len(), app.Log)
	}
	if app.Score.Notes()[1].Duration != Sixteenth {
		t.Errorf("second note = %s", app.Score.Notes()[1].Duration)
	}
}

func TestManipulationSnapsToStaff(t *testing.T) {
	app := newEditor(t)
	gen := driver(61)
	staff := app.Score.Staff
	p := gen.SampleAt(classByName(t, "eighth"), geom.Pt(150, staff.StepY(2))).G.Points
	// Manipulate: drag to an x,y that is NOT on a staff step; the note
	// must snap to the nearest line/space.
	targetY := staff.StepY(6) + staff.Gap/4 // a quarter-gap off step 6
	app.PlayTwoPhase(p, 0.3, []geom.Point{{X: 300, Y: targetY}})
	if app.Score.Len() != 1 {
		t.Fatalf("score = %d (log: %v)", app.Score.Len(), app.Log)
	}
	n := app.Score.Notes()[0]
	if n.X != 300 {
		t.Errorf("x = %v", n.X)
	}
	if n.Step != 6 {
		t.Errorf("step = %d, want snapped 6", n.Step)
	}
}

func TestScratchDeletes(t *testing.T) {
	app := newEditor(t)
	staff := app.Score.Staff
	n := app.Score.Add(200, 4, Quarter)
	gen := driver(62)
	p := gen.SampleAt(classByName(t, "scratch"), geom.Pt(200, staff.StepY(4))).G.Points
	app.PlayGesture(p)
	if app.Score.Len() != 0 {
		t.Fatalf("note %v not deleted (log: %v)", n, app.Log)
	}
}

func TestEditorRender(t *testing.T) {
	app := newEditor(t)
	app.Score.Add(100, 2, Quarter)
	out := app.Render()
	if !strings.Contains(out, "@") || !strings.Contains(out, "-") {
		t.Error("render missing staff or note")
	}
}

func TestEditorNotesNotEager(t *testing.T) {
	// Sanity: the editor's recognizer, like fig. 8 predicts, is barely
	// eager on the prefix-structured note classes.
	rec := editorRecognizer(t)
	test, _ := synth.NewGenerator(synth.DefaultParams(99)).Set("t", synth.NoteClasses(), 10)
	seen, total := 0, 0
	for _, e := range test.Examples {
		_, firedAt, err := rec.Run(e.Gesture)
		if err != nil {
			t.Fatal(err)
		}
		seen += firedAt
		total += e.Gesture.Len()
	}
	if frac := float64(seen) / float64(total); frac < 0.8 {
		t.Errorf("note gestures eagerly recognized at %.2f of points; expected near 1", frac)
	}
}

func TestNewDefaults(t *testing.T) {
	app, err := New(Config{TrainPerClass: 5, TrainSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if app.Canvas.W != 600 || app.Canvas.H != 200 {
		t.Errorf("canvas %dx%d", app.Canvas.W, app.Canvas.H)
	}
	if app.Score.Staff.Gap != 12 {
		t.Errorf("staff default %+v", app.Score.Staff)
	}
	if len(app.Handler.Classes()) != 6 {
		t.Errorf("classes = %v", app.Handler.Classes())
	}
}
