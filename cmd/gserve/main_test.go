package main

import (
	"bufio"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/flight"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/slo"
	"repro/internal/wire"
)

func testServer(t *testing.T) *server {
	t.Helper()
	srv, err := newServer(1, 2, 0, 0, flight.Options{Capacity: 64}, "eager")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	if err := srv.playTraffic(6); err != nil {
		t.Fatal(err)
	}
	return srv
}

// waitIdle blocks until the engine has finished every in-flight session
// — shards consume queues asynchronously, so tests that inspect
// per-session artifacts (spans, flight bundles) must wait for completion
// first.
func waitIdle(t *testing.T, srv *server, completed int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.engine.Stats()
		if st.Active == 0 && st.Completed >= completed {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine never drained: %+v", st)
		}
		runtime.Gosched()
	}
}

func get(t *testing.T, srv *server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	srv.mux.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
	return rr
}

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	rr := get(t, srv, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics body is not a Snapshot: %v", err)
	}
	if snap.Schema != obs.SnapshotSchema {
		t.Errorf("schema = %d, want %d", snap.Schema, obs.SnapshotSchema)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == "serve.events.submitted" && c.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Error("startup traffic not visible in serve.events.submitted")
	}
}

func TestMetricsTextEndpoint(t *testing.T) {
	srv := testServer(t)
	rr := get(t, srv, "/metrics.txt")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /metrics.txt = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{"serve.events.submitted", "eager.decide_ns", "serve.trace"} {
		if !strings.Contains(body, want) {
			t.Errorf("text report missing %q", want)
		}
	}
}

// TestMetricsPromEndpoint checks /metrics.prom speaks the Prometheus
// text exposition format: right content type, every line a comment or a
// "name value" sample, and the histogram families carry cumulative
// _bucket/_sum/_count series.
func TestMetricsPromEndpoint(t *testing.T) {
	srv := testServer(t)
	waitIdle(t, srv, 6)
	rr := get(t, srv, "/metrics.prom")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /metrics.prom = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	body := rr.Body.String()
	for _, want := range []string{
		"# TYPE serve_events_submitted counter",
		"serve_session_latency_ns_bucket{le=\"+Inf\"}",
		"serve_session_latency_ns_sum",
		"serve_session_latency_ns_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("unparseable exposition line %q", line)
		}
	}
}

// TestSLOEndpoint checks /slo returns a decodable slo.Evaluation with
// the default objectives evaluated.
func TestSLOEndpoint(t *testing.T) {
	srv := testServer(t)
	waitIdle(t, srv, 6)
	rr := get(t, srv, "/slo")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /slo = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var eval slo.Evaluation
	if err := json.Unmarshal(rr.Body.Bytes(), &eval); err != nil {
		t.Fatalf("/slo body is not an Evaluation: %v", err)
	}
	if eval.Schema != slo.EvaluationSchema {
		t.Errorf("schema = %d, want %d", eval.Schema, slo.EvaluationSchema)
	}
	want := map[string]bool{"decide_p99": false, "wire_nack_ratio": false}
	for _, st := range eval.Objectives {
		if _, ok := want[st.Objective.Name]; ok {
			want[st.Objective.Name] = true
		}
		if st.State != slo.StateOK && st.State != slo.StateWarn && st.State != slo.StatePage {
			t.Errorf("objective %s has untyped state %v", st.Objective.Name, st.State)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("default objective %q missing from /slo", name)
		}
	}
	// The admission field is always stamped — "healthy" when no
	// controller is armed or nothing is shedding.
	if eval.Admission != "healthy" {
		t.Errorf("admission = %q, want healthy", eval.Admission)
	}
	// Evaluating also publishes slo.* gauges into the shared registry.
	snap := srv.reg.Snapshot()
	foundGauge := false
	for _, g := range snap.Gauges {
		if strings.HasPrefix(g.Name, "slo.") {
			foundGauge = true
		}
	}
	if !foundGauge {
		t.Error("no slo.* gauges published after /slo evaluation")
	}
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	if rr := get(t, srv, "/healthz"); rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "ok") {
		t.Fatalf("GET /healthz = %d %q", rr.Code, rr.Body.String())
	}
}

// TestBrownoutSurfaces arms the admission controller with an absurdly
// tight target, drives it into brownout by observing queue waits far
// over it, and checks both operator surfaces: /healthz answers
// "ok brownout" (still 200 — the node is alive and shedding, not dead)
// and /slo stamps admission "brownout".
func TestBrownoutSurfaces(t *testing.T) {
	srv, err := newServer(1, 2, 0, time.Nanosecond, flight.Options{Capacity: 64}, "eager")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	adm := srv.engine.Admission()
	if adm == nil {
		t.Fatal("admit-target did not arm the admission controller")
	}
	deadline := time.Now().Add(10 * time.Second)
	for adm.State() != serve.AdmitBrownout {
		if time.Now().After(deadline) {
			t.Fatal("controller never entered brownout")
		}
		adm.Observe(10 * time.Millisecond)
		time.Sleep(5 * time.Millisecond)
	}
	rr := get(t, srv, "/healthz")
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "brownout") {
		t.Errorf("GET /healthz during brownout = %d %q, want 200 with brownout", rr.Code, rr.Body.String())
	}
	rr = get(t, srv, "/slo")
	var eval slo.Evaluation
	if err := json.Unmarshal(rr.Body.Bytes(), &eval); err != nil {
		t.Fatalf("/slo body: %v", err)
	}
	if eval.Admission != "brownout" {
		t.Errorf("/slo admission = %q, want brownout", eval.Admission)
	}
}

func TestSwapEndpoint(t *testing.T) {
	srv := testServer(t)
	before := srv.engine.Backend()

	rr := httptest.NewRecorder()
	srv.mux.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/swap", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /swap = %d, want 405", rr.Code)
	}

	rr = httptest.NewRecorder()
	srv.mux.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/swap", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("POST /swap = %d: %s", rr.Code, rr.Body.String())
	}
	var resp struct {
		Swapped bool  `json:"swapped"`
		Seed    int64 `json:"seed"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Swapped {
		t.Error("swap response reports swapped=false")
	}
	if srv.engine.Backend() == before {
		t.Error("engine still serves the pre-swap recognizer")
	}
}

func TestPprofIndex(t *testing.T) {
	srv := testServer(t)
	rr := get(t, srv, "/debug/pprof/")
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "goroutine") {
		t.Fatalf("GET /debug/pprof/ = %d", rr.Code)
	}
}

func TestSwapConflict(t *testing.T) {
	srv := testServer(t)
	// Hold the swap lock as a stand-in for a retrain in progress; a /swap
	// arriving meanwhile must be refused, not queued.
	srv.swapMu.Lock()
	rr := httptest.NewRecorder()
	srv.mux.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/swap", nil))
	srv.swapMu.Unlock()
	if rr.Code != http.StatusConflict {
		t.Fatalf("POST /swap during swap = %d, want 409", rr.Code)
	}

	// With the lock free again the endpoint works.
	rr = httptest.NewRecorder()
	srv.mux.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/swap", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("POST /swap after conflict = %d: %s", rr.Code, rr.Body.String())
	}
}

func TestSwapMalformedBody(t *testing.T) {
	srv := testServer(t)
	rr := httptest.NewRecorder()
	srv.mux.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/swap", strings.NewReader("{not json")))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("POST /swap with bad body = %d, want 400", rr.Code)
	}
}

func TestSwapSeedBody(t *testing.T) {
	srv := testServer(t)
	rr := httptest.NewRecorder()
	srv.mux.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/swap", strings.NewReader(`{"seed": 4242}`)))
	if rr.Code != http.StatusOK {
		t.Fatalf("POST /swap with seed body = %d: %s", rr.Code, rr.Body.String())
	}
	var resp struct {
		Seed int64 `json:"seed"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Seed != 4242 {
		t.Errorf("swap used seed %d, want the requested 4242", resp.Seed)
	}
}

// TestMetricsDuringSwap scrapes /metrics concurrently with /swap
// retrains — the race detector referees the snapshot-during-publication
// path.
func TestMetricsDuringSwap(t *testing.T) {
	srv := testServer(t)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			rr := httptest.NewRecorder()
			srv.mux.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/swap", nil))
			if rr.Code != http.StatusOK && rr.Code != http.StatusConflict {
				t.Errorf("POST /swap = %d", rr.Code)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			rr := httptest.NewRecorder()
			srv.mux.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
			if rr.Code != http.StatusOK {
				t.Errorf("GET /metrics during swap = %d", rr.Code)
			}
		}
	}()
	wg.Wait()
}

func TestHealthzAfterClose(t *testing.T) {
	srv := testServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if rr := get(t, srv, "/healthz"); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz after Close = %d, want 503", rr.Code)
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	srv := testServer(t)
	waitIdle(t, srv, 6)
	rr := get(t, srv, "/debug/trace")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /debug/trace = %d", rr.Code)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("trace body is not Chrome Trace JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %q has phase %q, want X", e.Name, e.Ph)
		}
		names[e.Name] = true
	}
	for _, want := range []string{"gesture", "queue_wait", "dispatch", "decide"} {
		if !names[want] {
			t.Errorf("trace missing %q spans (have %v)", want, names)
		}
	}
}

func TestDebugFlightEndpoint(t *testing.T) {
	srv := testServer(t)
	waitIdle(t, srv, 6)
	rr := get(t, srv, "/debug/flight")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /debug/flight = %d", rr.Code)
	}
	dump, err := flight.ReadDump(rr.Body)
	if err != nil {
		t.Fatalf("flight body is not a dump: %v", err)
	}
	if len(dump.Bundles) == 0 {
		t.Fatal("flight dump holds no bundles after startup traffic")
	}
	for _, b := range dump.Bundles {
		if len(b.Points) == 0 || len(b.Decisions) == 0 {
			t.Errorf("bundle %s empty: %d points, %d decisions", b.Session, len(b.Points), len(b.Decisions))
		}
	}
}

// TestSwapClosedEngine503: a /swap against a closed engine answers 503
// (the typed shutting-down status, serve.ErrClosed's HTTP mapping) —
// never a generic 500 — and names the condition.
func TestSwapClosedEngine503(t *testing.T) {
	srv := testServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	srv.mux.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/swap", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("POST /swap on closed engine = %d, want 503: %s", rr.Code, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), "closed") {
		t.Errorf("503 body %q does not name the closed condition", rr.Body.String())
	}
}

// TestSwapErrorPathsReleaseMutex: every /swap early return (wrong
// method, oversized/bad body) leaves the swap mutex free — a leaked
// lock would turn all future swaps into permanent 409s.
func TestSwapErrorPathsReleaseMutex(t *testing.T) {
	srv := testServer(t)
	for _, tc := range []struct {
		name string
		req  *http.Request
		want int
	}{
		{"wrong method", httptest.NewRequest(http.MethodGet, "/swap", nil), http.StatusMethodNotAllowed},
		{"bad json", httptest.NewRequest(http.MethodPost, "/swap", strings.NewReader("{nope")), http.StatusBadRequest},
	} {
		rr := httptest.NewRecorder()
		srv.mux.ServeHTTP(rr, tc.req)
		if rr.Code != tc.want {
			t.Fatalf("%s: /swap = %d, want %d", tc.name, rr.Code, tc.want)
		}
		// The mutex must be free: TryLock succeeds and a real swap works.
		if !srv.swapMu.TryLock() {
			t.Fatalf("%s: swap mutex leaked by the error path", tc.name)
		}
		srv.swapMu.Unlock()
		rr = httptest.NewRecorder()
		srv.mux.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/swap", nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("%s: follow-up /swap = %d, want 200: %s", tc.name, rr.Code, rr.Body.String())
		}
	}
}

// TestWireListenerAlongsideHTTP: the -wire ingest listener shares the
// HTTP server's engine and registry — a gesture played over the socket
// completes in the engine and its wire.* counters surface in /metrics.
func TestWireListenerAlongsideHTTP(t *testing.T) {
	srv := testServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := ingest.Serve(ln, srv.engine, ingest.Options{Obs: srv.reg})
	defer ws.Close()

	c, err := net.Dial("tcp", ws.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	frame, err := wire.NewEncoder().AppendFrame(nil, []wire.Event{
		{Session: "over-wire", Kind: wire.KindDown, X: 1, Y: 1, TMicros: 1000},
		{Session: "over-wire", Kind: wire.KindMove, X: 2, Y: 2, TMicros: 2000},
		{Session: "over-wire", Kind: wire.KindUp, X: 3, Y: 3, TMicros: 3000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(frame); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadResponse(bufio.NewReader(c), nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fatal || len(resp.Nacks) != 0 {
		t.Fatalf("wire response = %+v, want clean ACK", resp)
	}
	waitIdle(t, srv, 7) // 6 startup interactions + the wire gesture

	rr := get(t, srv, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rr.Code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	counters := map[string]int64{}
	for _, cs := range snap.Counters {
		counters[cs.Name] = cs.Value
	}
	if counters["wire.events.decoded"] != 3 {
		t.Errorf("wire.events.decoded = %d, want 3", counters["wire.events.decoded"])
	}
	if counters["wire.frames.decoded"] != 1 {
		t.Errorf("wire.frames.decoded = %d, want 1", counters["wire.frames.decoded"])
	}
}

// TestTemplateBackendServer boots the server with -backend=template:
// startup traffic flows through the streaming template matcher, the
// template.* metric family shows up on /metrics, and /swap retrains the
// template backend (not the eager one) and hot-swaps it in.
func TestTemplateBackendServer(t *testing.T) {
	srv, err := newServer(1, 2, 0, 0, flight.Options{Capacity: 64}, "template")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	if err := srv.playTraffic(6); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, srv, 6)

	body := get(t, srv, "/metrics").Body.String()
	for _, name := range []string{"template.decide_ns", "serve.sessions.completed"} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s with the template backend serving", name)
		}
	}
	if strings.Contains(body, "eager.decide_ns") {
		t.Error("/metrics shows eager stream metrics on a template-only server")
	}

	rr := httptest.NewRecorder()
	srv.mux.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/swap", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/swap on template backend: %d %s", rr.Code, rr.Body.String())
	}
	if srv.engine.Backend().Caps().Name != "template" {
		t.Errorf("swap replaced the template backend with %q", srv.engine.Backend().Caps().Name)
	}
}
