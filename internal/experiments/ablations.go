package experiments

import (
	"fmt"
	"strings"

	"repro/internal/eager"
	"repro/internal/features"
	"repro/internal/synth"
)

// AblationRow is one configuration's outcome in a sweep.
type AblationRow struct {
	Label         string
	EagerAccuracy float64
	Eagerness     float64
	FullAccuracy  float64
}

// Ablation is a family of configurations evaluated on one workload.
type Ablation struct {
	Name string
	Rows []AblationRow
}

// Format renders the sweep as a table.
func (a *Ablation) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== ablation: %s ==\n", a.Name)
	fmt.Fprintf(&b, "%-24s %8s %9s %8s\n", "config", "eager%", "seen%", "full%")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-24s %7.1f%% %8.1f%% %7.1f%%\n",
			r.Label, 100*r.EagerAccuracy, 100*r.Eagerness, 100*r.FullAccuracy)
	}
	return b.String()
}

func runRow(label string, classes []synth.Class, cfg Config) (AblationRow, error) {
	res, err := RunEagerEval(label, classes, cfg)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Label:         label,
		EagerAccuracy: res.EagerAccuracy,
		Eagerness:     res.Eagerness,
		FullAccuracy:  res.FullAccuracy,
	}, nil
}

// AblationTwoClassAUC compares the paper's 2C-class AUC against the naive
// two-class (ambiguous/unambiguous) discriminator that section 4.4 argues
// cannot work well, on the figure-9 workload.
func AblationTwoClassAUC(cfg Config) (*Ablation, error) {
	classes := synth.EightDirectionClasses()
	out := &Ablation{Name: "two-class vs 2C-class AUC (fig9 workload, §4.4)"}

	row, err := runRow("2C-class (paper)", classes, cfg)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, row)

	c2 := cfg
	c2.Eager.TwoClassAUC = true
	row, err = runRow("two-class (baseline)", classes, c2)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, row)
	return out, nil
}

// AblationBiasSweep sweeps the ambiguity-bias factor around the paper's
// choice of 5 (section 4.6), exposing the accuracy/eagerness trade-off.
func AblationBiasSweep(cfg Config, factors []float64) (*Ablation, error) {
	if len(factors) == 0 {
		factors = []float64{1, 2, 5, 10, 25}
	}
	classes := synth.EightDirectionClasses()
	out := &Ablation{Name: "ambiguity bias sweep (fig9 workload, §4.6; paper uses 5)"}
	for _, f := range factors {
		c := cfg
		c.Eager.AmbiguityBias = f
		row, err := runRow(fmt.Sprintf("bias %gx", f), classes, c)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// AblationThresholdSweep sweeps the accidental-completeness threshold
// fraction around the paper's 50% (section 4.5). 0 disables the move step
// entirely.
func AblationThresholdSweep(cfg Config, fracs []float64) (*Ablation, error) {
	if len(fracs) == 0 {
		fracs = []float64{0, 0.25, 0.5, 0.75, 1}
	}
	classes := synth.EightDirectionClasses()
	out := &Ablation{Name: "accidental-completeness threshold sweep (fig9 workload, §4.5; paper uses 50%)"}
	for _, f := range fracs {
		c := cfg
		c.Eager.MoveThresholdFrac = f
		c.Eager.SkipMoveAccidental = f == 0
		row, err := runRow(fmt.Sprintf("threshold %.0f%%", 100*f), classes, c)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// AblationAgreement compares the paper's fire rule (pass the prefix to the
// full classifier the moment the AUC says unambiguous) against agreement
// gating (fire only when the full classifier's prediction matches the
// AUC's complete class). Right at a corner the AUC can be a point ahead of
// the full classifier, producing exactly the kind of eager errors the
// paper reports; agreement gating trades a sliver of eagerness for
// accuracy.
func AblationAgreement(cfg Config) (*Ablation, error) {
	out := &Ablation{Name: "fire rule: paper vs agreement-gated (extension A5)"}
	for _, workload := range []struct {
		name    string
		classes []synth.Class
	}{
		{"fig9", synth.EightDirectionClasses()},
		{"fig10", synth.GDPClasses()},
	} {
		row, err := runRow(workload.name+" paper rule", workload.classes, cfg)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
		c := cfg
		c.Eager.RequireAgreement = true
		row, err = runRow(workload.name+" agreement", workload.classes, c)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// CornerLoopSweep tests the paper's error attribution: "Most of the eager
// recognizer's errors were due to a corner looping 270 degrees rather than
// being a sharp 90 degrees, so it appeared to the eager recognizer the
// second stroke was going in the opposite direction than intended."
// Training data is fixed (the standard 5% defect rate); the test set's
// corner-loop probability sweeps from clean to heavily defective. If the
// attribution is right, eager accuracy must degrade with the defect rate
// much faster than full accuracy (the full classifier sees the whole
// corner resolve; the eager one fires inside the loop).
func CornerLoopSweep(cfg Config, probs []float64) (*Ablation, error) {
	if len(probs) == 0 {
		probs = []float64{0, 0.05, 0.1, 0.2, 0.4}
	}
	classes := synth.EightDirectionClasses()
	trainSet, _ := synth.NewGenerator(synth.DefaultParams(cfg.TrainSeed)).Set("loop-train", classes, cfg.TrainPerClass)
	rec, _, err := eager.Train(trainSet, cfg.Eager)
	if err != nil {
		return nil, err
	}
	out := &Ablation{Name: "corner-loop defect sweep (fig9 workload; §5's error attribution)"}
	for _, prob := range probs {
		params := synth.DefaultParams(cfg.TestSeed)
		params.CornerLoopProb = prob
		testSet, _ := synth.NewGenerator(params).Set("loop-test", classes, cfg.TestPerClass)
		fullAcc, _, err := rec.Full.Accuracy(testSet)
		if err != nil {
			return nil, err
		}
		correct, seen, total := 0, 0, 0
		for _, e := range testSet.Examples {
			class, firedAt, err := rec.Run(e.Gesture)
			if err != nil {
				return nil, err
			}
			if class == e.Class {
				correct++
			}
			seen += firedAt
			total += e.Gesture.Len()
		}
		out.Rows = append(out.Rows, AblationRow{
			Label:         fmt.Sprintf("loop prob %.0f%%", 100*prob),
			EagerAccuracy: float64(correct) / float64(testSet.Len()),
			Eagerness:     float64(seen) / float64(total),
			FullAccuracy:  fullAcc,
		})
	}
	return out, nil
}

// FeatureDropSweep measures the full classifier's accuracy on the GDP set
// when each of the thirteen Rubine features is removed in turn (A6),
// quantifying each feature's marginal contribution.
func FeatureDropSweep(cfg Config) (*Ablation, error) {
	classes := synth.GDPClasses()
	out := &Ablation{Name: "leave-one-feature-out (GDP workload, 13 Rubine features)"}
	row, err := runRow("all 13 features", classes, cfg)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, row)
	for drop := 0; drop < features.NumFeatures; drop++ {
		use := make([]int, 0, features.NumFeatures-1)
		for i := 0; i < features.NumFeatures; i++ {
			if i != drop {
				use = append(use, i)
			}
		}
		c := cfg
		c.Eager.Train.Features.Use = use
		row, err := runRow("without "+features.Names[drop], classes, c)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// TrainSizeSweep measures recognition rate versus training-set size on the
// GDP set, contextualizing the paper's "typically we train with 15
// examples of each class".
func TrainSizeSweep(cfg Config, sizes []int) (*Ablation, error) {
	if len(sizes) == 0 {
		sizes = []int{5, 10, 15, 20, 30}
	}
	classes := synth.GDPClasses()
	out := &Ablation{Name: "training-set size sweep (GDP workload, §4.2; paper trains with 15)"}
	for _, n := range sizes {
		c := cfg
		c.TrainPerClass = n
		row, err := runRow(fmt.Sprintf("%d examples/class", n), classes, c)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
