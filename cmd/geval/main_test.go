package main

import (
	"bytes"
	"strings"
	"testing"
)

// small returns fast protocol flags.
func small(extra ...string) []string {
	return append([]string{"-train", "6", "-test", "4"}, extra...)
}

func TestEvalSingleExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(small("-exp", "ud"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"fig5-7-ud", "full classifier accuracy", "points examined"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestEvalAnnotate(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(small("-exp", "fig9", "-annotate"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "/") || !strings.Contains(stdout.String(), "ur1") {
		t.Errorf("annotation output:\n%s", stdout.String())
	}
}

func TestEvalConfusion(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(small("-exp", "fig9", "-confusion"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "actual\\pred") {
		t.Errorf("confusion output:\n%s", stdout.String())
	}
}

func TestEvalErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown experiment: exit %d", code)
	}
	if code := run([]string{"-annotate", "-exp", "timing"}, &stdout, &stderr); code != 2 {
		t.Errorf("annotate wrong exp: exit %d", code)
	}
	if code := run([]string{"-confusion", "-exp", "timing"}, &stdout, &stderr); code != 2 {
		t.Errorf("confusion wrong exp: exit %d", code)
	}
	if code := run([]string{"-badflag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d", code)
	}
}

// TestEvalCommaSeparatedExps: -exp accepts a list and prints results in
// table order regardless of list order.
func TestEvalCommaSeparatedExps(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(small("-exp", "ud,fig9"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	i9 := strings.Index(out, "fig9-eight-directions")
	iud := strings.Index(out, "fig5-7-ud")
	if i9 < 0 || iud < 0 {
		t.Fatalf("missing experiments in:\n%s", out)
	}
	if i9 > iud {
		t.Errorf("results not in table order:\n%s", out)
	}
	if code := run(small("-exp", "fig9,nope"), &stdout, &stderr); code != 2 {
		t.Errorf("unknown name in list: exit %d", code)
	}
}

// TestEvalParallelSweepMatchesSerial: the concurrent sweep must produce
// byte-identical output to the serial sweep (deterministic ordering, and
// bit-identical training via the parallel trainer).
func TestEvalParallelSweepMatchesSerial(t *testing.T) {
	var serialOut, parallelOut, stderr bytes.Buffer
	exps := "fig9,ud,ablation-twoclass"
	if code := run(small("-exp", exps, "-j", "1"), &serialOut, &stderr); code != 0 {
		t.Fatalf("serial exit %d: %s", code, stderr.String())
	}
	if code := run(small("-exp", exps, "-parallel", "-j", "4"), &parallelOut, &stderr); code != 0 {
		t.Fatalf("parallel exit %d: %s", code, stderr.String())
	}
	if serialOut.String() != parallelOut.String() {
		t.Errorf("parallel sweep output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serialOut.String(), parallelOut.String())
	}
}

// TestEvalJobsValidation: negative -j is a usage error.
func TestEvalJobsValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(small("-j", "-2"), &stdout, &stderr); code != 2 {
		t.Errorf("negative -j: exit %d", code)
	}
}
