package eager

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/synth"
)

// snapCounter returns a named counter's value from the snapshot, failing
// the test when the counter was never registered.
func snapCounter(t *testing.T, snap obs.Snapshot, name string) int64 {
	t.Helper()
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("counter %q not in snapshot", name)
	return 0
}

// snapHist returns a named histogram snapshot, failing the test when it
// was never registered.
func snapHist(t *testing.T, snap obs.Snapshot, name string) obs.HistogramSnap {
	t.Helper()
	for _, h := range snap.Histograms {
		if h.Name == name {
			return h
		}
	}
	t.Fatalf("histogram %q not in snapshot", name)
	return obs.HistogramSnap{}
}

// TestTrainAndSessionObservability trains with a registry attached and
// replays the training set, checking the eager.* contract: training
// metrics record the run, replay metrics reconcile (fired.eager +
// fired.end = replays = commit_frac count), commit fractions stay in
// (0, 1], and the poison/reset counters track the error path.
func TestTrainAndSessionObservability(t *testing.T) {
	reg := obs.New()
	set, _, _ := genSets(synth.UDClasses(), 12, 0, 11)
	opts := DefaultOptions()
	opts.Obs = reg
	rec, report, err := Train(set, opts)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snapCounter(t, snap, "eager.train.runs"); got != 1 {
		t.Errorf("eager.train.runs = %d, want 1", got)
	}
	if got := snapCounter(t, snap, "eager.train.subgestures"); got != int64(report.Subgestures) {
		t.Errorf("eager.train.subgestures = %d, report says %d", got, report.Subgestures)
	}
	for _, name := range []string{
		"eager.train.total_ns", "eager.train.full_ns", "eager.train.label_ns",
		"eager.train.move_ns", "eager.train.auc_ns", "eager.train.tweak_ns",
	} {
		if h := snapHist(t, snap, name); h.Count != 1 {
			t.Errorf("%s count = %d, want 1 (one training run)", name, h.Count)
		}
	}
	if h := snapHist(t, snap, "eager.train.worker_util"); h.Count == 0 {
		t.Error("eager.train.worker_util recorded nothing")
	} else if h.Max > 1 {
		t.Errorf("worker utilization max = %v, want <= 1", h.Max)
	}

	// Replay every training example; Train auto-instrumented rec.
	replays := 0
	for _, ex := range set.Examples {
		if _, _, err := rec.Run(ex.Gesture); err != nil {
			t.Fatal(err)
		}
		replays++
	}
	snap = reg.Snapshot()
	eagerN := snapCounter(t, snap, "eager.fired.eager")
	endN := snapCounter(t, snap, "eager.fired.end")
	if eagerN+endN != int64(replays) {
		t.Errorf("fired.eager (%d) + fired.end (%d) != replays (%d)", eagerN, endN, replays)
	}
	if eagerN == 0 {
		t.Error("no gesture fired eagerly on its own training set")
	}
	cf := snapHist(t, snap, "eager.commit_frac")
	if cf.Count != int64(replays) {
		t.Errorf("eager.commit_frac count = %d, want %d", cf.Count, replays)
	}
	if cf.Min <= 0 || cf.Max > 1 {
		t.Errorf("commit_frac range [%v, %v], want (0, 1]", cf.Min, cf.Max)
	}
	if h := snapHist(t, snap, "eager.decide_ns"); h.Count == 0 {
		t.Error("eager.decide_ns recorded nothing")
	}
	// Both classifiers were instrumented under their prefixes.
	if got := snapCounter(t, snap, "classifier.auc.classifications"); got == 0 {
		t.Error("classifier.auc.classifications = 0 after replays")
	}
	if got := snapCounter(t, snap, "classifier.full.classifications"); got == 0 {
		t.Error("classifier.full.classifications = 0 after replays")
	}

	// Poison one stroke, then Reset: the error is counted once per
	// stroke, and the reset once per Reset.
	s, err := rec.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rec.Opts.MinSubgesture+1; i++ {
		s.Add(geom.TimedPoint{X: math.NaN(), Y: 0, T: float64(i)})
	}
	s.Reset()
	snap = reg.Snapshot()
	if got := snapCounter(t, snap, "eager.session.poisoned"); got != 1 {
		t.Errorf("eager.session.poisoned = %d, want 1 (counted once per stroke)", got)
	}
	if got := snapCounter(t, snap, "eager.session.resets"); got != 1 {
		t.Errorf("eager.session.resets = %d, want 1", got)
	}
}

// TestInstrumentationPreservesTraining checks the guarantee documented
// on Options.Obs: attaching a registry never changes what Train
// produces. The instrumented and uninstrumented recognizers must be
// byte-identical (training is deterministic, PR 2's invariant).
func TestInstrumentationPreservesTraining(t *testing.T) {
	set, _, _ := genSets(synth.UDClasses(), 10, 0, 5)

	plain, _ := mustTrain(t, set, DefaultOptions())
	opts := DefaultOptions()
	opts.Obs = obs.New()
	instrumented, _, err := Train(set, opts)
	if err != nil {
		t.Fatal(err)
	}

	var a, b strings.Builder
	if err := plain.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := instrumented.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("instrumented training produced a different recognizer than uninstrumented")
	}
}
