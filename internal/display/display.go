// Package display provides the headless windowing substrate GRANDMA runs
// on in this reproduction: typed input events, a virtual clock, and timer
// scheduling. The paper's system ran on X10 under MACH; the two-phase
// interaction technique depends only on event ordering and on a 200 ms
// motionless timeout, both of which are exact under a virtual clock —
// which also makes every interaction test deterministic.
package display

import (
	"fmt"
	"sort"
)

// EventKind enumerates input event types.
type EventKind int

// Event kinds. Tick events carry only a timestamp; replayers emit them so
// timeout-based phase transitions can fire between movements.
const (
	MouseDown EventKind = iota
	MouseMove
	MouseUp
	Tick
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case MouseDown:
		return "down"
	case MouseMove:
		return "move"
	case MouseUp:
		return "up"
	case Tick:
		return "tick"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Button identifies a mouse button.
type Button int

// Mouse buttons.
const (
	LeftButton Button = iota
	MiddleButton
	RightButton
)

// Event is one input event. Time is in seconds on the virtual clock.
type Event struct {
	Kind   EventKind
	X, Y   float64
	Time   float64
	Button Button
}

// Timer is a scheduled callback handle.
type Timer struct {
	id       int
	deadline float64
	fn       func()
	canceled bool
}

// Clock is a virtual clock with timer scheduling. Advancing the clock runs
// due timers in deadline order. The zero value is a clock at time 0.
type Clock struct {
	now    float64
	nextID int
	timers []*Timer
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Schedule registers fn to run when the clock reaches now+delay. It
// returns a handle usable with Cancel. A non-positive delay fires on the
// next Advance (or immediately on AdvanceTo of the current time).
func (c *Clock) Schedule(delay float64, fn func()) *Timer {
	t := &Timer{id: c.nextID, deadline: c.now + delay, fn: fn}
	c.nextID++
	c.timers = append(c.timers, t)
	return t
}

// Cancel revokes a scheduled timer. Canceling an already-fired or
// already-canceled timer is a no-op.
func (c *Clock) Cancel(t *Timer) {
	if t != nil {
		t.canceled = true
	}
}

// AdvanceTo moves the clock to time t (monotonically; earlier times are
// ignored), firing due timers in deadline order. Timers scheduled by
// running timers are honored within the same advance when due.
func (c *Clock) AdvanceTo(t float64) {
	if t < c.now {
		return
	}
	for {
		// Find the earliest due, non-canceled timer.
		idx := -1
		for i, tm := range c.timers {
			if tm.canceled || tm.deadline > t {
				continue
			}
			if idx == -1 || tm.deadline < c.timers[idx].deadline ||
				//lint:ignore floateq exact equality tie-break so same-deadline timers fire in id order
				(tm.deadline == c.timers[idx].deadline && tm.id < c.timers[idx].id) {
				idx = i
			}
		}
		if idx == -1 {
			break
		}
		tm := c.timers[idx]
		c.timers = append(c.timers[:idx], c.timers[idx+1:]...)
		if tm.deadline > c.now {
			c.now = tm.deadline
		}
		tm.fn()
	}
	c.now = t
}

// Advance moves the clock forward by d seconds.
func (c *Clock) Advance(d float64) { c.AdvanceTo(c.now + d) }

// PendingTimers returns the number of live scheduled timers (for tests).
func (c *Clock) PendingTimers() int {
	n := 0
	for _, t := range c.timers {
		if !t.canceled {
			n++
		}
	}
	return n
}

// Display couples the clock with an event sink: a function that receives
// each input event after the clock has advanced to the event's time. This
// mirrors an X-style event loop with timeouts.
type Display struct {
	Clock
	sink func(Event)
}

// New returns a display delivering events to sink.
func New(sink func(Event)) *Display {
	return &Display{sink: sink}
}

// Post advances the virtual clock to the event's time (firing any due
// timers first, exactly as a real event loop would) and then delivers the
// event to the sink.
func (d *Display) Post(ev Event) {
	d.AdvanceTo(ev.Time)
	if d.sink != nil && ev.Kind != Tick {
		d.sink(ev)
	}
}

// Replay posts a sequence of events in time order. Events are sorted by
// time first (stably), so generated traces need not be pre-sorted.
func (d *Display) Replay(events []Event) {
	evs := append([]Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	for _, ev := range evs {
		d.Post(ev)
	}
}
