package recognizer

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/features"
	"repro/internal/gesture"
	"repro/internal/synth"
)

func trainTest(t *testing.T, classes []synth.Class, trainN, testN int, seed int64) (*Full, *gesture.Set) {
	t.Helper()
	trainSet, _ := synth.NewGenerator(synth.DefaultParams(seed)).Set("train", classes, trainN)
	testSet, _ := synth.NewGenerator(synth.DefaultParams(seed+1000)).Set("test", classes, testN)
	r, err := Train(trainSet, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	return r, testSet
}

func TestFullClassifierEightDirections(t *testing.T) {
	// Paper (fig. 9 set): full classifier 99.2% on 30 test examples of each
	// of 8 classes, trained on 10 each. Require the same shape: >= 97%.
	r, testSet := trainTest(t, synth.EightDirectionClasses(), 10, 30, 101)
	acc, _, err := r.Accuracy(testSet)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.97 {
		t.Errorf("eight-direction full accuracy = %.3f, want >= 0.97", acc)
	}
}

func TestFullClassifierGDP(t *testing.T) {
	// Paper (fig. 10 set): full classifier 99.7%. Require >= 96%.
	r, testSet := trainTest(t, synth.GDPClasses(), 10, 30, 202)
	acc, preds, err := r.Accuracy(testSet)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.96 {
		bad := map[string]int{}
		for i, p := range preds {
			if p != testSet.Examples[i].Class {
				bad[testSet.Examples[i].Class+"->"+p]++
			}
		}
		t.Errorf("GDP full accuracy = %.3f, want >= 0.96; confusions: %v", acc, bad)
	}
	if len(r.Classes()) != 11 {
		t.Errorf("classes = %v", r.Classes())
	}
}

func TestFullClassifierUD(t *testing.T) {
	r, testSet := trainTest(t, synth.UDClasses(), 15, 30, 303)
	acc, _, err := r.Accuracy(testSet)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.99 {
		t.Errorf("U/D accuracy = %.3f", acc)
	}
}

func TestFullClassifierNotes(t *testing.T) {
	// The note gestures are hard to recognize EAGERLY but fine to recognize
	// in full: flags change the path length and turn counts.
	r, testSet := trainTest(t, synth.NoteClasses(), 10, 30, 404)
	acc, _, err := r.Accuracy(testSet)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("notes accuracy = %.3f", acc)
	}
}

func TestEvaluateRejectionSignals(t *testing.T) {
	r, testSet := trainTest(t, synth.EightDirectionClasses(), 10, 5, 505)
	for _, e := range testSet.Examples {
		res, err := r.Evaluate(e.Gesture)
		if err != nil {
			t.Fatal(err)
		}
		if res.Probability <= 0 || res.Probability > 1.000001 {
			t.Fatalf("probability %v out of range", res.Probability)
		}
		if res.Mahalanobis < 0 {
			t.Fatalf("negative Mahalanobis")
		}
	}
}

func TestTrainRejectsBadInput(t *testing.T) {
	if _, err := Train(&gesture.Set{}, DefaultTrainOptions()); err == nil {
		t.Error("empty set accepted")
	}
	set := &gesture.Set{}
	set.Add("a", gesture.Gesture{})
	if _, err := Train(set, DefaultTrainOptions()); err == nil {
		t.Error("empty gesture accepted")
	}
	ok, _ := synth.NewGenerator(synth.DefaultParams(1)).Set("s", synth.UDClasses(), 3)
	bad := DefaultTrainOptions()
	bad.Features = features.Options{MinMove: -1}
	if _, err := Train(ok, bad); err == nil {
		t.Error("invalid feature options accepted")
	}
}

func TestSortedClasses(t *testing.T) {
	set, _ := synth.NewGenerator(synth.DefaultParams(2)).Set("s", synth.GDPClasses(), 3)
	opts := DefaultTrainOptions()
	opts.Sort = true
	r, err := Train(set, opts)
	if err != nil {
		t.Fatal(err)
	}
	names := r.Classes()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("classes not sorted: %v", names)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r, testSet := trainTest(t, synth.UDClasses(), 10, 10, 606)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range testSet.Examples {
		c1, err1 := r.Classify(e.Gesture)
		c2, err2 := r2.Classify(e.Gesture)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if c1 != c2 {
			t.Fatal("round-tripped recognizer disagrees")
		}
	}
	if _, err := ReadJSON(bytes.NewBufferString("{}")); err == nil {
		t.Error("classifier-less JSON accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	r, _ := trainTest(t, synth.UDClasses(), 5, 1, 707)
	path := t.TempDir() + "/full.json"
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyEmptySet(t *testing.T) {
	r, _ := trainTest(t, synth.UDClasses(), 5, 1, 808)
	acc, preds, err := r.Accuracy(&gesture.Set{})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0 || preds != nil {
		t.Error("empty set accuracy should be 0/nil")
	}
}

func TestIOErrorPaths(t *testing.T) {
	r, _ := trainTest(t, synth.UDClasses(), 5, 1, 909)
	if err := r.SaveFile(t.TempDir() + "/no/dir/x.json"); err == nil {
		t.Error("bad save path accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString("garbage")); err == nil {
		t.Error("garbage accepted")
	}
	// Write to a failing writer.
	if err := r.WriteJSON(failWriter{}); err == nil {
		t.Error("write error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }
