package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotalloc is the allocation gate for the decide path. A function
// annotated with
//
//	//glint:hotpath
//
// in its doc comment — and every function it statically calls within the
// module — must not contain AST-visible allocation sources: heap-bound
// composite literals (&T{}, slice and map literals), make/new, growing
// append, string↔[]byte conversions, interface boxing at call sites,
// fmt/errors construction, go statements, and non-deferred function
// literals (closures). The walk stops at functions annotated
//
//	//glint:coldpath <reason>
//
// (per-gesture or shutdown work that a per-point path merely dispatches
// around; the reason is mandatory) and at the packages in
// HotallocColdPkgs, whose cost is governed by their own contracts.
//
// Failure handling is exempt by construction: allocations inside an
// error-carrying return statement, a panic argument, or a block guarded
// by `err != nil` or `recover()` are cold regions — the hot path is the
// path where nothing went wrong. cmd/glint -escape reuses exactly these
// regions (HotpathRegions) to cross-check the compiler's escape analysis
// against the same annotated set.
var Hotalloc = &ModuleAnalyzer{
	Name: "hotalloc",
	Doc: "flag AST-visible allocation sources in //glint:hotpath functions and " +
		"everything they statically call within the module.",
	Run: runHotalloc,
}

// HotallocColdPkgs are module packages the hotalloc walk does not follow
// calls into. The observability and flight-capture packages allocate by
// design when enabled; their disabled-path cost is pinned by the obs <5ns
// contract (OBSERVABILITY.md) rather than by this gate.
var HotallocColdPkgs = map[string]bool{
	"repro/internal/obs":    true,
	"repro/internal/flight": true,
}

// posRange is one half-open position interval [from, to).
type posRange struct{ from, to token.Pos }

func (r posRange) contains(p token.Pos) bool { return r.from <= p && p < r.to }

func inRanges(rs []posRange, p token.Pos) bool {
	for _, r := range rs {
		if r.contains(p) {
			return true
		}
	}
	return false
}

// hotpathDirective reports whether the doc comment group carries the given
// //glint: marker and returns the marker's position and trailing text.
func hotpathDirective(doc *ast.CommentGroup, marker string) (token.Pos, string, bool) {
	if doc == nil {
		return token.NoPos, "", false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//glint:"+marker)
		if !ok {
			continue
		}
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // e.g. //glint:hotpathological
		}
		return c.Pos(), strings.TrimSpace(rest), true
	}
	return token.NoPos, "", false
}

// hotFunc is one function reached by the hotpath walk, with its cold
// regions resolved.
type hotFunc struct {
	fi   funcInfo
	full string
	cold []posRange
}

// hotpathWalk seeds on //glint:hotpath functions and follows static
// in-module call edges, stopping at //glint:coldpath annotations and
// HotallocColdPkgs. report, when non-nil, receives annotation errors
// (a coldpath directive without a reason).
func hotpathWalk(pkgs []*Package, module string, report func(pos token.Pos, format string, args ...any)) []hotFunc {
	idx := indexFuncs(pkgs)

	cold := map[string]bool{}
	var seeds []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if _, _, ok := hotpathDirective(fd.Doc, "hotpath"); ok {
					seeds = append(seeds, fn.FullName())
				}
				if _, reason, ok := hotpathDirective(fd.Doc, "coldpath"); ok {
					if reason == "" && report != nil {
						// Anchor at the declaration, not the comment, so a
						// suppression or fixture expectation can sit on the
						// func line.
						report(fd.Name.Pos(), "//glint:coldpath needs a reason: //glint:coldpath <why this is off the hot path>")
					}
					cold[fn.FullName()] = true
				}
			}
		}
	}

	visited := map[string]bool{}
	var out []hotFunc
	queue := seeds
	for len(queue) > 0 {
		full := queue[0]
		queue = queue[1:]
		if visited[full] {
			continue
		}
		visited[full] = true
		fi, ok := idx[full]
		if !ok || fi.decl.Body == nil {
			continue
		}
		hf := hotFunc{fi: fi, full: full, cold: coldRegions(fi)}
		out = append(out, hf)

		info := fi.pkg.Info
		walkHotBody(fi.decl.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || inRanges(hf.cold, call.Pos()) {
				return
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return
			}
			path := fn.Pkg().Path()
			if !inModule(path, module) || HotallocColdPkgs[path] || cold[fn.FullName()] {
				return
			}
			if _, ok := idx[fn.FullName()]; ok && !visited[fn.FullName()] {
				queue = append(queue, fn.FullName())
			}
		})
	}
	return out
}

// walkHotBody visits the nodes of a hot function body that execute on the
// hot path: non-deferred function literals are skipped (their bodies run
// elsewhere; the literal itself is flagged as a closure allocation), while
// deferred literals run on every call and are walked.
func walkHotBody(body *ast.BlockStmt, fn func(ast.Node)) {
	deferredLits := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
				deferredLits[lit] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok {
			if !deferredLits[lit] {
				fn(m) // report the literal, skip its body
				return false
			}
			return true // deferred: walk the body, exempt the literal itself
		}
		if m != nil {
			fn(m)
		}
		return true
	})
}

// isBuiltinUse reports whether id resolves to the predeclared builtin of
// the same name (panic, recover, close, …) rather than a shadowing
// identifier.
func isBuiltinUse(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// coldRegions computes the failure-handling intervals of a function body:
// error-carrying returns, panic arguments, blocks guarded by an error-nil
// or recover check, and non-deferred function literals (whose bodies are
// not on this function's hot path).
func coldRegions(fi funcInfo) []posRange {
	info := fi.pkg.Info
	var cold []posRange
	deferredLits := map[*ast.FuncLit]bool{}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
				deferredLits[lit] = true
			}
		}
		return true
	})
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			if len(x.Results) == 0 {
				return true
			}
			last := x.Results[len(x.Results)-1]
			if id, ok := ast.Unparen(last).(*ast.Ident); ok && id.Name == "nil" {
				return true
			}
			if implementsError(info.Types[last].Type) {
				cold = append(cold, posRange{x.Pos(), x.End()})
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "panic" && isBuiltinUse(info, id) {
				cold = append(cold, posRange{x.Pos(), x.End()})
			}
		case *ast.IfStmt:
			if guardsFailure(info, x) {
				cold = append(cold, posRange{x.Body.Pos(), x.Body.End()})
			}
		case *ast.FuncLit:
			if !deferredLits[x] {
				cold = append(cold, posRange{x.Body.Pos(), x.Body.End()})
			}
		}
		return true
	})
	return cold
}

// guardsFailure reports whether the if statement's condition is an
// error-path guard: `err != nil` for an error-typed operand, or a
// condition whose init/cond involves recover().
func guardsFailure(info *types.Info, ifs *ast.IfStmt) bool {
	usesRecover := false
	check := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" && isBuiltinUse(info, id) {
					usesRecover = true
				}
			}
			return true
		})
	}
	if ifs.Init != nil {
		check(ifs.Init)
	}
	check(ifs.Cond)
	if usesRecover {
		return true
	}
	bin, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	switch {
	case isNil(bin.Y):
		return implementsError(info.Types[bin.X].Type)
	case isNil(bin.X):
		return implementsError(info.Types[bin.Y].Type)
	}
	return false
}

func runHotalloc(pass *ModulePass) error {
	hot := hotpathWalk(pass.Pkgs, pass.Module, func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, format, args...)
	})
	for _, hf := range hot {
		checkHotFunc(pass, hf)
	}
	return nil
}

// checkHotFunc flags the AST-visible allocation sources in one hot
// function, skipping its cold regions.
func checkHotFunc(pass *ModulePass, hf hotFunc) {
	info := hf.fi.pkg.Info
	name := hf.fi.decl.Name.Name
	walkHotBody(hf.fi.decl.Body, func(n ast.Node) {
		if inRanges(hf.cold, n.Pos()) {
			return
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "&T{} allocates on the hot path (reached from //glint:hotpath via %s)", name)
				}
			}
		case *ast.CompositeLit:
			t := info.Types[x].Type
			if t == nil {
				return
			}
			switch types.Unalias(t.Underlying()).(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(x.Pos(), "slice/map literal allocates on the hot path (reached from //glint:hotpath via %s)", name)
			}
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "go statement allocates a goroutine on the hot path (in %s)", name)
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "function literal allocates a closure on the hot path (in %s); deferred literals are exempt", name)
		case *ast.CallExpr:
			checkHotCall(pass, info, x, name)
		}
	})
}

// checkHotCall flags allocating calls: builtins (make/new, growing
// append), string↔[]byte conversions, fmt/errors construction, and
// interface boxing of non-pointer arguments.
func checkHotCall(pass *ModulePass, info *types.Info, call *ast.CallExpr, name string) {
	// Builtins and conversions.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s allocates on the hot path (in %s); hoist it to setup or pool the value", b.Name(), name)
			case "append":
				// append onto a reslice of an existing backing array —
				// append(x[:i], ...) — reuses capacity (the compaction and
				// buffer-reset idioms); a bare append grows.
				if len(call.Args) > 0 {
					if _, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr); !ok {
						pass.Reportf(call.Pos(), "append may grow its backing array on the hot path (in %s); preallocate capacity or append onto a reslice", name)
					}
				}
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := info.Types[call.Args[0]].Type
		if isStringByteConv(from, to) {
			pass.Reportf(call.Pos(), "string↔[]byte conversion copies and allocates on the hot path (in %s)", name)
		}
		return
	}

	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil {
		path, fname := fn.Pkg().Path(), fn.Name()
		constructs := path == "fmt" ||
			(path == "errors" && (fname == "New" || fname == "Join"))
		if constructs {
			pass.Reportf(call.Pos(), "%s.%s allocates on the hot path (in %s); hot-path failures must use sentinel errors on cold branches", fn.Pkg().Name(), fname, name)
			return
		}
		if path == "errors" || HotallocColdPkgs[path] {
			return // errors.Is/As inspect without constructing; exempt pkgs have their own contract
		}
	}

	// Interface boxing: a non-pointer concrete argument passed to an
	// interface parameter escapes to the heap.
	ft := info.Types[call.Fun].Type
	if ft == nil {
		return
	}
	sig, ok := types.Unalias(ft).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if call.Ellipsis.IsValid() {
				break // slice passed through, no per-element boxing here
			}
			param = types.Unalias(sig.Params().At(sig.Params().Len() - 1).Type()).(*types.Slice).Elem()
		} else if i < sig.Params().Len() {
			param = sig.Params().At(i).Type()
		}
		if param == nil || !types.IsInterface(param) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || types.IsInterface(at) {
			continue
		}
		switch types.Unalias(at.Underlying()).(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue // word-sized; boxing does not copy to the heap
		}
		if bt, ok := types.Unalias(at.Underlying()).(*types.Basic); ok && bt.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes it on the hot path (in %s); pass a pointer or restructure", types.TypeString(at, nil), name)
	}
}

// isStringByteConv reports a string→[]byte or []byte→string conversion.
func isStringByteConv(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := types.Unalias(t.Underlying()).(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := types.Unalias(t.Underlying()).(*types.Slice)
		if !ok {
			return false
		}
		b, ok := types.Unalias(s.Elem().Underlying()).(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	return (isStr(from) && isBytes(to)) || (isBytes(from) && isStr(to))
}

// LineRange is a closed line interval.
type LineRange struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// HotRegion is the source extent of one function on the //glint:hotpath
// call graph, with its cold (failure-handling) line ranges. cmd/glint
// -escape intersects the compiler's escape diagnostics with these.
type HotRegion struct {
	File  string      `json:"file"`
	Func  string      `json:"func"`
	Start int         `json:"start"`
	End   int         `json:"end"`
	Cold  []LineRange `json:"cold,omitempty"`
}

// HotpathRegions resolves the //glint:hotpath call graph of the loaded
// packages and returns the file/line extents of every hot function.
// Annotation errors are ignored here; runHotalloc reports them.
func HotpathRegions(fset *token.FileSet, pkgs []*Package, module string) []HotRegion {
	var out []HotRegion
	for _, hf := range hotpathWalk(pkgs, module, nil) {
		body := hf.fi.decl.Body
		r := HotRegion{
			File:  fset.Position(body.Pos()).Filename,
			Func:  hf.full,
			Start: fset.Position(hf.fi.decl.Pos()).Line,
			End:   fset.Position(body.End()).Line,
		}
		for _, c := range hf.cold {
			r.Cold = append(r.Cold, LineRange{
				Start: fset.Position(c.from).Line,
				End:   fset.Position(c.to).Line,
			})
		}
		out = append(out, r)
	}
	return out
}
