// Package expdoc is the fixture for the expdoc analyzer.
package expdoc

// Documented carries its required doc comment.
const Documented = 1

const Bare = 2 // want `exported const Bare has no doc comment`

const (
	// GroupedDoc documents this one spec.
	GroupedDoc = 3
	GroupBare  = 4 // want `exported const GroupBare has no doc comment`
)

// A group doc comment covers every spec in the group.
const (
	CoveredA = 5
	CoveredB = 6
)

// V is documented.
var V int

var W int // want `exported var W has no doc comment`

var w int // unexported: never flagged

// T is documented.
type T struct{}

type U struct{} // want `exported type U has no doc comment`

// M is documented.
func (T) M() {}

func (T) N() {} // want `exported method N has no doc comment`

// F is documented.
func F() int { return w }

func G() {} // want `exported function G has no doc comment`

func unexported() {}

type hidden struct{}

// Visible is exported but hangs off an unexported type, so it is not part
// of the package's visible API surface and is not flagged even when its
// doc comment is removed.
func (hidden) Visible() { unexported() }

//lint:ignore expdoc generated-style identifier kept nameless for the fixture
func H() {}
