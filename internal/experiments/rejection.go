package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/geom"
	"repro/internal/gesture"
	"repro/internal/recognizer"
	"repro/internal/synth"
)

// RejectionRow is one rejection-threshold configuration's outcome.
type RejectionRow struct {
	Label string
	// FalseReject is the fraction of valid test gestures rejected.
	FalseReject float64
	// FalseAccept is the fraction of garbage strokes accepted as gestures.
	FalseAccept float64
	// AcceptedAccuracy is the accuracy among accepted valid gestures.
	AcceptedAccuracy float64
}

// RejectionSweep quantifies §4.2's rejection machinery: "it is possible to
// bias the classifier away from certain classes ... the computed classifier
// works by creating a distance metric (the Mahalanobis distance)". The
// paper's companion work rejects gestures with low estimated probability or
// large Mahalanobis distance; this sweep measures the false-reject /
// false-accept trade-off of both thresholds on the GDP workload, using
// random scribbles as the garbage class.
type RejectionSweep struct {
	Rows []RejectionRow
}

// Format renders the sweep.
func (r *RejectionSweep) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== rejection sweep: GDP workload + garbage scribbles (§4.2) ==\n")
	fmt.Fprintf(&b, "%-28s %12s %12s %10s\n", "config", "false-rej%", "false-acc%", "acc-acc%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %11.1f%% %11.1f%% %9.1f%%\n",
			row.Label, 100*row.FalseReject, 100*row.FalseAccept, 100*row.AcceptedAccuracy)
	}
	return b.String()
}

// garbageStrokes synthesizes strokes that belong to no gesture class:
// random walks and dense spirals with gesture-like sampling.
func garbageStrokes(n int, seed int64) []gesture.Gesture {
	rng := rand.New(rand.NewSource(seed))
	out := make([]gesture.Gesture, 0, n)
	for i := 0; i < n; i++ {
		var p geom.Path
		x := 100 + rng.Float64()*300
		y := 100 + rng.Float64()*200
		t := 0.0
		if i%2 == 0 {
			// Random walk.
			steps := 15 + rng.Intn(30)
			for s := 0; s < steps; s++ {
				x += rng.NormFloat64() * 14
				y += rng.NormFloat64() * 14
				t += 0.02
				p = append(p, geom.TimedPoint{X: x, Y: y, T: t})
			}
		} else {
			// Expanding spiral.
			steps := 25 + rng.Intn(25)
			for s := 0; s < steps; s++ {
				ang := float64(s) * (0.5 + rng.Float64()*0.4)
				r := 3 + float64(s)*2.2
				t += 0.02
				p = append(p, geom.TimedPoint{
					X: x + r*math.Cos(ang), Y: y + r*math.Sin(ang), T: t,
				})
			}
		}
		out = append(out, gesture.New(p))
	}
	return out
}

// RunRejection trains a GDP classifier and sweeps rejection thresholds.
func RunRejection(cfg Config) (*RejectionSweep, error) {
	classes := synth.GDPClasses()
	trainSet, _ := synth.NewGenerator(synth.DefaultParams(cfg.TrainSeed)).Set("rej-train", classes, cfg.TrainPerClass)
	testSet, _ := synth.NewGenerator(synth.DefaultParams(cfg.TestSeed)).Set("rej-test", classes, cfg.TestPerClass)
	rec, err := recognizer.Train(trainSet, cfg.Eager.Train)
	if err != nil {
		return nil, err
	}
	garbage := garbageStrokes(testSet.Len(), cfg.TestSeed+13)

	type gate struct {
		label   string
		minProb float64
		maxDist float64
	}
	gates := []gate{
		{"no rejection", 0, math.Inf(1)},
		{"P >= 0.90", 0.90, math.Inf(1)},
		{"P >= 0.99", 0.99, math.Inf(1)},
		{"Mahalanobis <= 12", 0, 12},
		{"Mahalanobis <= 8", 0, 8},
		{"P >= 0.95 & dist <= 10", 0.95, 10},
	}

	sweep := &RejectionSweep{}
	for _, g := range gates {
		accepts := func(res recognizerResult) bool {
			return res.prob >= g.minProb && res.dist <= g.maxDist
		}
		var falseRej, accepted, acceptedCorrect int
		for _, e := range testSet.Examples {
			res, err := evalOne(rec, e.Gesture)
			if err != nil {
				return nil, err
			}
			if !accepts(res) {
				falseRej++
				continue
			}
			accepted++
			if res.class == e.Class {
				acceptedCorrect++
			}
		}
		var falseAcc int
		for _, s := range garbage {
			res, err := evalOne(rec, s)
			if err != nil {
				// An unclassifiable garbage stroke counts as rejected,
				// which is exactly the desired outcome.
				continue
			}
			if accepts(res) {
				falseAcc++
			}
		}
		row := RejectionRow{
			Label:       g.label,
			FalseReject: float64(falseRej) / float64(testSet.Len()),
			FalseAccept: float64(falseAcc) / float64(len(garbage)),
		}
		if accepted > 0 {
			row.AcceptedAccuracy = float64(acceptedCorrect) / float64(accepted)
		}
		sweep.Rows = append(sweep.Rows, row)
	}
	return sweep, nil
}

type recognizerResult struct {
	class string
	prob  float64
	dist  float64
}

func evalOne(rec *recognizer.Full, g gesture.Gesture) (recognizerResult, error) {
	res, err := rec.Evaluate(g)
	if err != nil {
		return recognizerResult{}, err
	}
	return recognizerResult{class: res.Class, prob: res.Probability, dist: res.Mahalanobis}, nil
}
