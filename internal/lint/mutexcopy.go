package lint

import (
	"go/ast"
	"go/types"
)

// Mutexcopy reports functions whose receiver, parameters, or results pass
// a lock by value. The GRANDMA event-handler layer shares handler and
// session state between the event loop and timer callbacks; copying a
// struct that embeds a sync primitive silently forks its lock state,
// which is exactly the class of bug -race only catches when the schedule
// cooperates. (go vet's copylocks covers assignments; this analyzer
// covers the signature surface, where the copy is part of the API.)
var Mutexcopy = &Analyzer{
	Name: "mutexcopy",
	Doc: "flag receivers, parameters, and results that pass sync primitives (Mutex, RWMutex, WaitGroup, " +
		"Once, Cond, Map) by value, including structs and arrays that contain one.",
	Run: runMutexcopy,
}

var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true,
}

func runMutexcopy(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if recv := sig.Recv(); recv != nil && containsLock(recv.Type(), nil) {
				pass.Reportf(fd.Name.Pos(), "method %s copies a lock: receiver type %s contains a sync primitive; use a pointer receiver",
					fd.Name.Name, recv.Type())
			}
			params := sig.Params()
			for i := 0; i < params.Len(); i++ {
				if containsLock(params.At(i).Type(), nil) {
					pass.Reportf(fd.Name.Pos(), "function %s copies a lock: parameter %d type %s contains a sync primitive; pass a pointer",
						fd.Name.Name, i+1, params.At(i).Type())
				}
			}
			results := sig.Results()
			for i := 0; i < results.Len(); i++ {
				if containsLock(results.At(i).Type(), nil) {
					pass.Reportf(fd.Name.Pos(), "function %s copies a lock: result %d type %s contains a sync primitive; return a pointer",
						fd.Name.Name, i+1, results.At(i).Type())
				}
			}
		}
	}
	return nil
}

// containsLock reports whether a value of type t embeds a sync primitive
// by value. Pointers, slices, maps, channels, and funcs reference rather
// than copy, so recursion stops there.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch tt := t.(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return true
		}
		return containsLock(tt.Underlying(), seen)
	case *types.Alias:
		return containsLock(types.Unalias(tt), seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if containsLock(tt.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(tt.Elem(), seen)
	}
	return false
}
