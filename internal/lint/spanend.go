package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Spanend enforces the span lifecycle contract from OBSERVABILITY.md: a
// span that a function starts (a call result of type *Span assigned to a
// local variable) must be ended on every path out of the function —
// otherwise the record never reaches the buffer and the trace silently
// loses a segment. A span is considered handled when the function defers
// End/EndAt, calls End/EndAt before each return (block-structured
// approximation), or hands the span to someone else: passing it as an
// argument, returning it, storing it in a field, or capturing it in a
// closure all transfer the ending obligation and silence the check.
//
// The type match is by name ("Span" behind a pointer) rather than by
// package so the linttest fixtures, which cannot import repository
// packages through the source importer, can define a local stand-in.
var Spanend = &Analyzer{
	Name: "spanend",
	Doc: "flag functions that start a span (a *Span-returning call assigned to a local) " +
		"without ending it on every return path.",
	Run: runSpanend,
}

// spanEndMethods finish a span; one of these must guard every exit.
var spanEndMethods = map[string]bool{"End": true, "EndAt": true}

// spanUseMethods read or decorate a span without finishing it or moving
// responsibility for it; calling them keeps the obligation in place.
var spanUseMethods = map[string]bool{
	"SetAttr": true, "SetAttrInt": true, "SetAttrFloat": true,
	"Child": true, "ChildAt": true, "Event": true, "ID": true,
}

func runSpanend(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkSpanScope(pass, body)
			}
			return true
		})
	}
	return nil
}

// spanVar is one tracked span-typed local within a function scope.
type spanVar struct {
	name     string
	def      *ast.Ident  // the defining assignment's LHS
	pos      token.Pos   // assignment position (diagnostics anchor here)
	ends     []token.Pos // plain End/EndAt call sites
	deferred bool        // defer v.End()/v.EndAt(...) seen
	escapes  bool        // the value leaves this scope's control
}

// scopeRange is a statement list (block or switch/select clause body)
// used for the block-structured reachability approximation: an End call
// covers an exit only if the End's innermost scope also encloses it.
type scopeRange struct {
	pos, end token.Pos
	list     []ast.Stmt
}

func checkSpanScope(pass *Pass, body *ast.BlockStmt) {
	// Pass 1: span-producing assignments directly in this scope (nested
	// function literals are their own scopes and are skipped here).
	vars := map[types.Object]*spanVar{}
	var order []*spanVar
	walkScope(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isSpanPtr(pass.Info.Types[ast.Expr(call)].Type) {
			return
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil || vars[obj] != nil {
			return
		}
		v := &spanVar{name: id.Name, def: id, pos: as.Pos()}
		vars[obj] = v
		order = append(order, v)
	})
	if len(vars) == 0 {
		return
	}

	// Context maps for pass 2: which calls are deferred, and which code
	// ranges belong to nested function literals.
	deferredCalls := map[*ast.CallExpr]bool{}
	var litRanges []scopeRange
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			deferredCalls[x.Call] = true
		case *ast.FuncLit:
			litRanges = append(litRanges, scopeRange{pos: x.Pos(), end: x.End()})
		}
		return true
	})
	inLit := func(p token.Pos) bool {
		for _, r := range litRanges {
			if r.pos <= p && p < r.end {
				return true
			}
		}
		return false
	}

	// Pass 2: classify method calls on tracked spans. Receiver idents of
	// recognized methods (and the defining LHS) are accounted for; any
	// other appearance of the variable is an escape.
	handled := map[*ast.Ident]bool{}
	for _, v := range order {
		handled[v.def] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		v := vars[pass.Info.ObjectOf(id)]
		if v == nil {
			return true
		}
		name := sel.Sel.Name
		switch {
		case spanEndMethods[name]:
			handled[id] = true
			switch {
			case inLit(call.Pos()):
				// A closure ends it; when and whether it runs is beyond a
				// block-structured check, so trust the wiring.
				v.escapes = true
			case deferredCalls[call]:
				v.deferred = true
			default:
				v.ends = append(v.ends, call.Pos())
			}
		case spanUseMethods[name]:
			handled[id] = true
			if inLit(call.Pos()) {
				v.escapes = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || handled[id] {
			return true
		}
		if v := vars[pass.Info.ObjectOf(id)]; v != nil {
			v.escapes = true
		}
		return true
	})

	// Statement-list scopes and return statements of this function (both
	// excluding nested literals).
	var scopes []scopeRange
	var returns []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			scopes = append(scopes, scopeRange{pos: x.Pos(), end: x.End(), list: x.List})
		case *ast.CaseClause:
			scopes = append(scopes, scopeRange{pos: x.Pos(), end: x.End(), list: x.Body})
		case *ast.CommClause:
			scopes = append(scopes, scopeRange{pos: x.Pos(), end: x.End(), list: x.Body})
		case *ast.ReturnStmt:
			returns = append(returns, x.Pos())
		}
		return true
	})
	innermost := func(p token.Pos) scopeRange {
		best := scopeRange{pos: body.Pos(), end: body.End(), list: body.List}
		for _, s := range scopes {
			if s.pos <= p && p < s.end && s.pos >= best.pos {
				best = s
			}
		}
		return best
	}
	// covered reports whether some End call definitely precedes the exit
	// at p: it must be positioned between the start and the exit, in a
	// scope that encloses the exit (an End inside a sibling branch does
	// not count).
	covered := func(v *spanVar, p token.Pos) bool {
		for _, e := range v.ends {
			if v.pos < e && e < p {
				if s := innermost(e); s.pos <= p && p < s.end {
					return true
				}
			}
		}
		return false
	}

	for _, v := range order {
		if v.escapes || v.deferred {
			continue
		}
		if len(v.ends) == 0 {
			pass.Reportf(v.pos, "span %s is never ended; call %s.End on every path or defer it", v.name, v.name)
			continue
		}
		home := innermost(v.pos)
		leak := token.NoPos
		for _, ret := range returns {
			if ret > v.pos && home.pos <= ret && ret < home.end && !covered(v, ret) {
				leak = ret
				break
			}
		}
		// The implicit exit: control falling off the end of the span's
		// own statement list, unless that list visibly terminates.
		if leak == token.NoPos && len(home.list) > 0 && !terminates(home.list[len(home.list)-1]) {
			if p := home.end - 1; !covered(v, p) {
				leak = p
			}
		}
		if leak != token.NoPos {
			pass.Reportf(v.pos, "span %s is not ended on every return path (path reaching line %d lacks End)",
				v.name, pass.Fset.Position(leak).Line)
		}
	}
}

// walkScope visits every node in body except nested function literals.
func walkScope(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// isSpanPtr reports whether t is a pointer to a named type called Span.
func isSpanPtr(t types.Type) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	return ok && named.Obj().Name() == "Span"
}

// terminates conservatively reports whether control cannot flow past s:
// a return, a panic, an if/else where both arms terminate, or an
// unconditional for loop. Anything it cannot prove is non-terminating,
// which errs toward reporting.
func terminates(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := x.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.BlockStmt:
		return len(x.List) > 0 && terminates(x.List[len(x.List)-1])
	case *ast.IfStmt:
		if x.Else == nil || !terminates(x.Body) {
			return false
		}
		return terminates(x.Else)
	case *ast.ForStmt:
		return x.Cond == nil
	}
	return false
}
