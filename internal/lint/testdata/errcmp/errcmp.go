// Package errcmp is a fixture for the errcmp analyzer.
package errcmp

import (
	"errors"
	"io"
	"os"
)

// ErrEmpty is a sentinel in this package.
var ErrEmpty = errors.New("empty")

// fallback is package-level and an error, but not named Err*, so it is
// outside the sentinel naming convention the analyzer enforces.
var fallback = errors.New("fallback")

func compare(err error) bool {
	if err == ErrEmpty { // want `== against error sentinel ErrEmpty`
		return true
	}
	if err != ErrEmpty { // want `!= against error sentinel ErrEmpty`
		return true
	}
	if ErrEmpty == err { // want `== against error sentinel ErrEmpty`
		return true
	}
	if err == os.ErrNotExist { // want `== against error sentinel ErrNotExist`
		return true
	}

	// Exempt: nil tests presence, not identity.
	if err != nil || ErrEmpty == nil {
		return false
	}
	// Exempt: errors.Is is the fix, not a finding.
	if errors.Is(err, ErrEmpty) {
		return false
	}
	// Exempt: io.EOF is an error var but not named Err*; by convention
	// it is never wrapped (Readers return it bare), and the analyzer
	// keys on the repo's Err* naming.
	if err == io.EOF {
		return false
	}
	// Exempt: package-level error without the Err prefix.
	if err == fallback {
		return false
	}
	// Exempt: locally scoped error values are not sentinels.
	ErrLocal := errors.New("local")
	if err == ErrLocal {
		return false
	}
	//lint:ignore errcmp fixture demonstrating the allowlist
	return err == ErrEmpty
}
