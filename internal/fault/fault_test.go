package fault_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

func mustSchedule(t *testing.T, p fault.Plan) *fault.Schedule {
	t.Helper()
	s, err := fault.NewSchedule(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fullPlan(seed int64) fault.Plan {
	return fault.Plan{Seed: seed, Rates: map[fault.Kind]float64{
		fault.KindDrop:    0.05,
		fault.KindDup:     0.05,
		fault.KindNaN:     0.05,
		fault.KindInf:     0.05,
		fault.KindNegT:    0.05,
		fault.KindReorder: 0.05,
		fault.KindStall:   0.05,
		fault.KindPanic:   0.10,
		fault.KindPoison:  0.10,
	}}
}

// Same seed, same questions, same answers — regardless of call order.
func TestScheduleDeterministic(t *testing.T) {
	a := mustSchedule(t, fullPlan(42))
	b := mustSchedule(t, fullPlan(42))
	type key struct {
		sess string
		idx  int
	}
	fates := map[key]fault.Kind{}
	for _, sess := range []string{"s0", "s1", "s2"} {
		for i := 0; i < 200; i++ {
			fates[key{sess, i}] = a.Fate(sess, i)
		}
	}
	// Ask b in reverse order; answers must match a's.
	for _, sess := range []string{"s2", "s1", "s0"} {
		for i := 199; i >= 0; i-- {
			if got := b.Fate(sess, i); got != fates[key{sess, i}] {
				t.Fatalf("Fate(%s, %d) = %v on replay, want %v", sess, i, got, fates[key{sess, i}])
			}
		}
	}
	for _, sess := range []string{"s0", "s1"} {
		for i := 0; i < 200; i++ {
			ax, ay, ap := a.Dispatch(sess, i, 1, 2)
			bx, by, bp := b.Dispatch(sess, i, 1, 2)
			if ap != bp ||
				math.Float64bits(ax) != math.Float64bits(bx) ||
				math.Float64bits(ay) != math.Float64bits(by) {
				t.Fatalf("Dispatch(%s, %d) diverged between identical schedules", sess, i)
			}
		}
	}
}

func TestScheduleSeedsDiffer(t *testing.T) {
	a := mustSchedule(t, fullPlan(1))
	b := mustSchedule(t, fullPlan(2))
	diff := 0
	for i := 0; i < 500; i++ {
		if a.Fate("s", i) != b.Fate("s", i) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 1 and 2 produced identical fate streams")
	}
}

// With rates in the plan, every kind should eventually be drawn, at
// roughly its configured frequency.
func TestScheduleCoversAllKinds(t *testing.T) {
	s := mustSchedule(t, fullPlan(7))
	seen := map[fault.Kind]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		seen[s.Fate("cover", i)]++
	}
	for _, k := range []fault.Kind{
		fault.KindDrop, fault.KindDup, fault.KindNaN, fault.KindInf,
		fault.KindNegT, fault.KindReorder, fault.KindStall,
	} {
		if seen[k] == 0 {
			t.Errorf("kind %v never drawn in %d fates", k, n)
		}
		// 5% nominal; accept a generous band.
		if frac := float64(seen[k]) / n; frac < 0.02 || frac > 0.10 {
			t.Errorf("kind %v frequency %.3f, want ~0.05", k, frac)
		}
	}
	panics, poisons := 0, 0
	for i := 0; i < n; i++ {
		x, y, p := s.Dispatch("cover", i, 3, 4)
		switch {
		case p:
			panics++
		case math.IsNaN(x) || math.IsNaN(y):
			poisons++
		}
	}
	if panics == 0 || poisons == 0 {
		t.Fatalf("engine-side kinds not covered: %d panics, %d poisons", panics, poisons)
	}
}

func TestScheduleCountsInjections(t *testing.T) {
	reg := obs.New()
	s := mustSchedule(t, fullPlan(9))
	s.Instrument(reg)
	want := map[string]int64{}
	for i := 0; i < 1000; i++ {
		if k := s.Fate("m", i); k != fault.KindNone {
			want["fault.injected."+k.String()]++
			want["fault.injected.total"]++
		}
		x, y, p := s.Dispatch("m", i, 0, 0)
		switch {
		case p:
			want["fault.injected.panic"]++
			want["fault.injected.total"]++
		case math.IsNaN(x) || math.IsNaN(y):
			want["fault.injected.poison"]++
			want["fault.injected.total"]++
		}
	}
	got := map[string]int64{}
	for _, m := range reg.Snapshot().Counters {
		got[m.Name] = m.Value
	}
	for name, n := range want {
		if got[name] != n {
			t.Errorf("%s = %d, want %d", name, got[name], n)
		}
	}
	// Every kind's counter is registered even when it never fired.
	for _, suffix := range []string{"drop", "dup", "nan", "inf", "neg_t", "reorder", "stall", "panic", "poison", "total"} {
		if _, ok := got["fault.injected."+suffix]; !ok {
			t.Errorf("fault.injected.%s not registered", suffix)
		}
	}
}

func TestNewScheduleRejectsBadPlans(t *testing.T) {
	cases := []fault.Plan{
		{Rates: map[fault.Kind]float64{fault.KindDrop: -0.1}},
		{Rates: map[fault.Kind]float64{fault.KindDrop: 1.5}},
		{Rates: map[fault.Kind]float64{fault.KindDrop: math.NaN()}},
		{Rates: map[fault.Kind]float64{fault.KindNone: 0.5}},
		{Rates: map[fault.Kind]float64{fault.Kind(99): 0.5}},
		{Rates: map[fault.Kind]float64{fault.KindDrop: 0.6, fault.KindDup: 0.6}},
	}
	for i, p := range cases {
		if _, err := fault.NewSchedule(p); err == nil {
			t.Errorf("case %d: plan accepted, want error", i)
		}
	}
}

// Nil receivers must behave as "no faults", not crash.
func TestNilHooksAreNoOps(t *testing.T) {
	var s *fault.Schedule
	var sc *fault.Script
	s.Instrument(obs.New())
	sc.Instrument(obs.New())
	if k := s.Fate("x", 0); k != fault.KindNone {
		t.Fatalf("nil Schedule Fate = %v", k)
	}
	x, y, p := s.Dispatch("x", 0, 1, 2)
	if p || x != 1 || y != 2 {
		t.Fatalf("nil Schedule Dispatch = (%v, %v, %v)", x, y, p)
	}
	x, y, p = sc.Dispatch("x", 0, 1, 2)
	if p || x != 1 || y != 2 {
		t.Fatalf("nil Script Dispatch = (%v, %v, %v)", x, y, p)
	}
}

func TestScriptTargetsExactEvents(t *testing.T) {
	reg := obs.New()
	sc := fault.NewScript().
		Set("a", 3, fault.KindPanic).
		Set("b", 0, fault.KindPoison)
	sc.Instrument(reg)
	for i := 0; i < 10; i++ {
		x, y, p := sc.Dispatch("a", i, 1, 2)
		if i == 3 {
			if !p {
				t.Fatalf("a[3] did not panic")
			}
		} else if p || x != 1 || y != 2 {
			t.Fatalf("a[%d] = (%v, %v, %v), want passthrough", i, x, y, p)
		}
	}
	x, y, p := sc.Dispatch("b", 0, 1, 2)
	if p || !math.IsNaN(x) || !math.IsNaN(y) {
		t.Fatalf("b[0] = (%v, %v, %v), want poisoned coordinates", x, y, p)
	}
	if _, _, p := sc.Dispatch("untouched", 0, 1, 2); p {
		t.Fatal("unscripted session panicked")
	}
	got := map[string]int64{}
	for _, m := range reg.Snapshot().Counters {
		got[m.Name] = m.Value
	}
	if got["fault.injected.panic"] != 1 || got["fault.injected.poison"] != 1 || got["fault.injected.total"] != 2 {
		t.Fatalf("script counters = %v", got)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[fault.Kind]string{
		fault.KindNone:    "none",
		fault.KindDrop:    "drop",
		fault.KindDup:     "dup",
		fault.KindNaN:     "nan",
		fault.KindInf:     "inf",
		fault.KindNegT:    "neg_t",
		fault.KindReorder: "reorder",
		fault.KindStall:   "stall",
		fault.KindPanic:   "panic",
		fault.KindPoison:  "poison",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if fault.Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind renders %q", fault.Kind(99).String())
	}
}

func TestManualClock(t *testing.T) {
	start := time.Unix(1000, 0)
	c := fault.NewManualClock(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", c.Now(), start)
	}
	if got := c.Advance(3 * time.Second); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("Advance returned %v", got)
	}
	if !c.Now().Equal(start.Add(3 * time.Second)) {
		t.Fatalf("Now after Advance = %v", c.Now())
	}
	if got := c.Advance(-time.Hour); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("negative Advance moved the clock to %v", got)
	}
}
