package serve

import (
	"fmt"
	"testing"
)

// TestSessionPoolRecycles plays sequential gestures through a one-shard
// engine and checks the shard pool actually recycles: after the first
// gesture the pool holds its session, and subsequent gestures revive it
// rather than growing the pool.
func TestSessionPoolRecycles(t *testing.T) {
	rec := trainRec(t, 1)
	sink := newSink()
	e, err := New(rec, Options{Shards: 1, OnResult: sink.add})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	g, want := sampleGesture(2, 0)

	var pooled *liveSession
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("s%d", i) // one shard, so every ID lands on the same pool
		playSession(t, e, id, g)
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		sh := e.shards[0]
		if len(sh.free) != 1 {
			t.Fatalf("gesture %d: pool size %d, want 1 (one session in flight at a time)", i, len(sh.free))
		}
		if pooled == nil {
			pooled = sh.free[0]
		} else if sh.free[0] != pooled {
			t.Fatalf("gesture %d: pool returned a different liveSession; reuse is not happening", i)
		}
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.dups != 0 {
		t.Fatalf("%d duplicate results", sink.dups)
	}
	for i := 0; i < 5; i++ {
		if got := sink.classes[fmt.Sprintf("s%d", i)]; got != want {
			t.Fatalf("gesture %d classified %q, want %q — pooled state leaked between gestures", i, got, want)
		}
	}
}

// TestSessionPoolDropsStaleSnapshot checks the pool's safety rule: a
// session pooled under the old recognizer must not serve a gesture that
// starts after Swap — its buffers are shaped for the old model.
func TestSessionPoolDropsStaleSnapshot(t *testing.T) {
	rec := trainRec(t, 1)
	sink := newSink()
	e, err := New(rec, Options{Shards: 1, OnResult: sink.add})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	g, want := sampleGesture(2, 0)

	playSession(t, e, "pre-swap", g)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	stale := e.shards[0].free[0]

	rec2 := trainRec(t, 99)
	if prev := e.Swap(rec2); prev != rec {
		t.Fatalf("Swap returned %p, want the original recognizer %p", prev, rec)
	}

	playSession(t, e, "post-swap", g)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	sh := e.shards[0]
	if len(sh.free) != 1 {
		t.Fatalf("pool size %d after post-swap gesture, want 1", len(sh.free))
	}
	fresh := sh.free[0]
	if fresh == stale {
		t.Fatal("pool revived a session built over the swapped-out recognizer")
	}
	if fresh.snap.backend != rec2 {
		t.Fatal("post-swap session does not hold the new recognizer snapshot")
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if got := sink.classes["post-swap"]; got != want {
		t.Fatalf("post-swap class %q, want %q", got, want)
	}
}

// TestPanickedSessionNotPooled checks that a session finished by a
// recovered panic is never recycled — its internal state is suspect.
func TestPanickedSessionNotPooled(t *testing.T) {
	rec := trainRec(t, 1)
	e, err := New(rec, Options{Shards: 1, Fault: panicOnFirst{}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	g, _ := sampleGesture(2, 0)
	playSession(t, e, "s", g)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := len(e.shards[0].free); n != 0 {
		t.Fatalf("pool holds %d sessions after a panicked finish, want 0", n)
	}
}

// panicOnFirst injects a panic on the first dispatched event of every
// session.
type panicOnFirst struct{}

func (panicOnFirst) Dispatch(session string, index int, x, y float64) (float64, float64, bool) {
	return x, y, index == 0
}
