package multipath

import (
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/recognizer"
)

// FingerID identifies one finger in the (simulated) Sensor Frame's field
// of view.
type FingerID int

// EventKind enumerates finger events.
type EventKind int

// Finger event kinds.
const (
	FingerDown EventKind = iota
	FingerMove
	FingerUp
)

// Event is one finger sample.
type Event struct {
	Finger FingerID
	Kind   EventKind
	X, Y   float64
	T      float64
}

// Session is a multi-finger two-phase interaction: the primary (first)
// finger's stroke is collected and classified — eagerly when the
// recognizer allows — and once recognized, a second finger joins to drive
// simultaneous translate-rotate-scale manipulation. Additional fingers
// beyond the second are counted and surfaced so applications can map them
// to extra parameters (the paper's color/thickness example).
type Session struct {
	rec recognizer.Backend

	// OnRecognized fires once, at the phase transition.
	OnRecognized func(class string)
	// OnTransform fires for each two-finger manipulation delta.
	OnTransform func(tr Transform)
	// OnExtraFingers fires when the number of fingers beyond the first two
	// changes during manipulation.
	OnExtraFingers func(n int)

	fingers map[FingerID]geom.Point
	order   []FingerID // arrival order of live fingers
	// stream is the backend's recognition stream. It outlives the interaction:
	// Reset keeps it (and its internal buffers) so a pooled session's next
	// gesture reuses it instead of allocating; streaming records whether it
	// is collecting *this* interaction's stroke — the flag that
	// distinguishes a live stream (duplicate FingerDown, ignore) from a
	// retained-for-reuse one (restart it).
	stream    recognizer.Stream
	streaming bool
	class     string
	decided   bool
	complete  bool
	tracker   *TransformTracker
	extra     int

	// degrade enables the degraded-classification fallback; degraded
	// records that it actually fired for this interaction.
	degrade  bool
	degraded bool

	// span and tap are forwarded to the recognition stream when the primary
	// finger starts it; both nil by default (tracing/capture disabled).
	span *obs.Span
	tap  recognizer.Tap
}

// SetSpan attaches a parent trace span, forwarded to the recognition
// stream when the primary finger starts the gesture (see
// recognizer.Stream). Call before the first Handle; like every Session
// method this is single-goroutine.
func (s *Session) SetSpan(sp *obs.Span) { s.span = sp }

// SetTap attaches a decision tap, forwarded to the recognition stream
// when the primary finger starts the gesture (see recognizer.Tap). Call
// before the first Handle.
func (s *Session) SetTap(t recognizer.Tap) { s.tap = t }

// SetDegradedFallback enables degraded classification: when the
// recognition stream poisons (a non-finite point wrecked its
// incremental state), the session classifies the longest finite stroke
// prefix via the backend's fallback scorer (recognizer.Stream.Degrade)
// instead of rejecting with "". Degraded reports whether that fallback
// produced this interaction's class. Off by default; serve.Engine turns
// it on. Call before the first Handle.
func (s *Session) SetDegradedFallback(on bool) { s.degrade = on }

// Degraded reports that the recognized class came from the degraded
// fallback (SetDegradedFallback) rather than the healthy eager path.
func (s *Session) Degraded() bool { return s.degraded }

// rejectClass maps a poisoned or unclassifiable stream to its fallback
// class: with the degraded fallback enabled, the finite prefix's full
// classification; otherwise "" — the rejection marker.
func (s *Session) rejectClass() string {
	if s.degrade && s.stream != nil {
		if class, err := s.stream.Degrade(); err == nil {
			s.degraded = true
			return class
		}
	}
	return ""
}

// NewSession starts a multi-finger interaction over the given
// recognizer backend (any recognizer.Backend — the eager statistical
// recognizer and the streaming template matcher both qualify).
func NewSession(rec recognizer.Backend) *Session {
	return &Session{rec: rec, fingers: make(map[FingerID]geom.Point)}
}

// Class returns the recognized class, or "" before recognition.
func (s *Session) Class() string { return s.class }

// Decided reports whether the gesture phase has ended.
func (s *Session) Decided() bool { return s.decided }

// Completed reports whether the whole interaction has ended: the gesture
// phase decided and every finger lifted. A completed session is inert —
// see Handle.
func (s *Session) Completed() bool { return s.complete }

// FingerCount returns the number of fingers currently in view.
func (s *Session) FingerCount() int { return len(s.order) }

func (s *Session) primary() (FingerID, bool) {
	if len(s.order) == 0 {
		return 0, false
	}
	return s.order[0], true
}

// manipPair returns the two manipulation fingers (the two longest-lived).
func (s *Session) manipPair() (geom.Point, geom.Point, bool) {
	if len(s.order) < 2 {
		return geom.Point{}, geom.Point{}, false
	}
	return s.fingers[s.order[0]], s.fingers[s.order[1]], true
}

func (s *Session) decide(class string) {
	if s.decided {
		return
	}
	s.decided = true
	s.class = class
	if s.OnRecognized != nil {
		s.OnRecognized(class)
	}
}

// Handle consumes one finger event.
//
// A Session models exactly one interaction. Once the interaction has
// completed — the gesture was decided and the last finger lifted — the
// session is inert: every further event is ignored. (Previously a
// FingerDown on a completed session silently started a new eager stream
// whose recognition result was unreachable, because the one-shot decide
// had already fired; explicit inertness replaces that trap. Start a new
// Session, or serve many interactions through the serve.Engine, instead.)
//
// Handle is the session layer of the zero-allocation decide path: in
// steady state (buffers warmed, fallbacks idle) consuming one event must
// not allocate.
//
//glint:hotpath
func (s *Session) Handle(ev Event) {
	if s.complete {
		return
	}
	p := geom.Pt(ev.X, ev.Y)
	switch ev.Kind {
	case FingerDown:
		if _, live := s.fingers[ev.Finger]; !live {
			//lint:ignore hotalloc order's backing array is retained across Reset; it grows only past the all-time peak finger count, then never again
			s.order = append(s.order, ev.Finger)
		}
		s.fingers[ev.Finger] = p
		if len(s.order) == 1 {
			if s.streaming || s.decided {
				// Duplicate FingerDown for the live primary finger: the
				// stream is already running (or already rejected) —
				// restarting it here would silently discard the collected
				// stroke. Treat the event as a position update only.
				return
			}
			// Primary finger starts the gesture. A session or Add error
			// (invalid options, non-finite input) rejects the gesture:
			// decide("") — or the degraded fallback's class — so
			// manipulation can still proceed. A stream retained from a
			// previous interaction (session pooling) is restarted in
			// place; only the first gesture through this Session
			// allocates one.
			if s.stream == nil {
				stream, err := s.rec.NewStream()
				if err != nil {
					s.decide("")
					return
				}
				s.stream = stream
			} else {
				s.stream.Reset()
			}
			s.stream.SetSpan(s.span)
			s.stream.SetTap(s.tap)
			s.streaming = true
			fired, class, err := s.stream.Add(geom.TimedPoint{X: ev.X, Y: ev.Y, T: ev.T})
			if err != nil {
				s.decide(s.rejectClass())
			} else if fired {
				s.decide(class)
			}
			return
		}
		// A second (or later) finger arriving forces the phase transition:
		// the remaining interaction is manipulation.
		if !s.decided {
			s.decide(s.endClass())
		}
		s.syncManipState()

	case FingerMove:
		if _, live := s.fingers[ev.Finger]; !live {
			return // unknown finger; ignore
		}
		s.fingers[ev.Finger] = p
		prim, _ := s.primary()
		if !s.decided {
			if ev.Finger != prim || s.stream == nil {
				return
			}
			fired, class, err := s.stream.Add(geom.TimedPoint{X: ev.X, Y: ev.Y, T: ev.T})
			if err != nil {
				s.decide(s.rejectClass())
				s.syncManipState()
			} else if fired {
				s.decide(class)
				s.syncManipState()
			}
			return
		}
		if a, b, ok := s.manipPair(); ok && s.tracker != nil &&
			(ev.Finger == s.order[0] || ev.Finger == s.order[1]) {
			tr := s.tracker.Update(a, b)
			if s.OnTransform != nil && !tr.Identity() {
				s.OnTransform(tr)
			}
		}

	case FingerUp:
		if _, live := s.fingers[ev.Finger]; !live {
			return
		}
		delete(s.fingers, ev.Finger)
		for i, id := range s.order {
			if id == ev.Finger {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		if len(s.order) == 0 {
			if !s.decided {
				// Interaction ended during collection: classify in full.
				s.decide(s.endClass())
			}
			s.complete = true
			return
		}
		s.syncManipState()
	}
}

// Finish force-ends the interaction and returns the final class: if the
// gesture phase is still running the stroke collected so far is
// classified in full (an unclassifiable stroke yields "", the rejection
// marker). Serving engines use it to drain in-flight sessions at
// shutdown. Finishing an already-completed session just returns its
// class.
func (s *Session) Finish() string {
	if !s.complete {
		if !s.decided {
			s.decide(s.endClass())
		}
		s.complete = true
		clear(s.fingers)
		s.order = s.order[:0]
		s.tracker = nil
	}
	return s.class
}

// Reset returns the session to its initial state so it can serve a new
// interaction, retaining every allocation it has accumulated: the finger
// map and order slice keep their capacity, and the eager stream (with its
// point and score buffers) is kept for restart on the next primary
// FingerDown. This is the serve.Engine session pool's reuse hook. The
// per-interaction callbacks, span, and tap are cleared — reattach them
// before the first Handle.
func (s *Session) Reset() {
	clear(s.fingers)
	s.order = s.order[:0]
	s.streaming = false
	s.class = ""
	s.decided = false
	s.complete = false
	s.tracker = nil
	s.extra = 0
	s.degraded = false
	s.span = nil
	s.tap = nil
	s.OnRecognized = nil
	s.OnTransform = nil
	s.OnExtraFingers = nil
}

// endClass finishes the streaming session, mapping any error (an
// unclassifiable stroke) to the degraded fallback's class when enabled,
// or "" — the session's rejection marker.
func (s *Session) endClass() string {
	if s.stream == nil {
		return ""
	}
	class, err := s.stream.End()
	if err != nil {
		return s.rejectClass()
	}
	return class
}

// syncManipState rebuilds the transform tracker and extra-finger count
// after the finger population changes.
//
//glint:coldpath runs only when a finger arrives or leaves, never on the per-point move path
func (s *Session) syncManipState() {
	if !s.decided {
		return
	}
	if a, b, ok := s.manipPair(); ok {
		s.tracker = NewTransformTracker(a, b)
	} else {
		s.tracker = nil
	}
	extra := len(s.order) - 2
	if extra < 0 {
		extra = 0
	}
	if extra != s.extra {
		s.extra = extra
		if s.OnExtraFingers != nil {
			s.OnExtraFingers(extra)
		}
	}
}

// LiveFingers returns the identifiers of fingers in view, in arrival
// order — index 0 is the primary (gesturing) finger, index 1 the second
// manipulation finger. Callers wanting ID order can sort the copy.
func (s *Session) LiveFingers() []FingerID {
	return append([]FingerID(nil), s.order...)
}
