package rubine_test

import (
	"fmt"

	rubine "repro"
)

// The complete train-then-stream workflow: synthesize labelled examples,
// train an eager recognizer, and classify a gesture mid-stroke.
func Example() {
	train := rubine.Generate(rubine.UD, 12, 7)
	rec, _, err := rubine.TrainEager(train, rubine.DefaultEagerOptions())
	if err != nil {
		panic(err)
	}

	// Stream a fresh "U" gesture point by point.
	test := rubine.Generate(rubine.UD, 1, 99)
	stroke := test.Examples[0]
	session, err := rec.NewSession()
	if err != nil {
		panic(err)
	}
	for _, p := range stroke.Gesture.Points {
		fired, class, err := session.Add(p)
		if err != nil {
			panic(err)
		}
		if fired {
			fmt.Printf("recognized %q before the stroke ended\n", class)
			break
		}
	}
	final, err := session.End()
	if err != nil {
		panic(err)
	}
	fmt.Printf("drew %q, final class %q\n", stroke.Class, final)
	// Output:
	// recognized "U" before the stroke ended
	// drew "U", final class "U"
}

// Training a full (non-eager) classifier and inspecting a classification's
// rejection diagnostics.
func ExampleTrainFull() {
	train := rubine.Generate(rubine.EightDirections, 15, 1)
	rec, err := rubine.TrainFull(train, rubine.DefaultTrainOptions())
	if err != nil {
		panic(err)
	}
	test := rubine.Generate(rubine.EightDirections, 1, 42)
	res, err := rec.Evaluate(test.Examples[0].Gesture)
	if err != nil {
		panic(err)
	}
	fmt.Printf("class=%s probability>0.9: %v\n", res.Class, res.Probability > 0.9)
	// Output:
	// class=ur probability>0.9: true
}

// Solving the two-finger translate-rotate-scale transform of the paper's
// section 6.
func ExampleSolveTransform() {
	// The fingers spread to twice their separation about a fixed midpoint.
	tr := rubine.SolveTransform(
		rubine.Pt(-10, 0), rubine.Pt(10, 0),
		rubine.Pt(-20, 0), rubine.Pt(20, 0),
	)
	fmt.Printf("scale %.1f rotate %.1f\n", tr.Scale, tr.Rotate)
	// Output:
	// scale 2.0 rotate 0.0
}
