package multipath

import (
	"math"
	"testing"

	"repro/internal/gesture"
)

// TestDegradedFallbackOnPoisonedStroke: with the fallback enabled, a
// mid-stroke non-finite point no longer rejects the gesture — the
// session decides with the full classifier's answer on the finite
// prefix and reports Degraded().
func TestDegradedFallbackOnPoisonedStroke(t *testing.T) {
	rec := trainRec(t)
	s := NewSession(rec)
	s.SetDegradedFallback(true)
	g := sampleUD(t, 0)
	const prefix = 6
	for i := 0; i < prefix; i++ {
		kind := FingerMove
		if i == 0 {
			kind = FingerDown
		}
		s.Handle(Event{Finger: 0, Kind: kind, X: g[i].X, Y: g[i].Y, T: g[i].T})
	}
	want, err := rec.Classify(gesture.New(g[:prefix]))
	if err != nil {
		t.Fatal(err)
	}
	s.Handle(Event{Finger: 0, Kind: FingerMove, X: math.NaN(), Y: 0, T: g[prefix].T})
	if !s.Decided() {
		t.Fatal("poisoned stroke with fallback enabled did not decide")
	}
	if s.Class() != want {
		t.Errorf("Class() = %q, full classifier on finite prefix says %q", s.Class(), want)
	}
	if !s.Degraded() {
		t.Error("Degraded() = false after the fallback classified")
	}
}

// TestPoisonedStrokeStillRejectsWithoutFallback: the pre-existing
// behavior is untouched when the fallback is off — a poisoned stroke
// decides the empty class.
func TestPoisonedStrokeStillRejectsWithoutFallback(t *testing.T) {
	rec := trainRec(t)
	s := NewSession(rec)
	g := sampleUD(t, 0)
	for i := 0; i < 4; i++ {
		kind := FingerMove
		if i == 0 {
			kind = FingerDown
		}
		s.Handle(Event{Finger: 0, Kind: kind, X: g[i].X, Y: g[i].Y, T: g[i].T})
	}
	s.Handle(Event{Finger: 0, Kind: FingerMove, X: math.NaN(), Y: 0, T: g[4].T})
	if !s.Decided() || s.Class() != "" {
		t.Fatalf("Decided=%v Class=%q, want rejection (empty class)", s.Decided(), s.Class())
	}
	if s.Degraded() {
		t.Error("Degraded() = true with the fallback disabled")
	}
}

// TestDuplicateFingerDownKeepsStroke: a duplicated FingerDown for the
// live primary finger must not restart the eager stream and discard the
// collected points — it is a position update only, and the gesture
// still classifies as if the stream had never been interrupted.
func TestDuplicateFingerDownKeepsStroke(t *testing.T) {
	rec := trainRec(t)
	s := NewSession(rec)
	var recognized string
	s.OnRecognized = func(class string) { recognized = class }
	g := sampleUD(t, 0)
	for i, p := range g {
		kind := FingerMove
		if i == 0 || i == 3 {
			kind = FingerDown // i == 3: the duplicate
		}
		s.Handle(Event{Finger: 0, Kind: kind, X: p.X, Y: p.Y, T: p.T})
	}
	last := g[len(g)-1]
	s.Handle(Event{Finger: 0, Kind: FingerUp, X: last.X, Y: last.Y, T: last.T + 0.01})
	if recognized != "U" {
		t.Fatalf("recognized %q after duplicate FingerDown, want %q", recognized, "U")
	}
}
