// Gdpdraw: drive the GDP drawing program through its public API —
// creating, moving, grouping, and deleting shapes entirely with gestures,
// with manipulation phases positioning things interactively (the paper's
// figure 3 walked through in code).
package main

import (
	"fmt"
	"log"

	rubine "repro"
)

func main() {
	app, err := rubine.NewGDP(rubine.GDPConfig{Mode: rubine.ModeTimeout})
	if err != nil {
		log.Fatal(err)
	}

	// A low-noise stroke synthesizer stands in for the user's hand.
	params := rubine.DefaultGenParams(11)
	params.Jitter = 0.4
	params.RotJitter = 0.01
	params.ScaleJitter = 0.02
	params.CornerLoopProb = 0
	gen := rubine.NewGenerator(params)
	classes := map[string]rubine.GestureClass{}
	for _, c := range rubine.Classes(rubine.GDPSet) {
		classes[c.Name] = c
	}

	// Draw a rectangle: gesture, hold, rubberband the far corner.
	rectStroke := gen.SampleAt(classes["rect"], rubine.Pt(95, 70)).G.Points
	app.PlayTwoPhase(rectStroke, 0.3, []rubine.Point{{X: 160, Y: 125}})

	// Draw a line.
	lineStroke := gen.SampleAt(classes["line"], rubine.Pt(260, 80)).G.Points
	app.PlayGesture(lineStroke)

	// Copy the rectangle: start the copy gesture on its edge, then drag
	// the copy to a new spot during manipulation.
	copyStroke := gen.SampleAt(classes["copy"], rubine.Pt(130, 97)).G.Points
	app.PlayTwoPhase(copyStroke, 0.3, []rubine.Point{{X: 420, Y: 260}})

	// Group the original rectangle with a lasso around it.
	groupStroke := gen.SampleAt(classes["group"], rubine.Pt(127, 97)).G.Points
	app.PlayTwoPhase(groupStroke, 0.3, nil)

	fmt.Println("interaction log:")
	for _, l := range app.Log {
		fmt.Println(" ", l)
	}
	fmt.Printf("\nscene: %v\n\n", app.Scene.Kinds())
	app.Render()
	fmt.Print(app.Canvas.Downsample(5, 10).String())
}
