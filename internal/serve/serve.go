// Package serve is the concurrent serving engine: it multiplexes many
// independent gesture interactions — each a multipath.Session wrapping an
// eager recognition stream — across a pool of worker goroutines, sharing
// one immutable recognizer snapshot.
//
// Design (see DESIGN.md §7):
//
//   - Immutable snapshot sharing. The engine holds a *eager.Recognizer
//     behind an atomic.Pointer. Classification never mutates the
//     recognizer (the classifier's documented concurrency contract), so
//     any number of sessions on any number of goroutines read it without
//     locks. Swap publishes a freshly-trained recognizer atomically —
//     retrain-without-downtime: sessions started after the swap use the
//     new model, in-flight sessions finish on the snapshot they started
//     with, and no session ever observes a half-updated model.
//
//   - Sharding. Each session ID hashes (FNV-1a) to one shard; a shard is
//     one goroutine owning a bounded event queue and the state of every
//     session mapped to it. All events of one session are handled by one
//     goroutine in submission order, so the single-goroutine session
//     types are used unchanged, with no per-session locking.
//
//   - Backpressure. Submit never blocks and never drops silently: when a
//     shard's queue is full it returns ErrQueueFull and counts the
//     rejection, and the caller decides (shed, retry, spill).
//
//   - Clean shutdown. Close stops intake (ErrClosed), lets every shard
//     drain its queued events, force-finishes in-flight sessions via
//     (*multipath.Session).Finish — classifying whatever stroke prefix
//     was collected — and reports each as a Result before returning.
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eager"
	"repro/internal/flight"
	"repro/internal/multipath"
	"repro/internal/obs"
)

// Errors returned by Submit.
var (
	// ErrQueueFull reports that the target shard's event queue is at
	// capacity. The event was NOT enqueued; the caller owns the retry
	// policy. This is deliberate backpressure, never silent dropping.
	ErrQueueFull = errors.New("serve: shard queue full")
	// ErrClosed reports a Submit after Close.
	ErrClosed = errors.New("serve: engine closed")
)

// DefaultQueueDepth is the per-shard event queue capacity used when
// Options.QueueDepth is 0.
const DefaultQueueDepth = 256

// Event is one finger sample addressed to one interaction session.
type Event struct {
	Session string
	Finger  multipath.FingerID
	Kind    multipath.EventKind
	X, Y, T float64
}

// Result is the outcome of one completed interaction: the recognized
// class ("" marks a rejected/unclassifiable stroke, matching the session
// layer's convention).
type Result struct {
	Session string
	Class   string
}

// Options configures an Engine.
type Options struct {
	// Shards is the number of worker goroutines (and queues). 0 means
	// runtime.GOMAXPROCS.
	Shards int
	// QueueDepth is the per-shard event queue capacity. 0 means
	// DefaultQueueDepth. Submit returns ErrQueueFull beyond it.
	QueueDepth int
	// OnResult, when set, is called once per completed session, from the
	// shard goroutine that owned it. Calls may arrive concurrently from
	// different shards; the callback must be safe for that. A slow
	// callback stalls its shard — that is the backpressure propagating,
	// by design.
	OnResult func(Result)
	// Obs, when set, attaches the engine's metrics and trace ring to the
	// registry (see OBSERVABILITY.md for the serve.* contract), and opens
	// one causally-nested span trace per gesture in the registry's
	// "gesture.spans" buffer (root "gesture" span with "queue_wait" /
	// "dispatch" children per event, plus the eager layer's "decide"
	// spans underneath). Nil leaves the engine uninstrumented: every
	// metric and span call degrades to a sub-5ns no-op.
	Obs *obs.Registry `json:"-"`
	// Flight, when set, attaches a flight recorder: the engine captures
	// each gesture's raw points and eager decisions (via eager.Tap) and
	// offers the finished bundle to the recorder, whose trigger policy
	// decides what to keep. Works with or without Obs. Nil disables
	// capture entirely.
	Flight *flight.Recorder `json:"-"`
	// FlightDump, when set, receives the flight recorder's JSON dump once,
	// during Close — the post-mortem artifact for a crashed or misbehaving
	// run. Requires Flight (with a nil recorder an empty dump is written).
	FlightDump io.Writer `json:"-"`
}

// engineMetrics holds the engine's obs handles. The zero value (all nil)
// is the uninstrumented state; see OBSERVABILITY.md for the contract.
type engineMetrics struct {
	submitted     *obs.Counter   // serve.events.submitted
	rejected      *obs.Counter   // serve.events.rejected
	opened        *obs.Counter   // serve.sessions.opened
	completed     *obs.Counter   // serve.sessions.completed
	drained       *obs.Counter   // serve.sessions.drained (subset of completed)
	swaps         *obs.Counter   // serve.swaps
	swapsRejected *obs.Counter   // serve.swaps_rejected (nil recognizer refused)
	queueDepth    *obs.Histogram // serve.queue.depth, sampled per accepted Submit
	queueWaitNS   *obs.Histogram // serve.queue.wait_ns, enqueue -> dequeue
	sessionNS     *obs.Histogram // serve.session.latency_ns, first submit -> completion
	trace         *obs.Ring      // serve.trace lifecycle events
	spans         *obs.SpanBuffer // gesture.spans, one trace per gesture
}

func newEngineMetrics(reg *obs.Registry) engineMetrics {
	if reg == nil {
		return engineMetrics{}
	}
	return engineMetrics{
		submitted:     reg.Counter("serve.events.submitted"),
		rejected:      reg.Counter("serve.events.rejected"),
		opened:        reg.Counter("serve.sessions.opened"),
		completed:     reg.Counter("serve.sessions.completed"),
		drained:       reg.Counter("serve.sessions.drained"),
		swaps:         reg.Counter("serve.swaps"),
		swapsRejected: reg.Counter("serve.swaps_rejected"),
		queueDepth:    reg.Histogram("serve.queue.depth", obs.DepthBuckets()),
		queueWaitNS:   reg.Histogram("serve.queue.wait_ns", obs.LatencyBuckets()),
		sessionNS:     reg.Histogram("serve.session.latency_ns", obs.LatencyBuckets()),
		trace:         reg.Ring("serve.trace", 0),
		spans:         reg.Spans("gesture.spans", 0),
	}
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	Submitted int64 // events accepted into a queue
	Rejected  int64 // events refused with ErrQueueFull
	Completed int64 // sessions finished (including drained at Close)
	Active    int64 // sessions currently in flight
}

// Engine is the concurrent session server. Create with New; all methods
// are safe for concurrent use.
type Engine struct {
	rec    atomic.Pointer[eager.Recognizer]
	opts   Options
	shards []*shard
	wg     sync.WaitGroup

	mu     sync.RWMutex // guards closed vs. concurrent Submit/Close
	closed bool

	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	active    atomic.Int64

	m engineMetrics
	// stamp records whether Submit must read the clock: true when either
	// observability (queue-wait/latency histograms, span timestamps) or a
	// flight recorder (latency trigger) is attached. False keeps the
	// disabled path free of clock reads.
	stamp bool
}

// queued is one enqueued event plus its enqueue timestamp (the zero Time
// when the engine is uninstrumented), so the shard can observe queue wait
// on dequeue.
type queued struct {
	ev Event
	at time.Time
}

// liveSession is one in-flight session plus the enqueue time of the
// event that opened it, so completion can observe end-to-end latency.
// root is the gesture's root span (nil when uninstrumented); capture is
// its flight-recorder capture (nil when no recorder is attached).
type liveSession struct {
	sess    *multipath.Session
	start   time.Time
	root    *obs.Span
	capture *flight.Capture
}

// shard is one worker goroutine's world: its queue and the sessions it
// exclusively owns. Only that goroutine touches `sessions`.
type shard struct {
	ch       chan queued
	sessions map[string]*liveSession
}

// New builds and starts an engine serving the given recognizer.
func New(rec *eager.Recognizer, opts Options) (*Engine, error) {
	if rec == nil {
		return nil, errors.New("serve: nil recognizer")
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("serve: Shards must be >= 0, got %d", opts.Shards)
	}
	if opts.QueueDepth < 0 {
		return nil, fmt.Errorf("serve: QueueDepth must be >= 0, got %d", opts.QueueDepth)
	}
	if opts.Shards == 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth == 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	e := &Engine{opts: opts, m: newEngineMetrics(opts.Obs)}
	e.stamp = opts.Obs != nil || opts.Flight != nil
	e.rec.Store(rec)
	for i := 0; i < opts.Shards; i++ {
		sh := &shard{
			ch:       make(chan queued, opts.QueueDepth),
			sessions: make(map[string]*liveSession),
		}
		e.shards = append(e.shards, sh)
		e.wg.Add(1)
		go e.run(sh)
	}
	return e, nil
}

// Recognizer returns the current recognizer snapshot.
func (e *Engine) Recognizer() *eager.Recognizer { return e.rec.Load() }

// Swap atomically publishes a new recognizer and returns the previous
// one — retraining without downtime. Sessions already in flight keep the
// snapshot they started with; sessions created after Swap use rec. A nil
// rec is refused (nil is returned and the current snapshot is kept), so
// a failed retrain can never blank the serving model.
func (e *Engine) Swap(rec *eager.Recognizer) *eager.Recognizer {
	if rec == nil {
		e.m.swapsRejected.Inc()
		e.m.trace.Emit("swap_rejected", "nil recognizer")
		return nil
	}
	e.m.swaps.Inc()
	e.m.trace.Emit("swap", "")
	return e.rec.Swap(rec)
}

// shardFor maps a session ID to its shard by FNV-1a hash.
func (e *Engine) shardFor(session string) *shard {
	h := fnv.New32a()
	h.Write([]byte(session))
	return e.shards[h.Sum32()%uint32(len(e.shards))]
}

// Submit routes one event to its session's shard. It never blocks: a full
// shard queue returns ErrQueueFull (the event is not enqueued), a closed
// engine returns ErrClosed. Events for one session are processed in
// submission order as long as the caller submits them from one goroutine.
func (e *Engine) Submit(ev Event) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	sh := e.shardFor(ev.Session)
	var at time.Time
	if e.stamp {
		at = time.Now()
	}
	select {
	case sh.ch <- queued{ev: ev, at: at}:
		e.submitted.Add(1)
		e.m.submitted.Inc()
		e.m.queueDepth.Observe(float64(len(sh.ch)))
		return nil
	default:
		e.rejected.Add(1)
		e.m.rejected.Inc()
		return ErrQueueFull
	}
}

// Close stops intake, drains every shard's queued events, force-finishes
// the sessions still in flight (each is classified on the stroke prefix
// collected so far and reported through OnResult), and waits for all
// workers to exit. When Options.FlightDump is set, the flight recorder's
// JSON dump is then written to it exactly once (the post-mortem
// artifact). Close is idempotent; concurrent Submits during Close get
// ErrClosed or are processed, never lost after being accepted.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return nil
	}
	e.closed = true
	for _, sh := range e.shards {
		close(sh.ch)
	}
	e.mu.Unlock()
	e.wg.Wait()
	if e.opts.FlightDump != nil {
		return e.opts.Flight.WriteJSON(e.opts.FlightDump)
	}
	return nil
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Submitted: e.submitted.Load(),
		Rejected:  e.rejected.Load(),
		Completed: e.completed.Load(),
		Active:    e.active.Load(),
	}
}

// run is one shard's worker loop: handle events until the queue closes,
// then drain the in-flight sessions deterministically (ID order).
func (e *Engine) run(sh *shard) {
	defer e.wg.Done()
	for q := range sh.ch {
		obs.ObserveSince(e.m.queueWaitNS, q.at)
		e.handle(sh, q)
	}
	ids := make([]string, 0, len(sh.sessions))
	for id := range sh.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ls := sh.sessions[id]
		class := ls.sess.Finish()
		e.finish(sh, id, ls, class, true)
	}
}

// handle applies one event to its session, creating the session on its
// first FingerDown (with the recognizer snapshot current at that moment)
// and retiring it when the interaction completes. When instrumented, the
// first event opens the gesture's root span (backdated to its enqueue
// time, so queue wait is inside the trace) and every event records
// "queue_wait" and "dispatch" children under it.
func (e *Engine) handle(sh *shard, q queued) {
	ev := q.ev
	ls, ok := sh.sessions[ev.Session]
	if !ok {
		if ev.Kind != multipath.FingerDown {
			return // stray move/up for an unknown or already-retired session
		}
		ls = &liveSession{sess: multipath.NewSession(e.rec.Load()), start: q.at}
		ls.root = e.m.spans.StartAt("gesture", q.at)
		ls.root.SetAttr("session", ev.Session)
		ls.sess.SetSpan(ls.root)
		if e.opts.Flight != nil {
			ls.capture = flight.NewCapture(ev.Session)
			ls.sess.SetTap(ls.capture)
		}
		sh.sessions[ev.Session] = ls
		e.active.Add(1)
		e.m.opened.Inc()
		e.m.trace.Emit("session_open", ev.Session)
	}
	qsp := ls.root.ChildAt("queue_wait", q.at)
	qsp.End()
	dsp := ls.root.Child("dispatch")
	ls.sess.Handle(multipath.Event{Finger: ev.Finger, Kind: ev.Kind, X: ev.X, Y: ev.Y, T: ev.T})
	dsp.End()
	if ls.sess.Completed() {
		e.finish(sh, ev.Session, ls, ls.sess.Class(), false)
	}
}

// finish retires one session from its shard: counters, end-to-end
// latency (enqueue of the opening event through completion), trace,
// root-span closure, flight-bundle offer, and the OnResult callback.
// drained marks sessions force-finished at Close.
func (e *Engine) finish(sh *shard, id string, ls *liveSession, class string, drained bool) {
	delete(sh.sessions, id)
	e.active.Add(-1)
	e.completed.Add(1)
	e.m.completed.Inc()
	obs.ObserveSince(e.m.sessionNS, ls.start)
	ls.root.SetAttr("class", class)
	if drained {
		ls.root.SetAttrInt("drained", 1)
	}
	ls.root.End()
	if ls.capture != nil {
		var latency time.Duration
		if !ls.start.IsZero() {
			latency = time.Since(ls.start)
		}
		e.opts.Flight.Offer(ls.capture.Bundle(class, drained, latency))
	}
	if drained {
		e.m.drained.Inc()
		e.m.trace.Emit("session_drained", id)
	} else {
		e.m.trace.Emit("session_done", id)
	}
	if e.opts.OnResult != nil {
		e.opts.OnResult(Result{Session: id, Class: class})
	}
}
