package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// fuzzSeeds returns hand-built frames covering the interesting decode
// shapes: empty batch, single definition, interleaved sessions,
// non-finite coordinates, negative deltas, and a max-length session ID.
// Fixed send stamps keep the seeds byte-deterministic; the committed
// corpus under testdata/fuzz/FuzzDecodeFrame carries the same frames
// (plus v1-header seeds for the version-rejection path) so `go test
// -fuzz` starts from them without regenerating.
func fuzzSeeds(t testing.TB) [][]byte {
	var stamp int64
	mk := func(events ...Event) []byte {
		stamp += 1_000_000_001 // distinct, deterministic stamps per seed
		f, err := NewEncoder().AppendFrameAt(nil, events, stamp)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	long := string(bytes.Repeat([]byte{'z'}, MaxSessionLen))
	return [][]byte{
		mk(), // empty batch
		mk(Event{Session: "a", Kind: KindDown, X: 1, Y: 2, TMicros: 3}),
		mk(
			Event{Session: "a", Kind: KindDown, X: 0.5, Y: -0.5, TMicros: 100},
			Event{Session: "b", Finger: 3, Kind: KindDown, X: 1e9, Y: -1e-9, TMicros: 50},
			Event{Session: "a", Kind: KindMove, X: math.NaN(), Y: math.Inf(-1), TMicros: 120},
			Event{Session: "b", Finger: 3, Kind: KindUp, X: 0, Y: 0, TMicros: 60},
			Event{Session: "a", Kind: KindUp, X: 2, Y: 2, TMicros: 140},
		),
		mk(Event{Session: long, Kind: KindMove, X: -0.0, Y: math.MaxFloat64, TMicros: -1_000_000}),
	}
}

// FuzzDecodeFrame pins the wire codec's safety and canonicality
// contracts against arbitrary bytes:
//
//  1. Decode never panics, whatever the input.
//  2. Any frame that decodes is canonical: a fresh Encoder re-encodes
//     the decoded events to the identical bytes, and the consumed
//     length matches EncodedFrameLen.
//  3. Any frame that does not decode fails with one of the typed
//     errors (ErrTruncated, ErrOversized, ErrVersion, ErrCorrupt).
func FuzzDecodeFrame(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
		// Mutated variants seed the error paths.
		if len(seed) > 4 {
			trunc := seed[:len(seed)-2]
			f.Add(append([]byte{}, trunc...))
			flip := append([]byte{}, seed...)
			flip[len(flip)-1] ^= 0x40
			f.Add(flip)
			// The same frame wearing a v1 header seeds the
			// version-rejection path.
			v1 := append([]byte{}, seed...)
			v1[2] = 1
			f.Add(v1)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1, Version, 0, 0, 0, 0, 0, 0, 0, 0, 0x01, 0, 0, 0, 0, 0xFF})
	f.Add([]byte{magic0, magic1, 1, 0x01, 0x8d, 0xef, 0x02, 0xd2, 0x00}) // a v1-era frame

	f.Fuzz(func(t *testing.T, b []byte) {
		dec := NewDecoder()
		events, n, err := dec.DecodeFrame(b, nil)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrOversized) &&
				!errors.Is(err, ErrVersion) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error is not typed: %v", err)
			}
			return
		}
		if n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		reenc, err := NewEncoder().AppendFrameAt(nil, events, dec.SentNS())
		if err != nil {
			t.Fatalf("re-encode of decoded events failed: %v", err)
		}
		if !bytes.Equal(reenc, b[:n]) {
			t.Fatalf("Encode(Decode(frame)) not bit-identical:\n got %x\nwant %x", reenc, b[:n])
		}
	})
}

// TestFuzzSeedsDecode keeps the committed corpus honest under plain
// `go test`: every seed decodes cleanly and round-trips.
func TestFuzzSeedsDecode(t *testing.T) {
	for i, seed := range fuzzSeeds(t) {
		dec := NewDecoder()
		events, n, err := dec.DecodeFrame(seed, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		if n != len(seed) {
			t.Fatalf("seed %d: consumed %d of %d", i, n, len(seed))
		}
		reenc, err := NewEncoder().AppendFrameAt(nil, events, dec.SentNS())
		if err != nil {
			t.Fatalf("seed %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(reenc, seed) {
			t.Fatalf("seed %d: round-trip not bit-identical", i)
		}
	}
}
