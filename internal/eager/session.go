package eager

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/features"
	"repro/internal/geom"
	"repro/internal/gesture"
	"repro/internal/linalg"
)

// Done implements the paper's D function on a complete gesture prefix:
// true iff the AUC classifies the prefix's feature vector into one of the
// complete sets, i.e. the prefix is judged unambiguous.
func (r *Recognizer) Done(g gesture.Gesture) bool {
	if g.Len() < r.Opts.MinSubgesture {
		return false
	}
	f := r.Full.Features(g)
	name, _ := r.AUC.Classify(f)
	return IsCompleteSet(name)
}

// Classify runs the full classifier on a gesture (used at the moment D
// fires, and as the fallback when the gesture ends without ever being
// judged unambiguous).
func (r *Recognizer) Classify(g gesture.Gesture) string {
	return r.Full.Classify(g)
}

// Session consumes one gesture's points as they arrive, implementing the
// paper's eager-recognition loop: "Each time a new mouse point arrives it
// is appended to the gesture being collected, and D is applied ... Once D
// returns true the collected gesture is passed to C-hat" — all with O(1)
// work per point (incremental features plus one AUC evaluation).
type Session struct {
	r       *Recognizer
	ext     *features.Extractor
	points  geom.Path
	decided bool
	class   string
	// Scratch buffers keep the per-point path allocation-free.
	featBuf linalg.Vec
	aucBuf  []float64
	fullBuf []float64
}

// NewSession starts a streaming recognition session.
func (r *Recognizer) NewSession() *Session {
	return &Session{
		r:       r,
		ext:     features.NewExtractor(r.Full.Opts),
		featBuf: make(linalg.Vec, r.Full.Opts.Dim()),
		aucBuf:  make([]float64, r.AUC.NumClasses()),
		fullBuf: make([]float64, r.Full.C.NumClasses()),
	}
}

// Add feeds one mouse point. It returns true the first time the gesture
// becomes unambiguous, along with the recognized class. After the session
// has decided, further Adds still accumulate points (harmless) but report
// decided=false so callers act on the transition exactly once.
func (s *Session) Add(p geom.TimedPoint) (fired bool, class string) {
	s.points = append(s.points, p)
	s.ext.Add(p)
	if s.decided || len(s.points) < s.r.Opts.MinSubgesture {
		return false, ""
	}
	f := s.ext.VectorInto(s.featBuf)
	name, _ := s.r.AUC.ClassifyInto(f, s.aucBuf)
	if !IsCompleteSet(name) {
		return false, ""
	}
	class, _ = s.r.Full.C.ClassifyInto(f, s.fullBuf)
	if s.r.Opts.RequireAgreement && class != strings.TrimPrefix(name, CompletePrefix) {
		// The AUC believes the prefix is unambiguous but the full
		// classifier has not caught up yet (typical right at a corner):
		// wait for them to agree.
		return false, ""
	}
	s.decided = true
	s.class = class
	return true, s.class
}

// Decided reports whether the session has already fired.
func (s *Session) Decided() bool { return s.decided }

// Class returns the recognized class, or "" before any decision.
func (s *Session) Class() string { return s.class }

// PointCount returns the number of points fed so far.
func (s *Session) PointCount() int { return len(s.points) }

// Gesture returns the points collected so far as a gesture.
func (s *Session) Gesture() gesture.Gesture { return gesture.New(s.points) }

// End finishes the session at mouse-up: if the gesture was never judged
// unambiguous, it is classified in full now. Returns the final class.
func (s *Session) End() string {
	if !s.decided {
		s.class = s.r.Classify(s.Gesture())
		s.decided = true
	}
	return s.class
}

// Run replays an entire gesture through a fresh session and reports the
// outcome: the recognized class and the number of points that had been
// seen when recognition fired (|g| when it only fired at the end). This is
// the measurement behind the paper's "percentage of mouse points examined"
// statistics in section 5.
func (r *Recognizer) Run(g gesture.Gesture) (class string, firedAt int) {
	s := r.NewSession()
	for i, p := range g.Points {
		if fired, c := s.Add(p); fired {
			return c, i + 1
		}
	}
	return s.End(), g.Len()
}

// WriteJSON serializes the recognizer.
func (r *Recognizer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("eager: encode: %w", err)
	}
	return nil
}

// ReadJSON deserializes a recognizer.
func ReadJSON(rd io.Reader) (*Recognizer, error) {
	var r Recognizer
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("eager: decode: %w", err)
	}
	if r.Full == nil || r.AUC == nil {
		return nil, fmt.Errorf("eager: incomplete recognizer JSON")
	}
	if r.Opts.MinSubgesture < 2 {
		r.Opts.MinSubgesture = DefaultOptions().MinSubgesture
	}
	return &r, nil
}

// SaveFile writes the recognizer to the named file.
func (r *Recognizer) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("eager: %w", err)
	}
	defer f.Close()
	if err := r.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a recognizer from the named file.
func LoadFile(path string) (*Recognizer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("eager: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}
