package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/multipath"
	"repro/internal/obs"
)

// wedgedEngine builds a depth-1, single-shard engine whose only queue
// slot is already taken and whose consumer is blocked in OnResult, so
// every further Submit returns ErrQueueFull until release is closed.
func wedgedEngine(t *testing.T, reg *obs.Registry) (e *Engine, release chan struct{}) {
	t.Helper()
	rec := trainRec(t, 7)
	release = make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	e, err := New(rec, Options{
		Shards:     1,
		QueueDepth: 1,
		Obs:        reg,
		OnResult: func(Result) {
			once.Do(func() { close(entered) })
			<-release
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A complete tiny session wedges the shard inside OnResult, and one
	// more event then fills the single queue slot. The depth-1 queue can
	// bounce these while the shard catches up, so spin on backpressure.
	for _, ev := range []Event{
		{Session: "wedge", Kind: multipath.FingerDown, X: 1, Y: 1, T: 0},
		{Session: "wedge", Kind: multipath.FingerUp, X: 1, Y: 1, T: 0.01},
	} {
		for {
			err := e.Submit(ev)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("wedge submit: %v", err)
			}
		}
	}
	<-entered
	for {
		err := e.Submit(Event{Session: "filler", Kind: multipath.FingerDown, X: 1, Y: 1, T: 0})
		if err == nil {
			break
		}
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("filler submit: %v", err)
		}
	}
	return e, release
}

// TestSubmitterShedsAfterBudget: against a wedged engine, a bounded
// Submitter retries exactly MaxAttempts-1 times, then sheds with an
// error matching both ErrShed and ErrQueueFull.
func TestSubmitterShedsAfterBudget(t *testing.T) {
	reg := obs.New()
	e, release := wedgedEngine(t, reg)
	defer func() {
		close(release)
		if err := e.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	s := NewSubmitter(e, SubmitterOptions{MaxAttempts: 3, Obs: reg})
	err := s.Submit(Event{Session: "shed-me", Kind: multipath.FingerDown, X: 1, Y: 1, T: 0})
	if !errors.Is(err, ErrShed) {
		t.Fatalf("Submit = %v, want ErrShed", err)
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("shed error %v should also match ErrQueueFull", err)
	}
	snap := reg.Snapshot()
	if got := snapCounter(t, snap, "serve.submitter.retries"); got != 2 {
		t.Errorf("serve.submitter.retries = %d, want 2 (3 attempts)", got)
	}
	if got := snapCounter(t, snap, "serve.submitter.shed"); got != 1 {
		t.Errorf("serve.submitter.shed = %d, want 1", got)
	}
}

// TestSubmitterBackoffDoublesAndCaps: the sleep sequence is Backoff,
// 2×, 4×, ... capped at MaxBackoff, observed through the sleep seam.
func TestSubmitterBackoffDoublesAndCaps(t *testing.T) {
	e, release := wedgedEngine(t, nil)
	defer func() {
		close(release)
		if err := e.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	var slept []time.Duration
	s := NewSubmitter(e, SubmitterOptions{
		MaxAttempts: 6,
		Backoff:     time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
	})
	s.opts.sleep = func(d time.Duration) { slept = append(slept, d) }
	err := s.Submit(Event{Session: "backoff", Kind: multipath.FingerDown, X: 1, Y: 1, T: 0})
	if !errors.Is(err, ErrShed) {
		t.Fatalf("Submit = %v, want ErrShed", err)
	}
	want := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		4 * time.Millisecond, 4 * time.Millisecond,
	}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (full sequence %v)", i, slept[i], want[i], slept)
		}
	}
}

// TestSubmitterUnlimitedRetrySucceeds: MaxAttempts 0 keeps retrying
// until the queue drains, then delivers.
func TestSubmitterUnlimitedRetrySucceeds(t *testing.T) {
	e, release := wedgedEngine(t, nil)
	defer func() {
		if err := e.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	s := NewSubmitter(e, SubmitterOptions{})
	done := make(chan error, 1)
	go func() {
		done <- s.Submit(Event{Session: "patient", Kind: multipath.FingerDown, X: 1, Y: 1, T: 0})
	}()
	// Let it spin against the full queue briefly, then unwedge.
	time.Sleep(5 * time.Millisecond)
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("unlimited-retry Submit = %v, want nil", err)
	}
}

// TestSubmitterPassesThroughTerminalErrors: ErrBadEvent and ErrClosed
// are not retried — they return immediately and unwrapped.
func TestSubmitterPassesThroughTerminalErrors(t *testing.T) {
	rec := trainRec(t, 7)
	e, err := New(rec, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	s := NewSubmitter(e, SubmitterOptions{MaxAttempts: 5, Obs: reg})

	if err := s.Submit(Event{Session: "", Kind: multipath.FingerDown}); !errors.Is(err, ErrBadEvent) {
		t.Fatalf("bad event through Submitter = %v, want ErrBadEvent", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(Event{Session: "x", Kind: multipath.FingerDown}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed engine through Submitter = %v, want ErrClosed", err)
	}
	snap := reg.Snapshot()
	if got := snapCounter(t, snap, "serve.submitter.retries"); got != 0 {
		t.Errorf("terminal errors must not count retries, got %d", got)
	}
	if got := snapCounter(t, snap, "serve.submitter.shed"); got != 0 {
		t.Errorf("terminal errors must not count shed, got %d", got)
	}
}
