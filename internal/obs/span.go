package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// AttrKind discriminates the value slot an Attr uses. Stored as a string
// so snapshot JSON stays self-describing.
type AttrKind string

// Attribute kinds.
const (
	// AttrString marks an Attr whose value is in Str.
	AttrString AttrKind = "string"
	// AttrInt marks an Attr whose value is in Int.
	AttrInt AttrKind = "int"
	// AttrFloat marks an Attr whose value is in Float.
	AttrFloat AttrKind = "float"
)

// Attr is one typed span attribute: a key plus exactly one value slot,
// selected by Kind. Attributes are immutable once the owning span ends.
type Attr struct {
	Key   string   `json:"key"`
	Kind  AttrKind `json:"kind"`
	Str   string   `json:"str,omitempty"`
	Int   int64    `json:"int,omitempty"`
	Float float64  `json:"float,omitempty"`
}

// SpanRecord is one completed span as retained by a SpanBuffer and
// exported in snapshots: identity (ID), causality (Parent links to the
// enclosing span's ID, 0 at a root; Root identifies the whole trace —
// every span in one gesture shares its root span's ID), wall-clock
// bounds in unix nanoseconds, and the typed attributes set before End.
type SpanRecord struct {
	Seq    uint64 `json:"seq"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Root   uint64 `json:"root"`
	Name   string `json:"name"`
	Start  int64  `json:"start"`
	End    int64  `json:"end"`
	Attrs  []Attr `json:"attrs,omitempty"`
}

// Span is one in-flight span. Create roots with SpanBuffer.Start and
// children with Span.Child; finish with End, which publishes an
// immutable SpanRecord into the owning buffer.
//
// Concurrency contract: a Span is owned by one goroutine at a time, like
// an eager.Session — SetAttr*, Child, Event, and End must not be called
// concurrently on the same span. Distinct spans (including a parent and
// a child handed to another goroutine before any further mutation) are
// independent; publication into the buffer is lock-free. Every method is
// a no-op (Child returns nil) on a nil receiver, so disabled tracing
// costs only the nil check per call site — the same <5 ns contract as
// the other instruments, enforced by BenchmarkObsDisabledSpan*.
type Span struct {
	b      *SpanBuffer
	id     uint64
	parent uint64
	root   uint64
	name   string
	start  int64
	attrs  []Attr
	ended  bool
}

// SpanBuffer is a lock-free bounded buffer of completed spans: the last
// Cap records, oldest overwritten first, published through atomic
// pointers exactly like Ring. Starting a span costs one atomic ID
// allocation plus a clock read; ending it allocates the record and
// stores it in one slot. All methods are safe for concurrent use and
// no-ops on a nil receiver.
type SpanBuffer struct {
	slots []atomic.Pointer[SpanRecord]
	next  atomic.Uint64 // ring sequence: one per recorded span
	ids   atomic.Uint64 // span ID allocator; IDs start at 1 (0 = "no parent")
}

// defaultSpanCap is the buffer capacity used when a span buffer is
// registered with a non-positive capacity.
const defaultSpanCap = 8192

func newSpanBuffer(capacity int) *SpanBuffer {
	if capacity <= 0 {
		capacity = defaultSpanCap
	}
	return &SpanBuffer{slots: make([]atomic.Pointer[SpanRecord], capacity)}
}

// Start begins a new root span now. Returns nil (the disabled span) on a
// nil buffer, without reading the clock.
func (b *SpanBuffer) Start(name string) *Span {
	if b == nil {
		return nil
	}
	return b.StartAt(name, time.Now())
}

// StartAt begins a new root span with an explicit start time — used when
// the causally-correct start predates the call, e.g. a gesture span that
// starts at the enqueue of its opening event. A zero at means now.
// Returns nil on a nil buffer.
func (b *SpanBuffer) StartAt(name string, at time.Time) *Span {
	if b == nil {
		return nil
	}
	if at.IsZero() {
		at = time.Now()
	}
	id := b.ids.Add(1)
	return &Span{b: b, id: id, root: id, name: name, start: at.UnixNano()}
}

// Cap returns the buffer's capacity; 0 on a nil receiver.
func (b *SpanBuffer) Cap() int {
	if b == nil {
		return 0
	}
	return len(b.slots)
}

// Recorded returns the total number of spans ever recorded (including
// ones since overwritten); 0 on a nil receiver.
func (b *SpanBuffer) Recorded() uint64 {
	if b == nil {
		return 0
	}
	return b.next.Load()
}

// Records returns the retained span records oldest-first (by recording
// sequence). Best-effort under concurrent recording, like Ring.Events:
// a record being overwritten appears as old or new, never torn. Returns
// nil on a nil receiver.
func (b *SpanBuffer) Records() []SpanRecord {
	if b == nil {
		return nil
	}
	out := make([]SpanRecord, 0, len(b.slots))
	for i := range b.slots {
		if r := b.slots[i].Load(); r != nil {
			out = append(out, *r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// record publishes one completed record into the ring.
func (b *SpanBuffer) record(r *SpanRecord) {
	seq := b.next.Add(1) - 1
	r.Seq = seq
	b.slots[seq%uint64(len(b.slots))].Store(r)
}

// ID returns the span's identifier (0 on a nil receiver). Child spans
// carry it as their Parent.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Child begins a sub-span of s starting now. Returns nil — the disabled
// span — on a nil receiver, without reading the clock.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.ChildAt(name, time.Now())
}

// ChildAt begins a sub-span with an explicit start time (zero means
// now) — used to backdate intervals measured before the span could be
// created, e.g. queue wait recorded at dequeue. Returns nil on a nil
// receiver.
func (s *Span) ChildAt(name string, at time.Time) *Span {
	if s == nil {
		return nil
	}
	if at.IsZero() {
		at = time.Now()
	}
	return &Span{b: s.b, id: s.b.ids.Add(1), parent: s.id, root: s.root, name: name, start: at.UnixNano()}
}

// Event records an instantaneous (zero-duration) child span — commit,
// reset, poisoned and similar point-in-time occurrences. The detail, when
// non-empty, is attached as a "detail" string attribute. No-op on a nil
// receiver.
func (s *Span) Event(name, detail string) {
	if s == nil {
		return
	}
	now := time.Now().UnixNano()
	r := &SpanRecord{ID: s.b.ids.Add(1), Parent: s.id, Root: s.root, Name: name, Start: now, End: now}
	if detail != "" {
		r.Attrs = []Attr{{Key: "detail", Kind: AttrString, Str: detail}}
	}
	s.b.record(r)
}

// SetAttr attaches a string attribute. No-op on a nil receiver.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrString, Str: value})
}

// SetAttrInt attaches an integer attribute. No-op on a nil receiver.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrInt, Int: v})
}

// SetAttrFloat attaches a float attribute. No-op on a nil receiver.
func (s *Span) SetAttrFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrFloat, Float: v})
}

// End finishes the span now and publishes its record. Idempotent: a
// second End is ignored. No-op on a nil receiver.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(time.Now())
}

// EndAt finishes the span at an explicit time (zero means now) and
// publishes its record. Idempotent; no-op on a nil receiver.
func (s *Span) EndAt(at time.Time) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	if at.IsZero() {
		at = time.Now()
	}
	s.b.record(&SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Root:   s.root,
		Name:   s.name,
		Start:  s.start,
		End:    at.UnixNano(),
		Attrs:  s.attrs,
	})
}

// SpanSnap is the point-in-time state of one span buffer inside a
// Snapshot: capacity, total spans ever recorded, and the retained
// records in recording order.
type SpanSnap struct {
	Name     string       `json:"name"`
	Cap      int          `json:"cap"`
	Recorded uint64       `json:"recorded"`
	Spans    []SpanRecord `json:"spans"`
}

func (b *SpanBuffer) snapshot(name string) SpanSnap {
	return SpanSnap{Name: name, Cap: b.Cap(), Recorded: b.Recorded(), Spans: b.Records()}
}
