package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Clock is the time source windowed instruments rotate on. It matches
// serve.Clock (fault.ManualClock implements both), so the serving
// engine's virtual clock can drive window rotation deterministically in
// tests: serve.New forwards its Options.Clock to the registry via
// SetClock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

// Window sizing defaults, used when a windowed instrument is registered
// with non-positive slot duration or slot count.
const (
	// DefaultWindowSlot is the default slot (bucket) duration of a
	// windowed instrument: 10 s of resolution.
	DefaultWindowSlot = 10 * time.Second
	// DefaultWindowSlots is the default slot count: 180 slots of
	// DefaultWindowSlot give a 30-minute ring. SLO windows longer than
	// the ring evaluate over what the ring covers (see internal/slo).
	DefaultWindowSlots = 180
)

// clockBox boxes a Clock so clockSource can publish it through an
// atomic.Pointer (an interface value is two words and cannot be stored
// atomically). A nil box means the wall clock.
type clockBox struct{ c Clock }

// clockSource is the registry's swappable time source, shared by
// reference with every windowed instrument it registers. The atomic
// pointer stays encapsulated here so SetClock is safe against concurrent
// observations.
type clockSource struct{ p atomic.Pointer[clockBox] }

// now reads the clock: the wall clock until set installs another.
func (cs *clockSource) now() time.Time {
	if b := cs.p.Load(); b != nil {
		return b.c.Now()
	}
	return time.Now()
}

// set installs c as the time source; nil restores the wall clock.
func (cs *clockSource) set(c Clock) {
	if c == nil {
		cs.p.Store(nil)
		return
	}
	cs.p.Store(&clockBox{c: c})
}

// WindowedCounter is a rate-of-change counter: a lock-free ring of
// fixed-duration slots, each counting the events observed during its
// time slice. Where Counter answers "how many since process start",
// WindowedCounter answers "how many in the last N seconds" — the signal
// SLO burn rates and the gtop dashboard are built on.
//
// Slot rotation is driven lazily by the observing goroutines (no
// background ticker): each Add computes the current epoch from the
// registry clock and CAS-claims the slot if it is stale. An observation
// racing a rotation boundary may land in the outgoing slot or be lost;
// the error is bounded by one rotation per slot and the totals-since-
// start live in the cumulative sibling instrument, not here.
//
// All methods are safe for concurrent use and no-ops on a nil receiver
// (the same <5 ns disabled-path contract as Counter, enforced by
// BenchmarkObsDisabledWindowedCounterAdd).
type WindowedCounter struct {
	slotNS int64
	slots  []winSlot
	clk    *clockSource
}

// winSlot is one counter slot: the epoch it currently represents and its
// count. Both atomic, so rotation and observation need no lock.
type winSlot struct {
	epoch atomic.Int64
	count atomic.Int64
}

func newWindowedCounter(slot time.Duration, n int, clk *clockSource) *WindowedCounter {
	slot, n = windowDefaults(slot, n)
	return &WindowedCounter{slotNS: int64(slot), slots: make([]winSlot, n), clk: clk}
}

// windowDefaults applies the Default* fallbacks for non-positive sizing.
func windowDefaults(slot time.Duration, n int) (time.Duration, int) {
	if slot <= 0 {
		slot = DefaultWindowSlot
	}
	if n <= 0 {
		n = DefaultWindowSlots
	}
	return slot, n
}

// slotIndex maps an epoch onto the ring (non-negative even for negative
// epochs, which only a virtual clock before 1970 could produce).
func slotIndex(epoch int64, n int) int {
	i := int(epoch % int64(n))
	if i < 0 {
		i += n
	}
	return i
}

// rotate claims the slot for epoch if it is stale, zeroing it. The CAS
// winner zeroes; a loser re-reads and proceeds. Returns true once the
// slot's epoch matches.
func (s *winSlot) rotate(epoch int64) {
	for {
		old := s.epoch.Load()
		if old == epoch {
			return
		}
		if s.epoch.CompareAndSwap(old, epoch) {
			s.count.Store(0)
			return
		}
	}
}

// Add counts n events into the current slot. No-op on a nil receiver.
func (w *WindowedCounter) Add(n int64) {
	if w == nil {
		return
	}
	epoch := w.clk.now().UnixNano() / w.slotNS
	s := &w.slots[slotIndex(epoch, len(w.slots))]
	s.rotate(epoch)
	s.count.Add(n)
}

// Inc counts one event into the current slot. No-op on a nil receiver.
func (w *WindowedCounter) Inc() { w.Add(1) }

// snapshot captures the live slots (those within the ring's span of the
// current epoch), oldest first.
func (w *WindowedCounter) snapshot(name string) WindowSnap {
	epoch := w.clk.now().UnixNano() / w.slotNS
	ws := WindowSnap{
		Name:   name,
		SlotNS: w.slotNS,
		Slots:  len(w.slots),
		Epoch:  epoch,
	}
	for i := range w.slots {
		s := &w.slots[i]
		e := s.epoch.Load()
		if e <= epoch-int64(len(w.slots)) || e > epoch {
			continue // stale (never rotated since falling out of the span)
		}
		if c := s.count.Load(); c != 0 || e == epoch {
			ws.Live = append(ws.Live, WindowSlotSnap{Epoch: e, Count: c})
		}
	}
	sort.Slice(ws.Live, func(i, j int) bool { return ws.Live[i].Epoch < ws.Live[j].Epoch })
	return ws
}

// WindowedHistogram is the distribution sibling of WindowedCounter: a
// ring of fixed-duration slots, each a full fixed-bucket histogram with
// its own count/sum/min/max. Merging the trailing K live slots yields
// the last-K×slot distribution — live p99 over the last minute instead
// of since process start. Bucket boundaries are fixed at registration,
// exactly like Histogram.
//
// The rotation contract, concurrency contract, and nil-safety are those
// of WindowedCounter; the enabled path performs no allocation
// (TestWindowedEnabledPathZeroAlloc) so hot paths can observe into a
// windowed histogram under the same rules as a cumulative one.
type WindowedHistogram struct {
	bounds []float64
	slotNS int64
	slots  []winHistSlot
	clk    *clockSource
}

// winHistSlot is one histogram slot. All fields atomic; counts has
// len(bounds)+1 entries (the last is the overflow bucket).
type winHistSlot struct {
	epoch  atomic.Int64
	count  atomic.Int64
	sum    atomicFloat64
	min    atomicFloat64 // +Inf until the slot's first observation
	max    atomicFloat64 // -Inf until the slot's first observation
	counts []atomic.Int64
}

func newWindowedHistogram(bounds []float64, slot time.Duration, n int, clk *clockSource) *WindowedHistogram {
	slot, n = windowDefaults(slot, n)
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	w := &WindowedHistogram{bounds: b, slotNS: int64(slot), slots: make([]winHistSlot, n), clk: clk}
	for i := range w.slots {
		s := &w.slots[i]
		s.counts = make([]atomic.Int64, len(b)+1)
		s.min.store(math.Inf(1))
		s.max.store(math.Inf(-1))
	}
	return w
}

// rotate claims the slot for epoch if it is stale, zeroing its counts
// and resetting the extremes. Same CAS discipline as winSlot.rotate.
func (s *winHistSlot) rotate(epoch int64) {
	for {
		old := s.epoch.Load()
		if old == epoch {
			return
		}
		if s.epoch.CompareAndSwap(old, epoch) {
			for i := range s.counts {
				s.counts[i].Store(0)
			}
			s.count.Store(0)
			s.sum.store(0)
			s.min.store(math.Inf(1))
			s.max.store(math.Inf(-1))
			return
		}
	}
}

// Observe records one value into the current slot. NaN observations are
// ignored. No-op on a nil receiver.
func (w *WindowedHistogram) Observe(v float64) {
	if w == nil || math.IsNaN(v) {
		return
	}
	epoch := w.clk.now().UnixNano() / w.slotNS
	s := &w.slots[slotIndex(epoch, len(w.slots))]
	s.rotate(epoch)
	i := sort.SearchFloat64s(w.bounds, v)
	s.counts[i].Add(1)
	s.count.Add(1)
	s.sum.add(v)
	s.min.updateMin(v)
	s.max.updateMax(v)
}

// snapshot captures the live slots, oldest first.
func (w *WindowedHistogram) snapshot(name string) WindowSnap {
	epoch := w.clk.now().UnixNano() / w.slotNS
	ws := WindowSnap{
		Name:   name,
		SlotNS: w.slotNS,
		Slots:  len(w.slots),
		Epoch:  epoch,
		Bounds: append([]float64(nil), w.bounds...),
	}
	for i := range w.slots {
		s := &w.slots[i]
		e := s.epoch.Load()
		if e <= epoch-int64(len(w.slots)) || e > epoch {
			continue
		}
		c := s.count.Load()
		if c == 0 && e != epoch {
			continue
		}
		sl := WindowSlotSnap{Epoch: e, Count: c, Sum: s.sum.load(), Counts: make([]int64, len(s.counts))}
		for j := range s.counts {
			sl.Counts[j] = s.counts[j].Load()
		}
		if c > 0 {
			sl.Min = s.min.load()
			sl.Max = s.max.load()
		}
		ws.Live = append(ws.Live, sl)
	}
	sort.Slice(ws.Live, func(i, j int) bool { return ws.Live[i].Epoch < ws.Live[j].Epoch })
	return ws
}

// WindowSlotSnap is one live slot inside a WindowSnap: the epoch it
// covers (slot start = Epoch × SlotNS in unix nanoseconds) and what was
// observed during it. Counter windows carry Count only; histogram
// windows also carry Sum, per-bucket Counts, and the slot extremes.
type WindowSlotSnap struct {
	Epoch  int64   `json:"epoch"`
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum,omitempty"`
	Min    float64 `json:"min,omitempty"`
	Max    float64 `json:"max,omitempty"`
	Counts []int64 `json:"counts,omitempty"`
}

// WindowSnap is the point-in-time state of one windowed instrument
// inside a Snapshot: the ring geometry, the epoch current at snapshot
// time, and the live slots (oldest first; empty non-current slots are
// elided, so an idle instrument snapshots small). Bounds is nil for
// counter windows.
type WindowSnap struct {
	Name   string           `json:"name"`
	SlotNS int64            `json:"slot_ns"`
	Slots  int              `json:"slots"`
	Epoch  int64            `json:"epoch"`
	Bounds []float64        `json:"bounds,omitempty"`
	Live   []WindowSlotSnap `json:"live"`
}

// covering returns how many trailing slots a window of duration d spans,
// capped at the ring size. Non-positive d means one slot.
func (w WindowSnap) covering(d time.Duration) int64 {
	if w.SlotNS <= 0 {
		return 1
	}
	k := (int64(d) + w.SlotNS - 1) / w.SlotNS
	if k < 1 {
		k = 1
	}
	if k > int64(w.Slots) {
		k = int64(w.Slots)
	}
	return k
}

// Covered reports the slot-granular duration a trailing window of d
// actually evaluates over: ceil(d/slot)×slot, capped at the ring span.
// SLO windows longer than the ring are conservatively evaluated over
// the whole ring — Covered is how callers surface that truncation.
func (w WindowSnap) Covered(d time.Duration) time.Duration {
	return time.Duration(w.covering(d) * w.SlotNS)
}

// Total sums the counts of the live slots within the trailing window d.
func (w WindowSnap) Total(d time.Duration) int64 {
	k := w.covering(d)
	var total int64
	for _, s := range w.Live {
		if s.Epoch > w.Epoch-k {
			total += s.Count
		}
	}
	return total
}

// Rate returns events per second over the trailing window d: Total
// divided by the slot-granular covered duration. 0 when nothing is
// covered.
func (w WindowSnap) Rate(d time.Duration) float64 {
	cov := w.Covered(d).Seconds()
	if cov <= 0 {
		return 0
	}
	return float64(w.Total(d)) / cov
}

// Merge aggregates the live slots of the trailing window d into one
// HistogramSnap (bucket counts summed elementwise, extremes combined),
// ready for Quantile/Mean. Only meaningful for histogram windows; a
// counter window merges to a bucketless snap carrying Count and Sum.
func (w WindowSnap) Merge(d time.Duration) HistogramSnap {
	k := w.covering(d)
	m := HistogramSnap{
		Name:   w.Name,
		Bounds: append([]float64(nil), w.Bounds...),
		Counts: make([]int64, len(w.Bounds)+1),
		Min:    math.Inf(1),
		Max:    math.Inf(-1),
	}
	for _, s := range w.Live {
		if s.Epoch <= w.Epoch-k {
			continue
		}
		m.Count += s.Count
		m.Sum += s.Sum
		for j, c := range s.Counts {
			if j < len(m.Counts) {
				m.Counts[j] += c
			}
		}
		if s.Count > 0 {
			if s.Min < m.Min {
				m.Min = s.Min
			}
			if s.Max > m.Max {
				m.Max = s.Max
			}
		}
	}
	if m.Count == 0 {
		m.Min, m.Max = 0, 0
	}
	return m
}
