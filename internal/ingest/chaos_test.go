package ingest

import (
	"bufio"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/netfault"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/synth"
	"repro/internal/wire"
)

// TestIngestIdleTimeout is the slow-loris regression test: a silent
// connection is torn down by the idle watchdog on a virtual-clock
// timeline — FatalTimeout response, then close — while an active
// connection on the same server is untouched. Before the watchdog
// existed, the silent client pinned its serving goroutine forever.
func TestIngestIdleTimeout(t *testing.T) {
	reg := obs.New()
	clk := fault.NewManualClock(time.Unix(1_700_000_000, 0))
	_, s := startServer(t, reg, serve.Options{Shards: 1}, Options{
		IdleTimeout:   time.Second,
		SweepInterval: -1, // no background sweeper: the test drives SweepIdle
		Clock:         clk,
	})
	active := dialServer(t, s)
	if resp := active.send(wire.Event{Session: "live", Kind: wire.KindDown, X: 1, Y: 1, TMicros: 1}); resp.Fatal {
		t.Fatalf("active conn response = %+v", resp)
	}
	idle := dialServer(t, s)
	if resp := idle.send(wire.Event{Session: "idle", Kind: wire.KindDown, X: 1, Y: 1, TMicros: 1}); resp.Fatal {
		t.Fatalf("idle conn response = %+v", resp)
	}

	// Not idle long enough: nothing happens.
	clk.Advance(500 * time.Millisecond)
	if n := s.SweepIdle(); n != 0 {
		t.Fatalf("SweepIdle before the deadline closed %d conns, want 0", n)
	}

	// Cross the deadline, but keep one connection active.
	clk.Advance(600 * time.Millisecond)
	if resp := active.send(wire.Event{Session: "live", Kind: wire.KindMove, X: 2, Y: 2, TMicros: 2000}); resp.Fatal {
		t.Fatalf("active conn response = %+v", resp)
	}
	if n := s.SweepIdle(); n != 1 {
		t.Fatalf("SweepIdle closed %d conns, want 1", n)
	}
	// A second sweep must not double-close or double-count.
	if n := s.SweepIdle(); n != 0 {
		t.Fatalf("second SweepIdle closed %d conns, want 0", n)
	}

	// The silent client sees the typed fatal, then EOF.
	idle.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := wire.ReadResponse(idle.br, nil)
	if err != nil {
		t.Fatalf("idle conn read: %v", err)
	}
	if !resp.Fatal || resp.Code != wire.FatalTimeout {
		t.Fatalf("idle conn response = %+v, want fatal timeout", resp)
	}
	if _, err := idle.br.ReadByte(); err == nil {
		t.Fatal("idle connection still open after FatalTimeout")
	}

	// The active connection is untouched.
	if resp := active.send(wire.Event{Session: "live", Kind: wire.KindMove, X: 3, Y: 3, TMicros: 3000}); resp.Fatal {
		t.Fatalf("active conn after sweep = %+v", resp)
	}

	// The teardown is accounted as an idle close, not a frame error.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := reg.Snapshot()
		if snapCounter(t, snap, "wire.connections.closed") == 1 {
			if got := snapCounter(t, snap, "wire.connections.idle_closed"); got != 1 {
				t.Fatalf("wire.connections.idle_closed = %d, want 1", got)
			}
			if got := snapCounter(t, snap, "wire.frames.rejected"); got != 0 {
				t.Fatalf("wire.frames.rejected = %d, want 0 — watchdog teardown is not a peer frame error", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle connection's goroutine never exited")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestIngestMaxConns: accepts over the cap draw FatalOverloaded and are
// counted rejected, never served; capacity freed by a disconnect is
// reusable.
func TestIngestMaxConns(t *testing.T) {
	reg := obs.New()
	_, s := startServer(t, reg, serve.Options{Shards: 1}, Options{MaxConns: 1})
	tc := dialServer(t, s)
	if resp := tc.send(wire.Event{Session: "one", Kind: wire.KindDown, X: 1, Y: 1, TMicros: 1}); resp.Fatal {
		t.Fatalf("first conn response = %+v", resp)
	}

	over, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	over.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := wire.ReadResponse(bufio.NewReader(over), nil)
	if err != nil {
		t.Fatalf("over-cap conn read: %v", err)
	}
	if !resp.Fatal || resp.Code != wire.FatalOverloaded {
		t.Fatalf("over-cap response = %+v, want fatal overloaded", resp)
	}
	snap := reg.Snapshot()
	if got := snapCounter(t, snap, "wire.connections.rejected"); got != 1 {
		t.Fatalf("wire.connections.rejected = %d, want 1", got)
	}
	if got := snapCounter(t, snap, "wire.connections.opened"); got != 1 {
		t.Fatalf("wire.connections.opened = %d, want 1 — rejected conns must not count opened", got)
	}

	// Freeing the slot lets a new connection in.
	tc.c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		enc := wire.NewEncoder()
		frame, err := enc.AppendFrame(nil, []wire.Event{{Session: "two", Kind: wire.KindDown, X: 1, Y: 1, TMicros: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(frame); err != nil {
			t.Fatal(err)
		}
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		r, err := wire.ReadResponse(bufio.NewReader(c), nil)
		c.Close()
		if err == nil && !r.Fatal {
			break // served: the slot was reclaimed
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: last response %+v err %v", r, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestIngressSkewClamp pins the wire v2 stamp edge cases end to end
// over a socket: a client clock running ahead, an unstamped frame, and
// a stamp older than process start must never produce a negative or
// absurd wire.e2e.ingress_ns / wire.e2e_ns observation.
func TestIngressSkewClamp(t *testing.T) {
	reg := obs.New()
	snk := &sink{}
	_, s := startServer(t, reg, serve.Options{Shards: 1, OnResult: snk.add, Obs: reg}, Options{})
	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	enc := wire.NewEncoder()
	br := bufio.NewReader(c)

	send := func(stamp int64, events ...wire.Event) {
		t.Helper()
		frame, err := enc.AppendFrameAt(nil, events, stamp)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(frame); err != nil {
			t.Fatal(err)
		}
		resp, err := wire.ReadResponse(br, nil)
		if err != nil || resp.Fatal || len(resp.Nacks) != 0 {
			t.Fatalf("response = %+v err %v, want clean ACK", resp, err)
		}
	}

	// Client clock an hour ahead; then a stamp far older than process
	// start; then unstamped; then the FingerUp (ahead again) so the
	// session completes and the engine-side wire.e2e_ns observes too.
	ahead := time.Now().Add(time.Hour).UnixNano()
	send(ahead, wire.Event{Session: "skew", Kind: wire.KindDown, X: 1, Y: 1, TMicros: 1000})
	send(1, wire.Event{Session: "skew", Kind: wire.KindMove, X: 2, Y: 2, TMicros: 2000})
	send(0, wire.Event{Session: "skew", Kind: wire.KindMove, X: 3, Y: 3, TMicros: 3000})
	send(ahead, wire.Event{Session: "skew", Kind: wire.KindUp, X: 3, Y: 3, TMicros: 4000})

	deadline := time.Now().Add(5 * time.Second)
	for snk.len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no result within deadline")
		}
		time.Sleep(time.Millisecond)
	}

	snap := reg.Snapshot()
	check := func(name string, wantCount int64, exact bool) {
		t.Helper()
		for _, h := range snap.Histograms {
			if h.Name != name {
				continue
			}
			if exact && h.Count != wantCount {
				t.Errorf("%s count = %d, want %d", name, h.Count, wantCount)
			}
			if !exact && h.Count < wantCount {
				t.Errorf("%s count = %d, want >= %d", name, h.Count, wantCount)
			}
			if h.Count > 0 && h.Min < 0 {
				t.Errorf("%s min = %v, want >= 0 — e2e latency must never be negative", name, h.Min)
			}
			// Both skew directions clamp into [0, process uptime]; a
			// test run is far under a minute.
			if h.Max > float64(time.Minute) {
				t.Errorf("%s max = %v ns — skew clamp failed", name, h.Max)
			}
			return
		}
		t.Errorf("histogram %s not in snapshot", name)
	}
	// Ingress: 3 stamped frames observed, the unstamped one skipped.
	check("wire.e2e.ingress_ns", 3, true)
	// Engine e2e: every stamped event observes at dispatch (3 of 4).
	check("wire.e2e_ns", 3, true)
}

// TestChaosScriptedCorruptIsFatal pins the strongest corruption
// invariant deterministically: a scripted single-bit flip in a frame's
// writer-side bytes (outside the CRC-exempt stamp window) surfaces as a
// typed fatal decode response — never a mis-decode, never a crash — and
// the connection tears down.
func TestChaosScriptedCorruptIsFatal(t *testing.T) {
	reg := obs.New()
	_, s := startServer(t, reg, serve.Options{Shards: 1}, Options{})
	script := netfault.NewScript().Set("k", netfault.DirWrite, 1, netfault.KindCorrupt)
	script.Instrument(reg)

	raw, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := script.Conn(raw, "k")
	defer c.Close()
	enc := wire.NewEncoder()
	br := bufio.NewReader(c)

	frame, err := enc.AppendFrame(nil, []wire.Event{{Session: "a", Kind: wire.KindDown, X: 1, Y: 1, TMicros: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(frame); err != nil { // write op 0: clean
		t.Fatal(err)
	}
	if resp, err := wire.ReadResponse(br, nil); err != nil || resp.Fatal {
		t.Fatalf("clean frame response = %+v err %v", resp, err)
	}

	frame, err = enc.AppendFrame(nil, []wire.Event{{Session: "a", Kind: wire.KindMove, X: 2, Y: 2, TMicros: 2000}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(frame); err != nil { // write op 1: corrupted
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := wire.ReadResponse(br, nil)
	if err != nil {
		t.Fatalf("read response after corrupt frame: %v", err)
	}
	if !resp.Fatal {
		t.Fatalf("corrupted frame drew %+v — a flipped bit mis-decoded", resp)
	}
	switch resp.Code {
	case wire.FatalCorrupt, wire.FatalOversized, wire.FatalTruncated, wire.FatalVersion:
	default:
		t.Fatalf("corrupted frame drew fatal %v, want a decode-error code", resp.Code)
	}
	if _, err := br.ReadByte(); err == nil {
		t.Fatal("connection still open after fatal response")
	}
	snap := reg.Snapshot()
	if got := snapCounter(t, snap, "wire.frames.rejected"); got != 1 {
		t.Errorf("wire.frames.rejected = %d, want 1", got)
	}
	if got := snapCounter(t, snap, "netfault.injected.corrupt"); got != 1 {
		t.Errorf("netfault.injected.corrupt = %d, want 1", got)
	}
	if got := script.Counts()["corrupt"]; got != 1 {
		t.Errorf("script corrupt count = %d, want 1", got)
	}
}

// chaosSink counts terminal results per session.
type chaosSink struct {
	mu  sync.Mutex
	per map[string]int
}

func (s *chaosSink) add(r serve.Result) {
	s.mu.Lock()
	if s.per == nil {
		s.per = map[string]int{}
	}
	s.per[r.Session]++
	s.mu.Unlock()
}

func (s *chaosSink) snapshot() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.per))
	for k, v := range s.per {
		out[k] = v
	}
	return out
}

// chaosClient streams sessions at the server through a fault-injecting
// dialer with at-most-once frame delivery: any error drops the in-flight
// frame (its events are lost, the engine's reaper owns the half
// session) and reconnects with a fresh encoder. Returns the fatal codes
// seen and how many events were lost.
func chaosClient(t *testing.T, addr string, sched *netfault.Schedule, sessions []string, seed int64) (fatals map[wire.FatalCode]int, lost int) {
	t.Helper()
	fatals = map[wire.FatalCode]int{}
	for si, session := range sessions {
		events := gestureEvents(seed+int64(si), si%len(synth.UDClasses()), session)
		pos, attempt := 0, 0
		var c net.Conn
		var enc *wire.Encoder
		var br *bufio.Reader
		redial := func() bool {
			if c != nil {
				c.Close()
			}
			if attempt++; attempt > 8 {
				return false
			}
			raw, err := net.Dial("tcp", addr)
			if err != nil {
				return false
			}
			c = sched.Conn(raw, fmt.Sprintf("%s-a%d", session, attempt))
			enc = wire.NewEncoder()
			br = bufio.NewReader(c)
			return true
		}
		if !redial() {
			lost += len(events)
			continue
		}
		for pos < len(events) {
			n := 7
			if n > len(events)-pos {
				n = len(events) - pos
			}
			frame, err := enc.AppendFrame(nil, events[pos:pos+n])
			if err != nil {
				t.Fatal(err)
			}
			pos += n // at-most-once: the frame is spent whatever happens next
			if _, err := c.Write(frame); err != nil {
				lost += n
				if !redial() {
					lost += len(events) - pos
					break
				}
				continue
			}
			c.SetReadDeadline(time.Now().Add(5 * time.Second))
			resp, err := wire.ReadResponse(br, nil)
			if err != nil {
				lost += n
				if !redial() {
					lost += len(events) - pos
					break
				}
				continue
			}
			if resp.Fatal {
				fatals[resp.Code]++
				lost += n
				if !redial() {
					lost += len(events) - pos
					break
				}
				continue
			}
		}
		if c != nil {
			c.Close()
		}
	}
	return fatals, lost
}

// TestChaosBenignFaultsMatchBaseline: faults that only reshape the byte
// stream (split writes, short reads, jitter) must be invisible to the
// protocol — every session classifies identically to an unfaulted
// reference run.
func TestChaosBenignFaultsMatchBaseline(t *testing.T) {
	run := func(wrap func(net.Conn, int) net.Conn) map[string]string {
		t.Helper()
		snk := &sink{}
		e, err := serve.New(trainRec(t, 7), serve.Options{Shards: 1, OnResult: snk.add})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		s := Serve(ln, e, Options{})
		defer e.Close()
		defer s.Close()
		const sessions = 6
		for i := 0; i < sessions; i++ {
			raw, err := net.Dial("tcp", s.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			c := wrap(raw, i)
			enc := wire.NewEncoder()
			br := bufio.NewReader(c)
			events := gestureEvents(int64(i+1), i%len(synth.UDClasses()), fmt.Sprintf("b%d", i))
			for pos := 0; pos < len(events); {
				n := 7
				if n > len(events)-pos {
					n = len(events) - pos
				}
				frame, err := enc.AppendFrame(nil, events[pos:pos+n])
				if err != nil {
					t.Fatal(err)
				}
				if _, err := c.Write(frame); err != nil {
					t.Fatalf("write under benign faults: %v", err)
				}
				c.SetReadDeadline(time.Now().Add(5 * time.Second))
				resp, err := wire.ReadResponse(br, nil)
				if err != nil || resp.Fatal || len(resp.Nacks) != 0 {
					t.Fatalf("response under benign faults = %+v err %v", resp, err)
				}
				pos += n
			}
			c.Close()
		}
		deadline := time.Now().Add(10 * time.Second)
		for snk.len() < sessions {
			if time.Now().After(deadline) {
				t.Fatalf("only %d/%d results", snk.len(), sessions)
			}
			time.Sleep(time.Millisecond)
		}
		classes := map[string]string{}
		snk.mu.Lock()
		for _, r := range snk.results {
			classes[r.Session] = r.Class
		}
		snk.mu.Unlock()
		return classes
	}

	baseline := run(func(c net.Conn, _ int) net.Conn { return c })

	sched, err := netfault.NewSchedule(netfault.Plan{
		Seed:       42,
		WriteRates: map[netfault.Kind]float64{netfault.KindSplit: 0.5, netfault.KindJitter: 0.3},
		ReadRates:  map[netfault.Kind]float64{netfault.KindShortRead: 0.4, netfault.KindJitter: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	sched.SetSleep(func(time.Duration) {}) // jitter decided, not slept
	faulted := run(func(c net.Conn, i int) net.Conn {
		return sched.Conn(c, fmt.Sprintf("b%d", i))
	})

	if len(faulted) != len(baseline) {
		t.Fatalf("faulted run produced %d sessions, baseline %d", len(faulted), len(baseline))
	}
	for sess, class := range baseline {
		if faulted[sess] != class {
			t.Errorf("session %s: faulted class %q != baseline %q", sess, faulted[sess], class)
		}
	}
	counts := sched.Counts()
	for _, kind := range []string{"split", "short_read", "jitter"} {
		if counts[kind] == 0 {
			t.Errorf("benign schedule never drew %s (counts %v)", kind, counts)
		}
	}
}

// TestChaosHostileMixOverSockets is the chaos harness acceptance test:
// seeded hostile fault schedules (corruption, truncation mid-frame,
// resets, short reads, jitter) against a real server over real sockets,
// asserting the system-level invariants — no goroutine leaks, at most
// one terminal Result per session with session accounting balanced,
// every fatal teardown carries a typed decode error, every enabled
// fault kind visible in the netfault.* counters, and queue accounting
// exact (every submitted event's queue wait observed).
func TestChaosHostileMixOverSockets(t *testing.T) {
	base := runtime.NumGoroutine()
	aggregate := map[string]uint64{}

	for _, seed := range []int64{1, 7, 1001} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			reg := obs.New()
			snk := &chaosSink{}
			e, err := serve.New(trainRec(t, 7), serve.Options{
				Shards:       2,
				OnResult:     snk.add,
				Obs:          reg,
				IdleTimeout:  100 * time.Millisecond,
				ReapInterval: 10 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			s := Serve(ln, e, Options{
				Obs:          reg,
				IdleTimeout:  2 * time.Second,
				WriteTimeout: 2 * time.Second,
				Submitter:    serve.SubmitterOptions{MaxAttempts: 2},
			})

			sched, err := netfault.NewSchedule(netfault.Plan{
				Seed: seed,
				WriteRates: map[netfault.Kind]float64{
					netfault.KindSplit:    0.15,
					netfault.KindCorrupt:  0.08,
					netfault.KindTruncate: 0.08,
					netfault.KindJitter:   0.10,
					netfault.KindReset:    0.05,
				},
				ReadRates: map[netfault.Kind]float64{
					netfault.KindShortRead: 0.15,
					netfault.KindJitter:    0.10,
					netfault.KindReset:     0.05,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			sched.SetSleep(func(time.Duration) {})
			sched.Instrument(reg)

			sessions := make([]string, 10)
			for i := range sessions {
				sessions[i] = fmt.Sprintf("s%d-%d", seed, i)
			}
			fatals, _ := chaosClient(t, s.Addr().String(), sched, sessions, seed)

			// Every fatal teardown carried a typed decode error — a
			// flipped bit or torn frame never mis-decodes.
			for code := range fatals {
				switch code {
				case wire.FatalCorrupt, wire.FatalOversized, wire.FatalTruncated, wire.FatalVersion:
				default:
					t.Errorf("unexpected fatal code %v under hostile mix", code)
				}
			}

			// Settle: the reaper owns half-delivered sessions; wait until
			// every opened session has completed and every completion
			// reached the sink.
			deadline := time.Now().Add(10 * time.Second)
			for {
				snap := reg.Snapshot()
				opened := snapCounter(t, snap, "serve.sessions.opened")
				completed := snapCounter(t, snap, "serve.sessions.completed")
				snkTotal := 0
				for _, n := range snk.snapshot() {
					snkTotal += n
				}
				if opened == completed && int64(snkTotal) == completed {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("sessions never settled: opened %d completed %d sink %d", opened, completed, snkTotal)
				}
				time.Sleep(5 * time.Millisecond)
			}

			// Exactly one terminal Result per session: at-most-once frame
			// delivery means no session can complete twice.
			for sess, n := range snk.snapshot() {
				if n != 1 {
					t.Errorf("session %s produced %d terminal results, want 1", sess, n)
				}
			}

			// Queue accounting balanced: every accepted event's queue
			// wait was observed.
			snap := reg.Snapshot()
			submitted := snapCounter(t, snap, "serve.events.submitted")
			for _, h := range snap.Histograms {
				if h.Name == "serve.queue.wait_ns" {
					if h.Count != submitted {
						t.Errorf("queue accounting: wait_ns count %d != submitted %d", h.Count, submitted)
					}
				}
			}

			// Every injection the schedule decided is visible in the
			// netfault.* counters.
			counts := sched.Counts()
			var want int64
			for kind, n := range counts {
				aggregate[kind] += n
				want += int64(n)
				if got := snapCounter(t, snap, "netfault.injected."+kind); got != int64(n) {
					t.Errorf("netfault.injected.%s = %d, want %d", kind, got, n)
				}
			}
			if got := snapCounter(t, snap, "netfault.injected.total"); got != want {
				t.Errorf("netfault.injected.total = %d, want %d", got, want)
			}

			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}

	// Across the seeds, every enabled fault kind fired at least once.
	for _, kind := range []string{"split", "corrupt", "truncate", "jitter", "reset", "short_read"} {
		if aggregate[kind] == 0 {
			t.Errorf("hostile mix never drew %s across seeds (aggregate %v)", kind, aggregate)
		}
	}

	// No goroutine leaks once every server and engine is down.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d at start, %d after chaos", base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
