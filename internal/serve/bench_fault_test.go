package serve

import (
	"testing"
	"time"

	"repro/internal/eager"
	"repro/internal/fault"
	"repro/internal/multipath"
)

// The Fault* benchmarks back BENCH_fault.json in CI: the cost of the
// hardening layer itself — Submit-time validation, the per-event
// validation check inside a live engine, and an on-demand reap sweep —
// so regressions in the robustness plumbing are diffable run over run.

var benchErrSink error

// BenchmarkFaultValidate measures the pure Submit-time validation check
// on a well-formed event — the per-event cost every producer pays.
func BenchmarkFaultValidate(b *testing.B) {
	ev := Event{Session: "bench", Finger: 0, Kind: multipath.FingerMove, X: 10, Y: 20, T: 1.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchErrSink = validate(ev)
	}
}

// BenchmarkFaultSubmitStray measures Submit end-to-end on a live engine
// — validation, timestamp high-water tracking, and the shard handoff —
// using stray moves the shard drops cheaply, so the classifier stays
// out of the measurement.
func BenchmarkFaultSubmitStray(b *testing.B) {
	rec := benchRec(b)
	e, err := New(rec, Options{Shards: 1, QueueDepth: 1024})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	s := NewSubmitter(e, SubmitterOptions{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchErrSink = s.Submit(Event{Session: "stray", Finger: 0, Kind: multipath.FingerMove, X: 1, Y: 2, T: float64(i)})
	}
}

// BenchmarkFaultReapNoop measures an on-demand reap sweep over an
// engine with no idle sessions — the steady-state cost of running the
// reaper when nothing needs collecting.
func BenchmarkFaultReapNoop(b *testing.B) {
	rec := benchRec(b)
	clk := fault.NewManualClock(time.Unix(1_700_000_000, 0))
	e, err := New(rec, Options{Shards: 1, IdleTimeout: time.Second, ReapInterval: -1, Clock: clk})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Reap(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRec trains the small recognizer the serve benchmarks share.
func benchRec(b *testing.B) *eager.Recognizer {
	b.Helper()
	return trainRec(b, 7)
}
