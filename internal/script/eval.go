package script

import (
	"fmt"
	"sort"
)

// Value is any value flowing through the interpreter: nil, float64, string,
// bool, or an Object.
type Value = any

// Object is the message-receiving protocol. GRANDMA models, views, and
// handlers implement it (usually via Dispatch) so semantics expressions can
// send them messages.
type Object interface {
	Send(selector string, args []Value) (Value, error)
}

// Method is one message implementation.
type Method func(args []Value) (Value, error)

// Dispatch is a ready-made Object backed by a selector map. The zero value
// is usable after Bind calls.
type Dispatch struct {
	Name    string // used in error messages
	methods map[string]Method
}

// NewDispatch returns an empty dispatch object with a debug name.
func NewDispatch(name string) *Dispatch {
	return &Dispatch{Name: name, methods: make(map[string]Method)}
}

// Bind registers a method under a selector and returns the receiver for
// chaining.
func (d *Dispatch) Bind(selector string, m Method) *Dispatch {
	if d.methods == nil {
		d.methods = make(map[string]Method)
	}
	d.methods[selector] = m
	return d
}

// Selectors returns the bound selectors, sorted (for error messages and
// reflection-style tooling).
func (d *Dispatch) Selectors() []string {
	out := make([]string, 0, len(d.methods))
	for s := range d.methods {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Send implements Object.
func (d *Dispatch) Send(selector string, args []Value) (Value, error) {
	m, ok := d.methods[selector]
	if !ok {
		return nil, &MessageError{Receiver: d.Name, Selector: selector}
	}
	return m(args)
}

// MessageError reports an unhandled selector.
type MessageError struct {
	Receiver string
	Selector string
}

func (e *MessageError) Error() string {
	return fmt.Sprintf("script: %s does not respond to %q", e.Receiver, e.Selector)
}

// Env is an evaluation environment: variables (assignable from scripts)
// and gestural attributes (read-only, bound lazily by the gesture handler
// before each evaluation).
type Env struct {
	Vars  map[string]Value
	Attrs map[string]Value
}

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{Vars: make(map[string]Value), Attrs: make(map[string]Value)}
}

// SetVar binds a variable.
func (e *Env) SetVar(name string, v Value) { e.Vars[name] = v }

// SetAttr binds a gestural attribute.
func (e *Env) SetAttr(name string, v Value) { e.Attrs[name] = v }

// Var reads a variable, with an ok flag.
func (e *Env) Var(name string) (Value, bool) {
	v, ok := e.Vars[name]
	return v, ok
}

// Eval runs the program in the environment and returns the value of its
// last statement (nil for an empty program). Assignments update the
// environment's variables.
func (p *Program) Eval(env *Env) (Value, error) {
	var last Value
	for i := range p.Stmts {
		st := &p.Stmts[i]
		v, err := evalExpr(st.Expr, env)
		if err != nil {
			return nil, err
		}
		if st.Assign != "" {
			env.SetVar(st.Assign, v)
		}
		last = v
	}
	return last, nil
}

func evalExpr(e Expr, env *Env) (Value, error) {
	switch n := e.(type) {
	case *NumLit:
		return n.Value, nil
	case *StrLit:
		return n.Value, nil
	case *NilLit:
		return nil, nil
	case *VarRef:
		v, ok := env.Vars[n.Name]
		if !ok {
			return nil, fmt.Errorf("script: undefined variable %q", n.Name)
		}
		return v, nil
	case *AttrRef:
		v, ok := env.Attrs[n.Name]
		if !ok {
			return nil, fmt.Errorf("script: unknown attribute <%s>", n.Name)
		}
		return v, nil
	case *Msg:
		recv, err := evalExpr(n.Recv, env)
		if err != nil {
			return nil, err
		}
		if recv == nil {
			// Objective-C semantics: messages to nil return nil.
			return nil, nil
		}
		obj, ok := recv.(Object)
		if !ok {
			return nil, fmt.Errorf("script: %T does not receive messages (selector %q)", recv, n.Selector)
		}
		args := make([]Value, len(n.Args))
		for i, a := range n.Args {
			if args[i], err = evalExpr(a, env); err != nil {
				return nil, err
			}
		}
		return obj.Send(n.Selector, args)
	default:
		return nil, fmt.Errorf("script: unknown expression node %T", e)
	}
}

// Num coerces a Value to float64 for use inside method implementations.
func Num(v Value) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case int:
		return float64(x), nil
	default:
		return 0, fmt.Errorf("script: expected number, got %T", v)
	}
}

// Str coerces a Value to string.
func Str(v Value) (string, error) {
	if s, ok := v.(string); ok {
		return s, nil
	}
	return "", fmt.Errorf("script: expected string, got %T", v)
}

// Arity returns an error unless args has exactly n elements; helper for
// method implementations.
func Arity(selector string, args []Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("script: %q takes %d arguments, got %d", selector, n, len(args))
	}
	return nil
}
