// Quickstart: train a full gesture classifier from examples and classify
// fresh gestures — the paper's section 4.2 in a dozen lines of API.
package main

import (
	"fmt"
	"log"

	rubine "repro"
)

func main() {
	// 1. Get labelled example gestures. Here we synthesize the paper's
	//    figure-9 set (eight two-segment gestures: "ur" = up then right);
	//    a real application would record its users' strokes instead.
	train := rubine.Generate(rubine.EightDirections, 15, 1)
	fmt.Printf("training on %d examples of %d classes\n", train.Len(), len(train.Classes()))

	// 2. Train the statistical single-stroke classifier.
	rec, err := rubine.TrainFull(train, rubine.DefaultTrainOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Classify new gestures.
	test := rubine.Generate(rubine.EightDirections, 5, 99)
	correct := 0
	for _, e := range test.Examples {
		res, err := rec.Evaluate(e.Gesture)
		if err != nil {
			log.Fatal(err)
		}
		ok := ""
		if res.Class == e.Class {
			correct++
		} else {
			ok = "   <- wrong"
		}
		fmt.Printf("  drew %-3s -> recognized %-3s (P=%.3f, Mahalanobis=%.1f)%s\n",
			e.Class, res.Class, res.Probability, res.Mahalanobis, ok)
	}
	fmt.Printf("accuracy: %d/%d\n", correct, test.Len())
}
