// Package spanend is a fixture for the spanend analyzer. It defines a
// local stand-in for the obs span API because the loader's source
// importer cannot resolve repository packages from a testdata directory;
// the analyzer deliberately matches the *Span type by name.
package spanend

// Span mirrors the obs.Span method set the analyzer knows about.
type Span struct{ ended bool }

// End finishes the span.
func (s *Span) End() {}

// EndAt finishes the span at an explicit time.
func (s *Span) EndAt(at int) {}

// Child starts a nested span.
func (s *Span) Child(name string) *Span { return &Span{} }

// SetAttr attaches an attribute.
func (s *Span) SetAttr(k, v string) {}

// Event records an instant child.
func (s *Span) Event(name string) {}

// SpanBuffer mirrors obs.SpanBuffer.
type SpanBuffer struct{}

// Start opens a root span.
func (b *SpanBuffer) Start(name string) *Span { return &Span{} }

func neverEnded(b *SpanBuffer) {
	sp := b.Start("work") // want `span sp is never ended`
	sp.Event("tick")
}

func missedPath(b *SpanBuffer, cond bool) error {
	sp := b.Start("work") // want `span sp is not ended on every return path`
	if cond {
		sp.End()
		return nil
	}
	return nil
}

func missedFallthrough(b *SpanBuffer, cond bool) {
	sp := b.Start("work") // want `span sp is not ended on every return path`
	if cond {
		sp.End()
	}
}

func childLeak(b *SpanBuffer) {
	sp := b.Start("work")
	c := sp.Child("step") // want `span c is never ended`
	c.Event("tick")
	sp.End()
}

func allPaths(b *SpanBuffer, cond bool) error {
	sp := b.Start("work")
	if cond {
		sp.End()
		return nil
	}
	sp.End()
	return nil
}

func deferred(b *SpanBuffer, cond bool) error {
	sp := b.Start("work")
	defer sp.End()
	if cond {
		return nil
	}
	return nil
}

func endAt(b *SpanBuffer) {
	sp := b.Start("work")
	sp.SetAttr("k", "v")
	sp.EndAt(7)
}

func nestedOK(b *SpanBuffer) {
	sp := b.Start("work")
	c := sp.Child("step")
	c.End()
	sp.End()
}

// handedOff transfers ownership by returning the span: clean.
func handedOff(b *SpanBuffer) *Span {
	sp := b.Start("work")
	return sp
}

// consume stands in for any callee that takes over a span.
func consume(s *Span) { s.End() }

// passedAlong transfers ownership as an argument: clean.
func passedAlong(b *SpanBuffer) {
	sp := b.Start("work")
	consume(sp)
}

// holder stores a long-lived span the way serve's liveSession does.
type holder struct{ sp *Span }

// stored escapes into a field: clean.
func stored(b *SpanBuffer, h *holder) {
	sp := b.Start("work")
	h.sp = sp
}

// closureEnd is ended by a captured closure: clean (trusted wiring).
func closureEnd(b *SpanBuffer) func() {
	sp := b.Start("work")
	return func() { sp.End() }
}

// litScope checks that function literals are scopes of their own.
var litScope = func(b *SpanBuffer) {
	sp := b.Start("work") // want `span sp is never ended`
	sp.Event("tick")
}

func switchPaths(b *SpanBuffer, n int) int {
	sp := b.Start("work") // want `span sp is not ended on every return path`
	switch n {
	case 0:
		sp.End()
		return 1
	default:
		return 2
	}
}
