// Package experiments regenerates the paper's evaluation (section 5): the
// eight-direction set of figure 9, the GDP set of figure 10, the
// not-amenable note gestures of figure 8, the U/D pedagogical pipeline of
// figures 5–7, the per-point timing measurements, and the ablations called
// out in DESIGN.md. Each experiment returns a structured result and can
// format itself as the table recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/eager"
	"repro/internal/features"
	"repro/internal/linalg"
	"repro/internal/synth"
)

// Config controls the train/test protocol. The paper trains on 10 examples
// per class and tests on 30.
type Config struct {
	TrainSeed     int64
	TestSeed      int64
	TrainPerClass int
	TestPerClass  int
	Eager         eager.Options
}

// DefaultConfig mirrors the paper's protocol.
func DefaultConfig() Config {
	return Config{
		TrainSeed:     42,
		TestSeed:      1042,
		TrainPerClass: 10,
		TestPerClass:  30,
		Eager:         eager.DefaultOptions(),
	}
}

// ClassStats aggregates per-class results of an eager evaluation.
type ClassStats struct {
	Class        string
	N            int
	FullCorrect  int
	EagerCorrect int
	PointsSeen   int // sum over examples of points examined before firing
	TotalPoints  int // sum of gesture lengths
	OraclePoints int // sum of oracle minimum points (0 when unavailable)
}

// EagerEval is the result of one train/test evaluation — the content of
// the paper's figures 9 and 10 captions.
type EagerEval struct {
	Name          string
	Classes       int
	TrainPerClass int
	TestPerClass  int
	FullAccuracy  float64
	EagerAccuracy float64
	// Eagerness is the average fraction of each gesture's mouse points the
	// eager recognizer examined before classifying (the paper reports
	// 67.9% for fig. 9, 60.5% for fig. 10).
	Eagerness float64
	// OracleEagerness is the average minimum fraction that had to be seen
	// before the gesture was unambiguous, per the generator's ground truth
	// (the paper's hand-determined 59.4% for fig. 9); 0 when no oracle.
	OracleEagerness float64
	PerClass        []ClassStats
	Report          *eager.Report
}

// RunEagerEval trains an eager recognizer on a synthetic set and evaluates
// it on a fresh test set, reproducing the protocol of section 5.
func RunEagerEval(name string, classes []synth.Class, cfg Config) (*EagerEval, error) {
	trainSet, _ := synth.NewGenerator(synth.DefaultParams(cfg.TrainSeed)).Set(name+"-train", classes, cfg.TrainPerClass)
	testSet, meta := synth.NewGenerator(synth.DefaultParams(cfg.TestSeed)).Set(name+"-test", classes, cfg.TestPerClass)

	rec, report, err := eager.Train(trainSet, cfg.Eager)
	if err != nil {
		return nil, fmt.Errorf("experiments %s: %w", name, err)
	}

	stats := make(map[string]*ClassStats)
	order := []string{}
	get := func(class string) *ClassStats {
		if s, ok := stats[class]; ok {
			return s
		}
		s := &ClassStats{Class: class}
		stats[class] = s
		order = append(order, class)
		return s
	}

	var fullCorrect, eagerCorrect int
	var seen, total, oracleSeen, oracleTotal int
	for i, e := range testSet.Examples {
		st := get(e.Class)
		st.N++
		st.TotalPoints += e.Gesture.Len()
		total += e.Gesture.Len()

		pred, err := rec.Full.Classify(e.Gesture)
		if err != nil {
			return nil, fmt.Errorf("experiments %s: %w", name, err)
		}
		if pred == e.Class {
			fullCorrect++
			st.FullCorrect++
		}
		class, firedAt, err := rec.Run(e.Gesture)
		if err != nil {
			return nil, fmt.Errorf("experiments %s: %w", name, err)
		}
		if class == e.Class {
			eagerCorrect++
			st.EagerCorrect++
		}
		st.PointsSeen += firedAt
		seen += firedAt
		if mp := meta[i].MinPoints; mp > 0 {
			st.OraclePoints += mp
			oracleSeen += mp
			oracleTotal += e.Gesture.Len()
		}
	}

	res := &EagerEval{
		Name:          name,
		Classes:       len(classes),
		TrainPerClass: cfg.TrainPerClass,
		TestPerClass:  cfg.TestPerClass,
		FullAccuracy:  float64(fullCorrect) / float64(testSet.Len()),
		EagerAccuracy: float64(eagerCorrect) / float64(testSet.Len()),
		Eagerness:     float64(seen) / float64(total),
		Report:        report,
	}
	if oracleTotal > 0 {
		res.OracleEagerness = float64(oracleSeen) / float64(oracleTotal)
	}
	sort.Strings(order)
	for _, c := range order {
		res.PerClass = append(res.PerClass, *stats[c])
	}
	return res, nil
}

// Format renders the evaluation as an aligned text table.
func (r *EagerEval) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %d classes, train %d/class, test %d/class ==\n",
		r.Name, r.Classes, r.TrainPerClass, r.TestPerClass)
	fmt.Fprintf(&b, "full classifier accuracy : %6.1f%%\n", 100*r.FullAccuracy)
	fmt.Fprintf(&b, "eager recognizer accuracy: %6.1f%%\n", 100*r.EagerAccuracy)
	fmt.Fprintf(&b, "points examined (eager)  : %6.1f%%\n", 100*r.Eagerness)
	if r.OracleEagerness > 0 {
		fmt.Fprintf(&b, "minimum possible (oracle): %6.1f%%\n", 100*r.OracleEagerness)
	}
	if r.Report != nil {
		fmt.Fprintf(&b, "training: %d subgestures (%d complete, %d incomplete), %d moved, %d tweaks, AUC %d classes\n",
			r.Report.Subgestures, r.Report.Complete, r.Report.Incomplete,
			r.Report.MovedAccidental, r.Report.TweakAdjusts, r.Report.AUCClasses)
	}
	fmt.Fprintf(&b, "%-14s %4s %8s %9s %9s\n", "class", "n", "full%", "eager%", "seen%")
	for _, c := range r.PerClass {
		fmt.Fprintf(&b, "%-14s %4d %7.1f%% %8.1f%% %8.1f%%\n",
			c.Class, c.N,
			100*float64(c.FullCorrect)/float64(c.N),
			100*float64(c.EagerCorrect)/float64(c.N),
			100*float64(c.PointsSeen)/float64(c.TotalPoints))
	}
	return b.String()
}

// Fig9 reproduces figure 9: the eight-direction two-segment set.
func Fig9(cfg Config) (*EagerEval, error) {
	return RunEagerEval("fig9-eight-directions", synth.EightDirectionClasses(), cfg)
}

// Fig10 reproduces figure 10: the GDP gesture set.
func Fig10(cfg Config) (*EagerEval, error) {
	return RunEagerEval("fig10-gdp", synth.GDPClasses(), cfg)
}

// Fig8 reproduces figure 8: Buxton's note gestures, the set NOT amenable
// to eager recognition.
func Fig8(cfg Config) (*EagerEval, error) {
	return RunEagerEval("fig8-notes", synth.NoteClasses(), cfg)
}

// UD reproduces the figures 5–7 pipeline on the pedagogical U/D set,
// surfacing the per-stage training report.
func UD(cfg Config) (*EagerEval, error) {
	c := cfg
	c.TrainPerClass = 15 // the paper trains U/D with 15 examples each
	return RunEagerEval("fig5-7-ud", synth.UDClasses(), c)
}

// Timing measures the per-mouse-point costs the paper reports for a DEC
// MicroVAX II: feature-vector update (0.5 ms) and AUC classification
// (0.27 ms per class; about 6 ms for GDP's 22 AUC classes).
type Timing struct {
	FeatureUpdate   time.Duration // per mouse point
	AUCClassify     time.Duration // per mouse point, whole AUC
	AUCPerClass     time.Duration // per mouse point per AUC class
	AUCClasses      int
	PaperFeatureMS  float64
	PaperPerClassMS float64
}

// RunTiming measures the two per-point costs on the GDP workload.
func RunTiming(cfg Config) (*Timing, error) {
	classes := synth.GDPClasses()
	trainSet, _ := synth.NewGenerator(synth.DefaultParams(cfg.TrainSeed)).Set("timing-train", classes, cfg.TrainPerClass)
	rec, _, err := eager.Train(trainSet, cfg.Eager)
	if err != nil {
		return nil, err
	}
	testSet, _ := synth.NewGenerator(synth.DefaultParams(cfg.TestSeed)).Set("timing-test", classes, 5)

	points := 0
	for _, e := range testSet.Examples {
		points += e.Gesture.Len()
	}
	const reps = 200

	// Feature update: time Extractor.Add over every point of every gesture.
	featStart := time.Now()
	for r := 0; r < reps; r++ {
		for _, e := range testSet.Examples {
			ext, err := features.NewExtractor(rec.Full.Opts)
			if err != nil {
				return nil, err
			}
			for _, p := range e.Gesture.Points {
				ext.Add(p)
			}
		}
	}
	featDur := time.Since(featStart) / time.Duration(reps*points)

	// AUC classification of the running feature vector at every point.
	vecs := make([]linalg.Vec, 0, points)
	for _, e := range testSet.Examples {
		ext, err := features.NewExtractor(rec.Full.Opts)
		if err != nil {
			return nil, err
		}
		for _, p := range e.Gesture.Points {
			ext.Add(p)
			v, err := ext.Vector()
			if err != nil {
				return nil, err
			}
			vecs = append(vecs, v)
		}
	}
	aucStart := time.Now()
	for r := 0; r < reps; r++ {
		for _, v := range vecs {
			rec.AUC.Classify(v)
		}
	}
	aucDur := time.Since(aucStart) / time.Duration(reps*len(vecs))

	n := rec.AUC.NumClasses()
	return &Timing{
		FeatureUpdate:   featDur,
		AUCClassify:     aucDur,
		AUCPerClass:     aucDur / time.Duration(n),
		AUCClasses:      n,
		PaperFeatureMS:  0.5,
		PaperPerClassMS: 0.27,
	}, nil
}

// Format renders the timing table.
func (t *Timing) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== timing: per-mouse-point costs (paper: DEC MicroVAX II) ==\n")
	fmt.Fprintf(&b, "feature update    : %10v/point   (paper: %.2f ms)\n", t.FeatureUpdate, t.PaperFeatureMS)
	fmt.Fprintf(&b, "AUC classification: %10v/point   (paper: ~%.1f ms for %d classes)\n",
		t.AUCClassify, t.PaperPerClassMS*float64(t.AUCClasses), t.AUCClasses)
	fmt.Fprintf(&b, "AUC per class     : %10v/class   (paper: %.2f ms)\n", t.AUCPerClass, t.PaperPerClassMS)
	return b.String()
}
