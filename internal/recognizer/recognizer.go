// Package recognizer ties the feature extractor and the linear classifier
// into the paper's full classifier C-hat: a function from gestures to class
// names, trained from example gestures. The eager-recognition trainer, the
// GRANDMA gesture handler, and GDP all consume this type.
package recognizer

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/classifier"
	"repro/internal/features"
	"repro/internal/gesture"
	"repro/internal/linalg"
)

// Full is a trained full (non-eager) gesture classifier.
type Full struct {
	Opts features.Options       `json:"opts"`
	C    *classifier.Classifier `json:"classifier"`
}

// TrainOptions configures full-classifier training.
type TrainOptions struct {
	Features features.Options
	Sort     bool // sort class names in the trained classifier
}

// DefaultTrainOptions returns paper-faithful training options.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Features: features.DefaultOptions()}
}

// Train builds a full classifier from a labelled gesture set.
func Train(set *gesture.Set, opts TrainOptions) (*Full, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Features.Validate(); err != nil {
		return nil, err
	}
	ex := make([]classifier.Example, 0, set.Len())
	for _, e := range set.Examples {
		ex = append(ex, classifier.Example{
			Class:    e.Class,
			Features: features.Compute(e.Gesture.Points, opts.Features),
		})
	}
	c, err := classifier.Train(ex, classifier.Options{SortClasses: opts.Sort})
	if err != nil {
		return nil, fmt.Errorf("recognizer: %w", err)
	}
	return &Full{Opts: opts.Features, C: c}, nil
}

// Features returns the feature vector of g under the recognizer's options.
func (f *Full) Features(g gesture.Gesture) linalg.Vec {
	return features.Compute(g.Points, f.Opts)
}

// Classify returns the class of g.
func (f *Full) Classify(g gesture.Gesture) string {
	name, _ := f.C.Classify(f.Features(g))
	return name
}

// Evaluate returns the classification of g with rejection diagnostics.
func (f *Full) Evaluate(g gesture.Gesture) classifier.Result {
	return f.C.Evaluate(f.Features(g))
}

// Classes returns the class names the recognizer discriminates.
func (f *Full) Classes() []string { return f.C.Classes }

// Accuracy classifies every example in the set and returns the fraction
// classified correctly, together with the per-example predictions.
func (f *Full) Accuracy(set *gesture.Set) (float64, []string) {
	if set.Len() == 0 {
		return 0, nil
	}
	preds := make([]string, set.Len())
	correct := 0
	for i, e := range set.Examples {
		preds[i] = f.Classify(e.Gesture)
		if preds[i] == e.Class {
			correct++
		}
	}
	return float64(correct) / float64(set.Len()), preds
}

// WriteJSON serializes the recognizer.
func (f *Full) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("recognizer: encode: %w", err)
	}
	return nil
}

// ReadJSON deserializes a recognizer.
func ReadJSON(r io.Reader) (*Full, error) {
	var f Full
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("recognizer: decode: %w", err)
	}
	if f.C == nil {
		return nil, fmt.Errorf("recognizer: missing classifier")
	}
	return &f, nil
}

// SaveFile writes the recognizer to the named file as JSON.
func (f *Full) SaveFile(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("recognizer: %w", err)
	}
	defer fh.Close()
	if err := f.WriteJSON(fh); err != nil {
		return err
	}
	return fh.Close()
}

// LoadFile reads a recognizer from the named JSON file.
func LoadFile(path string) (*Full, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("recognizer: %w", err)
	}
	defer fh.Close()
	return ReadJSON(fh)
}
