package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"
)

// SnapshotSchema is the version of the Snapshot structure (and therefore
// of the JSON documents cmd/gserve and cmd/gbench emit under their
// "metrics" keys). Bump it whenever a field is renamed, removed, or
// changes meaning; adding metrics does not bump it.
const SnapshotSchema = 1

// Registry names and owns a process's instruments. Accessors register on
// first use and return the same instrument for the same name thereafter,
// so independent packages can share metrics by name. A nil *Registry is
// fully usable: every accessor returns nil, which every instrument
// treats as "disabled" — instrumented code never branches on whether
// observability is attached.
//
// Concurrency: all methods are safe for concurrent use. Registration
// takes a mutex; the instruments themselves are lock-free (see Counter,
// Histogram, Ring).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	rings    map[string]*Ring
	spans    map[string]*SpanBuffer
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		rings:    make(map[string]*Ring),
		spans:    make(map[string]*SpanBuffer),
	}
}

// Counter returns the named counter, registering it on first use.
// Returns nil (the disabled instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, registering it with the given
// bucket boundaries on first use. Later calls return the existing
// histogram regardless of the bounds argument — boundaries are fixed at
// registration, which is what keeps snapshots structurally
// deterministic. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Ring returns the named trace ring, registering it with the given
// capacity on first use (non-positive capacity selects the 1024-entry
// default). Later calls return the existing ring regardless of the
// capacity argument. Returns nil on a nil registry.
func (r *Registry) Ring(name string, capacity int) *Ring {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.rings[name]
	if !ok {
		rg = newRing(capacity)
		r.rings[name] = rg
	}
	return rg
}

// Spans returns the named span buffer, registering it with the given
// capacity on first use (non-positive capacity selects the 8192-record
// default). Later calls return the existing buffer regardless of the
// capacity argument. Returns nil on a nil registry.
func (r *Registry) Spans(name string, capacity int) *SpanBuffer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.spans[name]
	if !ok {
		b = newSpanBuffer(capacity)
		r.spans[name] = b
	}
	return b
}

// CounterSnap is the point-in-time value of one counter inside a
// Snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is a structured, JSON-serializable view of every registered
// instrument, sorted by name within each section. Its structure — the
// set of names, histogram bucket boundaries, and field layout — is
// deterministic for a given instrumented workload; only the observed
// values vary run to run. OBSERVABILITY.md documents every name the repo
// emits, and TestSnapshotMatchesObservabilityContract holds the two in
// sync.
type Snapshot struct {
	Schema     int             `json:"schema"`
	Counters   []CounterSnap   `json:"counters"`
	Histograms []HistogramSnap `json:"histograms"`
	Traces     []TraceSnap     `json:"traces"`
	Spans      []SpanSnap      `json:"spans"`
}

// Snapshot captures the current state of every instrument. Counters and
// histogram buckets are read atomically per value; a snapshot taken
// while events are in flight is internally consistent per instrument but
// not across instruments (a submit may be counted whose latency is not
// yet observed). On a nil registry it returns an empty snapshot with the
// current schema.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Schema:     SnapshotSchema,
		Counters:   []CounterSnap{},
		Histograms: []HistogramSnap{},
		Traces:     []TraceSnap{},
		Spans:      []SpanSnap{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	rings := make(map[string]*Ring, len(r.rings))
	for k, v := range r.rings {
		rings[k] = v
	}
	spans := make(map[string]*SpanBuffer, len(r.spans))
	for k, v := range r.spans {
		spans[k] = v
	}
	r.mu.Unlock()

	for name, c := range counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, h := range hists {
		s.Histograms = append(s.Histograms, h.snapshot(name))
	}
	for name, rg := range rings {
		s.Traces = append(s.Traces, rg.snapshot(name))
	}
	for name, b := range spans {
		s.Spans = append(s.Spans, b.snapshot(name))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	sort.Slice(s.Traces, func(i, j int) bool { return s.Traces[i].Name < s.Traces[j].Name })
	sort.Slice(s.Spans, func(i, j int) bool { return s.Spans[i].Name < s.Spans[j].Name })
	return s
}

// WriteText renders the snapshot as a human-readable report: counters as
// a name/value table, histograms with count, mean, min/max, and
// estimated p50/p95/p99 (the distribution view the paper's evaluation is
// built on — averages hide the commit-point and latency tails), a
// one-line summary per span buffer, and the tail of each trace ring.
func (s Snapshot) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# obs snapshot (schema %d)\n", s.Schema)
	if len(s.Counters) > 0 {
		fmt.Fprintf(tw, "\ncounter\tvalue\n")
		for _, c := range s.Counters {
			fmt.Fprintf(tw, "%s\t%d\n", c.Name, c.Value)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintf(tw, "\nhistogram\tcount\tmean\tmin\tmax\tp50\tp95\tp99\n")
		for _, h := range s.Histograms {
			fmt.Fprintf(tw, "%s\t%d\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\n",
				h.Name, h.Count, h.Mean(), h.Min, h.Max,
				h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		}
	}
	for _, sp := range s.Spans {
		fmt.Fprintf(tw, "\nspans %s\t(%d recorded, cap %d; export with WriteChromeTrace / /debug/trace)\n",
			sp.Name, sp.Recorded, sp.Cap)
	}
	for _, t := range s.Traces {
		fmt.Fprintf(tw, "\ntrace %s\t(%d emitted, cap %d)\n", t.Name, t.Emitted, t.Cap)
		events := t.Events
		const tail = 16
		if len(events) > tail {
			fmt.Fprintf(tw, "...\t%d older events elided\n", len(events)-tail)
			events = events[len(events)-tail:]
		}
		for _, e := range events {
			fmt.Fprintf(tw, "%d\t%s\t%s\t%s\n",
				e.Seq, time.Unix(0, e.At).UTC().Format("15:04:05.000"), e.Name, e.Detail)
		}
	}
	return tw.Flush()
}

// Report renders the registry's current snapshot as the human-readable
// WriteText report and returns it as a string — the quick way to dump
// state from tests or a debugger. Works on a nil registry (reports the
// empty snapshot).
func (r *Registry) Report() string {
	var b strings.Builder
	// WriteText cannot fail on a strings.Builder (its Write never errors).
	_ = r.Snapshot().WriteText(&b)
	return b.String()
}

// Handler returns an http.Handler serving the registry's Snapshot as an
// indented JSON document — the expvar-style dump cmd/gserve mounts at
// /metrics. Safe to call with a nil registry (serves the empty
// snapshot).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Encoding errors here mean the client went away; nothing to do.
		_ = enc.Encode(r.Snapshot())
	})
}

// TextHandler returns an http.Handler serving the human-readable report
// of WriteText — cmd/gserve mounts it at /metrics.txt. Safe with a nil
// registry.
func TextHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.Snapshot().WriteText(w)
	})
}
