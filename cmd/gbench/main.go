// Command gbench converts `go test -bench` output into a JSON summary.
// CI pipes benchmark runs through it to publish machine-readable
// artifacts (BENCH_parallel.json, BENCH_obs.json) so run-over-run
// regressions are diffable without scraping the text format.
//
// Usage:
//
//	go test -bench=. -benchtime=1x . | gbench -o BENCH_parallel.json
//	gbench -o out.json bench.txt
//	go test -bench=ObsDisabled ./internal/obs | gbench -obs -o BENCH_obs.json
//
// With no file argument, gbench reads stdin. With no -o, the JSON is
// written to stdout. Lines that are not benchmark results (headers,
// PASS/ok trailers, test chatter) are skipped; goos/goarch/pkg/cpu
// headers are captured into the summary when present.
//
// # Output schema
//
// The document is versioned by a top-level "schema" key; this gbench
// writes schema 2. Changes within a schema version are strictly
// additive.
//
//   - schema 1 (PR 2): "goos", "goarch", "pkg", "cpu" (strings, omitted
//     when absent from the input) and "benchmarks", an array of parsed
//     result lines — see Benchmark. Schema-1 documents predate the
//     "schema" key; readers should treat a missing key as 1.
//   - schema 2 (this PR): adds the "schema" key itself and, under -obs,
//     a "metrics" key holding an internal/obs Snapshot (itself versioned
//     by its own "schema" field, obs.SnapshotSchema) produced by the
//     deterministic obsdemo workload with -obs-seed (default 1). Without
//     -obs the "metrics" key is omitted.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/obsdemo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// SummarySchema is the "schema" value this gbench writes. See the
// package comment for the version history.
const SummarySchema = 2

// Summary is the JSON document gbench emits.
type Summary struct {
	Schema     int           `json:"schema"`
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	Pkg        string        `json:"pkg,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []Benchmark   `json:"benchmarks"`
	Metrics    *obs.Snapshot `json:"metrics,omitempty"`
}

// Benchmark is one parsed result line. Procs is the -N GOMAXPROCS
// suffix go test appends to the name (1 when absent). Metrics maps each
// reported unit (ns/op, B/op, plus any ReportMetric units) to its value.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// run executes gbench with the given arguments. Extracted from main for
// tests.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("gbench", flag.ContinueOnError)
	flags.SetOutput(stderr)
	out := flags.String("o", "", "write the JSON summary to this file instead of stdout")
	withObs := flags.Bool("obs", false, "embed an obs snapshot from the deterministic obsdemo workload under \"metrics\"")
	obsSeed := flags.Int64("obs-seed", 1, "seed for the -obs demo workload")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	in := stdin
	if flags.NArg() > 1 {
		fmt.Fprintln(stderr, "gbench: at most one input file")
		return 2
	}
	if flags.NArg() == 1 {
		f, err := os.Open(flags.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "gbench: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}

	sum, err := parse(in)
	if err != nil {
		fmt.Fprintf(stderr, "gbench: %v\n", err)
		return 1
	}
	if len(sum.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "gbench: no benchmark results in input")
		return 1
	}
	if *withObs {
		reg, err := obsdemo.Run(*obsSeed)
		if err != nil {
			fmt.Fprintf(stderr, "gbench: %v\n", err)
			return 1
		}
		snap := reg.Snapshot()
		sum.Metrics = &snap
	}

	enc, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "gbench: %v\n", err)
		return 1
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := stdout.Write(enc); err != nil {
			fmt.Fprintf(stderr, "gbench: %v\n", err)
			return 1
		}
		return 0
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(stderr, "gbench: %v\n", err)
		return 1
	}
	return 0
}

// parse reads go test -bench output, collecting header fields and every
// Benchmark result line.
func parse(r io.Reader) (*Summary, error) {
	sum := &Summary{Schema: SummarySchema, Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			sum.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			sum.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			sum.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			sum.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseResult(line)
			if ok {
				sum.Benchmarks = append(sum.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sum, nil
}

// parseResult parses one result line of the form
//
//	BenchmarkName-8   	     100	  12345 ns/op	 3.0 extra-unit
//
// Value/unit pairs after the iteration count populate Metrics. Lines
// that do not fit the shape (e.g. "BenchmarkFoo" alone on a line when
// output wraps) report ok=false and are skipped.
func parseResult(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	name := fields[0]
	procs := 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
			procs = n
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
