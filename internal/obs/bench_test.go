package obs_test

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// The disabled-path benchmarks prove the tentpole overhead claim: with
// no registry attached every instrument handle is nil and each event
// costs under 5 ns. CI runs these and publishes BENCH_obs.json via
// cmd/gbench. The sinks defeat dead-code elimination of the nil checks.

var (
	sinkTime time.Time
	sinkI64  int64
	sinkSpan *obs.Span
)

// BenchmarkObsDisabledCounterInc measures Counter.Inc on a nil counter —
// the cost an uninstrumented serve.Engine pays per submitted event.
func BenchmarkObsDisabledCounterInc(b *testing.B) {
	var c *obs.Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	sinkI64 = c.Value()
}

// BenchmarkObsDisabledHistogramObserve measures Histogram.Observe on a
// nil histogram.
func BenchmarkObsDisabledHistogramObserve(b *testing.B) {
	var h *obs.Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
	sinkI64 = h.Count()
}

// BenchmarkObsDisabledStartObserveSince measures the full disabled
// timing idiom — Start plus ObserveSince — which must skip the clock
// read entirely.
func BenchmarkObsDisabledStartObserveSince(b *testing.B) {
	var h *obs.Histogram
	for i := 0; i < b.N; i++ {
		start := obs.Start(h)
		obs.ObserveSince(h, start)
		sinkTime = start
	}
}

// BenchmarkObsDisabledRingEmit measures Ring.Emit on a nil ring.
func BenchmarkObsDisabledRingEmit(b *testing.B) {
	var r *obs.Ring
	for i := 0; i < b.N; i++ {
		r.Emit("ev", "")
	}
	sinkI64 = int64(r.Cap())
}

// BenchmarkObsDisabledSpanStart measures SpanBuffer.Start on a nil
// buffer — the per-gesture cost of an untraced serve.Engine.
func BenchmarkObsDisabledSpanStart(b *testing.B) {
	var sb *obs.SpanBuffer
	for i := 0; i < b.N; i++ {
		sinkSpan = sb.Start("gesture")
	}
}

// BenchmarkObsDisabledSpanChildEnd measures the full disabled per-point
// tracing idiom — Child, two attribute sets, End — which must skip the
// clock and every allocation.
func BenchmarkObsDisabledSpanChildEnd(b *testing.B) {
	var root *obs.Span
	for i := 0; i < b.N; i++ {
		sp := root.Child("decide")
		sp.SetAttrInt("point", int64(i))
		sp.SetAttr("best", "x")
		sp.End()
		sinkSpan = sp
	}
}

// BenchmarkObsDisabledSpanEvent measures Span.Event on a nil span.
func BenchmarkObsDisabledSpanEvent(b *testing.B) {
	var root *obs.Span
	for i := 0; i < b.N; i++ {
		root.Event("commit", "")
	}
	sinkI64 = int64(root.ID())
}

// BenchmarkObsDisabledWindowedCounterAdd measures WindowedCounter.Add on
// a nil windowed counter — the windowed instruments inherit the same
// disabled-path contract as their cumulative siblings.
func BenchmarkObsDisabledWindowedCounterAdd(b *testing.B) {
	var w *obs.WindowedCounter
	for i := 0; i < b.N; i++ {
		w.Add(1)
	}
	sinkI64++
}

// BenchmarkObsDisabledWindowedHistogramObserve measures
// WindowedHistogram.Observe on a nil windowed histogram.
func BenchmarkObsDisabledWindowedHistogramObserve(b *testing.B) {
	var w *obs.WindowedHistogram
	for i := 0; i < b.N; i++ {
		w.Observe(float64(i))
	}
	sinkI64++
}

// BenchmarkObsDisabledGaugeSet measures Gauge.Set on a nil gauge.
func BenchmarkObsDisabledGaugeSet(b *testing.B) {
	var g *obs.Gauge
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
	sinkI64 = int64(g.Value())
}

// BenchmarkObsDisabledObserveExemplar measures Histogram.ObserveExemplar
// on a nil histogram — exemplar recording must vanish with the registry.
func BenchmarkObsDisabledObserveExemplar(b *testing.B) {
	var h *obs.Histogram
	for i := 0; i < b.N; i++ {
		h.ObserveExemplar(float64(i), 1, 2)
	}
	sinkI64 = h.Count()
}

// Enabled-path reference points, for the overhead table in
// OBSERVABILITY.md.

func BenchmarkObsCounterInc(b *testing.B) {
	c := obs.New().Counter("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	sinkI64 = c.Value()
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	h := obs.New().Histogram("bench", obs.LatencyBuckets())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000000))
	}
	sinkI64 = h.Count()
}

// BenchmarkObsWindowedCounterAdd measures the enabled windowed counter
// path: one clock read, a CAS-free epoch check, and an atomic add.
func BenchmarkObsWindowedCounterAdd(b *testing.B) {
	w := obs.New().WindowedCounter("bench", 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Add(1)
	}
	sinkI64++
}

// BenchmarkObsWindowedHistogramObserve measures the enabled windowed
// histogram path — the window-rotation cost BENCH_slo.json publishes.
func BenchmarkObsWindowedHistogramObserve(b *testing.B) {
	w := obs.New().WindowedHistogram("bench", obs.LatencyBuckets(), 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Observe(float64(i % 1000000))
	}
	sinkI64++
}

// BenchmarkObsObserveExemplar measures the enabled exemplar-record path
// (one histogram observation plus one exemplar allocation + store) —
// the per-gesture price of outlier-to-trace linking.
func BenchmarkObsObserveExemplar(b *testing.B) {
	h := obs.New().Histogram("bench", obs.LatencyBuckets())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ObserveExemplar(float64(i%1000000), uint64(i), uint64(i))
	}
	sinkI64 = h.Count()
}

func BenchmarkObsRingEmit(b *testing.B) {
	r := obs.New().Ring("bench", 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit("ev", "")
	}
	sinkI64 = int64(r.Cap())
}

// BenchmarkObsSpanRecord measures the enabled tracing cost of one full
// child span (Child + attr + End = ID allocation, two clock reads, one
// record publication) — the per-point price a traced gesture pays.
func BenchmarkObsSpanRecord(b *testing.B) {
	sb := obs.New().Spans("bench", 1024)
	root := sb.Start("root")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := root.Child("decide")
		sp.SetAttrInt("point", int64(i))
		sp.End()
	}
	sinkI64 = int64(sb.Recorded())
}

// TestDisabledPathUnderFiveNanoseconds enforces the <5ns/event claim
// with testing.Benchmark. Timing assertions are meaningless under the
// race detector's instrumentation (and noisy in -short environments), so
// the test only runs in a plain `go test`; the race-gated tier-1 run
// still executes every benchmark body once via -benchtime style
// invocation in CI.
func TestDisabledPathUnderFiveNanoseconds(t *testing.T) {
	if raceEnabled {
		t.Skip("timing assertion is not meaningful under -race instrumentation")
	}
	if testing.Short() {
		t.Skip("timing assertion skipped in -short mode")
	}
	const limit = 5.0 // ns/event, the tentpole contract
	for _, bench := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"CounterInc", BenchmarkObsDisabledCounterInc},
		{"HistogramObserve", BenchmarkObsDisabledHistogramObserve},
		{"StartObserveSince", BenchmarkObsDisabledStartObserveSince},
		{"RingEmit", BenchmarkObsDisabledRingEmit},
		{"SpanStart", BenchmarkObsDisabledSpanStart},
		{"SpanChildEnd", BenchmarkObsDisabledSpanChildEnd},
		{"SpanEvent", BenchmarkObsDisabledSpanEvent},
		{"WindowedCounterAdd", BenchmarkObsDisabledWindowedCounterAdd},
		{"WindowedHistogramObserve", BenchmarkObsDisabledWindowedHistogramObserve},
		{"GaugeSet", BenchmarkObsDisabledGaugeSet},
		{"ObserveExemplar", BenchmarkObsDisabledObserveExemplar},
	} {
		r := testing.Benchmark(bench.fn)
		perOp := float64(r.T.Nanoseconds()) / float64(r.N)
		t.Logf("disabled %s: %.2f ns/event", bench.name, perOp)
		if perOp >= limit {
			t.Errorf("disabled %s costs %.2f ns/event, contract is <%g ns", bench.name, perOp, limit)
		}
	}
}
