// Package netfault is the connection-level counterpart of
// internal/fault: a deterministic, seeded fault injector that wraps
// net.Conn / net.Listener and corrupts the byte stream itself — split
// writes, short reads, truncation mid-frame, bit corruption, stalls,
// latency jitter, and connection resets — so the wire ingest path
// (internal/wire + internal/ingest) can be chaos-tested over real
// sockets under -race against exact invariants.
//
// Determinism mirrors internal/fault: the fate of the i-th I/O
// operation in a given direction on the connection labelled c is a pure
// FNV-1a function of (seed, direction, c, i) — never of timing or
// goroutine scheduling — so two runs with the same seed inject exactly
// the same faults. (The ISSUE's "byte-range i" is realized as the
// operation index: writes are frame-aligned in this stack, so the i-th
// write is the i-th frame.)
//
// Two drivers, as in internal/fault: Schedule draws fates from seeded
// per-kind rates (independent read- and write-side rate tables), and
// Script pins exact (label, direction, op index, kind) rules for
// isolation tests and the obsdemo's deterministic segment. Both count
// every applied injection into the netfault.injected.* counters when
// Instrument attached a registry (see OBSERVABILITY.md), and both keep
// always-on atomic tallies readable via Counts, so a load generator can
// report injections without carrying a registry. All entry points are
// nil-safe: a nil *Schedule or *Script wraps nothing and decides
// KindNone.
//
// Detectability note: a bit flip anywhere in a wire frame is surfaced
// by the decoder as a typed error (ErrCorrupt / ErrOversized /
// ErrTruncated / ErrVersion) — except inside the 8-byte client-send
// stamp, the one header region the CRC deliberately excludes. Write-
// side corruption therefore avoids the stamp window (writes are
// frame-aligned, so the window's offset is known); read-side corruption
// flips arbitrary buffered bytes and may land in a stamp, which decodes
// as a skew-clamped bogus latency rather than a typed error. A harness
// that asserts "every corrupted frame dies with a fatal response" must
// inject corruption on the writer side.
package netfault

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Kind enumerates the injectable connection faults.
type Kind int

// Connection fault kinds. Split applies only to writes, ShortRead only
// to reads; the rest apply to either direction.
const (
	// KindNone is the no-fault decision.
	KindNone Kind = iota
	// KindSplit delivers one write as two back-to-back underlying
	// writes, exercising reassembly across arbitrary TCP segmentation.
	KindSplit
	// KindShortRead truncates one read to a single byte, forcing the
	// reader to reassemble frames from fragmented deliveries.
	KindShortRead
	// KindCorrupt flips one bit of the operation's bytes. On a frame
	// write the flip avoids the CRC-exempt stamp window, so the peer's
	// decoder must fail with a typed error, never mis-decode.
	KindCorrupt
	// KindTruncate ends the stream mid-operation: a write delivers a
	// prefix then closes the connection; a read closes and reports EOF.
	KindTruncate
	// KindStall sleeps for the plan's StallFor before performing the
	// operation, simulating a hung peer or a congested path.
	KindStall
	// KindJitter sleeps a deterministic duration in [0, MaxDelay)
	// before the operation, simulating network latency variance.
	KindJitter
	// KindReset closes the connection and fails the operation,
	// simulating a peer reset (RST) mid-conversation.
	KindReset

	kindCount
)

// readKinds are the kinds a read operation can draw, in rate-table order.
var readKinds = []Kind{KindShortRead, KindCorrupt, KindTruncate, KindStall, KindJitter, KindReset}

// writeKinds are the kinds a write operation can draw, in rate-table order.
var writeKinds = []Kind{KindSplit, KindCorrupt, KindTruncate, KindStall, KindJitter, KindReset}

// String names the kind as it appears in the netfault.injected.*
// metric suffix ("split", "short_read", "corrupt", "truncate", "stall",
// "jitter", "reset"; KindNone is "none").
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindSplit:
		return "split"
	case KindShortRead:
		return "short_read"
	case KindCorrupt:
		return "corrupt"
	case KindTruncate:
		return "truncate"
	case KindStall:
		return "stall"
	case KindJitter:
		return "jitter"
	case KindReset:
		return "reset"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Dir selects the I/O direction of a fault decision.
type Dir byte

// Fault directions: the byte doubles as the hash domain separating the
// read and write decision streams.
const (
	// DirRead is the inbound direction (Conn.Read).
	DirRead Dir = 'r'
	// DirWrite is the outbound direction (Conn.Write).
	DirWrite Dir = 'w'
)

// ErrInjected tags every error a wrapped connection fabricates
// (truncation, reset), so a harness can tell injected failures from
// real ones with errors.Is.
var ErrInjected = fmt.Errorf("netfault: injected failure")

// Plan declares a seeded connection-fault mix: per-operation
// probabilities for each kind, split by direction.
type Plan struct {
	// Seed selects the deterministic decision stream. Two Schedules
	// built from equal Plans make identical decisions.
	Seed int64
	// ReadRates maps read-side kinds (ShortRead, Corrupt, Truncate,
	// Stall, Jitter, Reset) to per-read probabilities in [0, 1],
	// summing to at most 1.
	ReadRates map[Kind]float64
	// WriteRates maps write-side kinds (Split, Corrupt, Truncate,
	// Stall, Jitter, Reset) to per-write probabilities in [0, 1],
	// summing to at most 1.
	WriteRates map[Kind]float64
	// StallFor is the KindStall sleep; 0 defaults to 20ms.
	StallFor time.Duration
	// MaxDelay caps the KindJitter sleep; 0 defaults to 2ms.
	MaxDelay time.Duration
}

// injectMetrics is the per-kind counter set plus always-on atomic
// tallies. The zero value is the uninstrumented state: notes still
// tally, the obs side is a nil-safe no-op.
type injectMetrics struct {
	byKind [kindCount]*obs.Counter // netfault.injected.<kind>
	total  *obs.Counter            // netfault.injected.total
	tally  [kindCount]atomic.Uint64
}

func (im *injectMetrics) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for k := KindNone + 1; k < kindCount; k++ {
		im.byKind[k] = reg.Counter("netfault.injected." + k.String())
	}
	im.total = reg.Counter("netfault.injected.total")
}

func (im *injectMetrics) note(k Kind) {
	if k <= KindNone || k >= kindCount {
		return
	}
	im.tally[k].Add(1)
	im.byKind[k].Inc()
	im.total.Inc()
}

func (im *injectMetrics) counts() map[string]uint64 {
	out := map[string]uint64{}
	for k := KindNone + 1; k < kindCount; k++ {
		if n := im.tally[k].Load(); n > 0 {
			out[k.String()] = n
		}
	}
	return out
}

// timing is the sleep configuration a Conn consults for KindStall and
// KindJitter.
type timing struct {
	stall time.Duration
	delay time.Duration
	sleep func(time.Duration)
}

func (t *timing) defaults() {
	if t.stall == 0 {
		t.stall = 20 * time.Millisecond
	}
	if t.delay == 0 {
		t.delay = 2 * time.Millisecond
	}
	if t.sleep == nil {
		t.sleep = time.Sleep
	}
}

// faults is what a wrapped Conn needs from its driver: a deterministic
// decision per operation (which notes itself as injected when
// non-None, since the Conn is guaranteed to apply it) and the sleep
// configuration.
type faults interface {
	decide(d Dir, label string, index int) Kind
	timing() *timing
}

// Schedule draws deterministic connection-fault decisions from seeded
// rates: the fate of operation i in direction d on the connection
// labelled c depends only on (seed, d, c, i). Safe for concurrent use;
// nil-safe (a nil *Schedule never wraps and never injects).
type Schedule struct {
	seed     int64
	readCum  []float64 // cumulative rates aligned with readKinds
	writeCum []float64 // cumulative rates aligned with writeKinds
	m        injectMetrics
	t        timing
	accepts  atomic.Int64
}

// NewSchedule validates a Plan and builds its Schedule. Rates outside
// [0, 1], kinds outside their direction's table, negative durations,
// or a direction summing past 1 are errors.
func NewSchedule(p Plan) (*Schedule, error) {
	if p.StallFor < 0 || p.MaxDelay < 0 {
		return nil, fmt.Errorf("netfault: negative duration (stall %v, delay %v)", p.StallFor, p.MaxDelay)
	}
	s := &Schedule{seed: p.Seed, t: timing{stall: p.StallFor, delay: p.MaxDelay}}
	s.t.defaults()
	var err error
	if s.readCum, err = cumRates("read", p.ReadRates, readKinds); err != nil {
		return nil, err
	}
	if s.writeCum, err = cumRates("write", p.WriteRates, writeKinds); err != nil {
		return nil, err
	}
	return s, nil
}

// cumRates validates one direction's rate map against its kind table
// and folds it into a cumulative-probability slice.
func cumRates(dir string, rates map[Kind]float64, table []Kind) ([]float64, error) {
	known := map[Kind]bool{}
	for _, k := range table {
		known[k] = true
	}
	kinds := make([]Kind, 0, len(rates))
	for k := range rates {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		r := rates[k]
		if !known[k] {
			return nil, fmt.Errorf("netfault: %s rate for inapplicable kind %v", dir, k)
		}
		if math.IsNaN(r) || r < 0 || r > 1 {
			return nil, fmt.Errorf("netfault: %s rate for %v must be in [0, 1], got %v", dir, k, r)
		}
	}
	cum := make([]float64, 0, len(table))
	sum := 0.0
	for _, k := range table {
		sum += rates[k]
		cum = append(cum, sum)
	}
	if sum > 1 {
		return nil, fmt.Errorf("netfault: %s rates sum to %v > 1", dir, sum)
	}
	return cum, nil
}

// Instrument attaches the netfault.injected.* counters (one per kind
// plus a total; see OBSERVABILITY.md) to the registry. Call before
// wrapping connections; a nil registry (or receiver) is a no-op.
func (s *Schedule) Instrument(reg *obs.Registry) {
	if s == nil {
		return
	}
	s.m.instrument(reg)
}

// SetSleep replaces the real time.Sleep behind KindStall and KindJitter
// (virtual time in tests). Call before wrapping connections; not safe
// concurrently with I/O. Nil-safe; a nil fn restores time.Sleep.
func (s *Schedule) SetSleep(fn func(time.Duration)) {
	if s == nil {
		return
	}
	if fn == nil {
		fn = time.Sleep
	}
	s.t.sleep = fn
}

// Counts snapshots the always-on injection tallies: metric suffix →
// applied count, nonzero kinds only. Nil-safe (returns an empty map).
func (s *Schedule) Counts() map[string]uint64 {
	if s == nil {
		return map[string]uint64{}
	}
	return s.m.counts()
}

// roll returns a uniform [0, 1) draw for one (direction, label, index)
// triple — the deterministic coin behind every decision.
func (s *Schedule) roll(d Dir, label string, index int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(s.seed))
	h.Write(buf[:])
	h.Write([]byte{byte(d)})
	h.Write([]byte(label))
	binary.LittleEndian.PutUint64(buf[:], uint64(index))
	h.Write(buf[:])
	// Top 53 bits -> [0, 1) with full double precision.
	return float64(h.Sum64()>>11) / (1 << 53)
}

// Decide returns the fault for the index-th operation in direction d on
// the connection labelled label, counting every non-None decision as
// injected (wrapped Conns are guaranteed to apply it). Exposed so a
// harness can predict a run's fault set without performing I/O.
// Nil-safe: returns KindNone.
func (s *Schedule) Decide(d Dir, label string, index int) Kind {
	if s == nil {
		return KindNone
	}
	table, cum := readKinds, s.readCum
	if d == DirWrite {
		table, cum = writeKinds, s.writeCum
	}
	if len(cum) == 0 || cum[len(cum)-1] == 0 {
		return KindNone
	}
	u := s.roll(d, label, index)
	for i, c := range cum {
		if u < c {
			k := table[i]
			s.m.note(k)
			return k
		}
	}
	return KindNone
}

func (s *Schedule) decide(d Dir, label string, index int) Kind { return s.Decide(d, label, index) }

func (s *Schedule) timing() *timing { return &s.t }

// Conn wraps c so its reads and writes draw faults from the schedule
// under the given label. Nil-safe: a nil *Schedule returns c unwrapped.
func (s *Schedule) Conn(c net.Conn, label string) net.Conn {
	if s == nil {
		return c
	}
	return &Conn{Conn: c, f: s, label: label}
}

// Listener wraps ln so every accepted connection is fault-wrapped with
// an accept-indexed label ("a0", "a1", ...). Nil-safe: a nil *Schedule
// returns ln unwrapped.
func (s *Schedule) Listener(ln net.Listener) net.Listener {
	if s == nil {
		return ln
	}
	return &listener{Listener: ln, s: s}
}

// listener is the accept-side wrapper behind Schedule.Listener.
type listener struct {
	net.Listener
	s *Schedule
}

// Accept wraps the next connection with a deterministic accept-indexed
// label.
func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	n := l.s.accepts.Add(1) - 1
	return l.s.Conn(c, fmt.Sprintf("a%d", n)), nil
}

// scriptKey addresses one exact operation: connection label, direction,
// 0-based op index.
type scriptKey struct {
	label string
	d     Dir
	index int
}

// Script is the targeted counterpart of Schedule: explicit
// (label, direction, op index) → Kind rules, for workloads that need
// exactly one fault in exactly one place (the obsdemo segment, the
// isolation tests). Configure with Set before any I/O; decisions are
// then read-only and safe for concurrent use. Nil-safe like Schedule.
type Script struct {
	rules map[scriptKey]Kind
	m     injectMetrics
	t     timing
}

// NewScript returns an empty script (injects nothing until Set).
func NewScript() *Script {
	sc := &Script{rules: map[scriptKey]Kind{}}
	sc.t.defaults()
	return sc
}

// Set schedules kind at the label's 0-based operation index in
// direction d and returns the script for chaining. Kinds inapplicable
// to the direction (Split on a read, ShortRead on a write) are applied
// as no-fault. Not safe concurrently with I/O — finish scripting first.
func (sc *Script) Set(label string, d Dir, index int, k Kind) *Script {
	sc.rules[scriptKey{label: label, d: d, index: index}] = k
	return sc
}

// Instrument attaches the netfault.injected.* counters to the registry,
// exactly as Schedule.Instrument does. Nil-safe.
func (sc *Script) Instrument(reg *obs.Registry) {
	if sc == nil {
		return
	}
	sc.m.instrument(reg)
}

// SetSleep replaces the sleep behind KindStall and KindJitter; see
// Schedule.SetSleep.
func (sc *Script) SetSleep(fn func(time.Duration)) {
	if sc == nil {
		return
	}
	if fn == nil {
		fn = time.Sleep
	}
	sc.t.sleep = fn
}

// Counts snapshots the always-on injection tallies; see
// Schedule.Counts. Nil-safe.
func (sc *Script) Counts() map[string]uint64 {
	if sc == nil {
		return map[string]uint64{}
	}
	return sc.m.counts()
}

func (sc *Script) decide(d Dir, label string, index int) Kind {
	if sc == nil {
		return KindNone
	}
	k := sc.rules[scriptKey{label: label, d: d, index: index}]
	if k <= KindNone || k >= kindCount {
		return KindNone
	}
	if (d == DirRead && k == KindSplit) || (d == DirWrite && k == KindShortRead) {
		return KindNone
	}
	sc.m.note(k)
	return k
}

func (sc *Script) timing() *timing { return &sc.t }

// Conn wraps c so its operations follow the script under the given
// label. Nil-safe: a nil *Script returns c unwrapped.
func (sc *Script) Conn(c net.Conn, label string) net.Conn {
	if sc == nil {
		return c
	}
	return &Conn{Conn: c, f: sc, label: label}
}

// Conn is a fault-wrapped net.Conn: each Read and Write consults the
// driver for the operation's fate and applies it. Deadlines, addresses,
// and Close pass through to the wrapped connection. Read and Write are
// each single-sequence (op indices are atomic, so one concurrent reader
// plus one concurrent writer — the net.Conn contract — is safe).
type Conn struct {
	net.Conn
	f      faults
	label  string
	rd, wr atomic.Int64
}

// mixU is the seed-independent deterministic draw behind fault
// parameters (split point, corruption offset, jitter fraction) — a
// separate stream from the fate decision so parameters don't perturb
// fates.
func mixU(label string, index int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(index))
	h.Write(buf[:])
	return h.Sum64()
}

// frameStampLo/frameStampHi delimit the CRC-exempt client-send stamp
// window in a v2 frame header (bytes [3, 11)); write-side corruption
// skips it so every injected flip is decoder-detectable.
const (
	frameStampLo = 3
	frameStampHi = 11
)

// corruptPos picks the deterministic byte to flip in an n-byte write,
// avoiding the stamp window when the buffer is long enough to carry a
// v2 header.
func corruptPos(n int, u uint64) int {
	if n > frameStampHi {
		i := int(u % uint64(n-(frameStampHi-frameStampLo)))
		if i >= frameStampLo {
			i += frameStampHi - frameStampLo
		}
		return i
	}
	return int(u % uint64(n))
}

// jitterFor converts the parameter draw into a sleep in [0, max).
func jitterFor(u uint64, max time.Duration) time.Duration {
	frac := float64(u>>11) / (1 << 53)
	return time.Duration(frac * float64(max))
}

// Read reads from the wrapped connection, applying the read-side fault
// drawn for this operation: short reads shrink the buffer to one byte,
// corruption flips one bit of the returned bytes, truncation closes the
// connection and reports io.EOF, resets close it and fail with
// ErrInjected, stalls and jitter sleep first.
func (c *Conn) Read(b []byte) (int, error) {
	idx := int(c.rd.Add(1) - 1)
	t := c.f.timing()
	switch c.f.decide(DirRead, c.label, idx) {
	case KindShortRead:
		if len(b) > 1 {
			b = b[:1]
		}
	case KindCorrupt:
		n, err := c.Conn.Read(b)
		if n > 0 {
			u := mixU(c.label, idx)
			b[int(u%uint64(n))] ^= 1 << ((u >> 33) % 8)
		}
		return n, err
	case KindTruncate:
		c.Conn.Close()
		return 0, io.EOF
	case KindReset:
		c.Conn.Close()
		return 0, fmt.Errorf("%w: read reset on %s op %d", ErrInjected, c.label, idx)
	case KindStall:
		t.sleep(t.stall)
	case KindJitter:
		t.sleep(jitterFor(mixU(c.label, idx), t.delay))
	}
	return c.Conn.Read(b)
}

// Write writes to the wrapped connection, applying the write-side fault
// drawn for this operation: splits deliver the buffer as two underlying
// writes, corruption flips one bit (avoiding the frame stamp window),
// truncation delivers a deterministic prefix then closes, resets close
// and fail with ErrInjected, stalls and jitter sleep first.
func (c *Conn) Write(b []byte) (int, error) {
	idx := int(c.wr.Add(1) - 1)
	t := c.f.timing()
	switch c.f.decide(DirWrite, c.label, idx) {
	case KindSplit:
		if len(b) >= 2 {
			cut := 1 + int(mixU(c.label, idx)%uint64(len(b)-1))
			n, err := c.Conn.Write(b[:cut])
			if err != nil {
				return n, err
			}
			m, err := c.Conn.Write(b[cut:])
			return n + m, err
		}
	case KindCorrupt:
		if len(b) > 0 {
			u := mixU(c.label, idx)
			cp := make([]byte, len(b))
			copy(cp, b)
			cp[corruptPos(len(cp), u)] ^= 1 << ((u >> 33) % 8)
			n, err := c.Conn.Write(cp)
			return n, err
		}
	case KindTruncate:
		cut := 0
		if len(b) > 0 {
			cut = int(mixU(c.label, idx) % uint64(len(b)))
		}
		n, _ := c.Conn.Write(b[:cut])
		c.Conn.Close()
		return n, fmt.Errorf("%w: write truncated after %d/%d bytes on %s op %d", ErrInjected, n, len(b), c.label, idx)
	case KindReset:
		c.Conn.Close()
		return 0, fmt.Errorf("%w: write reset on %s op %d", ErrInjected, c.label, idx)
	case KindStall:
		t.sleep(t.stall)
	case KindJitter:
		t.sleep(jitterFor(mixU(c.label, idx), t.delay))
	}
	return c.Conn.Write(b)
}
