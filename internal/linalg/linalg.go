// Package linalg implements the small amount of dense linear algebra the
// statistical gesture recognizer needs: vectors, row-major matrices,
// Gauss-Jordan inversion with partial pivoting, and the quadratic forms
// behind the Mahalanobis distance of Duda & Hart that the paper leans on
// for both classification and eager-recognition training.
//
// The matrices involved are tiny (the feature space has 13 dimensions, the
// AUC doubles the class count, nothing exceeds a few dozen rows), so the
// implementation favors clarity and numerical robustness over asymptotics.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Vec is a dense float64 vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product of v and w. It panics on length mismatch:
// mismatched feature dimensions always indicate a bug upstream — every
// data-carrying entry point (classifier, features) validates dimensions
// and returns an error before vectors reach these kernels.
func (v Vec) Dot(w Vec) float64 {
	if len(v) != len(w) {
		//lint:ignore nopanic shape invariant, validated at data entry points
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	s := 0.0
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Sub returns v - w as a new vector.
func (v Vec) Sub(w Vec) Vec {
	if len(v) != len(w) {
		//lint:ignore nopanic shape invariant, validated at data entry points
		panic(fmt.Sprintf("linalg: Sub length mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Add returns v + w as a new vector.
func (v Vec) Add(w Vec) Vec {
	if len(v) != len(w) {
		//lint:ignore nopanic shape invariant, validated at data entry points
		panic(fmt.Sprintf("linalg: Add length mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// AddScaled adds s*w to v in place.
func (v Vec) AddScaled(s float64, w Vec) {
	if len(v) != len(w) {
		//lint:ignore nopanic shape invariant, validated at data entry points
		panic(fmt.Sprintf("linalg: AddScaled length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += s * w[i]
	}
}

// Scale multiplies v by s in place.
func (v Vec) Scale(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Norm returns the Euclidean norm of v.
func (v Vec) Norm() float64 {
	return math.Sqrt(v.Dot(v))
}

// Mat is a dense row-major matrix. The zero value is unusable; construct
// with NewMat or Identity. Fields are exported so trained classifiers can be
// serialized with encoding/json.
type Mat struct {
	Rows, Cols int
	A          []float64 // len Rows*Cols, row-major
}

// NewMat returns a zero matrix with the given shape.
func NewMat(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		//lint:ignore nopanic construction invariant: dimensions are compile-time or validated-options constants
		panic("linalg: NewMat with non-positive dimension")
	}
	return &Mat{Rows: rows, Cols: cols, A: make([]float64, rows*cols)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns the element at row r, column c.
func (m *Mat) At(r, c int) float64 { return m.A[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Mat) Set(r, c int, v float64) { m.A[r*m.Cols+c] = v }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.A, m.A)
	return out
}

// MulVec returns m * v.
func (m *Mat) MulVec(v Vec) Vec {
	if m.Cols != len(v) {
		//lint:ignore nopanic shape invariant, validated at data entry points
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := make(Vec, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.A[r*m.Cols : (r+1)*m.Cols]
		s := 0.0
		for c, rv := range row {
			s += rv * v[c]
		}
		out[r] = s
	}
	return out
}

// Mul returns m * n.
func (m *Mat) Mul(n *Mat) *Mat {
	if m.Cols != n.Rows {
		//lint:ignore nopanic shape invariant, validated at data entry points
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMat(m.Rows, n.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(r, k)
			if a == 0 {
				continue
			}
			for c := 0; c < n.Cols; c++ {
				out.A[r*out.Cols+c] += a * n.At(k, c)
			}
		}
	}
	return out
}

// AddDiag adds lambda to every diagonal element in place (ridge term).
func (m *Mat) AddDiag(lambda float64) {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.A[i*m.Cols+i] += lambda
	}
}

// MaxAbs returns the largest absolute element of m, or 0 for an all-zero
// matrix. It is used to scale the singularity threshold and ridge.
func (m *Mat) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.A {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// ErrSingular is returned by Invert when the matrix is singular (or so
// close to singular that inversion would be numerically meaningless).
var ErrSingular = errors.New("linalg: matrix is singular")

// Invert returns the inverse of square matrix m using Gauss-Jordan
// elimination with partial pivoting. It returns ErrSingular when a pivot
// falls below a scale-relative threshold. m is not modified.
func Invert(m *Mat) (*Mat, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: cannot invert %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	// Augmented [work | inv], both mutated in place.
	work := m.Clone()
	inv := Identity(n)
	scale := work.MaxAbs()
	if scale == 0 {
		return nil, ErrSingular
	}
	tol := scale * float64(n) * 1e-14
	for col := 0; col < n; col++ {
		// Partial pivoting: find the largest |pivot| at or below the diagonal.
		pr := col
		pmax := math.Abs(work.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := math.Abs(work.At(r, col)); a > pmax {
				pmax, pr = a, r
			}
		}
		if pmax <= tol {
			return nil, ErrSingular
		}
		if pr != col {
			swapRows(work, pr, col)
			swapRows(inv, pr, col)
		}
		// Normalize the pivot row.
		p := work.At(col, col)
		scaleRow(work, col, 1/p)
		scaleRow(inv, col, 1/p)
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			addScaledRow(work, r, col, -f)
			addScaledRow(inv, r, col, -f)
		}
	}
	return inv, nil
}

func swapRows(m *Mat, a, b int) {
	ra := m.A[a*m.Cols : (a+1)*m.Cols]
	rb := m.A[b*m.Cols : (b+1)*m.Cols]
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

func scaleRow(m *Mat, r int, s float64) {
	row := m.A[r*m.Cols : (r+1)*m.Cols]
	for i := range row {
		row[i] *= s
	}
}

func addScaledRow(m *Mat, dst, src int, s float64) {
	rd := m.A[dst*m.Cols : (dst+1)*m.Cols]
	rs := m.A[src*m.Cols : (src+1)*m.Cols]
	for i := range rd {
		rd[i] += s * rs[i]
	}
}

// InvertRegularized inverts m, adding an escalating ridge term when m is
// singular. This is the documented stand-in for the paper's unspecified
// handling of singular covariance estimates (which arise, e.g., when a
// feature has zero variance across all training examples — the GDP "dot"
// gesture produces several such features). It returns the inverse and the
// ridge that was ultimately applied (0 when none was needed).
func InvertRegularized(m *Mat) (*Mat, float64, error) {
	if inv, err := Invert(m); err == nil {
		return inv, 0, nil
	}
	scale := m.MaxAbs()
	if scale == 0 {
		scale = 1
	}
	lambda := scale * 1e-8
	for i := 0; i < 12; i++ {
		work := m.Clone()
		work.AddDiag(lambda)
		if inv, err := Invert(work); err == nil {
			return inv, lambda, nil
		}
		lambda *= 10
	}
	return nil, 0, fmt.Errorf("linalg: regularized inversion failed: %w", ErrSingular)
}

// Solve returns x with m*x = b, via the inverse (the matrices here are at
// most a few dozen rows, so a dedicated factorization would be noise). It
// returns ErrSingular when m is singular and an error on shape mismatch.
func Solve(m *Mat, b Vec) (Vec, error) {
	if m.Rows != m.Cols || m.Rows != len(b) {
		return nil, fmt.Errorf("linalg: cannot solve %dx%d system with %d-vector", m.Rows, m.Cols, len(b))
	}
	inv, err := Invert(m)
	if err != nil {
		return nil, err
	}
	return inv.MulVec(b), nil
}

// BlendIdentity returns (1-w)*m + w*I — the covariance-blending fallback
// for singular estimates: as w grows the result interpolates from the
// measured matrix to the (always invertible) identity metric. w must be
// in [0, 1]; m must be square.
func BlendIdentity(m *Mat, w float64) *Mat {
	out := m.Clone()
	for i := range out.A {
		out.A[i] *= 1 - w
	}
	n := out.Rows
	if out.Cols < n {
		n = out.Cols
	}
	for i := 0; i < n; i++ {
		out.A[i*out.Cols+i] += w
	}
	return out
}

// AllFinite reports whether every element of v is finite (no NaN/Inf).
func (v Vec) AllFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// AllFinite reports whether every element of m is finite (no NaN/Inf).
func (m *Mat) AllFinite() bool {
	return Vec(m.A).AllFinite()
}

// QuadForm returns d' * m * d — the quadratic form at the heart of the
// Mahalanobis distance, where m is an inverse covariance matrix and d a
// difference from a class mean.
func QuadForm(m *Mat, d Vec) float64 {
	if m.Rows != len(d) || m.Cols != len(d) {
		//lint:ignore nopanic shape invariant, validated at data entry points
		panic(fmt.Sprintf("linalg: QuadForm shape mismatch %dx%d with %d", m.Rows, m.Cols, len(d)))
	}
	s := 0.0
	for r := 0; r < m.Rows; r++ {
		row := m.A[r*m.Cols : (r+1)*m.Cols]
		dr := d[r]
		if dr == 0 {
			continue
		}
		inner := 0.0
		for c, rv := range row {
			inner += rv * d[c]
		}
		s += dr * inner
	}
	return s
}

// Mahalanobis returns sqrt(max(0, (a-b)' inv (a-b))): the Mahalanobis
// distance between a and b under the metric given by the inverse covariance
// inv. Negative quadratic forms (possible with a regularized or slightly
// asymmetric inverse) clamp to zero.
func Mahalanobis(inv *Mat, a, b Vec) float64 {
	q := QuadForm(inv, a.Sub(b))
	if q < 0 {
		q = 0
	}
	return math.Sqrt(q)
}
