package wire

import (
	"bufio"
	"bytes"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"testing"
)

// payloadOf extracts the validated payload from a complete frame.
func payloadOf(t *testing.T, frame []byte) []byte {
	t.Helper()
	payload, _, n, err := splitFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frame) {
		t.Fatalf("splitFrame consumed %d of %d bytes", n, len(frame))
	}
	return payload
}

// sampleEvents builds a deterministic mixed-session batch: two sessions
// interleaved, down/move/up kinds, negative-able deltas, and non-finite
// coordinates (which the wire must carry verbatim).
func sampleEvents() []Event {
	return []Event{
		{Session: "alpha", Finger: 0, Kind: KindDown, X: 10, Y: 20, TMicros: 1_000_000},
		{Session: "beta", Finger: 1, Kind: KindDown, X: -3.5, Y: 0.25, TMicros: 999_900},
		{Session: "alpha", Finger: 0, Kind: KindMove, X: 11.5, Y: 21.25, TMicros: 1_020_000},
		{Session: "beta", Finger: 1, Kind: KindMove, X: math.NaN(), Y: math.Inf(1), TMicros: 1_000_100},
		{Session: "alpha", Finger: 0, Kind: KindUp, X: 12, Y: 22, TMicros: 1_040_000},
		{Session: "beta", Finger: 1, Kind: KindUp, X: -4, Y: 1, TMicros: 1_000_200},
	}
}

// eventsEqual compares events bit-for-bit (NaN-safe).
func eventsEqual(a, b Event) bool {
	return a.Session == b.Session && a.Finger == b.Finger && a.Kind == b.Kind &&
		math.Float64bits(a.X) == math.Float64bits(b.X) &&
		math.Float64bits(a.Y) == math.Float64bits(b.Y) &&
		a.TMicros == b.TMicros
}

// TestRoundTripSingleFrame: Decode(Encode(events)) returns the events
// bit-for-bit, including NaN/Inf coordinates.
func TestRoundTripSingleFrame(t *testing.T) {
	events := sampleEvents()
	frame, err := NewEncoder().AppendFrame(nil, events)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := NewDecoder().DecodeFrame(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frame) {
		t.Fatalf("consumed %d of %d frame bytes", n, len(frame))
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if !eventsEqual(got[i], events[i]) {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

// TestRoundTripAcrossFrames: interning and the timestamp delta chain
// carry across frames on one connection — later frames reference the
// table built by earlier ones and stay small.
func TestRoundTripAcrossFrames(t *testing.T) {
	events := sampleEvents()
	enc, dec := NewEncoder(), NewDecoder()
	f1, err := enc.AppendFrame(nil, events[:3])
	if err != nil {
		t.Fatal(err)
	}
	f2, err := enc.AppendFrame(nil, events[3:])
	if err != nil {
		t.Fatal(err)
	}
	if len(f2) >= len(f1) {
		t.Errorf("second frame (%dB, interned sessions) should be smaller than the first (%dB)", len(f2), len(f1))
	}
	var got []Event
	for _, f := range [][]byte{f1, f2} {
		var n int
		got, n, err = dec.DecodeFrame(f, got)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(f) {
			t.Fatalf("consumed %d of %d", n, len(f))
		}
	}
	if dec.Sessions() != 2 {
		t.Errorf("decoder interned %d sessions, want 2", dec.Sessions())
	}
	for i := range events {
		if !eventsEqual(got[i], events[i]) {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

// TestFrameReaderStream: frames written back-to-back decode through a
// FrameReader, and a clean end of stream is io.EOF.
func TestFrameReaderStream(t *testing.T) {
	events := sampleEvents()
	enc := NewEncoder()
	var stream []byte
	var err error
	for i := range events {
		stream, err = enc.AppendFrame(stream, events[i:i+1])
		if err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bufio.NewReader(bytes.NewReader(stream)))
	dec := NewDecoder()
	var got []Event
	for {
		payload, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got, err = dec.Decode(payload, got)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(events) {
		t.Fatalf("streamed %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if !eventsEqual(got[i], events[i]) {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

// TestDecodeTypedErrors: each corruption class yields its typed error,
// and a decoder that returned an error refuses further frames.
func TestDecodeTypedErrors(t *testing.T) {
	good, err := NewEncoder().AppendFrame(nil, sampleEvents())
	if err != nil {
		t.Fatal(err)
	}
	goodPayload := payloadOf(t, good)
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"header only", func(b []byte) []byte { return b[:2] }, ErrTruncated},
		{"stampless header", func(b []byte) []byte { return b[:7] }, ErrTruncated},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrCorrupt},
		{"future version", func(b []byte) []byte { b[2] = 9; return b }, ErrVersion},
		{"v1 frame", func(b []byte) []byte { b[2] = 1; return b }, ErrVersion},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-3] }, ErrTruncated},
		{"flipped payload bit", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, ErrCorrupt},
		{"flipped crc bit", func(b []byte) []byte {
			b[len(b)-len(goodPayload)-1] ^= 1 // last CRC byte, just before the payload
			return b
		}, ErrCorrupt},
		{"trailing junk in payload", func(b []byte) []byte {
			// Re-frame the original payload plus one junk byte with a valid
			// CRC, so only the batch-level trailing check can object.
			return reframe(append(append([]byte{}, goodPayload...), 0xEE))
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mut(append([]byte{}, good...))
			dec := NewDecoder()
			if _, _, err := dec.DecodeFrame(b, nil); !errors.Is(err, tc.want) {
				t.Fatalf("DecodeFrame = %v, want %v", err, tc.want)
			}
			// The decoder is poisoned: even a pristine frame is now refused.
			if _, _, err := dec.DecodeFrame(good, nil); err == nil {
				t.Fatal("poisoned decoder accepted a frame")
			}
		})
	}
}

// reframe wraps an arbitrary payload in a valid header+CRC (unstamped).
func reframe(payload []byte) []byte {
	b := []byte{magic0, magic1, Version}
	b = appendU64(b, 0) // send stamp
	b = appendUvarint(b, uint64(len(payload)))
	b = appendU32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

// TestDecodeRejectsNonCanonical: overlong varints, skipped session
// references, duplicate definitions, zero-length payloads and
// out-of-range kinds are ErrCorrupt; oversized declared lengths and
// batch counts are ErrOversized.
func TestDecodeRejectsNonCanonical(t *testing.T) {
	ev := Event{Session: "s", Kind: KindDown, X: 1, Y: 2, TMicros: 3}
	canon, err := NewEncoder().AppendFrame(nil, []Event{ev})
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte{}, payloadOf(t, canon)...)

	mutate := func(name string, mut func([]byte) []byte, want error) {
		t.Run(name, func(t *testing.T) {
			b := reframe(mut(append([]byte{}, payload...)))
			if _, _, err := NewDecoder().DecodeFrame(b, nil); !errors.Is(err, want) {
				t.Fatalf("DecodeFrame = %v, want %v", err, want)
			}
		})
	}
	mutate("overlong count varint", func(p []byte) []byte {
		// count 1 → 0x81 0x00 (overlong two-byte form of 1).
		return append([]byte{0x81, 0x00}, p[1:]...)
	}, ErrCorrupt)
	mutate("skipped session reference", func(p []byte) []byte {
		p[1] = 5 // sid 5 with an empty table
		return p
	}, ErrCorrupt)
	mutate("zero-length session", func(p []byte) []byte {
		p[2] = 0 // definition length 0
		return p
	}, ErrCorrupt)
	mutate("kind out of range", func(p []byte) []byte {
		p[5] = 7 // count, sid, len, 's', finger, kind
		return p
	}, ErrCorrupt)
	mutate("batch count over MaxBatch", func(p []byte) []byte {
		return appendUvarint(p[:0], MaxBatch+1)
	}, ErrOversized)

	t.Run("duplicate session definition", func(t *testing.T) {
		// Two events, each defining session "s" — the second must define a
		// *new* table slot with an already-interned string.
		p := appendUvarint(nil, 2)
		for i := 0; i < 2; i++ {
			p = appendUvarint(p, uint64(i)) // sid == next table slot
			p = appendUvarint(p, 1)
			p = append(p, 's')
			p = append(p, 0, 0)                  // finger, kind
			p = appendU64(p, 0)                  // x
			p = appendU64(p, 0)                  // y
			p = appendUvarint(p, zigzag(int64(i))) // t
		}
		if _, _, err := NewDecoder().DecodeFrame(reframe(p), nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("DecodeFrame = %v, want ErrCorrupt", err)
		}
	})
	t.Run("declared length over MaxFrameBytes", func(t *testing.T) {
		b := []byte{magic0, magic1, Version}
		b = appendU64(b, 0) // send stamp
		b = appendUvarint(b, MaxFrameBytes+1)
		b = append(b, 0, 0, 0, 0)
		if _, _, err := NewDecoder().DecodeFrame(b, nil); !errors.Is(err, ErrOversized) {
			t.Fatalf("DecodeFrame = %v, want ErrOversized", err)
		}
		// The stream reader enforces the same limit before buffering.
		fr := NewFrameReader(bufio.NewReader(bytes.NewReader(b)))
		if _, err := fr.Next(); !errors.Is(err, ErrOversized) {
			t.Fatalf("FrameReader.Next = %v, want ErrOversized", err)
		}
	})
}

// TestEncoderValidation: encoder-side limits poison the encoder.
func TestEncoderValidation(t *testing.T) {
	enc := NewEncoder()
	if _, err := enc.AppendFrame(nil, []Event{{Session: "", Kind: KindDown}}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty session = %v, want ErrCorrupt", err)
	}
	if _, err := enc.AppendFrame(nil, []Event{{Session: "ok", Kind: KindDown}}); err == nil {
		t.Fatal("poisoned encoder accepted a frame")
	}
	if _, err := NewEncoder().AppendFrame(nil, make([]Event, MaxBatch+1)); !errors.Is(err, ErrOversized) {
		t.Fatalf("oversized batch = %v, want ErrOversized", err)
	}
	if _, err := NewEncoder().AppendFrame(nil, []Event{{Session: "s", Kind: 9}}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad kind = %v, want ErrCorrupt", err)
	}
}

// TestResponseRoundTrip: ACK (with and without NACKs) and fatal
// responses survive the codec.
func TestResponseRoundTrip(t *testing.T) {
	nacks := []Nack{{Index: 0, Code: NackBadEvent}, {Index: 7, Code: NackOverload}}
	b := AppendAck(nil, nacks, 250)
	b = AppendAck(b, nil, 0)
	b = AppendFatal(b, FatalCorrupt)
	r := bufio.NewReader(bytes.NewReader(b))

	resp, err := ReadResponse(r, nil)
	if err != nil || resp.Fatal || len(resp.Nacks) != 2 {
		t.Fatalf("first response = %+v, %v", resp, err)
	}
	if resp.Nacks[0] != nacks[0] || resp.Nacks[1] != nacks[1] {
		t.Fatalf("nacks = %+v, want %+v", resp.Nacks, nacks)
	}
	if resp.RetryAfterMS != 250 {
		t.Fatalf("retry-after = %d, want 250", resp.RetryAfterMS)
	}
	resp, err = ReadResponse(r, resp.Nacks)
	if err != nil || resp.Fatal || len(resp.Nacks) != 0 || resp.RetryAfterMS != 0 {
		t.Fatalf("second response = %+v, %v", resp, err)
	}
	resp, err = ReadResponse(r, nil)
	if err != nil || !resp.Fatal || resp.Code != FatalCorrupt {
		t.Fatalf("third response = %+v, %v", resp, err)
	}
	if _, err := ReadResponse(r, nil); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
}

// TestResponseRetryAfterBounds: the encoder clamps out-of-range hints
// and the decoder rejects hints beyond the cap as corruption.
func TestResponseRetryAfterBounds(t *testing.T) {
	b := AppendAck(nil, nil, -5)
	b = AppendAck(b, nil, MaxRetryAfterMS+1)
	r := bufio.NewReader(bytes.NewReader(b))
	resp, err := ReadResponse(r, nil)
	if err != nil || resp.RetryAfterMS != 0 {
		t.Fatalf("negative hint clamped = %+v, %v; want 0", resp, err)
	}
	resp, err = ReadResponse(r, nil)
	if err != nil || resp.RetryAfterMS != MaxRetryAfterMS {
		t.Fatalf("oversize hint clamped = %+v, %v; want %d", resp, err, int64(MaxRetryAfterMS))
	}

	// A hand-built ACK with a hint beyond the cap must decode as corrupt.
	bad := append([]byte{0x06}, appendUvarint(nil, MaxRetryAfterMS+1)...)
	bad = appendUvarint(bad, 0)
	if _, err := ReadResponse(bufio.NewReader(bytes.NewReader(bad)), nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversize wire hint = %v, want ErrCorrupt", err)
	}
}

// TestMicrosConversion: the float-seconds boundary conversion is sane
// and saturating, and Seconds inverts Micros for mouse-rate timestamps.
func TestMicrosConversion(t *testing.T) {
	for _, tc := range []struct {
		t    float64
		want int64
	}{
		{0, 0}, {0.5, 500_000}, {1.000001, 1_000_001}, {-1, -1_000_000},
		{math.NaN(), 0}, {math.Inf(1), math.MaxInt64}, {math.Inf(-1), math.MinInt64},
	} {
		if got := Micros(tc.t); got != tc.want {
			t.Errorf("Micros(%v) = %d, want %d", tc.t, got, tc.want)
		}
	}
	for _, sec := range []float64{0, 0.02, 1.26, 100.333333, 86400} {
		us := Micros(sec)
		if got := (Event{TMicros: us}).Seconds(); math.Abs(got-sec) > 1e-6 {
			t.Errorf("Seconds(Micros(%v)) = %v, drift over 1µs", sec, got)
		}
	}
}

// TestSendStamp: the client-send stamp round-trips through both decode
// paths, AppendFrameAt with the decoded stamp reproduces the frame bit
// for bit (the canonical re-encode property the fuzz test pins), and
// AppendFrame stamps the wall clock.
func TestSendStamp(t *testing.T) {
	const stamp = int64(1_700_000_123_456_789)
	events := sampleEvents()
	frame, err := NewEncoder().AppendFrameAt(nil, events, stamp)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder()
	if dec.SentNS() != 0 {
		t.Errorf("fresh decoder SentNS = %d, want 0", dec.SentNS())
	}
	got, _, err := dec.DecodeFrame(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dec.SentNS() != stamp {
		t.Errorf("decoded SentNS = %d, want %d", dec.SentNS(), stamp)
	}
	re, err := NewEncoder().AppendFrameAt(nil, got, dec.SentNS())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, frame) {
		t.Error("re-encode with the decoded stamp is not bit-identical")
	}

	// Streaming path: FrameReader surfaces the stamp per frame.
	fr := NewFrameReader(bufio.NewReader(bytes.NewReader(frame)))
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	if fr.SentNS() != stamp {
		t.Errorf("FrameReader SentNS = %d, want %d", fr.SentNS(), stamp)
	}

	// AppendFrame stamps the sender's wall clock — never zero.
	wall, err := NewEncoder().AppendFrame(nil, events)
	if err != nil {
		t.Fatal(err)
	}
	dec2 := NewDecoder()
	if _, _, err := dec2.DecodeFrame(wall, nil); err != nil {
		t.Fatal(err)
	}
	if dec2.SentNS() == 0 {
		t.Error("AppendFrame left the send stamp unset")
	}
}

// TestDecodeZeroAlloc is the ingest half of the hot-path allocation
// gate (DESIGN.md §6): decoding a frame of warm-session events must not
// allocate per event — the intern table, delta state, and the caller's
// event buffer absorb everything after the first frame.
func TestDecodeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the contract is asserted by the non-race pass")
	}
	enc, dec := NewEncoder(), NewDecoder()
	// The first frame carries the session definition; the steady-state
	// frame under measurement holds only interned references.
	def, err := enc.AppendFrame(nil, []Event{{Session: "warm", Kind: KindDown}})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Event, 0, 64)
	for i := 0; i < 64; i++ {
		batch = append(batch, Event{
			Session: "warm", Finger: 0, Kind: KindMove,
			X: float64(i), Y: float64(2 * i), TMicros: int64(1000 * i),
		})
	}
	frame, err := enc.AppendFrame(nil, batch)
	if err != nil {
		t.Fatal(err)
	}
	payload := payloadOf(t, frame)
	// Warm: intern the session and size the event buffer.
	events, err := dec.Decode(payloadOf(t, def), make([]Event, 0, 64))
	if err != nil {
		t.Fatal(err)
	}
	events = events[:0]
	allocs := testing.AllocsPerRun(400, func() {
		events = events[:0]
		var err error
		events, err = dec.Decode(payload, events)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Decode allocated %.2f times per frame; the //glint:hotpath contract requires 0", allocs)
	}
	// But the delta chain advanced — verify decode still yields 64 events.
	if len(events) != 64 {
		t.Fatalf("decoded %d events, want 64", len(events))
	}
}
