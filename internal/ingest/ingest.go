// Package ingest is the networked front end of the serving engine: a
// net.Listener-based server speaking the internal/wire frame protocol,
// feeding decoded events into serve.Engine.Submit under the Submitter
// retry policy, and answering every frame with the typed ACK/NACK
// responses wire defines.
//
// One goroutine serves each connection: frames decode through a
// per-connection wire.Decoder (which owns the connection's session
// intern table and timestamp delta chain), every event submits through
// a shared serve.Submitter, and refusals map to per-event NACK codes —
// serve.ErrBadEvent to NackBadEvent, a spent retry budget
// (serve.ErrShed) to NackShed, a bare serve.ErrQueueFull (no-retry
// policies) to NackQueueFull, serve.ErrClosed to NackClosed followed by
// connection teardown. An undecodable frame is answered with the
// matching fatal code (FatalCorrupt, FatalOversized, FatalTruncated,
// FatalVersion for a peer speaking another wire format version) and the
// connection closes: the decoder's interning state can no longer be
// trusted.
//
// Each frame header carries the client-send stamp (wire format v2); the
// server observes receive−send into wire.e2e.ingress_ns — the queue/
// transit leg of end-to-end latency — and threads the stamp onto every
// decoded serve.Event so the engine can attribute the full
// send-to-decision span (wire.e2e_ns).
//
// Backpressure is per connection by construction: a connection blocked
// in the Submitter's retry loop stops reading its socket, so TCP flow
// control pushes back on that producer alone; other connections keep
// their own pace. Server.Close stops the accept loop, closes every
// connection, and waits for the per-connection goroutines — in-flight
// frames finish their submit loop (draining through the Submitter
// policy) before their goroutine exits.
//
// The server defends itself against hostile and broken peers. An idle
// watchdog (Options.IdleTimeout) tears down connections that stop
// delivering frames — a FatalTimeout response, then close — so a
// slow-loris client can never pin a goroutine until process exit.
// Options.MaxConns caps concurrently served connections; accepts over
// the cap are answered FatalOverloaded and closed without ever being
// served. Options.WriteTimeout deadline-bounds every response write so
// a non-draining client cannot wedge a flush. When the engine runs an
// admission controller (serve.Options.Admit), events it sheds map to
// NackOverload and the frame's ACK carries the controller's retry-after
// pacing hint.
//
// When Options.Obs is set the server registers the wire.* counters,
// histograms, and the "wire.spans" span buffer documented in
// OBSERVABILITY.md.
package ingest

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/multipath"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/wire"
)

// Options configures a Server.
type Options struct {
	// Submitter is the per-event retry policy. The zero value is the
	// unlimited-retry don't-drop-my-events policy: backpressure then
	// stalls the connection (and TCP pushes back on the producer)
	// instead of shedding. Set MaxAttempts to shed instead.
	Submitter serve.SubmitterOptions
	// Obs, when set, attaches the wire.* metrics and the "wire.spans"
	// span buffer (see OBSERVABILITY.md). Nil leaves the server
	// uninstrumented at no per-event cost.
	Obs *obs.Registry
	// IdleTimeout, when positive, arms the idle watchdog: a connection
	// that delivers no frame for at least this long (by Clock) is torn
	// down with a FatalTimeout response — the slow-loris defense, so a
	// silent client can never pin a goroutine until process exit. 0
	// disables idle teardown.
	IdleTimeout time.Duration
	// SweepInterval is the watchdog's sweep period: 0 means
	// IdleTimeout/4 (floored at 1ms), negative disables the background
	// sweeper — idleness is then only checked via explicit SweepIdle
	// calls, which is what deterministic virtual-clock tests want.
	// Ignored when IdleTimeout is 0.
	SweepInterval time.Duration
	// Clock is the idleness time source; nil means the wall clock.
	// Tests inject a virtual clock and drive SweepIdle directly.
	// Socket deadlines (WriteTimeout) always use real time — the
	// kernel's clock is not injectable.
	Clock serve.Clock
	// MaxConns, when positive, caps concurrently served connections:
	// an accept beyond the cap is answered with a FatalOverloaded
	// response and closed immediately (counted in
	// wire.connections.rejected), never served. 0 means unlimited.
	MaxConns int
	// WriteTimeout, when positive, bounds every response write via
	// SetWriteDeadline, so a client that stops draining its socket
	// cannot pin a goroutine in a response flush. 0 disables write
	// deadlines.
	WriteTimeout time.Duration
}

// metrics holds the server's obs handles; the zero value is the
// uninstrumented no-op state.
type metrics struct {
	connsOpened   *obs.Counter         // wire.connections.opened
	connsClosed   *obs.Counter         // wire.connections.closed
	framesOK      *obs.Counter         // wire.frames.decoded
	framesBad     *obs.Counter         // wire.frames.rejected
	events        *obs.Counter         // wire.events.decoded
	nackBad       *obs.Counter         // wire.nacks.bad_event
	nackFull      *obs.Counter         // wire.nacks.queue_full
	nackShed      *obs.Counter         // wire.nacks.shed
	nackClosed    *obs.Counter         // wire.nacks.closed
	nackOverload  *obs.Counter         // wire.nacks.overload
	idleClosed    *obs.Counter         // wire.connections.idle_closed
	connsRejected *obs.Counter         // wire.connections.rejected
	frameEvents   *obs.Histogram       // wire.frame.events
	frameDecodNS  *obs.Histogram       // wire.frame.decode_ns
	ingressNS     *obs.Histogram       // wire.e2e.ingress_ns
	eventsWin     *obs.WindowedCounter // window.wire.events.decoded
	nacksWin      *obs.WindowedCounter // window.wire.nacks
	spans         *obs.SpanBuffer      // wire.spans
}

func newMetrics(reg *obs.Registry) metrics {
	if reg == nil {
		return metrics{}
	}
	return metrics{
		connsOpened:   reg.Counter("wire.connections.opened"),
		connsClosed:   reg.Counter("wire.connections.closed"),
		framesOK:      reg.Counter("wire.frames.decoded"),
		framesBad:     reg.Counter("wire.frames.rejected"),
		events:        reg.Counter("wire.events.decoded"),
		nackBad:       reg.Counter("wire.nacks.bad_event"),
		nackFull:      reg.Counter("wire.nacks.queue_full"),
		nackShed:      reg.Counter("wire.nacks.shed"),
		nackClosed:    reg.Counter("wire.nacks.closed"),
		nackOverload:  reg.Counter("wire.nacks.overload"),
		idleClosed:    reg.Counter("wire.connections.idle_closed"),
		connsRejected: reg.Counter("wire.connections.rejected"),
		frameEvents:   reg.Histogram("wire.frame.events", obs.DepthBuckets()),
		frameDecodNS:  reg.Histogram("wire.frame.decode_ns", obs.LatencyBuckets()),
		ingressNS:     reg.Histogram("wire.e2e.ingress_ns", obs.LatencyBuckets()),
		eventsWin:     reg.WindowedCounter("window.wire.events.decoded", 0, 0),
		nacksWin:      reg.WindowedCounter("window.wire.nacks", 0, 0),
		spans:         reg.Spans("wire.spans", 0),
	}
}

// wallClock is the default idleness time source.
type wallClock struct{}

// Now returns the current wall time.
func (wallClock) Now() time.Time { return time.Now() }

// connState is the watchdog's view of one live connection: when it
// last delivered a frame (Clock nanoseconds) and whether the watchdog
// tore it down (so the serving goroutine can exit quietly instead of
// misreporting the forced close as a peer error).
type connState struct {
	lastActive atomic.Int64
	timedOut   atomic.Bool
}

// Server accepts wire-protocol connections and feeds their events into
// a serve.Engine. Create with Serve; stop with Close.
type Server struct {
	ln   net.Listener
	eng  *serve.Engine
	sub  *serve.Submitter
	m    metrics
	opts Options

	clock   serve.Clock
	startNS int64

	mu     sync.Mutex
	conns  map[net.Conn]*connState
	closed bool

	stop chan struct{} // closed at Close to stop the background sweeper

	wg sync.WaitGroup
}

// Serve starts a server accepting on ln (which the server now owns)
// and submitting into e. It returns immediately; Close stops it.
func Serve(ln net.Listener, e *serve.Engine, opts Options) *Server {
	s := &Server{
		ln:      ln,
		eng:     e,
		sub:     serve.NewSubmitter(e, opts.Submitter),
		m:       newMetrics(opts.Obs),
		opts:    opts,
		conns:   make(map[net.Conn]*connState),
		stop:    make(chan struct{}),
		startNS: time.Now().UnixNano(),
	}
	s.clock = opts.Clock
	if s.clock == nil {
		s.clock = wallClock{}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	if opts.IdleTimeout > 0 && opts.SweepInterval >= 0 {
		interval := opts.SweepInterval
		if interval == 0 {
			interval = opts.IdleTimeout / 4
		}
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		s.wg.Add(1)
		go s.sweepLoop(interval)
	}
	return s
}

// Addr returns the listener's address — the port to dial when the
// listener was bound to ":0".
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, closes every live connection, and waits for
// the per-connection goroutines to drain their in-flight frame through
// the Submitter policy. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	close(s.stop)
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// track registers a live connection; it reports nil when the server is
// already closing (drop the connection) or at its MaxConns cap (reject
// it with a typed fatal).
func (s *Server) track(c net.Conn) (*connState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	if s.opts.MaxConns > 0 && len(s.conns) >= s.opts.MaxConns {
		return nil, true
	}
	cs := &connState{}
	cs.lastActive.Store(s.clock.Now().UnixNano())
	s.conns[c] = cs
	return cs, true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		cs, open := s.track(c)
		if !open {
			c.Close()
			continue
		}
		if cs == nil {
			// At the MaxConns cap: refuse with a typed fatal so the
			// client backs off instead of seeing a silent hangup. The
			// write is deadline-bounded, so a non-draining client
			// cannot stall this goroutine.
			s.m.connsRejected.Inc()
			s.wg.Add(1)
			go s.rejectConn(c)
			continue
		}
		s.m.connsOpened.Inc()
		s.wg.Add(1)
		go s.serveConn(c, cs)
	}
}

// rejectConn answers one over-cap connection with FatalOverloaded and
// closes it.
func (s *Server) rejectConn(c net.Conn) {
	defer s.wg.Done()
	defer c.Close()
	deadline := s.opts.WriteTimeout
	if deadline <= 0 {
		deadline = time.Second
	}
	c.SetWriteDeadline(time.Now().Add(deadline))
	c.Write(wire.AppendFatal(nil, wire.FatalOverloaded))
}

// sweepLoop is the background idle watchdog: every interval it tears
// down connections that have been frameless for at least IdleTimeout.
func (s *Server) sweepLoop(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.SweepIdle()
		}
	}
}

// SweepIdle tears down every connection that has not delivered a frame
// for at least Options.IdleTimeout (by Options.Clock): the watchdog
// best-effort writes a FatalTimeout response, closes the connection
// (unblocking its reader), and counts wire.connections.idle_closed.
// Returns how many connections it closed. With a virtual clock and
// SweepInterval < 0 this is the deterministic way to drive idle
// teardown: advance the clock, call SweepIdle. A no-op when
// IdleTimeout is 0.
func (s *Server) SweepIdle() int {
	if s.opts.IdleTimeout <= 0 {
		return 0
	}
	now := s.clock.Now().UnixNano()
	var idle []net.Conn
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0
	}
	for c, cs := range s.conns {
		if cs.timedOut.Load() {
			continue
		}
		if now-cs.lastActive.Load() >= int64(s.opts.IdleTimeout) {
			cs.timedOut.Store(true)
			idle = append(idle, c)
		}
	}
	s.mu.Unlock()
	for _, c := range idle {
		// Best effort: an idle connection has no response in flight,
		// so writing directly is safe; a client racing the deadline
		// with a fresh frame sees a torn connection either way.
		deadline := s.opts.WriteTimeout
		if deadline <= 0 {
			deadline = time.Second
		}
		c.SetWriteDeadline(time.Now().Add(deadline))
		c.Write(wire.AppendFatal(nil, wire.FatalTimeout))
		c.Close()
		s.m.idleClosed.Inc()
	}
	return len(idle)
}

// conn is one connection's decode/submit state, reused across frames so
// the steady-state path performs no per-event allocation.
type conn struct {
	dec    *wire.Decoder
	wire   []wire.Event
	events []serve.Event
	nacks  []wire.Nack
	resp   []byte
}

// serveConn runs one connection to completion: frames in, responses
// out, teardown on the first fatal condition or clean EOF. Every frame
// touches cs.lastActive so the idle watchdog sees the connection as
// live; when the watchdog tore the connection down (cs.timedOut), the
// resulting read error exits quietly — the forced close is already
// accounted as wire.connections.idle_closed, not a peer frame error.
func (s *Server) serveConn(c net.Conn, cs *connState) {
	defer s.wg.Done()
	defer s.untrack(c)
	defer s.m.connsClosed.Inc()
	defer c.Close()

	br := bufio.NewReaderSize(c, 32<<10)
	bw := bufio.NewWriterSize(c, 4<<10)
	fr := wire.NewFrameReader(br)
	st := &conn{
		dec:    wire.NewDecoder(),
		wire:   make([]wire.Event, 0, wire.MaxBatch),
		events: make([]serve.Event, 0, wire.MaxBatch),
		nacks:  make([]wire.Nack, 0, 16),
	}
	for {
		payload, err := fr.Next()
		if err != nil {
			if err != io.EOF && !cs.timedOut.Load() {
				s.m.framesBad.Inc()
				s.respondFatal(c, bw, fatalFor(err))
			}
			return
		}
		cs.lastActive.Store(s.clock.Now().UnixNano())
		closing, err := s.serveFrame(c, bw, st, payload, fr.SentNS())
		if err != nil || closing {
			return
		}
	}
}

// fatalFor maps a wire decode error to its fatal response code.
func fatalFor(err error) wire.FatalCode {
	switch {
	case errors.Is(err, wire.ErrOversized):
		return wire.FatalOversized
	case errors.Is(err, wire.ErrTruncated):
		return wire.FatalTruncated
	case errors.Is(err, wire.ErrVersion):
		return wire.FatalVersion
	}
	return wire.FatalCorrupt
}

// respondFatal best-effort writes a fatal response; the connection is
// closing either way.
func (s *Server) respondFatal(c net.Conn, bw *bufio.Writer, code wire.FatalCode) {
	s.armWriteDeadline(c)
	bw.Write(wire.AppendFatal(nil, code))
	bw.Flush()
}

// armWriteDeadline applies Options.WriteTimeout ahead of a response
// write, so a client that stops draining its socket cannot pin the
// serving goroutine in a flush. A no-op when WriteTimeout is 0.
func (s *Server) armWriteDeadline(c net.Conn) {
	if s.opts.WriteTimeout > 0 {
		c.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
	}
}

// serveFrame decodes one frame payload, submits its events, and writes
// the frame's response. sent is the frame header's client-send stamp
// (unix nanoseconds; 0 when unstamped) — receive−send feeds the
// wire.e2e.ingress_ns histogram with the frame's span as its exemplar,
// and the stamp rides every decoded event so the engine can observe the
// full send-to-decision latency. closing reports that the connection
// must tear down after the response (the engine or server is shutting
// down).
func (s *Server) serveFrame(c net.Conn, bw *bufio.Writer, st *conn, payload []byte, sent int64) (closing bool, err error) {
	sp := s.m.spans.Start("wire_frame")
	if s.m.ingressNS != nil {
		if d, ok := wire.SentLatency(time.Now().UnixNano(), sent, s.startNS); ok {
			s.m.ingressNS.ObserveExemplar(float64(d), sp.ID(), 0)
		}
	}
	decStart := obs.Start(s.m.frameDecodNS)
	st.events = st.events[:0]
	events, decErr := s.decode(st, payload, sent)
	obs.ObserveSince(s.m.frameDecodNS, decStart)
	if decErr != nil {
		s.m.framesBad.Inc()
		sp.SetAttr("error", decErr.Error())
		sp.End()
		s.respondFatal(c, bw, fatalFor(decErr))
		return true, decErr
	}
	s.m.framesOK.Inc()
	s.m.events.Add(int64(len(events)))
	s.m.eventsWin.Add(int64(len(events)))
	s.m.frameEvents.Observe(float64(len(events)))
	st.nacks, closing = s.submitBatch(events, st.nacks[:0])
	sp.SetAttrInt("events", int64(len(events)))
	sp.SetAttrInt("nacks", int64(len(st.nacks)))
	sp.End()
	st.resp = wire.AppendAck(st.resp[:0], st.nacks, s.retryAfterMS(st.nacks))
	s.armWriteDeadline(c)
	if _, err := bw.Write(st.resp); err != nil {
		return true, err
	}
	if err := bw.Flush(); err != nil {
		return true, err
	}
	return closing, nil
}

// retryAfterMS picks the ACK's retry-after hint: the admission
// controller's current pacing when any event in the batch was shed for
// overload, 0 otherwise.
//
//glint:coldpath scans only when the batch produced NACKs
func (s *Server) retryAfterMS(nacks []wire.Nack) int64 {
	for i := range nacks {
		if nacks[i].Code == wire.NackOverload {
			return s.eng.Admission().RetryAfterMS()
		}
	}
	return 0
}

// decode turns one frame payload into serve events, converting the wire
// domain (integer-microsecond timestamps, wire.Kind) into the engine's
// (float seconds, multipath.EventKind) in place. The frame's client-send
// stamp rides every event for end-to-end latency attribution.
func (s *Server) decode(st *conn, payload []byte, sent int64) ([]serve.Event, error) {
	st.wire = st.wire[:0]
	w, err := st.dec.Decode(payload, st.wire)
	st.wire = w
	if err != nil {
		return nil, err
	}
	events := st.events[:0]
	for i := range w {
		events = append(events[:len(events)], serve.Event{
			Session: w[i].Session,
			Finger:  multipath.FingerID(w[i].Finger),
			Kind:    multipath.EventKind(w[i].Kind),
			X:       w[i].X,
			Y:       w[i].Y,
			T:       w[i].Seconds(),
			SentNS:  sent,
		})
	}
	st.events = events
	return events, nil
}

// submitBatch submits one decoded batch under the retry policy,
// appending a NACK per refused event. closing reports the engine
// refused with ErrClosed — the remaining events NACK closed without
// being submitted, and the caller tears the connection down after
// responding.
//
// This is the per-event half of the ingest hot path: in steady state
// (accepted events, observability off) it must not allocate per event —
// the NACK buffer is reused across frames and grows only while refusals
// are occurring.
//
//glint:hotpath
func (s *Server) submitBatch(events []serve.Event, nacks []wire.Nack) ([]wire.Nack, bool) {
	closing := false
	for i := range events {
		if closing {
			nacks = append(nacks[:len(nacks)], wire.Nack{Index: uint32(i), Code: wire.NackClosed})
			s.countNack(wire.NackClosed)
			continue
		}
		err := s.sub.Submit(events[i])
		if err == nil {
			continue
		}
		code := nackFor(err)
		if code == wire.NackClosed {
			closing = true
		}
		nacks = append(nacks[:len(nacks)], wire.Nack{Index: uint32(i), Code: code})
		s.countNack(code)
	}
	return nacks, closing
}

// nackFor maps a Submit error to its NACK code. ErrShed is checked
// before ErrQueueFull: a shed error matches both, and the more specific
// code tells the client its event was retried before being dropped.
//
//glint:coldpath runs once per refused event, not per accepted event
func nackFor(err error) wire.NackCode {
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		return wire.NackOverload
	case errors.Is(err, serve.ErrShed):
		return wire.NackShed
	case errors.Is(err, serve.ErrQueueFull):
		return wire.NackQueueFull
	case errors.Is(err, serve.ErrClosed):
		return wire.NackClosed
	}
	return wire.NackBadEvent
}

// countNack feeds the per-code wire.nacks.* counters.
//
//glint:coldpath runs once per refused event, not per accepted event
func (s *Server) countNack(code wire.NackCode) {
	s.m.nacksWin.Inc()
	switch code {
	case wire.NackBadEvent:
		s.m.nackBad.Inc()
	case wire.NackQueueFull:
		s.m.nackFull.Inc()
	case wire.NackShed:
		s.m.nackShed.Inc()
	case wire.NackClosed:
		s.m.nackClosed.Inc()
	case wire.NackOverload:
		s.m.nackOverload.Inc()
	}
}
