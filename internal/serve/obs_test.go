package serve

import (
	"fmt"
	"testing"

	"repro/internal/multipath"
	"repro/internal/obs"
)

// snapCounter returns a named counter's value from the snapshot, failing
// the test when the counter was never registered.
func snapCounter(t *testing.T, snap obs.Snapshot, name string) int64 {
	t.Helper()
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("counter %q not in snapshot", name)
	return 0
}

// snapHist returns a named histogram snapshot, failing the test when it
// was never registered.
func snapHist(t *testing.T, snap obs.Snapshot, name string) obs.HistogramSnap {
	t.Helper()
	for _, h := range snap.Histograms {
		if h.Name == name {
			return h
		}
	}
	t.Fatalf("histogram %q not in snapshot", name)
	return obs.HistogramSnap{}
}

// TestEngineObservability runs an instrumented engine through a full
// workload — sessions, a swap, a rejected swap, a drain at Close — and
// checks the serve.* metric contract: counters reconcile with Stats and
// with each other, latency histograms saw every session, and the trace
// ring recorded the lifecycle events.
func TestEngineObservability(t *testing.T) {
	reg := obs.New()
	rec := trainRec(t, 1)
	sink := newSink()
	e, err := New(rec, Options{Shards: 4, OnResult: sink.add, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}

	const done = 20
	for i := 0; i < done; i++ {
		g, _ := sampleGesture(int64(100+i), i%2)
		playSession(t, e, fmt.Sprintf("s%02d", i), g)
	}
	if got := e.Swap(nil); got != nil {
		t.Fatalf("Swap(nil) = %v, want nil", got)
	}
	if got := e.Swap(trainRec(t, 2)); got == nil {
		t.Fatal("Swap returned nil previous recognizer")
	}
	// One session left open (no FingerUp) so Close has something to drain.
	g, _ := sampleGesture(999, 0)
	for i, p := range g {
		kind := multipath.FingerMove
		if i == 0 {
			kind = multipath.FingerDown
		}
		submitRetry(t, e, Event{Session: "open", Finger: 0, Kind: kind, X: p.X, Y: p.Y, T: p.T})
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	st := e.Stats()
	if got := snapCounter(t, snap, "serve.events.submitted"); got != st.Submitted {
		t.Errorf("serve.events.submitted = %d, Stats.Submitted = %d", got, st.Submitted)
	}
	if got := snapCounter(t, snap, "serve.events.rejected"); got != st.Rejected {
		t.Errorf("serve.events.rejected = %d, Stats.Rejected = %d", got, st.Rejected)
	}
	opened := snapCounter(t, snap, "serve.sessions.opened")
	completed := snapCounter(t, snap, "serve.sessions.completed")
	drained := snapCounter(t, snap, "serve.sessions.drained")
	if opened != done+1 || completed != done+1 {
		t.Errorf("opened=%d completed=%d, want both %d", opened, completed, done+1)
	}
	if drained != 1 {
		t.Errorf("serve.sessions.drained = %d, want 1", drained)
	}
	if got := snapCounter(t, snap, "serve.swaps"); got != 1 {
		t.Errorf("serve.swaps = %d, want 1", got)
	}
	// A healthy workload must not trip any of the failure-path counters,
	// but they must all be registered (the contract is load-time).
	for _, name := range []string{
		"serve.events.bad", "serve.events.quarantined",
		"serve.sessions.reaped", "serve.sessions.panicked", "serve.sessions.degraded",
	} {
		if got := snapCounter(t, snap, name); got != 0 {
			t.Errorf("%s = %d, want 0 on a healthy workload", name, got)
		}
	}
	if got := snapCounter(t, snap, "serve.swaps_rejected"); got != 1 {
		t.Errorf("serve.swaps_rejected = %d, want 1", got)
	}

	if h := snapHist(t, snap, "serve.session.latency_ns"); h.Count != done+1 {
		t.Errorf("serve.session.latency_ns count = %d, want %d", h.Count, done+1)
	}
	if h := snapHist(t, snap, "serve.queue.wait_ns"); h.Count != st.Submitted {
		t.Errorf("serve.queue.wait_ns count = %d, want %d", h.Count, st.Submitted)
	}
	if h := snapHist(t, snap, "serve.queue.depth"); h.Count != st.Submitted {
		t.Errorf("serve.queue.depth count = %d, want %d", h.Count, st.Submitted)
	}

	var traced *obs.TraceSnap
	for i := range snap.Traces {
		if snap.Traces[i].Name == "serve.trace" {
			traced = &snap.Traces[i]
		}
	}
	if traced == nil {
		t.Fatal("serve.trace missing from snapshot")
	}
	counts := map[string]int{}
	for _, ev := range traced.Events {
		counts[ev.Name]++
	}
	// done+1 opens, done normal completions, 1 drain, 1 swap, 1 rejection:
	// well under the ring capacity, so nothing has been overwritten.
	want := map[string]int{
		"session_open": done + 1, "session_done": done,
		"session_drained": 1, "swap": 1, "swap_rejected": 1,
	}
	for name, n := range want {
		if counts[name] != n {
			t.Errorf("trace %q count = %d, want %d", name, counts[name], n)
		}
	}
}

// TestEngineUninstrumented checks that a no-registry engine still serves
// correctly — the nil-handle no-op path — and records nothing anywhere.
func TestEngineUninstrumented(t *testing.T) {
	rec := trainRec(t, 1)
	sink := newSink()
	e, err := New(rec, Options{Shards: 2, OnResult: sink.add})
	if err != nil {
		t.Fatal(err)
	}
	g, want := sampleGesture(7, 1)
	playSession(t, e, "only", g)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got, ok := sink.get("only"); !ok || got != want {
		t.Fatalf("session class = %q (ok=%v), want %q", got, ok, want)
	}
}
