// Package gdp reproduces GDP, the paper's gesture-based drawing program
// (section 2): "GDP is capable of producing drawings made with lines,
// rectangles, ellipses, and text", driven entirely by the eleven-gesture
// set of figure 3 plus control-point direct manipulation for the edit
// gesture. It is built on the grandma toolkit exactly as the paper builds
// GDP on GRANDMA.
package gdp

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/raster"
)

// Shape is a drawable GDP model object. Shapes are mutable: the
// manipulation phase of a gesture updates them in place in the presence of
// application feedback.
type Shape interface {
	// ID is the scene-assigned identity (0 before the shape is added).
	ID() int
	setID(id int)
	// Bounds returns the shape's bounding box.
	Bounds() geom.Rect
	// Draw paints the shape.
	Draw(c *raster.Canvas)
	// Translate moves the shape by (dx, dy).
	Translate(dx, dy float64)
	// RotateScale rotates the shape by angle radians and scales it by
	// factor s about the given center (the rotate-scale gesture's center
	// of rotation).
	RotateScale(center geom.Point, angle, s float64)
	// Touches reports whether p falls on (or within tol of) the shape —
	// used by delete's touch semantics and by object picking.
	Touches(p geom.Point, tol float64) bool
	// Clone returns a deep copy with ID zero (the copy gesture).
	Clone() Shape
	// Kind returns the shape's type name for logs and tests.
	Kind() string
}

// base carries the scene identity common to all shapes.
type base struct{ id int }

func (b *base) ID() int      { return b.id }
func (b *base) setID(id int) { b.id = id }

// Line is a straight line segment with a thickness. The modified GDP the
// paper mentions maps the line gesture's length to thickness; the field
// exists for that extension even though the default semantics leave it 1.
type Line struct {
	base
	X1, Y1, X2, Y2 float64
	Thickness      float64
}

// NewLine returns a line from (x1,y1) to (x2,y2) with thickness 1.
func NewLine(x1, y1, x2, y2 float64) *Line {
	return &Line{X1: x1, Y1: y1, X2: x2, Y2: y2, Thickness: 1}
}

// Kind implements Shape.
func (l *Line) Kind() string { return "line" }

// Bounds implements Shape.
func (l *Line) Bounds() geom.Rect {
	return geom.RectFromPoints(geom.Pt(l.X1, l.Y1), geom.Pt(l.X2, l.Y2))
}

// Draw implements Shape. Thickness greater than 1 strokes parallel offset
// lines (the modified GDP's thickness-by-gesture-length feature).
func (l *Line) Draw(c *raster.Canvas) {
	k := int(l.Thickness)
	if k <= 1 {
		c.Line(l.X1, l.Y1, l.X2, l.Y2, '+')
		return
	}
	d := geom.Pt(l.X2-l.X1, l.Y2-l.Y1)
	n := d.Norm()
	if n == 0 {
		c.SetF(l.X1, l.Y1, '+')
		return
	}
	perp := geom.Pt(-d.Y/n, d.X/n)
	for i := 0; i < k; i++ {
		off := float64(i) - float64(k-1)/2
		c.Line(l.X1+perp.X*off, l.Y1+perp.Y*off, l.X2+perp.X*off, l.Y2+perp.Y*off, '+')
	}
}

// Translate implements Shape.
func (l *Line) Translate(dx, dy float64) {
	l.X1 += dx
	l.Y1 += dy
	l.X2 += dx
	l.Y2 += dy
}

// RotateScale implements Shape.
func (l *Line) RotateScale(center geom.Point, angle, s float64) {
	p1 := geom.Pt(l.X1, l.Y1).Sub(center).Rotate(angle).Scale(s).Add(center)
	p2 := geom.Pt(l.X2, l.Y2).Sub(center).Rotate(angle).Scale(s).Add(center)
	l.X1, l.Y1, l.X2, l.Y2 = p1.X, p1.Y, p2.X, p2.Y
}

// Touches implements Shape.
func (l *Line) Touches(p geom.Point, tol float64) bool {
	return geom.SegmentDist(p, geom.Pt(l.X1, l.Y1), geom.Pt(l.X2, l.Y2)) <= tol+l.Thickness/2
}

// Clone implements Shape.
func (l *Line) Clone() Shape {
	c := *l
	c.id = 0
	return &c
}

// Rect is a rectangle defined by two opposite corners plus a rotation
// about its center (the modified GDP maps the rectangle gesture's initial
// angle to this orientation).
type Rect struct {
	base
	X1, Y1, X2, Y2 float64
	Angle          float64
}

// NewRect returns an axis-aligned rectangle with the given corners.
func NewRect(x1, y1, x2, y2 float64) *Rect {
	return &Rect{X1: x1, Y1: y1, X2: x2, Y2: y2}
}

// Kind implements Shape.
func (r *Rect) Kind() string { return "rect" }

// Corners returns the rectangle's four corners, rotation applied, in
// drawing order.
func (r *Rect) Corners() [4]geom.Point {
	c := geom.Pt((r.X1+r.X2)/2, (r.Y1+r.Y2)/2)
	raw := [4]geom.Point{
		{X: r.X1, Y: r.Y1}, {X: r.X2, Y: r.Y1},
		{X: r.X2, Y: r.Y2}, {X: r.X1, Y: r.Y2},
	}
	if r.Angle != 0 {
		for i, p := range raw {
			raw[i] = p.RotateAround(c, r.Angle)
		}
	}
	return raw
}

// Bounds implements Shape.
func (r *Rect) Bounds() geom.Rect {
	b := geom.EmptyRect()
	for _, p := range r.Corners() {
		b = b.AddPoint(p)
	}
	return b
}

// Draw implements Shape.
func (r *Rect) Draw(c *raster.Canvas) {
	k := r.Corners()
	c.Polygon(k[:], '#')
}

// Translate implements Shape.
func (r *Rect) Translate(dx, dy float64) {
	r.X1 += dx
	r.Y1 += dy
	r.X2 += dx
	r.Y2 += dy
}

// RotateScale implements Shape.
func (r *Rect) RotateScale(center geom.Point, angle, s float64) {
	c := geom.Pt((r.X1+r.X2)/2, (r.Y1+r.Y2)/2)
	nc := c.Sub(center).Rotate(angle).Scale(s).Add(center)
	hw, hh := (r.X2-r.X1)/2*s, (r.Y2-r.Y1)/2*s
	r.X1, r.X2 = nc.X-hw, nc.X+hw
	r.Y1, r.Y2 = nc.Y-hh, nc.Y+hh
	r.Angle += angle
}

// Touches implements Shape: true near any edge.
func (r *Rect) Touches(p geom.Point, tol float64) bool {
	k := r.Corners()
	for i := 0; i < 4; i++ {
		if geom.SegmentDist(p, k[i], k[(i+1)%4]) <= tol {
			return true
		}
	}
	return false
}

// Clone implements Shape.
func (r *Rect) Clone() Shape {
	c := *r
	c.id = 0
	return &c
}

// Ellipse is an axis-aligned ellipse (GDP's ellipse gesture fixes the
// center at the gesture start; manipulation drags size and eccentricity).
// Axis tilt is not modelled; RotateScale moves the center and scales the
// radii, which this reproduction documents as a simplification.
type Ellipse struct {
	base
	CX, CY, RX, RY float64
}

// NewEllipse returns an ellipse centered at (cx, cy).
func NewEllipse(cx, cy, rx, ry float64) *Ellipse {
	return &Ellipse{CX: cx, CY: cy, RX: math.Abs(rx), RY: math.Abs(ry)}
}

// Kind implements Shape.
func (e *Ellipse) Kind() string { return "ellipse" }

// Bounds implements Shape.
func (e *Ellipse) Bounds() geom.Rect {
	return geom.Rect{MinX: e.CX - e.RX, MinY: e.CY - e.RY, MaxX: e.CX + e.RX, MaxY: e.CY + e.RY}
}

// Draw implements Shape.
func (e *Ellipse) Draw(c *raster.Canvas) { c.Ellipse(e.CX, e.CY, e.RX, e.RY, 'o') }

// Translate implements Shape.
func (e *Ellipse) Translate(dx, dy float64) {
	e.CX += dx
	e.CY += dy
}

// RotateScale implements Shape.
func (e *Ellipse) RotateScale(center geom.Point, angle, s float64) {
	nc := geom.Pt(e.CX, e.CY).Sub(center).Rotate(angle).Scale(s).Add(center)
	e.CX, e.CY = nc.X, nc.Y
	e.RX *= s
	e.RY *= s
}

// Touches implements Shape: true near the ellipse outline.
func (e *Ellipse) Touches(p geom.Point, tol float64) bool {
	if e.RX < 1e-9 || e.RY < 1e-9 {
		return p.Dist(geom.Pt(e.CX, e.CY)) <= tol
	}
	dx := (p.X - e.CX) / e.RX
	dy := (p.Y - e.CY) / e.RY
	r := math.Hypot(dx, dy)
	// Distance from the outline, approximated in the scaled metric.
	return math.Abs(r-1)*math.Min(e.RX, e.RY) <= tol
}

// Clone implements Shape.
func (e *Ellipse) Clone() Shape {
	c := *e
	c.id = 0
	return &c
}

// Text is a text label anchored at its top-left cell.
type Text struct {
	base
	X, Y float64
	S    string
}

// NewText returns a text shape.
func NewText(x, y float64, s string) *Text { return &Text{X: x, Y: y, S: s} }

// Kind implements Shape.
func (t *Text) Kind() string { return "text" }

// Bounds implements Shape.
func (t *Text) Bounds() geom.Rect {
	w := float64(len(t.S))
	if w == 0 {
		w = 1
	}
	return geom.Rect{MinX: t.X, MinY: t.Y, MaxX: t.X + w, MaxY: t.Y + 1}
}

// Draw implements Shape.
func (t *Text) Draw(c *raster.Canvas) {
	c.Text(int(math.Round(t.X)), int(math.Round(t.Y)), t.S)
}

// Translate implements Shape.
func (t *Text) Translate(dx, dy float64) {
	t.X += dx
	t.Y += dy
}

// RotateScale implements Shape (text only relocates; glyphs do not scale
// on a character canvas).
func (t *Text) RotateScale(center geom.Point, angle, s float64) {
	np := geom.Pt(t.X, t.Y).Sub(center).Rotate(angle).Scale(s).Add(center)
	t.X, t.Y = np.X, np.Y
}

// Touches implements Shape.
func (t *Text) Touches(p geom.Point, tol float64) bool {
	return t.Bounds().Inset(-tol).Contains(p)
}

// Clone implements Shape.
func (t *Text) Clone() Shape {
	c := *t
	c.id = 0
	return &c
}

// Dot is a point marker (the dot gesture).
type Dot struct {
	base
	X, Y float64
}

// NewDot returns a dot at (x, y).
func NewDot(x, y float64) *Dot { return &Dot{X: x, Y: y} }

// Kind implements Shape.
func (d *Dot) Kind() string { return "dot" }

// Bounds implements Shape.
func (d *Dot) Bounds() geom.Rect {
	return geom.Rect{MinX: d.X, MinY: d.Y, MaxX: d.X, MaxY: d.Y}
}

// Draw implements Shape.
func (d *Dot) Draw(c *raster.Canvas) { c.SetF(d.X, d.Y, '@') }

// Translate implements Shape.
func (d *Dot) Translate(dx, dy float64) {
	d.X += dx
	d.Y += dy
}

// RotateScale implements Shape.
func (d *Dot) RotateScale(center geom.Point, angle, s float64) {
	np := geom.Pt(d.X, d.Y).Sub(center).Rotate(angle).Scale(s).Add(center)
	d.X, d.Y = np.X, np.Y
}

// Touches implements Shape.
func (d *Dot) Touches(p geom.Point, tol float64) bool {
	return p.Dist(geom.Pt(d.X, d.Y)) <= tol+1
}

// Clone implements Shape.
func (d *Dot) Clone() Shape {
	c := *d
	c.id = 0
	return &c
}

// Group is a composite shape — "the group gesture generates a composite
// object out of the enclosed objects". Operations apply to every member.
type Group struct {
	base
	Members []Shape
}

// NewGroup returns a group over the given members.
func NewGroup(members []Shape) *Group { return &Group{Members: members} }

// Kind implements Shape.
func (g *Group) Kind() string { return "group" }

// Add appends a member (the group gesture's manipulation phase: "additional
// objects may be added to the group by touching them").
func (g *Group) Add(s Shape) { g.Members = append(g.Members, s) }

// Bounds implements Shape.
func (g *Group) Bounds() geom.Rect {
	b := geom.EmptyRect()
	for _, m := range g.Members {
		b = b.Union(m.Bounds())
	}
	return b
}

// Draw implements Shape.
func (g *Group) Draw(c *raster.Canvas) {
	for _, m := range g.Members {
		m.Draw(c)
	}
}

// Translate implements Shape.
func (g *Group) Translate(dx, dy float64) {
	for _, m := range g.Members {
		m.Translate(dx, dy)
	}
}

// RotateScale implements Shape.
func (g *Group) RotateScale(center geom.Point, angle, s float64) {
	for _, m := range g.Members {
		m.RotateScale(center, angle, s)
	}
}

// Touches implements Shape.
func (g *Group) Touches(p geom.Point, tol float64) bool {
	for _, m := range g.Members {
		if m.Touches(p, tol) {
			return true
		}
	}
	return false
}

// Clone implements Shape.
func (g *Group) Clone() Shape {
	out := &Group{Members: make([]Shape, len(g.Members))}
	for i, m := range g.Members {
		out.Members[i] = m.Clone()
	}
	return out
}

// String summarizes a shape for logs.
func String(s Shape) string {
	b := s.Bounds()
	return fmt.Sprintf("%s#%d[%.0f,%.0f..%.0f,%.0f]", s.Kind(), s.ID(), b.MinX, b.MinY, b.MaxX, b.MaxY)
}
