// Command geval regenerates the paper's evaluation: every figure of
// section 5 plus the ablations indexed in DESIGN.md. Running it with no
// flags reproduces everything and prints the tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	geval [-exp all|fig9|fig10|fig8|ud|baseline|backends|timing|ablation-twoclass|ablation-bias|ablation-threshold|trainsize]
//	      [-train N] [-test N] [-train-seed S] [-test-seed S]
//	      [-parallel] [-j N]
//
// -exp also accepts a comma-separated list (e.g. -exp fig9,fig10,ud).
// -parallel runs the selected experiments concurrently — the section 5
// sweep over all synthetic sets at once — printing results in the same
// deterministic order as the serial sweep. -j sets the training
// parallelism inside each experiment (0 = auto, 1 = the serial reference
// path); either way the trained classifiers are bit-identical.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"repro/internal/experiments"
	"repro/internal/synth"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes geval with the given arguments. Extracted from main for
// tests.
func run(args []string, stdout, stderr io.Writer) int {
	flag := flag.NewFlagSet("geval", flag.ContinueOnError)
	flag.SetOutput(stderr)
	exp := flag.String("exp", "all", "experiment to run, or a comma-separated list")
	annotate := flag.Bool("annotate", false, "with -exp fig9|fig10: print per-example annotations in the figure's min,fired/total notation")
	confusion := flag.Bool("confusion", false, "with -exp fig9|fig10|fig8: print full and eager confusion matrices")
	parallel := flag.Bool("parallel", false, "run the selected experiments concurrently (results still print in deterministic order)")
	jobs := flag.Int("j", 0, "training parallelism inside each experiment: 0 = auto (GOMAXPROCS), 1 = serial reference path")
	trainN := flag.Int("train", 10, "training examples per class")
	testN := flag.Int("test", 30, "test examples per class")
	trainSeed := flag.Int64("train-seed", 42, "training set seed")
	testSeed := flag.Int64("test-seed", 1042, "test set seed")
	if err := flag.Parse(args); err != nil {
		return 2
	}
	if *jobs < 0 {
		fmt.Fprintln(stderr, "geval: -j must be >= 0")
		return 2
	}

	cfg := experiments.DefaultConfig()
	cfg.TrainPerClass = *trainN
	cfg.TestPerClass = *testN
	cfg.TrainSeed = *trainSeed
	cfg.TestSeed = *testSeed
	cfg.Eager.Parallelism = *jobs

	workload := func() []synth.Class {
		switch *exp {
		case "fig9":
			return synth.EightDirectionClasses()
		case "fig10":
			return synth.GDPClasses()
		case "fig8":
			return synth.NoteClasses()
		default:
			return nil
		}
	}

	if *annotate {
		classes := workload()
		if classes == nil {
			fmt.Fprintln(stderr, "geval: -annotate requires -exp fig9|fig10|fig8")
			return 2
		}
		anns, err := experiments.Annotate(*exp, classes, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "geval: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, experiments.FormatAnnotations(anns))
		return 0
	}

	if *confusion {
		classes := workload()
		if classes == nil {
			fmt.Fprintln(stderr, "geval: -confusion requires -exp fig9|fig10|fig8")
			return 2
		}
		full, eagerC, err := experiments.Confusions(*exp, classes, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "geval: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "full classifier confusion (accuracy %.1f%%):\n%s\n", 100*full.Accuracy(), full.Format())
		fmt.Fprintf(stdout, "eager recognizer confusion (accuracy %.1f%%):\n%s\n", 100*eagerC.Accuracy(), eagerC.Format())
		if errs := eagerC.Errors(); len(errs) > 0 {
			fmt.Fprintln(stdout, "eager errors:", errs)
		}
		return 0
	}

	wrap := func(f func(experiments.Config) (*experiments.EagerEval, error)) func() (fmt.Stringer, error) {
		return func() (fmt.Stringer, error) {
			r, err := f(cfg)
			if err != nil {
				return nil, err
			}
			return stringer{r.Format()}, nil
		}
	}
	wrapAb := func(f func(experiments.Config) (*experiments.Ablation, error)) func() (fmt.Stringer, error) {
		return func() (fmt.Stringer, error) {
			r, err := f(cfg)
			if err != nil {
				return nil, err
			}
			return stringer{r.Format()}, nil
		}
	}

	all := []runner{
		{"fig9", wrap(experiments.Fig9)},
		{"fig10", wrap(experiments.Fig10)},
		{"fig8", wrap(experiments.Fig8)},
		{"ud", wrap(experiments.UD)},
		{"baseline", func() (fmt.Stringer, error) {
			r, err := experiments.RunBaseline(cfg)
			if err != nil {
				return nil, err
			}
			return stringer{r.Format()}, nil
		}},
		{"backends", func() (fmt.Stringer, error) {
			r, err := experiments.RunBackends(cfg)
			if err != nil {
				return nil, err
			}
			return stringer{r.Format()}, nil
		}},
		{"rejection", func() (fmt.Stringer, error) {
			r, err := experiments.RunRejection(cfg)
			if err != nil {
				return nil, err
			}
			return stringer{r.Format()}, nil
		}},
		{"tail", func() (fmt.Stringer, error) {
			r, err := experiments.RunTailEffect(cfg)
			if err != nil {
				return nil, err
			}
			return stringer{r.Format()}, nil
		}},
		{"timing", func() (fmt.Stringer, error) {
			r, err := experiments.RunTiming(cfg)
			if err != nil {
				return nil, err
			}
			return stringer{r.Format()}, nil
		}},
		{"ablation-twoclass", wrapAb(experiments.AblationTwoClassAUC)},
		{"ablation-bias", wrapAb(func(c experiments.Config) (*experiments.Ablation, error) {
			return experiments.AblationBiasSweep(c, nil)
		})},
		{"ablation-threshold", wrapAb(func(c experiments.Config) (*experiments.Ablation, error) {
			return experiments.AblationThresholdSweep(c, nil)
		})},
		{"ablation-agreement", wrapAb(experiments.AblationAgreement)},
		{"ablation-features", wrapAb(experiments.FeatureDropSweep)},
		{"ablation-cornerloop", wrapAb(func(c experiments.Config) (*experiments.Ablation, error) {
			return experiments.CornerLoopSweep(c, nil)
		})},
		{"trainsize", wrapAb(func(c experiments.Config) (*experiments.Ablation, error) {
			return experiments.TrainSizeSweep(c, nil)
		})},
	}

	selected, unknown := selectRunners(all, *exp)
	if unknown != "" {
		fmt.Fprintf(stderr, "geval: unknown experiment %q\n", unknown)
		return 2
	}

	outs := make([]fmt.Stringer, len(selected))
	errs := make([]error, len(selected))
	if *parallel {
		// Parallel sweep: every selected experiment trains and evaluates
		// concurrently. Experiments are independent (each builds its own
		// synthetic sets and recognizers), so the only shared state is the
		// result slot each goroutine owns. Output stays in selection order.
		var wg sync.WaitGroup
		for i, r := range selected {
			wg.Add(1)
			go func(i int, r runner) {
				defer wg.Done()
				outs[i], errs[i] = r.run()
			}(i, r)
		}
		wg.Wait()
	} else {
		for i, r := range selected {
			outs[i], errs[i] = r.run()
		}
	}
	for i, r := range selected {
		if errs[i] != nil {
			fmt.Fprintf(stderr, "geval %s: %v\n", r.name, errs[i])
			return 1
		}
		fmt.Fprintln(stdout, outs[i])
	}
	return 0
}

// selectRunners resolves a comma-separated -exp value against the runner
// table, preserving table order. It returns the first unknown name, if
// any.
func selectRunners(all []runner, exp string) (selected []runner, unknown string) {
	if exp == "all" {
		return all, ""
	}
	want := map[string]bool{}
	for _, name := range strings.Split(exp, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, r := range all {
			if r.name == name {
				found = true
				break
			}
		}
		if !found {
			return nil, name
		}
		want[name] = true
	}
	if len(want) == 0 {
		return nil, exp
	}
	for _, r := range all {
		if want[r.name] {
			selected = append(selected, r)
		}
	}
	return selected, ""
}

// runner names one experiment of the section 5 sweep.
type runner struct {
	name string
	run  func() (fmt.Stringer, error)
}

type stringer struct{ s string }

func (s stringer) String() string { return s.s }
