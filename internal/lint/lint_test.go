package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestNopanic(t *testing.T) {
	const fixture = "fixture/nopanic"
	lint.NopanicProtected[fixture] = true
	defer delete(lint.NopanicProtected, fixture)
	linttest.Run(t, lint.Nopanic, "testdata/nopanic", fixture)
}

func TestNopanicUnprotectedPackage(t *testing.T) {
	// The same fixture under an unprotected path must produce no
	// diagnostics at all — which would make every `want` comment fail —
	// so load it directly and assert emptiness.
	pkg, err := lint.LoadDir("testdata/nopanic", "fixture/unprotected")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, []*lint.Analyzer{lint.Nopanic})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("nopanic flagged an unprotected package: %v", diags)
	}
}

func TestFloateq(t *testing.T) {
	linttest.Run(t, lint.Floateq, "testdata/floateq", "fixture/floateq")
}

func TestNanGuard(t *testing.T) {
	linttest.Run(t, lint.NanGuard, "testdata/nanguard", "fixture/nanguard")
}

func TestMutexcopy(t *testing.T) {
	linttest.Run(t, lint.Mutexcopy, "testdata/mutexcopy", "fixture/mutexcopy")
}

func TestCtxarg(t *testing.T) {
	linttest.Run(t, lint.Ctxarg, "testdata/ctxarg", "fixture/ctxarg")
}

func TestSpanend(t *testing.T) {
	linttest.Run(t, lint.Spanend, "testdata/spanend", "fixture/spanend")
}

func TestErrcmp(t *testing.T) {
	linttest.Run(t, lint.Errcmp, "testdata/errcmp", "fixture/errcmp")
}

func TestExpdoc(t *testing.T) {
	const fixture = "fixture/expdoc"
	lint.ExpdocPackages[fixture] = true
	defer delete(lint.ExpdocPackages, fixture)
	linttest.Run(t, lint.Expdoc, "testdata/expdoc", fixture)
}

func TestExpdocUncheckedPackage(t *testing.T) {
	// The fixture loaded under a path outside ExpdocPackages must produce
	// no diagnostics.
	pkg, err := lint.LoadDir("testdata/expdoc", "fixture/unchecked")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, []*lint.Analyzer{lint.Expdoc})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("expdoc flagged an unchecked package: %v", diags)
	}
}

// TestProtectedPackagesExist guards the nopanic configuration against
// refactors that move or rename a protected package: a protected path
// that no longer loads would silently disable the gate.
func TestProtectedPackagesExist(t *testing.T) {
	pkgs, err := lint.Load("../..", []string{"./internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, p := range pkgs {
		found[p.ImportPath] = true
	}
	for path := range lint.NopanicProtected {
		if !found[path] {
			t.Errorf("nopanic protects %s, but that package does not exist", path)
		}
	}
	for path := range lint.ExpdocPackages {
		if !found[path] {
			t.Errorf("expdoc checks %s, but that package does not exist", path)
		}
	}
}
