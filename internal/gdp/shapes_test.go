package gdp

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/mathx"
	"repro/internal/raster"
)

func TestLineBasics(t *testing.T) {
	l := NewLine(0, 0, 30, 40)
	if l.Kind() != "line" {
		t.Error("kind")
	}
	if b := l.Bounds(); b != (geom.Rect{MinX: 0, MinY: 0, MaxX: 30, MaxY: 40}) {
		t.Errorf("bounds %+v", b)
	}
	if !l.Touches(geom.Pt(15, 20), 1) {
		t.Error("midpoint not touched")
	}
	if l.Touches(geom.Pt(40, 0), 1) {
		t.Error("far point touched")
	}
	l.Translate(10, 10)
	if l.X1 != 10 || l.Y2 != 50 {
		t.Error("translate")
	}
	c := l.Clone().(*Line)
	c.X1 = 999
	if l.X1 == 999 {
		t.Error("clone aliases")
	}
}

func TestLineRotateScale(t *testing.T) {
	l := NewLine(10, 0, 20, 0)
	l.RotateScale(geom.Pt(0, 0), math.Pi/2, 2)
	if !mathx.ApproxEqual(l.X1, 0, 1e-9) || !mathx.ApproxEqual(l.Y1, 20, 1e-9) {
		t.Errorf("endpoint 1 = (%v,%v)", l.X1, l.Y1)
	}
	if !mathx.ApproxEqual(l.Y2, 40, 1e-9) {
		t.Errorf("endpoint 2 y = %v", l.Y2)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(0, 0, 20, 10)
	if b := r.Bounds(); b != (geom.Rect{MinX: 0, MinY: 0, MaxX: 20, MaxY: 10}) {
		t.Errorf("bounds %+v", b)
	}
	if !r.Touches(geom.Pt(10, 0), 1) || !r.Touches(geom.Pt(20, 5), 1) {
		t.Error("edges not touched")
	}
	if r.Touches(geom.Pt(10, 5), 1) {
		t.Error("interior touched (outline shape)")
	}
	r.RotateScale(geom.Pt(10, 5), math.Pi/2, 1)
	// Rotated 90 degrees about its center: bounds become 10x20.
	b := r.Bounds()
	if !mathx.ApproxEqual(b.Width(), 10, 1e-9) || !mathx.ApproxEqual(b.Height(), 20, 1e-9) {
		t.Errorf("rotated bounds %vx%v", b.Width(), b.Height())
	}
}

func TestEllipseBasics(t *testing.T) {
	e := NewEllipse(50, 50, 20, 10)
	if !e.Touches(geom.Pt(70, 50), 1.5) || !e.Touches(geom.Pt(50, 40), 1.5) {
		t.Error("outline not touched")
	}
	if e.Touches(geom.Pt(50, 50), 1.5) {
		t.Error("center touched")
	}
	e.RotateScale(geom.Pt(50, 50), 0, 2)
	if e.RX != 40 || e.RY != 20 {
		t.Errorf("scaled radii %v,%v", e.RX, e.RY)
	}
	// Degenerate ellipse falls back to center proximity.
	z := NewEllipse(0, 0, 0, 0)
	if !z.Touches(geom.Pt(0.5, 0), 1) {
		t.Error("degenerate ellipse not touched at center")
	}
}

func TestTextAndDot(t *testing.T) {
	tx := NewText(5, 5, "hi")
	if !tx.Touches(geom.Pt(6, 5.5), 0) {
		t.Error("text not touched")
	}
	tx.Translate(1, 1)
	if tx.X != 6 {
		t.Error("translate")
	}
	d := NewDot(3, 3)
	if !d.Touches(geom.Pt(3.5, 3), 1) {
		t.Error("dot not touched")
	}
	if d.Touches(geom.Pt(30, 3), 1) {
		t.Error("far dot touched")
	}
}

func TestGroup(t *testing.T) {
	g := NewGroup([]Shape{NewLine(0, 0, 10, 0), NewDot(20, 20)})
	if g.Bounds() != (geom.Rect{MinX: 0, MinY: 0, MaxX: 20, MaxY: 20}) {
		t.Errorf("bounds %+v", g.Bounds())
	}
	if !g.Touches(geom.Pt(5, 0), 1) || !g.Touches(geom.Pt(20, 20), 1) {
		t.Error("members not touched")
	}
	g.Translate(5, 5)
	if g.Bounds().MinX != 5 {
		t.Error("translate")
	}
	c := g.Clone().(*Group)
	c.Members[0].Translate(100, 0)
	if g.Members[0].Bounds().MinX > 50 {
		t.Error("clone aliases members")
	}
	g.Add(NewDot(100, 100))
	if len(g.Members) != 3 {
		t.Error("Add")
	}
}

func TestSceneOperations(t *testing.T) {
	s := NewScene()
	l := NewLine(0, 0, 10, 0)
	r := NewRect(5, -5, 15, 5)
	s.Add(l)
	s.Add(r)
	if l.ID() == 0 || r.ID() == 0 || l.ID() == r.ID() {
		t.Error("IDs not assigned uniquely")
	}
	if s.ByID(l.ID()) != Shape(l) || s.ByID(999) != nil {
		t.Error("ByID")
	}
	// TopAt returns the topmost (later-added) among overlaps.
	if got := s.TopAt(geom.Pt(5, 0), 1); got != Shape(r) {
		// (5,0) is on the line and near the rect's left edge.
		t.Errorf("TopAt = %v", got)
	}
	s.Remove(r)
	if s.Len() != 1 {
		t.Error("Remove")
	}
	s.Remove(r) // double remove is fine
	enc := s.EnclosedBy(geom.Rect{MinX: -1, MinY: -1, MaxX: 11, MaxY: 1})
	if len(enc) != 1 || enc[0] != Shape(l) {
		t.Errorf("EnclosedBy = %v", enc)
	}
	if len(s.EnclosedBy(geom.Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 1})) != 0 {
		t.Error("partial enclosure counted")
	}
	if got := strings.Join(s.Kinds(), ","); got != "line" {
		t.Errorf("kinds = %s", got)
	}
	s.Clear()
	if s.Len() != 0 {
		t.Error("Clear")
	}
}

func TestSceneDraw(t *testing.T) {
	s := NewScene()
	s.Add(NewRect(2, 2, 12, 8))
	s.Add(NewDot(5, 5))
	c := raster.NewCanvas(20, 12)
	s.Draw(c)
	if c.Count('#') == 0 || c.Count('@') != 1 {
		t.Errorf("draw counts: #=%d @=%d", c.Count('#'), c.Count('@'))
	}
}

func TestShapeString(t *testing.T) {
	s := NewScene()
	l := NewLine(1, 2, 3, 4)
	s.Add(l)
	got := String(l)
	if !strings.HasPrefix(got, "line#1[") {
		t.Errorf("String = %s", got)
	}
}

func TestEnclosedByPolygon(t *testing.T) {
	s := NewScene()
	inside := NewDot(5, 5)
	outside := NewDot(50, 50)
	straddle := NewRect(8, 8, 30, 12) // pokes out of the lasso
	s.Add(inside)
	s.Add(outside)
	s.Add(straddle)
	lasso := []geom.Point{{X: 0, Y: 0}, {X: 20, Y: 0}, {X: 20, Y: 20}, {X: 0, Y: 20}}
	got := s.EnclosedByPolygon(lasso)
	if len(got) != 1 || got[0] != Shape(inside) {
		t.Errorf("enclosed = %v", got)
	}
	if s.EnclosedByPolygon(lasso[:2]) != nil {
		t.Error("degenerate lasso enclosed something")
	}
	// A concave lasso excludes shapes in its notch even though they are in
	// its bounding box.
	s2 := NewScene()
	notched := NewDot(16, 10)
	s2.Add(notched)
	cShape := []geom.Point{
		{X: 0, Y: 0}, {X: 20, Y: 0}, {X: 20, Y: 6}, {X: 6, Y: 6},
		{X: 6, Y: 14}, {X: 20, Y: 14}, {X: 20, Y: 20}, {X: 0, Y: 20},
	}
	if len(s2.EnclosedByPolygon(cShape)) != 0 {
		t.Error("dot in the lasso's notch was enclosed; bbox semantics leaked back")
	}
}

func TestScenePersistenceRoundTrip(t *testing.T) {
	s := NewScene()
	thick := NewLine(1, 2, 3, 4)
	thick.Thickness = 3
	s.Add(thick)
	tilted := NewRect(10, 10, 40, 30)
	tilted.Angle = 0.5
	s.Add(tilted)
	s.Add(NewEllipse(50, 50, 20, 10))
	s.Add(NewText(5, 5, "hello world"))
	s.Add(NewDot(99, 99))
	s.Add(NewGroup([]Shape{NewDot(1, 1), NewLine(0, 0, 5, 5)}))

	var buf strings.Builder
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScene(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got.Kinds(), ",") != strings.Join(s.Kinds(), ",") {
		t.Fatalf("kinds: %v vs %v", got.Kinds(), s.Kinds())
	}
	if l := got.Shapes()[0].(*Line); l.Thickness != 3 {
		t.Errorf("thickness lost: %v", l.Thickness)
	}
	if r := got.Shapes()[1].(*Rect); r.Angle != 0.5 {
		t.Errorf("angle lost: %v", r.Angle)
	}
	if tx := got.Shapes()[3].(*Text); tx.S != "hello world" {
		t.Errorf("text lost: %q", tx.S)
	}
	g := got.Shapes()[5].(*Group)
	if len(g.Members) != 2 || g.Members[1].Kind() != "line" {
		t.Errorf("group members: %v", len(g.Members))
	}
	// Fresh IDs assigned.
	if got.Shapes()[0].ID() == 0 {
		t.Error("loaded shape has no ID")
	}
}

func TestSceneFileAndErrors(t *testing.T) {
	s := NewScene()
	s.Add(NewDot(1, 1))
	path := t.TempDir() + "/scene.json"
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScene(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("loaded %d shapes", got.Len())
	}
	if _, err := LoadScene(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := ReadScene(strings.NewReader(`[{"kind":"blob"}]`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ReadScene(strings.NewReader("junk")); err == nil {
		t.Error("garbage accepted")
	}
}
