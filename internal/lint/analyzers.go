package lint

// All returns the full analyzer suite in the order glint runs it.
func All() []*Analyzer {
	return []*Analyzer{Nopanic, Floateq, NanGuard, Mutexcopy, Ctxarg, Expdoc, Spanend, Errcmp}
}
