// Package gesture defines the gesture and gesture-set types shared by the
// recognizer, the eager-recognition trainer, and the GRANDMA toolkit.
//
// Following the paper (section 4.1), a gesture g is a sequence of points
// g_p = (x_p, y_p, t_p); the i-th subgesture g[i] is the prefix consisting
// of the first i points; the term "full gesture" distinguishes g from its
// proper prefixes.
package gesture

import (
	"errors"
	"fmt"

	"repro/internal/geom"
)

// Gesture is a single-stroke gesture: the samples collected between a
// mouse-down and the end of the interaction.
type Gesture struct {
	Points geom.Path `json:"points"`
}

// New returns a gesture over the given samples. The slice is used directly
// (not copied); callers that go on mutating it should pass a clone.
func New(points geom.Path) Gesture { return Gesture{Points: points} }

// Len returns |g|, the number of points in the gesture.
func (g Gesture) Len() int { return len(g.Points) }

// Sub returns the subgesture g[i]: the prefix of the first i points. It
// aliases g's backing array. Sub panics when i is out of range, matching
// the paper's "g[i] is undefined when i > |g|".
func (g Gesture) Sub(i int) Gesture { return Gesture{Points: g.Points.Prefix(i)} }

// Bounds returns the gesture's bounding box.
func (g Gesture) Bounds() geom.Rect { return g.Points.Bounds() }

// Start returns the first sample. It panics on an empty gesture.
func (g Gesture) Start() geom.TimedPoint { return g.Points[0] }

// End returns the last sample. It panics on an empty gesture.
func (g Gesture) End() geom.TimedPoint { return g.Points[len(g.Points)-1] }

// PathLength returns the total arc length of the gesture.
func (g Gesture) PathLength() float64 { return g.Points.Length() }

// Duration returns the elapsed time between the first and last samples.
func (g Gesture) Duration() float64 { return g.Points.Duration() }

// Clone returns a deep copy of g.
func (g Gesture) Clone() Gesture { return Gesture{Points: g.Points.Clone()} }

// String implements fmt.Stringer with a compact debugging summary.
func (g Gesture) String() string {
	if g.Len() == 0 {
		return "gesture(empty)"
	}
	s, e := g.Start(), g.End()
	return fmt.Sprintf("gesture(%d pts, (%.0f,%.0f)->(%.0f,%.0f), %.0fms)",
		g.Len(), s.X, s.Y, e.X, e.Y, g.Duration()*1000)
}

// Example is a labelled training (or test) gesture.
type Example struct {
	Class   string  `json:"class"`
	Gesture Gesture `json:"gesture"`
}

// Set is a named collection of labelled examples — the unit the trainers
// consume and the cmd tools serialize.
type Set struct {
	Name     string    `json:"name"`
	Examples []Example `json:"examples"`
}

// Add appends a labelled example to the set.
func (s *Set) Add(class string, g Gesture) {
	s.Examples = append(s.Examples, Example{Class: class, Gesture: g})
}

// Classes returns the distinct class names in first-appearance order. The
// order is deterministic for a given example order, which keeps trained
// classifier layouts reproducible.
func (s *Set) Classes() []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range s.Examples {
		if !seen[e.Class] {
			seen[e.Class] = true
			out = append(out, e.Class)
		}
	}
	return out
}

// ByClass groups the set's gestures by class name.
func (s *Set) ByClass() map[string][]Gesture {
	out := make(map[string][]Gesture)
	for _, e := range s.Examples {
		out[e.Class] = append(out[e.Class], e.Gesture)
	}
	return out
}

// CountByClass returns the number of examples of each class.
func (s *Set) CountByClass() map[string]int {
	out := make(map[string]int)
	for _, e := range s.Examples {
		out[e.Class]++
	}
	return out
}

// Len returns the total number of examples in the set.
func (s *Set) Len() int { return len(s.Examples) }

// ErrEmptySet is returned by Validate for sets with no examples.
var ErrEmptySet = errors.New("gesture: set has no examples")

// Validate checks that the set is usable for training: non-empty, every
// example non-empty, and timestamps non-decreasing within each gesture.
func (s *Set) Validate() error {
	if len(s.Examples) == 0 {
		return ErrEmptySet
	}
	for i, e := range s.Examples {
		if e.Class == "" {
			return fmt.Errorf("gesture: example %d has empty class name", i)
		}
		if e.Gesture.Len() == 0 {
			return fmt.Errorf("gesture: example %d (%s) is empty", i, e.Class)
		}
		pts := e.Gesture.Points
		for j := 1; j < len(pts); j++ {
			if pts[j].T < pts[j-1].T {
				return fmt.Errorf("gesture: example %d (%s) has decreasing timestamp at point %d", i, e.Class, j)
			}
		}
	}
	return nil
}
