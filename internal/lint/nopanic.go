package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NopanicProtected lists the import paths whose exported API must not
// panic: the numerics and recognition packages that process raw,
// possibly-degenerate gesture data. Data-dependent failures there must be
// returned as errors — a panic inside the per-mouse-point path takes down
// the whole interface over one malformed stroke. The var is exported so
// tests can scope the analyzer to fixture packages.
var NopanicProtected = map[string]bool{
	"repro/internal/classifier": true,
	"repro/internal/eager":      true,
	"repro/internal/recognizer": true,
	"repro/internal/features":   true,
	"repro/internal/linalg":     true,
}

// Nopanic reports panic calls reachable from the exported functions of
// protected packages, following the package-internal static call graph.
var Nopanic = &Analyzer{
	Name: "nopanic",
	Doc: "flag panic calls reachable from exported functions of the recognition and numerics packages " +
		"(repro/internal/{classifier,eager,recognizer,features,linalg}); data-dependent failures must return errors. " +
		"Invariant guards that cannot be reached by data may be allowlisted with //lint:ignore nopanic <reason>.",
	Run: runNopanic,
}

// funcNode is one node of the intra-package call graph.
type funcNode struct {
	decl     *ast.FuncDecl
	exported bool
	panics   []token.Pos     // direct panic call sites in the body
	calls    map[*funcNode]bool
}

func runNopanic(pass *Pass) error {
	if !NopanicProtected[pass.Pkg.Path()] {
		return nil
	}

	// Index every function declaration by its types.Object so call sites
	// can be resolved to declarations.
	nodes := map[types.Object]*funcNode{}
	var order []*funcNode
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			n := &funcNode{decl: fd, exported: exportedEntry(fd), calls: map[*funcNode]bool{}}
			nodes[obj] = n
			order = append(order, n)
		}
	}

	// Populate panic sites and intra-package call edges.
	for _, n := range order {
		node := n
		ast.Inspect(node.decl.Body, func(nd ast.Node) bool {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				obj := pass.Info.Uses[fun]
				if obj == nil {
					return true
				}
				if obj == types.Universe.Lookup("panic") {
					node.panics = append(node.panics, call.Pos())
					return true
				}
				if callee := nodes[obj]; callee != nil {
					node.calls[callee] = true
				}
			case *ast.SelectorExpr:
				if obj := pass.Info.Uses[fun.Sel]; obj != nil {
					if callee := nodes[obj]; callee != nil {
						node.calls[callee] = true
					}
				}
			}
			return true
		})
	}

	// From each exported entry point, walk the call graph and report every
	// reachable panic site once, naming one exported function it is
	// reachable from.
	reported := map[token.Pos]bool{}
	for _, root := range order {
		if !root.exported {
			continue
		}
		seen := map[*funcNode]bool{}
		stack := []*funcNode{root}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[n] {
				continue
			}
			seen[n] = true
			for _, p := range n.panics {
				if reported[p] {
					continue
				}
				reported[p] = true
				pass.Reportf(p, "panic reachable from exported function %s; data-dependent failures must return errors",
					root.decl.Name.Name)
			}
			for callee := range n.calls {
				stack = append(stack, callee)
			}
		}
	}
	return nil
}

// exportedEntry reports whether fd is part of the package's exported API:
// an exported top-level function, or an exported method on an exported
// type.
func exportedEntry(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}
