package slo_test

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/slo"
)

// stepClock is a manual test clock satisfying obs.Clock.
type stepClock struct{ ns atomic.Int64 }

func newStepClock(at time.Time) *stepClock {
	c := &stepClock{}
	c.ns.Store(at.UnixNano())
	return c
}

func (c *stepClock) Now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *stepClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

var base = time.Unix(1_700_000_000, 0)

// newFixture wires a registry, manual clock, and engine over the default
// objectives, and returns the instruments the objectives read.
func newFixture() (*stepClock, *obs.Registry, *slo.Engine, *obs.WindowedHistogram, *obs.WindowedCounter, *obs.WindowedCounter) {
	clk := newStepClock(base)
	reg := obs.New()
	reg.SetClock(clk)
	eng := slo.New(reg, slo.DefaultObjectives(), clk)
	decide := reg.WindowedHistogram("window.eager.decide_ns", obs.LatencyBuckets(), 0, 0)
	nacks := reg.WindowedCounter("window.wire.nacks", 0, 0)
	decoded := reg.WindowedCounter("window.wire.events.decoded", 0, 0)
	return clk, reg, eng, decide, nacks, decoded
}

func status(t *testing.T, ev slo.Evaluation, name string) slo.Status {
	t.Helper()
	for _, st := range ev.Objectives {
		if st.Objective.Name == name {
			return st
		}
	}
	t.Fatalf("objective %q not in evaluation", name)
	return slo.Status{}
}

func TestEvaluateNoTraffic(t *testing.T) {
	_, _, eng, _, _, _ := newFixture()
	ev := eng.Evaluate()
	if len(ev.Objectives) != 2 {
		t.Fatalf("objectives = %d, want 2", len(ev.Objectives))
	}
	for _, st := range ev.Objectives {
		if st.State != slo.StateOK || st.BurnFast != 0 || st.BurnSlow != 0 {
			t.Errorf("%s with no traffic = %v burn %g/%g, want ok 0/0",
				st.Objective.Name, st.State, st.BurnFast, st.BurnSlow)
		}
	}
	if ev.AtNS != base.UnixNano() {
		t.Errorf("AtNS = %d, want the injected clock's %d", ev.AtNS, base.UnixNano())
	}
}

func TestLatencyObjectiveStates(t *testing.T) {
	clk, _, eng, decide, _, _ := newFixture()

	// Healthy: every decide well under the 500µs threshold.
	for i := 0; i < 100; i++ {
		decide.Observe(1e5)
	}
	st := status(t, eng.Evaluate(), "decide_p99")
	if st.State != slo.StateOK || st.BurnFast != 0 {
		t.Fatalf("healthy state = %v burn %g, want ok 0", st.State, st.BurnFast)
	}

	// Regression: half the decides blow the threshold. Bad fraction 0.5
	// against a 1% budget is a burn of 50 on every window → page.
	for i := 0; i < 100; i++ {
		decide.Observe(1e6)
	}
	st = status(t, eng.Evaluate(), "decide_p99")
	if st.State != slo.StatePage {
		t.Fatalf("regressed state = %v, want page (burn fast %g slow %g)", st.State, st.BurnFast, st.BurnSlow)
	}
	if st.BurnFast != 50 || st.BurnSlow != 50 {
		t.Errorf("burns = %g/%g, want 50/50 (ratio 0.5 over 1%% budget)", st.BurnFast, st.BurnSlow)
	}
	if st.FastShort.Bad != 100 || st.FastShort.Total != 200 {
		t.Errorf("fast-short bad/total = %d/%d, want 100/200", st.FastShort.Bad, st.FastShort.Total)
	}

	// Recovery: six minutes later the bad slots have left the 5-minute
	// window but still sit inside the slow 30-minute windows — the page
	// clears (fast pair no longer burning) but the warn holds.
	clk.Advance(6 * time.Minute)
	for i := 0; i < 50; i++ {
		decide.Observe(1e5)
	}
	st = status(t, eng.Evaluate(), "decide_p99")
	if st.State != slo.StateWarn {
		t.Fatalf("recovering state = %v, want warn (burn fast %g slow %g)", st.State, st.BurnFast, st.BurnSlow)
	}
	if st.FastShort.Bad != 0 {
		t.Errorf("fast-short window still sees %d bad after recovery", st.FastShort.Bad)
	}
	if st.SlowShort.Bad != 100 {
		t.Errorf("slow-short window sees %d bad, want the 100 regressed decides", st.SlowShort.Bad)
	}
}

func TestRatioObjectiveStates(t *testing.T) {
	_, _, eng, _, nacks, decoded := newFixture()

	decoded.Add(10000)
	st := status(t, eng.Evaluate(), "wire_nack_ratio")
	if st.State != slo.StateOK {
		t.Fatalf("clean wire state = %v, want ok", st.State)
	}

	// 2% NACKs against a 0.1% budget burns at 20 → page.
	nacks.Add(200)
	st = status(t, eng.Evaluate(), "wire_nack_ratio")
	if st.State != slo.StatePage {
		t.Fatalf("nacking wire state = %v (burn %g), want page", st.State, st.BurnFast)
	}
	if st.FastShort.Bad != 200 || st.FastShort.Total != 10000 {
		t.Errorf("fast-short bad/total = %d/%d, want 200/10000", st.FastShort.Bad, st.FastShort.Total)
	}
}

// TestCoveredTruncation pins the long-window behavior: the 6h slow
// window evaluates over what the default 30m ring covers and reports
// the truncation through CoveredNS.
func TestCoveredTruncation(t *testing.T) {
	_, _, eng, decide, _, _ := newFixture()
	decide.Observe(1e5)
	st := status(t, eng.Evaluate(), "decide_p99")
	if st.SlowLong.WindowNS != int64(6*time.Hour) {
		t.Errorf("slow-long window = %d", st.SlowLong.WindowNS)
	}
	if st.SlowLong.CoveredNS != int64(30*time.Minute) {
		t.Errorf("slow-long covered = %v, want 30m (ring span)", time.Duration(st.SlowLong.CoveredNS))
	}
}

// TestEvaluatePublishesGauges checks the slo.* gauges land in the same
// registry so /metrics and /metrics.prom expose burn state.
func TestEvaluatePublishesGauges(t *testing.T) {
	_, reg, eng, decide, _, _ := newFixture()
	for i := 0; i < 10; i++ {
		decide.Observe(1e6) // everything bad → burn 100, page
	}
	eng.Evaluate()
	snap := reg.Snapshot()
	want := map[string]float64{
		"slo.decide_p99.burn_fast":      100,
		"slo.decide_p99.burn_slow":      100,
		"slo.decide_p99.state":          float64(slo.StatePage),
		"slo.wire_nack_ratio.burn_fast": 0,
		"slo.wire_nack_ratio.state":     float64(slo.StateOK),
	}
	got := map[string]float64{}
	for _, g := range snap.Gauges {
		got[g.Name] = g.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("gauge %s = %g, want %g (have %v)", name, got[name], v, got)
		}
	}
}

func TestStateAndKindStrings(t *testing.T) {
	if slo.StateOK.String() != "ok" || slo.StateWarn.String() != "warn" || slo.StatePage.String() != "page" {
		t.Error("state names drifted")
	}
	if slo.KindLatency.String() != "latency" || slo.KindRatio.String() != "ratio" {
		t.Error("kind names drifted")
	}
	raw, err := json.Marshal(slo.StatePage)
	if err != nil || string(raw) != `"page"` {
		t.Errorf("state JSON = %s, %v", raw, err)
	}
}

func TestHandler(t *testing.T) {
	_, _, eng, decide, _, _ := newFixture()
	decide.Observe(1e5)
	rec := httptest.NewRecorder()
	slo.Handler(eng).ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var ev slo.Evaluation
	if err := json.Unmarshal(rec.Body.Bytes(), &ev); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	if ev.Schema != slo.EvaluationSchema || len(ev.Objectives) != 2 {
		t.Errorf("evaluation = schema %d, %d objectives", ev.Schema, len(ev.Objectives))
	}
	if ev.Objectives[0].Objective.Kind != slo.KindLatency {
		// Kind marshals by name; on decode it must come back typed.
		t.Errorf("kind did not survive the JSON round trip: %+v", ev.Objectives[0].Objective)
	}
}

// BenchmarkSLOEvaluate measures one full evaluation pass over a
// populated registry — the per-scrape cost of the /slo endpoint,
// published in BENCH_slo.json.
func BenchmarkSLOEvaluate(b *testing.B) {
	_, _, eng, decide, nacks, decoded := newFixture()
	for i := 0; i < 1000; i++ {
		decide.Observe(float64(i) * 1e3)
	}
	decoded.Add(100000)
	nacks.Add(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Evaluate()
	}
}
