package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func sq(pts ...float64) Path {
	// Build a path from flat x,y pairs with timestamps 0, 0.02, 0.04, ...
	p := make(Path, 0, len(pts)/2)
	for i := 0; i+1 < len(pts); i += 2 {
		p = append(p, TimedPoint{pts[i], pts[i+1], float64(len(p)) * 0.02})
	}
	return p
}

func TestPathLengthBounds(t *testing.T) {
	p := sq(0, 0, 3, 4, 3, 8)
	if got := p.Length(); got != 9 {
		t.Errorf("Length = %v", got)
	}
	b := p.Bounds()
	if b != (Rect{0, 0, 3, 8}) {
		t.Errorf("Bounds = %+v", b)
	}
	if got := p.Duration(); !mathx.ApproxEqual(got, 0.04, 1e-12) {
		t.Errorf("Duration = %v", got)
	}
}

func TestPathEmptyAndSingle(t *testing.T) {
	var empty Path
	if empty.Length() != 0 || empty.Duration() != 0 || !empty.Bounds().Empty() {
		t.Error("empty path metrics wrong")
	}
	one := sq(1, 2)
	if one.Length() != 0 || one.Duration() != 0 {
		t.Error("single-point path metrics wrong")
	}
}

func TestTranslate(t *testing.T) {
	p := sq(0, 0, 1, 1)
	q := p.Translate(10, -5)
	if q[0].X != 10 || q[0].Y != -5 || q[1].X != 11 || q[1].Y != -4 {
		t.Errorf("Translate = %+v", q)
	}
	if q[0].T != p[0].T {
		t.Error("Translate changed timestamps")
	}
	if p[0].X != 0 {
		t.Error("Translate mutated receiver")
	}
}

func TestScaleRotateAbout(t *testing.T) {
	p := sq(1, 0, 2, 0)
	s := p.ScaleAbout(Pt(0, 0), 2)
	if s[1].X != 4 || s[1].Y != 0 {
		t.Errorf("ScaleAbout = %+v", s)
	}
	r := p.RotateAbout(Pt(0, 0), math.Pi/2)
	if !mathx.ApproxEqual(r[0].X, 0, 1e-12) || !mathx.ApproxEqual(r[0].Y, 1, 1e-12) {
		t.Errorf("RotateAbout = %+v", r)
	}
}

func TestTimeShift(t *testing.T) {
	p := sq(0, 0, 1, 1).TimeShift(5)
	if p[0].T != 5 || !mathx.ApproxEqual(p[1].T, 5.02, 1e-12) {
		t.Errorf("TimeShift = %+v", p)
	}
}

func TestPrefix(t *testing.T) {
	p := sq(0, 0, 1, 1, 2, 2)
	if got := p.Prefix(2); len(got) != 2 || got[1].X != 1 {
		t.Errorf("Prefix = %+v", got)
	}
	if got := p.Prefix(0); len(got) != 0 {
		t.Errorf("Prefix(0) = %+v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Prefix beyond length did not panic")
		}
	}()
	p.Prefix(4)
}

func TestAt(t *testing.T) {
	p := sq(0, 0, 10, 0)
	if got := p.At(0.5); got != Pt(5, 0) {
		t.Errorf("At(0.5) = %v", got)
	}
	if got := p.At(0); got != Pt(0, 0) {
		t.Errorf("At(0) = %v", got)
	}
	if got := p.At(1); got != Pt(10, 0) {
		t.Errorf("At(1) = %v", got)
	}
	if got := p.At(-1); got != Pt(0, 0) {
		t.Errorf("At(-1) = %v", got)
	}
	if got := p.At(2); got != Pt(10, 0) {
		t.Errorf("At(2) = %v", got)
	}
}

func TestResample(t *testing.T) {
	p := sq(0, 0, 10, 0)
	r := p.Resample(11)
	if len(r) != 11 {
		t.Fatalf("Resample len = %d", len(r))
	}
	for i, tp := range r {
		if !mathx.ApproxEqual(tp.X, float64(i), 1e-9) || !mathx.ApproxEqual(tp.Y, 0, 1e-9) {
			t.Errorf("resampled[%d] = %v", i, tp)
		}
	}
	// Endpoints preserved exactly.
	if r[0] != p[0] || r[10] != p[1] {
		t.Error("Resample endpoints not preserved")
	}
}

func TestResampleDegenerate(t *testing.T) {
	// All points coincide.
	p := Path{{1, 1, 0}, {1, 1, 0.1}, {1, 1, 0.2}}
	r := p.Resample(5)
	if len(r) != 5 {
		t.Fatalf("len = %d", len(r))
	}
	for _, tp := range r {
		if tp.X != 1 || tp.Y != 1 {
			t.Errorf("degenerate resample moved point: %v", tp)
		}
	}
	if !mathx.ApproxEqual(r[4].T, 0.2, 1e-12) {
		t.Errorf("degenerate resample last T = %v", r[4].T)
	}
	// Too-short inputs are cloned.
	if got := (Path{{0, 0, 0}}).Resample(5); len(got) != 1 {
		t.Errorf("short path resample = %+v", got)
	}
	if got := p.Resample(1); len(got) != 3 {
		t.Errorf("n<2 resample = %+v", got)
	}
}

func TestResampleLengthPreserved(t *testing.T) {
	f := func(seed uint8) bool {
		// Build a pseudo-random zigzag from the seed.
		p := Path{}
		x, y := 0.0, 0.0
		s := int(seed) + 3
		for i := 0; i < 8; i++ {
			x += float64((s*(i+1))%17) - 8
			y += float64((s*(i+3))%13) - 6
			p = append(p, TimedPoint{x, y, float64(i) * 0.02})
		}
		r := p.Resample(64)
		// Resampling can only shorten (it chords the polyline), and only
		// slightly at this density.
		return r.Length() <= p.Length()+1e-9 && r.Length() >= 0.9*p.Length()-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolylineHelpers(t *testing.T) {
	pts := []Point{{0, 0}, {10, 0}, {10, 10}}
	if got := PolylineLength(pts); got != 20 {
		t.Errorf("PolylineLength = %v", got)
	}
	p, seg := PointAlongPolyline(pts, 15)
	if p != Pt(10, 5) || seg != 1 {
		t.Errorf("PointAlongPolyline(15) = %v seg %d", p, seg)
	}
	p, _ = PointAlongPolyline(pts, -1)
	if p != Pt(0, 0) {
		t.Errorf("clamped low = %v", p)
	}
	p, _ = PointAlongPolyline(pts, 100)
	if p != Pt(10, 10) {
		t.Errorf("clamped high = %v", p)
	}
	if p, _ := PointAlongPolyline(nil, 1); p != Pt(0, 0) {
		t.Errorf("empty polyline = %v", p)
	}
	if p, _ := PointAlongPolyline([]Point{{3, 4}}, 1); p != Pt(3, 4) {
		t.Errorf("single point polyline = %v", p)
	}
}

func TestSegmentDist(t *testing.T) {
	if got := SegmentDist(Pt(5, 5), Pt(0, 0), Pt(10, 0)); got != 5 {
		t.Errorf("mid = %v", got)
	}
	if got := SegmentDist(Pt(-3, 4), Pt(0, 0), Pt(10, 0)); got != 5 {
		t.Errorf("past end = %v", got)
	}
	if got := SegmentDist(Pt(3, 4), Pt(0, 0), Pt(0, 0)); got != 5 {
		t.Errorf("degenerate segment = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := sq(0, 0, 1, 1)
	q := p.Clone()
	q[0].X = 99
	if p[0].X == 99 {
		t.Error("Clone aliases receiver")
	}
}

func TestPolygonContains(t *testing.T) {
	square := []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	if !PolygonContains(square, Pt(5, 5)) {
		t.Error("center not contained")
	}
	if PolygonContains(square, Pt(15, 5)) || PolygonContains(square, Pt(-1, 5)) {
		t.Error("outside point contained")
	}
	// Concave "C" shape: the notch is outside.
	c := []Point{{0, 0}, {10, 0}, {10, 3}, {3, 3}, {3, 7}, {10, 7}, {10, 10}, {0, 10}}
	if !PolygonContains(c, Pt(1, 5)) {
		t.Error("spine not contained")
	}
	if PolygonContains(c, Pt(8, 5)) {
		t.Error("notch contained")
	}
	// Degenerate polygons contain nothing.
	if PolygonContains(nil, Pt(0, 0)) || PolygonContains(square[:2], Pt(0, 0)) {
		t.Error("degenerate polygon contained a point")
	}
}

func TestPolygonContainsMatchesBBoxForConvex(t *testing.T) {
	// For an axis-aligned rectangle polygon, containment agrees with Rect
	// containment away from the boundary.
	square := []Point{{2, 2}, {20, 2}, {20, 14}, {2, 14}}
	r := Rect{2, 2, 20, 14}
	f := func(xq, yq uint8) bool {
		p := Pt(float64(xq%25), float64(yq%25))
		// Skip boundary points where the even-odd rule may differ.
		if p.X == 2 || p.X == 20 || p.Y == 2 || p.Y == 14 {
			return true
		}
		return PolygonContains(square, p) == r.Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathPolygon(t *testing.T) {
	p := sq(1, 2, 3, 4)
	poly := p.Polygon()
	if len(poly) != 2 || poly[0] != Pt(1, 2) || poly[1] != Pt(3, 4) {
		t.Errorf("Polygon = %v", poly)
	}
}
