package display

import (
	"repro/internal/geom"
)

// StrokeTrace converts a timed path into a mouse interaction: a MouseDown
// at the first sample, MouseMoves for the rest, and a MouseUp at upDelay
// seconds after the final sample. This is how gesture recordings (real or
// synthetic) are replayed through GRANDMA.
func StrokeTrace(p geom.Path, button Button, upDelay float64) []Event {
	if len(p) == 0 {
		return nil
	}
	out := make([]Event, 0, len(p)+1)
	for i, tp := range p {
		kind := MouseMove
		if i == 0 {
			kind = MouseDown
		}
		out = append(out, Event{Kind: kind, X: tp.X, Y: tp.Y, Time: tp.T, Button: button})
	}
	last := p[len(p)-1]
	out = append(out, Event{Kind: MouseUp, X: last.X, Y: last.Y, Time: last.T + upDelay, Button: button})
	return out
}

// DragTrace builds a press-drag-release interaction from a start point to
// an end point with n intermediate moves, spread over duration seconds.
func DragTrace(from, to geom.Point, n int, start, duration float64, button Button) []Event {
	if n < 1 {
		n = 1
	}
	out := []Event{{Kind: MouseDown, X: from.X, Y: from.Y, Time: start, Button: button}}
	for i := 1; i <= n; i++ {
		f := float64(i) / float64(n)
		p := from.Lerp(to, f)
		out = append(out, Event{
			Kind: MouseMove, X: p.X, Y: p.Y,
			Time:   start + duration*f,
			Button: button,
		})
	}
	out = append(out, Event{Kind: MouseUp, X: to.X, Y: to.Y, Time: start + duration + 0.01, Button: button})
	return out
}

// HoldAfter appends a motionless pause to a trace by shifting the final
// MouseUp later by hold seconds. It is used to trigger timeout-based phase
// transitions: press, draw, hold still, then keep interacting. Events after
// the last move keep their relative order.
func HoldAfter(events []Event, hold float64) []Event {
	if len(events) == 0 {
		return nil
	}
	out := append([]Event(nil), events...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i].Kind == MouseUp {
			out[i].Time += hold
		}
	}
	return out
}
