package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSelfRunCleanReport: a small -self burst completes with zero NACKs
// under -strict and writes a well-formed report to both stdout and -o.
func TestSelfRunCleanReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_wire.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-self", "-strict", "-conns", "2", "-sessions", "4",
		"-gestures", "2", "-batch", "32", "-seed", "3", "-o", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	for _, doc := range [][]byte{stdout.Bytes(), mustRead(t, out)} {
		var rep report
		if err := json.Unmarshal(doc, &rep); err != nil {
			t.Fatalf("report JSON: %v\n%s", err, doc)
		}
		if rep.Conns != 2 || rep.Batch != 32 || rep.Seed != 3 {
			t.Errorf("report echoes wrong config: %+v", rep)
		}
		if rep.Events == 0 || rep.Frames == 0 {
			t.Errorf("empty run: %+v", rep)
		}
		if rep.Nacks.total() != 0 || rep.Fatals != 0 {
			t.Errorf("clean burst produced refusals: %+v", rep)
		}
		if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P99 {
			t.Errorf("latency quantiles not ordered: %+v", rep.Latency)
		}
		if rep.EventsPerSec <= 0 {
			t.Errorf("events_per_sec = %v", rep.EventsPerSec)
		}
	}
}

// TestReportSchemaAndE2E is the schema-2 regression test: a -self run
// written via the -out alias carries the version stamp, a nanosecond
// duration consistent with duration_sec, and the server-side wire e2e
// distribution attributed from the v2 frame-header send stamps.
func TestReportSchemaAndE2E(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-self", "-conns", "1", "-sessions", "2",
		"-gestures", "1", "-batch", "16", "-seed", "5", "-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(mustRead(t, out), &rep); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if rep.Schema != ReportSchema {
		t.Errorf("schema = %d, want %d", rep.Schema, ReportSchema)
	}
	if rep.DurationNS <= 0 {
		t.Errorf("duration_ns = %d", rep.DurationNS)
	}
	if sec := float64(rep.DurationNS) / 1e9; sec < rep.DurationSec*0.99 || sec > rep.DurationSec*1.01 {
		t.Errorf("duration_ns %d disagrees with duration_sec %v", rep.DurationNS, rep.DurationSec)
	}
	if rep.E2E == nil {
		t.Fatal("-self report missing wire_e2e_ns")
	}
	if rep.E2E.P50 <= 0 || rep.E2E.P90 < rep.E2E.P50 || rep.E2E.P99 < rep.E2E.P90 {
		t.Errorf("e2e quantiles not ordered: %+v", *rep.E2E)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDeterministicWorkload: a fixed seed yields the identical event
// stream per connection — the property the CI smoke's "zero unexplained
// NACKs" assertion leans on.
func TestDeterministicWorkload(t *testing.T) {
	cfg := config{conns: 2, sessions: 3, gestures: 2, batch: 16, seed: 9}
	a := (&worker{cfg: cfg, id: 1}).buildEvents()
	b := (&worker{cfg: cfg, id: 1}).buildEvents()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("stream lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Per-session timestamps never regress across gesture boundaries.
	last := map[string]int64{}
	for i, ev := range a {
		if prev, ok := last[ev.Session]; ok && ev.TMicros < prev {
			t.Fatalf("event %d: session %s regresses %d -> %d", i, ev.Session, prev, ev.TMicros)
		}
		last[ev.Session] = ev.TMicros
	}
}

// TestFlagValidation: contradictory or out-of-range flags exit 2 with a
// usage message, before any socket work.
func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{},                          // neither -addr nor -self
		{"-self", "-addr", "x:1"},   // both
		{"-self", "-batch", "0"},    // batch under 1
		{"-self", "-batch", "9999"}, // batch over wire.MaxBatch
		{"-self", "-conns", "0"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr %q)", args, code, stderr.String())
		}
		if stderr.Len() == 0 {
			t.Errorf("run(%v) printed no diagnostic", args)
		}
	}
	if !strings.Contains(func() string {
		var stdout, stderr bytes.Buffer
		run([]string{"-batch", "0", "-self"}, &stdout, &stderr)
		return stderr.String()
	}(), "batch") {
		t.Error("batch diagnostic does not name the flag")
	}
}
