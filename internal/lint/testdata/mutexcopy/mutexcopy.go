// Package mutexcopy is a fixture for the mutexcopy analyzer.
package mutexcopy

import "sync"

// Guarded embeds a mutex by value.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Nested buries the lock one struct deeper.
type Nested struct {
	inner Guarded
}

// Count copies its receiver and the lock inside it: flagged.
func (g Guarded) Count() int { return g.n } // want `receiver type .* contains a sync primitive`

// Inc uses a pointer receiver: clean.
func (g *Guarded) Inc() { g.mu.Lock(); g.n++; g.mu.Unlock() }

// Take copies a lock through a parameter: flagged.
func Take(g Guarded) int { return g.n } // want `parameter 1 type .* contains a sync primitive`

// TakeNested copies through a nested struct and an array: flagged twice.
func TakeNested(n Nested, arr [2]Guarded) { // want `parameter 1 type .* contains a sync primitive` // want `parameter 2 type .* contains a sync primitive`
	_ = n
	_ = arr
}

// Make returns a lock by value: flagged.
func Make() Guarded { return Guarded{} } // want `result 1 type .* contains a sync primitive`

// Pointers, slices, and maps reference rather than copy: clean.
func ByRef(g *Guarded, gs []Guarded, m map[string]*Guarded, wg *sync.WaitGroup) {
	_ = g
	_ = gs
	_ = m
	_ = wg
}
