package template

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/gesture"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/recognizer"
)

// sessionMetrics is the streaming-recognition instrumentation shared by
// every Session a Recognizer spawns — the template.* half of the
// OBSERVABILITY.md contract, mirroring the eager.* family. All handles
// are nil until Instrument attaches a registry, so uninstrumented
// sessions pay only sub-5ns no-op calls per point.
type sessionMetrics struct {
	decideNS    *obs.Histogram         // template.decide_ns: per-point latency of one Add
	decideWinNS *obs.WindowedHistogram // window.template.decide_ns: rolling-window sibling of decideNS
	commitFrac  *obs.Histogram         // template.commit_frac: commit point as fraction of gesture length (Run replays)
	firedEager *obs.Counter   // template.fired.eager: strokes committed mid-stroke
	firedEnd   *obs.Counter   // template.fired.end: strokes classified only at End
	resets     *obs.Counter   // template.session.resets
	poisoned   *obs.Counter   // template.session.poisoned: strokes poisoned by a non-finite point
	degraded   *obs.Counter   // template.session.degraded: poisoned strokes recovered via Degrade
}

// Instrument attaches the recognizer's streaming metrics (the
// template.* names — see OBSERVABILITY.md) to the registry. A nil
// registry is a no-op. Like eager.Recognizer.Instrument this mutates
// the recognizer, so call it before the recognizer is shared (before
// serve.New or serve.Engine.Swap); sessions created afterwards record
// into the registry.
func (r *Recognizer) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.m = sessionMetrics{
		decideNS:    reg.Histogram("template.decide_ns", obs.LatencyBuckets()),
		decideWinNS: reg.WindowedHistogram("window.template.decide_ns", obs.LatencyBuckets(), 0, 0),
		commitFrac:  reg.Histogram("template.commit_frac", obs.FractionBuckets()),
		firedEager: reg.Counter("template.fired.eager"),
		firedEnd:   reg.Counter("template.fired.end"),
		resets:     reg.Counter("template.session.resets"),
		poisoned:   reg.Counter("template.session.poisoned"),
		degraded:   reg.Counter("template.session.degraded"),
	}
}

// sampleFactor sizes the incremental sample buffer: sampleFactor x
// Opts.Points samples are kept before the spacing doubles and the
// buffer decimates. Larger means finer prefix fidelity per rebuild,
// smaller means less memory; 4 keeps a 64-point matcher's buffer at
// 256 points (4 KiB) with resample error well under a probe interval.
const sampleFactor = 4

// Session consumes one stroke's points as they arrive — the streaming
// $1-style counterpart of eager.Session, and the template backend's
// recognizer.Stream. It maintains an incrementally-resampled sketch of
// the stroke so far (equidistant samples whose spacing doubles when the
// buffer fills, so consuming a point is O(1) amortized with
// constant-bounded memory no matter how long the stroke runs) and, in
// eager mode (Options.CommitMargin > 0), scores the normalized prefix
// against every template per point, committing mid-stroke once the
// best-template margin clears the threshold. Terminal scoring at End is
// the classic batch behavior over the same sketch.
//
// Like eager.Session, a Session is single-goroutine, poisoned by
// non-finite input until Reset, and allocation-free per Add once
// constructed (machine-checked — see DESIGN.md §6).
type Session struct {
	r *Recognizer

	raw      int  // finite points consumed so far
	poisoned bool // a non-finite point arrived; Add/End error until Reset
	decided  bool
	class    string
	// decidedAt is the raw point count when the eager commit fired; 0
	// when the stroke only classified at End.
	decidedAt int
	noted     bool // poisoned-stroke counted (once per stroke, not per Add)

	// The incremental resample sketch. samples holds equidistant
	// on-path samples at the current spacing; spacing 0 is the raw
	// phase, where every consumed point is its own sample (strokes
	// shorter than the buffer — the common case — are kept exactly).
	// last is the last consumed raw point; residual is the arc length
	// from the last emitted sample to last, always < spacing.
	samples  []geom.Point
	scratch  []geom.Point // rebuild target, swapped with samples
	probe    []geom.Point // Opts.Points-sized scoring buffer
	last     geom.Point
	spacing  float64
	residual float64
	// rawBounds is the raw (unnormalized) bounding box of every finite
	// point consumed — the commit gate's raw-size veto input
	// (Options.ScaleTolerance). Tracked exactly even after the sketch
	// decimates.
	rawBounds geom.Rect

	// The commit stability gate (Options.CommitStreak): streakClass is
	// the nearest class on the previous scored point, streak how many
	// consecutive points it has stayed nearest with a non-growing best
	// distance (prevBest).
	streakClass string
	streak      int
	prevBest    float64

	// Instrumentation (copied from the recognizer at NewSession; all
	// no-ops when the recognizer is uninstrumented) and per-session
	// tracing/capture hooks, mirroring eager.Session.
	m          sessionMetrics
	span       *obs.Span
	tap        recognizer.Tap
	lastMargin float64
	lastBest   string
}

// NewSession starts a streaming template-matching session. It fails
// when the recognizer is unusable: no templates loaded (ErrNoTemplates)
// or a corrupt resample count. Every buffer the per-point path needs is
// allocated here, once, so Add stays allocation-free; pool sessions
// (serve.Engine does) and Reset between strokes to amortize this
// constructor away.
//
//glint:coldpath runs once per gesture stream, not per point; session pooling (multipath.Session.Reset) amortizes even that away
func (r *Recognizer) NewSession() (*Session, error) {
	if r.Opts.Points < 2 {
		return nil, fmt.Errorf("template: resample count must be >= 2, got %d", r.Opts.Points)
	}
	if len(r.Templates) == 0 {
		return nil, ErrNoTemplates
	}
	m := sampleFactor * r.Opts.Points
	return &Session{
		r:         r,
		samples:   make([]geom.Point, 0, m),
		scratch:   make([]geom.Point, 0, m),
		probe:     make([]geom.Point, r.Opts.Points),
		rawBounds: geom.EmptyRect(),
		m:         r.m,
	}, nil
}

// NewStream starts a streaming session behind the backend-neutral
// recognizer.Stream interface — the adapter that makes *Recognizer a
// recognizer.Backend.
//
//glint:coldpath runs once per gesture stream, not per point; session pooling amortizes it away
func (r *Recognizer) NewStream() (recognizer.Stream, error) {
	return r.NewSession()
}

// Caps reports the template backend's capability flags: eager exactly
// when the commit margin is armed (Options.CommitMargin > 0), and
// degraded-fallback always — Degrade rescores the finite prefix sketch,
// which a poisoned point never touched. See recognizer.Caps and
// BACKENDS.md.
func (r *Recognizer) Caps() recognizer.Caps {
	return recognizer.Caps{Name: "template", Eager: r.Opts.CommitMargin > 0, DegradedFallback: true}
}

// SetSpan attaches a parent trace span: every subsequent Add records a
// "decide" child span with per-point attributes (point index, best
// class, commit margin, the class on commit, the error text of a
// poisoned step) plus commit/reset/poisoned instants — the same span
// vocabulary the eager backend records, so one trace viewer serves
// both. A nil span (the default) disables tracing at sub-5ns cost per
// call site. Single-goroutine; call before the first Add.
func (s *Session) SetSpan(parent *obs.Span) { s.span = parent }

// SetTap attaches a decision tap — the flight recorder's capture hook
// (flight.Capture implements recognizer.Tap). A nil tap (the default)
// disables capture. Single-goroutine; call before the first Add.
func (s *Session) SetTap(t recognizer.Tap) { s.tap = t }

// Add feeds one stroke point. In eager mode it returns fired=true the
// first time the prefix's best-template margin clears the commit
// threshold, along with the recognized class; after the session has
// decided, further Adds still update the sketch (harmless) but report
// fired=false so callers act on the transition exactly once.
//
// A non-finite point poisons the stroke before it can touch the
// sketch; Add (and a later End) then keep returning an error until
// Reset — Degrade can still classify the finite prefix. When the
// recognizer is instrumented each Add observes its latency into
// template.decide_ns, and the first error of a stroke counts into
// template.session.poisoned.
//
// Add is the template backend's half of the zero-allocation decide
// path: with tracing and capture disabled it performs no allocation
// (machine-checked — see DESIGN.md §6, "Hot-path allocation gate").
//
//glint:hotpath
func (s *Session) Add(p geom.TimedPoint) (fired bool, class string, err error) {
	start := obs.Start(s.m.decideNS)
	sp := s.span.Child("decide")
	s.lastMargin, s.lastBest = 0, ""
	fired, class, err = s.add(p)
	obs.ObserveSinceWindowed(s.m.decideNS, s.m.decideWinNS, start)
	if err != nil {
		if !s.noted {
			s.noted = true
			s.m.poisoned.Inc()
			s.span.Event("poisoned", err.Error())
		}
	} else if fired {
		s.decidedAt = s.raw
		s.m.firedEager.Inc()
		s.span.Event("commit", class)
	}
	sp.SetAttrInt("point", int64(s.raw))
	if s.lastBest != "" {
		sp.SetAttr("best", s.lastBest)
		sp.SetAttrFloat("margin", s.lastMargin)
	}
	if fired {
		sp.SetAttr("class", class)
	}
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	if s.tap != nil {
		s.tap.TapPoint(p)
		s.tap.TapDecision(recognizer.Decision{
			Index:  s.raw,
			Kind:   "add",
			Fired:  fired,
			Class:  class,
			Margin: s.lastMargin,
			Err:    errText(err),
		})
	}
	return fired, class, err
}

// add is the uninstrumented body of Add.
func (s *Session) add(p geom.TimedPoint) (bool, string, error) {
	if s.poisoned {
		return false, "", fmt.Errorf("%w: stroke poisoned at point %d; Reset to recover", ErrDegenerate, s.raw)
	}
	if !mathx.Finite(p.X) || !mathx.Finite(p.Y) || !mathx.Finite(p.T) {
		s.poisoned = true
		return false, "", fmt.Errorf("%w: non-finite point (%v, %v, t=%v)", ErrDegenerate, p.X, p.Y, p.T)
	}
	s.raw++
	s.consume(geom.Pt(p.X, p.Y))
	if s.decided || s.r.Opts.CommitMargin <= 0 || s.raw < s.r.Opts.MinPoints {
		return false, "", nil
	}
	class, best, other, bestTmpl, probeArc := s.scoreProbe()
	if s.span != nil || s.tap != nil {
		// The running commit margin, computed only when someone is
		// listening — replay attaches a tap, so recorded and replayed
		// margins come from the same code path and compare
		// bit-identically.
		s.lastBest = class
		if !math.IsInf(other, 1) {
			s.lastMargin = other - best
		}
	}
	// The stability streak: a commit requires CommitStreak consecutive
	// points on which every gate holds at once — same nearest class,
	// best distance small (CommitMaxDist) and not growing (5% relative
	// plus a small absolute allowance for sampling jitter), margin clear
	// of the runner-up class (CommitMargin), and the prematurity vetoes
	// (commitGatesPass). A wrong early capture — the prefix of almost
	// any stroke passes near some template — fails one of these on most
	// points (its distance grows, or its margin flaps as the true class
	// catches up) and never builds the streak.
	pointOK := bestTmpl >= 0 &&
		best <= s.r.Opts.CommitMaxDist && other-best >= s.r.Opts.CommitMargin &&
		s.commitGatesPass(&s.r.Templates[bestTmpl], best, probeArc)
	switch {
	case pointOK && class == s.streakClass && s.streak > 0 && best <= s.prevBest*1.05+0.005:
		s.streak++
	case pointOK:
		s.streakClass, s.streak = class, 1
	default:
		s.streakClass, s.streak = class, 0
	}
	s.prevBest = best
	if s.streak >= s.r.Opts.CommitStreak {
		s.decided = true
		s.class = class
		return true, class, nil
	}
	return false, "", nil
}

// commitGatesPass applies the eager mode's prematurity vetoes against
// the winning template:
//
//   - arc length: mean point distance can sit low while the prefix has
//     only traced a fraction of the template's path; normalized arc
//     length is scale-invariant and exposes exactly that shortfall.
//   - raw size (Options.ScaleTolerance): the opening edge of a large
//     shape normalizes into the same unit box as a tiny dot-class
//     scribble — raw bounding-box size is the one signal that tells
//     them apart.
//   - incomplete-subgesture ambiguity: if some other class's trained
//     prefix template (Recognizer.Incomplete) explains the probe about
//     as well as the winning complete template, the stroke may simply
//     be that other shape, not yet done — the template-matching analog
//     of the paper's ambiguous-subgesture test. best is the winning
//     template's distance; the probe sits normalized in s.probe.
func (s *Session) commitGatesPass(tmpl *Template, best, probeArc float64) bool {
	if tmpl.ArcLen > 0 && (probeArc < 0.7*tmpl.ArcLen || probeArc > 1.5*tmpl.ArcLen) {
		return false
	}
	if tol := s.r.Opts.ScaleTolerance; tol > 0 && tmpl.RawSide > 0 {
		side := math.Max(s.rawBounds.Width(), s.rawBounds.Height())
		if side > tol*tmpl.RawSide || side < tmpl.RawSide/tol {
			return false
		}
	}
	if len(s.r.Incomplete) > 0 {
		if d := nearestOtherClass(s.r.Incomplete, s.probe, tmpl.Class); d < best+s.r.Opts.CommitMargin {
			return false
		}
	}
	return true
}

// consume folds one finite point into the resample sketch: exact
// storage while the stroke fits the buffer (the raw phase), equidistant
// sampling with spacing-doubling decimation after — O(1) amortized per
// point, constant-bounded memory.
func (s *Session) consume(p geom.Point) {
	s.rawBounds = s.rawBounds.AddPoint(p)
	if s.raw == 1 {
		s.samples = append(s.samples[:0], p)
		s.last = p
		s.spacing = 0
		s.residual = 0
		return
	}
	if s.spacing == 0 {
		if len(s.samples) == cap(s.samples) {
			s.toEquidistant()
		}
		if s.spacing == 0 {
			// Still in the raw phase (either the buffer has room, or the
			// path so far has zero length and was truncated to one point).
			//lint:ignore hotalloc the append is bounded by the buffer's preallocated capacity: the branch above rebuilds before it can fill
			s.samples = append(s.samples, p)
			s.last = p
			return
		}
	}
	s.advance(p)
}

// advance walks the segment from the last raw point to p, emitting an
// equidistant sample every spacing of arc length.
func (s *Session) advance(p geom.Point) {
	a := s.last
	d := a.Dist(p)
	for s.residual+d >= s.spacing {
		// d > 0 here: the residual invariant (residual < spacing) means a
		// zero-length segment can never enter the loop.
		t := (s.spacing - s.residual) / d
		q := a.Lerp(p, t)
		s.emitSample(q)
		d -= s.spacing - s.residual
		s.residual = 0
		a = q
	}
	s.residual += d
	s.last = p
}

// emitSample appends one equidistant sample, decimating first when the
// buffer is full.
func (s *Session) emitSample(q geom.Point) {
	if len(s.samples) == cap(s.samples) {
		s.decimate()
	}
	//lint:ignore hotalloc the append is bounded by the buffer's preallocated capacity: the branch above decimates before it can fill
	s.samples = append(s.samples, q)
}

// decimate halves the sample buffer by keeping every other sample and
// doubling the spacing — equidistant at spacing s decimated this way is
// exactly equidistant at 2s. Called once per buffer fill; since the
// path must double in arc length between fills, the cost is O(1)
// amortized per consumed point.
func (s *Session) decimate() {
	n := len(s.samples)
	kept := (n + 1) / 2
	for i := 1; i < kept; i++ {
		s.samples[i] = s.samples[2*i]
	}
	if n%2 == 0 {
		// The dropped final odd-indexed sample sat one old spacing past
		// the last kept one; fold that length into the residual.
		s.residual += s.spacing
	}
	s.samples = s.samples[:kept]
	s.spacing *= 2
}

// toEquidistant ends the raw phase: the buffer of raw points is
// resampled in place (via the scratch buffer) to equidistant samples at
// a spacing that half-fills it. A zero-length path (all points
// identical so far) instead truncates to one point and stays raw.
func (s *Session) toEquidistant() {
	total := 0.0
	for i := 1; i < len(s.samples); i++ {
		total += s.samples[i-1].Dist(s.samples[i])
	}
	if total <= 0 {
		s.samples = s.samples[:1]
		return
	}
	s.spacing = total / float64(cap(s.samples)/2)
	out := s.scratch[:0]
	//lint:ignore hotalloc appends below are bounded by the scratch buffer's preallocated capacity: at most cap/2+1 samples fit in total/spacing
	out = append(out, s.samples[0])
	acc := 0.0
	prev := s.samples[0]
	for i := 1; i < len(s.samples); i++ {
		v := s.samples[i]
		d := prev.Dist(v)
		for acc+d >= s.spacing {
			t := (s.spacing - acc) / d
			q := prev.Lerp(v, t)
			//lint:ignore hotalloc bounded by the scratch buffer's preallocated capacity, see above
			out = append(out, q)
			d -= s.spacing - acc
			acc = 0
			prev = q
		}
		acc += d
		prev = v
	}
	s.residual = acc
	s.samples, s.scratch = out, s.samples
}

// vertexCount is the number of polyline vertices the probe resamples
// over: the samples plus, past the raw phase, the live tail point (the
// stroke's true end, which sits residual arc length past the last
// emitted sample).
func (s *Session) vertexCount() int {
	if s.spacing > 0 {
		return len(s.samples) + 1
	}
	return len(s.samples)
}

// vertex returns the i-th probe polyline vertex.
func (s *Session) vertex(i int) geom.Point {
	if i < len(s.samples) {
		return s.samples[i]
	}
	return s.last
}

// buildProbe fills the probe buffer with an equidistant Opts.Points-
// point resampling of the sketch polyline — the classic $1 resample,
// over preallocated storage.
func (s *Session) buildProbe() []geom.Point {
	n := len(s.probe)
	probe := s.probe
	vc := s.vertexCount()
	total := 0.0
	prev := s.vertex(0)
	for i := 1; i < vc; i++ {
		v := s.vertex(i)
		total += prev.Dist(v)
		prev = v
	}
	if total <= 0 {
		for i := range probe {
			probe[i] = s.vertex(0)
		}
		return probe
	}
	interval := total / float64(n-1)
	probe[0] = s.vertex(0)
	idx := 1
	acc := 0.0
	prev = s.vertex(0)
	for i := 1; i < vc && idx < n; i++ {
		v := s.vertex(i)
		d := prev.Dist(v)
		for acc+d >= interval && idx < n {
			t := (interval - acc) / d
			q := prev.Lerp(v, t)
			probe[idx] = q
			idx++
			d -= interval - acc
			acc = 0
			prev = q
		}
		acc += d
		prev = v
	}
	for last := s.vertex(vc - 1); idx < n; idx++ {
		probe[idx] = last
	}
	return probe
}

// scoreProbe resamples, normalizes, and scores the current sketch
// against every template: the winner's class, its distance, the best
// other-class distance (the commit margin's other half), the winning
// template's index (for the commit gate's shape statistics), and the
// probe's normalized arc length.
func (s *Session) scoreProbe() (class string, best, other float64, bestTmpl int, probeArc float64) {
	probe := s.buildProbe()
	normalizeInPlace(probe, s.r.Opts.RotationInvariant)
	class, best, other, bestTmpl = score(s.r.Templates, probe)
	return class, best, other, bestTmpl, arcLen(probe)
}

// errText renders an error for Decision.Err ("" when nil).
func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// End finishes the session at mouse-up: if the stroke never committed
// eagerly, it is scored against every template now — counted into
// template.fired.end when instrumented, the complement of the
// mid-stroke template.fired.eager count. Returns the final class; a
// poisoned or empty stroke is an ErrDegenerate error (use Degrade for
// the poisoned stroke's finite prefix).
//
//glint:coldpath runs once at mouse-up, not per point; the full nearest-template scoring is priced per gesture
func (s *Session) End() (string, error) {
	if !s.decided {
		sp := s.span.Child("classify")
		class, err := s.end()
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			if s.tap != nil {
				s.tap.TapDecision(recognizer.Decision{Index: s.raw, Kind: "end", Err: err.Error()})
			}
			return "", err
		}
		sp.SetAttr("class", class)
		sp.End()
		s.class = class
		s.decided = true
		s.m.firedEnd.Inc()
		if s.tap != nil {
			s.tap.TapDecision(recognizer.Decision{Index: s.raw, Kind: "end", Class: class})
		}
	}
	return s.class, nil
}

// end is the uninstrumented body of End.
func (s *Session) end() (string, error) {
	if s.poisoned {
		return "", fmt.Errorf("%w: stroke poisoned at point %d; Reset to recover", ErrDegenerate, s.raw)
	}
	if s.raw == 0 {
		return "", fmt.Errorf("%w: no points", ErrDegenerate)
	}
	class, _, _, _, _ := s.scoreProbe()
	return class, nil
}

// Degrade is the poisoned stroke's fallback: the sketch only ever
// absorbed finite points (a non-finite point poisons the session before
// touching it), so Degrade simply rescores the finite prefix — the
// session keeps serving, on less evidence, instead of rejecting
// outright. It errors only when the finite prefix is empty. Counted
// into template.session.degraded when instrumented; reported to an
// attached Tap with Kind "degrade" and the prefix length as Index,
// mirroring the eager backend so flight bundles stay backend-agnostic.
// Calling Degrade on an already-decided session just returns its class.
//
//glint:coldpath poisoned-stroke fallback: runs at most once per gesture, only after a non-finite point already wrecked the stream
func (s *Session) Degrade() (string, error) {
	if s.decided {
		return s.class, nil
	}
	sp := s.span.Child("degrade")
	sp.SetAttrInt("prefix", int64(s.raw))
	if s.raw == 0 {
		err := fmt.Errorf("template: degrade: no finite prefix to classify")
		sp.SetAttr("error", err.Error())
		sp.End()
		if s.tap != nil {
			s.tap.TapDecision(recognizer.Decision{Index: 0, Kind: "degrade", Err: err.Error()})
		}
		return "", err
	}
	class, _, _, _, _ := s.scoreProbe()
	sp.SetAttr("class", class)
	sp.End()
	s.class = class
	s.decided = true
	s.m.degraded.Inc()
	if s.tap != nil {
		s.tap.TapDecision(recognizer.Decision{Index: s.raw, Kind: "degrade", Class: class})
	}
	return class, nil
}

// Reset returns the session to its initial empty state so it can
// collect a fresh stroke, reusing every allocated buffer. This is both
// the recovery path after a poisoned stroke and the reuse path for
// serving engines that pool sessions across gestures.
func (s *Session) Reset() {
	s.raw = 0
	s.poisoned = false
	s.decided = false
	s.class = ""
	s.decidedAt = 0
	s.noted = false
	s.samples = s.samples[:0]
	s.spacing = 0
	s.residual = 0
	s.rawBounds = geom.EmptyRect()
	s.streakClass = ""
	s.streak = 0
	s.prevBest = 0
	s.m.resets.Inc()
	s.span.Event("reset", "")
}

// Decided reports whether the session has already committed.
func (s *Session) Decided() bool { return s.decided }

// Class returns the recognized class, or "" before any decision.
func (s *Session) Class() string { return s.class }

// PointCount returns the number of finite points consumed so far.
func (s *Session) PointCount() int { return s.raw }

// FinitePrefix returns the length of the leading all-finite point
// prefix — equal to PointCount, since a non-finite point poisons the
// session before it is counted. This is the prefix Degrade rescores.
func (s *Session) FinitePrefix() int { return s.raw }

// DecidedAt returns the raw point count at which the eager commit
// fired, or 0 when the stroke classified only at End — the streaming
// earliness measurement behind template.commit_frac.
func (s *Session) DecidedAt() int { return s.decidedAt }

// Run replays an entire gesture through a fresh session and reports
// the outcome: the recognized class and the number of points that had
// been seen when recognition fired (|g| when it only fired at End).
// When the recognizer is instrumented, each replay observes
// firedAt/|g| into the template.commit_frac histogram — directly
// comparable with eager.commit_frac, which is what the geval
// "backends" A/B experiment reports.
func (r *Recognizer) Run(g gesture.Gesture) (class string, firedAt int, err error) {
	s, err := r.NewSession()
	if err != nil {
		return "", 0, err
	}
	for i, p := range g.Points {
		fired, c, err := s.Add(p)
		if err != nil {
			return "", 0, err
		}
		if fired {
			r.m.commitFrac.Observe(float64(i+1) / float64(g.Len()))
			return c, i + 1, nil
		}
	}
	class, err = s.End()
	if err != nil {
		return "", 0, err
	}
	r.m.commitFrac.Observe(1)
	return class, g.Len(), nil
}
