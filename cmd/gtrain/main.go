// Command gtrain trains a gesture recognizer — full (non-eager) or eager —
// from a JSON example set produced by ggen (or recorded by an application)
// and writes the trained recognizer as JSON.
//
// Usage:
//
//	gtrain -in train.json -o recognizer.json [-eager] [-bias 5]
//	       [-threshold 0.5] [-agreement]
package main

import "os"

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}
