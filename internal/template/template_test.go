package template

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/gesture"
	"repro/internal/synth"
)

func sets(t *testing.T, classes []synth.Class, trainN, testN int, seed int64) (*gesture.Set, *gesture.Set) {
	t.Helper()
	trainSet, _ := synth.NewGenerator(synth.DefaultParams(seed)).Set("train", classes, trainN)
	testSet, _ := synth.NewGenerator(synth.DefaultParams(seed+1000)).Set("test", classes, testN)
	return trainSet, testSet
}

func mustClassify(t *testing.T, r *Recognizer, g gesture.Gesture) string {
	t.Helper()
	class, err := r.Classify(g)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	return class
}

func mustAccuracy(t *testing.T, r *Recognizer, set *gesture.Set) float64 {
	t.Helper()
	acc, err := r.Accuracy(set)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	return acc
}

func TestEightDirectionsAccuracy(t *testing.T) {
	trainSet, testSet := sets(t, synth.EightDirectionClasses(), 10, 30, 1)
	r, err := Train(trainSet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if acc := mustAccuracy(t, r, testSet); acc < 0.95 {
		t.Errorf("accuracy %.3f", acc)
	}
}

func TestGDPAccuracy(t *testing.T) {
	trainSet, testSet := sets(t, synth.GDPClasses(), 10, 30, 2)
	r, err := Train(trainSet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if acc := mustAccuracy(t, r, testSet); acc < 0.9 {
		t.Errorf("GDP accuracy %.3f", acc)
	}
}

func TestNormalizationInvariances(t *testing.T) {
	trainSet, testSet := sets(t, synth.UDClasses(), 8, 10, 3)
	r, err := Train(trainSet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range testSet.Examples {
		base := mustClassify(t, r, e.Gesture)
		// Translation invariance.
		moved := gesture.New(e.Gesture.Points.Translate(500, -300))
		if got := mustClassify(t, r, moved); got != base {
			t.Fatalf("translation changed class: %s vs %s", got, base)
		}
		// Scale invariance.
		scaled := gesture.New(e.Gesture.Points.ScaleAbout(e.Gesture.Start().Point(), 1.7))
		if got := mustClassify(t, r, scaled); got != base {
			t.Fatalf("scaling changed class: %s vs %s", got, base)
		}
	}
}

func TestRotationInvariantOption(t *testing.T) {
	// The eight-direction classes contain true rotations of one another
	// (ur rotated 90 degrees clockwise is rd, and so on), so a
	// rotation-invariant matcher must collapse those distinctions and do
	// much worse than the orientation-sensitive default.
	trainSet, testSet := sets(t, synth.EightDirectionClasses(), 10, 10, 4)
	opts := DefaultOptions()
	opts.RotationInvariant = true
	r, err := Train(trainSet, opts)
	if err != nil {
		t.Fatal(err)
	}
	rDefault, _ := Train(trainSet, DefaultOptions())
	accInv := mustAccuracy(t, r, testSet)
	accDef := mustAccuracy(t, rDefault, testSet)
	if accInv >= accDef-0.1 {
		t.Errorf("rotation invariance did not hurt the rotation-paired set: %.2f vs %.2f", accInv, accDef)
	}
}

func TestDegenerateStrokes(t *testing.T) {
	trainSet, _ := sets(t, synth.GDPClasses(), 5, 1, 5)
	r, err := Train(trainSet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// A 2-point dot classifies without panicking, and as dot.
	g := synth.NewGenerator(synth.DefaultParams(6))
	var dotClass synth.Class
	for _, c := range synth.GDPClasses() {
		if c.Name == "dot" {
			dotClass = c
		}
	}
	s := g.Sample(dotClass)
	if got := mustClassify(t, r, s.G); got != "dot" {
		t.Errorf("dot classified as %s", got)
	}
}

// TestDegenerateContract pins the batch API to the repo's
// degenerate-gesture contract (eager/degenerate_test.go): single-point,
// zero-duration, and all-identical-point strokes must classify without
// error; empty and non-finite strokes must fail, and with the typed
// ErrDegenerate so callers can tell "bad stroke" from "bad recognizer".
func TestDegenerateContract(t *testing.T) {
	trainSet, _ := sets(t, synth.GDPClasses(), 5, 1, 8)
	r, err := Train(trainSet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	ok := []struct {
		name string
		pts  geom.Path
	}{
		{"single point", geom.Path{{X: 10, Y: 10, T: 0}}},
		{"zero duration", geom.Path{{X: 10, Y: 10, T: 5}, {X: 40, Y: 12, T: 5}}},
		{"all identical", geom.Path{{X: 3, Y: 4, T: 0}, {X: 3, Y: 4, T: 1}, {X: 3, Y: 4, T: 2}}},
	}
	for _, tc := range ok {
		if _, err := r.Classify(gesture.New(tc.pts)); err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
	}

	bad := []struct {
		name string
		pts  geom.Path
	}{
		{"empty", nil},
		{"NaN coordinate", geom.Path{{X: 0, Y: 0, T: 0}, {X: math.NaN(), Y: 1, T: 1}}},
		{"Inf coordinate", geom.Path{{X: 0, Y: 0, T: 0}, {X: 1, Y: math.Inf(1), T: 1}}},
	}
	for _, tc := range bad {
		_, err := r.Classify(gesture.New(tc.pts))
		if !errors.Is(err, ErrDegenerate) {
			t.Errorf("%s: error = %v, want ErrDegenerate", tc.name, err)
		}
		if errors.Is(err, ErrNoTemplates) {
			t.Errorf("%s: degenerate stroke misreported as missing templates", tc.name)
		}
	}
}

// TestTypedErrors distinguishes the two failure families: an empty
// recognizer is ErrNoTemplates regardless of input, a loaded recognizer
// fed garbage is ErrDegenerate.
func TestTypedErrors(t *testing.T) {
	empty := &Recognizer{Opts: DefaultOptions()}
	g := gesture.New(geom.Path{{X: 0, Y: 0, T: 0}, {X: 1, Y: 1, T: 1}})
	if _, err := empty.Classify(g); !errors.Is(err, ErrNoTemplates) {
		t.Errorf("empty recognizer: error = %v, want ErrNoTemplates", err)
	}
	if _, _, err := empty.ClassifyWithDistance(g); !errors.Is(err, ErrNoTemplates) {
		t.Errorf("empty recognizer (with distance): error = %v, want ErrNoTemplates", err)
	}
	if _, err := empty.NewSession(); !errors.Is(err, ErrNoTemplates) {
		t.Errorf("empty recognizer NewSession: error = %v, want ErrNoTemplates", err)
	}
	if _, err := Train(&gesture.Set{}, DefaultOptions()); err == nil {
		t.Error("empty set accepted")
	}

	trainSet, _ := sets(t, synth.UDClasses(), 3, 1, 9)
	r, err := Train(trainSet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bad := gesture.New(geom.Path{{X: 0, Y: 0, T: 0}, {X: math.NaN(), Y: 0, T: 1}})
	if _, err := r.Classify(bad); !errors.Is(err, ErrDegenerate) {
		t.Errorf("non-finite stroke: error = %v, want ErrDegenerate", err)
	}
	// Accuracy propagates the typed error instead of silently scoring 0.
	badSet := &gesture.Set{Name: "bad", Examples: []gesture.Example{{Class: "x", Gesture: bad}}}
	if _, err := r.Accuracy(badSet); !errors.Is(err, ErrDegenerate) {
		t.Errorf("Accuracy on bad set: error = %v, want ErrDegenerate", err)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(&gesture.Set{}, DefaultOptions()); err == nil {
		t.Error("empty set accepted")
	}
	// Points <= 1 falls back to the default.
	trainSet, _ := sets(t, synth.UDClasses(), 3, 1, 7)
	r, err := Train(trainSet, Options{Points: 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Opts.Points != 64 {
		t.Errorf("Points default = %d", r.Opts.Points)
	}
	if !strings.Contains(r.String(), "templates") {
		t.Error("String")
	}
}
