// Package mathx provides small numeric helpers shared by the geometry,
// feature-extraction, and linear-algebra packages. All functions are pure
// and allocation-free.
package mathx

import "math"

// Eps is the default tolerance used by approximate comparisons throughout
// the repository. It is deliberately loose: the recognizer operates on
// mouse coordinates where sub-micro-pixel differences are meaningless.
const Eps = 1e-9

// NormalizeAngle maps an angle in radians into the half-open interval
// (-pi, pi]. It is used when accumulating turn angles so that a near-straight
// path contributes near-zero turning rather than +-2*pi artifacts.
func NormalizeAngle(a float64) float64 {
	if math.IsNaN(a) || math.IsInf(a, 0) {
		return 0
	}
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// Clamp limits v to the closed interval [lo, hi]. It panics if lo > hi,
// which always indicates a programming error at the call site.
func Clamp(v, lo, hi float64) float64 {
	if lo > hi {
		panic("mathx: Clamp called with lo > hi")
	}
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// ApproxEqual reports whether a and b are equal to within tol, using a
// mixed absolute/relative test: |a-b| <= tol * max(1, |a|, |b|).
func ApproxEqual(a, b, tol float64) bool {
	//lint:ignore floateq fast path of the epsilon comparison itself
	if a == b {
		return true
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// Sq returns v*v. It exists because squaring shows up on the hot path of
// feature extraction and reads better than math.Pow(v, 2).
func Sq(v float64) float64 { return v * v }

// SafeDiv returns num/den, or fallback when den is so small that the
// division would be numerically meaningless. Feature extraction uses it to
// guard the cosine/sine features of zero-length segments.
func SafeDiv(num, den, fallback float64) float64 {
	if math.Abs(den) < Eps {
		return fallback
	}
	return num / den
}

// Finite reports whether v is neither NaN nor infinite.
func Finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// MinInt returns the smaller of a and b.
func MinInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MaxInt returns the larger of a and b.
func MaxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
